module tempart

go 1.22
