// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp fig9              # one experiment at the default scale
//	experiments -exp all -scale 0.05   # the whole evaluation, larger meshes
//	experiments -list                  # show available experiment ids
//
// Scale 1.0 reproduces the paper's full mesh sizes (minutes of runtime on a
// single core); the default 0.01 preserves every reported shape in seconds.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"tempart/internal/experiments"
	"tempart/internal/obs"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (table1, fig5..fig13, all)")
		scale   = flag.Float64("scale", 0.01, "mesh scale relative to the paper's cell counts")
		seed    = flag.Int64("seed", 1, "random seed")
		width   = flag.Int("width", 96, "Gantt chart width in characters")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionLine("experiments"))
		return
	}

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	out, err := experiments.Run(ctx, *exp, experiments.Params{
		Scale: *scale, Seed: *seed, GanttWidth: *width,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
