// Command flusim emulates one FLUSEPA iteration: it partitions a mesh,
// generates the task graph, schedules it on a configurable virtual cluster
// and prints the makespan, quality metrics and an ASCII Gantt trace — the
// reproduction of the paper's FLUSIM submodule as a standalone tool.
//
// Example:
//
//	flusim -mesh CYLINDER -scale 0.01 -domains 128 -procs 16 -workers 32 \
//	       -strategy MC_TL -gantt
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"tempart/internal/core"
	"tempart/internal/flusim"
	"tempart/internal/metrics"
	"tempart/internal/obs"
	"tempart/internal/partition"
)

func main() {
	var (
		meshName = flag.String("mesh", "CYLINDER", "mesh: CYLINDER, CUBE or PPRIME_NOZZLE")
		scale    = flag.Float64("scale", 0.01, "mesh scale relative to the paper's cell counts")
		domains  = flag.Int("domains", 128, "number of domains (task granularity)")
		procs    = flag.Int("procs", 16, "number of emulated MPI processes")
		workers  = flag.Int("workers", 32, "cores per process (0 = unbounded)")
		strategy = flag.String("strategy", "MC_TL", "partitioning strategy: SC_OC, MC_TL, UNIT, GEOM_RCB")
		sched    = flag.String("sched", "eager", "scheduling strategy: eager, lifo, cpf, random")
		seed     = flag.Int64("seed", 1, "random seed")
		gantt    = flag.Bool("gantt", false, "print the execution trace")
		width    = flag.Int("width", 96, "Gantt width in characters")
		commLat  = flag.Int64("comm-latency", 0, "virtual time units charged per cross-process dependency edge")
		jsonOut  = flag.String("trace-json", "", "write the trace in Chrome trace-event format to this file")
		csvOut   = flag.String("trace-csv", "", "write the trace as CSV to this file")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionLine("flusim"))
		return
	}

	strat, err := partition.ParseStrategy(*strategy)
	check(err)
	schedStrat, err := flusim.ParseStrategy(*sched)
	check(err)

	m, err := core.LoadMesh(*meshName, *scale)
	check(err)
	fmt.Printf("mesh %s: %d cells, %d faces, %d temporal levels\n",
		m.Name, m.NumCells(), m.NumFaces(), m.Scheme().NumLevels())

	d, err := core.Decompose(context.Background(), m, *domains, strat, partition.Options{Seed: *seed})
	check(err)
	fmt.Printf("partition %s into %d domains: edge cut %d, max imbalance %.3f, level imbalance %v\n",
		strat, *domains, d.Result.EdgeCut, d.Result.MaxImbalance(), fmtFloats(d.Quality.LevelImbalance))

	tg, err := d.TaskGraph()
	check(err)
	st := metrics.ComputeTaskStats(tg)
	fmt.Printf("task graph: %d tasks, %d deps, total work %d, critical path %d, first-phase domains %d\n",
		st.NumTasks, st.NumDeps, st.TotalWork, st.CriticalPath, st.FirstPhaseDomains)

	wantTrace := *gantt || *jsonOut != "" || *csvOut != ""
	tg2, err := d.TaskGraph()
	check(err)
	procOf := flusim.BlockMap(*domains, *procs)
	res, err := flusim.Simulate(tg2, procOf, flusim.Config{
		Cluster:     flusim.Cluster{NumProcs: *procs, WorkersPerProc: *workers},
		Strategy:    schedStrat,
		Seed:        *seed,
		RecordTrace: wantTrace,
		CommLatency: *commLat,
	})
	check(err)
	sim := &core.SimulationReport{Result: res, CommVolume: metrics.CommVolume(tg2, procOf)}
	if *workers > 0 && res.Makespan > 0 {
		sim.Efficiency = float64(res.TotalWork) / (float64(res.Makespan) * float64(*procs**workers))
	}
	fmt.Printf("cluster %d procs × %d cores, %s scheduling\n", *procs, *workers, schedStrat)
	fmt.Printf("makespan: %d units (critical path %d, work bound %d)\n",
		sim.Makespan, sim.CriticalPath, workBound(sim.TotalWork, *procs, *workers))
	fmt.Printf("comm volume: %d cut task edges; efficiency %.2f\n", sim.CommVolume, sim.Efficiency)
	if *gantt && sim.Trace != nil {
		fmt.Printf("\ntrace (digits = subiteration):\n%s", sim.Trace.Gantt(*width))
	}
	if *jsonOut != "" && sim.Trace != nil {
		check(writeFile(*jsonOut, sim.Trace.WriteChromeTrace))
		fmt.Printf("wrote Chrome trace to %s (open in chrome://tracing)\n", *jsonOut)
	}
	if *csvOut != "" && sim.Trace != nil {
		check(writeFile(*csvOut, sim.Trace.WriteCSV))
		fmt.Printf("wrote CSV trace to %s\n", *csvOut)
	}
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func workBound(work int64, procs, workers int) int64 {
	if workers <= 0 {
		return 0
	}
	return work / (int64(procs) * int64(workers))
}

func fmtFloats(v []float64) string {
	out := "["
	for i, x := range v {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.2f", x)
	}
	return out + "]"
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "flusim:", err)
		os.Exit(1)
	}
}
