// Command tempartd serves the tempart partitioner over HTTP: partition
// requests (named generator meshes or uploaded TMSH files) run on a bounded
// worker pool behind a FIFO admission queue, identical in-flight requests
// are deduplicated, and results are served from a content-addressed LRU
// cache. SIGINT/SIGTERM drain in-flight jobs before exit.
//
// With -data-dir the daemon is durable and restart-safe: uploaded meshes and
// computed results persist to a content-addressed blob store with a
// hash-chained provenance log (batched fsyncs), async jobs journal their
// lifecycle and resume after a restart over the same directory, and
// -verify walks the chain offline, recomputing every hash.
//
// Example:
//
//	tempartd -addr :8080 -data-dir /var/lib/tempartd &
//	curl -s localhost:8080/v1/partition -d '{"mesh":"CYLINDER","scale":0.01,"k":16,"strategy":"MC_TL"}'
//	curl -s localhost:8080/metrics | grep tempartd_store
//	tempartd -data-dir /var/lib/tempartd -verify
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on DefaultServeMux; served only on -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tempart/internal/cluster"
	"tempart/internal/obs"
	"tempart/internal/server"
	"tempart/internal/store"
)

// parsePeers decodes the -peers membership list: "id=url,id=url,...". The
// list must name every fleet member, this node included (its own URL may be
// left empty: "n1=,n2=http://b:8080" on node n1).
func parsePeers(spec string) ([]cluster.Node, error) {
	var nodes []cluster.Node
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("peer %q: want id=url", part)
		}
		nodes = append(nodes, cluster.Node{ID: strings.TrimSpace(id), URL: strings.TrimSpace(url)})
	}
	return nodes, nil
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		debugAddr    = flag.String("debug-addr", "", "when set, serve net/http/pprof under /debug/pprof/ on this address")
		workers      = flag.Int("workers", 0, "partition worker pool size (0 = GOMAXPROCS)")
		parallel     = flag.Int("parallel", 0, "per-request partitioner parallelism cap (0 = GOMAXPROCS/workers)")
		queueDepth   = flag.Int("queue", 64, "admission queue depth (overflow answers 429)")
		cacheMB      = flag.Int64("cache-mb", 256, "result cache budget in MiB")
		maxBodyMB    = flag.Int64("max-body-mb", 64, "maximum request body (mesh upload) in MiB")
		timeout      = flag.Duration("timeout", 5*time.Minute, "default per-job execution deadline")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
		accessLog    = flag.Bool("access-log", true, "emit one structured log line per request")
		dataDir      = flag.String("data-dir", "", "durable store directory (empty = in-memory only, no persistence)")
		batchMax     = flag.Int("store-batch-max", 64, "store commits per batched flush")
		batchWait    = flag.Duration("store-batch-wait", 20*time.Millisecond, "max time a store commit waits for co-batching (also the durable-commit latency bound)")
		verify       = flag.Bool("verify", false, "verify the -data-dir provenance chain and blob digests, print a report, and exit (non-zero on corruption)")
		nodeID       = flag.String("node-id", "", "this daemon's fleet identity; requires -peers and must appear in it")
		peersSpec    = flag.String("peers", "", `static fleet membership as "id=url,id=url,..." including this node (same list on every member); enables cluster mode`)
		fanoutCells  = flag.Int("fanout-min-cells", 0, "minimum mesh cells before a request is fanned out across the fleet (0 = default 65536)")
		hedge        = flag.Duration("cluster-hedge", 0, "race a local recompute against a peer subtree slower than this (0 = only after the peer fails)")
		traceSample  = flag.Float64("trace-sample", 0, "flight-recorder head-sampling rate in [0,1]: fraction of fresh jobs traced into /v1/traces (0 = only ?debug=trace requests)")
		traceRing    = flag.Int("trace-ring", 64, "completed request traces the flight recorder retains (plus the slowest, pinned)")
		version      = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionLine("tempartd"))
		return
	}
	if *verify {
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "tempartd: -verify requires -data-dir")
			os.Exit(2)
		}
		rep, err := store.VerifyDir(*dataDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempartd: verify:", err)
			os.Exit(2)
		}
		fmt.Println(rep)
		for _, p := range rep.Problems {
			fmt.Println("  problem:", p)
		}
		if !rep.OK() {
			os.Exit(1)
		}
		return
	}

	var cl *cluster.Cluster
	if *peersSpec != "" || *nodeID != "" {
		if *peersSpec == "" || *nodeID == "" {
			fmt.Fprintln(os.Stderr, "tempartd: cluster mode needs both -node-id and -peers")
			os.Exit(2)
		}
		nodes, err := parsePeers(*peersSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempartd: -peers:", err)
			os.Exit(2)
		}
		cl, err = cluster.New(cluster.Options{
			NodeID:         *nodeID,
			Peers:          nodes,
			FanoutMinCells: *fanoutCells,
			HedgeDelay:     *hedge,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempartd: cluster:", err)
			os.Exit(2)
		}
		log.Printf("tempartd: fleet member %s of %d nodes", *nodeID, len(nodes))
	}

	var st *store.Store
	if *dataDir != "" {
		var err error
		st, err = store.Open(store.Options{
			Dir:      *dataDir,
			NodeID:   *nodeID,
			MaxBatch: *batchMax,
			MaxWait:  *batchWait,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempartd: opening store:", err)
			os.Exit(1)
		}
		stats := st.Stats()
		log.Printf("tempartd: store open at %s (%d provenance entries, %d jobs replayed, %d to resume)",
			*dataDir, stats.ProvEntries, stats.JobsRecovered, stats.JobsPending)
	}

	var access *slog.Logger
	if *accessLog {
		access = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	srv := server.New(server.Config{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		CacheBytes:      *cacheMB << 20,
		MaxBodyBytes:    *maxBodyMB << 20,
		DefaultTimeout:  *timeout,
		MaxParallelism:  *parallel,
		AccessLog:       access,
		Store:           st,
		NodeID:          *nodeID,
		Cluster:         cl,
		TraceSampleRate: *traceSample,
		TraceRingSize:   *traceRing,
	})
	if *debugAddr != "" {
		go func() {
			log.Printf("tempartd: pprof on http://%s/debug/pprof/", *debugAddr)
			dbg := &http.Server{Addr: *debugAddr, Handler: http.DefaultServeMux,
				ReadHeaderTimeout: 10 * time.Second}
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("tempartd: debug server: %v", err)
			}
		}()
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("tempartd: listening on %s (%s)", *addr, srv)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	exit := 0
	select {
	case sig := <-sigc:
		log.Printf("tempartd: %v received, draining (max %v)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Mark the pool draining first so /healthz answers 503 and new jobs
		// are refused while open connections wind down, then close the
		// listener and wait for both. Shutdown flushes the store's batcher
		// after the workers drain, so everything acknowledged is fsynced.
		drained := make(chan error, 1)
		go func() { drained <- srv.Shutdown(ctx) }()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("tempartd: http shutdown: %v", err)
		}
		if err := <-drained; err != nil {
			log.Printf("tempartd: drain incomplete: %v", err)
			exit = 1
		} else {
			log.Printf("tempartd: drained cleanly")
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "tempartd:", err)
			exit = 1
		}
	}
	if st != nil {
		// Final close: flush whatever remains and fsync both logs before the
		// process exits.
		if err := st.Close(); err != nil {
			log.Printf("tempartd: closing store: %v", err)
			exit = 1
		}
	}
	os.Exit(exit)
}
