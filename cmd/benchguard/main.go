// Command benchguard compares two partbench -json reports and fails when the
// refine phase — or, with -mem, the memory footprint — regressed. It is the
// CI tripwire for the partitioning engine: the committed BENCH_partition.json
// is the baseline, a fresh run (with -phases, plus -mem for the memory check)
// is the candidate, and any strategy whose refine-phase seconds grew by more
// than -max-regress (default 20%) fails the build. With -mem, a bytes/cell
// peak-heap figure more than -max-regress above the baseline's fails too, and
// -max-bytes-per-cell optionally pins an absolute ceiling (the full-scale
// lane uses it to enforce the paper-scale streaming bound).
//
// Strategies below -min-seconds in the baseline are skipped: at bench-smoke
// mesh scales the refine phase of a small strategy is tens of milliseconds
// and a 20% band would be pure scheduler noise. Strategies present in only
// one report are reported but do not fail the run (the table is allowed to
// grow). The full-scale lane runs with -refine=false: its baseline is the
// small-scale committed report, so phase seconds are not comparable there —
// only the scale-free bytes/cell is.
//
// Example:
//
//	partbench -mesh CYLINDER -scale 0.005 -parallel 4 -phases -mem -json > new.json
//	benchguard -baseline BENCH_partition.json -current new.json -mem
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type row struct {
	Strategy       string  `json:"strategy"`
	WallSeconds    float64 `json:"wall_seconds"`
	RefineSeconds  float64 `json:"refine_seconds"`
	CoarsenSeconds float64 `json:"coarsen_seconds"`
	InitialSeconds float64 `json:"initial_seconds"`
}

type memSection struct {
	PeakHeapBytes int64   `json:"peak_heap_bytes"`
	PeakRSSBytes  int64   `json:"peak_rss_bytes"`
	BytesPerCell  float64 `json:"bytes_per_cell"`
}

type benchReport struct {
	// Schema/provenance stamps partbench writes into every -json report.
	SchemaVersion int    `json:"schema_version"`
	GeneratedAt   string `json:"generated_at"`
	GitRev        string `json:"git_rev"`

	Mesh     string      `json:"mesh"`
	Parallel int         `json:"parallel"`
	Results  []row       `json:"results"`
	Mem      *memSection `json:"mem"`
}

// trajectoryRecord is the one-line JSONL summary -trajectory appends per
// refresh: enough to plot wall/refine seconds and bytes/cell over time
// without retaining every full snapshot.
type trajectoryRecord struct {
	SchemaVersion int     `json:"schema_version"`
	GeneratedAt   string  `json:"generated_at"`
	GitRev        string  `json:"git_rev,omitempty"`
	Mesh          string  `json:"mesh"`
	Parallel      int     `json:"parallel"`
	Passed        bool    `json:"passed"`
	Results       []row   `json:"results"`
	BytesPerCell  float64 `json:"bytes_per_cell,omitempty"`
}

// appendTrajectory appends the current report's summary line to the JSONL
// trajectory file. Failures here are warnings, never CI failures: the
// trajectory is a convenience series, not the guard itself.
func appendTrajectory(path string, cur *benchReport, passed bool) {
	rec := trajectoryRecord{
		SchemaVersion: cur.SchemaVersion,
		GeneratedAt:   cur.GeneratedAt,
		GitRev:        cur.GitRev,
		Mesh:          cur.Mesh,
		Parallel:      cur.Parallel,
		Passed:        passed,
		Results:       cur.Results,
	}
	if cur.Mem != nil {
		rec.BytesPerCell = cur.Mem.BytesPerCell
	}
	line, err := json.Marshal(rec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard: trajectory:", err)
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard: trajectory:", err)
		return
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard: trajectory:", err)
	}
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_partition.json", "committed partbench -json report to compare against")
		currentPath  = flag.String("current", "", "fresh partbench -phases -json report (required)")
		maxRegress   = flag.Float64("max-regress", 0.20, "maximum tolerated fractional regression (refine seconds, and bytes/cell under -mem)")
		minSeconds   = flag.Float64("min-seconds", 0.02, "skip strategies whose baseline refine phase is below this many seconds")
		checkRefine  = flag.Bool("refine", true, "compare per-strategy refine-phase seconds (disable when baseline and current run at different scales)")
		checkMem     = flag.Bool("mem", false, "compare the mem section's peak-heap bytes/cell against the baseline's")
		maxBPC       = flag.Float64("max-bytes-per-cell", 0, "absolute bytes/cell ceiling for the current report's peak heap (0 = no ceiling); requires -mem")
		trajectory   = flag.String("trajectory", "", "append a one-line JSONL summary of the current report (schema version, timestamp, git rev, per-strategy seconds) to this file")
	)
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -current is required")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	if base.Mesh != cur.Mesh {
		fmt.Fprintf(os.Stderr, "benchguard: mesh mismatch (baseline %q, current %q) — not comparable\n", base.Mesh, cur.Mesh)
		os.Exit(2)
	}

	failed := false
	if *checkRefine {
		failed = compareRefine(base, cur, *maxRegress, *minSeconds) || failed
	}
	if *checkMem {
		failed = compareMem(base, cur, *maxRegress, *maxBPC) || failed
	}
	if *trajectory != "" {
		appendTrajectory(*trajectory, cur, !failed)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchguard: regression beyond %.0f%%\n", *maxRegress*100)
		os.Exit(1)
	}
}

func compareRefine(base, cur *benchReport, maxRegress, minSeconds float64) (failed bool) {
	baseBy := map[string]row{}
	for _, r := range base.Results {
		baseBy[r.Strategy] = r
	}
	checked := 0
	for _, c := range cur.Results {
		b, ok := baseBy[c.Strategy]
		if !ok {
			fmt.Printf("benchguard: %-14s new strategy, no baseline — skipped\n", c.Strategy)
			continue
		}
		delete(baseBy, c.Strategy)
		if b.RefineSeconds < minSeconds {
			fmt.Printf("benchguard: %-14s baseline refine %.3fs below -min-seconds %.3fs — skipped\n",
				c.Strategy, b.RefineSeconds, minSeconds)
			continue
		}
		checked++
		limit := b.RefineSeconds * (1 + maxRegress)
		status := "ok"
		if c.RefineSeconds > limit {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("benchguard: %-14s refine %.3fs -> %.3fs (limit %.3fs, wall %.3fs -> %.3fs) %s\n",
			c.Strategy, b.RefineSeconds, c.RefineSeconds, limit, b.WallSeconds, c.WallSeconds, status)
	}
	for name := range baseBy {
		fmt.Printf("benchguard: %-14s present in baseline only — skipped\n", name)
	}
	if checked == 0 {
		// A baseline without phase data (pre -phases) guards nothing; say so
		// loudly but let CI pass so the first refresh can land.
		fmt.Println("benchguard: no comparable strategies (baseline missing refine_seconds?) — nothing checked")
	}
	return failed
}

func compareMem(base, cur *benchReport, maxRegress, maxBPC float64) (failed bool) {
	if cur.Mem == nil {
		fmt.Fprintln(os.Stderr, "benchguard: -mem set but current report has no mem section (run partbench with -mem)")
		return true
	}
	if maxBPC > 0 {
		status := "ok"
		if cur.Mem.BytesPerCell > maxBPC {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("benchguard: mem            %.1f bytes/cell (ceiling %.1f) %s\n", cur.Mem.BytesPerCell, maxBPC, status)
	}
	if base.Mem == nil {
		// Same contract as a phase-less baseline: loud pass so the first
		// -mem refresh can land.
		fmt.Println("benchguard: baseline has no mem section — bytes/cell regression not checked")
		return failed
	}
	limit := base.Mem.BytesPerCell * (1 + maxRegress)
	status := "ok"
	if cur.Mem.BytesPerCell > limit {
		status = "FAIL"
		failed = true
	}
	fmt.Printf("benchguard: mem            peak heap %.1f -> %.1f bytes/cell (limit %.1f) %s\n",
		base.Mem.BytesPerCell, cur.Mem.BytesPerCell, limit, status)
	return failed
}

func load(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
