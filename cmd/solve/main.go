// Command solve runs the complete task-distributed finite-volume solver —
// the FLUSEPA analogue — end to end: generate (or load) a mesh, partition it
// with the chosen strategy, build the task graph, execute real kernels on a
// worker pool for N iterations, and report wall times, conservation, and the
// virtual-cluster makespan obtained by replaying measured task durations.
//
// Examples:
//
//	solve -mesh PPRIME_NOZZLE -scale 0.01 -strategy MC_TL -iters 3
//	solve -mesh CUBE -scale 0.2 -model euler -workers 4 -gantt
//	solve -in saved.tmsh -domains 24 -procs 8 -cores 4
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"tempart/internal/flusim"
	"tempart/internal/mesh"
	"tempart/internal/obs"
	"tempart/internal/partition"
	"tempart/internal/runtime"
	"tempart/internal/solver"
)

func main() {
	var (
		meshName = flag.String("mesh", "PPRIME_NOZZLE", "mesh: CYLINDER, CUBE or PPRIME_NOZZLE")
		scale    = flag.Float64("scale", 0.01, "mesh scale relative to the paper's cell counts")
		inFile   = flag.String("in", "", "load a mesh file instead of generating")
		strategy = flag.String("strategy", "MC_TL", "partitioning strategy: SC_OC, MC_TL, UNIT, GEOM_RCB, SFC")
		domains  = flag.Int("domains", 12, "number of domains")
		model    = flag.String("model", "scalar", "physics model: scalar or euler")
		iters    = flag.Int("iters", 3, "iterations to run")
		workers  = flag.Int("workers", 1, "worker goroutines")
		policy   = flag.String("policy", "worksteal", "runtime policy: central, worksteal, domainlocal")
		procs    = flag.Int("procs", 6, "virtual cluster processes for the replay")
		cores    = flag.Int("cores", 4, "virtual cores per process for the replay")
		gantt    = flag.Bool("gantt", false, "print the virtual-cluster Gantt trace")
		width    = flag.Int("width", 96, "Gantt width")
		seed     = flag.Int64("seed", 1, "random seed")
		reportTo = flag.String("report", "", "write a JSON run manifest (inputs, build, per-phase timings, outcome) to this file")
		pipeTo   = flag.String("pipeline-trace", "", "write the instrumented pipeline spans as a Chrome trace (open in Perfetto) to this file")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionLine("solve"))
		return
	}
	var rec *obs.Recorder
	if *reportTo != "" || *pipeTo != "" {
		rec = obs.NewRecorder()
	}
	ctx := obs.WithRecorder(context.Background(), rec)

	var m *mesh.Mesh
	var err error
	if *inFile != "" {
		m, err = mesh.Load(*inFile)
	} else {
		m, err = mesh.ByName(*meshName, *scale)
	}
	check(err)

	strat, err := partition.ParseStrategy(*strategy)
	check(err)
	mdl := solver.Scalar
	if *model == "euler" {
		mdl = solver.Euler
	} else if *model != "scalar" {
		check(fmt.Errorf("unknown model %q", *model))
	}
	pol := map[string]runtime.Policy{
		"central": runtime.Central, "worksteal": runtime.WorkStealing, "domainlocal": runtime.DomainLocal,
	}[*policy]

	fmt.Printf("mesh %s: %d cells, census %v\n", m.Name, m.NumCells(), m.Census())
	t0 := time.Now()
	sv, err := solver.New(ctx, m, solver.Config{
		NumDomains: *domains,
		Strategy:   strat,
		PartOpts:   partition.Options{Seed: *seed},
		Workers:    *workers,
		Policy:     pol,
		Model:      mdl,
	})
	check(err)
	fmt.Printf("pipeline built in %v: %s partition (cut %d), %d tasks/iteration, model %v\n",
		time.Since(t0).Round(time.Millisecond), strat, sv.Partition.EdgeCut, sv.TG.NumTasks(), mdl)

	rep, err := sv.RunContext(ctx, *iters)
	check(err)
	for i, w := range rep.WallPerIteration {
		fmt.Printf("iteration %d: %v\n", i, w.Round(time.Microsecond))
	}
	fmt.Printf("mass drift after %d iterations: %.2e\n", *iters, rep.MassDriftRel)

	cluster := flusim.Cluster{NumProcs: *procs, WorkersPerProc: *cores}
	virt, err := sv.VirtualMakespan(rep, cluster, flusim.Eager, *gantt)
	check(err)
	fmt.Printf("virtual cluster %d×%d: makespan %v (critical path %v)\n",
		*procs, *cores, time.Duration(virt.Makespan), time.Duration(virt.CriticalPath))
	if *gantt && virt.Trace != nil {
		fmt.Printf("\ntrace (digits = subiteration):\n%s", virt.Trace.Gantt(*width))
	}

	if *pipeTo != "" {
		writeFile(*pipeTo, rec.WriteChromeTrace)
		fmt.Fprintf(os.Stderr, "solve: pipeline trace written to %s (open in Perfetto)\n", *pipeTo)
	}
	if *reportTo != "" {
		man := obs.NewManifest("solve")
		man.Inputs["mesh"] = m.Name
		man.Inputs["cells"] = m.NumCells()
		man.Inputs["scale"] = *scale
		man.Inputs["in"] = *inFile
		man.Inputs["strategy"] = strat.String()
		man.Inputs["domains"] = *domains
		man.Inputs["model"] = *model
		man.Inputs["iters"] = *iters
		man.Inputs["workers"] = *workers
		man.Inputs["policy"] = *policy
		man.Inputs["procs"] = *procs
		man.Inputs["cores"] = *cores
		man.Inputs["seed"] = *seed
		man.Metrics["edge_cut"] = float64(sv.Partition.EdgeCut)
		man.Metrics["tasks_per_iteration"] = float64(sv.TG.NumTasks())
		man.Metrics["mass_drift_rel"] = rep.MassDriftRel
		man.Metrics["virtual_makespan"] = float64(virt.Makespan)
		man.Metrics["virtual_critical_path"] = float64(virt.CriticalPath)
		man.Metrics["repart_events"] = float64(len(rep.Repartitions))
		man.Finish(rec)
		writeFile(*reportTo, man.WriteJSON)
		fmt.Fprintf(os.Stderr, "solve: run manifest written to %s\n", *reportTo)
	}
}

// writeFile streams one of the JSON emitters into path.
func writeFile(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	check(err)
	check(write(f))
	check(f.Close())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "solve:", err)
		os.Exit(1)
	}
}
