// Command solve runs the complete task-distributed finite-volume solver —
// the FLUSEPA analogue — end to end: generate (or load) a mesh, partition it
// with the chosen strategy, build the task graph, execute real kernels on a
// worker pool for N iterations, and report wall times, conservation, and the
// virtual-cluster makespan obtained by replaying measured task durations.
//
// Examples:
//
//	solve -mesh PPRIME_NOZZLE -scale 0.01 -strategy MC_TL -iters 3
//	solve -mesh CUBE -scale 0.2 -model euler -workers 4 -gantt
//	solve -in saved.tmsh -domains 24 -procs 8 -cores 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"tempart/internal/flusim"
	"tempart/internal/mesh"
	"tempart/internal/partition"
	"tempart/internal/runtime"
	"tempart/internal/solver"
)

func main() {
	var (
		meshName = flag.String("mesh", "PPRIME_NOZZLE", "mesh: CYLINDER, CUBE or PPRIME_NOZZLE")
		scale    = flag.Float64("scale", 0.01, "mesh scale relative to the paper's cell counts")
		inFile   = flag.String("in", "", "load a mesh file instead of generating")
		strategy = flag.String("strategy", "MC_TL", "partitioning strategy: SC_OC, MC_TL, UNIT, GEOM_RCB, SFC")
		domains  = flag.Int("domains", 12, "number of domains")
		model    = flag.String("model", "scalar", "physics model: scalar or euler")
		iters    = flag.Int("iters", 3, "iterations to run")
		workers  = flag.Int("workers", 1, "worker goroutines")
		policy   = flag.String("policy", "worksteal", "runtime policy: central, worksteal, domainlocal")
		procs    = flag.Int("procs", 6, "virtual cluster processes for the replay")
		cores    = flag.Int("cores", 4, "virtual cores per process for the replay")
		gantt    = flag.Bool("gantt", false, "print the virtual-cluster Gantt trace")
		width    = flag.Int("width", 96, "Gantt width")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var m *mesh.Mesh
	var err error
	if *inFile != "" {
		m, err = mesh.Load(*inFile)
	} else {
		m, err = mesh.ByName(*meshName, *scale)
	}
	check(err)

	strat, err := partition.ParseStrategy(*strategy)
	check(err)
	mdl := solver.Scalar
	if *model == "euler" {
		mdl = solver.Euler
	} else if *model != "scalar" {
		check(fmt.Errorf("unknown model %q", *model))
	}
	pol := map[string]runtime.Policy{
		"central": runtime.Central, "worksteal": runtime.WorkStealing, "domainlocal": runtime.DomainLocal,
	}[*policy]

	fmt.Printf("mesh %s: %d cells, census %v\n", m.Name, m.NumCells(), m.Census())
	t0 := time.Now()
	sv, err := solver.New(context.Background(), m, solver.Config{
		NumDomains: *domains,
		Strategy:   strat,
		PartOpts:   partition.Options{Seed: *seed},
		Workers:    *workers,
		Policy:     pol,
		Model:      mdl,
	})
	check(err)
	fmt.Printf("pipeline built in %v: %s partition (cut %d), %d tasks/iteration, model %v\n",
		time.Since(t0).Round(time.Millisecond), strat, sv.Partition.EdgeCut, sv.TG.NumTasks(), mdl)

	rep, err := sv.Run(*iters)
	check(err)
	for i, w := range rep.WallPerIteration {
		fmt.Printf("iteration %d: %v\n", i, w.Round(time.Microsecond))
	}
	fmt.Printf("mass drift after %d iterations: %.2e\n", *iters, rep.MassDriftRel)

	cluster := flusim.Cluster{NumProcs: *procs, WorkersPerProc: *cores}
	virt, err := sv.VirtualMakespan(rep, cluster, flusim.Eager, *gantt)
	check(err)
	fmt.Printf("virtual cluster %d×%d: makespan %v (critical path %v)\n",
		*procs, *cores, time.Duration(virt.Makespan), time.Duration(virt.CriticalPath))
	if *gantt && virt.Trace != nil {
		fmt.Printf("\ntrace (digits = subiteration):\n%s", virt.Trace.Gantt(*width))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "solve:", err)
		os.Exit(1)
	}
}
