// Command meshgen generates the paper's synthetic meshes, prints their
// Table I statistics, and optionally saves them in the library's binary
// format for reuse by other tools.
//
// Example:
//
//	meshgen -mesh PPRIME_NOZZLE -scale 0.1 -out nozzle.tmsh
//	meshgen -in nozzle.tmsh            # inspect a saved mesh
package main

import (
	"flag"
	"fmt"
	"os"

	"tempart/internal/mesh"
	"tempart/internal/obs"
	"tempart/internal/temporal"
)

func main() {
	var (
		name    = flag.String("mesh", "CYLINDER", "mesh: CYLINDER, CUBE or PPRIME_NOZZLE")
		scale   = flag.Float64("scale", 0.01, "scale relative to the paper's cell counts")
		out     = flag.String("out", "", "save the mesh to this file")
		in      = flag.String("in", "", "load and inspect a mesh file instead of generating")
		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionLine("meshgen"))
		return
	}

	var m *mesh.Mesh
	var err error
	if *in != "" {
		m, err = mesh.Load(*in)
	} else {
		m, err = mesh.ByName(*name, *scale)
	}
	check(err)

	scheme := m.Scheme()
	census := m.Census()
	var total, work int64
	for τ, c := range census {
		total += c
		work += c * int64(scheme.Cost(temporal.Level(τ)))
	}
	fmt.Printf("%s: %d cells, %d faces (%d interior), %d temporal levels, %d subiterations/iteration\n",
		m.Name, m.NumCells(), m.NumFaces(), m.NumInteriorFaces, scheme.NumLevels(), scheme.NumSubiterations())
	fmt.Printf("%-8s %12s %8s %8s\n", "level", "#cells", "%cells", "%comp")
	for τ, c := range census {
		fmt.Printf("τ=%-6d %12d %7.1f%% %7.1f%%\n", τ, c,
			100*float64(c)/float64(total),
			100*float64(c*int64(scheme.Cost(temporal.Level(τ))))/float64(work))
	}
	fmt.Printf("iteration work: %d cell updates\n", work)

	if *out != "" {
		check(m.Save(*out))
		fmt.Printf("saved to %s\n", *out)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "meshgen:", err)
		os.Exit(1)
	}
}
