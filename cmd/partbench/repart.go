package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"tempart/internal/eval"
	"tempart/internal/flusim"
	"tempart/internal/mesh"
	"tempart/internal/partition"
	"tempart/internal/repart"
)

// repartRow is one policy at one drift epoch: keep the stale epoch-0
// partition, repartition from scratch, or repartition incrementally.
type repartRow struct {
	Epoch        int     `json:"epoch"`
	Shift        float64 `json:"shift"`
	Policy       string  `json:"policy"` // stale | scratch | incremental
	Mode         string  `json:"mode,omitempty"`
	WallSeconds  float64 `json:"wall_seconds"`
	EdgeCut      int64   `json:"edge_cut"`
	MaxImbalance float64 `json:"max_imbalance"`
	Makespan     int64   `json:"makespan"`
	MovedCells   int     `json:"moved_cells"`
	MovedBytes   int64   `json:"moved_bytes"`
}

type repartReport struct {
	Mesh      string      `json:"mesh"`
	Cells     int         `json:"cells"`
	Census    []int64     `json:"census"`
	Domains   int         `json:"domains"`
	Procs     int         `json:"procs"`
	Workers   int         `json:"workers"`
	Seed      int64       `json:"seed"`
	Epochs    int         `json:"epochs"`
	DriftStep float64     `json:"drift_step"`
	Rows      []repartRow `json:"rows"`
}

// runRepart drives a migrating hotspot across the mesh and compares the three
// repartitioning policies on makespan, edge cut and migration volume — the
// CLI face of the drift experiment, at whatever mesh/cluster the flags chose.
// Makespans are scored through the shared evaluator, so a policy that keeps
// its partition across an epoch boundary still rebuilds the graph only when
// the levels actually moved (they always do here — but the stale policy's
// repeated scoring of one partition per epoch hits the cache).
func runRepart(ev *eval.Evaluator, m *mesh.Mesh, domains, procs, workers, parallel int, seed, commLat int64, epochs int, step float64, asJSON bool) {
	ctx := context.Background()
	cluster := flusim.Cluster{NumProcs: int(procs), WorkersPerProc: int(workers)}
	procOf := flusim.BlockMap(domains, procs)
	counts := m.Census()

	// Hotspot geometry from the mesh bounding box: a short segment on the x
	// axis through the centre, displaced by step·extent per epoch.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	zmin, zmax := math.Inf(1), math.Inf(-1)
	for i := range m.CX {
		xmin, xmax = math.Min(xmin, float64(m.CX[i])), math.Max(xmax, float64(m.CX[i]))
		ymin, ymax = math.Min(ymin, float64(m.CY[i])), math.Max(ymax, float64(m.CY[i]))
		zmin, zmax = math.Min(zmin, float64(m.CZ[i])), math.Max(zmax, float64(m.CZ[i]))
	}
	extent := xmax - xmin
	yc, zc := (ymin+ymax)/2, (zmin+zmax)/2

	stale, err := partition.PartitionMesh(ctx, m, domains, partition.MCTL, partition.Options{Seed: seed, Parallelism: parallel})
	check(err)
	scrPart := append([]int32(nil), stale.Part...)
	incPart := append([]int32(nil), stale.Part...)

	simulate := func(part []int32) (*eval.Outcome, int64) {
		out, err := ev.Evaluate(eval.Spec{
			Mesh: m, Part: part, NumDomains: domains,
			ProcOf: procOf,
			Sim:    flusim.Config{Cluster: cluster, CommLatency: commLat},
		})
		check(err)
		return out, out.Makespan
	}

	rep := repartReport{
		Mesh: m.Name, Cells: m.NumCells(), Census: counts,
		Domains: domains, Procs: procs, Workers: workers, Seed: seed,
		Epochs: epochs, DriftStep: step,
	}
	if !asJSON {
		fmt.Printf("repartition study: %s, %d cells, %d domains on %d procs × %d cores, step %.2f·x-extent\n\n",
			m.Name, m.NumCells(), domains, procs, workers, step)
		fmt.Printf("%6s %6s %-12s %8s %9s %10s %6s %10s %10s %12s\n",
			"epoch", "shift", "policy", "mode", "time", "edge cut", "imb", "makespan", "moved", "moved bytes")
	}
	emit := func(r repartRow) {
		rep.Rows = append(rep.Rows, r)
		if !asJSON {
			fmt.Printf("%6d %6.2f %-12s %8s %9s %10d %6.2f %10d %10d %12d\n",
				r.Epoch, r.Shift, r.Policy, r.Mode,
				time.Duration(r.WallSeconds*float64(time.Second)).Round(time.Millisecond),
				r.EdgeCut, r.MaxImbalance, r.Makespan, r.MovedCells, r.MovedBytes)
		}
	}

	for e := 0; e < epochs; e++ {
		shift := step * extent * float64(e)
		x0 := xmin + 0.45*extent + shift
		score := func(x, y, z float64) float64 {
			return distToSegment(x, y, z, x0, yc, zc, x0+0.1*extent, yc, zc)
		}
		m.ReassignLevels(score, counts)
		g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
		migBytes := repart.MeshMigrationBytes(m)

		_, staleSpan := simulate(stale.Part)
		staleRes := partition.NewResult(g, stale.Part, domains)
		emit(repartRow{Epoch: e, Shift: shift, Policy: "stale",
			EdgeCut: staleRes.EdgeCut, MaxImbalance: staleRes.MaxImbalance(), Makespan: staleSpan})

		t0 := time.Now()
		scr, err := repart.Repartition(ctx, g, partition.NewResult(g, scrPart, domains),
			repart.Options{Mode: repart.Scratch, Part: partition.Options{Seed: seed + int64(e), Parallelism: parallel}, MigBytes: migBytes})
		check(err)
		scrWall := time.Since(t0).Seconds()
		scrPart = scr.Part
		_, scrSpan := simulate(scrPart)
		emit(repartRow{Epoch: e, Shift: shift, Policy: "scratch", Mode: scr.Mode.String(),
			WallSeconds: scrWall, EdgeCut: scr.EdgeCut, MaxImbalance: scr.MaxImbalance(),
			Makespan: scrSpan, MovedCells: scr.Stats.MovedCells, MovedBytes: scr.Stats.MovedBytes})

		t0 = time.Now()
		inc, err := repart.Repartition(ctx, g, partition.NewResult(g, incPart, domains),
			repart.Options{Mode: repart.Auto, Part: partition.Options{Seed: seed + int64(e), Parallelism: parallel}, MigBytes: migBytes})
		check(err)
		incWall := time.Since(t0).Seconds()
		incPart = inc.Part
		_, incSpan := simulate(incPart)
		emit(repartRow{Epoch: e, Shift: shift, Policy: "incremental", Mode: inc.Mode.String(),
			WallSeconds: incWall, EdgeCut: inc.EdgeCut, MaxImbalance: inc.MaxImbalance(),
			Makespan: incSpan, MovedCells: inc.Stats.MovedCells, MovedBytes: inc.Stats.MovedBytes})
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(&rep))
	}
}

// distToSegment is the drifting-hotspot scoring helper.
func distToSegment(x, y, z, ax, ay, az, bx, by, bz float64) float64 {
	vx, vy, vz := bx-ax, by-ay, bz-az
	wx, wy, wz := x-ax, y-ay, z-az
	vv := vx*vx + vy*vy + vz*vz
	t := 0.0
	if vv > 0 {
		t = (wx*vx + wy*vy + wz*vz) / vv
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	dx, dy, dz := x-(ax+t*vx), y-(ay+t*vy), z-(az+t*vz)
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}
