// Command partbench compares every partitioning strategy on one mesh: cut,
// balance, per-level balance, fragments, partitioning time, simulated
// makespan and communication volume — the quality axes the paper discusses,
// side by side, including the geometric baselines (RCB, Hilbert SFC) from
// the related-work section and both k-way construction methods.
//
// Example:
//
//	partbench -mesh CYLINDER -scale 0.01 -domains 128 -procs 16 -workers 32
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tempart/internal/core"
	"tempart/internal/flusim"
	"tempart/internal/mesh"
	"tempart/internal/metrics"
	"tempart/internal/partition"
	"tempart/internal/taskgraph"
)

func main() {
	var (
		meshName = flag.String("mesh", "CYLINDER", "mesh: CYLINDER, CUBE or PPRIME_NOZZLE")
		scale    = flag.Float64("scale", 0.01, "mesh scale relative to the paper's cell counts")
		domains  = flag.Int("domains", 128, "number of domains")
		procs    = flag.Int("procs", 16, "emulated processes")
		workers  = flag.Int("workers", 32, "cores per process")
		seed     = flag.Int64("seed", 1, "random seed")
		commLat  = flag.Int64("comm-latency", 0, "time units per cross-process dependency edge")
		kway     = flag.Bool("kway", false, "also run SC_OC/MC_TL with the direct k-way method")
	)
	flag.Parse()

	m, err := core.LoadMesh(*meshName, *scale)
	check(err)
	fmt.Printf("mesh %s: %d cells, census %v\n", m.Name, m.NumCells(), m.Census())
	fmt.Printf("%d domains on %d procs × %d cores, comm latency %d\n\n", *domains, *procs, *workers, *commLat)

	type job struct {
		label string
		strat partition.Strategy
		opt   partition.Options
	}
	jobs := []job{
		{"SC_OC(rb)", partition.SCOC, partition.Options{Seed: *seed}},
		{"MC_TL(rb)", partition.MCTL, partition.Options{Seed: *seed}},
		{"UNIT(rb)", partition.UnitCells, partition.Options{Seed: *seed}},
		{"GEOM_RCB", partition.GeomRCB, partition.Options{}},
		{"SFC", partition.SFC, partition.Options{}},
	}
	if *kway {
		jobs = append(jobs,
			job{"SC_OC(kway)", partition.SCOC, partition.Options{Seed: *seed, Method: partition.DirectKWay}},
			job{"MC_TL(kway)", partition.MCTL, partition.Options{Seed: *seed, Method: partition.DirectKWay}},
		)
	}

	fmt.Printf("%-12s %9s %10s %7s %7s %6s %10s %10s %7s\n",
		"strategy", "time", "edge cut", "imb", "lvlimb", "frag", "makespan", "comm vol", "eff")
	cluster := flusim.Cluster{NumProcs: *procs, WorkersPerProc: *workers}
	for _, j := range jobs {
		t0 := time.Now()
		res, err := partition.PartitionMesh(m, *domains, j.strat, j.opt)
		check(err)
		elapsed := time.Since(t0)

		q := metrics.EvaluatePartition(m, res, j.label)
		tg, err := buildTG(m, res)
		check(err)
		procOf := flusim.BlockMap(*domains, *procs)
		sim, err := flusim.Simulate(tg, procOf, flusim.Config{Cluster: cluster, CommLatency: *commLat})
		check(err)

		worstLvl := 0.0
		for _, v := range q.LevelImbalance {
			if v > worstLvl {
				worstLvl = v
			}
		}
		eff := 0.0
		if *workers > 0 && sim.Makespan > 0 {
			eff = float64(sim.TotalWork) / (float64(sim.Makespan) * float64(*procs**workers))
		}
		fmt.Printf("%-12s %9s %10d %7.2f %7.2f %6d %10d %10d %7.2f\n",
			j.label, elapsed.Round(time.Millisecond), res.EdgeCut, res.MaxImbalance(),
			worstLvl, q.MaxFragments(), sim.Makespan,
			metrics.CommVolume(tg, procOf), eff)
	}
}

func buildTG(m *mesh.Mesh, res *partition.Result) (*taskgraph.TaskGraph, error) {
	return taskgraph.Build(m, res.Part, res.NumParts, taskgraph.Options{})
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "partbench:", err)
		os.Exit(1)
	}
}
