// Command partbench compares every partitioning strategy on one mesh: cut,
// balance, per-level balance, fragments, partitioning time, simulated
// makespan and communication volume — the quality axes the paper discusses,
// side by side, including the geometric baselines (RCB, Hilbert SFC) from
// the related-work section and both k-way construction methods.
//
// Example:
//
//	partbench -mesh CYLINDER -scale 0.01 -domains 128 -procs 16 -workers 32
//	partbench -mesh CUBE -scale 0.01 -json | jq '.results[].makespan'
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"tempart/internal/core"
	"tempart/internal/flusim"
	"tempart/internal/mesh"
	"tempart/internal/metrics"
	"tempart/internal/partition"
	"tempart/internal/taskgraph"
)

// result is one strategy's row, shared by the table and -json emitters.
type result struct {
	Strategy     string    `json:"strategy"`
	WallSeconds  float64   `json:"wall_seconds"`
	EdgeCut      int64     `json:"edge_cut"`
	MaxImbalance float64   `json:"max_imbalance"`
	LevelImb     []float64 `json:"level_imbalance"`
	WorstLvlImb  float64   `json:"worst_level_imbalance"`
	MaxFragments int       `json:"max_fragments"`
	Makespan     int64     `json:"makespan"`
	CommVolume   int64     `json:"comm_volume"`
	Efficiency   float64   `json:"efficiency"`
}

type report struct {
	Mesh     string   `json:"mesh"`
	Cells    int      `json:"cells"`
	Census   []int64  `json:"census"`
	Domains  int      `json:"domains"`
	Procs    int      `json:"procs"`
	Workers  int      `json:"workers"`
	Seed     int64    `json:"seed"`
	Parallel int      `json:"parallel"`
	Results  []result `json:"results"`
}

func main() {
	var (
		meshName = flag.String("mesh", "CYLINDER", "mesh: CYLINDER, CUBE or PPRIME_NOZZLE")
		scale    = flag.Float64("scale", 0.01, "mesh scale relative to the paper's cell counts")
		domains  = flag.Int("domains", 128, "number of domains")
		procs    = flag.Int("procs", 16, "emulated processes")
		workers  = flag.Int("workers", 32, "cores per process")
		seed     = flag.Int64("seed", 1, "random seed")
		parallel = flag.Int("parallel", 0, "partitioner worker goroutines (0 = GOMAXPROCS, 1 = serial); the result is identical at every setting")
		commLat  = flag.Int64("comm-latency", 0, "time units per cross-process dependency edge")
		kway     = flag.Bool("kway", false, "also run SC_OC/MC_TL with the direct k-way method")
		asJSON   = flag.Bool("json", false, "emit one JSON report instead of the table")
		doRepart = flag.Bool("repart", false, "run the drift/repartition comparison instead of the strategy table")
		epochs   = flag.Int("epochs", 5, "drift epochs for -repart")
		step     = flag.Float64("drift-step", 0.05, "hotspot displacement per epoch, as a fraction of the mesh's x extent (-repart)")
	)
	flag.Parse()

	m, err := core.LoadMesh(*meshName, *scale)
	check(err)
	if *doRepart {
		runRepart(m, *domains, *procs, *workers, *parallel, *seed, *commLat, *epochs, *step, *asJSON)
		return
	}
	if !*asJSON {
		fmt.Printf("mesh %s: %d cells, census %v\n", m.Name, m.NumCells(), m.Census())
		fmt.Printf("%d domains on %d procs × %d cores, comm latency %d\n\n", *domains, *procs, *workers, *commLat)
	}

	type job struct {
		label string
		strat partition.Strategy
		opt   partition.Options
	}
	jobs := []job{
		{"SC_OC(rb)", partition.SCOC, partition.Options{Seed: *seed, Parallelism: *parallel}},
		{"MC_TL(rb)", partition.MCTL, partition.Options{Seed: *seed, Parallelism: *parallel}},
		{"UNIT(rb)", partition.UnitCells, partition.Options{Seed: *seed, Parallelism: *parallel}},
		{"GEOM_RCB", partition.GeomRCB, partition.Options{}},
		{"SFC", partition.SFC, partition.Options{}},
	}
	if *kway {
		jobs = append(jobs,
			job{"SC_OC(kway)", partition.SCOC, partition.Options{Seed: *seed, Method: partition.DirectKWay, Parallelism: *parallel}},
			job{"MC_TL(kway)", partition.MCTL, partition.Options{Seed: *seed, Method: partition.DirectKWay, Parallelism: *parallel}},
		)
	}

	if !*asJSON {
		fmt.Printf("%-12s %9s %10s %7s %7s %6s %10s %10s %7s\n",
			"strategy", "time", "edge cut", "imb", "lvlimb", "frag", "makespan", "comm vol", "eff")
	}
	cluster := flusim.Cluster{NumProcs: *procs, WorkersPerProc: *workers}
	rep := report{
		Mesh: m.Name, Cells: m.NumCells(), Census: m.Census(),
		Domains: *domains, Procs: *procs, Workers: *workers, Seed: *seed,
		Parallel: *parallel,
	}
	for _, j := range jobs {
		t0 := time.Now()
		res, err := partition.PartitionMesh(context.Background(), m, *domains, j.strat, j.opt)
		check(err)
		elapsed := time.Since(t0)

		q := metrics.EvaluatePartition(m, res, j.label)
		tg, err := buildTG(m, res)
		check(err)
		procOf := flusim.BlockMap(*domains, *procs)
		sim, err := flusim.Simulate(tg, procOf, flusim.Config{Cluster: cluster, CommLatency: *commLat})
		check(err)

		worstLvl := 0.0
		for _, v := range q.LevelImbalance {
			if v > worstLvl {
				worstLvl = v
			}
		}
		eff := 0.0
		if *workers > 0 && sim.Makespan > 0 {
			eff = float64(sim.TotalWork) / (float64(sim.Makespan) * float64(*procs**workers))
		}
		r := result{
			Strategy:     j.label,
			WallSeconds:  elapsed.Seconds(),
			EdgeCut:      res.EdgeCut,
			MaxImbalance: res.MaxImbalance(),
			LevelImb:     q.LevelImbalance,
			WorstLvlImb:  worstLvl,
			MaxFragments: q.MaxFragments(),
			Makespan:     sim.Makespan,
			CommVolume:   metrics.CommVolume(tg, procOf),
			Efficiency:   eff,
		}
		rep.Results = append(rep.Results, r)
		if !*asJSON {
			fmt.Printf("%-12s %9s %10d %7.2f %7.2f %6d %10d %10d %7.2f\n",
				r.Strategy, elapsed.Round(time.Millisecond), r.EdgeCut, r.MaxImbalance,
				r.WorstLvlImb, r.MaxFragments, r.Makespan, r.CommVolume, r.Efficiency)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(&rep))
	}
}

func buildTG(m *mesh.Mesh, res *partition.Result) (*taskgraph.TaskGraph, error) {
	return taskgraph.Build(m, res.Part, res.NumParts, taskgraph.Options{})
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "partbench:", err)
		os.Exit(1)
	}
}
