// Command partbench compares every partitioning strategy on one mesh: cut,
// balance, per-level balance, fragments, partitioning time, simulated
// makespan and communication volume — the quality axes the paper discusses,
// side by side, including the geometric baselines (RCB, Hilbert SFC) from
// the related-work section and both k-way construction methods.
//
// Example:
//
//	partbench -mesh CYLINDER -scale 0.01 -domains 128 -procs 16 -workers 32
//	partbench -mesh CUBE -scale 0.01 -json | jq '.results[].makespan'
//	partbench -report run.json -pipeline-trace pipe.json   # manifest + Perfetto trace
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"
	"time"

	"tempart/internal/core"
	"tempart/internal/eval"
	"tempart/internal/flusim"
	"tempart/internal/mesh"
	"tempart/internal/metrics"
	"tempart/internal/obs"
	"tempart/internal/partition"
	"tempart/internal/taskgraph"
)

// Pre-PR-4 evaluation-pipeline allocation baselines, measured on CYLINDER
// scale 0.01 / 128 domains / 16×32 cluster before the epoch-marker Build and
// reusable Simulator landed. Kept in the JSON report so the ≥3× trajectory
// stays visible from this PR on.
const (
	baselineBuildAllocsOp    = 22374
	baselineSimulateAllocsOp = 12675
)

// Pre-PR-8 refinement baselines: MC_TL(rb) on CYLINDER scale 0.005 / 128
// domains at -parallel 1, measured before the bucket-gain + pairwise-FM
// engine replaced the serial lazy-deletion heaps. Kept in the -phases report
// so the refine-phase trajectory stays visible next to fresh numbers.
const (
	baselineMCTLWallSeconds   = 0.590
	baselineMCTLRefineSeconds = 0.194
)

// sweepRow is one -sweep-parallel measurement: MC_TL(rb) partitioned at a
// given worker count, with the phase split.
type sweepRow struct {
	Parallel       int     `json:"parallel"`
	WallSeconds    float64 `json:"wall_seconds"`
	CoarsenSeconds float64 `json:"coarsen_seconds"`
	InitialSeconds float64 `json:"initial_seconds"`
	RefineSeconds  float64 `json:"refine_seconds"`
}

// refineSection carries the refinement-perf view of the report: the pre-PR-8
// serial baseline and the optional parallel sweep.
type refineSection struct {
	PrePR8WallSeconds   float64    `json:"pre_pr8_mctl_wall_seconds"`
	PrePR8RefineSeconds float64    `json:"pre_pr8_mctl_refine_seconds"`
	Sweep               []sweepRow `json:"parallel_sweep,omitempty"`
}

// result is one strategy's row, shared by the table and -json emitters.
type result struct {
	Strategy     string  `json:"strategy"`
	WallSeconds  float64 `json:"wall_seconds"`
	BuildSeconds float64 `json:"build_seconds"`
	SimSeconds   float64 `json:"simulate_seconds"`
	// Per-phase partition seconds from the obs spans (-phases). Zero for
	// the geometric strategies, which skip the multilevel pipeline.
	CoarsenSeconds float64 `json:"coarsen_seconds,omitempty"`
	InitialSeconds float64 `json:"initial_seconds,omitempty"`
	RefineSeconds  float64 `json:"refine_seconds,omitempty"`
	ReorderSeconds float64 `json:"reorder_seconds,omitempty"`
	// Memory view (-mem): peak live-heap bytes while this strategy
	// partitioned, and per-phase net heap deltas from the obs spans
	// (negative when a GC ran inside the phase).
	PeakHeapBytes    int64     `json:"peak_heap_bytes,omitempty"`
	CoarsenHeapBytes int64     `json:"coarsen_heap_bytes,omitempty"`
	InitialHeapBytes int64     `json:"initial_heap_bytes,omitempty"`
	RefineHeapBytes  int64     `json:"refine_heap_bytes,omitempty"`
	EdgeCut          int64     `json:"edge_cut"`
	MaxImbalance     float64   `json:"max_imbalance"`
	LevelImb         []float64 `json:"level_imbalance"`
	WorstLvlImb      float64   `json:"worst_level_imbalance"`
	MaxFragments     int       `json:"max_fragments"`
	Makespan         int64     `json:"makespan"`
	CommVolume       int64     `json:"comm_volume"`
	Efficiency       float64   `json:"efficiency"`
}

// evalSection tracks the evaluation pipeline's own performance: per-strategy
// build/simulate wall time plus the allocation counts of the two hot
// entry points, next to their pre-PR-4 baselines.
type evalSection struct {
	BuildAllocsOp            float64 `json:"build_allocs_op"`
	SimulateAllocsOp         float64 `json:"simulate_allocs_op"`
	BaselineBuildAllocsOp    float64 `json:"pre_pr4_build_allocs_op"`
	BaselineSimulateAllocsOp float64 `json:"pre_pr4_simulate_allocs_op"`
	Tasks                    int     `json:"tasks"`
	Deps                     int     `json:"deps"`
	BuildTasksPerSec         float64 `json:"build_tasks_per_sec"`
}

// memSection is the -mem footprint view: the mesh-generation footprint split
// from the partitioning footprint, the analytic finest-CSR size the streaming
// bound is stated against, and the process-level peaks.
type memSection struct {
	// MeshHeapBytes is the retained heap growth of mesh generation (GC'd
	// before and after, so transient generator garbage is excluded).
	MeshHeapBytes int64 `json:"mesh_heap_bytes"`
	// GraphCSRBytes is the analytic size of the finest MC_TL dual-graph CSR:
	// 4·((n+1) + 4·interiorFaces + n·ncon) with ncon = MaxLevel+1. The
	// paper-scale acceptance bound (peak RSS ≤ 2.5× this) divides by it.
	GraphCSRBytes int64 `json:"graph_csr_bytes"`
	// PeakHeapBytes is the largest per-strategy sampled live-heap peak.
	PeakHeapBytes int64 `json:"peak_heap_bytes"`
	// PeakRSSBytes is the kernel's VmHWM for the whole process (0 when the
	// platform hides it).
	PeakRSSBytes int64    `json:"peak_rss_bytes"`
	BytesPerCell float64  `json:"bytes_per_cell"`
	Full         *fullMem `json:"full,omitempty"`
}

// fullMem is the -mem-full subsection: one MC_TL(rb) partition of the same
// mesh at the paper's full scale, reporting the streaming acceptance ratios.
type fullMem struct {
	Scale           float64 `json:"scale"`
	Cells           int     `json:"cells"`
	MeshHeapBytes   int64   `json:"mesh_heap_bytes"`
	GraphCSRBytes   int64   `json:"graph_csr_bytes"`
	PeakHeapBytes   int64   `json:"peak_heap_bytes"`
	PeakRSSBytes    int64   `json:"peak_rss_bytes"`
	BytesPerCell    float64 `json:"bytes_per_cell"`
	PeakHeapOverCSR float64 `json:"peak_heap_over_csr"`
	PeakRSSOverCSR  float64 `json:"peak_rss_over_csr"`
	WallSeconds     float64 `json:"wall_seconds"`
}

// benchSchemaVersion versions the -json report layout. Bump it when a field
// changes meaning or disappears; adding fields does not require a bump.
const benchSchemaVersion = 1

type report struct {
	// SchemaVersion/GeneratedAt/GitRev stamp the report with its layout
	// version, production time (RFC 3339 UTC) and the VCS revision of the
	// binary, so committed snapshots and trajectory records carry their own
	// provenance.
	SchemaVersion int    `json:"schema_version"`
	GeneratedAt   string `json:"generated_at"`
	GitRev        string `json:"git_rev,omitempty"`

	Mesh     string         `json:"mesh"`
	Cells    int            `json:"cells"`
	Census   []int64        `json:"census"`
	Domains  int            `json:"domains"`
	Procs    int            `json:"procs"`
	Workers  int            `json:"workers"`
	Seed     int64          `json:"seed"`
	Parallel int            `json:"parallel"`
	Results  []result       `json:"results"`
	Eval     *evalSection   `json:"eval,omitempty"`
	Refine   *refineSection `json:"refine,omitempty"`
	Mem      *memSection    `json:"mem,omitempty"`
}

// graphCSRBytes is the analytic finest-CSR footprint: xadj (n+1) + adjncy and
// adjwgt (2·faces each) + vwgt (n·ncon), all int32.
func graphCSRBytes(cells, interiorFaces, ncon int) int64 {
	return 4 * (int64(cells+1) + 4*int64(interiorFaces) + int64(cells)*int64(ncon))
}

func mib(b int64) float64 { return float64(b) / (1 << 20) }

func main() {
	var (
		meshName = flag.String("mesh", "CYLINDER", "mesh: CYLINDER, CUBE or PPRIME_NOZZLE")
		scale    = flag.Float64("scale", 0.01, "mesh scale relative to the paper's cell counts")
		domains  = flag.Int("domains", 128, "number of domains")
		procs    = flag.Int("procs", 16, "emulated processes")
		workers  = flag.Int("workers", 32, "cores per process")
		seed     = flag.Int64("seed", 1, "random seed")
		parallel = flag.Int("parallel", 0, "worker goroutines for partitioning, task-graph build and evaluation fan-out (0 = GOMAXPROCS, 1 = serial); results are identical at every setting")
		commLat  = flag.Int64("comm-latency", 0, "time units per cross-process dependency edge")
		kway     = flag.Bool("kway", false, "also run SC_OC/MC_TL with the direct k-way method")
		phases   = flag.Bool("phases", false, "record the per-phase partition seconds split (coarsen/initial/refine/reorder) per strategy, printed after the table and included in -json")
		sweepPar = flag.String("sweep-parallel", "", "comma-separated parallelism settings (e.g. 1,8); re-partitions MC_TL(rb) at each and reports wall + phase seconds next to the pre-PR8 serial baseline (implies -phases)")
		reorder  = flag.Bool("reorder", false, "partition under a cache-conscious BFS reorder (Options.Reorder) for the multilevel strategies")
		mem      = flag.Bool("mem", false, "record the memory footprint: mesh-generation heap split from partitioning heap, analytic finest-CSR bytes, per-strategy peak heap and per-phase heap deltas, process peak RSS; printed after the table and included in -json")
		memFull  = flag.Bool("mem-full", false, "additionally run one MC_TL(rb) partition of the mesh at the paper's full scale (-scale 1.0) and report peak heap/RSS against the finest-CSR footprint (implies -mem; takes minutes and gigabytes)")
		memChild = flag.Bool("mem-full-child", false, "internal: run only the full-scale footprint probe and emit its JSON on stdout (spawned by -mem-full for a clean per-process RSS high-water)")
		arena    = flag.Bool("arena", false, "mmap spilled coarse levels read-only (partition.Options.Arena) instead of heap read-back; results are byte-identical either way")
		asJSON   = flag.Bool("json", false, "emit one JSON report instead of the table")
		doRepart = flag.Bool("repart", false, "run the drift/repartition comparison instead of the strategy table")
		epochs   = flag.Int("epochs", 5, "drift epochs for -repart")
		step     = flag.Float64("drift-step", 0.05, "hotspot displacement per epoch, as a fraction of the mesh's x extent (-repart)")
		reportTo = flag.String("report", "", "write a JSON run manifest (inputs, build, per-phase timings, quality) to this file; pins -parallel 1 so phase times tile the partition wall clock")
		pipeTo   = flag.String("pipeline-trace", "", "write the instrumented pipeline spans as a Chrome trace (open in Perfetto) to this file")
		traceTo  = flag.String("trace", "", "write the winning strategy's FLUSIM schedule as a Chrome trace to this file")
		peers    = flag.String("peers", "", "fleet mode: comma-separated tempartd base URLs (host:port,...); sends the benchmark through every member and reports the per-node latency split instead of partitioning in-process")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionLine("partbench"))
		return
	}
	if *peers != "" {
		runFleet(*peers, *meshName, *scale, *domains, *seed, *asJSON)
		return
	}
	if *memChild {
		f := fullScaleFootprint(*meshName, *domains,
			partition.Options{Seed: *seed, Parallelism: *parallel, Reorder: *reorder, Arena: *arena})
		check(json.NewEncoder(os.Stdout).Encode(f))
		return
	}
	if *reportTo != "" && *parallel != 1 {
		fmt.Fprintln(os.Stderr, "partbench: -report pins -parallel 1 so per-phase timings tile the partition wall clock")
		*parallel = 1
	}
	if *sweepPar != "" {
		*phases = true
	}
	if *memFull {
		*mem = true
	}
	var rec *obs.Recorder
	if *reportTo != "" || *pipeTo != "" || *phases || *mem {
		rec = obs.NewRecorder()
	}
	if *mem {
		rec.TrackMemory()
	}
	ctx := obs.WithRecorder(context.Background(), rec)

	var meshHeap int64
	if *mem {
		runtime.GC()
		meshHeap = -obs.HeapBytes()
	}
	m, err := core.LoadMesh(*meshName, *scale)
	check(err)
	if *mem {
		runtime.GC()
		meshHeap += obs.HeapBytes()
	}
	ev := eval.New(eval.Options{Parallelism: *parallel})
	if *doRepart {
		runRepart(ev, m, *domains, *procs, *workers, *parallel, *seed, *commLat, *epochs, *step, *asJSON)
		return
	}
	if !*asJSON {
		fmt.Printf("mesh %s: %d cells, census %v\n", m.Name, m.NumCells(), m.Census())
		fmt.Printf("%d domains on %d procs × %d cores, comm latency %d\n\n", *domains, *procs, *workers, *commLat)
	}

	type job struct {
		label string
		strat partition.Strategy
		opt   partition.Options
	}
	mlOpt := partition.Options{Seed: *seed, Parallelism: *parallel, Reorder: *reorder, Arena: *arena}
	jobs := []job{
		{"SC_OC(rb)", partition.SCOC, mlOpt},
		{"MC_TL(rb)", partition.MCTL, mlOpt},
		{"UNIT(rb)", partition.UnitCells, mlOpt},
		{"GEOM_RCB", partition.GeomRCB, partition.Options{}},
		{"SFC", partition.SFC, partition.Options{}},
	}
	if *kway {
		kwOpt := mlOpt
		kwOpt.Method = partition.DirectKWay
		jobs = append(jobs,
			job{"SC_OC(kway)", partition.SCOC, kwOpt},
			job{"MC_TL(kway)", partition.MCTL, kwOpt},
		)
	}

	if !*asJSON {
		fmt.Printf("%-12s %9s %9s %9s %10s %7s %7s %6s %10s %10s %7s\n",
			"strategy", "time", "build", "sim", "edge cut", "imb", "lvlimb", "frag", "makespan", "comm vol", "eff")
	}
	cluster := flusim.Cluster{NumProcs: *procs, WorkersPerProc: *workers}
	procOf := flusim.BlockMap(*domains, *procs)
	rep := report{
		SchemaVersion: benchSchemaVersion,
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GitRev:        obs.ReadBuildInfo().Revision,
		Mesh:          m.Name, Cells: m.NumCells(), Census: m.Census(),
		Domains: *domains, Procs: *procs, Workers: *workers, Seed: *seed,
		Parallel: *parallel,
	}
	var mctlPart []int32
	var bestLabel string
	var bestPart []int32
	var bestMakespan int64
	for _, j := range jobs {
		var sampler *obs.PeakSampler
		if *mem {
			runtime.GC() // isolate this strategy's peak from prior garbage
			sampler = obs.StartPeakSampler(0)
		}
		before := rec.PhaseTotals()
		t0 := time.Now()
		res, err := partition.PartitionMesh(ctx, m, *domains, j.strat, j.opt)
		check(err)
		elapsed := time.Since(t0)
		after := rec.PhaseTotals()
		var peakHeap int64
		if sampler != nil {
			peakHeap = sampler.Stop()
		}

		q := metrics.EvaluatePartition(m, res, j.label)
		out, err := ev.Evaluate(eval.Spec{
			Mesh: m, Part: res.Part, NumDomains: res.NumParts,
			ProcOf: procOf,
			Sim:    flusim.Config{Cluster: cluster, CommLatency: *commLat},
			Obs:    rec,
		})
		check(err)
		if j.label == "MC_TL(rb)" {
			mctlPart = res.Part
		}
		if bestPart == nil || out.Makespan < bestMakespan {
			bestLabel, bestPart, bestMakespan = j.label, res.Part, out.Makespan
		}

		worstLvl := 0.0
		for _, v := range q.LevelImbalance {
			if v > worstLvl {
				worstLvl = v
			}
		}
		r := result{
			Strategy:         j.label,
			WallSeconds:      elapsed.Seconds(),
			BuildSeconds:     out.BuildSeconds,
			SimSeconds:       out.SimulateSeconds,
			CoarsenSeconds:   phaseDelta(before, after, "partition/coarsen"),
			InitialSeconds:   phaseDelta(before, after, "partition/initial"),
			RefineSeconds:    phaseDelta(before, after, "partition/refine"),
			ReorderSeconds:   phaseDelta(before, after, "partition/reorder"),
			PeakHeapBytes:    peakHeap,
			CoarsenHeapBytes: phaseHeapDelta(before, after, "partition/coarsen"),
			InitialHeapBytes: phaseHeapDelta(before, after, "partition/initial"),
			RefineHeapBytes:  phaseHeapDelta(before, after, "partition/refine"),
			EdgeCut:          res.EdgeCut,
			MaxImbalance:     res.MaxImbalance(),
			LevelImb:         q.LevelImbalance,
			WorstLvlImb:      worstLvl,
			MaxFragments:     q.MaxFragments(),
			Makespan:         out.Makespan,
			CommVolume:       out.CommVolume,
			Efficiency:       out.Efficiency,
		}
		rep.Results = append(rep.Results, r)
		if !*asJSON {
			fmt.Printf("%-12s %9s %9s %9s %10d %7.2f %7.2f %6d %10d %10d %7.2f\n",
				r.Strategy, elapsed.Round(time.Millisecond),
				time.Duration(r.BuildSeconds*float64(time.Second)).Round(time.Microsecond),
				time.Duration(r.SimSeconds*float64(time.Second)).Round(time.Microsecond),
				r.EdgeCut, r.MaxImbalance,
				r.WorstLvlImb, r.MaxFragments, r.Makespan, r.CommVolume, r.Efficiency)
		}
	}
	if *phases && !*asJSON {
		fmt.Printf("\nper-phase partition seconds (obs spans; concurrent spans sum CPU-cumulatively):\n")
		fmt.Printf("%-12s %9s %9s %9s %9s\n", "strategy", "coarsen", "initial", "refine", "reorder")
		for _, r := range rep.Results {
			fmt.Printf("%-12s %9.3f %9.3f %9.3f %9.3f\n",
				r.Strategy, r.CoarsenSeconds, r.InitialSeconds, r.RefineSeconds, r.ReorderSeconds)
		}
	}
	if *phases {
		rep.Refine = &refineSection{
			PrePR8WallSeconds:   baselineMCTLWallSeconds,
			PrePR8RefineSeconds: baselineMCTLRefineSeconds,
		}
		if *sweepPar != "" {
			if !*asJSON {
				fmt.Printf("\nMC_TL(rb) parallel sweep (pre-PR8 serial baseline: wall %.3fs, refine %.3fs):\n",
					baselineMCTLWallSeconds, baselineMCTLRefineSeconds)
				fmt.Printf("%8s %9s %9s %9s %9s\n", "parallel", "wall", "coarsen", "initial", "refine")
			}
			for _, field := range strings.Split(*sweepPar, ",") {
				par, err := strconv.Atoi(strings.TrimSpace(field))
				if err != nil || par < 1 {
					check(fmt.Errorf("bad -sweep-parallel entry %q", field))
				}
				opt := mlOpt
				opt.Parallelism = par
				before := rec.PhaseTotals()
				t0 := time.Now()
				_, err = partition.PartitionMesh(ctx, m, *domains, partition.MCTL, opt)
				check(err)
				after := rec.PhaseTotals()
				sr := sweepRow{
					Parallel:       par,
					WallSeconds:    time.Since(t0).Seconds(),
					CoarsenSeconds: phaseDelta(before, after, "partition/coarsen"),
					InitialSeconds: phaseDelta(before, after, "partition/initial"),
					RefineSeconds:  phaseDelta(before, after, "partition/refine"),
				}
				rep.Refine.Sweep = append(rep.Refine.Sweep, sr)
				if !*asJSON {
					fmt.Printf("%8d %9.3f %9.3f %9.3f %9.3f\n",
						sr.Parallel, sr.WallSeconds, sr.CoarsenSeconds, sr.InitialSeconds, sr.RefineSeconds)
				}
			}
		}
	}
	if *mem {
		ms := &memSection{
			MeshHeapBytes: meshHeap,
			GraphCSRBytes: graphCSRBytes(m.NumCells(), m.NumInteriorFaces, int(m.MaxLevel)+1),
		}
		for _, r := range rep.Results {
			if r.PeakHeapBytes > ms.PeakHeapBytes {
				ms.PeakHeapBytes = r.PeakHeapBytes
			}
		}
		ms.BytesPerCell = float64(ms.PeakHeapBytes) / float64(m.NumCells())
		if *memFull {
			ms.Full = measureFullScale(*meshName, *domains, mlOpt)
		}
		ms.PeakRSSBytes = obs.PeakRSSBytes()
		rep.Mem = ms
		if !*asJSON {
			fmt.Printf("\nmemory (-mem): mesh gen %.1f MiB heap, finest CSR %.1f MiB (analytic), peak heap %.1f MiB (%.1f bytes/cell), peak RSS %.1f MiB\n",
				mib(ms.MeshHeapBytes), mib(ms.GraphCSRBytes), mib(ms.PeakHeapBytes), ms.BytesPerCell, mib(ms.PeakRSSBytes))
			fmt.Printf("%-12s %10s %10s %10s %10s  (MiB; phase deltas net of GC)\n",
				"strategy", "peak heap", "coarsen", "initial", "refine")
			for _, r := range rep.Results {
				fmt.Printf("%-12s %10.1f %10.1f %10.1f %10.1f\n", r.Strategy,
					mib(r.PeakHeapBytes), mib(r.CoarsenHeapBytes), mib(r.InitialHeapBytes), mib(r.RefineHeapBytes))
			}
			if ms.Full != nil {
				f := ms.Full
				fmt.Printf("\nfull scale (-mem-full, MC_TL(rb), %d cells): peak heap %.0f MiB (%.2f x CSR), peak RSS %.0f MiB (%.2f x CSR), %.1f bytes/cell, %.1fs\n",
					f.Cells, mib(f.PeakHeapBytes), f.PeakHeapOverCSR, mib(f.PeakRSSBytes), f.PeakRSSOverCSR, f.BytesPerCell, f.WallSeconds)
			}
		}
	}
	if mctlPart != nil {
		rep.Eval = measureEvalPipeline(m, mctlPart, *domains, procOf, cluster, *commLat)
		if !*asJSON {
			fmt.Printf("\neval pipeline (MC_TL decomposition): build %.0f allocs/op (pre-PR4 %d), simulate %.0f allocs/op (pre-PR4 %d), %.0f tasks/s built\n",
				rep.Eval.BuildAllocsOp, baselineBuildAllocsOp,
				rep.Eval.SimulateAllocsOp, baselineSimulateAllocsOp,
				rep.Eval.BuildTasksPerSec)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(&rep))
	}

	if *traceTo != "" && bestPart != nil {
		// Re-evaluate the winner with trace recording on; the task graph comes
		// from the evaluator's cache, so only the simulation reruns.
		out, err := ev.Evaluate(eval.Spec{
			Mesh: m, Part: bestPart, NumDomains: *domains,
			ProcOf: procOf,
			Sim:    flusim.Config{Cluster: cluster, CommLatency: *commLat, RecordTrace: true},
			Obs:    rec,
		})
		check(err)
		writeFile(*traceTo, out.Trace.WriteChromeTrace)
		fmt.Fprintf(os.Stderr, "partbench: FLUSIM schedule of %s (makespan %d) written to %s\n",
			bestLabel, bestMakespan, *traceTo)
	}
	if *pipeTo != "" {
		writeFile(*pipeTo, rec.WriteChromeTrace)
		fmt.Fprintf(os.Stderr, "partbench: pipeline trace written to %s (open in Perfetto)\n", *pipeTo)
	}
	if *reportTo != "" {
		man := obs.NewManifest("partbench")
		man.Inputs["mesh"] = m.Name
		man.Inputs["cells"] = m.NumCells()
		man.Inputs["scale"] = *scale
		man.Inputs["domains"] = *domains
		man.Inputs["procs"] = *procs
		man.Inputs["workers"] = *workers
		man.Inputs["seed"] = *seed
		man.Inputs["parallel"] = *parallel
		man.Inputs["comm_latency"] = *commLat
		man.Inputs["kway"] = *kway
		for _, r := range rep.Results {
			man.Metrics["edge_cut/"+r.Strategy] = float64(r.EdgeCut)
			man.Metrics["max_imbalance/"+r.Strategy] = r.MaxImbalance
			man.Metrics["makespan/"+r.Strategy] = float64(r.Makespan)
			man.Metrics["comm_volume/"+r.Strategy] = float64(r.CommVolume)
			man.Metrics["partition_seconds/"+r.Strategy] = r.WallSeconds
		}
		man.Finish(rec)
		writeFile(*reportTo, man.WriteJSON)
		fmt.Fprintf(os.Stderr, "partbench: run manifest written to %s\n", *reportTo)
	}
}

// phaseDelta returns the seconds a span name accumulated between two
// PhaseTotals snapshots — the per-strategy share of a shared recorder.
func phaseDelta(before, after map[string]obs.PhaseStat, name string) float64 {
	d := after[name].Seconds - before[name].Seconds
	if d < 0 {
		return 0
	}
	return d
}

// phaseHeapDelta is phaseDelta for net heap growth; negative values (a GC
// landed inside the phase) are kept, they are informative.
func phaseHeapDelta(before, after map[string]obs.PhaseStat, name string) int64 {
	return after[name].HeapDelta - before[name].HeapDelta
}

// measureFullScale runs the full-scale footprint probe in a child process and
// returns its report. Peak RSS (VmHWM) is a process-lifetime high-water mark,
// so measured in this process it would also count whatever the small-scale
// strategy sweep touched; re-execing partbench with the internal
// -mem-full-child flag gives the probe a process of its own whose high-water
// is exactly the full-scale run. If the executable path cannot be resolved
// (unusual embedding), the probe degrades to measuring in-process.
func measureFullScale(meshName string, domains int, opt partition.Options) *fullMem {
	exe, err := os.Executable()
	if err != nil {
		return fullScaleFootprint(meshName, domains, opt)
	}
	args := []string{
		"-mem-full-child",
		"-mesh", meshName,
		"-domains", strconv.Itoa(domains),
		"-seed", strconv.FormatInt(opt.Seed, 10),
		"-parallel", strconv.Itoa(opt.Parallelism),
	}
	if opt.Reorder {
		args = append(args, "-reorder")
	}
	if opt.Arena {
		args = append(args, "-arena")
	}
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		check(fmt.Errorf("-mem-full child: %w", err))
	}
	var f fullMem
	check(json.Unmarshal(out, &f))
	return &f
}

// fullScaleFootprint partitions the named mesh at the paper's full scale with
// MC_TL(rb) — the configuration the streaming-coarsening acceptance bound is
// stated for — and reports footprint against the analytic finest-CSR size.
// It is meant to run in a fresh process (see measureFullScale).
func fullScaleFootprint(meshName string, domains int, opt partition.Options) *fullMem {
	fmt.Fprintf(os.Stderr, "partbench: -mem-full: partitioning %s at scale 1.0 (takes minutes and gigabytes)...\n", meshName)
	t0 := time.Now()
	m, err := core.LoadMesh(meshName, 1.0)
	check(err)
	runtime.GC()
	meshHeap := obs.HeapBytes()
	cells := m.NumCells()
	csr := graphCSRBytes(cells, m.NumInteriorFaces, int(m.MaxLevel)+1)
	// The soft limit goes up before the dual graph is even built: peak RSS is
	// a process high-water mark, so GC garbage — normally allowed to reach
	// ~1× live heap — would otherwise inflate RSS past the bound during
	// graph assembly and the partition alike. The bound is stated against
	// the analytic finest-CSR footprint, known as soon as the mesh exists.
	prevLimit := debug.SetMemoryLimit(23 * csr / 10)
	g, err := partition.StrategyGraph(m, partition.MCTL)
	check(err)
	// The partitioner only needs the dual graph; dropping the mesh (and
	// returning its pages to the OS) before partitioning keeps the measured
	// peak to what the partition itself costs.
	m = nil //nolint:ineffassign // drops the last mesh reference for the GC
	debug.FreeOSMemory()
	sampler := obs.StartPeakSampler(0)
	_, err = partition.Partition(context.Background(), g, domains, opt)
	check(err)
	peak := sampler.Stop()
	rss := obs.PeakRSSBytes()
	debug.SetMemoryLimit(prevLimit)
	return &fullMem{
		Scale:           1.0,
		Cells:           cells,
		MeshHeapBytes:   meshHeap,
		GraphCSRBytes:   csr,
		PeakHeapBytes:   peak,
		PeakRSSBytes:    rss,
		BytesPerCell:    float64(peak) / float64(cells),
		PeakHeapOverCSR: float64(peak) / float64(csr),
		PeakRSSOverCSR:  float64(rss) / float64(csr),
		WallSeconds:     time.Since(t0).Seconds(),
	}
}

// writeFile streams one of the JSON emitters into path.
func writeFile(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	check(err)
	check(write(f))
	check(f.Close())
}

// measureEvalPipeline measures the evaluation pipeline's allocation counts
// and build throughput on the given decomposition. Builds are measured
// serial (parallel shards add goroutine allocations but identical output);
// the simulator is measured warmed, which is the steady state every sweep
// runs in.
func measureEvalPipeline(m *mesh.Mesh, part []int32, domains int, procOf []int32, cluster flusim.Cluster, commLat int64) *evalSection {
	opt := taskgraph.Options{Parallelism: 1}
	tg, err := taskgraph.Build(m, part, domains, opt)
	check(err)
	cfg := flusim.Config{Cluster: cluster, CommLatency: commLat}

	buildAllocs := testing.AllocsPerRun(3, func() {
		if _, err := taskgraph.Build(m, part, domains, opt); err != nil {
			check(err)
		}
	})
	t0 := time.Now()
	const buildReps = 3
	for i := 0; i < buildReps; i++ {
		if _, err := taskgraph.Build(m, part, domains, opt); err != nil {
			check(err)
		}
	}
	buildSec := time.Since(t0).Seconds() / buildReps

	sim := flusim.NewSimulator()
	var res flusim.Result
	check(sim.SimulateInto(&res, tg, procOf, cfg))
	simAllocs := testing.AllocsPerRun(3, func() {
		if err := sim.SimulateInto(&res, tg, procOf, cfg); err != nil {
			check(err)
		}
	})

	return &evalSection{
		BuildAllocsOp:            buildAllocs,
		SimulateAllocsOp:         simAllocs,
		BaselineBuildAllocsOp:    baselineBuildAllocsOp,
		BaselineSimulateAllocsOp: baselineSimulateAllocsOp,
		Tasks:                    tg.NumTasks(),
		Deps:                     tg.NumDeps(),
		BuildTasksPerSec:         float64(tg.NumTasks()) / buildSec,
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "partbench:", err)
		os.Exit(1)
	}
}
