package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

// Fleet mode (-peers): instead of partitioning in-process, partbench drives
// a running tempartd fleet. The same request is sent through every member in
// turn, so the report shows the cluster behaviors side by side — the first
// hop computes (or fans out), later hops forward to the owner or answer from
// their replicated cache — with the latency split per node. Responses are
// byte-compared across members: a healthy fleet returns identical bytes no
// matter which node the client talks to.

// fleetNodeResult is one member's handling of the request.
type fleetNodeResult struct {
	URL     string  `json:"url"`
	Node    string  `json:"node,omitempty"` // member id from /v1/cluster/status
	Seconds float64 `json:"seconds"`
	Status  int     `json:"status"`
	// Cluster relays the X-Tempartd-Cluster header ("forwarded;peer=<id>"
	// when this member routed the request to its owner shard).
	Cluster string `json:"cluster,omitempty"`
	// Cache relays X-Tempartd-Cache: miss, hit, or peer (owner-cache probe).
	Cache string `json:"cache,omitempty"`
	Bytes int    `json:"bytes"`
}

type fleetStrategyResult struct {
	Strategy string `json:"strategy"`
	// Identical reports whether every member returned byte-identical
	// payloads — the fleet's core correctness contract.
	Identical bool              `json:"identical"`
	Nodes     []fleetNodeResult `json:"nodes"`
}

type fleetReport struct {
	Mesh    string                `json:"mesh"`
	Scale   float64               `json:"scale"`
	Domains int                   `json:"domains"`
	Seed    int64                 `json:"seed"`
	Peers   []string              `json:"peers"`
	Results []fleetStrategyResult `json:"results"`
}

// parseFleetPeers normalizes the -peers list into base URLs.
func parseFleetPeers(spec string) []string {
	var urls []string
	for _, p := range strings.Split(spec, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		urls = append(urls, strings.TrimRight(p, "/"))
	}
	return urls
}

// fleetNodeID asks a member for its node id; empty when the daemon is not a
// cluster member (single node) or unreachable.
func fleetNodeID(client *http.Client, base string) string {
	resp, err := client.Get(base + "/v1/cluster/status")
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		return ""
	}
	defer resp.Body.Close()
	var st struct {
		Self string `json:"self"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return ""
	}
	return st.Self
}

func runFleet(peersSpec, meshName string, scale float64, domains int, seed int64, asJSON bool) {
	peers := parseFleetPeers(peersSpec)
	if len(peers) == 0 {
		fmt.Fprintln(os.Stderr, "partbench: -peers lists no members")
		os.Exit(2)
	}
	client := &http.Client{Timeout: 5 * time.Minute}
	ids := make([]string, len(peers))
	for i, p := range peers {
		ids[i] = fleetNodeID(client, p)
	}

	rep := fleetReport{Mesh: meshName, Scale: scale, Domains: domains, Seed: seed, Peers: peers}
	if !asJSON {
		fmt.Printf("fleet: %d members, mesh %s scale %g, %d domains, seed %d\n\n",
			len(peers), meshName, scale, domains, seed)
	}
	for _, strat := range []string{"SC_OC", "MC_TL", "UNIT", "GEOM_RCB", "SFC"} {
		body := fmt.Sprintf(`{"mesh":%q,"scale":%g,"k":%d,"strategy":%q,"options":{"seed":%d}}`,
			meshName, scale, domains, strat, seed)
		sr := fleetStrategyResult{Strategy: strat, Identical: true}
		var first []byte
		for i, p := range peers {
			t0 := time.Now()
			resp, err := client.Post(p+"/v1/partition", "application/json", strings.NewReader(body))
			if err != nil {
				fmt.Fprintf(os.Stderr, "partbench: %s via %s: %v\n", strat, p, err)
				os.Exit(1)
			}
			payload, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "partbench: %s via %s: %v\n", strat, p, err)
				os.Exit(1)
			}
			elapsed := time.Since(t0)
			if resp.StatusCode != http.StatusOK {
				fmt.Fprintf(os.Stderr, "partbench: %s via %s: status %d: %s\n", strat, p, resp.StatusCode, payload)
				os.Exit(1)
			}
			if first == nil {
				first = payload
			} else if !bytes.Equal(first, payload) {
				sr.Identical = false
			}
			sr.Nodes = append(sr.Nodes, fleetNodeResult{
				URL:     p,
				Node:    ids[i],
				Seconds: elapsed.Seconds(),
				Status:  resp.StatusCode,
				Cluster: resp.Header.Get("X-Tempartd-Cluster"),
				Cache:   resp.Header.Get("X-Tempartd-Cache"),
				Bytes:   len(payload),
			})
		}
		rep.Results = append(rep.Results, sr)
		if !asJSON {
			fmt.Printf("%-10s identical=%v\n", strat, sr.Identical)
			for _, n := range sr.Nodes {
				extra := n.Cache
				if n.Cluster != "" {
					extra += " " + n.Cluster
				}
				fmt.Printf("  %-8s %-28s %9s  %s\n", n.Node, n.URL,
					time.Duration(n.Seconds*float64(time.Second)).Round(time.Millisecond), extra)
			}
		}
		if !sr.Identical {
			fmt.Fprintf(os.Stderr, "partbench: %s: fleet members returned DIFFERENT bytes\n", strat)
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(&rep))
	}
	for _, r := range rep.Results {
		if !r.Identical {
			os.Exit(1)
		}
	}
}
