#!/usr/bin/env bash
# Three-node tempartd fleet, end to end:
#   1. boot a single-node reference daemon and a 3-member durable fleet;
#   2. send the same request through EVERY member (owner and non-owners) and
#      byte-compare each answer against the single-node daemon's — routing,
#      forwarding and coordinator fan-out must be invisible in the payload;
#   3. SIGKILL one member and repeat with a fresh request via the survivors:
#      degraded but correct, the client never sees the failure;
#   4. drain the survivors and verify their provenance chains offline.
#
# Usage: build tempartd first, then run; TEMPARTD overrides the binary path.
#   go build -o /tmp/tempartd ./cmd/tempartd && bash scripts/cluster_integration.sh
set -euxo pipefail

BIN=${TEMPARTD:-/tmp/tempartd}
BASE=127.0.0.1
P0=18080 P1=18081 P2=18082 P3=18083
PEERS="n1=http://$BASE:$P1,n2=http://$BASE:$P2,n3=http://$BASE:$P3"
WORK=$(mktemp -d)
REQ1='{"mesh":"CYLINDER","scale":0.002,"k":8,"strategy":"MC_TL","options":{"seed":11}}'
REQ2='{"mesh":"CYLINDER","scale":0.002,"k":8,"strategy":"MC_TL","options":{"seed":22}}'

wait_ready() {
  for _ in $(seq 1 100); do
    if curl -sf "$1/readyz" >/dev/null; then return 0; fi
    sleep 0.2
  done
  echo "daemon at $1 never became ready" >&2
  return 1
}

post() { # post <port> <body> <outfile>
  curl -sf "http://$BASE:$1/v1/partition" -H 'Content-Type: application/json' -d "$2" > "$3"
}

cleanup() { kill "$SOLO" "$N1" "$N2" "$N3" 2>/dev/null || true; }
trap cleanup EXIT

"$BIN" -addr "$BASE:$P0" -access-log=false &
SOLO=$!
# -fanout-min-cells 1000 puts the 12k-cell test mesh over the coordinator
# threshold, so the fleet path actually splits the bisection tree.
for i in 1 2 3; do
  port=P$i
  "$BIN" -addr "$BASE:${!port}" -node-id "n$i" -peers "$PEERS" \
    -fanout-min-cells 1000 -data-dir "$WORK/n$i" -access-log=false &
  eval "N$i=$!"
done
for port in $P0 $P1 $P2 $P3; do wait_ready "http://$BASE:$port"; done

# Every member must answer with the single-node daemon's exact bytes.
post $P0 "$REQ1" "$WORK/solo1.json"
for port in $P1 $P2 $P3; do
  post "$port" "$REQ1" "$WORK/fleet1-$port.json"
  cmp "$WORK/solo1.json" "$WORK/fleet1-$port.json"
done

# Fleet visibility: full membership in status, cluster series in /metrics.
curl -sf "http://$BASE:$P1/v1/cluster/status" | grep -q '"n3"'
curl -sf "http://$BASE:$P1/metrics" | grep -q '^tempartd_cluster_peers 3'

# Stitched distributed trace: a traced fan-out on n1 must retain ONE trace
# whose grafted subtree spans carry node stamps from >= 2 distinct fleet
# members, and the partition vector must match the untraced single-node run.
curl -sfD "$WORK/trace-headers" "http://$BASE:$P1/v1/partition?debug=trace" \
  -H 'Content-Type: application/json' -d "$REQ1" > "$WORK/traced1.json"
TRACE_ID=$(tr -d '\r' < "$WORK/trace-headers" | awk 'tolower($1)=="x-request-id:"{print $2}')
test -n "$TRACE_ID"
curl -sf "http://$BASE:$P1/v1/traces/$TRACE_ID?format=spans" > "$WORK/trace-spans.json"
python3 - "$WORK/trace-spans.json" "$WORK/traced1.json" "$WORK/solo1.json" <<'PY'
import json, sys
detail = json.load(open(sys.argv[1]))
nodes = {s.get("node") for s in detail["spans"] if s.get("node")}
assert len(nodes) >= 2, f"stitched trace has subtree spans from {nodes}, want >= 2 node ids"
assert len(detail["nodes"]) >= 3, f"trace node set {detail['nodes']}, want coordinator + 2 peers"
for i, s in enumerate(detail["spans"]):
    assert s["parent"] < i, f"span {i} has parent {s['parent']} — graft produced an invalid tree"
traced = json.load(open(sys.argv[2]))
solo = json.load(open(sys.argv[3]))
assert traced["part"] == solo["part"], "traced partition diverges from untraced single-node run"
print(f"stitched trace OK: {len(detail['spans'])} spans from nodes {sorted(detail['nodes'])}")
PY
# The same trace renders as Chrome trace-event JSON with per-node lanes.
curl -sf "http://$BASE:$P1/v1/traces/$TRACE_ID" | grep -q '"process_name"'
curl -sf "http://$BASE:$P1/v1/traces/recent" | grep -q "\"$TRACE_ID\""

# Kill a member outright (no drain, no goodbye) and keep serving.
kill -9 "$N3"
post $P0 "$REQ2" "$WORK/solo2.json"
for port in $P1 $P2; do
  post "$port" "$REQ2" "$WORK/fleet2-$port.json"
  cmp "$WORK/solo2.json" "$WORK/fleet2-$port.json"
done

# Drain the survivors; their provenance chains must verify offline.
kill -TERM "$N1" "$N2"
wait "$N1"
wait "$N2"
"$BIN" -data-dir "$WORK/n1" -verify
"$BIN" -data-dir "$WORK/n2" -verify

kill -TERM "$SOLO"
wait "$SOLO"
echo "cluster integration: OK"
