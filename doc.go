// Package tempart is a Go reproduction of "Multi-Criteria Mesh Partitioning
// for an Explicit Temporal Adaptive Task-Distributed Finite-Volume Solver"
// (Lasserre, Couteyen-Carpaye, Guermouche, Namyst — PDSEC/IPDPS-W 2024).
//
// The library implements, from scratch and on the standard library only:
//
//   - a multilevel multi-constraint graph partitioner (the METIS stand-in)
//     with the paper's SC_OC and MC_TL strategies (internal/partition);
//   - synthetic versions of the paper's three Airbus meshes with exact
//     temporal-level censuses (internal/mesh);
//   - the adaptive time-stepping scheme and Algorithm 1 task-graph
//     generation (internal/temporal, internal/taskgraph);
//   - the FLUSIM discrete-event simulator (internal/flusim);
//   - a task-based runtime and an explicit finite-volume solver — the
//     FLUSEPA/StarPU analogues (internal/runtime, internal/fv,
//     internal/solver);
//   - every table and figure of the evaluation (internal/experiments), with
//     benchmarks in bench_test.go.
//
// Start with internal/core for the high-level API, cmd/experiments to
// regenerate the paper's results, and examples/quickstart for a tour.
package tempart
