// Quickstart: partition a temporally adaptive mesh two ways and watch the
// task schedule change.
//
// This walks the paper's core pipeline in ~40 lines: load a mesh whose cells
// carry temporal levels, decompose it with the baseline operating-cost
// strategy (SC_OC) and with the temporal-level-aware multi-constraint
// strategy (MC_TL), simulate both schedules on the same virtual cluster and
// compare makespans, balance and communication volume.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"tempart/internal/core"
	"tempart/internal/mesh"
	"tempart/internal/partition"
)

func main() {
	// CYLINDER at 1/200 of the paper's size: ~32k cells, 4 temporal levels.
	m, err := core.LoadMesh("CYLINDER", 0.005)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh %s: %d cells, levels census %v\n\n", m.Name, m.NumCells(), m.Census())

	cluster := core.Cluster{NumProcs: 8, WorkersPerProc: 8}
	rows, err := core.Compare(context.Background(), m, core.CompareConfig{
		NumDomains: 64,
		Cluster:    cluster,
		Strategies: []partition.Strategy{partition.SCOC, partition.MCTL},
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %10s %8s %10s %10s %6s  %s\n",
		"strategy", "makespan", "speedup", "edge cut", "comm vol", "eff", "per-level imbalance")
	for _, r := range rows {
		fmt.Printf("%-8s %10d %7.2fx %10d %10d %6.2f  %v\n",
			r.Strategy, r.Makespan, r.Speedup, r.EdgeCut, r.CommVolume, r.Efficiency, fmtImb(r.LevelImbalance))
	}

	// Show the two schedules: digits are subiterations, dots are idle time.
	fmt.Println("\nSC_OC schedule (note the idle blocks after subiteration 0):")
	printGantt(m, 64, partition.SCOC, cluster)
	fmt.Println("\nMC_TL schedule (every process active in every subiteration):")
	printGantt(m, 64, partition.MCTL, cluster)
}

func printGantt(m *mesh.Mesh, domains int, strat partition.Strategy, cluster core.Cluster) {
	d, err := core.Decompose(context.Background(), m, domains, strat, partition.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := d.Simulate(cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sim.Trace.Gantt(96))
}

func fmtImb(v []float64) string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.2f", x)
	}
	return s + "]"
}
