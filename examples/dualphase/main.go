// Dualphase: the paper's §VII perspective implemented — decouple resource
// mapping from task granularity with a two-phase partitioning.
//
// Phase 1 splits the mesh across processes with MC_TL (every temporal level
// balanced, one domain per process); phase 2 re-partitions inside each
// process-domain with SC_OC to recover fine-grained tasks without paying
// MC_TL's communication cost between subdomains of the same process. The
// example compares three configurations at equal task granularity:
//
//	flat SC_OC   — 128 domains, operating-cost balance only (baseline)
//	flat MC_TL   — 128 domains, all levels balanced (paper's main method)
//	dual-phase   — MC_TL across 16 processes × SC_OC into 8 subdomains each
//
//	go run ./examples/dualphase
package main

import (
	"context"
	"fmt"
	"log"

	"tempart/internal/core"
	"tempart/internal/flusim"
	"tempart/internal/metrics"
	"tempart/internal/partition"
	"tempart/internal/taskgraph"
)

func main() {
	m, err := core.LoadMesh("CYLINDER", 0.01)
	if err != nil {
		log.Fatal(err)
	}
	const (
		procs          = 16
		domainsPerProc = 8
		domains        = procs * domainsPerProc
		workers        = 32
	)
	cluster := flusim.Cluster{NumProcs: procs, WorkersPerProc: workers}
	fmt.Printf("mesh %s: %d cells; %d procs × %d cores, %d domains\n\n",
		m.Name, m.NumCells(), procs, workers, domains)

	show := func(label string, part []int32, procOf []int32) {
		tg, err := taskgraph.Build(m, part, domains, taskgraph.Options{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := flusim.Simulate(tg, procOf, flusim.Config{Cluster: cluster})
		if err != nil {
			log.Fatal(err)
		}
		comm := metrics.CommVolume(tg, procOf)
		spread := metrics.LevelSpread(metrics.CellsByLevelPerProc(m, part, procOf, procs))
		fmt.Printf("%-28s makespan %8d   comm volume %7d   level spread %v\n",
			label, res.Makespan, comm, fmtF(spread))
	}

	// Flat strategies.
	for _, strat := range []partition.Strategy{partition.SCOC, partition.MCTL} {
		r, err := partition.PartitionMesh(context.Background(), m, domains, strat, partition.Options{Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		show("flat "+strat.String(), r.Part, flusim.BlockMap(domains, procs))
	}

	// Dual phase.
	dp, err := partition.DualPhase(context.Background(), m, procs, domainsPerProc, partition.Options{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	show("dual-phase MC_TL→SC_OC", dp.Domain, dp.ProcOfDomain)

	fmt.Println("\nreading: dual-phase keeps MC_TL's per-level balance across processes")
	fmt.Println("while cutting the inter-process communication that flat MC_TL pays at")
	fmt.Println("fine granularity — the compromise the paper's perspective describes.")
}

func fmtF(v []float64) string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.2f", x)
	}
	return s + "]"
}
