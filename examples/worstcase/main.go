// Worstcase: the CUBE mesh — three non-contiguous hotspots — stress-tests
// the temporal-level-aware partitioner.
//
// The example sweeps the domain count, reproducing the paper's Figure 11
// trade-off on its hardest geometry: the MC_TL/SC_OC speedup ratio (which
// decays as finer granularity lets SC_OC pipeline around its imbalance) and
// the communication-volume price MC_TL pays for cutting through the level
// gradient. It then demonstrates the connectivity-repair post-pass from the
// paper's conclusion on the heavily constrained partition.
//
//	go run ./examples/worstcase
package main

import (
	"context"
	"fmt"
	"log"

	"tempart/internal/core"
	"tempart/internal/mesh"
	"tempart/internal/partition"
)

func main() {
	m, err := core.LoadMesh("CUBE", 0.5) // ~76k cells, the paper's worst case
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh %s: %d cells, census %v (note the 3 disjoint τ=0 hotspots)\n\n",
		m.Name, m.NumCells(), m.Census())

	cluster := core.Cluster{NumProcs: 16, WorkersPerProc: 32}
	fmt.Printf("%8s %12s %12s %8s %12s %12s\n",
		"domains", "SC_OC span", "MC_TL span", "ratio", "SC_OC comm", "MC_TL comm")
	for _, domains := range []int{16, 32, 64, 128, 256} {
		rows, err := core.Compare(context.Background(), m, core.CompareConfig{
			NumDomains: domains,
			Cluster:    cluster,
			Seed:       3,
		})
		if err != nil {
			log.Fatal(err)
		}
		sc, mc := rows[0], rows[1]
		fmt.Printf("%8d %12d %12d %7.2fx %12d %12d\n",
			domains, sc.Makespan, mc.Makespan,
			float64(sc.Makespan)/float64(mc.Makespan), sc.CommVolume, mc.CommVolume)
	}

	// Connectivity repair: MC_TL partitions of this geometry fragment badly
	// (the paper's §IX artifact). The post-pass reattaches stray fragments.
	fmt.Println("\nconnectivity repair on the 64-domain MC_TL partition:")
	d, err := core.Decompose(context.Background(), m, 64, partition.MCTL, partition.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	before := maxOf(partition.CountFragments(g, d.Result.Part, 64))
	// The repair's balance guard only accepts moves that keep every level's
	// imbalance at its current value — artifacts go, balance stays.
	moved := partition.RepairConnectivity(g, d.Result.Part, 64, 0.25)
	after := maxOf(partition.CountFragments(g, d.Result.Part, 64))
	rebuilt := partition.NewResult(g, d.Result.Part, 64)
	fmt.Printf("worst domain fragments: %d → %d (%d cells moved); level imbalance now %v\n",
		before, after, moved, rebuilt.Imbalance())
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
