// Jetnoise: the paper's motivating workload end-to-end — an installed-jet-
// noise-style simulation on the PPRIME_NOZZLE mesh, run through the complete
// task-distributed solver with real finite-volume kernels.
//
// The example mirrors Section VII of the paper: the same solver iteration is
// executed under SC_OC and MC_TL partitionings, each task's duration is
// measured, and the measured schedule is replayed on the paper's 6-process ×
// 4-core cluster. MC_TL recovers the idle time that SC_OC leaves at
// subiteration boundaries.
//
//	go run ./examples/jetnoise
package main

import (
	"context"
	"fmt"
	"log"

	"tempart/internal/core"
	"tempart/internal/flusim"
	"tempart/internal/fv"
	"tempart/internal/partition"
	"tempart/internal/runtime"
)

func main() {
	// PPRIME_NOZZLE at 1/100 scale: ~126k cells, 3 temporal levels. The hot
	// region is the jet plume downstream of the nozzle exit.
	m, err := core.LoadMesh("PPRIME_NOZZLE", 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh %s: %d cells, census %v\n", m.Name, m.NumCells(), m.Census())

	cluster := core.Cluster{NumProcs: 6, WorkersPerProc: 4}
	const domains = 12
	const iterations = 2

	for _, strat := range []partition.Strategy{partition.SCOC, partition.MCTL} {
		d, err := core.Decompose(context.Background(), m, domains, strat, partition.Options{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		sv, err := d.NewSolver(1, runtime.Central, fv.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sv.Run(iterations)
		if err != nil {
			log.Fatal(err)
		}
		virt, err := sv.VirtualMakespan(rep, cluster, flusim.Eager, true)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("\n=== %s ===\n", strat)
		fmt.Printf("per-level imbalance: %v\n", d.Quality.LevelImbalance)
		fmt.Printf("solver: %d tasks/iteration, mass drift %.2e after %d iterations\n",
			sv.TG.NumTasks(), rep.MassDriftRel, iterations)
		fmt.Printf("virtual cluster (%d procs × %d cores): makespan %.2f ms, idle %.0f%%\n",
			cluster.NumProcs, cluster.WorkersPerProc,
			float64(virt.Makespan)/1e6, 100*virt.Trace.IdleFraction())
		fmt.Printf("trace (digits = subiteration):\n%s", virt.Trace.Gantt(96))
	}
}
