// Autotune: the paper's §IX perspective — "automatically determine the best
// domain granularity with respect to the target machine's number of cores".
//
// The tuner sweeps domain counts (doubling from one per process), simulates
// each candidate's schedule, and picks the best. Run twice: once with free
// communication (the paper's FLUSIM assumption) and once charging a latency
// per cross-process dependency, which pushes the optimum toward coarser
// domains — quantifying the granularity/communication trade-off that the
// dual-phase strategy then resolves.
//
//	go run ./examples/autotune
package main

import (
	"context"
	"fmt"
	"log"

	"tempart/internal/core"
	"tempart/internal/flusim"
	"tempart/internal/partition"
	"tempart/internal/tuner"
)

func main() {
	m, err := core.LoadMesh("CYLINDER", 0.005)
	if err != nil {
		log.Fatal(err)
	}
	cluster := flusim.Cluster{NumProcs: 8, WorkersPerProc: 8}
	fmt.Printf("mesh %s: %d cells; target machine %d procs × %d cores\n",
		m.Name, m.NumCells(), cluster.NumProcs, cluster.WorkersPerProc)

	for _, strat := range []partition.Strategy{partition.SCOC, partition.MCTL} {
		for _, lat := range []int64{0, 500} {
			res, err := tuner.Tune(context.Background(), m, tuner.Config{
				Cluster:     cluster,
				Strategy:    strat,
				PartOpts:    partition.Options{Seed: 11},
				CommLatency: lat,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n=== %s, comm latency %d ===\n%s", strat, lat, res)
			fmt.Printf("best: %d domains (%.2fx over 1 domain/proc)\n",
				res.Best.Domains, res.SpeedupOverSinglePerProc())
		}
	}
}
