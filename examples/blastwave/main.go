// Blastwave: a launcher-take-off-style blast simulation with the
// compressible Euler model — the paper's other motivating application
// ("blast wave propagation during rocket take-off") — executed through the
// task runtime with an MC_TL decomposition, with trace export for
// chrome://tracing.
//
//	go run ./examples/blastwave
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"tempart/internal/flusim"
	"tempart/internal/mesh"
	"tempart/internal/partition"
	"tempart/internal/runtime"
	"tempart/internal/solver"
)

func main() {
	// The CUBE worst-case geometry doubles as a blast chamber: three
	// disjoint refined regions around the charge locations.
	m, err := mesh.ByName("CUBE", 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh %s: %d cells, census %v\n", m.Name, m.NumCells(), m.Census())

	sv, err := solver.New(context.Background(), m, solver.Config{
		NumDomains: 16,
		Strategy:   partition.MCTL,
		PartOpts:   partition.Options{Seed: 4, Trials: 2},
		Workers:    2,
		Policy:     runtime.WorkStealing,
		Model:      solver.Euler,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MC_TL decomposition: cut %d, level imbalance %v\n",
		sv.Partition.EdgeCut, sv.Partition.Imbalance())

	const iterations = 4
	rep, err := sv.Run(iterations)
	if err != nil {
		log.Fatal(err)
	}
	for i, w := range rep.WallPerIteration {
		fmt.Printf("iteration %d: %v\n", i, w.Round(time.Microsecond))
	}
	fmt.Printf("mass drift: %.2e (exact conservation to round-off)\n", rep.MassDriftRel)
	fmt.Printf("total energy: %.6f\n", sv.EulerState.TotalEnergy())
	fmt.Printf("peak density: %.4f\n", maxOf(sv.EulerState.Rho))

	// Replay on a virtual 8×4 cluster and export the trace.
	virt, err := sv.VirtualMakespan(rep, flusim.Cluster{NumProcs: 8, WorkersPerProc: 4}, flusim.Eager, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virtual 8×4 cluster makespan: %v\n", time.Duration(virt.Makespan))

	out, err := os.Create("blastwave_trace.json")
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	if err := virt.Trace.WriteChromeTrace(out); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote blastwave_trace.json — open in chrome://tracing or Perfetto")
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
