// Package store is tempartd's durability tier: a pluggable Blob backend for
// large artifacts (uploaded meshes, encoded partitions, response payloads),
// a small in-memory index keyed by the daemon's existing content hashes, an
// append-only hash-chained provenance log whose entries embed obs run
// manifests, and a job journal that lets interrupted async jobs resume after
// a restart. All writes funnel through a Batcher that coalesces commits and
// amortizes fsyncs (size OR max-wait trigger), so many small partition and
// evaluate requests cost one provenance-log fsync per batch, not per
// request.
//
// Two backends ship in-tree: memory (tests, ephemeral daemons — no
// durability) and disk (content-addressed files written with atomic rename +
// fsync, logs fsynced per batch). Verify and VerifyDir walk the chain,
// recompute every hash, and cross-check blob digests, detecting a single
// flipped byte anywhere in the committed history.
package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"tempart/internal/obs"
)

// Options configures Open. The zero value opens an in-memory store.
type Options struct {
	// Dir is the durable root directory; empty means fully in-memory
	// (no durability, but the same provenance/index semantics).
	Dir string
	// Blob overrides the artifact backend (e.g. an object store); logs and
	// head still live under Dir (or in memory when Dir is empty).
	Blob Blob
	// MaxBatch flushes the Batcher when this many commits are pending.
	// Default 64.
	MaxBatch int
	// MaxWait bounds how long a pending commit waits for co-batched
	// company before a flush fires anyway. It is also the upper bound on
	// durable-commit latency. Default 20ms.
	MaxWait time.Duration
	// Clock injects time for tests. Default: the real clock.
	Clock Clock
	// NodeID, when set, stamps every provenance entry with the identity of
	// the cluster member that wrote it. The id is covered by the chain hash
	// like every other field, so a fleet's per-node chains stay individually
	// tamper-evident while remaining correlatable: a coordinator's result
	// entry and the peer entries for the subtrees it farmed out all name
	// their executing node.
	NodeID string
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 20 * time.Millisecond
	}
	if o.Clock == nil {
		o.Clock = realClock{}
	}
	return o
}

// Put is one artifact write inside a Commit: blob bytes plus the provenance
// manifest describing the run that produced them.
type Put struct {
	NS   string
	Key  string // lowercase hex; see the namespace comments in blob.go
	Data []byte
	// Manifest is embedded in the artifact's provenance entry; nil records
	// the entry without run context.
	Manifest *obs.Manifest
}

// Commit is the Batcher's unit of work: artifact writes plus job-journal
// records, applied together in one batch.
type Commit struct {
	Puts []Put
	Jobs []JobRecord
}

func (c Commit) empty() bool { return len(c.Puts) == 0 && len(c.Jobs) == 0 }

type indexMeta struct {
	size     int64
	dataHash string
}

// Stats is a snapshot of store activity since Open.
type Stats struct {
	// Puts counts artifact writes committed; DedupSkips counts writes
	// elided because the index already held the key.
	Puts       int64
	PutBytes   int64
	DedupSkips int64
	// Reads/ReadHits count Get lookups; ReadCorrupt counts blobs whose
	// bytes no longer matched their recorded digest.
	Reads       int64
	ReadHits    int64
	ReadCorrupt int64
	// BatchFlushes counts backend flushes; BatchedCommits counts commits
	// they covered (ratio = amortization factor). FlushErrors counts failed
	// flushes.
	BatchFlushes   int64
	BatchedCommits int64
	FlushErrors    int64
	// ProvEntries is the chain length; JournalRecords counts journal lines
	// appended since Open.
	ProvEntries    int64
	JournalRecords int64
	// JobsRecovered/JobsPending describe the journal replay at Open:
	// total jobs folded, and how many were non-terminal (to re-queue).
	JobsRecovered int64
	JobsPending   int64
}

// Store combines the blob backend, index, provenance chain, job journal and
// Batcher. Create with Open; all methods are safe for concurrent use.
type Store struct {
	dir     string
	node    string
	blob    Blob
	batcher *Batcher
	clock   Clock

	mu    sync.Mutex // guards index, chain, logs ordering, stats
	index map[string]indexMeta
	chain chain
	jour  appendLog
	jmem  *memoryLog // journal lines for memory stores
	stats Stats

	replays []JobReplay
	crashed atomic.Bool
}

// Open builds a Store over Options.Dir (or in memory), replaying the
// provenance log into the index and folding the job journal into the replay
// set exposed by JobReplays.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	s := &Store{
		dir:   opts.Dir,
		node:  opts.NodeID,
		blob:  opts.Blob,
		clock: opts.Clock,
		index: map[string]indexMeta{},
	}
	if opts.Dir == "" {
		if s.blob == nil {
			s.blob = newMemoryBlob()
		}
		pm, jm := &memoryLog{}, &memoryLog{}
		s.chain = chain{tip: genesisHash, log: pm, mem: pm}
		s.jour, s.jmem = jm, jm
	} else {
		if err := s.openDir(opts.Dir); err != nil {
			return nil, err
		}
	}
	s.stats.JobsRecovered = int64(len(s.replays))
	for i := range s.replays {
		if !terminal(s.replays[i].State) {
			s.stats.JobsPending++
		}
	}
	s.batcher = newBatcher(s.applyBatch, opts.MaxBatch, opts.MaxWait, opts.Clock)
	return s, nil
}

// openDir replays and repairs the on-disk state, then opens append handles.
func (s *Store) openDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if s.blob == nil {
		db, err := newDiskBlob(dir)
		if err != nil {
			return err
		}
		s.blob = db
	}

	head, err := readHead(filepath.Join(dir, provHeadName))
	if err != nil {
		return err
	}
	provPath := filepath.Join(dir, provLogName)
	raw, err := os.ReadFile(provPath)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	entries, seq, tip, keep, err := replayChain(raw, head)
	if err != nil {
		return err
	}
	// When the head trails the chain (crash between the log fsync and the
	// head replacement), the covered prefix must still match the head.
	if head != nil && head.Seq > 0 && head.Seq < seq {
		h, ok := hashAt(raw, head.Seq)
		if !ok || h != head.Hash {
			return fmt.Errorf("store: provenance head hash mismatch at seq %d", head.Seq)
		}
	}
	if keep < int64(len(raw)) {
		// Drop the partial/unverifiable tail beyond the last good entry
		// before reopening for append.
		if err := os.Truncate(provPath, keep); err != nil {
			return err
		}
	}
	for i := range entries {
		e := &entries[i]
		s.index[blobKey(e.NS, e.Key)] = indexMeta{size: e.Size, dataHash: e.DataHash}
	}
	s.stats.ProvEntries = int64(seq)
	s.chain = chain{seq: seq, tip: tip}
	if s.chain.seq > 0 {
		// Repair the head if it trailed the fsynced chain.
		if head == nil || head.Seq != seq || head.Hash != tip {
			if err := writeHead(dir, headState{Seq: seq, Hash: tip}); err != nil {
				return err
			}
		}
	}
	plog, err := openDiskLog(provPath)
	if err != nil {
		return err
	}
	s.chain.log = plog

	jourPath := filepath.Join(dir, jobsLogName)
	jraw, err := os.ReadFile(jourPath)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	s.replays, err = foldJournal(jraw)
	if err != nil {
		return err
	}
	s.jour, err = openDiskLog(jourPath)
	return err
}

func readHead(path string) (*headState, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var h headState
	if err := unmarshalHead(raw, &h); err != nil {
		return nil, fmt.Errorf("store: provenance head corrupt: %v", err)
	}
	return &h, nil
}

func writeHead(dir string, h headState) error {
	raw, err := marshalHead(h)
	if err != nil {
		return err
	}
	return atomicWriteFile(filepath.Join(dir, provHeadName), raw)
}

// Commit applies c durably: when it returns nil, every put and journal
// record is flushed and fsynced (disk backend). Latency is bounded by
// Options.MaxWait — the commit waits at most one batch window.
func (s *Store) Commit(ctx context.Context, c Commit) error {
	if c.empty() {
		return nil
	}
	return s.batcher.submit(ctx, c, true, false)
}

// CommitAsync enqueues c without waiting for the flush. Use it only for
// records that are safe to lose in a crash (replayable state transitions) or
// that a later durable commit re-covers via batch ordering.
func (s *Store) CommitAsync(c Commit) {
	if c.empty() {
		return
	}
	_ = s.batcher.submit(context.Background(), c, false, false)
}

// Flush forces an immediate batch flush and waits for it.
func (s *Store) Flush(ctx context.Context) error {
	return s.batcher.submit(ctx, Commit{}, true, true)
}

// Get returns a committed blob, verifying its bytes against the digest
// recorded in the provenance entry. Uncommitted (still-batched) artifacts
// are not visible.
func (s *Store) Get(ns, key string) ([]byte, bool) {
	if s.crashed.Load() {
		return nil, false
	}
	s.mu.Lock()
	meta, ok := s.index[blobKey(ns, key)]
	s.stats.Reads++
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	data, err := s.blob.Get(ns, key)
	if err != nil {
		return nil, false
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != meta.dataHash {
		s.mu.Lock()
		s.stats.ReadCorrupt++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	s.stats.ReadHits++
	s.mu.Unlock()
	return data, true
}

// Has reports whether (ns, key) is committed, without reading the blob.
func (s *Store) Has(ns, key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[blobKey(ns, key)]
	return ok
}

// JobReplays returns the folded job journal as of Open, in first-submitted
// order. The daemon re-queues non-terminal entries and remembers terminal
// ones.
func (s *Store) JobReplays() []JobReplay {
	out := make([]JobReplay, len(s.replays))
	copy(out, s.replays)
	return out
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// applyBatch is the Batcher's sink: one call per flush, applying every
// commit in order — blob writes first (each atomic+durable), then the
// provenance appends with ONE fsync, then the atomic head replacement, then
// the journal appends with one fsync.
func (s *Store) applyBatch(commits []Commit) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed.Load() {
		return errCrashed
	}
	s.stats.BatchFlushes++
	s.stats.BatchedCommits += int64(len(commits))

	nowMS := s.clock.Now().UnixMilli()
	var provLines, jourLines [][]byte
	// Stage chain mutations so a mid-batch blob failure doesn't desync the
	// in-memory tip from the log.
	staged := s.chain
	type idxAdd struct {
		ref  string
		meta indexMeta
	}
	var adds []idxAdd
	fail := func(err error) error {
		s.stats.FlushErrors++
		return err
	}
	for ci := range commits {
		for pi := range commits[ci].Puts {
			p := &commits[ci].Puts[pi]
			ref := blobKey(p.NS, p.Key)
			if _, dup := s.index[ref]; dup {
				s.stats.DedupSkips++
				continue
			}
			dup := false
			for _, a := range adds {
				if a.ref == ref {
					dup = true
					break
				}
			}
			if dup {
				s.stats.DedupSkips++
				continue
			}
			if err := s.blob.Put(p.NS, p.Key, p.Data); err != nil {
				return fail(fmt.Errorf("store: blob put %s/%s: %w", p.NS, p.Key, err))
			}
			sum := sha256.Sum256(p.Data)
			e := Entry{
				NS:       p.NS,
				Key:      p.Key,
				DataHash: hex.EncodeToString(sum[:]),
				Size:     int64(len(p.Data)),
				UnixMS:   nowMS,
				Node:     s.node,
				Manifest: p.Manifest,
			}
			line, err := staged.nextEntry(&e)
			if err != nil {
				return fail(err)
			}
			provLines = append(provLines, line)
			adds = append(adds, idxAdd{ref: ref, meta: indexMeta{size: e.Size, dataHash: e.DataHash}})
			s.stats.Puts++
			s.stats.PutBytes += int64(len(p.Data))
		}
		for ji := range commits[ci].Jobs {
			r := commits[ci].Jobs[ji]
			if r.UnixMS == 0 {
				r.UnixMS = nowMS
			}
			line, err := marshalJobRecord(&r)
			if err != nil {
				return fail(err)
			}
			jourLines = append(jourLines, line)
		}
	}
	for _, line := range provLines {
		if err := s.chain.log.Append(line); err != nil {
			return fail(err)
		}
	}
	if len(provLines) > 0 {
		if err := s.chain.log.Sync(); err != nil {
			return fail(err)
		}
		if s.dir != "" {
			if err := writeHead(s.dir, headState{Seq: staged.seq, Hash: staged.tip}); err != nil {
				return fail(err)
			}
		}
	}
	for _, line := range jourLines {
		if err := s.jour.Append(line); err != nil {
			return fail(err)
		}
	}
	if len(jourLines) > 0 {
		if err := s.jour.Sync(); err != nil {
			return fail(err)
		}
		s.stats.JournalRecords += int64(len(jourLines))
	}
	// Everything durable: publish the staged chain tip and index additions.
	s.chain.seq, s.chain.tip = staged.seq, staged.tip
	for _, a := range adds {
		s.index[a.ref] = a.meta
	}
	s.stats.ProvEntries = int64(s.chain.seq)
	return nil
}

// Close flushes the Batcher, fsyncs both logs, and releases the backend.
func (s *Store) Close() error {
	err := s.batcher.close(true)
	if cerr := s.chain.log.Close(); err == nil {
		err = cerr
	}
	if cerr := s.jour.Close(); err == nil {
		err = cerr
	}
	if cerr := s.blob.Close(); err == nil {
		err = cerr
	}
	return err
}

// Crash simulates a power cut for tests: the Batcher's pending commits are
// discarded (their durable waiters get an error), log handles close without
// a final sync, and every subsequent operation fails. State that a flush
// already fsynced remains on disk for a later Open.
func (s *Store) Crash() {
	s.crashed.Store(true)
	_ = s.batcher.close(false)
	if dl, ok := s.chain.log.(*diskLog); ok {
		dl.crash()
	}
	if dl, ok := s.jour.(*diskLog); ok {
		dl.crash()
	}
}
