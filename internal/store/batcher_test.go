package store

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock drives the Batcher deterministically: After registers a waiter,
// Advance fires every waiter whose deadline has passed. Timers never fire on
// their own, so tests control exactly when the max-wait trigger happens.
type fakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1700000000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	c.waiters = append(c.waiters, fakeWaiter{at: c.now.Add(d), ch: ch})
	return ch
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var keep []fakeWaiter
	var fire []fakeWaiter
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			fire = append(fire, w)
		} else {
			keep = append(keep, w)
		}
	}
	c.waiters = keep
	now := c.now
	c.mu.Unlock()
	for _, w := range fire {
		w.ch <- now
	}
}

// waitTimerArmed blocks until the flusher has registered a timer, so Advance
// is guaranteed to reach it.
func (c *fakeClock) waitTimerArmed(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		n := len(c.waiters)
		c.mu.Unlock()
		if n > 0 {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatal("flusher never armed its max-wait timer")
}

// batchRecorder collects flushed batches and signals each flush.
type batchRecorder struct {
	mu      sync.Mutex
	batches [][]Commit
	flushed chan struct{}
	err     error
}

func newBatchRecorder() *batchRecorder {
	return &batchRecorder{flushed: make(chan struct{}, 64)}
}

func (r *batchRecorder) apply(commits []Commit) error {
	r.mu.Lock()
	cp := make([]Commit, len(commits))
	copy(cp, commits)
	r.batches = append(r.batches, cp)
	err := r.err
	r.mu.Unlock()
	r.flushed <- struct{}{}
	return err
}

func (r *batchRecorder) snapshot() [][]Commit {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([][]Commit, len(r.batches))
	copy(out, r.batches)
	return out
}

func (r *batchRecorder) waitFlush(t *testing.T) {
	t.Helper()
	select {
	case <-r.flushed:
	case <-time.After(5 * time.Second):
		t.Fatal("no flush within 5s")
	}
}

func oneCommit(i int) Commit {
	return Commit{Jobs: []JobRecord{{Job: fmt.Sprintf("j-%d", i), State: JobSubmitted}}}
}

func TestBatcherCoalescesBySize(t *testing.T) {
	clk := newFakeClock()
	rec := newBatchRecorder()
	b := newBatcher(rec.apply, 4, time.Hour, clk)
	defer b.close(true)

	for i := 0; i < 3; i++ {
		if err := b.submit(context.Background(), oneCommit(i), false, false); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	select {
	case <-rec.flushed:
		t.Fatal("flushed below MaxBatch with the timer never firing")
	case <-time.After(20 * time.Millisecond):
	}
	if err := b.submit(context.Background(), oneCommit(3), false, false); err != nil {
		t.Fatalf("submit 3: %v", err)
	}
	rec.waitFlush(t)
	batches := rec.snapshot()
	if len(batches) != 1 || len(batches[0]) != 4 {
		t.Fatalf("got %d batches (first of %d commits), want 1 batch of 4", len(batches), len(batches[0]))
	}
}

func TestBatcherFlushesOnMaxWait(t *testing.T) {
	clk := newFakeClock()
	rec := newBatchRecorder()
	b := newBatcher(rec.apply, 100, 50*time.Millisecond, clk)
	defer b.close(true)

	if err := b.submit(context.Background(), oneCommit(0), false, false); err != nil {
		t.Fatalf("submit: %v", err)
	}
	clk.waitTimerArmed(t)
	clk.Advance(49 * time.Millisecond)
	select {
	case <-rec.flushed:
		t.Fatal("flushed before MaxWait elapsed")
	case <-time.After(10 * time.Millisecond):
	}
	clk.Advance(time.Millisecond)
	rec.waitFlush(t)
	if batches := rec.snapshot(); len(batches) != 1 || len(batches[0]) != 1 {
		t.Fatalf("batches = %+v", batches)
	}
}

func TestBatcherDurableCommitWaitsForFlush(t *testing.T) {
	clk := newFakeClock()
	rec := newBatchRecorder()
	b := newBatcher(rec.apply, 2, time.Hour, clk)
	defer b.close(true)

	done := make(chan error, 1)
	go func() { done <- b.submit(context.Background(), oneCommit(0), true, false) }()
	select {
	case err := <-done:
		t.Fatalf("durable submit returned (%v) before any flush", err)
	case <-time.After(20 * time.Millisecond):
	}
	// A second commit reaches MaxBatch and releases the durable waiter.
	if err := b.submit(context.Background(), oneCommit(1), false, false); err != nil {
		t.Fatalf("submit: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("durable commit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("durable waiter never released")
	}
}

func TestBatcherForceBarrierFlushesImmediately(t *testing.T) {
	clk := newFakeClock()
	rec := newBatchRecorder()
	b := newBatcher(rec.apply, 100, time.Hour, clk)
	defer b.close(true)

	if err := b.submit(context.Background(), oneCommit(0), false, false); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := b.submit(context.Background(), Commit{}, true, true); err != nil {
		t.Fatalf("barrier: %v", err)
	}
	batches := rec.snapshot()
	if len(batches) != 1 || len(batches[0]) != 2 {
		t.Fatalf("batches = %+v", batches)
	}
}

func TestBatcherReportsApplyError(t *testing.T) {
	clk := newFakeClock()
	rec := newBatchRecorder()
	rec.err = fmt.Errorf("disk full")
	b := newBatcher(rec.apply, 1, time.Hour, clk)
	defer b.close(true)

	if err := b.submit(context.Background(), oneCommit(0), true, false); err == nil || err.Error() != "disk full" {
		t.Fatalf("durable submit error = %v, want disk full", err)
	}
}

func TestBatcherSubmitAfterCloseFails(t *testing.T) {
	b := newBatcher(func([]Commit) error { return nil }, 1, time.Hour, newFakeClock())
	if err := b.close(true); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := b.submit(context.Background(), oneCommit(0), true, false); err != errClosed {
		t.Fatalf("submit after close = %v, want errClosed", err)
	}
	if err := b.close(true); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// BenchmarkBatcherCommit measures durable commit throughput against a disk
// store, batched (MaxBatch 64 / 5ms window, parallel submitters sharing
// fsyncs) vs per-commit (MaxBatch 1 — one fsync set per commit).
func BenchmarkBatcherCommit(b *testing.B) {
	bench := func(b *testing.B, maxBatch int, maxWait time.Duration, parallel bool) {
		s, err := Open(Options{Dir: b.TempDir(), MaxBatch: maxBatch, MaxWait: maxWait})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		var seq int64
		var mu sync.Mutex
		next := func() int64 { mu.Lock(); defer mu.Unlock(); seq++; return seq }
		commit := func() error {
			n := next()
			return s.Commit(context.Background(), Commit{Jobs: []JobRecord{{
				Job: fmt.Sprintf("bench-%d", n), State: JobSubmitted, Kind: "partition",
			}}})
		}
		b.ResetTimer()
		if parallel {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := commit(); err != nil {
						b.Error(err)
						return
					}
				}
			})
		} else {
			for i := 0; i < b.N; i++ {
				if err := commit(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("batched-parallel", func(b *testing.B) { bench(b, 64, 5*time.Millisecond, true) })
	b.Run("per-commit", func(b *testing.B) { bench(b, 1, time.Millisecond, false) })
}
