package store

import (
	"errors"
	"sync"
)

// Artifact namespaces. Keys inside a namespace are lowercase hex digests:
// NSMesh and NSPart keys are the SHA-256 of the blob bytes themselves
// (content-addressed), NSResult keys are the request content address of the
// cached response payload (the payload hash is carried separately in the
// provenance entry's data_hash).
const (
	// NSMesh holds raw uploaded TMSH mesh bytes keyed by their SHA-256.
	NSMesh = "mesh"
	// NSPart holds encoded TPRT partition results keyed by part_hash.
	NSPart = "part"
	// NSResult holds encoded response payloads keyed by the request's
	// content address (the daemon's cache key).
	NSResult = "result"
)

// ErrNotFound reports a blob absent from the backend.
var ErrNotFound = errors.New("store: blob not found")

// Blob is the pluggable artifact byte store beneath the Store: a flat
// (namespace, key) → bytes map with durable, atomic writes. Implementations
// must tolerate Put of an existing key (idempotent overwrite or skip — the
// bytes are content-addressed so both are equivalent) and must be safe for
// concurrent use. The built-in backends are memory (tests, ephemeral
// daemons) and disk (content-addressed files, atomic rename + fsync); an S3
// or replicated backend slots in behind the same interface.
type Blob interface {
	// Put stores data under (ns, key) durably before returning.
	Put(ns, key string, data []byte) error
	// Get returns the stored bytes or ErrNotFound. Callers must treat the
	// returned slice as read-only.
	Get(ns, key string) ([]byte, error)
	// List returns every key present in the namespace, in no defined order.
	List(ns string) ([]string, error)
	// Close releases backend resources after a final sync.
	Close() error
}

// memoryBlob is the in-memory backend: a mutex-guarded map. Durability is
// process-lifetime only; it exists for tests and cache-like deployments.
type memoryBlob struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemoryBlob() *memoryBlob {
	return &memoryBlob{m: map[string][]byte{}}
}

func blobKey(ns, key string) string { return ns + "/" + key }

func (b *memoryBlob) Put(ns, key string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	b.mu.Lock()
	b.m[blobKey(ns, key)] = cp
	b.mu.Unlock()
	return nil
}

func (b *memoryBlob) Get(ns, key string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	data, ok := b.m[blobKey(ns, key)]
	if !ok {
		return nil, ErrNotFound
	}
	return data, nil
}

func (b *memoryBlob) List(ns string) ([]string, error) {
	prefix := ns + "/"
	b.mu.Lock()
	defer b.mu.Unlock()
	var keys []string
	for k := range b.m {
		if len(k) > len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k[len(prefix):])
		}
	}
	return keys, nil
}

func (b *memoryBlob) Close() error { return nil }
