package store

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Batcher coalesces many small commits into one backend flush so the fsync
// cost of the provenance log, job journal, and head replacement is paid once
// per batch instead of once per commit. A flush fires when either trigger
// hits: the batch reaches MaxBatch commits, or the oldest pending commit has
// waited MaxWait. Durable commits block until their batch is flushed, so
// "Commit returned nil" always means "on stable storage"; async commits are
// fire-and-forget and may be lost in a crash — the daemon uses them only for
// records that are safe to replay or drop (running-state journal lines,
// artifacts re-committed durably before a response is acked).

var (
	errClosed  = errors.New("store: closed")
	errCrashed = errors.New("store: crashed (unflushed batch discarded)")
)

// Clock abstracts time for the Batcher so crash/flush tests drive it
// deterministically.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

type batchReq struct {
	commit Commit
	done   chan error // nil for async commits
	force  bool       // flush barrier: flush regardless of triggers
}

// Batcher runs a single flusher goroutine over a pending queue. One flusher
// serializes backend writes, which is what lets disk appends skip per-commit
// locking.
type Batcher struct {
	apply    func([]Commit) error
	maxBatch int
	maxWait  time.Duration
	clock    Clock

	mu      sync.Mutex
	pending []batchReq
	closed  bool
	lastErr error

	kick    chan struct{}
	stop    chan struct{}
	stopped chan struct{}
	crashed bool // read by flusher only after <-stop
}

func newBatcher(apply func([]Commit) error, maxBatch int, maxWait time.Duration, clock Clock) *Batcher {
	b := &Batcher{
		apply:    apply,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		clock:    clock,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	go b.run()
	return b
}

// submit enqueues a commit. Durable submits wait for the flush covering them
// (or ctx cancellation — the commit itself still lands with a later flush).
func (b *Batcher) submit(ctx context.Context, c Commit, durable, force bool) error {
	var done chan error
	if durable {
		done = make(chan error, 1)
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errClosed
	}
	b.pending = append(b.pending, batchReq{commit: c, done: done, force: force})
	b.mu.Unlock()
	select {
	case b.kick <- struct{}{}:
	default:
	}
	if !durable {
		return nil
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (b *Batcher) pendingState() (n int, force bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.pending {
		if b.pending[i].force {
			force = true
			break
		}
	}
	return len(b.pending), force
}

func (b *Batcher) run() {
	defer close(b.stopped)
	var timer <-chan time.Time
	for {
		n, force := b.pendingState()
		switch {
		case n == 0:
			timer = nil
			select {
			case <-b.kick:
			case <-b.stop:
				b.drainFinal()
				return
			}
		case n >= b.maxBatch || force:
			b.flushOnce()
			timer = nil
		default:
			if timer == nil {
				timer = b.clock.After(b.maxWait)
			}
			select {
			case <-b.kick:
			case <-timer:
				b.flushOnce()
				timer = nil
			case <-b.stop:
				b.drainFinal()
				return
			}
		}
	}
}

// flushOnce applies everything pending in one backend batch and acks the
// durable waiters with the batch outcome.
func (b *Batcher) flushOnce() {
	b.mu.Lock()
	reqs := b.pending
	b.pending = nil
	b.mu.Unlock()
	if len(reqs) == 0 {
		return
	}
	commits := make([]Commit, len(reqs))
	for i := range reqs {
		commits[i] = reqs[i].commit
	}
	err := b.apply(commits)
	if err != nil {
		b.mu.Lock()
		b.lastErr = err
		b.mu.Unlock()
	}
	for i := range reqs {
		if reqs[i].done != nil {
			reqs[i].done <- err
		}
	}
}

// drainFinal runs at shutdown: flush the tail (Close) or discard it with an
// error (Crash).
func (b *Batcher) drainFinal() {
	if b.crashed {
		b.mu.Lock()
		reqs := b.pending
		b.pending = nil
		b.mu.Unlock()
		for i := range reqs {
			if reqs[i].done != nil {
				reqs[i].done <- errCrashed
			}
		}
		return
	}
	b.flushOnce()
}

// close stops the flusher; flush=false simulates a crash (pending commits
// are discarded and their waiters unblocked with errCrashed). Idempotent.
func (b *Batcher) close(flush bool) error {
	b.mu.Lock()
	if b.closed {
		err := b.lastErr
		b.mu.Unlock()
		<-b.stopped
		return err
	}
	b.closed = true
	b.crashed = !flush
	b.mu.Unlock()
	close(b.stop)
	<-b.stopped
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastErr
}
