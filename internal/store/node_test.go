package store

import (
	"bufio"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestProvenanceEntriesRecordNode pins the cross-node provenance contract:
// every entry a cluster member writes names that member, the id survives a
// reopen, and the chain still verifies (the node field is covered by the
// entry hash like everything else).
func TestProvenanceEntriesRecordNode(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, NodeID: "n2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(context.Background(), Commit{Puts: []Put{
		{NS: NSResult, Key: "aa", Data: []byte("payload")},
		{NS: NSMesh, Key: "bb", Data: []byte("mesh")},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(filepath.Join(dir, provLogName))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var n int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		if e.Node != "n2" {
			t.Fatalf("entry %d: node = %q, want n2", e.Seq, e.Node)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("provenance entries = %d, want 2", n)
	}

	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("chain with node ids fails verification: %v", rep.Problems)
	}
}
