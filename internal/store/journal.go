package store

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// The job journal is the restart-resume half of durability: async jobs append
// one record per lifecycle transition (submitted → running → terminal), and
// Open folds the log so an interrupted daemon can re-queue whatever never
// reached a terminal state. Unlike the provenance log it is not hash-chained
// — it records intent, not served artifacts — but it rides the same Batcher,
// so journal appends share the provenance log's per-batch fsync.

// Job lifecycle states as journaled.
const (
	JobSubmitted = "submitted"
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// JobRecord is one journal line.
type JobRecord struct {
	// Job is the daemon's job id.
	Job string `json:"job"`
	// State is one of the Job* constants.
	State string `json:"state"`
	// Kind discriminates the request type on submitted records
	// ("partition" or "repartition").
	Kind string `json:"kind,omitempty"`
	// Req is the full request JSON (submitted records only) — everything a
	// restarted daemon needs to re-run the job.
	Req json.RawMessage `json:"req,omitempty"`
	// MeshDigest names the NSMesh blob of an uploaded mesh (hex SHA-256);
	// empty for generator meshes.
	MeshDigest string `json:"mesh_digest,omitempty"`
	// ResultKey names the NSResult blob of a completed job's payload.
	ResultKey string `json:"result,omitempty"`
	// Error carries the failure message of failed/cancelled records.
	Error string `json:"error,omitempty"`
	// UnixMS stamps the transition (store clock).
	UnixMS int64 `json:"unix_ms,omitempty"`
}

func marshalJobRecord(r *JobRecord) ([]byte, error) {
	line, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// JobReplay is the folded outcome of one job's journal records, exposed to
// the daemon at open: terminal jobs are remembered, non-terminal ones
// re-queued.
type JobReplay struct {
	ID         string
	State      string // latest-precedence state (terminal > running > submitted)
	Kind       string
	Req        json.RawMessage
	MeshDigest string
	ResultKey  string
	Error      string
	// SubmittedMS is the submit timestamp, for job views after restart.
	SubmittedMS int64
}

func terminal(state string) bool {
	return state == JobDone || state == JobFailed || state == JobCancelled
}

// statePrecedence orders states so folding is insensitive to record order
// (a running record racing ahead of its submitted record must not win).
func statePrecedence(state string) int {
	switch state {
	case JobSubmitted:
		return 1
	case JobRunning:
		return 2
	case JobDone, JobFailed, JobCancelled:
		return 3
	}
	return 0
}

// foldJournal parses journal lines and folds them per job, preserving
// first-seen order. A partial final line (crash mid-append) is dropped;
// an unparsable interior line is an error.
func foldJournal(lines []byte) ([]JobReplay, error) {
	byID := map[string]*JobReplay{}
	var order []string
	recNo := 0
	for len(lines) > 0 {
		nl := bytes.IndexByte(lines, '\n')
		if nl < 0 {
			break // partial tail: the append never completed
		}
		line := lines[:nl]
		lines = lines[nl+1:]
		recNo++
		var r JobRecord
		if err := json.Unmarshal(line, &r); err != nil {
			if len(lines) == 0 {
				break // corrupt final line: same crash window as a partial tail
			}
			return nil, fmt.Errorf("store: job journal record %d corrupt: %v", recNo, err)
		}
		if r.Job == "" {
			continue
		}
		jr := byID[r.Job]
		if jr == nil {
			jr = &JobReplay{ID: r.Job, State: r.State}
			byID[r.Job] = jr
			order = append(order, r.Job)
		}
		if statePrecedence(r.State) >= statePrecedence(jr.State) {
			jr.State = r.State
		}
		if r.Kind != "" {
			jr.Kind = r.Kind
		}
		if len(r.Req) > 0 {
			jr.Req = r.Req
		}
		if r.MeshDigest != "" {
			jr.MeshDigest = r.MeshDigest
		}
		if r.ResultKey != "" {
			jr.ResultKey = r.ResultKey
		}
		if r.Error != "" {
			jr.Error = r.Error
		}
		if r.State == JobSubmitted && jr.SubmittedMS == 0 {
			jr.SubmittedMS = r.UnixMS
		}
	}
	out := make([]JobReplay, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out, nil
}
