package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tempart/internal/obs"
)

func hexSum(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func commitBlob(t *testing.T, s *Store, ns string, data []byte) string {
	t.Helper()
	key := hexSum(data)
	man := obs.NewManifest("store-test")
	man.Inputs["ns"] = ns
	if err := s.Commit(context.Background(), Commit{Puts: []Put{{NS: ns, Key: key, Data: data, Manifest: man}}}); err != nil {
		t.Fatalf("Commit(%s): %v", ns, err)
	}
	return key
}

func TestRoundTripMemoryAndDisk(t *testing.T) {
	for _, backend := range []string{"memory", "disk"} {
		t.Run(backend, func(t *testing.T) {
			opts := Options{MaxBatch: 4, MaxWait: 5 * time.Millisecond}
			if backend == "disk" {
				opts.Dir = t.TempDir()
			}
			s := mustOpen(t, opts)
			mesh := []byte("TMSH fake mesh bytes")
			part := []byte("TPRT fake partition")
			mk := commitBlob(t, s, NSMesh, mesh)
			pk := commitBlob(t, s, NSPart, part)

			for _, tc := range []struct {
				ns, key string
				want    []byte
			}{{NSMesh, mk, mesh}, {NSPart, pk, part}} {
				got, ok := s.Get(tc.ns, tc.key)
				if !ok || string(got) != string(tc.want) {
					t.Fatalf("Get(%s/%s) = %q, %v; want %q", tc.ns, tc.key, got, ok, tc.want)
				}
			}
			if _, ok := s.Get(NSMesh, hexSum([]byte("absent"))); ok {
				t.Fatal("Get of an uncommitted key succeeded")
			}
			rep, err := s.Verify()
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if !rep.OK() || rep.Entries != 2 || rep.VerifiedBlobs != 2 {
				t.Fatalf("Verify report = %s", rep)
			}
			st := s.Stats()
			if st.Puts != 2 || st.ProvEntries != 2 {
				t.Fatalf("stats = %+v", st)
			}
		})
	}
}

func TestResultKeyDiffersFromDataHash(t *testing.T) {
	// NSResult blobs are keyed by the request's content address, not by the
	// payload digest — the provenance entry must still pin the payload bytes.
	s := mustOpen(t, Options{Dir: t.TempDir(), MaxBatch: 1})
	payload := []byte(`{"part":[0,1,1,0]}`)
	key := hexSum([]byte("some request address"))
	if err := s.Commit(context.Background(), Commit{Puts: []Put{{NS: NSResult, Key: key, Data: payload}}}); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	got, ok := s.Get(NSResult, key)
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	rep, err := s.Verify()
	if err != nil || !rep.OK() {
		t.Fatalf("Verify: %v %s", err, rep)
	}
}

func TestReopenRestoresIndexAndChain(t *testing.T) {
	dir := t.TempDir()
	var keys []string
	var blobs [][]byte
	{
		s := mustOpen(t, Options{Dir: dir, MaxBatch: 2, MaxWait: time.Millisecond})
		for i := 0; i < 5; i++ {
			data := []byte(fmt.Sprintf("partition %d", i))
			keys = append(keys, commitBlob(t, s, NSPart, data))
			blobs = append(blobs, data)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	s2 := mustOpen(t, Options{Dir: dir})
	for i, k := range keys {
		got, ok := s2.Get(NSPart, k)
		if !ok || string(got) != string(blobs[i]) {
			t.Fatalf("after reopen, Get(%s) = %q, %v; want %q", k, got, ok, blobs[i])
		}
	}
	if st := s2.Stats(); st.ProvEntries != 5 {
		t.Fatalf("reopened chain length = %d, want 5", st.ProvEntries)
	}
	rep, err := s2.Verify()
	if err != nil || !rep.OK() || rep.Entries != 5 {
		t.Fatalf("Verify after reopen: %v %s", err, rep)
	}
}

func TestDedupSkipsRecommit(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), MaxBatch: 1})
	data := []byte("same bytes twice")
	k1 := commitBlob(t, s, NSPart, data)
	k2 := commitBlob(t, s, NSPart, data)
	if k1 != k2 {
		t.Fatalf("content keys differ: %s vs %s", k1, k2)
	}
	st := s.Stats()
	if st.Puts != 1 || st.DedupSkips != 1 || st.ProvEntries != 1 {
		t.Fatalf("stats after duplicate commit = %+v", st)
	}
}

func TestJournalReplayFoldsStates(t *testing.T) {
	dir := t.TempDir()
	req := json.RawMessage(`{"mesh":"CYLINDER","k":4}`)
	{
		s := mustOpen(t, Options{Dir: dir, MaxBatch: 1})
		ctx := context.Background()
		must := func(c Commit) {
			if err := s.Commit(ctx, c); err != nil {
				t.Fatalf("Commit: %v", err)
			}
		}
		must(Commit{Jobs: []JobRecord{{Job: "a-1", State: JobSubmitted, Kind: "partition", Req: req}}})
		must(Commit{Jobs: []JobRecord{{Job: "a-1", State: JobRunning}}})
		must(Commit{Jobs: []JobRecord{{Job: "b-2", State: JobSubmitted, Kind: "partition", Req: req}}})
		must(Commit{Jobs: []JobRecord{{Job: "b-2", State: JobRunning}}})
		must(Commit{Jobs: []JobRecord{{Job: "b-2", State: JobDone, ResultKey: "cafe12"}}})
		// Out-of-order: running lands before submitted — fold must not regress.
		must(Commit{Jobs: []JobRecord{{Job: "c-3", State: JobRunning}}})
		must(Commit{Jobs: []JobRecord{{Job: "c-3", State: JobSubmitted, Kind: "repartition", Req: req}}})
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	s2 := mustOpen(t, Options{Dir: dir})
	replays := s2.JobReplays()
	if len(replays) != 3 {
		t.Fatalf("got %d replays, want 3: %+v", len(replays), replays)
	}
	byID := map[string]JobReplay{}
	for _, r := range replays {
		byID[r.ID] = r
	}
	if r := byID["a-1"]; r.State != JobRunning || r.Kind != "partition" || len(r.Req) == 0 {
		t.Fatalf("a-1 folded to %+v", r)
	}
	if r := byID["b-2"]; r.State != JobDone || r.ResultKey != "cafe12" {
		t.Fatalf("b-2 folded to %+v", r)
	}
	if r := byID["c-3"]; r.State != JobRunning || r.Kind != "repartition" {
		t.Fatalf("c-3 folded to %+v", r)
	}
	st := s2.Stats()
	if st.JobsRecovered != 3 || st.JobsPending != 2 {
		t.Fatalf("replay stats = %+v", st)
	}
}

func TestPartialTailLinesAreDropped(t *testing.T) {
	dir := t.TempDir()
	{
		s := mustOpen(t, Options{Dir: dir, MaxBatch: 1})
		commitBlob(t, s, NSPart, []byte("good entry"))
		if err := s.Commit(context.Background(), Commit{Jobs: []JobRecord{{Job: "x-1", State: JobSubmitted, Kind: "partition", Req: json.RawMessage(`{}`)}}}); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	// Simulate a crash mid-append: garbage partial tails on both logs.
	for _, name := range []string{provLogName, jobsLogName} {
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(`{"seq":999,"partial`); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open after partial tail: %v", err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.ProvEntries != 1 || st.JobsRecovered != 1 {
		t.Fatalf("stats after tail drop = %+v", st)
	}
	// The truncated log must accept clean appends again.
	commitBlob(t, s2, NSPart, []byte("post-repair entry"))
	rep, err := s2.Verify()
	if err != nil || !rep.OK() || rep.Entries != 2 {
		t.Fatalf("Verify after repair: %v %s", err, rep)
	}
}

func TestConcurrentCommitsKeepChainConsistent(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), MaxBatch: 8, MaxWait: time.Millisecond})
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := []byte(fmt.Sprintf("concurrent blob %d", i))
			errs[i] = s.Commit(context.Background(), Commit{Puts: []Put{{NS: NSPart, Key: hexSum(data), Data: data}}})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	rep, err := s.Verify()
	if err != nil || !rep.OK() || rep.Entries != n {
		t.Fatalf("Verify: %v %s", err, rep)
	}
	st := s.Stats()
	if st.Puts != n || st.ProvEntries != n {
		t.Fatalf("stats after concurrent commits = %+v", st)
	}
	if st.BatchFlushes > st.BatchedCommits {
		t.Fatalf("more flushes than commits: %d > %d", st.BatchFlushes, st.BatchedCommits)
	}
}

func TestManifestEmbeddedInProvenance(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, MaxBatch: 1})
	man := obs.NewManifest("tempartd")
	man.Inputs["strategy"] = "MC_TL"
	data := []byte("artifact with manifest")
	if err := s.Commit(context.Background(), Commit{Puts: []Put{{NS: NSPart, Key: hexSum(data), Data: data, Manifest: man}}}); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, provLogName))
	if err != nil {
		t.Fatal(err)
	}
	var e Entry
	if err := json.Unmarshal(raw[:len(raw)-1], &e); err != nil {
		t.Fatalf("entry unparsable: %v", err)
	}
	if e.Manifest == nil || e.Manifest.Tool != "tempartd" || e.Manifest.Inputs["strategy"] != "MC_TL" {
		t.Fatalf("manifest not embedded: %+v", e.Manifest)
	}
}
