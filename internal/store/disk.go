package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Disk layout under Options.Dir:
//
//	blobs/<ns>/<key[:2]>/<key>   content-addressed artifact files
//	prov.log                     append-only hash-chained provenance entries
//	prov.head                    {"seq":N,"hash":"…"} of the committed chain tip
//	jobs.log                     append-only job lifecycle journal
//
// Blob writes are atomic and durable: bytes land in a temp file in the final
// directory, are fsynced, renamed over the destination, and the directory is
// fsynced — a crash never leaves a partial blob under a valid name. Log
// appends are buffered by the Batcher and fsynced once per flush; that single
// fsync (plus one atomic head replace) is what the batch+maxWait committer
// amortizes across every commit in the batch.

const (
	blobDirName  = "blobs"
	provLogName  = "prov.log"
	provHeadName = "prov.head"
	jobsLogName  = "jobs.log"
)

// diskBlob is the content-addressed file backend.
type diskBlob struct {
	root string // <dir>/blobs
}

func newDiskBlob(dir string) (*diskBlob, error) {
	root := filepath.Join(dir, blobDirName)
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	return &diskBlob{root: root}, nil
}

// validKey guards the filesystem: keys must be lowercase hex, at least one
// fan-out byte long, and bounded — nothing else can become a path element.
func validKey(key string) bool {
	if len(key) < 2 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func validNS(ns string) bool {
	return ns == NSMesh || ns == NSPart || ns == NSResult
}

func (b *diskBlob) path(ns, key string) string {
	return filepath.Join(b.root, ns, key[:2], key)
}

func (b *diskBlob) Put(ns, key string, data []byte) error {
	if !validNS(ns) || !validKey(key) {
		return fmt.Errorf("store: invalid blob address %s/%s", ns, key)
	}
	dst := b.path(ns, key)
	if _, err := os.Stat(dst); err == nil {
		return nil // content-addressed: an existing file already holds these bytes
	}
	dir := filepath.Dir(dst)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return atomicWriteFile(dst, data)
}

func (b *diskBlob) Get(ns, key string) ([]byte, error) {
	if !validNS(ns) || !validKey(key) {
		return nil, ErrNotFound
	}
	data, err := os.ReadFile(b.path(ns, key))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	return data, err
}

func (b *diskBlob) List(ns string) ([]string, error) {
	var keys []string
	nsDir := filepath.Join(b.root, ns)
	fans, err := os.ReadDir(nsDir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	for _, fan := range fans {
		if !fan.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(nsDir, fan.Name()))
		if err != nil {
			return nil, err
		}
		for _, f := range files {
			if !f.IsDir() {
				keys = append(keys, f.Name())
			}
		}
	}
	return keys, nil
}

func (b *diskBlob) Close() error { return nil }

// atomicWriteFile replaces path with data: temp file in the same directory,
// fsync, rename, directory fsync. Readers never observe a partial file.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// appendLog is the narrow append-only log the provenance chain and job
// journal write through: buffered appends made durable by Sync.
type appendLog interface {
	// Append buffers one full line (terminating newline included).
	Append(line []byte) error
	// Sync flushes every buffered append durably.
	Sync() error
	Close() error
}

// diskLog appends to a single file opened O_APPEND; Sync fsyncs it. crash()
// closes the handle without syncing, so batched-but-unflushed appends behave
// like a power cut in tests.
type diskLog struct {
	mu sync.Mutex
	f  *os.File
}

// openDiskLog opens (creating if needed) the log for appending after the
// caller has already read and, if necessary, truncated it.
func openDiskLog(path string) (*diskLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &diskLog{f: f}, nil
}

func (l *diskLog) Append(line []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errCrashed
	}
	_, err := l.f.Write(line)
	return err
}

func (l *diskLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errCrashed
	}
	return l.f.Sync()
}

func (l *diskLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

func (l *diskLog) crash() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		l.f.Close() // deliberately no Sync: simulate losing unflushed appends
		l.f = nil
	}
}

// memoryLog keeps appended lines in a slice; Sync is a no-op. The stored
// lines back Verify for memory stores.
type memoryLog struct {
	mu    sync.Mutex
	lines [][]byte
}

func (l *memoryLog) Append(line []byte) error {
	cp := make([]byte, len(line))
	copy(cp, line)
	l.mu.Lock()
	l.lines = append(l.lines, cp)
	l.mu.Unlock()
	return nil
}

func (l *memoryLog) Sync() error  { return nil }
func (l *memoryLog) Close() error { return nil }

func (l *memoryLog) snapshot() [][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([][]byte, len(l.lines))
	copy(out, l.lines)
	return out
}
