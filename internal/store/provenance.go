package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"tempart/internal/obs"
)

// The provenance log is the store's tamper-evident spine: one JSON line per
// committed artifact, each entry naming the previous entry's hash, so the
// whole history hashes down to a single tip. The tip is persisted in a
// separate head record replaced atomically at every flush; flipping any byte
// of a committed entry (or of a blob it describes) breaks either the chain
// linkage or the head match and is caught by Verify. Entries embed the
// obs.Manifest of the run that produced the artifact, which makes a served
// partition traceable to the exact inputs, seeds, and build that computed it
// — the paper's partitions-as-reproducible-artifacts contract.

// genesisHash anchors the chain: the Prev of entry 1.
const genesisHash = "0000000000000000000000000000000000000000000000000000000000000000"

// Entry is one line of the provenance log.
type Entry struct {
	// Seq numbers entries from 1; the log is strictly sequential.
	Seq uint64 `json:"seq"`
	// Prev is the lowercase hex SHA-256 of the previous entry's marshaled
	// line (genesisHash for the first entry).
	Prev string `json:"prev"`
	// NS and Key address the blob this entry commits.
	NS  string `json:"ns"`
	Key string `json:"key"`
	// DataHash is the SHA-256 of the blob bytes. For content-addressed
	// namespaces it equals Key; for NSResult (keyed by request address) it is
	// the payload digest Verify recomputes.
	DataHash string `json:"data_hash"`
	// Size is the blob length in bytes.
	Size int64 `json:"size"`
	// UnixMS stamps the commit (store clock).
	UnixMS int64 `json:"unix_ms,omitempty"`
	// Node is the cluster member that wrote the entry (Options.NodeID);
	// empty on single-node stores. Covered by the chain hash.
	Node string `json:"node,omitempty"`
	// Manifest is the run manifest of the job that produced the artifact.
	Manifest *obs.Manifest `json:"manifest,omitempty"`
}

// marshalEntry renders the canonical line (newline-terminated). The entry
// hash is the SHA-256 of the line without its trailing newline.
func marshalEntry(e *Entry) ([]byte, [32]byte, error) {
	body, err := json.Marshal(e)
	if err != nil {
		return nil, [32]byte{}, err
	}
	sum := sha256.Sum256(body)
	return append(body, '\n'), sum, nil
}

// headState is the durable chain tip.
type headState struct {
	Seq  uint64 `json:"seq"`
	Hash string `json:"hash"`
}

func marshalHead(h headState) ([]byte, error) {
	raw, err := json.Marshal(h)
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

func unmarshalHead(raw []byte, h *headState) error {
	return json.Unmarshal(bytes.TrimSpace(raw), h)
}

// chain tracks the in-memory tip of the provenance log.
type chain struct {
	seq  uint64
	tip  string // hex hash of the last entry; genesisHash when empty
	log  appendLog
	mem  *memoryLog // non-nil for memory stores (backs Verify)
	head headState
}

// nextEntry seals an entry body onto the chain: assigns Seq and Prev,
// marshals, advances the tip, and returns the line to append.
func (c *chain) nextEntry(e *Entry) ([]byte, error) {
	e.Seq = c.seq + 1
	if c.seq == 0 {
		e.Prev = genesisHash
	} else {
		e.Prev = c.tip
	}
	line, sum, err := marshalEntry(e)
	if err != nil {
		return nil, err
	}
	c.seq = e.Seq
	c.tip = hex.EncodeToString(sum[:])
	return line, nil
}

// replayChain validates raw log lines at open: linkage intact, hashes
// consistent. It returns the parsed entries, the tip state, and — when the
// final line is partial or unparsable AND lies beyond the durable head — the
// byte offset to truncate the log to. Corruption at or below the head is an
// error: the committed prefix must never be silently dropped.
func replayChain(lines []byte, head *headState) (entries []Entry, seq uint64, tip string, keepBytes int64, err error) {
	tip = genesisHash
	offset := int64(0)
	headSeq := uint64(0)
	if head != nil {
		headSeq = head.Seq
	}
	for len(lines) > 0 {
		nl := bytes.IndexByte(lines, '\n')
		if nl < 0 {
			// Partial final line: a crash mid-append. Only droppable when the
			// durable head does not cover it.
			if seq < headSeq {
				return nil, 0, "", 0, fmt.Errorf("store: provenance log truncated below head (have seq %d, head %d)", seq, headSeq)
			}
			return entries, seq, tip, offset, nil
		}
		line := lines[:nl]
		lines = lines[nl+1:]
		var e Entry
		if uerr := json.Unmarshal(line, &e); uerr != nil {
			if seq >= headSeq {
				return entries, seq, tip, offset, nil // unparsable tail beyond head: drop
			}
			return nil, 0, "", 0, fmt.Errorf("store: provenance entry %d corrupt: %v", seq+1, uerr)
		}
		wantPrev := tip
		if e.Seq != seq+1 || e.Prev != wantPrev {
			if seq >= headSeq {
				return entries, seq, tip, offset, nil
			}
			return nil, 0, "", 0, fmt.Errorf("store: provenance chain broken at seq %d (entry seq %d, prev %.16s…)", seq+1, e.Seq, e.Prev)
		}
		sum := sha256.Sum256(line)
		tip = hex.EncodeToString(sum[:])
		seq = e.Seq
		offset += int64(nl) + 1
		entries = append(entries, e)
	}
	if seq < headSeq {
		return nil, 0, "", 0, fmt.Errorf("store: provenance log shorter than head (have seq %d, head %d)", seq, headSeq)
	}
	if head != nil && head.Seq == seq && seq > 0 && head.Hash != tip {
		return nil, 0, "", 0, fmt.Errorf("store: provenance head hash mismatch at seq %d", seq)
	}
	return entries, seq, tip, offset, nil
}

// hashAt walks lines and returns the entry hash at the given seq, for head
// verification when the chain extends beyond the head.
func hashAt(lines []byte, seq uint64) (string, bool) {
	var at uint64
	for len(lines) > 0 {
		nl := bytes.IndexByte(lines, '\n')
		if nl < 0 {
			return "", false
		}
		at++
		if at == seq {
			sum := sha256.Sum256(lines[:nl])
			return hex.EncodeToString(sum[:]), true
		}
		lines = lines[nl+1:]
	}
	return "", false
}
