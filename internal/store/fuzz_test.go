package store

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"unicode/utf8"
)

// FuzzStoreRoundTrip drives arbitrary artifact bytes through the full durable
// path — encode, persist (disk backend), load, reopen, load again — and
// requires byte-identity plus a clean verification walk at every step.
func FuzzStoreRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0})
	f.Add([]byte("TMSH plain mesh bytes"))
	f.Add([]byte(`{"part":[0,1,2,3],"cut":17}`))
	f.Add(bytes.Repeat([]byte{0xff, 0x00, 0x7f}, 333))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		s, err := Open(Options{Dir: dir, MaxBatch: 1})
		if err != nil {
			t.Fatal(err)
		}
		key := hexSum(data)
		if err := s.Commit(context.Background(), Commit{Puts: []Put{{NS: NSPart, Key: key, Data: data}}}); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		got, ok := s.Get(NSPart, key)
		if !ok || !bytes.Equal(got, data) {
			t.Fatalf("live Get mismatch: ok=%v len=%d want %d", ok, len(got), len(data))
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		s2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		got2, ok := s2.Get(NSPart, key)
		if !ok || !bytes.Equal(got2, data) {
			t.Fatalf("reopened Get mismatch: ok=%v len=%d want %d", ok, len(got2), len(data))
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
		rep, err := VerifyDir(dir)
		if err != nil {
			t.Fatalf("VerifyDir: %v", err)
		}
		if !rep.OK() || rep.VerifiedBlobs != 1 {
			t.Fatalf("verification failed: %s (problems %v)", rep, rep.Problems)
		}
	})
}

// FuzzEntryCodecRoundTrip checks that any entry surviving marshalEntry decodes
// back to the same addressed artifact — the chain's integrity argument rests
// on the line being a faithful, canonical encoding.
func FuzzEntryCodecRoundTrip(f *testing.F) {
	f.Add(uint64(1), "mesh", "ab12", "cd34", int64(9), int64(1700000000000))
	f.Add(uint64(7), "result", "00", "ffff", int64(0), int64(0))
	f.Fuzz(func(t *testing.T, seq uint64, ns, key, dataHash string, size, unixMS int64) {
		if !utf8.ValidString(ns) || !utf8.ValidString(key) || !utf8.ValidString(dataHash) {
			t.Skip() // json.Marshal coerces invalid UTF-8; real keys are hex
		}
		e := Entry{Seq: seq, Prev: genesisHash, NS: ns, Key: key, DataHash: dataHash, Size: size, UnixMS: unixMS}
		line, sum, err := marshalEntry(&e)
		if err != nil {
			t.Fatal(err)
		}
		if len(line) == 0 || line[len(line)-1] != '\n' {
			t.Fatal("marshaled line not newline-terminated")
		}
		var back Entry
		if err := json.Unmarshal(line[:len(line)-1], &back); err != nil {
			t.Fatalf("round-trip unmarshal: %v", err)
		}
		if back.Seq != e.Seq || back.NS != e.NS || back.Key != e.Key || back.DataHash != e.DataHash || back.Size != e.Size {
			t.Fatalf("round trip changed the entry: %+v vs %+v", back, e)
		}
		// Deterministic encoding: re-marshaling must reproduce the exact line
		// (and therefore the exact hash the chain links on).
		line2, sum2, err := marshalEntry(&back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(line, line2) || sum != sum2 {
			t.Fatal("re-marshaling an identical entry changed its bytes")
		}
	})
}
