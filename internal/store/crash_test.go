package store

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// TestCrashMidBatchLosesOnlyUnacked is the crash-recovery satellite: a fake
// clock holds a batch open mid-flight, Crash() cuts the power, and replay at
// reopen must show exactly the acknowledged history — the durable prefix
// byte-identical, the unflushed tail gone, nothing in between.
func TestCrashMidBatchLosesOnlyUnacked(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s, err := Open(Options{Dir: dir, MaxBatch: 100, MaxWait: time.Minute, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Acked: a mesh blob plus the job's submitted record, durably committed.
	// The fake clock pins the flush timer, so drive the max-wait trigger by
	// hand: wait for the flusher to arm it, then advance past the window.
	mesh := []byte("TMSH durable mesh")
	meshKey := hexSum(mesh)
	req := json.RawMessage(`{"mesh":"upload","k":8}`)
	acked := make(chan error, 1)
	go func() {
		acked <- s.Commit(ctx, Commit{
			Puts: []Put{{NS: NSMesh, Key: meshKey, Data: mesh}},
			Jobs: []JobRecord{{Job: "job-1", State: JobSubmitted, Kind: "partition", Req: req, MeshDigest: meshKey}},
		})
	}()
	clk.waitTimerArmed(t)
	clk.Advance(time.Minute)
	if err := <-acked; err != nil {
		t.Fatalf("durable commit: %v", err)
	}

	// Unacked: a running transition and a result blob sit in the open batch
	// (MaxBatch 100, fake clock pinned — the flush trigger never fires).
	s.CommitAsync(Commit{Jobs: []JobRecord{{Job: "job-1", State: JobRunning}}})
	s.CommitAsync(Commit{Puts: []Put{{NS: NSResult, Key: hexSum([]byte("req addr")), Data: []byte(`{"part":[0]}`)}}})

	// A durable commit stuck in the same batch must unblock with an error.
	durableErr := make(chan error, 1)
	go func() {
		durableErr <- s.Commit(ctx, Commit{Jobs: []JobRecord{{Job: "job-2", State: JobSubmitted, Kind: "partition", Req: req}}})
	}()
	time.Sleep(10 * time.Millisecond) // let the submit enqueue
	s.Crash()
	select {
	case err := <-durableErr:
		if err == nil {
			t.Fatal("durable commit in the crashed batch returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("durable waiter leaked through the crash")
	}
	if _, ok := s.Get(NSMesh, meshKey); ok {
		t.Fatal("Get succeeded on a crashed store")
	}

	// Replay: only the acked history survives.
	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer s2.Close()
	got, ok := s2.Get(NSMesh, meshKey)
	if !ok || string(got) != string(mesh) {
		t.Fatalf("durable mesh lost in crash: %q, %v", got, ok)
	}
	replays := s2.JobReplays()
	if len(replays) != 1 {
		t.Fatalf("replays = %+v, want exactly job-1", replays)
	}
	r := replays[0]
	if r.ID != "job-1" || r.State != JobSubmitted || r.Kind != "partition" || r.MeshDigest != meshKey {
		t.Fatalf("job-1 replay = %+v", r)
	}
	if string(r.Req) != string(req) {
		t.Fatalf("replayed request = %s, want %s", r.Req, req)
	}
	st := s2.Stats()
	if st.ProvEntries != 1 || st.JobsPending != 1 {
		t.Fatalf("post-crash stats = %+v", st)
	}
	rep, err := s2.Verify()
	if err != nil || !rep.OK() {
		t.Fatalf("Verify after crash replay: %v %s", err, rep)
	}
}

// TestCloseFlushesPendingBatch is the shutdown-ordering satellite at the
// store level: commits sitting in an open batch (timer pinned by the fake
// clock) must reach disk when Close runs the final drain — a drained daemon
// may not lose anything it accepted.
func TestCloseFlushesPendingBatch(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s, err := Open(Options{Dir: dir, MaxBatch: 100, MaxWait: time.Minute, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	part := []byte("TPRT pending partition")
	partKey := hexSum(part)
	s.CommitAsync(Commit{Puts: []Put{{NS: NSPart, Key: partKey, Data: part}}})
	s.CommitAsync(Commit{Jobs: []JobRecord{{Job: "drain-1", State: JobDone, ResultKey: "abcd12"}}})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got, ok := s2.Get(NSPart, partKey)
	if !ok || string(got) != string(part) {
		t.Fatalf("pending partition lost across Close: %q, %v", got, ok)
	}
	replays := s2.JobReplays()
	if len(replays) != 1 || replays[0].ID != "drain-1" || replays[0].State != JobDone {
		t.Fatalf("replays after Close = %+v", replays)
	}
	rep, err := s2.Verify()
	if err != nil || !rep.OK() || rep.Entries != 1 {
		t.Fatalf("Verify: %v %s", err, rep)
	}
}

// TestCrashBetweenFlushAndNextBatch: everything flushed before the crash is
// replayable even though the log handles closed without a final sync.
func TestCrashAfterFlushKeepsFlushedState(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("flushed then crashed")
	key := hexSum(data)
	if err := s.Commit(context.Background(), Commit{Puts: []Put{{NS: NSPart, Key: key, Data: data}}}); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if got, ok := s2.Get(NSPart, key); !ok || string(got) != string(data) {
		t.Fatalf("flushed blob lost: %q, %v", got, ok)
	}
}
