package store

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Report is the outcome of a provenance verification walk.
type Report struct {
	// Entries is the chain length examined.
	Entries uint64
	// HeadSeq is the durable head's sequence (0 when no head exists).
	HeadSeq uint64
	// VerifiedBlobs counts entries whose blob bytes matched their recorded
	// digest; MissingBlobs counts entries whose blob was absent.
	VerifiedBlobs int
	MissingBlobs  int
	// Orphans counts blobs present in the backend but absent from the
	// chain (written but never committed — a crash between a blob write and
	// the log fsync). Not an integrity failure.
	Orphans int
	// TailBeyondHead counts fsynced entries the head does not yet cover
	// (crash between the log fsync and the head replacement). They are
	// chain-consistent but their tip is unattested until the next Open.
	TailBeyondHead int
	// Problems lists every integrity violation found, in chain order.
	Problems []string
}

// OK reports whether the walk found no integrity violations.
func (r *Report) OK() bool { return len(r.Problems) == 0 }

// String summarizes the report in one line.
func (r *Report) String() string {
	status := "OK"
	if !r.OK() {
		status = fmt.Sprintf("CORRUPT (%d problems)", len(r.Problems))
	}
	return fmt.Sprintf("provenance %s: %d entries (head %d), %d blobs verified, %d missing, %d orphans, %d beyond head",
		status, r.Entries, r.HeadSeq, r.VerifiedBlobs, r.MissingBlobs, r.Orphans, r.TailBeyondHead)
}

// verifyWalk recomputes the whole chain from raw log bytes: linkage, head
// attestation, and blob digests via get. list (optional) feeds orphan
// detection.
func verifyWalk(raw []byte, head *headState, get func(ns, key string) ([]byte, error), list func(ns string) ([]string, error)) *Report {
	rep := &Report{}
	if head != nil {
		rep.HeadSeq = head.Seq
	}
	tip := genesisHash
	var seq uint64
	seen := map[string]bool{}
	lines := raw
	for len(lines) > 0 {
		nl := bytes.IndexByte(lines, '\n')
		if nl < 0 {
			rep.Problems = append(rep.Problems, fmt.Sprintf("entry %d: partial line (truncated append)", seq+1))
			break
		}
		line := lines[:nl]
		lines = lines[nl+1:]
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			rep.Problems = append(rep.Problems, fmt.Sprintf("entry %d: unparsable: %v", seq+1, err))
			break
		}
		if e.Seq != seq+1 {
			rep.Problems = append(rep.Problems, fmt.Sprintf("entry %d: sequence gap (found seq %d)", seq+1, e.Seq))
			break
		}
		if e.Prev != tip {
			rep.Problems = append(rep.Problems, fmt.Sprintf("entry %d: chain broken (prev %.16s… != tip %.16s…)", e.Seq, e.Prev, tip))
			break
		}
		sum := sha256.Sum256(line)
		tip = hex.EncodeToString(sum[:])
		seq = e.Seq
		rep.Entries = seq
		if head != nil && seq == head.Seq && tip != head.Hash {
			rep.Problems = append(rep.Problems, fmt.Sprintf("entry %d: hash does not match durable head", seq))
		}
		if head != nil && seq > head.Seq {
			rep.TailBeyondHead++
		}
		seen[blobKey(e.NS, e.Key)] = true
		data, err := get(e.NS, e.Key)
		switch {
		case errors.Is(err, ErrNotFound):
			rep.MissingBlobs++
			rep.Problems = append(rep.Problems, fmt.Sprintf("entry %d: blob %s/%s missing", seq, e.NS, e.Key))
		case err != nil:
			rep.Problems = append(rep.Problems, fmt.Sprintf("entry %d: blob %s/%s unreadable: %v", seq, e.NS, e.Key, err))
		default:
			dsum := sha256.Sum256(data)
			if hex.EncodeToString(dsum[:]) != e.DataHash {
				rep.Problems = append(rep.Problems, fmt.Sprintf("entry %d: blob %s/%s bytes do not match recorded digest", seq, e.NS, e.Key))
			} else if int64(len(data)) != e.Size {
				rep.Problems = append(rep.Problems, fmt.Sprintf("entry %d: blob %s/%s size %d != recorded %d", seq, e.NS, e.Key, len(data), e.Size))
			} else {
				rep.VerifiedBlobs++
			}
		}
	}
	if head != nil && head.Seq > seq {
		rep.Problems = append(rep.Problems, fmt.Sprintf("chain ends at seq %d but head attests seq %d", seq, head.Seq))
	}
	if head == nil && seq > 0 {
		rep.Problems = append(rep.Problems, "durable head missing (chain tip unattested)")
	}
	if list != nil {
		for _, ns := range []string{NSMesh, NSPart, NSResult} {
			keys, err := list(ns)
			if err != nil {
				continue
			}
			for _, k := range keys {
				if !seen[blobKey(ns, k)] {
					rep.Orphans++
				}
			}
		}
	}
	return rep
}

// Verify walks the live store's committed history. It flushes first so the
// walk covers everything acknowledged to callers.
func (s *Store) Verify() (*Report, error) {
	if err := s.Flush(context.Background()); err != nil && !errors.Is(err, errClosed) {
		return nil, err
	}
	if s.dir != "" {
		return VerifyDir(s.dir)
	}
	s.mu.Lock()
	lines := s.chain.mem.snapshot()
	var head *headState
	if s.chain.seq > 0 {
		head = &headState{Seq: s.chain.seq, Hash: s.chain.tip}
	}
	s.mu.Unlock()
	var raw []byte
	for _, l := range lines {
		raw = append(raw, l...)
	}
	return verifyWalk(raw, head, s.blob.Get, s.blob.List), nil
}

// VerifyDir walks a disk store's directory read-only — the `tempartd
// -verify` mode. It never mutates the directory, so it is safe on a
// directory another process may still own.
func VerifyDir(dir string) (*Report, error) {
	raw, err := os.ReadFile(filepath.Join(dir, provLogName))
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	head, err := readHead(filepath.Join(dir, provHeadName))
	if err != nil {
		// A corrupt head is itself a finding, not a walk failure.
		rep := &Report{Problems: []string{err.Error()}}
		head = nil
		rep2 := verifyWalk(raw, head, dirGet(dir), dirList(dir))
		rep2.Problems = append(rep.Problems, rep2.Problems...)
		return rep2, nil
	}
	blob := &diskBlob{root: filepath.Join(dir, blobDirName)}
	return verifyWalk(raw, head, blob.Get, blob.List), nil
}

func dirGet(dir string) func(ns, key string) ([]byte, error) {
	b := &diskBlob{root: filepath.Join(dir, blobDirName)}
	return b.Get
}

func dirList(dir string) func(ns string) ([]string, error) {
	b := &diskBlob{root: filepath.Join(dir, blobDirName)}
	return b.List
}
