package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// seedDir builds a small committed history and returns the keys written.
func seedDir(t *testing.T, dir string) (meshKey, partKey string) {
	t.Helper()
	s, err := Open(Options{Dir: dir, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	meshKey = commitBlob(t, s, NSMesh, []byte("TMSH seed mesh"))
	partKey = commitBlob(t, s, NSPart, []byte("TPRT seed partition"))
	commitBlob(t, s, NSResult, []byte(`{"cut":42}`))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return meshKey, partKey
}

func flipByte(t *testing.T, path string, offset int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if offset < 0 {
		offset = len(raw) + offset
	}
	raw[offset] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDirCleanChain(t *testing.T) {
	dir := t.TempDir()
	seedDir(t, dir)
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	if !rep.OK() || rep.Entries != 3 || rep.VerifiedBlobs != 3 || rep.HeadSeq != 3 {
		t.Fatalf("clean chain report = %s (problems %v)", rep, rep.Problems)
	}
}

func TestVerifyDetectsFlippedByteInLog(t *testing.T) {
	dir := t.TempDir()
	seedDir(t, dir)
	raw, err := os.ReadFile(filepath.Join(dir, provLogName))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the SECOND entry's key field: linkage to entry 3
	// breaks because entry 3's prev no longer matches the recomputed hash.
	lines := strings.SplitAfter(string(raw), "\n")
	flipByte(t, filepath.Join(dir, provLogName), len(lines[0])+len(lines[1])/2)
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	if rep.OK() {
		t.Fatalf("flipped log byte not detected: %s", rep)
	}
}

func TestVerifyDetectsFlippedByteInFinalEntry(t *testing.T) {
	// The last entry has no successor to break linkage — only the durable
	// head attestation catches it.
	dir := t.TempDir()
	seedDir(t, dir)
	flipByte(t, filepath.Join(dir, provLogName), -10)
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	if rep.OK() {
		t.Fatalf("flipped final-entry byte not detected: %s", rep)
	}
}

func TestVerifyDetectsFlippedByteInBlob(t *testing.T) {
	dir := t.TempDir()
	_, partKey := seedDir(t, dir)
	blobPath := filepath.Join(dir, blobDirName, NSPart, partKey[:2], partKey)
	flipByte(t, blobPath, 3)
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	if rep.OK() {
		t.Fatalf("flipped blob byte not detected: %s", rep)
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "do not match recorded digest") {
			found = true
		}
	}
	if !found {
		t.Fatalf("problems lack a digest mismatch: %v", rep.Problems)
	}
}

func TestVerifyDetectsMissingBlob(t *testing.T) {
	dir := t.TempDir()
	meshKey, _ := seedDir(t, dir)
	if err := os.Remove(filepath.Join(dir, blobDirName, NSMesh, meshKey[:2], meshKey)); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	if rep.OK() || rep.MissingBlobs != 1 {
		t.Fatalf("missing blob not detected: %s", rep)
	}
}

func TestVerifyDetectsMissingHead(t *testing.T) {
	dir := t.TempDir()
	seedDir(t, dir)
	if err := os.Remove(filepath.Join(dir, provHeadName)); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	if rep.OK() {
		t.Fatalf("missing head not detected: %s", rep)
	}
}

func TestVerifyCountsOrphanBlobs(t *testing.T) {
	dir := t.TempDir()
	seedDir(t, dir)
	// A blob written but never committed to the chain (crash between the blob
	// write and the log fsync) is an orphan, not an integrity failure.
	orphan := []byte("orphaned bytes")
	b := &diskBlob{root: filepath.Join(dir, blobDirName)}
	if err := b.Put(NSPart, hexSum(orphan), orphan); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	if !rep.OK() || rep.Orphans != 1 {
		t.Fatalf("orphan report = %s (problems %v)", rep, rep.Problems)
	}
}

func TestOpenRejectsCorruptionBelowHead(t *testing.T) {
	// Open must never silently drop committed history: corruption at or below
	// the durable head is a hard error, not a repair.
	dir := t.TempDir()
	seedDir(t, dir)
	flipByte(t, filepath.Join(dir, provLogName), 20)
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open succeeded over a corrupt committed prefix")
	}
}

func TestOpenRepairsTrailingHead(t *testing.T) {
	// Crash window: log fsynced but the head replace never happened. Open must
	// accept the longer chain (its prefix matches the head) and repair the
	// head to the true tip.
	dir := t.TempDir()
	seedDir(t, dir)
	raw, err := os.ReadFile(filepath.Join(dir, provLogName))
	if err != nil {
		t.Fatal(err)
	}
	// Rewind the head to attest only entry 1.
	h, ok := hashAt(raw, 1)
	if !ok {
		t.Fatal("hashAt(1) failed")
	}
	if err := writeHead(dir, headState{Seq: 1, Hash: h}); err != nil {
		t.Fatal(err)
	}
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open with trailing head: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyDir(dir)
	if err != nil || !rep.OK() || rep.HeadSeq != 3 {
		t.Fatalf("head not repaired: %v %s", err, rep)
	}
}

func TestMemoryStoreVerifyDetectsBlobTamper(t *testing.T) {
	s := mustOpen(t, Options{MaxBatch: 1})
	data := []byte("memory artifact")
	key := commitBlob(t, s, NSPart, data)
	// Reach into the backend and corrupt the stored bytes.
	mb := s.blob.(*memoryBlob)
	mb.mu.Lock()
	mb.m[blobKey(NSPart, key)][0] ^= 0x01
	mb.mu.Unlock()
	if _, ok := s.Get(NSPart, key); ok {
		t.Fatal("Get returned tampered bytes")
	}
	rep, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatalf("tampered memory blob not detected: %s", rep)
	}
	if st := s.Stats(); st.ReadCorrupt == 0 {
		t.Fatalf("ReadCorrupt not counted: %+v", st)
	}
}
