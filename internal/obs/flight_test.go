package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func flightEntry(id string, d time.Duration) FlightEntry {
	return FlightEntry{RequestID: id, Kind: "partition", Start: time.Unix(0, 0), Duration: d}
}

func TestFlightRecorderRingEvictsOldestFirst(t *testing.T) {
	f := NewFlightRecorder(4, 0)
	for i := 0; i < 10; i++ {
		f.Record(flightEntry(fmt.Sprintf("req-%02d", i), time.Duration(i)*time.Millisecond))
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	recent := f.Recent()
	// Newest-first: req-09..req-06. req-09 is also the slowest so no pinned
	// extra is appended.
	want := []string{"req-09", "req-08", "req-07", "req-06"}
	if len(recent) != len(want) {
		t.Fatalf("Recent returned %d entries, want %d: %+v", len(recent), len(want), recent)
	}
	for i, id := range want {
		if recent[i].RequestID != id {
			t.Errorf("Recent[%d] = %s, want %s", i, recent[i].RequestID, id)
		}
	}
	for i := 0; i < 6; i++ {
		if _, ok := f.Get(fmt.Sprintf("req-%02d", i)); ok {
			t.Errorf("req-%02d still retrievable after eviction", i)
		}
	}
}

func TestFlightRecorderPinsSlowest(t *testing.T) {
	f := NewFlightRecorder(2, 0)
	f.Record(flightEntry("slow", time.Second))
	f.Record(flightEntry("a", time.Millisecond))
	f.Record(flightEntry("b", time.Millisecond))
	f.Record(flightEntry("c", time.Millisecond))
	// "slow" has been evicted from the ring but must survive pinned.
	e, ok := f.Get("slow")
	if !ok || e.Duration != time.Second {
		t.Fatalf("pinned slowest lost: %+v ok=%v", e, ok)
	}
	recent := f.Recent()
	if len(recent) != 3 {
		t.Fatalf("Recent = %d entries, want ring 2 + pinned 1", len(recent))
	}
	if recent[len(recent)-1].RequestID != "slow" {
		t.Errorf("pinned entry should be appended last: %+v", recent)
	}
}

func TestFlightRecorderConcurrentWriters(t *testing.T) {
	const (
		writers = 8
		perW    = 200
		size    = 16
	)
	f := NewFlightRecorder(size, 0)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				f.Record(flightEntry(fmt.Sprintf("w%d-%03d", w, i), time.Duration(i)))
				if i%17 == 0 {
					f.Recent()
					f.Get(fmt.Sprintf("w%d-%03d", w, i))
				}
			}
		}(w)
	}
	wg.Wait()
	if f.Len() != size {
		t.Fatalf("Len = %d, want full ring %d", f.Len(), size)
	}
	// Oldest-first eviction per writer: each writer's surviving entries must
	// be a suffix of its own sequence (an older entry from writer w cannot
	// outlive a newer one, FIFO is per-ring and Record is atomic).
	newest := map[int]int{}
	oldest := map[int]int{}
	count := map[int]int{}
	for _, e := range f.Recent() {
		var w, i int
		if _, err := fmt.Sscanf(e.RequestID, "w%d-%d", &w, &i); err != nil {
			t.Fatalf("bad id %q: %v", e.RequestID, err)
		}
		count[w]++
		if count[w] == 1 || i > newest[w] {
			newest[w] = i
		}
		if count[w] == 1 || i < oldest[w] {
			oldest[w] = i
		}
	}
	for w := range count {
		if newest[w]-oldest[w]+1 < count[w] {
			t.Errorf("writer %d: %d survivors in [%d,%d] — eviction not oldest-first",
				w, count[w], oldest[w], newest[w])
		}
	}
	// The duration-(perW-1) slowest entry (any writer's last) must be pinned.
	if _, ok := f.Get(fmt.Sprintf("w0-%03d", perW-1)); !ok {
		// Another writer's perW-1 entry may hold the pin instead (ties keep
		// the later one); just check Recent has some duration-(perW-1) entry.
		found := false
		for _, e := range f.Recent() {
			if e.Duration == time.Duration(perW-1) {
				found = true
				break
			}
		}
		if !found {
			t.Error("no slowest-duration entry retained")
		}
	}
}

func TestFlightRecorderSampleHeadStride(t *testing.T) {
	const n = 1000
	for _, rate := range []float64{0, 0.1, 0.25, 0.5, 1} {
		f := NewFlightRecorder(4, rate)
		hits := 0
		for i := 0; i < n; i++ {
			if f.SampleHead() {
				hits++
			}
		}
		want := int(float64(n) * rate)
		if hits < want-1 || hits > want+1 {
			t.Errorf("rate %g: %d/%d sampled, want ~%d", rate, hits, n, want)
		}
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	if f.SampleHead() {
		t.Error("nil SampleHead = true")
	}
	f.Record(flightEntry("x", 0))
	if f.Recent() != nil || f.Len() != 0 {
		t.Error("nil recorder retained entries")
	}
	if _, ok := f.Get("x"); ok {
		t.Error("nil Get ok")
	}
}

func TestFlightRecorderRateClamped(t *testing.T) {
	f := NewFlightRecorder(4, 7.5)
	if !f.SampleHead() {
		t.Error("rate > 1 should clamp to always-sample")
	}
	f = NewFlightRecorder(4, -3)
	if f.SampleHead() {
		t.Error("negative rate should clamp to never-sample")
	}
}
