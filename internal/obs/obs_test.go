package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestSpanHierarchyAndAttrs(t *testing.T) {
	rec := NewRecorder()
	root := rec.Start("partition")
	child := root.Start("coarsen")
	child.SetInt("vertices", 1024)
	child.SetFloat("ratio", 0.42)
	child.SetStr("method", "hem")
	child.End()
	grand := child.Start("match")
	grand.End()
	root.End()
	rec.Count("passes", 2)
	rec.Count("passes", 1)

	spans := rec.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "partition" || spans[0].Parent != -1 {
		t.Errorf("root = %q parent %d, want partition/-1", spans[0].Name, spans[0].Parent)
	}
	if spans[1].Name != "coarsen" || spans[1].Parent != 0 {
		t.Errorf("child = %q parent %d, want coarsen/0", spans[1].Name, spans[1].Parent)
	}
	if spans[2].Parent != 1 {
		t.Errorf("grandchild parent = %d, want 1", spans[2].Parent)
	}
	if len(spans[1].Attrs) != 3 {
		t.Fatalf("child attrs = %d, want 3", len(spans[1].Attrs))
	}
	if a := spans[1].Attrs[0]; a.Key != "vertices" || a.Kind != AttrInt || a.Int != 1024 {
		t.Errorf("attr[0] = %+v", a)
	}
	if got := spans[1].Attrs[1].value(); got != "0.42" {
		t.Errorf("float attr rendered %q", got)
	}
	if spans[0].End < spans[0].Start {
		t.Error("ended root span still marked unfinished")
	}
	if got := rec.Counters()["passes"]; got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
}

func TestUnfinishedSpanDuration(t *testing.T) {
	rec := NewRecorder()
	s := rec.Start("open")
	spans := rec.Snapshot()
	if d := spans[0].Duration(); d != 0 {
		t.Errorf("unfinished duration = %v, want 0", d)
	}
	s.End()
	if d := rec.Snapshot()[0].Duration(); d < 0 {
		t.Errorf("duration = %v, want >= 0", d)
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var rec *Recorder
	if rec.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	s := rec.Start("x")
	if s.Active() {
		t.Error("span from nil recorder is active")
	}
	c := s.Start("y")
	c.SetInt("k", 1)
	c.SetFloat("k", 1)
	c.SetStr("k", "v")
	c.End()
	s.End()
	rec.Count("n", 1)
	if rec.Snapshot() != nil || rec.Counters() != nil || rec.PhaseTotals() != nil || rec.PhaseSummaries() != nil {
		t.Error("nil recorder returned non-nil data")
	}
}

// TestDisabledRecorderZeroAllocs pins the overhead guarantee: with no
// recorder attached, every instrumentation call on the hot path allocates
// nothing. This is what lets partition/taskgraph/flusim keep their
// allocation-lean profiles while being instrumented unconditionally.
func TestDisabledRecorderZeroAllocs(t *testing.T) {
	ctx := context.Background()
	var rec *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r := FromContext(ctx)
		sp := r.Start("phase")
		child := sp.Start("sub")
		child.SetInt("n", 42)
		child.SetFloat("f", 1.5)
		child.SetStr("s", "v")
		child.End()
		sp.End()
		r.Count("events", 1)
		_ = r.Enabled()
		_ = StartSpan(ctx, "other")
		_ = SpanFromContext(ctx)
		rec.Count("more", 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled-recorder path allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestContextPlumbing(t *testing.T) {
	base := context.Background()
	if got := FromContext(base); got != nil {
		t.Errorf("FromContext(background) = %v, want nil", got)
	}
	if ctx := WithRecorder(base, nil); ctx != base {
		t.Error("WithRecorder(nil) changed the context")
	}
	if ctx := ContextWithSpan(base, Span{}); ctx != base {
		t.Error("ContextWithSpan(zero) changed the context")
	}

	rec := NewRecorder()
	ctx := WithRecorder(base, rec)
	if FromContext(ctx) != rec {
		t.Fatal("FromContext did not return attached recorder")
	}
	root := StartSpan(ctx, "root")
	if !root.Active() {
		t.Fatal("StartSpan with recorder returned inactive span")
	}
	ctx2 := ContextWithSpan(ctx, root)
	child := StartSpan(ctx2, "child")
	child.End()
	root.End()
	spans := rec.Snapshot()
	if len(spans) != 2 || spans[1].Parent != 0 {
		t.Fatalf("context-started child did not nest: %+v", spans)
	}
	if got := SpanFromContext(ctx2); got != root {
		t.Error("SpanFromContext did not round-trip the span")
	}
}

func TestPhaseTotalsAndSummaries(t *testing.T) {
	rec := NewRecorder()
	for i := 0; i < 3; i++ {
		s := rec.Start("b")
		time.Sleep(time.Millisecond)
		s.End()
	}
	a := rec.Start("a")
	a.End()

	totals := rec.PhaseTotals()
	if totals["b"].Count != 3 {
		t.Errorf("phase b count = %d, want 3", totals["b"].Count)
	}
	if totals["b"].Seconds <= 0 {
		t.Errorf("phase b seconds = %g, want > 0", totals["b"].Seconds)
	}
	sums := rec.PhaseSummaries()
	if len(sums) != 2 || sums[0].Name != "a" || sums[1].Name != "b" {
		t.Errorf("summaries not name-sorted: %+v", sums)
	}
}

func TestConcurrentRecording(t *testing.T) {
	rec := NewRecorder()
	root := rec.Start("root")
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				s := root.Start("worker")
				s.SetInt("i", int64(i))
				s.End()
				rec.Count("ops", 1)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	root.End()
	if n := len(rec.Snapshot()); n != 1+8*100 {
		t.Errorf("got %d spans, want %d", n, 1+8*100)
	}
	if c := rec.Counters()["ops"]; c != 800 {
		t.Errorf("ops counter = %d, want 800", c)
	}
}

func TestVersionLine(t *testing.T) {
	line := VersionLine("partbench")
	if !strings.HasPrefix(line, "partbench") {
		t.Errorf("version line %q missing cmd name", line)
	}
	if !strings.Contains(line, "go1") {
		t.Errorf("version line %q missing Go version", line)
	}
	bi := ReadBuildInfo()
	if bi.GoVersion == "" || bi.OS == "" || bi.Arch == "" {
		t.Errorf("build info missing toolchain/target: %+v", bi)
	}
}
