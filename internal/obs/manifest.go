package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// Manifest is the JSON run report written by partbench/solve -report: enough
// context to reproduce a run (inputs, seeds, options, build identity) plus
// its outcome (per-phase timings, counters, quality metrics). Phase seconds
// sum durations across goroutines, so parallel sections read like
// CPU-seconds; with Parallelism 1 they partition the wall clock.
type Manifest struct {
	// Tool is the producing command ("partbench", "solve").
	Tool string `json:"tool"`
	// Node identifies the cluster member that executed the run (tempartd
	// -node-id). Empty for single-process tools. In a fleet this is what
	// lets provenance chains from different nodes be correlated: a result
	// computed by coordinator fan-out carries the coordinator's node id,
	// and each remotely computed subtree is logged on its peer under that
	// peer's id.
	Node string `json:"node,omitempty"`
	// Started/Finished bound the instrumented run in wall-clock time.
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// Build identifies the binary.
	Build BuildInfo `json:"build"`
	// Inputs captures mesh/seed/option identity as the tool sees it.
	Inputs map[string]any `json:"inputs,omitempty"`
	// Phases is the name-sorted per-phase timing breakdown.
	Phases []PhaseSummary `json:"phases,omitempty"`
	// Counters holds the recorder's counters, name-sorted on encode.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Metrics carries quality numbers (edge cut, imbalance, makespan, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// NewManifest seeds a manifest with the tool name, build identity, and start
// time.
func NewManifest(tool string) *Manifest {
	return &Manifest{
		Tool:    tool,
		Started: time.Now(),
		Build:   ReadBuildInfo(),
		Inputs:  map[string]any{},
		Metrics: map[string]float64{},
	}
}

// Finish stamps the end time and folds the recorder's phases and counters in.
// A nil recorder leaves them empty.
func (m *Manifest) Finish(r *Recorder) {
	m.Finished = time.Now()
	m.Phases = r.PhaseSummaries()
	m.Counters = r.Counters()
}

// WriteJSON renders the manifest as indented JSON. Map keys encode sorted
// (encoding/json guarantees it), so manifests diff cleanly across runs.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// SortedCounterNames returns the manifest's counter names in order — handy
// for stable textual summaries alongside the JSON.
func (m *Manifest) SortedCounterNames() []string {
	names := make([]string, 0, len(m.Counters))
	for k := range m.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
