package obs

import (
	"io"
	"sort"
	"strconv"

	"tempart/internal/trace"
)

// WriteChromeTrace drains the recorder into the Chrome trace-event JSON
// format via internal/trace's exporter, so pipeline spans open in Perfetto
// (or chrome://tracing) with the same workflow as FLUSIM schedules. Span
// start/end nanoseconds map to microsecond timestamps; durations are floored
// at 1µs so even the shortest phases stay visible. Spans land on PID 0 and
// are packed into TID "lanes" so concurrently open spans (parallel bisection
// subtrees, eval fan-out) never overlap within a lane. On a nil recorder the
// output is an empty event array.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	spans := r.Snapshot()
	events := make([]trace.ChromeEvent, 0, len(spans))
	lanes := assignLanes(spans)
	for i := range spans {
		sp := &spans[i]
		end := sp.End
		if end < sp.Start {
			end = sp.Start // clamp unfinished spans
		}
		dur := (end - sp.Start) / 1000
		if dur < 1 {
			dur = 1
		}
		var args map[string]string
		if len(sp.Attrs) > 0 {
			args = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				args[a.Key] = a.value()
			}
		}
		events = append(events, trace.ChromeEvent{
			Name: sp.Name,
			Cat:  "pipeline",
			Ph:   "X",
			Ts:   sp.Start / 1000,
			Dur:  dur,
			PID:  0,
			TID:  lanes[i],
			Args: args,
		})
	}
	return trace.WriteChromeEvents(w, events)
}

// value renders an attribute for trace args and manifests.
func (a *Attr) value() string {
	switch a.Kind {
	case AttrInt:
		return strconv.FormatInt(a.Int, 10)
	case AttrFloat:
		return strconv.FormatFloat(a.Float, 'g', -1, 64)
	default:
		return a.Str
	}
}

// assignLanes packs spans into trace viewer rows. The complete-event format
// renders nested spans correctly only when each row's spans form a laminar
// family (properly nested or disjoint), so we sort by (start asc, end desc)
// and greedily place each span in the first lane whose open spans can enclose
// it, opening a new lane otherwise. Sequential pipelines collapse to one
// lane; parallel subtrees fan out to as many lanes as their true concurrency.
func assignLanes(spans []SpanRecord) []int32 {
	n := len(spans)
	lanes := make([]int32, n)
	if n == 0 {
		return lanes
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := &spans[order[a]], &spans[order[b]]
		ea, eb := laneEnd(sa), laneEnd(sb)
		if sa.Start != sb.Start {
			return sa.Start < sb.Start
		}
		return ea > eb
	})
	// open[l] is the stack of end times of spans currently open in lane l.
	var open [][]int64
	for _, i := range order {
		sp := &spans[i]
		start, end := sp.Start, laneEnd(sp)
		placed := false
		for l := range open {
			st := open[l]
			for len(st) > 0 && st[len(st)-1] <= start {
				st = st[:len(st)-1]
			}
			if len(st) == 0 || st[len(st)-1] >= end {
				open[l] = append(st, end)
				lanes[i] = int32(l)
				placed = true
				break
			}
			open[l] = st
		}
		if !placed {
			open = append(open, []int64{end})
			lanes[i] = int32(len(open) - 1)
		}
	}
	return lanes
}

func laneEnd(sp *SpanRecord) int64 {
	if sp.End < sp.Start {
		return sp.Start
	}
	return sp.End
}
