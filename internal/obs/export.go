package obs

import (
	"io"
	"sort"
	"strconv"

	"tempart/internal/trace"
)

// WriteChromeTrace drains the recorder into the Chrome trace-event JSON
// format via internal/trace's exporter, so pipeline spans open in Perfetto
// (or chrome://tracing) with the same workflow as FLUSIM schedules. Span
// start/end nanoseconds map to microsecond timestamps; durations are floored
// at 1µs so even the shortest phases stay visible. Spans are packed into TID
// "lanes" so concurrently open spans (parallel bisection subtrees, eval
// fan-out) never overlap within a lane. On a nil recorder the output is an
// empty event array.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	return WriteSpansChrome(w, r.Snapshot(), "")
}

// WriteSpansChrome writes a span snapshot as Chrome trace-event JSON. Spans
// sharing a SpanRecord.Node land in one trace "process": each distinct node
// gets its own PID plus a process_name metadata event, so a stitched
// cross-node trace opens in Perfetto with one lane group per fleet member.
// localName labels the PID of node-less (locally recorded) spans; when every
// span is node-less no metadata is emitted at all and the output matches the
// single-node format byte-for-byte.
func WriteSpansChrome(w io.Writer, spans []SpanRecord, localName string) error {
	nodes := make([]string, 0, 4) // distinct non-empty nodes, first-seen order
	seen := map[string]bool{}
	for i := range spans {
		if n := spans[i].Node; n != "" && !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	sort.Strings(nodes)
	pidOf := make(map[string]int32, len(nodes)+1)
	pidOf[""] = 0
	for i, n := range nodes {
		pidOf[n] = int32(i + 1)
	}

	events := make([]trace.ChromeEvent, 0, len(spans)+len(nodes)+1)
	if len(nodes) > 0 {
		if localName == "" {
			localName = "local"
		}
		events = append(events, trace.ChromeEvent{
			Name: "process_name", Ph: "M", PID: 0,
			Args: map[string]string{"name": localName},
		})
		for _, n := range nodes {
			events = append(events, trace.ChromeEvent{
				Name: "process_name", Ph: "M", PID: pidOf[n],
				Args: map[string]string{"name": n},
			})
		}
	}

	lanes := assignLanesByNode(spans)
	for i := range spans {
		sp := &spans[i]
		end := sp.End
		if end < sp.Start {
			end = sp.Start // clamp unfinished spans
		}
		dur := (end - sp.Start) / 1000
		if dur < 1 {
			dur = 1
		}
		var args map[string]string
		if len(sp.Attrs) > 0 {
			args = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				args[a.Key] = a.value()
			}
		}
		events = append(events, trace.ChromeEvent{
			Name: sp.Name,
			Cat:  "pipeline",
			Ph:   "X",
			Ts:   sp.Start / 1000,
			Dur:  dur,
			PID:  pidOf[sp.Node],
			TID:  lanes[i],
			Args: args,
		})
	}
	return trace.WriteChromeEvents(w, events)
}

// assignLanesByNode runs the laminar lane packing once per node group, so
// lanes are dense within each trace process (TIDs are scoped to their PID in
// the Chrome format). The single-node case degenerates to assignLanes.
func assignLanesByNode(spans []SpanRecord) []int32 {
	byNode := map[string][]int{}
	for i := range spans {
		byNode[spans[i].Node] = append(byNode[spans[i].Node], i)
	}
	if len(byNode) <= 1 {
		return assignLanes(spans)
	}
	lanes := make([]int32, len(spans))
	for _, idxs := range byNode {
		group := make([]SpanRecord, len(idxs))
		for j, i := range idxs {
			group[j] = spans[i]
		}
		groupLanes := assignLanes(group)
		for j, i := range idxs {
			lanes[i] = groupLanes[j]
		}
	}
	return lanes
}

// value renders an attribute for trace args and manifests.
func (a *Attr) value() string {
	switch a.Kind {
	case AttrInt:
		return strconv.FormatInt(a.Int, 10)
	case AttrFloat:
		return strconv.FormatFloat(a.Float, 'g', -1, 64)
	default:
		return a.Str
	}
}

// assignLanes packs spans into trace viewer rows. The complete-event format
// renders nested spans correctly only when each row's spans form a laminar
// family (properly nested or disjoint), so we sort by (start asc, end desc)
// and greedily place each span in the first lane whose open spans can enclose
// it, opening a new lane otherwise. Sequential pipelines collapse to one
// lane; parallel subtrees fan out to as many lanes as their true concurrency.
func assignLanes(spans []SpanRecord) []int32 {
	n := len(spans)
	lanes := make([]int32, n)
	if n == 0 {
		return lanes
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := &spans[order[a]], &spans[order[b]]
		ea, eb := laneEnd(sa), laneEnd(sb)
		if sa.Start != sb.Start {
			return sa.Start < sb.Start
		}
		return ea > eb
	})
	// open[l] is the stack of end times of spans currently open in lane l.
	var open [][]int64
	for _, i := range order {
		sp := &spans[i]
		start, end := sp.Start, laneEnd(sp)
		placed := false
		for l := range open {
			st := open[l]
			for len(st) > 0 && st[len(st)-1] <= start {
				st = st[:len(st)-1]
			}
			if len(st) == 0 || st[len(st)-1] >= end {
				open[l] = append(st, end)
				lanes[i] = int32(l)
				placed = true
				break
			}
			open[l] = st
		}
		if !placed {
			open = append(open, []int64{end})
			lanes[i] = int32(len(open) - 1)
		}
	}
	return lanes
}

func laneEnd(sp *SpanRecord) int64 {
	if sp.End < sp.Start {
		return sp.Start
	}
	return sp.End
}
