package obs

import (
	"os"
	"runtime/metrics"
	"strconv"
	"strings"
	"sync"
	"time"
)

// heapSample reads the live-heap metric without allocating: the sample slice
// is package-level and guarded, and runtime/metrics fills values in place.
var (
	heapMu     sync.Mutex
	heapSample = []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
)

// HeapBytes returns the bytes currently occupied by live (plus
// not-yet-swept) heap objects — the runtime's cheap equivalent of
// MemStats.HeapAlloc, read without a stop-the-world.
func HeapBytes() int64 {
	heapMu.Lock()
	metrics.Read(heapSample)
	v := heapSample[0].Value
	heapMu.Unlock()
	if v.Kind() != metrics.KindUint64 {
		return 0
	}
	return int64(v.Uint64())
}

// PeakRSSBytes returns the process's peak resident set size (VmHWM) in
// bytes, or 0 when the platform does not expose it (/proc is Linux-only).
// Unlike heap metrics it includes mmapped spill arenas, stacks and the
// runtime itself — it is the number an operator's job scheduler enforces.
func PeakRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// PeakSampler polls HeapBytes in the background and remembers the maximum —
// catching transient peaks (mid-coarsening, mid-contraction) that
// before/after sampling around a phase would miss. VmHWM already integrates
// RSS peaks kernel-side; this is its heap-level counterpart.
type PeakSampler struct {
	mu   sync.Mutex
	peak int64
	stop chan struct{}
	done chan struct{}
}

// StartPeakSampler begins sampling at the given interval (≤0 defaults to
// 10ms). Stop must be called to release the goroutine.
func StartPeakSampler(interval time.Duration) *PeakSampler {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	s := &PeakSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			s.sample()
			select {
			case <-s.stop:
				return
			case <-t.C:
			}
		}
	}()
	return s
}

func (s *PeakSampler) sample() {
	h := HeapBytes()
	s.mu.Lock()
	if h > s.peak {
		s.peak = h
	}
	s.mu.Unlock()
}

// Stop halts sampling, takes one final sample, and returns the peak heap
// bytes observed.
func (s *PeakSampler) Stop() int64 {
	close(s.stop)
	<-s.done
	s.sample()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak
}
