package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// TraceContext is the compact cross-node trace context carried on every
// cluster hop (forward, subtree fan-out, cache probe) in the
// X-Tempartd-Trace header, next to X-Request-Id. It names the trace, the
// parent span on the originating node, and whether the originator is
// actually recording — the sampling decision is made once, at the head of
// the request, and peers obey it.
type TraceContext struct {
	// ID identifies the whole distributed trace; tempartd uses the
	// originating exchange's request id.
	ID string
	// Span is the parent span's index in the originator's recorder, or -1
	// when the originator has no open span.
	Span int64
	// Sampled is the head-sampling bit: peers attach a recorder (and ship
	// their span snapshot back) only when it is set.
	Sampled bool
}

// Valid reports whether the context names a trace at all.
func (tc TraceContext) Valid() bool { return tc.ID != "" }

// Header renders the wire form: "v1;<id>;<span>;<0|1>". Semicolons in the id
// are replaced so the field count stays fixed.
func (tc TraceContext) Header() string {
	if !tc.Valid() {
		return ""
	}
	sampled := 0
	if tc.Sampled {
		sampled = 1
	}
	return fmt.Sprintf("v1;%s;%d;%d", strings.ReplaceAll(tc.ID, ";", "_"), tc.Span, sampled)
}

// ParseTraceContext decodes a Header() value; ok is false for an empty or
// malformed header (the request then simply has no trace context — never an
// error, tracing must not fail requests).
func ParseTraceContext(s string) (TraceContext, bool) {
	if s == "" {
		return TraceContext{}, false
	}
	parts := strings.Split(s, ";")
	if len(parts) != 4 || parts[0] != "v1" || parts[1] == "" {
		return TraceContext{}, false
	}
	span, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return TraceContext{}, false
	}
	return TraceContext{ID: parts[1], Span: span, Sampled: parts[3] == "1"}, true
}

// ClockOffset estimates the shift (in this recorder's clock) that places a
// peer's span snapshot onto the local timeline. Peer spans are nanosecond
// offsets from the peer recorder's own epoch; the coordinator knows only
// when it sent the RPC and when the reply arrived (local clock). NTP-style,
// the midpoint of the peer's recorded activity is aligned with the midpoint
// of the local [send, recv] window — symmetric network delay is cancelled,
// asymmetric delay bounded by the RTT. Zero when the snapshot is empty.
func ClockOffset(sendNs, recvNs int64, remote []SpanRecord) int64 {
	if len(remote) == 0 {
		return 0
	}
	minStart := remote[0].Start
	maxEnd := remote[0].End
	for i := range remote {
		sp := &remote[i]
		if sp.Start < minStart {
			minStart = sp.Start
		}
		end := sp.End
		if end < sp.Start {
			end = sp.Start // unfinished span: clamp, same as exporters
		}
		if end > maxEnd {
			maxEnd = end
		}
	}
	if maxEnd < minStart {
		maxEnd = minStart
	}
	return (sendNs+recvNs)/2 - (minStart+maxEnd)/2
}

// Graft adopts a peer's span snapshot into this recorder: every span is
// appended with its times shifted by offsetNs (see ClockOffset), its Node
// stamped with node (unless the peer already stamped a deeper origin), and
// its parent index remapped — remote roots become children of under, remote
// internal edges are preserved. Malformed parent indices (a truncated
// snapshot from a peer that died mid-request) degrade to roots, so the
// grafted tree is always valid. It returns the number of spans adopted.
// Safe on a nil recorder (no-op); under must belong to this recorder or be
// the zero Span (remote roots then stay roots).
func (r *Recorder) Graft(under Span, node string, remote []SpanRecord, offsetNs int64) int {
	if r == nil || len(remote) == 0 {
		return 0
	}
	parentIdx := int32(-1)
	if under.r == r {
		parentIdx = under.idx
	}
	r.mu.Lock()
	base := int32(len(r.spans))
	for i := range remote {
		sp := remote[i] // copy; Attrs stay shared (read-only by contract)
		sp.Start += offsetNs
		sp.End += offsetNs
		if sp.Node == "" {
			sp.Node = node
		}
		// A remote parent must point at an earlier span of the same
		// snapshot; anything else (root, or a reference past a truncation
		// point) hangs off the graft point.
		if sp.Parent >= 0 && int(sp.Parent) < i {
			sp.Parent += base
		} else {
			sp.Parent = parentIdx
		}
		r.spans = append(r.spans, sp)
	}
	r.mu.Unlock()
	return len(remote)
}
