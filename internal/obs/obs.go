// Package obs is the pipeline-wide instrumentation layer: hierarchical
// wall-clock spans with attached counters and attributes, recorded into an
// in-memory Recorder and drained into pluggable sinks — a Chrome-trace JSON
// exporter (spans open in Perfetto next to FLUSIM schedules), a JSON
// run-manifest writer, and a Prometheus aggregation bridge feeding
// tempartd's /metrics.
//
// The package is zero-dependency (standard library only) and designed so
// that *disabled* instrumentation is free: every method is safe on a nil
// *Recorder and on the zero Span, and the disabled path performs no
// allocation and takes no lock — pinned by TestDisabledRecorderZeroAllocs
// and BenchmarkSpanOverhead with testing.AllocsPerRun, so the allocation
// wins of the partitioning and evaluation hot paths survive being
// instrumented.
//
// Typical use:
//
//	rec := obs.NewRecorder()
//	ctx := obs.WithRecorder(ctx, rec)
//	span := rec.Start("partition")
//	child := span.Start("coarsen")
//	child.SetInt("vertices", int64(n))
//	child.End()
//	span.End()
//	rec.WriteChromeTrace(f) // open in Perfetto
//
// Library code fetches the recorder with obs.FromContext(ctx) (nil when the
// caller did not ask for instrumentation) and simply records; it never needs
// to know whether anyone is listening.
package obs

import (
	"sort"
	"sync"
	"time"
)

// AttrKind discriminates the value held by an Attr.
type AttrKind uint8

const (
	// AttrInt marks an integer attribute.
	AttrInt AttrKind = iota
	// AttrFloat marks a float attribute.
	AttrFloat
	// AttrStr marks a string attribute.
	AttrStr
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string   `json:"k"`
	Kind  AttrKind `json:"t"`
	Int   int64    `json:"i,omitempty"`
	Float float64  `json:"f,omitempty"`
	Str   string   `json:"s,omitempty"`
}

// SpanRecord is one recorded span. Times are nanoseconds since the
// recorder's creation (a monotonic epoch, so spans from concurrent
// goroutines order consistently).
type SpanRecord struct {
	// Name identifies the phase ("partition/coarsen", "eval/simulate", ...).
	// Phase aggregation (PhaseTotals, Agg) groups by this name.
	Name string `json:"name"`
	// Parent is the index of the parent span in the recorder's buffer, or
	// -1 for root spans.
	Parent int32 `json:"parent"`
	// Start and End are nanoseconds since the recorder epoch. An unfinished
	// span has End < Start; exporters clamp it to Start.
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// HeapStart and HeapEnd are live-heap bytes at the span boundaries,
	// recorded only when the recorder has TrackMemory enabled (both zero
	// otherwise). Their difference is the span's net heap growth — negative
	// when a GC ran inside the span.
	HeapStart int64 `json:"heap_start,omitempty"`
	HeapEnd   int64 `json:"heap_end,omitempty"`
	// Node names the fleet member that recorded the span. Locally recorded
	// spans leave it empty; Graft stamps it on spans adopted from a peer's
	// snapshot, which is what lets one stitched trace carry per-node process
	// lanes.
	Node string `json:"node,omitempty"`
	// Attrs are the span's annotations, in the order they were set.
	Attrs []Attr `json:"attrs,omitempty"`
}

// Duration returns the span's length, zero for unfinished spans.
func (s *SpanRecord) Duration() time.Duration {
	if s.End < s.Start {
		return 0
	}
	return time.Duration(s.End - s.Start)
}

// Recorder collects spans and counters. All methods are safe for concurrent
// use and safe on a nil receiver (a nil *Recorder is the canonical disabled
// recorder: every operation is a zero-allocation no-op).
type Recorder struct {
	t0       time.Time
	trackMem bool

	mu       sync.Mutex
	spans    []SpanRecord
	counters map[string]int64
}

// NewRecorder returns an enabled recorder whose time epoch is "now".
func NewRecorder() *Recorder {
	return &Recorder{t0: time.Now(), counters: map[string]int64{}}
}

// TrackMemory turns on per-span heap sampling: every subsequent span records
// live-heap bytes at its start and end (SpanRecord.HeapStart/HeapEnd), and
// PhaseTotals reports per-phase net heap deltas. Reading the runtime metric
// costs a few hundred nanoseconds per boundary, so it is opt-in — partbench
// -mem enables it; partition results are unaffected either way. Call before
// recording; it must not race with concurrent spans.
func (r *Recorder) TrackMemory() {
	if r != nil {
		r.trackMem = true
	}
}

// Enabled reports whether the recorder actually records (false for nil).
// Callers guard *extra work* — computing an edge cut just to attach it —
// behind Enabled(); plain Start/End/Set calls need no guard.
func (r *Recorder) Enabled() bool { return r != nil }

// now is the recorder's clock: nanoseconds since its creation.
func (r *Recorder) now() int64 { return int64(time.Since(r.t0)) }

// NowNs reads the recorder's clock (nanoseconds since its epoch); 0 on a nil
// recorder. Cross-node stitching timestamps RPC send/receive with it so
// grafted peer spans can be shifted onto this recorder's timeline.
func (r *Recorder) NowNs() int64 {
	if r == nil {
		return 0
	}
	return r.now()
}

// Span is a lightweight handle to an open (or finished) span. The zero Span
// is valid and inert: all methods are no-ops, so code instruments
// unconditionally and disabled recording costs only a nil check.
type Span struct {
	r   *Recorder
	idx int32
}

// Active reports whether the span records anything.
func (s Span) Active() bool { return s.r != nil }

// Start opens a root span. On a nil recorder it returns the inert zero Span.
func (r *Recorder) Start(name string) Span {
	if r == nil {
		return Span{}
	}
	return r.startSpan(name, -1)
}

// Start opens a child span of s. On the zero Span it returns the zero Span.
func (s Span) Start(name string) Span {
	if s.r == nil {
		return Span{}
	}
	return s.r.startSpan(name, s.idx)
}

func (r *Recorder) startSpan(name string, parent int32) Span {
	t := r.now()
	var heap int64
	if r.trackMem {
		heap = HeapBytes()
	}
	r.mu.Lock()
	idx := int32(len(r.spans))
	r.spans = append(r.spans, SpanRecord{Name: name, Parent: parent, Start: t, End: t - 1, HeapStart: heap})
	r.mu.Unlock()
	return Span{r: r, idx: idx}
}

// End closes the span. Ending a span twice keeps the later timestamp.
func (s Span) End() {
	if s.r == nil {
		return
	}
	t := s.r.now()
	var heap int64
	if s.r.trackMem {
		heap = HeapBytes()
	}
	s.r.mu.Lock()
	s.r.spans[s.idx].End = t
	s.r.spans[s.idx].HeapEnd = heap
	s.r.mu.Unlock()
}

// SetInt attaches an integer attribute.
func (s Span) SetInt(key string, v int64) {
	if s.r == nil {
		return
	}
	s.set(Attr{Key: key, Kind: AttrInt, Int: v})
}

// SetFloat attaches a float attribute.
func (s Span) SetFloat(key string, v float64) {
	if s.r == nil {
		return
	}
	s.set(Attr{Key: key, Kind: AttrFloat, Float: v})
}

// SetStr attaches a string attribute.
func (s Span) SetStr(key, v string) {
	if s.r == nil {
		return
	}
	s.set(Attr{Key: key, Kind: AttrStr, Str: v})
}

func (s Span) set(a Attr) {
	s.r.mu.Lock()
	sp := &s.r.spans[s.idx]
	sp.Attrs = append(sp.Attrs, a)
	s.r.mu.Unlock()
}

// Count adds delta to the named counter ("eval.graph_cache_hit", ...).
func (r *Recorder) Count(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Snapshot returns a copy of the recorded spans in start order of creation.
// Attr slices are shared with the recorder and must be treated as read-only.
func (r *Recorder) Snapshot() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, len(r.spans))
	copy(out, r.spans)
	return out
}

// Counters returns a copy of the counter map.
func (r *Recorder) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// PhaseStat aggregates every span of one name.
type PhaseStat struct {
	// Count is how many spans carried the name.
	Count int64 `json:"count"`
	// Seconds is their summed wall-clock duration. Spans from concurrent
	// goroutines sum cumulatively (CPU-seconds-like), so parallel sections
	// can sum past the enclosing span's wall time.
	Seconds float64 `json:"seconds"`
	// HeapDelta is the summed net heap growth (HeapEnd-HeapStart) of the
	// phase's finished spans; zero unless the recorder tracks memory. A GC
	// inside a span can make it negative.
	HeapDelta int64 `json:"heap_delta_bytes,omitempty"`
}

// PhaseTotals sums span durations by name. Unfinished spans count with zero
// duration.
func (r *Recorder) PhaseTotals() map[string]PhaseStat {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]PhaseStat, 16)
	for i := range r.spans {
		sp := &r.spans[i]
		st := out[sp.Name]
		st.Count++
		st.Seconds += sp.Duration().Seconds()
		if sp.End >= sp.Start { // finished spans only; HeapEnd is unset otherwise
			st.HeapDelta += sp.HeapEnd - sp.HeapStart
		}
		out[sp.Name] = st
	}
	return out
}

// PhaseSummary is one row of a sorted phase breakdown (manifest form).
type PhaseSummary struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
}

// PhaseSummaries returns PhaseTotals as a name-sorted slice, convenient for
// manifests and deterministic rendering.
func (r *Recorder) PhaseSummaries() []PhaseSummary {
	totals := r.PhaseTotals()
	if totals == nil {
		return nil
	}
	out := make([]PhaseSummary, 0, len(totals))
	for name, st := range totals {
		out = append(out, PhaseSummary{Name: name, Count: st.Count, Seconds: st.Seconds})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
