package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// BuildInfo is the build identity block shared by run manifests, the daemon's
// GET /buildinfo endpoint, and every cmd's -version flag. Fields come from
// debug.ReadBuildInfo, so binaries built from a VCS checkout carry the exact
// revision that produced a result.
type BuildInfo struct {
	// Module is the main module path ("tempart").
	Module string `json:"module"`
	// Version is the module version ("(devel)" for source builds).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision and RevisionTime identify the VCS commit, when stamped.
	Revision     string `json:"revision,omitempty"`
	RevisionTime string `json:"revision_time,omitempty"`
	// Dirty reports uncommitted modifications at build time.
	Dirty bool `json:"dirty,omitempty"`
	// OS and Arch are the build target.
	OS   string `json:"os"`
	Arch string `json:"arch"`
}

// ReadBuildInfo collects the binary's build identity. It never fails: when
// build info is unavailable (e.g. not built with module support) only the
// toolchain and target fields are populated.
func ReadBuildInfo() BuildInfo {
	out := BuildInfo{
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.Module = bi.Main.Path
	out.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out.Revision = s.Value
		case "vcs.time":
			out.RevisionTime = s.Value
		case "vcs.modified":
			out.Dirty = s.Value == "true"
		}
	}
	return out
}

// VersionLine renders the one-line output of a cmd's -version flag:
//
//	tempartd tempart (devel) rev 1a2b3c4d go1.22.1 linux/amd64
func VersionLine(cmd string) string {
	bi := ReadBuildInfo()
	line := cmd
	if bi.Module != "" {
		line += " " + bi.Module
	}
	if bi.Version != "" {
		line += " " + bi.Version
	}
	if bi.Revision != "" {
		rev := bi.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if bi.Dirty {
			rev += "+dirty"
		}
		line += " rev " + rev
	}
	return fmt.Sprintf("%s %s %s/%s", line, bi.GoVersion, bi.OS, bi.Arch)
}
