package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Agg is the Prometheus bridge: a process-lifetime aggregate of every drained
// per-request Recorder, rendered into an existing text-exposition endpoint
// (tempartd's /metrics). Draining folds a recorder's per-phase span counts
// and seconds plus its counters into cumulative totals, so scrapes see
// monotone counters regardless of how many requests were traced.
type Agg struct {
	prefix string

	mu       sync.Mutex
	phases   map[string]PhaseStat
	counters map[string]int64
}

// NewAgg returns an aggregator whose rendered metric names start with prefix
// (e.g. "tempartd_pipeline"). A nil *Agg is a valid disabled aggregator.
func NewAgg(prefix string) *Agg {
	return &Agg{prefix: prefix, phases: map[string]PhaseStat{}, counters: map[string]int64{}}
}

// Drain folds a recorder's spans and counters into the aggregate. Safe with a
// nil aggregator or nil recorder.
func (a *Agg) Drain(r *Recorder) {
	if a == nil || r == nil {
		return
	}
	totals := r.PhaseTotals()
	counters := r.Counters()
	a.mu.Lock()
	for name, st := range totals {
		cur := a.phases[name]
		cur.Count += st.Count
		cur.Seconds += st.Seconds
		a.phases[name] = cur
	}
	for name, v := range counters {
		a.counters[name] += v
	}
	a.mu.Unlock()
}

// RenderProm writes the aggregate in Prometheus text exposition format:
//
//	<prefix>_phase_seconds_total{phase="partition/coarsen"} 0.125
//	<prefix>_phase_spans_total{phase="partition/coarsen"} 12
//	<prefix>_events_total{event="eval.graph_cache_hit"} 3
//
// Label sets render sorted so the output is deterministic. A nil aggregator
// writes nothing.
func (a *Agg) RenderProm(w io.Writer) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	if len(a.phases) > 0 {
		secs := a.prefix + "_phase_seconds_total"
		spans := a.prefix + "_phase_spans_total"
		fmt.Fprintf(w, "# HELP %s Cumulative wall-clock seconds per pipeline phase across traced requests.\n# TYPE %s counter\n", secs, secs)
		names := sortedKeys(a.phases)
		for _, name := range names {
			fmt.Fprintf(w, "%s{phase=%q} %g\n", secs, name, a.phases[name].Seconds)
		}
		fmt.Fprintf(w, "# HELP %s Spans recorded per pipeline phase across traced requests.\n# TYPE %s counter\n", spans, spans)
		for _, name := range names {
			fmt.Fprintf(w, "%s{phase=%q} %d\n", spans, name, a.phases[name].Count)
		}
	}
	if len(a.counters) > 0 {
		events := a.prefix + "_events_total"
		fmt.Fprintf(w, "# HELP %s Pipeline counter events across traced requests.\n# TYPE %s counter\n", events, events)
		for _, name := range sortedKeys(a.counters) {
			fmt.Fprintf(w, "%s{event=%q} %d\n", events, name, a.counters[name])
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
