package obs

import (
	"fmt"
	"io"
	"runtime/metrics"
)

// runtimeBuckets are the fixed upper bounds (seconds) the runtime's
// variable-bucket latency histograms are downsampled to: GC pauses and
// scheduler latencies both live between microseconds and (pathologically)
// seconds. Fixed bounds keep the exposition stable across Go versions —
// runtime/metrics makes no promise about its own bucket layout.
var runtimeBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// runtimeSamples is the sample set RenderRuntimeMetrics reads in one
// metrics.Read call. Names missing from the running runtime are reported
// with KindBad and skipped, so the set degrades gracefully across versions.
var runtimeSampleNames = []string{
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/sched/goroutines:goroutines",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// RenderRuntimeMetrics writes the tempartd_runtime_* families in Prometheus
// text exposition format: live heap and total runtime-mapped memory,
// goroutine count, GC cycle counter, and the GC-pause and scheduler-latency
// distributions downsampled onto fixed cumulative buckets. One
// runtime/metrics read per scrape — no stop-the-world, a few microseconds.
//
// The runtime reports its histograms without a sum, so the _sum series is
// reconstructed from bucket midpoints — exact enough for rate() and
// histogram_quantile(), and documented as approximate in HELP.
func RenderRuntimeMetrics(w io.Writer) {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	metrics.Read(samples)

	byName := func(name string) *metrics.Sample {
		for i := range samples {
			if samples[i].Name == name {
				return &samples[i]
			}
		}
		return nil
	}
	gauge := func(metric, help, sample string) {
		s := byName(sample)
		if s == nil || s.Value.Kind() != metrics.KindUint64 {
			return
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", metric, help, metric, metric, s.Value.Uint64())
	}
	gauge("tempartd_runtime_heap_bytes", "Bytes occupied by live heap objects (runtime /memory/classes/heap/objects).", "/memory/classes/heap/objects:bytes")
	gauge("tempartd_runtime_memory_total_bytes", "All memory mapped by the Go runtime (heap, stacks, runtime structures).", "/memory/classes/total:bytes")
	gauge("tempartd_runtime_goroutines", "Live goroutines.", "/sched/goroutines:goroutines")

	if s := byName("/gc/cycles/total:gc-cycles"); s != nil && s.Value.Kind() == metrics.KindUint64 {
		fmt.Fprintf(w, "# HELP tempartd_runtime_gc_cycles_total Completed GC cycles since process start.\n# TYPE tempartd_runtime_gc_cycles_total counter\ntempartd_runtime_gc_cycles_total %d\n", s.Value.Uint64())
	}

	renderRuntimeHist(w, "tempartd_runtime_gc_pause_seconds",
		"Distribution of GC stop-the-world pause latencies (sum approximated from bucket midpoints).",
		byName("/gc/pauses:seconds"))
	renderRuntimeHist(w, "tempartd_runtime_sched_latency_seconds",
		"Distribution of time goroutines spent runnable before running (sum approximated from bucket midpoints).",
		byName("/sched/latencies:seconds"))
}

// renderRuntimeHist downsamples one runtime Float64Histogram onto the fixed
// runtimeBuckets and writes it as a Prometheus cumulative histogram. A
// runtime bucket [lo, hi) counts toward the first fixed bound ≥ hi; buckets
// past the last bound land in +Inf.
func renderRuntimeHist(w io.Writer, metric, help string, s *metrics.Sample) {
	if s == nil || s.Value.Kind() != metrics.KindFloat64Histogram {
		return
	}
	h := s.Value.Float64Histogram()
	if h == nil {
		return
	}
	counts := make([]uint64, len(runtimeBuckets))
	var inf, total uint64
	var sum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		// Midpoint for the sum approximation; unbounded edges collapse to
		// the finite one.
		mid := (lo + hi) / 2
		switch {
		case lo < 0 || lo != lo: // -Inf or NaN edge
			mid = hi
		case hi != hi || hi > 1e300: // +Inf edge
			mid = lo
		}
		total += c
		sum += mid * float64(c)
		placed := false
		for b, ub := range runtimeBuckets {
			if hi <= ub {
				counts[b] += c
				placed = true
				break
			}
		}
		if !placed {
			inf += c
		}
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", metric, help, metric)
	var cum uint64
	for b, ub := range runtimeBuckets {
		cum += counts[b]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", metric, fmt.Sprintf("%g", ub), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", metric, cum+inf)
	fmt.Fprintf(w, "%s_sum %g\n", metric, sum)
	fmt.Fprintf(w, "%s_count %d\n", metric, total)
}
