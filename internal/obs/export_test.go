package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"tempart/internal/trace"
)

func TestAssignLanesNestingAndOverlap(t *testing.T) {
	// root [0,100] encloses a [10,40] and b [50,90]: they nest in lane 0.
	// c [20,60] overlaps a without nesting, so it must leave the lane.
	spans := []SpanRecord{
		{Name: "root", Parent: -1, Start: 0, End: 100},
		{Name: "a", Parent: 0, Start: 10, End: 40},
		{Name: "b", Parent: 0, Start: 50, End: 90},
		{Name: "c", Parent: 0, Start: 20, End: 60},
	}
	lanes := assignLanes(spans)
	if lanes[0] != 0 || lanes[1] != 0 {
		t.Errorf("lanes = %v: root and a should share lane 0", lanes)
	}
	if lanes[3] == lanes[1] {
		t.Errorf("lanes = %v: c overlaps a non-nested but shares its lane", lanes)
	}
	// Laminar check: within each lane, any two spans nest or are disjoint.
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if lanes[i] != lanes[j] {
				continue
			}
			a, b := spans[i], spans[j]
			overlap := a.Start < b.End && b.Start < a.End
			nested := (a.Start <= b.Start && b.End <= a.End) || (b.Start <= a.Start && a.End <= b.End)
			if overlap && !nested {
				t.Errorf("lane %d holds non-nested overlap: %v and %v", lanes[i], a, b)
			}
		}
	}
}

func TestAssignLanesEmpty(t *testing.T) {
	if lanes := assignLanes(nil); len(lanes) != 0 {
		t.Errorf("assignLanes(nil) = %v", lanes)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	rec := NewRecorder()
	root := rec.Start("partition")
	child := root.Start("coarsen")
	child.SetInt("vertices", 512)
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []trace.ChromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	for _, e := range events {
		if e.Ph != "X" || e.Cat != "pipeline" {
			t.Errorf("event %+v: want ph=X cat=pipeline", e)
		}
		if e.Dur < 1 {
			t.Errorf("event %q dur = %d, want >= 1", e.Name, e.Dur)
		}
	}
	if events[1].Name != "coarsen" || events[1].Args["vertices"] != "512" {
		t.Errorf("child event = %+v", events[1])
	}
}

// TestWriteSpansChromeMultiNode checks the stitched-trace export: spans from
// distinct Node stamps land in distinct trace processes, each named by a
// process_name metadata event, with the local (node-less) spans in PID 0.
func TestWriteSpansChromeMultiNode(t *testing.T) {
	spans := []SpanRecord{
		{Name: "server/partition", Parent: -1, Start: 0, End: 100_000},
		{Name: "cluster/fanout/rpc", Parent: 0, Start: 10_000, End: 60_000},
		{Name: "server/subtree", Parent: 1, Start: 15_000, End: 55_000, Node: "n2"},
		{Name: "server/subtree", Parent: 0, Start: 20_000, End: 70_000, Node: "n3"},
	}
	var buf bytes.Buffer
	if err := WriteSpansChrome(&buf, spans, "n1"); err != nil {
		t.Fatal(err)
	}
	var events []trace.ChromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("multi-node trace invalid JSON: %v\n%s", err, buf.String())
	}
	procName := map[int32]string{}
	pids := map[int32]bool{}
	for _, e := range events {
		if e.Ph == "M" && e.Name == "process_name" {
			procName[e.PID] = e.Args["name"]
			continue
		}
		pids[e.PID] = true
	}
	if procName[0] != "n1" {
		t.Errorf("PID 0 named %q, want n1 (local)", procName[0])
	}
	names := map[string]bool{}
	for _, n := range procName {
		names[n] = true
	}
	if !names["n2"] || !names["n3"] {
		t.Errorf("process_name metadata = %v, want n1, n2, n3", procName)
	}
	if len(pids) != 3 {
		t.Errorf("span events span %d PIDs, want 3 (one per node)", len(pids))
	}
	// Every span event's PID must have a process_name.
	for pid := range pids {
		if procName[pid] == "" {
			t.Errorf("PID %d has span events but no process_name", pid)
		}
	}
}

// TestWriteSpansChromeSingleNodeBackCompat pins the no-node format: when no
// span carries a Node stamp, no metadata events are emitted and the output is
// exactly the pre-stitching single-process trace.
func TestWriteSpansChromeSingleNodeBackCompat(t *testing.T) {
	spans := []SpanRecord{
		{Name: "a", Parent: -1, Start: 0, End: 2000},
		{Name: "b", Parent: 0, Start: 100, End: 1000},
	}
	var buf bytes.Buffer
	if err := WriteSpansChrome(&buf, spans, "ignored"); err != nil {
		t.Fatal(err)
	}
	var events []trace.ChromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (no metadata for single-node traces)", len(events))
	}
	for _, e := range events {
		if e.Ph != "X" || e.PID != 0 {
			t.Errorf("event %+v: want ph=X pid=0", e)
		}
	}
}

func TestWriteChromeTraceNilRecorder(t *testing.T) {
	var rec *Recorder
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []trace.ChromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("nil-recorder trace invalid: %v", err)
	}
	if len(events) != 0 {
		t.Errorf("nil recorder produced %d events", len(events))
	}
}
