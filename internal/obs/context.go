package obs

import "context"

type recorderKey struct{}
type spanKey struct{}

// WithRecorder attaches a recorder to the context. Instrumented library code
// retrieves it with FromContext; a nil recorder is allowed and keeps the
// context unchanged (so callers can thread an optional recorder without
// branching).
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey{}, r)
}

// FromContext returns the context's recorder, or nil (the disabled
// recorder). The lookup allocates nothing.
func FromContext(ctx context.Context) *Recorder {
	r, _ := ctx.Value(recorderKey{}).(*Recorder)
	return r
}

// ContextWithSpan attaches a parent span to the context so instrumented
// callees nest under it. Attaching the zero Span keeps the context
// unchanged. Only call on paths where recording is enabled — wrapping a
// context allocates.
func ContextWithSpan(ctx context.Context, s Span) context.Context {
	if s.r == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the context's parent span, or the zero Span. The
// lookup allocates nothing.
func SpanFromContext(ctx context.Context) Span {
	s, _ := ctx.Value(spanKey{}).(Span)
	return s
}

// StartSpan opens a span as a child of the context's span when one is
// attached, else as a root span of the context's recorder. It returns the
// zero Span (free to use, records nothing) when the context carries neither.
func StartSpan(ctx context.Context, name string) Span {
	if parent := SpanFromContext(ctx); parent.r != nil {
		return parent.Start(name)
	}
	return FromContext(ctx).Start(name)
}
