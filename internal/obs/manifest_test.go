package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	rec := NewRecorder()
	s := rec.Start("partition")
	s.End()
	rec.Count("trials", 4)

	m := NewManifest("partbench")
	m.Inputs["mesh"] = "unit_cube"
	m.Inputs["seed"] = 42
	m.Metrics["edge_cut"] = 123
	m.Finish(rec)

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if back.Tool != "partbench" {
		t.Errorf("tool = %q", back.Tool)
	}
	if back.Build.GoVersion == "" {
		t.Error("manifest missing build info")
	}
	if len(back.Phases) != 1 || back.Phases[0].Name != "partition" {
		t.Errorf("phases = %+v", back.Phases)
	}
	if back.Counters["trials"] != 4 {
		t.Errorf("counters = %v", back.Counters)
	}
	if back.Metrics["edge_cut"] != 123 {
		t.Errorf("metrics = %v", back.Metrics)
	}
	if back.Finished.Before(back.Started) {
		t.Error("finished before started")
	}
	if names := m.SortedCounterNames(); len(names) != 1 || names[0] != "trials" {
		t.Errorf("sorted counter names = %v", names)
	}
}

func TestAggDrainAndRender(t *testing.T) {
	agg := NewAgg("tempartd_pipeline")
	for i := 0; i < 2; i++ {
		rec := NewRecorder()
		s := rec.Start(`phase"quoted`)
		s.End()
		rec.Count("eval.graph_cache_hit", 3)
		agg.Drain(rec)
	}
	agg.Drain(nil) // no-op

	var buf bytes.Buffer
	agg.RenderProm(&buf)
	out := buf.String()

	for _, want := range []string{
		"# TYPE tempartd_pipeline_phase_seconds_total counter",
		"tempartd_pipeline_phase_spans_total{phase=\"phase\\\"quoted\"} 2",
		"tempartd_pipeline_events_total{event=\"eval.graph_cache_hit\"} 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestAggNilSafe(t *testing.T) {
	var agg *Agg
	agg.Drain(NewRecorder())
	var buf bytes.Buffer
	agg.RenderProm(&buf)
	if buf.Len() != 0 {
		t.Errorf("nil agg rendered %q", buf.String())
	}
}
