package obs

import (
	"context"
	"testing"
)

// BenchmarkSpanOverhead measures the cost of instrumentation calls. The
// "disabled" case is the contract the whole pipeline relies on — it must stay
// 0 allocs/op (CI bench-smoke runs it; TestDisabledRecorderZeroAllocs pins
// the assertion) so instrumenting the allocation-lean hot paths of
// partition/taskgraph/flusim is free when no one is tracing.
func BenchmarkSpanOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := FromContext(ctx)
			sp := r.Start("phase")
			child := sp.Start("sub")
			child.SetInt("n", int64(i))
			child.End()
			sp.End()
			r.Count("events", 1)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		rec := NewRecorder()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := rec.Start("phase")
			child := sp.Start("sub")
			child.SetInt("n", int64(i))
			child.End()
			sp.End()
			rec.Count("events", 1)
		}
	})
}

// BenchmarkSpanOverheadSampled measures the sampled flight-recorder path:
// a per-request recorder records a small span tree, is snapshotted and filed
// into the ring. This is what a head-sampled request pays on top of the
// (0-alloc) disabled path; CI bench-smoke tracks it next to the disabled and
// enabled numbers.
func BenchmarkSpanOverheadSampled(b *testing.B) {
	fr := NewFlightRecorder(64, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !fr.SampleHead() {
			continue
		}
		rec := NewRecorder()
		sp := rec.Start("phase")
		child := sp.Start("sub")
		child.SetInt("n", int64(i))
		child.End()
		sp.End()
		rec.Count("events", 1)
		fr.Record(FlightEntry{
			RequestID: "bench",
			Kind:      "partition",
			Spans:     rec.Snapshot(),
			Counters:  rec.Counters(),
		})
	}
}
