package obs

import (
	"strings"
	"testing"
)

func TestTraceContextHeaderRoundTrip(t *testing.T) {
	cases := []TraceContext{
		{ID: "n1-req-0000002a", Span: 3, Sampled: true},
		{ID: "req-00000001", Span: -1, Sampled: false},
		{ID: "x", Span: 0, Sampled: true},
	}
	for _, tc := range cases {
		got, ok := ParseTraceContext(tc.Header())
		if !ok {
			t.Fatalf("ParseTraceContext(%q) not ok", tc.Header())
		}
		if got != tc {
			t.Errorf("round trip %+v -> %q -> %+v", tc, tc.Header(), got)
		}
	}
}

func TestTraceContextHeaderSanitizesSemicolons(t *testing.T) {
	tc := TraceContext{ID: "evil;id", Span: 1, Sampled: true}
	h := tc.Header()
	if strings.Count(h, ";") != 3 {
		t.Fatalf("Header() = %q, want exactly 3 field separators", h)
	}
	got, ok := ParseTraceContext(h)
	if !ok || got.Span != 1 || !got.Sampled {
		t.Fatalf("sanitized header %q did not parse: %+v ok=%v", h, got, ok)
	}
}

func TestParseTraceContextMalformed(t *testing.T) {
	for _, s := range []string{
		"",                // absent header
		"v1;id;3",         // too few fields
		"v1;id;3;1;extra", // too many fields
		"v2;id;3;1",       // unknown version
		"v1;;3;1",         // empty trace id
		"v1;id;notnum;1",  // non-numeric span
		"garbage",         // no structure at all
		";;;",             // empty fields
	} {
		if got, ok := ParseTraceContext(s); ok {
			t.Errorf("ParseTraceContext(%q) ok, got %+v; want rejection", s, got)
		}
	}
}

func TestTraceContextZeroValueInvalid(t *testing.T) {
	var tc TraceContext
	if tc.Valid() {
		t.Fatal("zero TraceContext reports Valid")
	}
	if tc.Header() != "" {
		t.Fatalf("zero TraceContext Header() = %q, want empty", tc.Header())
	}
}

func TestClockOffset(t *testing.T) {
	// Peer activity spans [1000, 3000] on its own clock; the local send/recv
	// window is [100000, 104000]. The midpoints (2000 remote, 102000 local)
	// must align.
	remote := []SpanRecord{
		{Name: "a", Parent: -1, Start: 1000, End: 3000},
		{Name: "b", Parent: 0, Start: 1500, End: 2500},
	}
	if got := ClockOffset(100000, 104000, remote); got != 100000 {
		t.Fatalf("ClockOffset = %d, want 100000", got)
	}
	if got := ClockOffset(100, 200, nil); got != 0 {
		t.Fatalf("ClockOffset(empty) = %d, want 0", got)
	}
	// Unfinished span (End < Start) clamps to Start rather than skewing the
	// midpoint backwards.
	unfinished := []SpanRecord{{Name: "u", Parent: -1, Start: 5000, End: 4999}}
	if got := ClockOffset(0, 0, unfinished); got != -5000 {
		t.Fatalf("ClockOffset(unfinished) = %d, want -5000", got)
	}
}

func TestGraftRemapsParentsAndStampsNodes(t *testing.T) {
	rec := NewRecorder()
	root := rec.Start("local-root")
	remote := []SpanRecord{
		{Name: "peer-root", Parent: -1, Start: 10, End: 90},
		{Name: "peer-child", Parent: 0, Start: 20, End: 40},
		{Name: "peer-grandchild", Parent: 1, Start: 25, End: 35},
		{Name: "already-stamped", Parent: 0, Start: 50, End: 60, Node: "n9"},
	}
	n := rec.Graft(root, "n2", remote, 1000)
	root.End()
	if n != 4 {
		t.Fatalf("Graft adopted %d spans, want 4", n)
	}
	spans := rec.Snapshot()
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	// Index 0 is local-root; grafted spans follow at base=1.
	peerRoot, child, grand, stamped := spans[1], spans[2], spans[3], spans[4]
	if peerRoot.Parent != 0 {
		t.Errorf("peer root Parent = %d, want 0 (graft point)", peerRoot.Parent)
	}
	if child.Parent != 1 || grand.Parent != 2 {
		t.Errorf("internal edges: child.Parent=%d grand.Parent=%d, want 1,2", child.Parent, grand.Parent)
	}
	if stamped.Parent != 1 {
		t.Errorf("stamped.Parent = %d, want 1", stamped.Parent)
	}
	if peerRoot.Start != 1010 || peerRoot.End != 1090 {
		t.Errorf("times not shifted: [%d,%d], want [1010,1090]", peerRoot.Start, peerRoot.End)
	}
	for _, sp := range []SpanRecord{peerRoot, child, grand} {
		if sp.Node != "n2" {
			t.Errorf("span %q Node = %q, want n2", sp.Name, sp.Node)
		}
	}
	if stamped.Node != "n9" {
		t.Errorf("pre-stamped span overwritten: Node = %q, want n9", stamped.Node)
	}
}

// TestGraftTruncatedSnapshot is the peer-dies-mid-subtree case: the snapshot
// references parents past the truncation point (or forward), and the grafted
// tree must still be valid — every Parent index in range and pointing at an
// earlier span.
func TestGraftTruncatedSnapshot(t *testing.T) {
	rec := NewRecorder()
	root := rec.Start("local-root")
	truncated := []SpanRecord{
		{Name: "kept", Parent: -1, Start: 0, End: 10},
		{Name: "orphan", Parent: 7, Start: 1, End: 9},  // parent beyond snapshot
		{Name: "forward", Parent: 2, Start: 2, End: 8}, // self/forward reference
	}
	rec.Graft(root, "n3", truncated, 0)
	root.End()
	spans := rec.Snapshot()
	for i, sp := range spans {
		if sp.Parent >= int32(i) {
			t.Errorf("span %d %q Parent=%d not earlier than itself", i, sp.Name, sp.Parent)
		}
		if sp.Parent >= 0 && int(sp.Parent) >= len(spans) {
			t.Errorf("span %d %q Parent=%d out of range", i, sp.Name, sp.Parent)
		}
	}
	// Orphans degrade to children of the graft point, not dropped spans.
	if spans[2].Parent != 0 || spans[3].Parent != 0 {
		t.Errorf("orphans should hang off graft point: parents %d, %d", spans[2].Parent, spans[3].Parent)
	}
}

func TestGraftNilAndZeroSpan(t *testing.T) {
	var nilRec *Recorder
	if n := nilRec.Graft(Span{}, "n1", []SpanRecord{{Name: "x", Parent: -1}}, 0); n != 0 {
		t.Fatalf("nil recorder Graft = %d, want 0", n)
	}
	// Zero graft point: remote roots stay roots.
	rec := NewRecorder()
	rec.Graft(Span{}, "n1", []SpanRecord{{Name: "r", Parent: -1, Start: 1, End: 2}}, 0)
	spans := rec.Snapshot()
	if len(spans) != 1 || spans[0].Parent != -1 {
		t.Fatalf("graft under zero Span: got %+v, want one root", spans)
	}
}
