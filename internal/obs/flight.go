package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// FlightEntry is one completed request's span tree as retained by the
// flight recorder: enough to re-emit the request's Chrome trace after the
// fact, plus the summary fields /v1/traces/recent lists.
type FlightEntry struct {
	// RequestID is the X-Request-Id of the exchange that ran the job.
	RequestID string `json:"request_id"`
	// TraceID names the distributed trace the request belonged to (equal to
	// RequestID for requests that originated locally).
	TraceID string `json:"trace_id,omitempty"`
	// Kind labels the job ("partition", "repartition", "subtree").
	Kind string `json:"kind,omitempty"`
	// Start is the job's wall-clock creation time.
	Start time.Time `json:"start"`
	// Duration is the job's total latency.
	Duration time.Duration `json:"duration_ns"`
	// Spans is the request's full span snapshot (stitched, for a
	// coordinator: peer subtree spans are already grafted and node-stamped).
	Spans []SpanRecord `json:"spans,omitempty"`
	// Counters is the request recorder's counter rollup.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// FlightRecorder is the always-on trace ring: a fixed-size buffer of
// recently completed request span trees, fed by head-sampled requests (plus
// every explicitly traced one), so an operator can pull the trace of a slow
// request *after* it happened without having set ?debug=trace in advance.
//
// Two retention rules compose:
//
//   - the ring proper evicts strictly oldest-first — entry N+size overwrites
//     entry N regardless of how interesting either was;
//   - the slowest entry ever recorded is additionally pinned outside the
//     ring ("always keep slowest"), because the request an operator comes
//     looking for is usually exactly the one a small ring already evicted.
//
// Head sampling is deterministic — a stride over the admission counter, no
// RNG — so the sampled request stream is reproducible and the partitioner's
// seeded RNG streams are never touched. All methods are safe for concurrent
// use and safe on a nil receiver (the disabled flight recorder).
type FlightRecorder struct {
	rate float64
	seq  atomic.Uint64 // head-sampling stride counter

	mu      sync.Mutex
	ring    []FlightEntry
	next    int // ring index the next Record overwrites
	total   int // entries ever recorded (caps at len(ring) for occupancy)
	slowest FlightEntry
	pinned  bool
}

// NewFlightRecorder sizes the ring (≤0 takes 64) and sets the head-sampling
// rate, clamped to [0, 1]. Rate 0 disables head sampling — only explicitly
// traced requests reach the ring.
func NewFlightRecorder(size int, rate float64) *FlightRecorder {
	if size <= 0 {
		size = 64
	}
	if math.IsNaN(rate) || rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &FlightRecorder{rate: rate, ring: make([]FlightEntry, 0, size)}
}

// SampleHead makes the head-sampling decision for one incoming request:
// true when the request should run with a recorder attached. The stride
// floor(n·rate) ≠ floor((n-1)·rate) admits exactly rate·N of every N
// consecutive requests, deterministically. Rate 0 costs one branch and
// nothing else, preserving the disabled path's zero-overhead contract.
func (f *FlightRecorder) SampleHead() bool {
	if f == nil || f.rate <= 0 {
		return false
	}
	if f.rate >= 1 {
		return true
	}
	n := f.seq.Add(1)
	return math.Floor(float64(n)*f.rate) != math.Floor(float64(n-1)*f.rate)
}

// Record retains one completed request. Oldest-first eviction; the slowest
// entry seen so far is pinned separately and survives any number of ring
// wraps.
func (f *FlightRecorder) Record(e FlightEntry) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, e)
	} else {
		f.ring[f.next] = e
		f.next = (f.next + 1) % len(f.ring)
	}
	f.total++
	if !f.pinned || e.Duration >= f.slowest.Duration {
		f.slowest = e
		f.pinned = true
	}
	f.mu.Unlock()
}

// Recent returns the retained entries newest-first, the pinned slowest entry
// appended last when the ring no longer holds it. Entries are copies of the
// ring slots; Spans/Counters are shared and must be treated read-only.
func (f *FlightRecorder) Recent() []FlightEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.ring)
	out := make([]FlightEntry, 0, n+1)
	for i := 1; i <= n; i++ {
		out = append(out, f.ring[(f.next+n-i)%n])
	}
	if f.pinned {
		inRing := false
		for i := range out {
			if out[i].RequestID == f.slowest.RequestID && out[i].Start.Equal(f.slowest.Start) {
				inRing = true
				break
			}
		}
		if !inRing {
			out = append(out, f.slowest)
		}
	}
	return out
}

// Get returns the retained entry for a request id (the newest when the same
// id was recorded more than once), checking the pinned slowest slot too.
func (f *FlightRecorder) Get(requestID string) (FlightEntry, bool) {
	if f == nil {
		return FlightEntry{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.ring)
	for i := 1; i <= n; i++ {
		if e := f.ring[(f.next+n-i)%n]; e.RequestID == requestID {
			return e, true
		}
	}
	if f.pinned && f.slowest.RequestID == requestID {
		return f.slowest, true
	}
	return FlightEntry{}, false
}

// Len reports current ring occupancy (the pinned slowest slot excluded).
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ring)
}
