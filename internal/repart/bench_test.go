package repart

import (
	"context"
	"fmt"
	"testing"

	"tempart/internal/mesh"
	"tempart/internal/partition"
)

// BenchmarkRepartitionRefine measures the warm-start refine path on the drift
// fixture — the per-epoch cost a solver pays when the hot core has moved and
// the old assignment is patched rather than rebuilt. Edge-cut and worst
// imbalance ride along so a faster pass that ships a worse partition is
// visible in the same line.
func BenchmarkRepartitionRefine(b *testing.B) {
	m := mesh.Cylinder(0.005)
	const k = 16
	old, err := partition.PartitionMesh(context.Background(), m, k, partition.MCTL,
		partition.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	m.ReassignLevels(func(x, y, z float64) float64 {
		return distXYZToSegment(x, y, z, 1.2, 0.5, 0.5, 1.4, 0.5, 0.5)
	}, mesh.CylinderCounts)
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	migBytes := MeshMigrationBytes(m)

	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			var res *Result
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err = Repartition(context.Background(), g, old, Options{
					Mode:     Refine,
					Part:     partition.Options{Seed: 1, Parallelism: par},
					MigBytes: migBytes,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.EdgeCut), "edge-cut")
			b.ReportMetric(res.MaxImbalance(), "max-level-imb")
		})
	}
}
