// Package repart implements incremental multi-constraint repartitioning.
//
// The temporal-adaptive solver periodically recomputes cell time levels as
// the flow evolves; a partition that balanced every level when it was built
// drifts out of balance as levels migrate through the mesh. Recomputing a
// partition from scratch restores balance but relabels most of the mesh,
// forcing almost every cell's state to move between domains. This package
// restores per-level balance while keeping cells where they already live:
// the objective is minimal migration volume (cells that change domain,
// weighted by their serialized size) subject to the same balance tolerance
// as the original partition.
//
// Two incremental strategies are provided behind one entry point:
//
//   - Refine: warm-started multilevel refinement. The dual graph is
//     coarsened with matching restricted to the old parts (so the old
//     assignment projects exactly onto every level), then the existing
//     multi-constraint k-way refinement runs coarsest-to-finest with a
//     migration-penalty term biasing moves toward cells that are cheap to
//     ship.
//
//   - Diffuse: a diffusive fallback that shifts boundary cells along
//     overloaded→underloaded part pairs, one constraint at a time, then
//     polishes the edge cut with penalty-biased refinement. Cheaper than
//     Refine and sufficient for small drift.
//
// Auto (the default) picks a strategy from the measured drift: partitions
// still inside tolerance are kept untouched, mild drift diffuses, heavy
// drift warm-starts multilevel refinement, and pathological drift falls back
// to partitioning from scratch (with a relabeling step that maximises
// overlap with the old parts so even the scratch path migrates no more than
// it must).
package repart

import (
	"context"
	"fmt"
	"math"

	"tempart/internal/graph"
	"tempart/internal/metrics"
	"tempart/internal/obs"
	"tempart/internal/partition"
)

// Mode selects the repartitioning strategy.
type Mode int

const (
	// Auto picks a mode from the measured imbalance of the old assignment
	// on the new graph (see package comment).
	Auto Mode = iota
	// Keep returns the old assignment unchanged (weights recomputed).
	Keep
	// Diffuse shifts boundary cells from overloaded to underloaded parts,
	// then polishes with penalty-biased refinement.
	Diffuse
	// Refine runs warm-started multilevel refinement from the old
	// assignment.
	Refine
	// Scratch partitions from scratch, then relabels parts to maximise
	// overlap with the old assignment.
	Scratch
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Auto:
		return "auto"
	case Keep:
		return "keep"
	case Diffuse:
		return "diffuse"
	case Refine:
		return "refine"
	case Scratch:
		return "scratch"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode is the inverse of String.
func ParseMode(s string) (Mode, error) {
	for _, m := range []Mode{Auto, Keep, Diffuse, Refine, Scratch} {
		if m.String() == s {
			return m, nil
		}
	}
	return Auto, fmt.Errorf("repart: unknown mode %q (want auto, keep, diffuse, refine or scratch)", s)
}

// Options controls Repartition.
type Options struct {
	// Mode selects the strategy; Auto (the default) decides per call.
	Mode Mode
	// Part carries the underlying partitioner options (seed, tolerance,
	// refinement passes). The tolerance doubles as the repartitioner's
	// balance target.
	Part partition.Options
	// MigrationPenalty scales how strongly refinement resists moving cells
	// off their current domain, in units of the mean incident edge weight.
	// 0 uses the default (0.5); negative disables the penalty.
	MigrationPenalty float64
	// MigBytes[v], when set, is the serialized size of cell v — the cost of
	// migrating it. Nil treats all cells as equally expensive.
	MigBytes []int64
	// DiffuseThreshold and ScratchThreshold are the Auto policy's imbalance
	// cut-points: drift at or below DiffuseThreshold diffuses, above
	// ScratchThreshold partitions from scratch, in between warm-starts
	// multilevel refinement. Defaults 1.30 and 8.0.
	DiffuseThreshold float64
	ScratchThreshold float64
}

func (o Options) withDefaults() Options {
	if o.MigrationPenalty == 0 {
		o.MigrationPenalty = 0.5
	}
	if o.DiffuseThreshold <= 1 {
		o.DiffuseThreshold = 1.30
	}
	if o.ScratchThreshold <= 1 {
		o.ScratchThreshold = 8.0
	}
	if o.Part.ImbalanceTol <= 1 {
		o.Part.ImbalanceTol = 1.05
	}
	return o
}

// Result is a repartition outcome: the new partition, the strategy that
// produced it, and the migration it implies relative to the old assignment.
type Result struct {
	*partition.Result
	// Mode is the strategy actually used (never Auto).
	Mode Mode
	// Stats quantifies the migration from the old to the new assignment.
	Stats metrics.MigrationStats
}

// Repartition computes a new k-way assignment for g starting from old. The
// graph must describe the same cells as old (typically the dual graph after
// mesh.ReassignLevels changed the vertex weights); old.Part is never
// modified. Cancelling ctx stops at the next strategy-internal boundary and
// returns the context error.
func Repartition(ctx context.Context, g *graph.Graph, old *partition.Result, opt Options) (*Result, error) {
	n := g.NumVertices()
	k := old.NumParts
	if len(old.Part) != n {
		return nil, fmt.Errorf("repart: old assignment has %d cells, graph has %d", len(old.Part), n)
	}
	if k < 1 {
		return nil, fmt.Errorf("repart: k = %d, want >= 1", k)
	}
	if opt.MigBytes != nil && len(opt.MigBytes) != n {
		return nil, fmt.Errorf("repart: %d migration weights for %d cells", len(opt.MigBytes), n)
	}
	opt = opt.withDefaults()

	span := obs.StartSpan(ctx, "repart")
	if span.Active() {
		span.SetStr("mode_requested", opt.Mode.String())
		span.SetInt("k", int64(k))
		span.SetInt("vertices", int64(n))
		ctx = obs.ContextWithSpan(ctx, span)
	}

	imbBefore := math.NaN()
	mode := opt.Mode
	if mode == Auto || span.Active() {
		imbBefore = partition.NewResult(g, old.Part, k).MaxImbalance()
	}
	if mode == Auto {
		switch {
		case imbBefore <= opt.Part.ImbalanceTol:
			mode = Keep
		case imbBefore <= opt.DiffuseThreshold:
			mode = Diffuse
		case imbBefore <= opt.ScratchThreshold:
			mode = Refine
		default:
			mode = Scratch
		}
	}
	if span.Active() {
		span.SetStr("mode", mode.String())
		span.SetFloat("imbalance_before", imbBefore)
	}

	part := make([]int32, n)
	copy(part, old.Part)
	var err error
	switch mode {
	case Keep:
		// Weights are recomputed below; the assignment stands.
	case Diffuse:
		err = diffuse(ctx, g, part, k, opt)
	case Refine:
		err = refineWarm(ctx, g, part, k, opt)
	case Scratch:
		part, err = scratch(ctx, g, old.Part, k, opt)
	default:
		err = fmt.Errorf("repart: unknown mode %v", opt.Mode)
	}
	if err != nil {
		span.End()
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		span.End()
		return nil, fmt.Errorf("repart: %w", err)
	}

	res := &Result{
		Result: partition.NewResult(g, part, k),
		Mode:   mode,
		Stats:  metrics.ComputeMigrationStats(old.Part, part, k, opt.MigBytes),
	}
	if span.Active() {
		span.SetFloat("imbalance_after", res.MaxImbalance())
		span.SetInt("edge_cut", res.EdgeCut)
		span.SetInt("moved_cells", int64(res.Stats.MovedCells))
		span.SetInt("moved_bytes", res.Stats.MovedBytes)
	}
	span.End()
	return res, nil
}

// penalties converts migration byte costs into refinement-gain units:
// pen[v] = MigrationPenalty · wbar · MigBytes[v]/migbar, floored at 1, where
// wbar is the mean incident edge weight. This keeps the penalty commensurate
// with edge-cut gains regardless of the byte scale, so one option value
// behaves consistently across meshes. A negative MigrationPenalty disables
// the bias: the result is nil, which every consumer (the diffusive sweep's
// cost ordering and RefineKWay's MovePenalty) treats as zero penalty.
func penalties(g *graph.Graph, opt Options) []int64 {
	if opt.MigrationPenalty < 0 {
		return nil
	}
	n := g.NumVertices()
	var totalEdge float64
	for _, w := range g.AdjWgt {
		totalEdge += float64(w)
	}
	wbar := 1.0
	if n > 0 && totalEdge > 0 {
		wbar = totalEdge / float64(n)
	}
	migbar := 1.0
	if opt.MigBytes != nil {
		var tot float64
		for _, b := range opt.MigBytes {
			tot += float64(b)
		}
		if n > 0 && tot > 0 {
			migbar = tot / float64(n)
		}
	}
	pen := make([]int64, n)
	for v := range pen {
		mig := 1.0
		if opt.MigBytes != nil {
			mig = float64(opt.MigBytes[v])
		}
		p := int64(math.Round(opt.MigrationPenalty * wbar * mig / migbar))
		if p < 1 {
			p = 1
		}
		pen[v] = p
	}
	return pen
}

// refinePolish runs penalty-biased k-way refinement on the full graph.
func refinePolish(ctx context.Context, g *graph.Graph, part []int32, k int, opt Options, origin []int32) error {
	return partition.RefineKWay(ctx, g, part, k, partition.RefineOptions{
		ImbalanceTol: opt.Part.ImbalanceTol,
		Passes:       opt.Part.RefinePasses,
		Seed:         opt.Part.Seed,
		Parallelism:  opt.Part.Parallelism,
		Origin:       origin,
		MovePenalty:  penalties(g, opt),
	})
}

// scratch partitions from scratch and then relabels the new parts to
// maximise byte overlap with the old assignment, so even the fallback path
// migrates only what the fresh partition forces.
func scratch(ctx context.Context, g *graph.Graph, oldPart []int32, k int, opt Options) ([]int32, error) {
	fresh, err := partition.Partition(ctx, g, k, opt.Part)
	if err != nil {
		return nil, err
	}
	part := fresh.Part
	relabel := overlapRelabel(oldPart, part, k, opt.MigBytes)
	for v := range part {
		part[v] = relabel[part[v]]
	}
	return part, nil
}

// overlapRelabel greedily maps new part labels onto old ones by descending
// shared byte volume: the (new, old) pair with the largest overlap binds
// first, and so on until every new label has an old one. Unmatched labels
// keep distinct spare ids. The result is a permutation new→old.
func overlapRelabel(oldPart, newPart []int32, k int, bytes []int64) []int32 {
	overlap := make([][]int64, k)
	for p := range overlap {
		overlap[p] = make([]int64, k)
	}
	for v := range newPart {
		var b int64 = 1
		if bytes != nil {
			b = bytes[v]
		}
		overlap[newPart[v]][oldPart[v]] += b
	}
	relabel := make([]int32, k)
	for i := range relabel {
		relabel[i] = -1
	}
	usedOld := make([]bool, k)
	for range relabel {
		var bestNew, bestOld int32 = -1, -1
		var best int64 = -1
		for np := 0; np < k; np++ {
			if relabel[np] >= 0 {
				continue
			}
			for op := 0; op < k; op++ {
				if usedOld[op] {
					continue
				}
				if overlap[np][op] > best {
					best, bestNew, bestOld = overlap[np][op], int32(np), int32(op)
				}
			}
		}
		if bestNew < 0 {
			break
		}
		relabel[bestNew] = bestOld
		usedOld[bestOld] = true
	}
	return relabel
}
