package repart

import (
	"context"
	"math"
	"testing"

	"tempart/internal/flusim"
	"tempart/internal/mesh"
	"tempart/internal/partition"
	"tempart/internal/taskgraph"
	"tempart/internal/temporal"
)

func TestModeStringRoundTrip(t *testing.T) {
	for _, m := range []Mode{Auto, Keep, Diffuse, Refine, Scratch} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("nonsense"); err == nil {
		t.Error("ParseMode accepted nonsense")
	}
}

func TestRepartitionValidates(t *testing.T) {
	m := mesh.Strip(levels4())
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	old, err := partition.Partition(context.Background(), g, 2, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Repartition(context.Background(), g, &partition.Result{Part: []int32{0}, NumParts: 2}, Options{}); err == nil {
		t.Error("accepted mismatched assignment length")
	}
	if _, err := Repartition(context.Background(), g, &partition.Result{Part: old.Part, NumParts: 0}, Options{}); err == nil {
		t.Error("accepted k = 0")
	}
	if _, err := Repartition(context.Background(), g, old, Options{MigBytes: []int64{1}}); err == nil {
		t.Error("accepted mismatched MigBytes length")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Repartition(ctx, g, old, Options{Mode: Refine}); err == nil {
		t.Error("cancelled context not reported")
	}
}

func TestRepartitionKeepsBalancedPartition(t *testing.T) {
	m := mesh.Cylinder(0.002)
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	old, err := partition.Partition(context.Background(), g, 8, partition.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The small fixture quantises above the default 1.05 tolerance, so give
	// Auto a target the fresh partition actually meets.
	res, err := Repartition(context.Background(), g, old, Options{
		Part: partition.Options{ImbalanceTol: old.MaxImbalance() + 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != Keep {
		t.Errorf("balanced partition chose mode %v, want keep", res.Mode)
	}
	if res.Stats.MovedCells != 0 {
		t.Errorf("keep moved %d cells", res.Stats.MovedCells)
	}
}

// driftedCylinder builds the drift fixture: a cylinder partitioned at
// epoch 0, then its hot core shifted so the old assignment is unbalanced.
func driftedCylinder(t *testing.T, scale float64, k int, shift float64) (*mesh.Mesh, *partition.Result) {
	t.Helper()
	m := mesh.Cylinder(scale)
	old, err := partition.PartitionMesh(context.Background(), m, k, partition.MCTL, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.ReassignLevels(func(x, y, z float64) float64 {
		return distXYZToSegment(x, y, z, 0.9+shift, 0.5, 0.5, 1.1+shift, 0.5, 0.5)
	}, mesh.CylinderCounts)
	return m, old
}

func TestRepartitionModesRestoreBalance(t *testing.T) {
	for _, mode := range []Mode{Diffuse, Refine, Scratch} {
		t.Run(mode.String(), func(t *testing.T) {
			m, old := driftedCylinder(t, 0.002, 8, 0.3)
			g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
			before := partition.NewResult(g, old.Part, 8).MaxImbalance()
			res, err := Repartition(context.Background(), g, old, Options{
				Mode:     mode,
				MigBytes: MeshMigrationBytes(m),
			})
			if err != nil {
				t.Fatal(err)
			}
			after := res.MaxImbalance()
			if after >= before {
				t.Errorf("imbalance %.3f did not improve on %.3f", after, before)
			}
			// Incremental modes must approach the partitioner's tolerance;
			// allow slack for quantisation on this small fixture.
			if after > 1.30 {
				t.Errorf("imbalance %.3f still above 1.30", after)
			}
			if err := res.Validate(g); err != nil {
				t.Error(err)
			}
			if res.Stats.TotalCells != m.NumCells() || res.Stats.MovedCells == 0 {
				t.Errorf("implausible stats %+v", res.Stats)
			}
		})
	}
}

// TestRepartitionNegativePenaltyDisablesBias: MigrationPenalty < 0 is the
// documented "no penalty" setting; every incremental mode must run unbiased
// rather than panic (diffuse sorted a nil penalty slice) or error (refine
// passed a nil MovePenalty that RefineKWay rejected).
func TestRepartitionNegativePenaltyDisablesBias(t *testing.T) {
	for _, mode := range []Mode{Auto, Diffuse, Refine, Scratch} {
		t.Run(mode.String(), func(t *testing.T) {
			m, old := driftedCylinder(t, 0.002, 8, 0.3)
			g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
			before := partition.NewResult(g, old.Part, 8).MaxImbalance()
			res, err := Repartition(context.Background(), g, old, Options{
				Mode:             mode,
				MigrationPenalty: -1,
				MigBytes:         MeshMigrationBytes(m),
			})
			if err != nil {
				t.Fatal(err)
			}
			if after := res.MaxImbalance(); after >= before {
				t.Errorf("imbalance %.3f did not improve on %.3f", after, before)
			}
			if err := res.Validate(g); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestIncrementalMovesLessThanScratch(t *testing.T) {
	m, old := driftedCylinder(t, 0.002, 8, 0.2)
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	bytes := MeshMigrationBytes(m)

	inc, err := Repartition(context.Background(), g, old, Options{Mode: Refine, MigBytes: bytes})
	if err != nil {
		t.Fatal(err)
	}
	scr, err := Repartition(context.Background(), g, old, Options{Mode: Scratch, MigBytes: bytes})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Stats.MovedCells >= scr.Stats.MovedCells {
		t.Errorf("incremental moved %d cells, scratch %d — no migration savings",
			inc.Stats.MovedCells, scr.Stats.MovedCells)
	}
}

func TestOverlapRelabelIdentity(t *testing.T) {
	part := []int32{0, 0, 1, 1, 2, 2, 2}
	relabel := overlapRelabel(part, part, 3, nil)
	for p, to := range relabel {
		if int32(p) != to {
			t.Errorf("relabel[%d] = %d, want identity", p, to)
		}
	}
}

func TestPlan(t *testing.T) {
	oldPart := []int32{0, 0, 1, 1}
	newPart := []int32{0, 1, 1, 0}
	bytes := []int64{10, 20, 30, 40}
	plan, err := Plan(oldPart, newPart, 2, bytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 2 {
		t.Fatalf("moves = %+v, want 2", plan.Moves)
	}
	if got := plan.Stats.MovedBytes; got != 60 {
		t.Errorf("moved bytes = %d, want 60", got)
	}
	if len(plan.Sends[0]) != 1 || plan.Sends[0][0] != 1 {
		t.Errorf("sends[0] = %v, want [1]", plan.Sends[0])
	}
	if len(plan.Recvs[0]) != 1 || plan.Recvs[0][0] != 3 {
		t.Errorf("recvs[0] = %v, want [3]", plan.Recvs[0])
	}
	var send, recv int
	for p := 0; p < 2; p++ {
		send += len(plan.Sends[p])
		recv += len(plan.Recvs[p])
	}
	if send != len(plan.Moves) || recv != len(plan.Moves) {
		t.Errorf("send/recv totals %d/%d != %d moves", send, recv, len(plan.Moves))
	}

	if _, err := Plan([]int32{0}, []int32{0, 1}, 2, nil); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := Plan([]int32{0}, []int32{5}, 2, nil); err == nil {
		t.Error("accepted out-of-range target")
	}
}

func TestMeshMigrationBytes(t *testing.T) {
	m := mesh.Strip(levels4())
	bytes := MeshMigrationBytes(m)
	if len(bytes) != m.NumCells() {
		t.Fatalf("%d sizes for %d cells", len(bytes), m.NumCells())
	}
	for v, b := range bytes {
		if b < cellBytes {
			t.Errorf("cell %d: %d bytes < cell payload %d", v, b, cellBytes)
		}
	}
}

func TestPlannerMatchesRepartition(t *testing.T) {
	m, old := driftedCylinder(t, 0.002, 8, 0.3)
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	pl := &Planner{Bytes: MeshMigrationBytes(m), Opt: Options{Mode: Refine}}
	res, plan, err := pl.Repartition(context.Background(), g, old)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stats.MovedCells != res.Stats.MovedCells || plan.Stats.MovedBytes != res.Stats.MovedBytes {
		t.Errorf("plan stats %+v disagree with result stats %+v", plan.Stats, res.Stats)
	}
	if len(plan.Moves) != res.Stats.MovedCells {
		t.Errorf("%d moves for %d moved cells", len(plan.Moves), res.Stats.MovedCells)
	}
}

// TestIncrementalMakespanAndMigrationAcceptance is the acceptance criterion
// for the incremental repartitioner: on the drift workload at epoch ≥ 2,
// incremental repartitioning reaches within 5% of the fresh-from-scratch
// makespan while migrating at most half the cells the scratch repartition
// moves.
func TestIncrementalMakespanAndMigrationAcceptance(t *testing.T) {
	const (
		domains = 32
		epochs  = 3
	)
	cluster := flusim.Cluster{NumProcs: 8, WorkersPerProc: 4}
	procOf := flusim.BlockMap(domains, cluster.NumProcs)

	m := mesh.Cylinder(0.004)
	p0, err := partition.PartitionMesh(context.Background(), m, domains, partition.MCTL, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bytes := MeshMigrationBytes(m)

	makespan := func(part []int32) int64 {
		t.Helper()
		tg, err := taskgraph.Build(m, part, domains, taskgraph.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := flusim.Simulate(tg, procOf, flusim.Config{Cluster: cluster})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Makespan
	}

	incPart := clone32(p0.Part)
	scrPart := clone32(p0.Part)
	var incMoved, scrMoved int
	var incSpan, scrSpan int64
	for e := 1; e <= epochs; e++ {
		shift := 0.1 * float64(e)
		m.ReassignLevels(func(x, y, z float64) float64 {
			return distXYZToSegment(x, y, z, 0.9+shift, 0.5, 0.5, 1.1+shift, 0.5, 0.5)
		}, mesh.CylinderCounts)
		g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})

		inc, err := Repartition(context.Background(), g,
			partition.NewResult(g, incPart, domains),
			Options{MigBytes: bytes, Part: partition.Options{Seed: int64(e), RefinePasses: 16}})
		if err != nil {
			t.Fatal(err)
		}
		scr, err := Repartition(context.Background(), g,
			partition.NewResult(g, scrPart, domains),
			Options{Mode: Scratch, MigBytes: bytes, Part: partition.Options{Seed: int64(e)}})
		if err != nil {
			t.Fatal(err)
		}
		incPart, scrPart = inc.Part, scr.Part
		incMoved, scrMoved = inc.Stats.MovedCells, scr.Stats.MovedCells
		incSpan, scrSpan = makespan(incPart), makespan(scrPart)
		t.Logf("epoch %d: mode=%v inc span=%d moved=%d imb=%.3f | scratch span=%d moved=%d imb=%.3f",
			e, inc.Mode, incSpan, incMoved, inc.MaxImbalance(), scrSpan, scrMoved, scr.MaxImbalance())
	}

	if ratio := float64(incSpan) / float64(scrSpan); ratio > 1.05 {
		t.Errorf("incremental makespan %d is %.1f%% above scratch %d, want ≤ 5%%",
			incSpan, 100*(ratio-1), scrSpan)
	}
	if scrMoved == 0 || incMoved > scrMoved/2 {
		t.Errorf("incremental moved %d cells, scratch moved %d — want ≤ half",
			incMoved, scrMoved)
	}
}

func levels4() []temporal.Level {
	return []temporal.Level{0, 0, 1, 1, 2, 2, 3, 3}
}

func distXYZToSegment(x, y, z, ax, ay, az, bx, by, bz float64) float64 {
	vx, vy, vz := bx-ax, by-ay, bz-az
	wx, wy, wz := x-ax, y-ay, z-az
	vv := vx*vx + vy*vy + vz*vz
	t := 0.0
	if vv > 0 {
		t = (wx*vx + wy*vy + wz*vz) / vv
		t = math.Max(0, math.Min(1, t))
	}
	dx, dy, dz := x-(ax+t*vx), y-(ay+t*vy), z-(az+t*vz)
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}
