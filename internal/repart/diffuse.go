package repart

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"tempart/internal/graph"
	"tempart/internal/obs"
)

// diffuse is the diffusive fallback: boundary cells of overloaded parts flow
// to adjacent underloaded parts until every constraint is back under its
// cap, preferring the cells that are cheapest to migrate and least connected
// to their current part. A penalty-biased refinement pass then repairs the
// edge cut without undoing the balance. part is updated in place.
func diffuse(ctx context.Context, g *graph.Graph, part []int32, k int, opt Options) error {
	span := obs.StartSpan(ctx, "repart/diffuse")
	defer span.End()
	opt.Part = optWithRefineDefaults(opt.Part)
	n := g.NumVertices()
	ncon := g.NCon
	caps := diffuseCaps(g, k, opt.Part.ImbalanceTol)
	pen := penalties(g, opt)
	origin := clone32(part) // pre-diffusion homes, so the polish can send cells back

	pw := make([][]int64, k)
	for p := range pw {
		pw[p] = make([]int64, ncon)
	}
	for v := 0; v < n; v++ {
		for c := 0; c < ncon; c++ {
			pw[part[v]][c] += int64(g.Weight(int32(v), c))
		}
	}
	overOf := func(p int32) int64 {
		var over int64
		for c := 0; c < ncon; c++ {
			if d := pw[p][c] - caps[c]; d > 0 {
				over += d
			}
		}
		return over
	}

	// Sweep cells of overloaded parts in ascending migration cost so the
	// cheap state moves first (any order when the penalty is disabled and
	// pen is nil). A bounded number of sweeps suffices: each move strictly
	// reduces total overage.
	rng := rand.New(rand.NewSource(opt.Part.Seed))
	order := rng.Perm(n)
	if pen != nil {
		sort.SliceStable(order, func(a, b int) bool { return pen[order[a]] < pen[order[b]] })
	}

	conn := make([]int64, k)
	touched := make([]int32, 0, 8)
	const maxSweeps = 32
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if ctx.Err() != nil {
			return nil
		}
		moves := 0
		for _, vi := range order {
			v := int32(vi)
			from := part[v]
			overFrom := overOf(from)
			if overFrom == 0 {
				continue
			}
			touched = touched[:0]
			for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
				p := part[g.Adjncy[i]]
				if conn[p] == 0 {
					touched = append(touched, p)
				}
				conn[p] += int64(g.AdjWgt[i])
			}
			wv := g.WeightVec(v)
			var best int32 = -1
			var bestOverDelta, bestGain int64
			for _, to := range touched {
				if to == from {
					continue
				}
				var overToNew, overFromNew int64
				for c := 0; c < ncon; c++ {
					if d := pw[to][c] + int64(wv[c]) - caps[c]; d > 0 {
						overToNew += d
					}
					if d := pw[from][c] - int64(wv[c]) - caps[c]; d > 0 {
						overFromNew += d
					}
				}
				overTo := overOf(to)
				overDelta := (overToNew + overFromNew) - (overTo + overFrom)
				if overDelta > 0 {
					continue // never worsen total overage
				}
				if overDelta == 0 && maxI64(overFromNew, overToNew) >= maxI64(overFrom, overTo) {
					// Neutral moves are admitted only as "levelling": the
					// pair's larger overage must strictly shrink. That lets
					// excess percolate through saturated parts toward distant
					// spare capacity (a strict-decrease rule dead-ends as soon
					// as every neighbour sits at its cap) and still
					// terminates — each levelling move lexicographically
					// shrinks the sorted per-part overage vector.
					continue
				}
				gain := conn[to] - conn[from]
				if best < 0 || overDelta < bestOverDelta ||
					(overDelta == bestOverDelta && gain > bestGain) {
					best, bestOverDelta, bestGain = to, overDelta, gain
				}
			}
			if best >= 0 {
				for c := 0; c < ncon; c++ {
					pw[from][c] -= int64(wv[c])
					pw[best][c] += int64(wv[c])
				}
				part[v] = best
				moves++
			}
			for _, p := range touched {
				conn[p] = 0
			}
		}
		if moves == 0 {
			break
		}
	}

	// Repair the cut the diffusion tore open, without sacrificing balance.
	return refinePolish(ctx, g, part, k, opt, origin)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// diffuseCaps mirrors the partitioner's per-part per-constraint caps,
// including the feasibility floors: caps below ceil(ideal) (pigeonhole) or
// below the heaviest single vertex (indivisibility) are unreachable and
// would make the sweep thrash.
func diffuseCaps(g *graph.Graph, k int, tol float64) []int64 {
	tot := g.TotalWeights()
	n := g.NumVertices()
	maxV := make([]int64, g.NCon)
	for v := 0; v < n; v++ {
		for c := 0; c < g.NCon; c++ {
			if w := int64(g.Weight(int32(v), c)); w > maxV[c] {
				maxV[c] = w
			}
		}
	}
	caps := make([]int64, g.NCon)
	for c := range tot {
		ideal := float64(tot[c]) / float64(k)
		cap := int64(ideal * tol)
		if feasible := int64(math.Ceil(ideal - 1e-9)); feasible > cap {
			cap = feasible
		}
		if maxV[c] > cap {
			cap = maxV[c]
		}
		caps[c] = cap
	}
	return caps
}
