package repart

import (
	"context"
	"fmt"

	"tempart/internal/graph"
	"tempart/internal/mesh"
	"tempart/internal/metrics"
	"tempart/internal/partition"
)

// Move is one cell changing domains.
type Move struct {
	Cell  int32 `json:"cell"`
	From  int32 `json:"from"`
	To    int32 `json:"to"`
	Bytes int64 `json:"bytes"`
}

// MigrationPlan is the executable description of a repartition: which cells
// each domain must ship where, and the resulting traffic matrix summarised
// in Stats. Sends[p] lists the cells leaving domain p in ascending cell
// order (deterministic, so two processes planning independently agree);
// Recvs[p] lists the cells arriving at p.
type MigrationPlan struct {
	Moves []Move                 `json:"moves"`
	Sends [][]int32              `json:"sends"`
	Recvs [][]int32              `json:"recvs"`
	Stats metrics.MigrationStats `json:"stats"`
}

// Plan diffs two assignments over the same cells into a migration plan.
// bytes[v] is the serialized size of cell v (nil counts cells as one byte
// each, as in metrics.ComputeMigrationStats).
func Plan(oldPart, newPart []int32, k int, bytes []int64) (*MigrationPlan, error) {
	if len(oldPart) != len(newPart) {
		return nil, fmt.Errorf("repart: plan over %d old vs %d new cells", len(oldPart), len(newPart))
	}
	if bytes != nil && len(bytes) != len(oldPart) {
		return nil, fmt.Errorf("repart: %d byte sizes for %d cells", len(bytes), len(oldPart))
	}
	p := &MigrationPlan{
		Sends: make([][]int32, k),
		Recvs: make([][]int32, k),
		Stats: metrics.ComputeMigrationStats(oldPart, newPart, k, bytes),
	}
	for v := range oldPart {
		from, to := oldPart[v], newPart[v]
		if from == to {
			continue
		}
		if from < 0 || int(from) >= k || to < 0 || int(to) >= k {
			return nil, fmt.Errorf("repart: cell %d moves %d→%d outside [0,%d)", v, from, to, k)
		}
		var b int64 = 1
		if bytes != nil {
			b = bytes[v]
		}
		p.Moves = append(p.Moves, Move{Cell: int32(v), From: from, To: to, Bytes: b})
		p.Sends[from] = append(p.Sends[from], int32(v))
		p.Recvs[to] = append(p.Recvs[to], int32(v))
	}
	return p, nil
}

// Serialized sizes used by MeshMigrationBytes. A migrating cell ships its
// level (1), volume (4) and centroid (3×4); each incident face contributes
// its two cell ids (2×4), area (4) and geometric payload (12), halved for
// interior faces since the face stays with one of its two cells.
const (
	cellBytes = 1 + 4 + 12
	faceBytes = 8 + 4 + 12
)

// MeshMigrationBytes estimates, per cell, the bytes that must move when the
// cell changes domain: its own state plus its share of incident face state.
// It is the default MigBytes / Plan weighting for mesh-backed graphs.
func MeshMigrationBytes(m *mesh.Mesh) []int64 {
	n := m.NumCells()
	out := make([]int64, n)
	for v := int32(0); v < int32(n); v++ {
		b := int64(cellBytes)
		for _, f := range m.CellFaces(v) {
			if m.Faces[f].IsBoundary() {
				b += faceBytes
			} else {
				b += faceBytes / 2
			}
		}
		out[v] = b
	}
	return out
}

// Planner couples repartitioning with plan emission: one call produces the
// new partition and the migration plan (per-domain send/receive lists plus
// byte volumes) that realises it.
type Planner struct {
	// Bytes is the per-cell migration cost, used both to bias the
	// repartition and to weight the plan (see MeshMigrationBytes). Nil
	// weights cells equally. It overrides Opt.MigBytes.
	Bytes []int64
	// Opt forwards to Repartition.
	Opt Options
}

// Repartition runs repart.Repartition with the planner's byte weighting and
// derives the migration plan from the old to the new assignment. The plan's
// Stats equals the result's Stats.
func (pl *Planner) Repartition(ctx context.Context, g *graph.Graph, old *partition.Result) (*Result, *MigrationPlan, error) {
	opt := pl.Opt
	if pl.Bytes != nil {
		opt.MigBytes = pl.Bytes
	}
	res, err := Repartition(ctx, g, old, opt)
	if err != nil {
		return nil, nil, err
	}
	plan, err := Plan(old.Part, res.Part, old.NumParts, opt.MigBytes)
	if err != nil {
		return nil, nil, err
	}
	return res, plan, nil
}
