package repart

import (
	"context"
	"math/rand"

	"tempart/internal/graph"
	"tempart/internal/obs"
	"tempart/internal/partition"
)

// rlevel is one level of the warm-start hierarchy. origin and pen are the
// coarse projections of the fine assignment and migration penalties; because
// matching is part-restricted, every coarse vertex has a single well-defined
// origin part.
type rlevel struct {
	g      *graph.Graph
	cmap   []int32 // fine vertex → coarse vertex (nil on the finest level)
	origin []int32
	pen    []int64
}

// refineWarm is the warm-started multilevel strategy: coarsen with matching
// restricted to the old parts, seed the coarsest graph with the projected
// old assignment, and refine coarsest-to-finest with the migration-penalty
// bias. part is updated in place.
func refineWarm(ctx context.Context, g *graph.Graph, part []int32, k int, opt Options) error {
	span := obs.StartSpan(ctx, "repart/refine_warm")
	defer span.End()
	opt.Part = optWithRefineDefaults(opt.Part)
	rng := rand.New(rand.NewSource(opt.Part.Seed))
	pool := graph.NewPool(opt.Part.Parallelism)

	coarseTo := 8 * k
	if min := 128 * g.NCon; min > coarseTo {
		coarseTo = min
	}

	levels := []rlevel{{g: g, origin: clone32(part), pen: penalties(g, opt)}}
	for {
		cur := levels[len(levels)-1]
		n := cur.g.NumVertices()
		if n <= coarseTo || ctx.Err() != nil {
			break
		}
		cmap, ncoarse := matchWithinParts(cur.g, cur.origin, rng)
		if ncoarse > n*9/10 { // diminishing returns: stop below 10% shrink
			break
		}
		cg := cur.g.ContractP(cmap, ncoarse, pool)
		next := rlevel{
			g:      cg,
			origin: make([]int32, ncoarse),
			pen:    make([]int64, ncoarse),
		}
		for v := 0; v < n; v++ {
			c := cmap[v]
			next.origin[c] = cur.origin[v]
			if cur.pen != nil {
				next.pen[c] += cur.pen[v]
			}
		}
		if cur.pen == nil {
			next.pen = nil
		}
		levels[len(levels)-1].cmap = cmap
		levels = append(levels, next)
	}

	if span.Active() {
		// Warm-start depth: how many coarse levels the hierarchy reached
		// before refinement climbs back up.
		span.SetInt("depth", int64(len(levels)))
		span.SetInt("coarse_vertices", int64(levels[len(levels)-1].g.NumVertices()))
	}

	// The coarsest assignment is exactly the projected old assignment (the
	// warm start); refine it at every level on the way back up.
	cur := clone32(levels[len(levels)-1].origin)
	for li := len(levels) - 1; li >= 0; li-- {
		lv := levels[li]
		err := partition.RefineKWay(ctx, lv.g, cur, k, partition.RefineOptions{
			ImbalanceTol: opt.Part.ImbalanceTol,
			Passes:       opt.Part.RefinePasses,
			Seed:         opt.Part.Seed + int64(li),
			Parallelism:  opt.Part.Parallelism,
			Origin:       lv.origin,
			MovePenalty:  lv.pen,
		})
		if err != nil {
			return err
		}
		if li > 0 {
			fine := levels[li-1]
			next := make([]int32, fine.g.NumVertices())
			for v := range next {
				next[v] = cur[fine.cmap[v]]
			}
			cur = next
		}
	}
	copy(part, cur)
	if err := ctx.Err(); err != nil {
		return err
	}
	// Refinement can stall above tolerance when the drift concentrated a
	// level inside one part's interior (no boundary vertex of that level to
	// move). The diffusive sweep has no such restriction — finish with it
	// whenever residual imbalance remains.
	if partition.NewResult(g, part, k).MaxImbalance() > opt.Part.ImbalanceTol {
		return diffuse(ctx, g, part, k, opt)
	}
	return nil
}

// matchWithinParts is heavy-edge matching restricted to endpoints sharing
// the same origin part, so the old assignment projects exactly onto the
// coarse graph. Unmatched vertices map to singleton coarse vertices.
func matchWithinParts(g *graph.Graph, origin []int32, rng *rand.Rand) (cmap []int32, ncoarse int) {
	n := g.NumVertices()
	cmap = make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	for _, vi := range rng.Perm(n) {
		v := int32(vi)
		if cmap[v] >= 0 {
			continue
		}
		var mate int32 = -1
		var bestW int32 = -1
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			u := g.Adjncy[i]
			if cmap[u] >= 0 || origin[u] != origin[v] {
				continue
			}
			if w := g.AdjWgt[i]; w > bestW {
				bestW, mate = w, u
			}
		}
		c := int32(ncoarse)
		ncoarse++
		cmap[v] = c
		if mate >= 0 {
			cmap[mate] = c
		}
	}
	return cmap, ncoarse
}

func optWithRefineDefaults(o partition.Options) partition.Options {
	if o.ImbalanceTol <= 1 {
		o.ImbalanceTol = 1.05
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 8
	}
	return o
}

func clone32(s []int32) []int32 {
	out := make([]int32, len(s))
	copy(out, s)
	return out
}
