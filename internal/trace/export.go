package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// ChromeEvent is one entry of the Chrome trace-event format ("X" = complete
// event). Times are microseconds; we map one virtual time unit (or
// nanosecond, for wall-clock traces) to one microsecond so the viewer's
// zoom behaves. Exported so other producers (internal/obs pipeline spans)
// can reuse this exporter and land in the same Perfetto timeline format as
// FLUSIM schedules.
type ChromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	PID  int32             `json:"pid"`
	TID  int32             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeEvents serialises pre-built events as a Chrome trace-event JSON
// array, loadable in chrome://tracing or Perfetto.
func WriteChromeEvents(w io.Writer, events []ChromeEvent) error {
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// WriteChromeTrace serialises the trace in the Chrome trace-event JSON array
// format, loadable in chrome://tracing or Perfetto. Processes map to PIDs,
// workers to TIDs, tasks to complete events named by subiteration.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	events := make([]ChromeEvent, 0, len(t.Spans))
	for _, s := range t.Spans {
		events = append(events, ChromeEvent{
			Name: fmt.Sprintf("sub%d", s.Sub),
			Cat:  "task",
			Ph:   "X",
			Ts:   s.Start,
			Dur:  s.End - s.Start,
			PID:  s.Proc,
			TID:  s.Worker,
			Args: map[string]string{"task": strconv.Itoa(int(s.Task))},
		})
	}
	return WriteChromeEvents(w, events)
}

// WriteCSV serialises the trace as CSV with the header
// proc,worker,task,sub,start,end — convenient for spreadsheet or pandas
// analysis of schedules.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"proc", "worker", "task", "sub", "start", "end"}); err != nil {
		return err
	}
	row := make([]string, 6)
	for _, s := range t.Spans {
		row[0] = strconv.Itoa(int(s.Proc))
		row[1] = strconv.Itoa(int(s.Worker))
		row[2] = strconv.Itoa(int(s.Task))
		row[3] = strconv.Itoa(int(s.Sub))
		row[4] = strconv.FormatInt(s.Start, 10)
		row[5] = strconv.FormatInt(s.End, 10)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV. Makespan is recovered as the
// maximum span end; NumProcs as max proc + 1.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	if len(records[0]) != 6 || records[0][0] != "proc" {
		return nil, fmt.Errorf("trace: unexpected CSV header %v", records[0])
	}
	t := &Trace{}
	for i, rec := range records[1:] {
		vals := make([]int64, 6)
		for j, f := range rec {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d field %d: %w", i+1, j, err)
			}
			vals[j] = v
		}
		s := Span{
			Proc: int32(vals[0]), Worker: int32(vals[1]), Task: int32(vals[2]),
			Sub: int32(vals[3]), Start: vals[4], End: vals[5],
		}
		t.Spans = append(t.Spans, s)
		if int(s.Proc)+1 > t.NumProcs {
			t.NumProcs = int(s.Proc) + 1
		}
		if s.End > t.Makespan {
			t.Makespan = s.End
		}
	}
	return t, nil
}
