package trace

import (
	"fmt"
	"sort"
	"strings"
)

// GanttByWorker renders an ASCII Gantt chart with one row per (process,
// worker) pair — the fine-grained view of a bounded-cluster trace, where the
// per-process Gantt would hide intra-process idleness. Rows are grouped by
// process; only workers that ran at least one task appear.
func (t *Trace) GanttByWorker(width int) string {
	if width <= 0 {
		width = 80
	}
	if t.Makespan == 0 {
		return "(empty trace)\n"
	}
	type key struct{ p, w int32 }
	rows := map[key][]Span{}
	for _, s := range t.Spans {
		k := key{s.Proc, s.Worker}
		rows[k] = append(rows[k], s)
	}
	keys := make([]key, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].p != keys[j].p {
			return keys[i].p < keys[j].p
		}
		return keys[i].w < keys[j].w
	})

	slot := float64(t.Makespan) / float64(width)
	var b strings.Builder
	for _, k := range keys {
		line := make([]byte, width)
		for i := range line {
			line[i] = '.'
		}
		for _, s := range rows[k] {
			c0 := int(float64(s.Start) / slot)
			c1 := int(float64(s.End-1) / slot)
			if c1 >= width {
				c1 = width - 1
			}
			for c := c0; c <= c1; c++ {
				line[c] = byte('0' + s.Sub%10)
			}
		}
		fmt.Fprintf(&b, "P%-2d/w%-3d |%s|\n", k.p, k.w, line)
	}
	return b.String()
}
