package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	return &Trace{
		NumProcs:       2,
		WorkersPerProc: 1,
		Makespan:       10,
		Spans: []Span{
			{Proc: 0, Worker: 0, Task: 0, Sub: 0, Start: 0, End: 4},
			{Proc: 0, Worker: 0, Task: 1, Sub: 1, Start: 6, End: 10},
			{Proc: 1, Worker: 0, Task: 2, Sub: 0, Start: 0, End: 10},
		},
	}
}

func TestTotalBusyAndPerProc(t *testing.T) {
	tr := sampleTrace()
	if got := tr.TotalBusy(); got != 18 {
		t.Errorf("TotalBusy = %d, want 18", got)
	}
	per := tr.BusyPerProc()
	if per[0] != 8 || per[1] != 10 {
		t.Errorf("BusyPerProc = %v, want [8 10]", per)
	}
}

func TestIdleFraction(t *testing.T) {
	tr := sampleTrace()
	// Capacity 2 workers * 10 = 20; busy 18 → idle 0.1.
	if got := tr.IdleFraction(); got < 0.099 || got > 0.101 {
		t.Errorf("IdleFraction = %v, want 0.1", got)
	}
	tr.WorkersPerProc = 0
	if got := tr.IdleFraction(); got != 0 {
		t.Errorf("unbounded IdleFraction = %v, want 0", got)
	}
}

func TestBusyBySubiteration(t *testing.T) {
	tr := sampleTrace()
	b := tr.BusyBySubiteration(2)
	if b[0][0] != 4 || b[0][1] != 4 {
		t.Errorf("proc 0 by sub = %v, want [4 4]", b[0])
	}
	if b[1][0] != 10 || b[1][1] != 0 {
		t.Errorf("proc 1 by sub = %v, want [10 0]", b[1])
	}
}

func TestProcActiveIntervals(t *testing.T) {
	tr := sampleTrace()
	iv := tr.ProcActiveIntervals()
	if len(iv[0]) != 2 {
		t.Fatalf("proc 0 intervals = %v, want 2 merged intervals", iv[0])
	}
	if iv[0][0] != [2]int64{0, 4} || iv[0][1] != [2]int64{6, 10} {
		t.Errorf("proc 0 intervals = %v", iv[0])
	}
	if len(iv[1]) != 1 || iv[1][0] != [2]int64{0, 10} {
		t.Errorf("proc 1 intervals = %v", iv[1])
	}
}

func TestMergeIntervalsOverlapping(t *testing.T) {
	got := mergeIntervals([][2]int64{{0, 5}, {3, 8}, {10, 12}})
	if len(got) != 2 || got[0] != [2]int64{0, 8} || got[1] != [2]int64{10, 12} {
		t.Errorf("mergeIntervals = %v", got)
	}
}

func TestGanttShape(t *testing.T) {
	tr := sampleTrace()
	g := tr.Gantt(20)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("Gantt rows = %d, want 2\n%s", len(lines), g)
	}
	// Proc 0 has an idle gap → at least one '.'; proc 1 has none.
	if !strings.Contains(lines[0], ".") {
		t.Errorf("proc 0 row shows no idle gap: %s", lines[0])
	}
	if strings.Contains(strings.TrimSuffix(strings.SplitN(lines[1], "|", 2)[1], "|"), ".") {
		t.Errorf("proc 1 row shows idle where none exists: %s", lines[1])
	}
	// Subiteration digits appear.
	if !strings.Contains(lines[0], "0") || !strings.Contains(lines[0], "1") {
		t.Errorf("proc 0 row missing sub digits: %s", lines[0])
	}
}

func TestGanttEmpty(t *testing.T) {
	tr := &Trace{NumProcs: 1}
	if g := tr.Gantt(10); !strings.Contains(g, "empty") {
		t.Errorf("empty trace Gantt = %q", g)
	}
}

func TestValidate(t *testing.T) {
	tr := sampleTrace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := sampleTrace()
	bad.Spans[0].End = 99
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted span past makespan")
	}
	bad2 := sampleTrace()
	bad2.Spans[0].End = bad2.Spans[0].Start
	if err := bad2.Validate(); err == nil {
		t.Error("Validate accepted empty span")
	}
}

func TestCheckNoWorkerOverlap(t *testing.T) {
	tr := sampleTrace()
	if err := tr.CheckNoWorkerOverlap(); err != nil {
		t.Fatal(err)
	}
	tr.Spans = append(tr.Spans, Span{Proc: 1, Worker: 0, Start: 5, End: 7})
	if err := tr.CheckNoWorkerOverlap(); err == nil {
		t.Error("CheckNoWorkerOverlap accepted overlapping spans")
	}
}

// Property: busy-by-subiteration totals equal per-proc busy totals.
func TestBusyDecompositionProperty(t *testing.T) {
	f := func(starts []uint8) bool {
		tr := &Trace{NumProcs: 3, WorkersPerProc: 2}
		for i, s := range starts {
			st := int64(s)
			sp := Span{
				Proc:  int32(i % 3),
				Sub:   int32(i % 4),
				Start: st,
				End:   st + 3,
			}
			tr.Spans = append(tr.Spans, sp)
			if sp.End > tr.Makespan {
				tr.Makespan = sp.End
			}
		}
		bySub := tr.BusyBySubiteration(4)
		perProc := tr.BusyPerProc()
		for p := 0; p < 3; p++ {
			var s int64
			for _, v := range bySub[p] {
				s += v
			}
			if s != perProc[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGanttByWorker(t *testing.T) {
	tr := sampleTrace()
	out := tr.GanttByWorker(20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Two (proc, worker) pairs ran spans.
	if len(lines) != 2 {
		t.Fatalf("rows = %d, want 2\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "P0 /w0") || !strings.HasPrefix(lines[1], "P1 /w0") {
		t.Errorf("row labels wrong:\n%s", out)
	}
	// Proc 0 worker 0 has a gap.
	if !strings.Contains(lines[0], ".") {
		t.Errorf("missing idle gap: %s", lines[0])
	}
	empty := (&Trace{}).GanttByWorker(10)
	if !strings.Contains(empty, "empty") {
		t.Errorf("empty trace render: %q", empty)
	}
}
