// Package trace records and analyses execution traces: which task ran on
// which process/worker over which time interval. It provides the aggregate
// views used throughout the paper's evaluation — per-process Gantt charts
// (Figures 5, 6, 9, 12, 13), busy-time-by-subiteration histograms (Figures
// 7b, 10b) and idle statistics.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Span is one task execution on one worker.
type Span struct {
	// Proc is the process (MPI rank analogue) the task ran on.
	Proc int32
	// Worker is the worker index within the process.
	Worker int32
	// Task identifies the task (index into the task graph).
	Task int32
	// Sub is the task's subiteration, used for color-coding.
	Sub int32
	// Start and End bound the execution in virtual time units.
	Start, End int64
}

// Trace is a complete execution record.
type Trace struct {
	Spans    []Span
	NumProcs int
	// WorkersPerProc is 0 when unbounded.
	WorkersPerProc int
	Makespan       int64
}

// TotalBusy returns the summed span durations.
func (t *Trace) TotalBusy() int64 {
	var b int64
	for _, s := range t.Spans {
		b += s.End - s.Start
	}
	return b
}

// BusyPerProc returns the summed busy time of each process's workers.
func (t *Trace) BusyPerProc() []int64 {
	out := make([]int64, t.NumProcs)
	for _, s := range t.Spans {
		out[s.Proc] += s.End - s.Start
	}
	return out
}

// BusyBySubiteration returns busy[proc][sub]: the cumulative computation
// time process proc spent in subiteration sub — the data behind the paper's
// Figures 7b and 10b.
func (t *Trace) BusyBySubiteration(numSubs int) [][]int64 {
	out := make([][]int64, t.NumProcs)
	for p := range out {
		out[p] = make([]int64, numSubs)
	}
	for _, s := range t.Spans {
		if int(s.Sub) < numSubs {
			out[s.Proc][s.Sub] += s.End - s.Start
		}
	}
	return out
}

// IdleFraction returns the fleet-wide idle share: 1 − busy/(capacity·span).
// With unbounded workers it returns 0 (idleness is meaningless there).
func (t *Trace) IdleFraction() float64 {
	if t.WorkersPerProc <= 0 || t.Makespan == 0 {
		return 0
	}
	capacity := int64(t.NumProcs) * int64(t.WorkersPerProc) * t.Makespan
	return 1 - float64(t.TotalBusy())/float64(capacity)
}

// ProcActiveIntervals returns, for each process, the merged time intervals
// during which at least one of its workers was busy.
func (t *Trace) ProcActiveIntervals() [][][2]int64 {
	byProc := make([][][2]int64, t.NumProcs)
	for _, s := range t.Spans {
		byProc[s.Proc] = append(byProc[s.Proc], [2]int64{s.Start, s.End})
	}
	for p := range byProc {
		byProc[p] = mergeIntervals(byProc[p])
	}
	return byProc
}

func mergeIntervals(iv [][2]int64) [][2]int64 {
	if len(iv) == 0 {
		return iv
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i][0] < iv[j][0] })
	out := iv[:1]
	for _, x := range iv[1:] {
		last := &out[len(out)-1]
		if x[0] <= last[1] {
			if x[1] > last[1] {
				last[1] = x[1]
			}
		} else {
			out = append(out, x)
		}
	}
	return out
}

// Gantt renders an ASCII Gantt chart, one row per process, width columns
// wide. Cells show the subiteration digit (mod 10) of the dominant task in
// that time slot, or '.' when the process is fully idle — the textual
// equivalent of the paper's color-coded traces.
func (t *Trace) Gantt(width int) string {
	if width <= 0 {
		width = 80
	}
	if t.Makespan == 0 {
		return "(empty trace)\n"
	}
	var b strings.Builder
	slot := float64(t.Makespan) / float64(width)

	// busy[p][col] = weight; sub[p][col] = dominant subiteration.
	type cellAgg struct {
		weight int64
		subW   map[int32]int64
	}
	grid := make([][]cellAgg, t.NumProcs)
	for p := range grid {
		grid[p] = make([]cellAgg, width)
	}
	for _, s := range t.Spans {
		c0 := int(float64(s.Start) / slot)
		c1 := int(float64(s.End) / slot)
		if c1 >= width {
			c1 = width - 1
		}
		for c := c0; c <= c1; c++ {
			lo, hi := float64(c)*slot, float64(c+1)*slot
			ov := overlapF(float64(s.Start), float64(s.End), lo, hi)
			if ov <= 0 {
				continue
			}
			// Scale to keep integer weights meaningful for thin slots.
			w := int64(ov*1024) + 1
			cell := &grid[s.Proc][c]
			if cell.subW == nil {
				cell.subW = map[int32]int64{}
			}
			cell.weight += w
			cell.subW[s.Sub] += w
		}
	}
	for p := 0; p < t.NumProcs; p++ {
		fmt.Fprintf(&b, "P%-3d |", p)
		for c := 0; c < width; c++ {
			cell := &grid[p][c]
			if cell.weight == 0 {
				b.WriteByte('.')
				continue
			}
			var best int32
			var bestW int64 = -1
			for sub, w := range cell.subW {
				if w > bestW || (w == bestW && sub < best) {
					best, bestW = sub, w
				}
			}
			b.WriteByte(byte('0' + best%10))
		}
		b.WriteString("|\n")
	}
	return b.String()
}

func overlapF(a0, a1, b0, b1 float64) float64 {
	lo, hi := a0, a1
	if b0 > lo {
		lo = b0
	}
	if b1 < hi {
		hi = b1
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// Validate checks span sanity: positive durations within the makespan and
// in-range processes.
func (t *Trace) Validate() error {
	for i, s := range t.Spans {
		if s.Start < 0 || s.End <= s.Start {
			return fmt.Errorf("trace: span %d has bad interval [%d,%d)", i, s.Start, s.End)
		}
		if s.End > t.Makespan {
			return fmt.Errorf("trace: span %d ends at %d past makespan %d", i, s.End, t.Makespan)
		}
		if s.Proc < 0 || int(s.Proc) >= t.NumProcs {
			return fmt.Errorf("trace: span %d on process %d of %d", i, s.Proc, t.NumProcs)
		}
	}
	return nil
}

// CheckNoWorkerOverlap verifies no (proc, worker) pair runs two spans at
// once; meaningful only for bounded-worker traces.
func (t *Trace) CheckNoWorkerOverlap() error {
	type key struct{ p, w int32 }
	byWorker := map[key][]Span{}
	for _, s := range t.Spans {
		k := key{s.Proc, s.Worker}
		byWorker[k] = append(byWorker[k], s)
	}
	for k, spans := range byWorker {
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		for i := 1; i < len(spans); i++ {
			if spans[i].Start < spans[i-1].End {
				return fmt.Errorf("trace: proc %d worker %d overlaps at t=%d", k.p, k.w, spans[i].Start)
			}
		}
	}
	return nil
}
