package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary text to the trace CSV reader: no panics, and
// successful parses must round-trip through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteCSV(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("proc,worker,task,sub,start,end\n0,0,0,0,0,1\n")
	f.Add("garbage")
	f.Add("")

	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := tr.WriteCSV(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		tr2, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(tr2.Spans) != len(tr.Spans) {
			t.Fatalf("round trip lost spans: %d -> %d", len(tr.Spans), len(tr2.Spans))
		}
	})
}
