package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteChromeTrace(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) != len(tr.Spans) {
		t.Fatalf("events = %d, want %d", len(events), len(tr.Spans))
	}
	ev := events[0]
	if ev["ph"] != "X" || ev["name"] != "sub0" {
		t.Errorf("event malformed: %v", ev)
	}
	if ev["dur"].(float64) != 4 {
		t.Errorf("dur = %v, want 4", ev["dur"])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Spans) != len(tr.Spans) {
		t.Fatalf("spans = %d, want %d", len(got.Spans), len(tr.Spans))
	}
	for i := range tr.Spans {
		if got.Spans[i] != tr.Spans[i] {
			t.Errorf("span %d = %+v, want %+v", i, got.Spans[i], tr.Spans[i])
		}
	}
	if got.Makespan != tr.Makespan || got.NumProcs != tr.NumProcs {
		t.Errorf("header fields: makespan %d/%d procs %d/%d",
			got.Makespan, tr.Makespan, got.NumProcs, tr.NumProcs)
	}
}

func TestReadCSVRejectsJunk(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("accepted empty input")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("accepted wrong header")
	}
	if _, err := ReadCSV(strings.NewReader("proc,worker,task,sub,start,end\n1,2,x,0,0,1\n")); err == nil {
		t.Error("accepted non-numeric field")
	}
}
