package flusim

import (
	"context"
	"testing"
	"testing/quick"

	"tempart/internal/mesh"
	"tempart/internal/partition"
	"tempart/internal/taskgraph"
	"tempart/internal/temporal"
)

// buildTG builds a task graph for a strip mesh with the given levels/domains.
func buildTG(t *testing.T, levels []temporal.Level, part []int32, k int) *taskgraph.TaskGraph {
	t.Helper()
	m := mesh.Strip(levels)
	tg, err := taskgraph.Build(m, part, k, taskgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

func TestSimulateSerialChain(t *testing.T) {
	// Single domain, one proc, one worker: makespan = total work.
	tg := buildTG(t, []temporal.Level{0, 0, 0, 0}, []int32{0, 0, 0, 0}, 1)
	res, err := Simulate(tg, []int32{0}, Config{
		Cluster: Cluster{NumProcs: 1, WorkersPerProc: 1}, RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != res.TotalWork {
		t.Errorf("Makespan = %d, want TotalWork %d on 1 worker", res.Makespan, res.TotalWork)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.CheckNoWorkerOverlap(); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateRespectsLowerBounds(t *testing.T) {
	m := mesh.Cylinder(0.0005)
	r, err := partition.PartitionMesh(context.Background(), m, 4, partition.SCOC, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tg, err := taskgraph.Build(m, r.Part, 4, taskgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(tg, BlockMap(4, 2), Config{
		Cluster: Cluster{NumProcs: 2, WorkersPerProc: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < res.CriticalPath {
		t.Errorf("Makespan %d < critical path %d", res.Makespan, res.CriticalPath)
	}
	lb := res.TotalWork / int64(2*4)
	if res.Makespan < lb {
		t.Errorf("Makespan %d < work bound %d", res.Makespan, lb)
	}
}

func TestUnboundedEqualsCriticalPathOneProc(t *testing.T) {
	// With 1 process and unlimited cores and eager dispatch, the makespan is
	// exactly the DAG's critical path.
	m := mesh.Cube(0.02)
	part := make([]int32, m.NumCells())
	tg, err := taskgraph.Build(m, part, 1, taskgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(tg, []int32{0}, Config{
		Cluster: Cluster{NumProcs: 1, WorkersPerProc: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != res.CriticalPath {
		t.Errorf("unbounded 1-proc makespan %d != critical path %d", res.Makespan, res.CriticalPath)
	}
}

func TestUnboundedCoresStillIdle(t *testing.T) {
	// The paper's Figure 6 argument: with SC_OC-style segregated domains and
	// unbounded cores, processes still idle because of the graph's shape.
	levels := make([]temporal.Level, 64)
	for i := range levels {
		if i < 16 {
			levels[i] = 0
		} else {
			levels[i] = 2
		}
	}
	part := make([]int32, 64)
	for i := range part {
		part[i] = int32(i / 32) // domain 0: all τ0+some τ2; domain 1: all τ2
	}
	tg := buildTG(t, levels, part, 2)
	res, err := Simulate(tg, BlockMap(2, 2), Config{
		Cluster: Cluster{NumProcs: 2, WorkersPerProc: 0}, RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Proc 1 (only τ2 cells) is active only in subiteration 0; it must be
	// idle for part of the execution while proc 0 finishes subs 1..3.
	iv := res.Trace.ProcActiveIntervals()
	var active1 int64
	for _, x := range iv[1] {
		active1 += x[1] - x[0]
	}
	if active1 >= res.Makespan {
		t.Errorf("segregated proc has no idle window: active %d of %d", active1, res.Makespan)
	}
}

func TestEagerOptimalWhenUnbounded(t *testing.T) {
	// With unbounded cores, no strategy can beat eager.
	m := mesh.Cylinder(0.0005)
	r, err := partition.PartitionMesh(context.Background(), m, 8, partition.SCOC, partition.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tg, err := taskgraph.Build(m, r.Part, 8, taskgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pm := BlockMap(8, 4)
	base, err := Simulate(tg, pm, Config{Cluster: Cluster{NumProcs: 4}})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{LIFO, CriticalPathFirst, RandomOrder} {
		res, err := Simulate(tg, pm, Config{Cluster: Cluster{NumProcs: 4}, Strategy: s, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan < base.Makespan {
			t.Errorf("%v beat eager with unbounded cores: %d < %d", s, res.Makespan, base.Makespan)
		}
	}
}

func TestStrategiesAllComplete(t *testing.T) {
	m := mesh.Cube(0.05)
	r, err := partition.PartitionMesh(context.Background(), m, 6, partition.MCTL, partition.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tg, err := taskgraph.Build(m, r.Part, 6, taskgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pm := BlockMap(6, 3)
	for _, s := range []Strategy{Eager, LIFO, CriticalPathFirst, RandomOrder} {
		res, err := Simulate(tg, pm, Config{
			Cluster: Cluster{NumProcs: 3, WorkersPerProc: 2}, Strategy: s, Seed: 11, RecordTrace: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(res.Trace.Spans) != tg.NumTasks() {
			t.Errorf("%v: %d spans for %d tasks", s, len(res.Trace.Spans), tg.NumTasks())
		}
		if err := res.Trace.CheckNoWorkerOverlap(); err != nil {
			t.Errorf("%v: %v", s, err)
		}
	}
}

func TestBusyConservation(t *testing.T) {
	// Busy time summed over procs equals total work, for any worker count.
	m := mesh.Cylinder(0.0005)
	r, err := partition.PartitionMesh(context.Background(), m, 4, partition.MCTL, partition.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	tg, err := taskgraph.Build(m, r.Part, 4, taskgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 0} {
		res, err := Simulate(tg, BlockMap(4, 2), Config{
			Cluster: Cluster{NumProcs: 2, WorkersPerProc: w},
		})
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, b := range res.BusyPerProc {
			sum += b
		}
		if sum != res.TotalWork {
			t.Errorf("workers=%d: busy sum %d != total work %d", w, sum, res.TotalWork)
		}
	}
}

func TestMoreWorkersNeverSlower(t *testing.T) {
	// Eager FIFO is not theoretically monotone, but on these graphs doubling
	// workers should never slow things down; treat regressions as bugs.
	m := mesh.Cube(0.05)
	r, err := partition.PartitionMesh(context.Background(), m, 8, partition.SCOC, partition.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tg, err := taskgraph.Build(m, r.Part, 8, taskgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pm := BlockMap(8, 4)
	prev := int64(1 << 62)
	for _, w := range []int{1, 2, 4, 8} {
		res, err := Simulate(tg, pm, Config{Cluster: Cluster{NumProcs: 4, WorkersPerProc: w}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan > prev {
			t.Errorf("workers=%d makespan %d worse than fewer workers %d", w, res.Makespan, prev)
		}
		prev = res.Makespan
	}
}

func TestBlockAndRoundRobinMaps(t *testing.T) {
	bm := BlockMap(8, 4)
	want := []int32{0, 0, 1, 1, 2, 2, 3, 3}
	for i := range want {
		if bm[i] != want[i] {
			t.Fatalf("BlockMap = %v, want %v", bm, want)
		}
	}
	rr := RoundRobinMap(5, 2)
	wantRR := []int32{0, 1, 0, 1, 0}
	for i := range wantRR {
		if rr[i] != wantRR[i] {
			t.Fatalf("RoundRobinMap = %v, want %v", rr, wantRR)
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	tg := buildTG(t, []temporal.Level{0, 0}, []int32{0, 0}, 1)
	if _, err := Simulate(tg, []int32{0}, Config{Cluster: Cluster{NumProcs: 0}}); err == nil {
		t.Error("accepted zero processes")
	}
	if _, err := Simulate(tg, []int32{}, Config{Cluster: Cluster{NumProcs: 1}}); err == nil {
		t.Error("accepted missing domain map")
	}
	if _, err := Simulate(tg, []int32{5}, Config{Cluster: Cluster{NumProcs: 1}}); err == nil {
		t.Error("accepted out-of-range domain map")
	}
}

func TestStrategyStringRoundTrip(t *testing.T) {
	for _, s := range []Strategy{Eager, LIFO, CriticalPathFirst, RandomOrder} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v: %v %v", s, got, err)
		}
	}
	if _, err := ParseStrategy("x"); err == nil {
		t.Error("ParseStrategy accepted junk")
	}
}

// Property: determinism — same config, same makespan and span count.
func TestSimulateDeterministicProperty(t *testing.T) {
	f := func(seed int64, workers uint8) bool {
		m := mesh.Cube(0.02)
		r, err := partition.PartitionMesh(context.Background(), m, 4, partition.MCTL, partition.Options{Seed: seed})
		if err != nil {
			return false
		}
		tg, err := taskgraph.Build(m, r.Part, 4, taskgraph.Options{})
		if err != nil {
			return false
		}
		cfg := Config{
			Cluster: Cluster{NumProcs: 2, WorkersPerProc: 1 + int(workers%4)},
			Seed:    seed, Strategy: RandomOrder,
		}
		a, err1 := Simulate(tg, BlockMap(4, 2), cfg)
		b, err2 := Simulate(tg, BlockMap(4, 2), cfg)
		return err1 == nil && err2 == nil && a.Makespan == b.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestMCTLSpeedupOnSim is the headline result in miniature: on the CYLINDER
// mesh, FLUSIM should show MC_TL beating SC_OC by a wide margin.
func TestMCTLSpeedupOnSim(t *testing.T) {
	m := mesh.Cylinder(0.002)
	k, procs, workers := 16, 4, 8
	makespan := func(strat partition.Strategy) int64 {
		r, err := partition.PartitionMesh(context.Background(), m, k, strat, partition.Options{Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		tg, err := taskgraph.Build(m, r.Part, k, taskgraph.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(tg, BlockMap(k, procs), Config{
			Cluster: Cluster{NumProcs: procs, WorkersPerProc: workers},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	sc := makespan(partition.SCOC)
	mc := makespan(partition.MCTL)
	if mc >= sc {
		t.Errorf("MC_TL makespan %d not better than SC_OC %d", mc, sc)
	}
	t.Logf("FLUSIM makespans: SC_OC=%d MC_TL=%d ratio=%.2f", sc, mc, float64(sc)/float64(mc))
}

func TestCommLatencyZeroMatchesBaseline(t *testing.T) {
	m := mesh.Cube(0.05)
	r, err := partition.PartitionMesh(context.Background(), m, 8, partition.MCTL, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tg, err := taskgraph.Build(m, r.Part, 8, taskgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pm := BlockMap(8, 4)
	base, err := Simulate(tg, pm, Config{Cluster: Cluster{NumProcs: 4, WorkersPerProc: 2}})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Simulate(tg, pm, Config{Cluster: Cluster{NumProcs: 4, WorkersPerProc: 2}, CommLatency: 0})
	if err != nil {
		t.Fatal(err)
	}
	if base.Makespan != zero.Makespan {
		t.Errorf("zero latency changed makespan: %d vs %d", base.Makespan, zero.Makespan)
	}
}

func TestCommLatencyMonotone(t *testing.T) {
	m := mesh.Cube(0.05)
	r, err := partition.PartitionMesh(context.Background(), m, 8, partition.MCTL, partition.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tg, err := taskgraph.Build(m, r.Part, 8, taskgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pm := BlockMap(8, 4)
	prev := int64(-1)
	for _, lat := range []int64{0, 50, 500, 5000} {
		res, err := Simulate(tg, pm, Config{
			Cluster: Cluster{NumProcs: 4, WorkersPerProc: 2}, CommLatency: lat,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan < prev {
			t.Errorf("latency %d decreased makespan: %d < %d", lat, res.Makespan, prev)
		}
		prev = res.Makespan
		// All tasks still complete.
		var busy int64
		for _, b := range res.BusyPerProc {
			busy += b
		}
		if busy != res.TotalWork {
			t.Errorf("latency %d lost work: busy %d != total %d", lat, busy, res.TotalWork)
		}
	}
}

func TestCommLatencySingleProcUnaffected(t *testing.T) {
	// All domains on one process: no cross edges, latency is irrelevant.
	m := mesh.Cube(0.02)
	r, err := partition.PartitionMesh(context.Background(), m, 4, partition.SCOC, partition.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tg, err := taskgraph.Build(m, r.Part, 4, taskgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pm := []int32{0, 0, 0, 0}
	a, _ := Simulate(tg, pm, Config{Cluster: Cluster{NumProcs: 1, WorkersPerProc: 2}})
	b, _ := Simulate(tg, pm, Config{Cluster: Cluster{NumProcs: 1, WorkersPerProc: 2}, CommLatency: 10000})
	if a.Makespan != b.Makespan {
		t.Errorf("latency affected single-process run: %d vs %d", a.Makespan, b.Makespan)
	}
}
