package flusim

import (
	"testing"

	"tempart/internal/mesh"
	"tempart/internal/taskgraph"
)

// BenchmarkSimulate measures steady-state scheduling throughput of a warmed,
// reusable Simulator on a paper-shaped graph (CYLINDER, 128 domains, 16×8
// cluster). allocs/op should stay at zero — that is the Simulator's contract.
func BenchmarkSimulate(b *testing.B) {
	m := mesh.Cylinder(0.005)
	part := make([]int32, m.NumCells())
	for i := range part {
		part[i] = int32(i % 128)
	}
	tg, err := taskgraph.Build(m, part, 128, taskgraph.Options{})
	if err != nil {
		b.Fatal(err)
	}
	procOf := BlockMap(128, 16)
	for _, strat := range []Strategy{Eager, LIFO, CriticalPathFirst, RandomOrder} {
		b.Run(strat.String(), func(b *testing.B) {
			sim := NewSimulator()
			var res Result
			cfg := Config{
				Cluster:  Cluster{NumProcs: 16, WorkersPerProc: 8},
				Strategy: strat, Seed: 1,
			}
			if err := sim.SimulateInto(&res, tg, procOf, cfg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sim.SimulateInto(&res, tg, procOf, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tg.NumTasks())*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
		})
	}
}
