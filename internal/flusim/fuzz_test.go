package flusim

import (
	"testing"

	"tempart/internal/taskgraph"
	"tempart/internal/temporal"
)

// fuzzGraph decodes an arbitrary byte string into a small random DAG: byte
// triples (cost, degree, edge-seed) define each task; predecessors are drawn
// deterministically from earlier tasks, so IDs stay topological.
func fuzzGraph(data []byte) *taskgraph.TaskGraph {
	n := len(data) / 3
	if n < 1 {
		return nil
	}
	if n > 64 {
		n = 64
	}
	scheme, err := temporal.NewScheme(0)
	if err != nil {
		panic(err)
	}
	tg := &taskgraph.TaskGraph{NumDomains: 4, Scheme: scheme}
	predStart := []int32{0}
	var preds []int32
	for t := 0; t < n; t++ {
		cost := int64(data[3*t]%16) + 1
		deg := int(data[3*t+1] % 4)
		if deg > t {
			deg = t
		}
		seed := uint32(data[3*t+2])
		// deg distinct predecessors among [0, t), sorted ascending.
		start := len(preds)
		for k := 0; k < deg; k++ {
			seed = seed*1664525 + 1013904223
			p := int32(seed % uint32(t))
			dup := false
			for _, q := range preds[start:] {
				if q == p {
					dup = true
					break
				}
			}
			if !dup {
				preds = append(preds, p)
			}
		}
		own := preds[start:]
		for i := 1; i < len(own); i++ {
			for j := i; j > 0 && own[j-1] > own[j]; j-- {
				own[j-1], own[j] = own[j], own[j-1]
			}
		}
		predStart = append(predStart, int32(len(preds)))
		tg.Tasks = append(tg.Tasks, taskgraph.Task{
			ID: int32(t), Domain: int32(t % 4), NumObjects: 1, Cost: cost,
		})
	}
	tg.PredStart, tg.Preds = predStart, preds
	return tg
}

// referenceMakespan is a naive list scheduler used as an oracle: repeatedly
// pick, among tasks whose predecessors have all finished, the one with the
// smallest release time (FIFO on ties by id), and run it immediately on its
// process — cores unbounded, no communication. With unbounded cores every
// task starts the moment its last predecessor finishes, so the makespan is
// the critical path, independently of the pick order.
func referenceMakespan(tg *taskgraph.TaskGraph) int64 {
	n := tg.NumTasks()
	finish := make([]int64, n)
	done := make([]bool, n)
	var makespan int64
	for scheduled := 0; scheduled < n; scheduled++ {
		best := -1
		var bestStart int64
		for t := 0; t < n; t++ {
			if done[t] {
				continue
			}
			ready := true
			var start int64
			for _, p := range tg.PredsOf(int32(t)) {
				if !done[p] {
					ready = false
					break
				}
				if finish[p] > start {
					start = finish[p]
				}
			}
			if !ready {
				continue
			}
			if best == -1 || start < bestStart {
				best, bestStart = t, start
			}
		}
		if best == -1 {
			panic("reference: no ready task (cycle?)")
		}
		finish[best] = bestStart + tg.Tasks[best].Cost
		done[best] = true
		if finish[best] > makespan {
			makespan = finish[best]
		}
	}
	return makespan
}

// FuzzSimulateVsReference checks Simulate against the naive oracle on random
// small DAGs: with unbounded cores and Eager scheduling the makespan must
// equal both the oracle's and the graph's critical path, and the recorded
// trace must validate. Bounded runs must still validate and respect the
// critical-path lower bound.
func FuzzSimulateVsReference(f *testing.F) {
	f.Add([]byte{1, 0, 0, 3, 1, 7, 5, 2, 9, 2, 3, 4})
	f.Add([]byte{9, 1, 1, 9, 1, 2, 9, 1, 3, 9, 1, 4, 9, 1, 5})
	f.Add([]byte{255, 255, 255, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		tg := fuzzGraph(data)
		if tg == nil {
			return
		}
		procOf := BlockMap(tg.NumDomains, 2)

		res, err := Simulate(tg, procOf, Config{
			Cluster: Cluster{NumProcs: 2}, Strategy: Eager, RecordTrace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := referenceMakespan(tg)
		if res.Makespan != want {
			t.Fatalf("unbounded Eager makespan %d, reference %d", res.Makespan, want)
		}
		if cp := tg.CriticalPath(); res.Makespan != cp {
			t.Fatalf("unbounded Eager makespan %d, critical path %d", res.Makespan, cp)
		}
		if err := res.Trace.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := res.Trace.CheckNoWorkerOverlap(); err != nil {
			t.Fatal(err)
		}

		for _, s := range []Strategy{Eager, LIFO, CriticalPathFirst, RandomOrder} {
			bounded, err := Simulate(tg, procOf, Config{
				Cluster:  Cluster{NumProcs: 2, WorkersPerProc: 1},
				Strategy: s, Seed: 3, RecordTrace: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if bounded.Makespan < want {
				t.Fatalf("%v bounded makespan %d below critical path %d", s, bounded.Makespan, want)
			}
			if err := bounded.Trace.Validate(); err != nil {
				t.Fatal(err)
			}
			if err := bounded.Trace.CheckNoWorkerOverlap(); err != nil {
				t.Fatal(err)
			}
		}
	})
}
