package flusim_test

import (
	"fmt"

	"tempart/internal/flusim"
	"tempart/internal/mesh"
	"tempart/internal/taskgraph"
	"tempart/internal/temporal"
)

// ExampleSimulate schedules a tiny two-domain task graph on a 2-process
// cluster and checks the classical bounds.
func ExampleSimulate() {
	m := mesh.Strip([]temporal.Level{0, 0, 1, 1})
	tg, _ := taskgraph.Build(m, []int32{0, 0, 1, 1}, 2, taskgraph.Options{})

	res, _ := flusim.Simulate(tg, flusim.BlockMap(2, 2), flusim.Config{
		Cluster: flusim.Cluster{NumProcs: 2, WorkersPerProc: 1},
	})
	fmt.Println("tasks:", tg.NumTasks())
	fmt.Println("work:", res.TotalWork)
	fmt.Println("makespan >= critical path:", res.Makespan >= res.CriticalPath)
	// Output:
	// tasks: 11
	// work: 14
	// makespan >= critical path: true
}
