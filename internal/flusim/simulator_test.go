package flusim

import (
	"sync"
	"testing"

	"tempart/internal/mesh"
	"tempart/internal/taskgraph"
)

func simTestGraph(t testing.TB) *taskgraph.TaskGraph {
	t.Helper()
	m := mesh.Cylinder(0.002)
	part := make([]int32, m.NumCells())
	for i := range part {
		part[i] = int32(i % 16)
	}
	tg, err := taskgraph.Build(m, part, 16, taskgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

// TestSimulatorMatchesSimulate pins the reusable-Simulator path against the
// one-shot wrapper for every strategy, with and without comm latency.
func TestSimulatorMatchesSimulate(t *testing.T) {
	tg := simTestGraph(t)
	procOf := BlockMap(16, 4)
	sim := NewSimulator()
	var res Result
	for _, lat := range []int64{0, 7} {
		for _, s := range []Strategy{Eager, LIFO, CriticalPathFirst, RandomOrder} {
			cfg := Config{
				Cluster:  Cluster{NumProcs: 4, WorkersPerProc: 3},
				Strategy: s, Seed: 42, RecordTrace: true, CommLatency: lat,
			}
			want, err := Simulate(tg, procOf, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := sim.SimulateInto(&res, tg, procOf, cfg); err != nil {
				t.Fatal(err)
			}
			if res.Makespan != want.Makespan {
				t.Fatalf("%v lat=%d: SimulateInto makespan %d, Simulate %d",
					s, lat, res.Makespan, want.Makespan)
			}
			if len(res.Trace.Spans) != len(want.Trace.Spans) {
				t.Fatalf("%v lat=%d: %d spans, want %d", s, lat, len(res.Trace.Spans), len(want.Trace.Spans))
			}
			for i := range want.Trace.Spans {
				if res.Trace.Spans[i] != want.Trace.Spans[i] {
					t.Fatalf("%v lat=%d: span %d = %+v, want %+v",
						s, lat, i, res.Trace.Spans[i], want.Trace.Spans[i])
				}
			}
			for p := range want.BusyPerProc {
				if res.BusyPerProc[p] != want.BusyPerProc[p] {
					t.Fatalf("%v lat=%d: busy[%d] = %d, want %d",
						s, lat, p, res.BusyPerProc[p], want.BusyPerProc[p])
				}
			}
		}
	}
}

// TestSimulatorReuseAllocationFree is the acceptance-criterion assertion:
// once warmed, repeated SimulateInto calls perform zero allocations.
func TestSimulatorReuseAllocationFree(t *testing.T) {
	tg := simTestGraph(t)
	procOf := BlockMap(16, 4)
	for _, s := range []Strategy{Eager, LIFO, CriticalPathFirst, RandomOrder} {
		sim := NewSimulator()
		var res Result
		cfg := Config{Cluster: Cluster{NumProcs: 4, WorkersPerProc: 3}, Strategy: s, Seed: 9}
		if err := sim.SimulateInto(&res, tg, procOf, cfg); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if err := sim.SimulateInto(&res, tg, procOf, cfg); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("strategy %v: %.1f allocs per warmed SimulateInto, want 0", s, allocs)
		}
	}
}

// TestBottomLevelsOnlyForCPF is the satellite regression test: Eager and
// LIFO (and RandomOrder) runs must never allocate the bottom-level array.
func TestBottomLevelsOnlyForCPF(t *testing.T) {
	tg := simTestGraph(t)
	procOf := BlockMap(16, 4)
	for _, s := range []Strategy{Eager, LIFO, RandomOrder} {
		sim := NewSimulator()
		cfg := Config{Cluster: Cluster{NumProcs: 4, WorkersPerProc: 2}, Strategy: s}
		if _, err := sim.Simulate(tg, procOf, cfg); err != nil {
			t.Fatal(err)
		}
		if sim.bottomLevelsAllocated() {
			t.Errorf("strategy %v allocated bottom levels", s)
		}
	}
	sim := NewSimulator()
	cfg := Config{Cluster: Cluster{NumProcs: 4, WorkersPerProc: 2}, Strategy: CriticalPathFirst}
	if _, err := sim.Simulate(tg, procOf, cfg); err != nil {
		t.Fatal(err)
	}
	if !sim.bottomLevelsAllocated() {
		t.Error("CriticalPathFirst did not allocate bottom levels")
	}
}

// TestRandomOrderConcurrentReproducible runs many concurrent RandomOrder
// simulations over one shared graph: each must reproduce the single-threaded
// makespan for its seed (race-free per-Simulator rngs; run under -race).
func TestRandomOrderConcurrentReproducible(t *testing.T) {
	tg := simTestGraph(t)
	procOf := BlockMap(16, 4)
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	want := make([]int64, len(seeds))
	for i, seed := range seeds {
		res, err := Simulate(tg, procOf, Config{
			Cluster: Cluster{NumProcs: 4, WorkersPerProc: 2}, Strategy: RandomOrder, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Makespan
	}
	var wg sync.WaitGroup
	got := make([]int64, len(seeds))
	errs := make([]error, len(seeds))
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			res, err := NewSimulator().Simulate(tg, procOf, Config{
				Cluster: Cluster{NumProcs: 4, WorkersPerProc: 2}, Strategy: RandomOrder, Seed: seed,
			})
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = res.Makespan
		}(i, seed)
	}
	wg.Wait()
	for i := range seeds {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("seed %d: concurrent makespan %d, single-threaded %d", seeds[i], got[i], want[i])
		}
	}
}

// TestTraceToggleReuse checks that a Simulator/Result pair can alternate
// between traced and untraced runs without leaking stale spans.
func TestTraceToggleReuse(t *testing.T) {
	tg := simTestGraph(t)
	procOf := BlockMap(16, 4)
	sim := NewSimulator()
	var res Result
	cfg := Config{Cluster: Cluster{NumProcs: 4, WorkersPerProc: 2}, RecordTrace: true}
	if err := sim.SimulateInto(&res, tg, procOf, cfg); err != nil {
		t.Fatal(err)
	}
	spans := len(res.Trace.Spans)
	if spans != tg.NumTasks() {
		t.Fatalf("traced run recorded %d spans, want %d", spans, tg.NumTasks())
	}
	cfg.RecordTrace = false
	if err := sim.SimulateInto(&res, tg, procOf, cfg); err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("untraced run left res.Trace non-nil")
	}
	cfg.RecordTrace = true
	if err := sim.SimulateInto(&res, tg, procOf, cfg); err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Spans) != spans {
		t.Fatalf("re-traced run recorded %d spans, want %d", len(res.Trace.Spans), spans)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
}
