// Package flusim reimplements the paper's FLUSIM submodule: a discrete-event
// simulator that emulates one FLUSEPA iteration by scheduling a task graph
// onto an idealised cluster. Like the original, it models no communication
// or runtime overheads — its purpose is to expose the idleness intrinsic to
// the task graph's shape (paper §III-A), which is exactly the property the
// MC_TL partitioning strategy targets.
//
// Inputs mirror the paper's: a cluster configuration (processes × workers per
// process, with an unbounded-core mode), the task graph generated from a mesh
// + domain decomposition, the domain→process mapping, and a scheduling
// strategy. Output is the makespan plus a full execution trace.
//
// The simulator core is allocation-lean: a reusable Simulator keeps every
// per-run buffer (event queue, ready queues, in-degrees, trace spans) and a
// SimulateInto entry point rewrites a caller-owned Result, so scoring many
// (partition, mapping, strategy) tuples allocates nothing in steady state.
// The event queue is a flat 4-ary heap ordered by (time, task) — the same
// total order the previous container/heap implementation used, so makespans
// and traces are bit-identical — without interface boxing.
package flusim

import (
	"fmt"
	"math/rand"

	"tempart/internal/taskgraph"
	"tempart/internal/trace"
)

// Cluster describes the emulated machine.
type Cluster struct {
	// NumProcs is the number of MPI-process analogues.
	NumProcs int
	// WorkersPerProc is the number of cores per process; 0 means unbounded
	// (the paper's idealised configuration of Figure 6).
	WorkersPerProc int
}

// Unbounded reports whether the cluster has unlimited cores per process.
func (c Cluster) Unbounded() bool { return c.WorkersPerProc <= 0 }

// Strategy selects how a process picks among its ready tasks.
type Strategy int

const (
	// Eager runs ready tasks FIFO — optimal when cores are unbounded, and
	// the paper's reference strategy.
	Eager Strategy = iota
	// LIFO runs the most recently released ready task first.
	LIFO
	// CriticalPathFirst prioritises tasks by bottom level (longest
	// downstream cost path), an HEFT-flavoured list scheduler.
	CriticalPathFirst
	// RandomOrder picks uniformly among ready tasks (seeded); a lower
	// bound on scheduling cleverness.
	RandomOrder
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Eager:
		return "eager"
	case LIFO:
		return "lifo"
	case CriticalPathFirst:
		return "cpf"
	case RandomOrder:
		return "random"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy converts a label to a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "eager":
		return Eager, nil
	case "lifo":
		return LIFO, nil
	case "cpf":
		return CriticalPathFirst, nil
	case "random":
		return RandomOrder, nil
	}
	return 0, fmt.Errorf("flusim: unknown strategy %q", s)
}

// Config parameterises a simulation.
type Config struct {
	Cluster Cluster
	// Strategy is the per-process ready-queue policy. Defaults to Eager.
	Strategy Strategy
	// Seed drives RandomOrder.
	Seed int64
	// RecordTrace enables span recording in the result; leave it off for
	// large parameter sweeps where only the makespan matters.
	RecordTrace bool
	// CommLatency delays every cross-process dependency edge by this many
	// time units (data transfer between MPI processes). Zero reproduces the
	// paper's FLUSIM, which models no communication; a positive value
	// enables the communication-aware ablation that quantifies the §VII
	// dual-phase trade-off.
	CommLatency int64
}

// Result is the outcome of a simulation.
type Result struct {
	Makespan int64
	Trace    *trace.Trace
	// BusyPerProc is each process's total computation time.
	BusyPerProc []int64
	// CriticalPath and TotalWork are the two classical lower bounds:
	// Makespan ≥ CriticalPath and Makespan ≥ TotalWork/totalCores.
	CriticalPath int64
	TotalWork    int64
}

// BlockMap assigns numDomains domains to numProcs processes in contiguous
// blocks, the mapping FLUSEPA uses after partitioning (domain d → process
// d·P/D).
func BlockMap(numDomains, numProcs int) []int32 {
	out := make([]int32, numDomains)
	for d := 0; d < numDomains; d++ {
		out[d] = int32(d * numProcs / numDomains)
	}
	return out
}

// RoundRobinMap assigns domain d to process d mod numProcs.
func RoundRobinMap(numDomains, numProcs int) []int32 {
	out := make([]int32, numDomains)
	for d := 0; d < numDomains; d++ {
		out[d] = int32(d % numProcs)
	}
	return out
}

// Simulate executes the task graph on the configured cluster and returns the
// makespan and trace. Tasks are pinned to the process owning their domain;
// within a process any free worker may run them. It is a thin wrapper over a
// throwaway Simulator; callers scoring many configurations should hold a
// Simulator and use SimulateInto.
func Simulate(tg *taskgraph.TaskGraph, procOfDomain []int32, cfg Config) (*Result, error) {
	return NewSimulator().Simulate(tg, procOfDomain, cfg)
}

// Simulator owns the scratch state of the discrete-event loop so repeated
// simulations reuse every buffer. A Simulator is not safe for concurrent
// use; use one per goroutine (each holds its own RandomOrder rng, so
// concurrent simulations across Simulators are race-free and reproducible).
type Simulator struct {
	procOf []int32
	indeg  []int32
	blevel []int64
	procs  []procState
	events eventQueue
	touch  []int32
	src    rand.Source
	rng    *rand.Rand
}

// NewSimulator returns an empty Simulator; buffers grow on first use and are
// retained across runs.
func NewSimulator() *Simulator {
	src := rand.NewSource(1)
	return &Simulator{src: src, rng: rand.New(src)}
}

// Simulate runs the configuration and returns a fresh Result.
func (sim *Simulator) Simulate(tg *taskgraph.TaskGraph, procOfDomain []int32, cfg Config) (*Result, error) {
	res := &Result{}
	if err := sim.SimulateInto(res, tg, procOfDomain, cfg); err != nil {
		return nil, err
	}
	return res, nil
}

// SimulateInto runs the configuration and rewrites res in place, reusing its
// BusyPerProc and Trace storage; with warmed buffers the call performs no
// allocations. When cfg.RecordTrace is false res.Trace is set to nil, so a
// later traced run on the same Result starts a fresh trace.
func (sim *Simulator) SimulateInto(res *Result, tg *taskgraph.TaskGraph, procOfDomain []int32, cfg Config) error {
	if cfg.Cluster.NumProcs < 1 {
		return fmt.Errorf("flusim: NumProcs = %d", cfg.Cluster.NumProcs)
	}
	if len(procOfDomain) < tg.NumDomains {
		return fmt.Errorf("flusim: %d domain mappings for %d domains", len(procOfDomain), tg.NumDomains)
	}
	for d := 0; d < tg.NumDomains; d++ {
		if p := procOfDomain[d]; p < 0 || int(p) >= cfg.Cluster.NumProcs {
			return fmt.Errorf("flusim: domain %d mapped to process %d of %d", d, p, cfg.Cluster.NumProcs)
		}
	}

	n := tg.NumTasks()
	sim.procOf = growInt32(sim.procOf, n)
	sim.indeg = growInt32(sim.indeg, n)
	procOf, indeg := sim.procOf, sim.indeg
	for i := 0; i < n; i++ {
		procOf[i] = procOfDomain[tg.Tasks[i].Domain]
		indeg[i] = int32(len(tg.PredsOf(int32(i))))
	}

	// Priorities for CriticalPathFirst: bottom levels. Other strategies
	// never touch (or allocate) them.
	var blevel []int64
	if cfg.Strategy == CriticalPathFirst {
		sim.blevel = growInt64(sim.blevel, n)
		blevel = sim.blevel
		bottomLevelsInto(blevel, tg)
	}
	rng := sim.rng
	if cfg.Strategy == RandomOrder {
		// Reseeding the retained source reproduces exactly the stream of a
		// fresh rand.New(rand.NewSource(cfg.Seed)) without allocating.
		sim.src.Seed(cfg.Seed)
	}

	np := cfg.Cluster.NumProcs
	if cap(sim.procs) < np {
		sim.procs = make([]procState, np)
	}
	sim.procs = sim.procs[:np]
	procs := sim.procs
	for p := range procs {
		ps := &procs[p]
		ps.free = cfg.Cluster.WorkersPerProc
		if cfg.Cluster.Unbounded() {
			ps.free = -1 // sentinel: unlimited
		}
		ps.idleWorkers = ps.idleWorkers[:0]
		ps.nextWorker = 0
		ps.ready.reset()
	}

	events := &sim.events
	events.reset()

	res.BusyPerProc = growInt64(res.BusyPerProc, np)
	busy := res.BusyPerProc
	tr := res.Trace
	if tr == nil {
		if cfg.RecordTrace {
			tr = &trace.Trace{}
		}
	} else {
		tr.Spans = tr.Spans[:0]
	}
	if tr != nil {
		tr.NumProcs = np
		tr.WorkersPerProc = cfg.Cluster.WorkersPerProc
		tr.Makespan = 0
	}

	startTask := func(t int32, now int64) {
		p := procOf[t]
		ps := &procs[p]
		var worker int32
		if ps.free > 0 {
			ps.free--
			worker = ps.takeWorker()
		} else if ps.free == 0 {
			panic("flusim: started task with no free worker")
		} else {
			worker = ps.nextVirtualWorker()
		}
		end := now + tg.Tasks[t].Cost
		events.push(simEvent{time: end, task: t, worker: worker})
		if cfg.RecordTrace {
			tr.Spans = append(tr.Spans, trace.Span{
				Proc: p, Worker: worker, Task: t,
				Sub: tg.Tasks[t].Sub, Start: now, End: end,
			})
		}
		busy[p] += tg.Tasks[t].Cost
	}

	dispatch := func(p int32, now int64) {
		ps := &procs[p]
		for (ps.free != 0) && ps.ready.len() > 0 {
			t := ps.ready.pop(cfg.Strategy, blevel, rng)
			startTask(t, now)
		}
	}

	// Seed initial ready tasks.
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			procs[procOf[i]].ready.push(int32(i))
		}
	}
	for p := range procs {
		dispatch(int32(p), 0)
	}

	var now int64
	completed := 0
	touched := sim.touch[:0]
	for events.len() > 0 {
		ev := events.pop()
		now = ev.time
		touched = touched[:0]

		if ev.kind == evArrival {
			// A communicated dependency edge arrived at ev.task's process.
			indeg[ev.task]--
			if indeg[ev.task] == 0 {
				p := procOf[ev.task]
				procs[p].ready.push(ev.task)
				touched = append(touched, p)
			}
		} else {
			completed++
			p := procOf[ev.task]
			ps := &procs[p]
			if ps.free >= 0 {
				ps.free++
				ps.returnWorker(ev.worker)
			}
			touched = append(touched, p)
			// Release successors: same-process edges are instantaneous,
			// cross-process edges arrive after the communication latency.
			for _, s := range tg.SuccsOf(ev.task) {
				if cfg.CommLatency > 0 && procOf[s] != p {
					events.push(simEvent{time: now + cfg.CommLatency, task: s, kind: evArrival})
					continue
				}
				indeg[s]--
				if indeg[s] == 0 {
					procs[procOf[s]].ready.push(s)
					touched = append(touched, procOf[s])
				}
			}
		}
		for _, tp := range touched {
			dispatch(tp, now)
		}
	}
	sim.touch = touched[:0]
	if completed != n {
		return fmt.Errorf("flusim: deadlock — %d of %d tasks completed (cyclic dependencies?)", completed, n)
	}

	res.Makespan = now
	res.CriticalPath = tg.CriticalPath()
	res.TotalWork = tg.TotalWork()
	if cfg.RecordTrace {
		tr.Makespan = now
		res.Trace = tr
	} else {
		res.Trace = nil
	}
	return nil
}

// bottomLevelsAllocated reports whether the last run computed bottom levels
// (used by the CriticalPathFirst-only allocation regression test).
func (sim *Simulator) bottomLevelsAllocated() bool { return sim.blevel != nil }

// growInt32 returns a length-n slice reusing buf's storage when possible.
func growInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// growInt64 returns a zeroed length-n slice reusing buf's storage when
// possible.
func growInt64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// bottomLevelsInto computes each task's cost-weighted longest path to a sink
// into bl (len == NumTasks).
func bottomLevelsInto(bl []int64, tg *taskgraph.TaskGraph) {
	for t := tg.NumTasks() - 1; t >= 0; t-- {
		var best int64
		for _, s := range tg.SuccsOf(int32(t)) {
			if bl[s] > best {
				best = bl[s]
			}
		}
		bl[t] = best + tg.Tasks[t].Cost
	}
}

// bottomLevels computes each task's cost-weighted longest path to a sink.
func bottomLevels(tg *taskgraph.TaskGraph) []int64 {
	bl := make([]int64, tg.NumTasks())
	bottomLevelsInto(bl, tg)
	return bl
}

// procState tracks one process's free workers and ready queue.
type procState struct {
	// free is the number of idle workers, or -1 for unbounded.
	free int
	// idleWorkers recycles worker ids for bounded clusters.
	idleWorkers []int32
	nextWorker  int32
	ready       readyQueue
}

func (ps *procState) takeWorker() int32 {
	if k := len(ps.idleWorkers); k > 0 {
		w := ps.idleWorkers[k-1]
		ps.idleWorkers = ps.idleWorkers[:k-1]
		return w
	}
	w := ps.nextWorker
	ps.nextWorker++
	return w
}

func (ps *procState) returnWorker(w int32) {
	ps.idleWorkers = append(ps.idleWorkers, w)
}

func (ps *procState) nextVirtualWorker() int32 {
	w := ps.nextWorker
	ps.nextWorker++
	return w
}

// readyQueue holds ready task ids; pop order depends on the strategy. FIFO
// pops advance a head index (amortised O(1)); the other strategies use
// swap-removal since they don't rely on insertion order.
type readyQueue struct {
	tasks []int32
	head  int
}

func (q *readyQueue) len() int     { return len(q.tasks) - q.head }
func (q *readyQueue) push(t int32) { q.tasks = append(q.tasks, t) }
func (q *readyQueue) reset()       { q.tasks, q.head = q.tasks[:0], 0 }

func (q *readyQueue) pop(s Strategy, blevel []int64, rng *rand.Rand) int32 {
	live := q.tasks[q.head:]
	switch s {
	case Eager:
		t := live[0]
		q.head++
		if q.head == len(q.tasks) {
			q.tasks, q.head = q.tasks[:0], 0
		}
		return t
	case LIFO:
		t := live[len(live)-1]
		q.tasks = q.tasks[:len(q.tasks)-1]
		return t
	case CriticalPathFirst:
		idx := 0
		for i, t := range live {
			if blevel[t] > blevel[live[idx]] {
				idx = i
			}
		}
		t := live[idx]
		live[idx] = live[len(live)-1]
		q.tasks = q.tasks[:len(q.tasks)-1]
		return t
	case RandomOrder:
		idx := rng.Intn(len(live))
		t := live[idx]
		live[idx] = live[len(live)-1]
		q.tasks = q.tasks[:len(q.tasks)-1]
		return t
	}
	panic("flusim: unknown strategy")
}

// simEvent is either a task completion or the arrival of a communicated
// dependency edge.
type simEvent struct {
	time   int64
	task   int32
	worker int32
	kind   uint8
}

const (
	evCompletion uint8 = iota
	evArrival
)

// eventQueue is a flat 4-ary min-heap over (time, task). Equal-key events
// can only be duplicate arrivals for the same task at the same instant
// (a completion for a task never coexists with its arrivals, since the task
// cannot have started while arrivals are pending), so any heap with this
// comparator pops the one deterministic event sequence — the simulation is
// invariant to heap shape and to the old container/heap implementation.
type eventQueue struct {
	h []simEvent
}

func (q *eventQueue) len() int { return len(q.h) }
func (q *eventQueue) reset()   { q.h = q.h[:0] }
func eventLess(a, b simEvent) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.task < b.task
}

func (q *eventQueue) push(e simEvent) {
	q.h = append(q.h, e)
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(q.h[i], q.h[parent]) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *eventQueue) pop() simEvent {
	h := q.h
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	q.h = h[:last]
	h = q.h
	i := 0
	for {
		first := 4*i + 1
		if first >= len(h) {
			break
		}
		min := first
		end := first + 4
		if end > len(h) {
			end = len(h)
		}
		for c := first + 1; c < end; c++ {
			if eventLess(h[c], h[min]) {
				min = c
			}
		}
		if !eventLess(h[min], h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}
