package dist

import (
	"testing"

	"tempart/internal/mesh"
)

// TestExchangeAllocsPooled pins the halo-exchange allocation behavior: send
// payloads live in per-(proc, peer) buffers built once in New, so a phase's
// exchange allocates only its goroutine launches — nothing proportional to
// the number of exchange pairs. Before pooling, every exchange allocated one
// fresh payload slice per pair on top of that.
func TestExchangeAllocsPooled(t *testing.T) {
	m := mesh.Cylinder(0.001)
	s, _ := setup(t, m, 8)
	s.exchange() // warm: first exchange settles lazy runtime state

	pairs := 0
	for _, p := range s.procs {
		pairs += len(p.sendPlan)
	}
	// The bound must sit below the pair count to catch a reintroduced
	// per-pair payload allocation; verify the workload actually separates
	// the two regimes.
	maxAllocs := float64(5 * len(s.procs))
	if float64(pairs) <= maxAllocs {
		t.Fatalf("workload too small to discriminate: %d pairs <= %.0f allowed allocs", pairs, maxAllocs)
	}
	allocs := testing.AllocsPerRun(10, func() { s.exchange() })
	if allocs > maxAllocs {
		t.Fatalf("exchange allocates %.0f objects/op with %d procs and %d pairs, want <= %.0f (per-pair payloads must stay pooled)",
			allocs, len(s.procs), pairs, maxAllocs)
	}
}
