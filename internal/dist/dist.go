// Package dist emulates the distributed-memory execution of the production
// solver: every process owns an *extracted* domain mesh (own cells + one
// ghost layer, see mesh.ExtractDomain), holds a private finite-volume state
// over it, and refreshes its ghosts by explicit halo exchange over channels
// before every phase — the message-passing structure of FLUSEPA's MPI layer.
//
// Cut faces are computed redundantly by both adjacent processes (the
// standard owner-computes-own-side scheme): each process evaluates the same
// flux from the same inputs — its own cells plus exchanged ghost values —
// and drains only its own side's accumulator, so no flux messages are
// needed and global conservation holds exactly.
//
// Compared with the shared-memory task runtime (internal/runtime), this path
// is bulk-synchronous (one exchange per phase) rather than task-overlapped;
// it exists to validate that the decomposition machinery — extraction, halo
// construction, ghost refresh — reproduces the global solution, and to
// measure halo traffic directly.
package dist

import (
	"fmt"
	"sync"

	"tempart/internal/fv"
	"tempart/internal/mesh"
	"tempart/internal/temporal"
)

// Solver runs one process per domain.
type Solver struct {
	procs  []*proc
	scheme temporal.Scheme
	// BytesExchanged counts halo payload (8 bytes per ghost value refresh).
	BytesExchanged int64
}

// proc is one emulated MPI process.
type proc struct {
	id    int32
	dm    *mesh.DomainMesh
	state *fv.State

	// sendPlan[q] lists local owned cell ids whose values process q needs.
	sendPlan map[int32][]int32
	// sendBuf[q] is the reusable payload buffer for sendPlan[q]. The
	// exchange is bulk-synchronous — every receiver has installed its
	// payload before exchange returns — so the next phase may overwrite the
	// buffers without copies or per-phase allocation.
	sendBuf map[int32][]float64
	// recvPlan[q] lists local ghost ids refreshed by q, aligned with q's
	// sendPlan for this process.
	recvPlan map[int32][]int32

	// in[q] receives halo payloads from q.
	in map[int32]chan []float64

	facesBy [][]int32 // local faces by level
	cellsBy [][]int32 // owned cells by level
}

// New extracts every domain and builds the exchange plans. params configures
// the scalar advection–diffusion model on every process.
func New(m *mesh.Mesh, part []int32, k int, params fv.Params) (*Solver, error) {
	doms, err := mesh.ExtractAll(m, part, k)
	if err != nil {
		return nil, err
	}
	s := &Solver{scheme: m.Scheme()}

	// globalToLocal[p] maps global cell id -> local id on process p.
	globalToLocal := make([]map[int32]int32, k)
	for p, dm := range doms {
		g2l := make(map[int32]int32, len(dm.GlobalCell))
		for l, g := range dm.GlobalCell {
			g2l[g] = int32(l)
		}
		globalToLocal[p] = g2l
	}

	for p, dm := range doms {
		pr := &proc{
			id:       int32(p),
			dm:       dm,
			state:    fv.NewState(dm.Local, params),
			sendPlan: map[int32][]int32{},
			sendBuf:  map[int32][]float64{},
			recvPlan: map[int32][]int32{},
			in:       map[int32]chan []float64{},
		}
		// Receive plan: ghosts grouped by owner, in local ghost order.
		for i, owner := range dm.GhostOwner {
			pr.recvPlan[owner] = append(pr.recvPlan[owner], int32(dm.NumOwned+i))
		}
		// Group local objects by level once.
		lm := dm.Local
		pr.facesBy = make([][]int32, s.scheme.NumLevels())
		pr.cellsBy = make([][]int32, s.scheme.NumLevels())
		for fi, f := range lm.Faces {
			l := lm.Level[f.C0]
			if !f.IsBoundary() && lm.Level[f.C1] < l {
				l = lm.Level[f.C1]
			}
			pr.facesBy[l] = append(pr.facesBy[l], int32(fi))
		}
		for c := 0; c < dm.NumOwned; c++ {
			pr.cellsBy[lm.Level[c]] = append(pr.cellsBy[lm.Level[c]], int32(c))
		}
		s.procs = append(s.procs, pr)
	}

	// Send plans mirror receive plans: p must send, for each ghost that q
	// holds of p's cells, the value in matching order.
	for q, pq := range s.procs {
		for owner, ghosts := range pq.recvPlan {
			po := s.procs[owner]
			sends := make([]int32, len(ghosts))
			for i, lg := range ghosts {
				g := pq.dm.GlobalCell[lg]
				lo, ok := globalToLocal[owner][g]
				if !ok || int(lo) >= po.dm.NumOwned {
					return nil, fmt.Errorf("dist: ghost %d of proc %d not owned by proc %d", g, q, owner)
				}
				sends[i] = lo
			}
			po.sendPlan[int32(q)] = sends
			po.sendBuf[int32(q)] = make([]float64, len(sends))
			pq.in[owner] = make(chan []float64, 1)
		}
	}
	return s, nil
}

// NumProcs returns the process count.
func (s *Solver) NumProcs() int { return len(s.procs) }

// InitGaussian sets the same global initial condition on every process
// (owned cells and ghosts alike, so the first exchange is a no-op
// semantically).
func (s *Solver) InitGaussian(cx, cy, cz, width, amplitude float64) {
	for _, p := range s.procs {
		p.state.InitGaussian(cx, cy, cz, width, amplitude)
	}
}

// exchange refreshes every ghost value: each process sends its border cell
// values and installs the payloads it receives. Bulk-synchronous: all sends
// complete before any process proceeds (buffered channels of size 1 make
// this deadlock-free for pairwise exchanges).
func (s *Solver) exchange() {
	var wg sync.WaitGroup
	wg.Add(len(s.procs))
	for _, p := range s.procs {
		go func(p *proc) {
			defer wg.Done()
			for q, sends := range p.sendPlan {
				payload := p.sendBuf[q]
				for i, lo := range sends {
					payload[i] = p.state.U[lo]
				}
				s.procs[q].in[p.id] <- payload
			}
		}(p)
	}
	wg.Wait()
	wg.Add(len(s.procs))
	var bytes int64
	var mu sync.Mutex
	for _, p := range s.procs {
		go func(p *proc) {
			defer wg.Done()
			var local int64
			for owner, ghosts := range p.recvPlan {
				payload := <-p.in[owner]
				for i, lg := range ghosts {
					p.state.U[lg] = payload[i]
				}
				local += int64(8 * len(payload))
			}
			mu.Lock()
			bytes += local
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	s.BytesExchanged += bytes
}

// RunIteration advances one full adaptive iteration: for every subiteration
// phase (descending τ), refresh halos, compute the phase's faces, update the
// phase's owned cells — each process in parallel.
func (s *Solver) RunIteration() {
	nsub := s.scheme.NumSubiterations()
	for sub := 0; sub < nsub; sub++ {
		for _, tau := range s.scheme.ActiveLevels(sub) {
			s.exchange()
			var wg sync.WaitGroup
			wg.Add(len(s.procs))
			for _, p := range s.procs {
				go func(p *proc, tau temporal.Level) {
					defer wg.Done()
					p.state.ComputeFaces(p.facesBy[tau])
					p.state.UpdateCells(p.cellsBy[tau])
				}(p, tau)
			}
			wg.Wait()
		}
	}
}

// GatherU assembles the global solution from the owned cells of every
// process.
func (s *Solver) GatherU(n int) []float64 {
	out := make([]float64, n)
	for _, p := range s.procs {
		for l := 0; l < p.dm.NumOwned; l++ {
			out[p.dm.GlobalCell[l]] = p.state.U[l]
		}
	}
	return out
}

// OwnedMass returns the global conserved total: Σ U·vol over owned cells
// plus the in-flight face accumulators destined for owned cells (cut-face
// accumulators of ghost sides are redundant copies and excluded — the
// owning process carries the authoritative one).
func (s *Solver) OwnedMass() float64 {
	var total float64
	for _, p := range s.procs {
		lm := p.dm.Local
		for l := 0; l < p.dm.NumOwned; l++ {
			total += p.state.U[l] * float64(lm.Volume[l])
		}
		for fi, f := range lm.Faces {
			if int(f.C0) < p.dm.NumOwned {
				total += p.state.AccL[fi]
			}
			if !f.IsBoundary() && int(f.C1) < p.dm.NumOwned {
				total += p.state.AccR[fi]
			}
		}
	}
	return total
}
