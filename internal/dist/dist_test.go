package dist

import (
	"context"
	"math"
	"testing"

	"tempart/internal/fv"
	"tempart/internal/mesh"
	"tempart/internal/partition"
	"tempart/internal/temporal"
)

func setup(t *testing.T, m *mesh.Mesh, k int) (*Solver, *fv.State) {
	t.Helper()
	r, err := partition.PartitionMesh(context.Background(), m, k, partition.MCTL, partition.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, r.Part, k, fv.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ref := fv.NewState(m, fv.DefaultParams())
	return s, ref
}

func TestDistributedMatchesGlobalSerial(t *testing.T) {
	m := mesh.Cylinder(0.0005)
	s, ref := setup(t, m, 4)
	cx, cy, cz := 1.0, 0.5, 0.5
	s.InitGaussian(cx, cy, cz, 0.3, 1)
	ref.InitGaussian(cx, cy, cz, 0.3, 1)

	for i := 0; i < 3; i++ {
		s.RunIteration()
		ref.RunIteration()
	}
	got := s.GatherU(m.NumCells())
	var maxDiff float64
	for c := range ref.U {
		if d := math.Abs(got[c] - ref.U[c]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-12 {
		t.Errorf("distributed solution diverges from global serial by %.3e", maxDiff)
	}
}

func TestDistributedConservesMass(t *testing.T) {
	m := mesh.Cube(0.05)
	s, _ := setup(t, m, 6)
	s.InitGaussian(0.5, 0.5, 0.5, 0.2, 2)
	m0 := s.OwnedMass()
	for i := 0; i < 3; i++ {
		s.RunIteration()
	}
	if rel := math.Abs(s.OwnedMass()-m0) / math.Abs(m0); rel > 1e-11 {
		t.Errorf("distributed mass drift %.3e", rel)
	}
}

func TestHaloTrafficAccounted(t *testing.T) {
	m := mesh.Strip([]temporal.Level{0, 0, 1, 1})
	part := []int32{0, 0, 1, 1}
	s, err := New(m, part, 2, fv.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s.InitGaussian(2, 0.5, 0.5, 1, 1)
	s.RunIteration()
	// Levels {0,1} → 2 subiterations, 3 phases total; each phase exchanges
	// 2 ghost values (1 each way) = 16 bytes → 48 bytes/iteration.
	if s.BytesExchanged != 48 {
		t.Errorf("BytesExchanged = %d, want 48", s.BytesExchanged)
	}
}

func TestMCTLExchangesMoreThanSCOC(t *testing.T) {
	// The distributed path measures Fig 11b's phenomenon directly as bytes.
	m := mesh.Cylinder(0.001)
	traffic := func(strat partition.Strategy) int64 {
		r, err := partition.PartitionMesh(context.Background(), m, 8, strat, partition.Options{Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(m, r.Part, 8, fv.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		s.InitGaussian(1, 0.5, 0.5, 0.3, 1)
		s.RunIteration()
		return s.BytesExchanged
	}
	sc, mc := traffic(partition.SCOC), traffic(partition.MCTL)
	if mc <= sc {
		t.Errorf("MC_TL halo traffic %d not above SC_OC %d", mc, sc)
	}
	t.Logf("halo bytes/iteration: SC_OC=%d MC_TL=%d (%.2fx)", sc, mc, float64(mc)/float64(sc))
}

func TestNewRejectsBadPart(t *testing.T) {
	m := mesh.Strip([]temporal.Level{0, 0})
	if _, err := New(m, []int32{0}, 1, fv.DefaultParams()); err == nil {
		t.Error("accepted wrong-length part")
	}
	// A domain with no cells must fail extraction.
	if _, err := New(m, []int32{0, 0}, 2, fv.DefaultParams()); err == nil {
		t.Error("accepted empty domain")
	}
}
