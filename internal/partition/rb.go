package partition

import (
	"context"
	"math/rand"

	"tempart/internal/graph"
	"tempart/internal/obs"
)

// recursiveBisect assigns the given (global-id) vertices of g to parts
// [firstPart, firstPart+k) by multilevel recursive bisection, writing the
// assignment into part. The paper uses recursive bisection rather than
// direct k-way because it yields higher-quality multi-constraint partitions
// on these meshes. On cancellation the remaining vertices are bulk-assigned
// so the array stays well formed; the caller turns ctx.Err() into an error.
//
// seed is this node's RNG seed; child seeds are derived from it and the
// child's (firstPart, k) address (see deriveSeed), so every subtree's random
// stream is a pure function of the root seed and the subtree's position in
// the bisection tree. After the split, the two subtrees share no state —
// they recurse on disjoint halves of the vertices buffer and write disjoint
// entries of part — so they fan out onto the worker pool, and the result is
// bit-identical to serial execution no matter how the pool schedules them.
//
// vertices is consumed: it is repartitioned in place so the recursion reuses
// one buffer per tree path instead of append-growing fresh left/right slices
// at every node.
func recursiveBisect(ctx context.Context, g *graph.Graph, vertices []int32, firstPart, k int, part []int32, opt Options, seed int64, pool *graph.Pool) {
	if done := commitBaseCase(ctx, vertices, firstPart, k, part); done {
		return
	}
	left, right := bisectNode(ctx, g, SubtreeTask{Vertices: vertices, FirstPart: firstPart, K: k, Seed: seed}, opt, pool)
	pool.Fork(
		func() {
			recursiveBisect(ctx, g, left.Vertices, left.FirstPart, left.K, part, opt, left.Seed, pool)
		},
		func() {
			recursiveBisect(ctx, g, right.Vertices, right.FirstPart, right.K, part, opt, right.Seed, pool)
		},
	)
}

// isIdentity reports whether vertices is exactly [0, 1, ..., len-1].
func isIdentity(vertices []int32) bool {
	for i, v := range vertices {
		if v != int32(i) {
			return false
		}
	}
	return true
}

// commitBaseCase handles the leaves of the bisection tree (k == 1,
// cancellation, or fewer vertices than parts), writing the assignment into
// part and reporting whether the node was a leaf. The exact same base cases
// apply whether a node is reached by local recursion or handed to a remote
// peer as a subtree task — keeping the two paths byte-identical.
func commitBaseCase(ctx context.Context, vertices []int32, firstPart, k int, part []int32) bool {
	if k <= 1 || ctx.Err() != nil {
		for _, v := range vertices {
			part[v] = int32(firstPart)
		}
		return true
	}
	if len(vertices) <= k {
		// Degenerate: fewer vertices than parts; spread them out.
		for i, v := range vertices {
			part[v] = int32(firstPart + i%k)
		}
		return true
	}
	return false
}

// bisectNode performs exactly one interior node's bisection — subgraph
// extraction, multilevel 2-way split, in-place stable partition of the
// vertex buffer — and returns the two child subtree tasks with their derived
// seeds. Callers guarantee the node is not a base case. The computation is a
// pure function of (g, vertices content, seed, opt): it never reads
// scheduling state, which is what lets a coordinator run the top of the tree
// locally, ship the frontier to peers, and still match the local partition
// byte for byte.
func bisectNode(ctx context.Context, g *graph.Graph, t SubtreeTask, opt Options, pool *graph.Pool) (left, right SubtreeTask) {
	k1 := t.K / 2
	frac := float64(k1) / float64(t.K)

	sc := getScratch(len(t.Vertices))
	rng := rand.New(rand.NewSource(t.Seed))
	sspan := obs.StartSpan(ctx, "partition/subgraph")
	var sg *graph.Graph
	var orig []int32
	if len(t.Vertices) == g.NumVertices() && isIdentity(t.Vertices) {
		// Root node (or root of a subtree covering the whole graph): the
		// extracted subgraph would be byte-for-byte g itself — the identity
		// mapping keeps adjacency order and drops no edges — so skip the
		// wholesale CSR copy. At paper scale that copy is the single largest
		// live object at the peak-memory moment of the whole partition.
		sg, orig = g, t.Vertices
	} else {
		// The local-id table is sized by the GLOBAL vertex count, so it is
		// pooled separately from the node-sized scratch arena (see gscPools).
		gsc := getGraphScratch(g.NumVertices())
		sg, orig = g.SubgraphWith(t.Vertices, gsc) // orig aliases t.Vertices
		putGraphScratch(gsc)
	}
	if sspan.Active() {
		sspan.SetInt("vertices", int64(len(t.Vertices)))
	}
	sspan.End()
	where := bisectGraph(ctx, sg, frac, opt, rng, pool, sc)

	// Stable-partition vertices in place: side-0 vertices slide left (always
	// to an index ≤ the one being read, so aliasing orig is safe), side-1
	// vertices spill to scratch and are copied back after.
	vertices := t.Vertices
	nleft := 0
	for _, w := range where {
		if w == 0 {
			nleft++
		}
	}
	spill := growI32(sc.split, len(vertices)-nleft)
	li, ri := 0, 0
	for i, w := range where {
		if w == 0 {
			vertices[li] = orig[i]
			li++
		} else {
			spill[ri] = orig[i]
			ri++
		}
	}
	copy(vertices[nleft:], spill)
	sc.split = spill
	putScratch(sc) // children fetch their own arenas

	left = SubtreeTask{
		Vertices:  vertices[:nleft],
		FirstPart: t.FirstPart,
		K:         k1,
		Seed:      deriveSeed(t.Seed, t.FirstPart, k1),
	}
	right = SubtreeTask{
		Vertices:  vertices[nleft:],
		FirstPart: t.FirstPart + k1,
		K:         t.K - k1,
		Seed:      deriveSeed(t.Seed, t.FirstPart+k1, t.K-k1),
	}
	return left, right
}

// rootBisect is bisectNode specialized to the tree root, where the vertex set
// is the identity [0..n). It defers materializing the n-word vertex buffer
// until after bisectGraph returns: the root's coarsening is the peak-memory
// moment of the whole partition, and the buffer is pure dead weight during it.
// Filling the buffer afterwards by stable-partitioning the identity over
// `where` produces exactly the bytes bisectNode's in-place partition would,
// so the children — and the final partition — are byte-identical.
func rootBisect(ctx context.Context, g *graph.Graph, k int, opt Options, pool *graph.Pool) (left, right SubtreeTask) {
	k1 := k / 2
	frac := float64(k1) / float64(k)
	n := g.NumVertices()

	sc := getScratch(n)
	rng := rand.New(rand.NewSource(opt.Seed))
	sspan := obs.StartSpan(ctx, "partition/subgraph")
	if sspan.Active() {
		sspan.SetInt("vertices", int64(n))
	}
	sspan.End()
	where := bisectGraph(ctx, g, frac, opt, rng, pool, sc)

	vertices := make([]int32, n)
	nleft := 0
	for _, w := range where {
		if w == 0 {
			nleft++
		}
	}
	li, ri := 0, nleft
	for i, w := range where {
		if w == 0 {
			vertices[li] = int32(i)
			li++
		} else {
			vertices[ri] = int32(i)
			ri++
		}
	}
	// The root's scratch is deliberately NOT pooled: its buffers are sized by
	// the whole graph, and ceil filing would hand them to the first child —
	// whose coarsening window is the next peak-memory moment — instead of
	// letting them die here. Children allocate half-sized arenas of their own.

	left = SubtreeTask{
		Vertices:  vertices[:nleft],
		FirstPart: 0,
		K:         k1,
		Seed:      deriveSeed(opt.Seed, 0, k1),
	}
	right = SubtreeTask{
		Vertices:  vertices[nleft:],
		FirstPart: k1,
		K:         k - k1,
		Seed:      deriveSeed(opt.Seed, k1, k-k1),
	}
	return left, right
}
