package partition

import (
	"context"
	"math/rand"

	"tempart/internal/graph"
	"tempart/internal/obs"
)

// recursiveBisect assigns the given (global-id) vertices of g to parts
// [firstPart, firstPart+k) by multilevel recursive bisection, writing the
// assignment into part. The paper uses recursive bisection rather than
// direct k-way because it yields higher-quality multi-constraint partitions
// on these meshes. On cancellation the remaining vertices are bulk-assigned
// so the array stays well formed; the caller turns ctx.Err() into an error.
//
// seed is this node's RNG seed; child seeds are derived from it and the
// child's (firstPart, k) address (see deriveSeed), so every subtree's random
// stream is a pure function of the root seed and the subtree's position in
// the bisection tree. After the split, the two subtrees share no state —
// they recurse on disjoint halves of the vertices buffer and write disjoint
// entries of part — so they fan out onto the worker pool, and the result is
// bit-identical to serial execution no matter how the pool schedules them.
//
// vertices is consumed: it is repartitioned in place so the recursion reuses
// one buffer per tree path instead of append-growing fresh left/right slices
// at every node.
func recursiveBisect(ctx context.Context, g *graph.Graph, vertices []int32, firstPart, k int, part []int32, opt Options, seed int64, pool *graph.Pool) {
	if k <= 1 || ctx.Err() != nil {
		for _, v := range vertices {
			part[v] = int32(firstPart)
		}
		return
	}
	if len(vertices) <= k {
		// Degenerate: fewer vertices than parts; spread them out.
		for i, v := range vertices {
			part[v] = int32(firstPart + i%k)
		}
		return
	}
	k1 := k / 2
	frac := float64(k1) / float64(k)

	sc := getScratch()
	rng := rand.New(rand.NewSource(seed))
	sspan := obs.StartSpan(ctx, "partition/subgraph")
	sg, orig := g.SubgraphWith(vertices, &sc.gsc) // orig aliases vertices
	if sspan.Active() {
		sspan.SetInt("vertices", int64(len(vertices)))
	}
	sspan.End()
	where := bisectGraph(ctx, sg, frac, opt, rng, pool, sc)

	// Stable-partition vertices in place: side-0 vertices slide left (always
	// to an index ≤ the one being read, so aliasing orig is safe), side-1
	// vertices spill to scratch and are copied back after.
	nleft := 0
	for _, w := range where {
		if w == 0 {
			nleft++
		}
	}
	spill := growI32(sc.split, len(vertices)-nleft)
	li, ri := 0, 0
	for i, w := range where {
		if w == 0 {
			vertices[li] = orig[i]
			li++
		} else {
			spill[ri] = orig[i]
			ri++
		}
	}
	copy(vertices[nleft:], spill)
	sc.split = spill
	left, right := vertices[:nleft], vertices[nleft:]

	leftSeed := deriveSeed(seed, firstPart, k1)
	rightSeed := deriveSeed(seed, firstPart+k1, k-k1)
	putScratch(sc) // children fetch their own arenas
	pool.Fork(
		func() { recursiveBisect(ctx, g, left, firstPart, k1, part, opt, leftSeed, pool) },
		func() { recursiveBisect(ctx, g, right, firstPart+k1, k-k1, part, opt, rightSeed, pool) },
	)
}
