package partition

import (
	"context"

	"tempart/internal/graph"
)

// recursiveBisect assigns the given (global-id) vertices of g to parts
// [firstPart, firstPart+k) by multilevel recursive bisection, writing the
// assignment into part. The paper uses recursive bisection rather than
// direct k-way because it yields higher-quality multi-constraint partitions
// on these meshes. On cancellation the remaining vertices are bulk-assigned
// so the array stays well formed; the caller turns ctx.Err() into an error.
func recursiveBisect(ctx context.Context, g *graph.Graph, vertices []int32, firstPart, k int, part []int32, opt Options, rng randSource) {
	if k <= 1 || ctx.Err() != nil {
		for _, v := range vertices {
			part[v] = int32(firstPart)
		}
		return
	}
	if len(vertices) <= k {
		// Degenerate: fewer vertices than parts; spread them out.
		for i, v := range vertices {
			part[v] = int32(firstPart + i%k)
		}
		return
	}
	k1 := k / 2
	frac := float64(k1) / float64(k)

	sg, orig := g.Subgraph(vertices)
	where := bisectGraph(ctx, sg, frac, opt, rng)

	var left, right []int32
	for i, w := range where {
		if w == 0 {
			left = append(left, orig[i])
		} else {
			right = append(right, orig[i])
		}
	}
	recursiveBisect(ctx, g, left, firstPart, k1, part, opt, rng)
	recursiveBisect(ctx, g, right, firstPart+k1, k-k1, part, opt, rng)
}
