package partition

import (
	"context"
	"fmt"

	"tempart/internal/graph"
	"tempart/internal/mesh"
)

// DualPhaseResult is the outcome of the paper's §VII perspective: a two-phase
// partitioning that decouples resource mapping from task granularity.
type DualPhaseResult struct {
	// Domain maps each cell to one of numProcs·domainsPerProc fine domains.
	Domain []int32
	// ProcOfDomain maps each fine domain to its process.
	ProcOfDomain []int32
	// NumDomains is numProcs·domainsPerProc.
	NumDomains int
	// NumProcs is the process count of the first phase.
	NumProcs int
}

// DualPhase implements the dual-phase multi-criteria partitioning the paper
// proposes as a perspective: phase 1 partitions the mesh across processes
// with MC_TL (one domain per process, balancing every temporal level), and
// phase 2 re-partitions *within* each process-domain with SC_OC to obtain
// fine-grained tasks without paying MC_TL's communication cost between
// subdomains of the same process.
func DualPhase(ctx context.Context, m *mesh.Mesh, numProcs, domainsPerProc int, opt Options) (*DualPhaseResult, error) {
	if numProcs < 1 || domainsPerProc < 1 {
		return nil, fmt.Errorf("partition: bad dual-phase shape %d×%d", numProcs, domainsPerProc)
	}
	// Phase 1: MC_TL across processes.
	mcGraph := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	phase1, err := Partition(ctx, mcGraph, numProcs, opt)
	if err != nil {
		return nil, err
	}

	// Phase 2: SC_OC inside each process-domain.
	scGraph := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.SingleCost})
	res := &DualPhaseResult{
		Domain:       make([]int32, m.NumCells()),
		ProcOfDomain: make([]int32, numProcs*domainsPerProc),
		NumDomains:   numProcs * domainsPerProc,
		NumProcs:     numProcs,
	}
	byProc := make([][]int32, numProcs)
	for c, p := range phase1.Part {
		byProc[p] = append(byProc[p], int32(c))
	}
	// The per-process SC_OC subproblems are independent (disjoint cell sets,
	// disjoint domain ranges), so they fan out across workers. Each
	// subproblem keeps its derived seed and splits the parallelism budget so
	// outer × inner concurrency stays near the configured bound; results are
	// identical to the serial loop because nothing depends on completion
	// order.
	par := graph.Parallelism(opt.Parallelism)
	innerPar := par / numProcs
	if innerPar < 1 {
		innerPar = 1
	}
	errs := make([]error, numProcs)
	forEach(par, numProcs, func(p int) {
		sub, orig := subgraphOf(scGraph, byProc[p])
		subOpt := opt
		subOpt.Seed = opt.Seed + int64(p) + 1
		subOpt.Parallelism = innerPar
		inner, err := Partition(ctx, sub, domainsPerProc, subOpt)
		if err != nil {
			errs[p] = err
			return
		}
		for i, d := range inner.Part {
			res.Domain[orig[i]] = int32(p*domainsPerProc) + d
		}
		for d := 0; d < domainsPerProc; d++ {
			res.ProcOfDomain[p*domainsPerProc+d] = int32(p)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// subgraphOf is a thin wrapper so DualPhase reads clearly.
func subgraphOf(g *graph.Graph, vertices []int32) (*graph.Graph, []int32) {
	return g.Subgraph(vertices)
}
