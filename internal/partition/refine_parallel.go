package partition

import (
	"context"
	"math/bits"
	"sort"
	"sync"

	"tempart/internal/graph"
)

// This file is the parallel k-way refinement engine. Each pass decomposes
// k-way boundary refinement into pairwise FM subproblems — one per adjacent
// part pair — and schedules non-adjacent pairs concurrently:
//
//  1. One sweep over the graph discovers the part-adjacency pairs, their
//     boundary vertices, and their boundary edge weight.
//  2. The pairs, sorted by descending weight (heaviest boundaries first get
//     the smallest colors and the most refinement), are greedily
//     edge-colored on the part-adjacency graph, so every color class is a
//     set of part-disjoint pairs.
//  3. Color classes run in sequence. Within a class, every pair runs
//     pairwise FM over its boundary concurrently on the graph.Pool,
//     computing a move list against the read-only pre-round state; a serial
//     in-order commit then applies each pair's best move prefix.
//
// Determinism: pairs within a round are part-disjoint, so one pair's moves
// never change another pair's gains (an edge into a third part contributes
// the same cut weight whichever of its endpoints' pair-parts they sit in)
// nor its part weights. The compute phase therefore reads identical state
// no matter how the pool schedules it, results land in per-pair slots, and
// the commit order is the deterministic pair order — so the refined
// partition is byte-identical at every Options.Parallelism, including
// serial. The same property makes the compute phase race-free: concurrent
// pairs write only pair-local scratch and disjoint entries of the shared
// localID array.

// pairInfo is one adjacent part pair discovered during the boundary sweep.
type pairInfo struct {
	a, b  int32 // a < b
	w     int64 // total boundary edge weight (counted from both endpoints)
	color int32
}

// maxDensePairs bounds the k*k dense pair-index table; beyond it the sweep
// falls back to a map (k that large only occurs far outside the solver's
// domain counts).
const maxDensePairs = 1 << 22

// kwayScratch is the pooled arena of the k-way refinement engine: every
// per-pass working array lives here, so steady-state refinement allocates
// nothing once the buffers have grown to the problem size.
type kwayScratch struct {
	caps    []int64 // kwayCapsInto buffer (RefineKWay)
	pw      []int64 // part weights, k*ncon flattened
	mark    []int32 // per-part stamp for the boundary sweep
	wsum    []int64 // per-part edge weight of the vertex under review
	touched []int32 // distinct adjacent parts of the vertex under review
	pairIdx []int32 // dense (a*k+b) -> pair index, -1 when absent
	pairMap map[int64]int32
	pairs   []pairInfo
	lists   [][]int32 // per-pair boundary vertex lists (slot-reused)
	order   []int32   // pair indices in coloring order
	sorter  pairSorter
	colors  [][]uint64 // per-part used-color bitset
	rounds  [][]int32  // pair indices grouped by color, in order
	results [][]int32  // per-slot committed move lists of the active round
	localID []int32    // global vertex -> pair-local id, -1 outside any pair

	// Active-round state read by runOne. The closure is built once per
	// arena and reused, so steady-state passes allocate nothing.
	cg     *graph.Graph
	cpart  []int32
	ccaps  []int64
	cbias  moveBias
	cround []int32
	runOne func(i int)
}

// kwayScratchPools is size-classed by localID capacity (the arena's dominant,
// vertex-count-sized array); see sizeclass.go for the filing discipline.
var kwayScratchPools [sizeClasses]sync.Pool

// getKwayScratch returns an arena whose localID covers n vertices. The
// localID array holds -1 everywhere between uses (every pair run resets the
// entries it claimed), so acquisition only initialises newly grown entries.
func getKwayScratch(n int) *kwayScratch {
	var ks *kwayScratch
	for c, hi := reqClass(n), 0; hi < classProbes && c < sizeClasses; c, hi = c+1, hi+1 {
		if v := kwayScratchPools[c].Get(); v != nil {
			ks = v.(*kwayScratch)
			break
		}
	}
	if ks == nil {
		ks = new(kwayScratch)
	}
	if cap(ks.localID) < n {
		grown := make([]int32, n)
		copy(grown, ks.localID)
		for i := len(ks.localID); i < n; i++ {
			grown[i] = -1
		}
		ks.localID = grown
	} else {
		old := len(ks.localID)
		ks.localID = ks.localID[:cap(ks.localID)]
		for i := old; i < len(ks.localID); i++ {
			ks.localID[i] = -1
		}
	}
	return ks
}

func putKwayScratch(ks *kwayScratch) { kwayScratchPools[capClass(cap(ks.localID))].Put(ks) }

// pairSorter orders pair indices by descending boundary weight, ties by
// (a, b) — a pure function of the pair set, never of discovery scheduling.
type pairSorter struct {
	order []int32
	pairs []pairInfo
}

func (s *pairSorter) Len() int      { return len(s.order) }
func (s *pairSorter) Swap(i, j int) { s.order[i], s.order[j] = s.order[j], s.order[i] }
func (s *pairSorter) Less(i, j int) bool {
	pi, pj := &s.pairs[s.order[i]], &s.pairs[s.order[j]]
	if pi.w != pj.w {
		return pi.w > pj.w
	}
	if pi.a != pj.a {
		return pi.a < pj.a
	}
	return pi.b < pj.b
}

// kwayRefine runs parallel pairwise-FM k-way refinement passes in place; see
// the engine comment above. Passes stop early when a full pass commits no
// move.
func kwayRefine(ctx context.Context, g *graph.Graph, part []int32, k int, caps []int64, passes int, pool *graph.Pool) int {
	return kwayRefineBiased(ctx, g, part, k, caps, passes, pool, moveBias{})
}

// kwayRefineBiased is kwayRefine with an optional migration bias applied to
// every move's gain (zero moveBias = unbiased). Cancelling ctx stops at the
// next pass boundary. Returns the total number of committed moves.
func kwayRefineBiased(ctx context.Context, g *graph.Graph, part []int32, k int, caps []int64, passes int, pool *graph.Pool, bias moveBias) int {
	n := g.NumVertices()
	if n == 0 || k <= 1 {
		return 0
	}
	ks := getKwayScratch(n)
	defer putKwayScratch(ks)
	return kwayRefineWith(ctx, g, part, k, caps, passes, pool, bias, ks)
}

// kwayRefineWith is kwayRefineBiased against a caller-held scratch arena.
func kwayRefineWith(ctx context.Context, g *graph.Graph, part []int32, k int, caps []int64, passes int, pool *graph.Pool, bias moveBias, ks *kwayScratch) int {
	n := g.NumVertices()
	if n == 0 || k <= 1 {
		return 0
	}

	// Part weights, maintained across passes by the commit phase.
	ncon := g.NCon
	ks.pw = growI64(ks.pw, k*ncon)
	for i := range ks.pw {
		ks.pw[i] = 0
	}
	for v := 0; v < n; v++ {
		dst := ks.pw[int(part[v])*ncon:]
		wv := g.WeightVec(int32(v))
		for c := 0; c < ncon; c++ {
			dst[c] += int64(wv[c])
		}
	}

	total := 0
	for pass := 0; pass < passes; pass++ {
		if ctx.Err() != nil {
			break
		}
		moved := kwayPass(g, part, k, caps, ks, pool, bias)
		total += moved
		if moved == 0 {
			break
		}
	}
	return total
}

// kwayPass runs one full refinement pass and returns the number of moves it
// committed.
func kwayPass(g *graph.Graph, part []int32, k int, caps []int64, ks *kwayScratch, pool *graph.Pool, bias moveBias) int {
	n := g.NumVertices()

	// Sweep: discover pairs, their boundary vertices and weights. A vertex
	// joins the list of every pair formed by its part and a distinct
	// adjacent part.
	ks.pairs = ks.pairs[:0]
	dense := k*k <= maxDensePairs
	if dense {
		ks.pairIdx = growPairIdx(ks.pairIdx, k*k)
	} else if ks.pairMap == nil {
		ks.pairMap = make(map[int64]int32)
	}
	ks.mark = growI32(ks.mark, k)
	for i := range ks.mark {
		ks.mark[i] = 0
	}
	ks.wsum = growI64(ks.wsum, k)
	touched := ks.touched[:0]
	for v := 0; v < n; v++ {
		from := part[v]
		stamp := int32(v) + 1
		touched = touched[:0]
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			p := part[g.Adjncy[i]]
			if p == from {
				continue
			}
			if ks.mark[p] != stamp {
				ks.mark[p] = stamp
				ks.wsum[p] = 0
				touched = append(touched, p)
			}
			ks.wsum[p] += int64(g.AdjWgt[i])
		}
		for _, p := range touched {
			a, b := from, p
			if a > b {
				a, b = b, a
			}
			key := int(a)*k + int(b)
			var pi int32
			if dense {
				pi = ks.pairIdx[key]
			} else if got, ok := ks.pairMap[int64(key)]; ok {
				pi = got
			} else {
				pi = -1
			}
			if pi < 0 {
				pi = int32(len(ks.pairs))
				ks.pairs = append(ks.pairs, pairInfo{a: a, b: b})
				if dense {
					ks.pairIdx[key] = pi
				} else {
					ks.pairMap[int64(key)] = pi
				}
				if int(pi) < len(ks.lists) {
					ks.lists[pi] = ks.lists[pi][:0]
				} else {
					ks.lists = append(ks.lists, nil)
				}
			}
			ks.pairs[pi].w += ks.wsum[p]
			ks.lists[pi] = append(ks.lists[pi], int32(v))
		}
	}
	ks.touched = touched
	np := len(ks.pairs)
	if np == 0 {
		return 0
	}

	// Greedy edge coloring of the part-adjacency graph, heaviest pair first:
	// each pair takes the smallest color unused at both endpoints.
	ks.order = ks.order[:0]
	for i := 0; i < np; i++ {
		ks.order = append(ks.order, int32(i))
	}
	ks.sorter.order, ks.sorter.pairs = ks.order, ks.pairs
	sort.Sort(&ks.sorter)
	for len(ks.colors) < k {
		ks.colors = append(ks.colors, nil)
	}
	for p := 0; p < k; p++ {
		ks.colors[p] = ks.colors[p][:0]
	}
	ncolors := 0
	for _, pi := range ks.order {
		pr := &ks.pairs[pi]
		c := freeColor(ks.colors[pr.a], ks.colors[pr.b])
		ks.colors[pr.a] = setColorBit(ks.colors[pr.a], c)
		ks.colors[pr.b] = setColorBit(ks.colors[pr.b], c)
		pr.color = int32(c)
		if c+1 > ncolors {
			ncolors = c + 1
		}
	}
	for len(ks.rounds) < ncolors {
		ks.rounds = append(ks.rounds, nil)
	}
	for c := 0; c < ncolors; c++ {
		ks.rounds[c] = ks.rounds[c][:0]
	}
	for _, pi := range ks.order {
		c := ks.pairs[pi].color
		ks.rounds[c] = append(ks.rounds[c], pi)
	}

	// Execute the color rounds: concurrent pairwise FM against the
	// read-only pre-round state, then a serial in-order commit.
	ncon := g.NCon
	total := 0
	ks.cg, ks.cpart, ks.ccaps, ks.cbias = g, part, caps, bias
	if ks.runOne == nil {
		ks.runOne = func(i int) {
			pr := ks.pairs[ks.cround[i]]
			list := ks.lists[ks.cround[i]]
			ps := getPairScratch(len(list))
			ks.results[i] = ps.run(ks.cg, ks.cpart, ks, pr.a, pr.b, list, ks.ccaps, ks.cbias, ks.results[i][:0])
			putPairScratch(ps)
		}
	}
	for c := 0; c < ncolors; c++ {
		round := ks.rounds[c]
		for len(ks.results) < len(round) {
			ks.results = append(ks.results, nil)
		}
		ks.cround = round
		pool.RunN(len(round), ks.runOne)
		for i, pi := range round {
			pr := ks.pairs[pi]
			for _, v := range ks.results[i] {
				from := part[v]
				to := pr.a
				if from == pr.a {
					to = pr.b
				}
				fw := ks.pw[int(from)*ncon:]
				tw := ks.pw[int(to)*ncon:]
				wv := g.WeightVec(v)
				for ci := 0; ci < ncon; ci++ {
					fw[ci] -= int64(wv[ci])
					tw[ci] += int64(wv[ci])
				}
				part[v] = to
				total++
			}
		}
	}

	// Restore the pair-index invariant (-1 / empty) for the next pass.
	if dense {
		for i := range ks.pairs {
			ks.pairIdx[int(ks.pairs[i].a)*k+int(ks.pairs[i].b)] = -1
		}
	} else if ks.pairMap != nil {
		for key := range ks.pairMap {
			delete(ks.pairMap, key)
		}
	}
	ks.cg, ks.cpart, ks.ccaps, ks.cbias = nil, nil, nil, moveBias{}
	return total
}

// growPairIdx returns buf resized to n with every entry -1. Entries of a
// reused buffer are already -1 (kwayPass restores them), so only newly grown
// capacity needs filling.
func growPairIdx(buf []int32, n int) []int32 {
	if cap(buf) < n {
		buf = make([]int32, n)
		for i := range buf {
			buf[i] = -1
		}
		return buf
	}
	old := len(buf)
	buf = buf[:cap(buf)]
	for i := old; i < len(buf); i++ {
		buf[i] = -1
	}
	return buf[:n]
}

// freeColor returns the smallest color absent from both bitsets.
func freeColor(a, b []uint64) int {
	nw := len(a)
	if len(b) > nw {
		nw = len(b)
	}
	for w := 0; w < nw; w++ {
		var used uint64
		if w < len(a) {
			used = a[w]
		}
		if w < len(b) {
			used |= b[w]
		}
		if used != ^uint64(0) {
			return w*64 + bits.TrailingZeros64(^used)
		}
	}
	return nw * 64
}

// setColorBit marks color c used, growing the bitset as needed.
func setColorBit(set []uint64, c int) []uint64 {
	for len(set) <= c/64 {
		set = append(set, 0)
	}
	set[c/64] |= 1 << (c % 64)
	return set
}

// pairScratch is the per-worker arena of one pairwise FM run. The run's
// parameters are stored as fields so the hot helpers are methods (closures
// here would escape to the heap on every run).
type pairScratch struct {
	g       *graph.Graph
	part    []int32
	localID []int32
	caps    []int64
	a, b    int32
	bias    moveBias

	verts  []int32 // local id -> global vertex
	gain   []int64 // exact gain of moving the vertex to the pair's other part
	side   []int8  // current side: 0 = part a, 1 = part b
	locked []bool
	moves  []int32 // applied moves, local ids
	pwa    []int64 // pair-local copies of the two part weight vectors
	pwb    []int64
	bk     [2]gainBuckets
	maxDeg int64
}

// pairScratchPools is size-classed by verts capacity — the run's boundary
// list length bounds every per-vertex array the arena grows.
var pairScratchPools [sizeClasses]sync.Pool

func getPairScratch(hint int) *pairScratch {
	for c, hi := reqClass(hint), 0; hi < classProbes && c < sizeClasses; c, hi = c+1, hi+1 {
		if v := pairScratchPools[c].Get(); v != nil {
			return v.(*pairScratch)
		}
	}
	return new(pairScratch)
}

func putPairScratch(ps *pairScratch) { pairScratchPools[capClass(cap(ps.verts))].Put(ps) }

// run executes pairwise FM between parts a and b over the given boundary
// vertex list, reading part and ks.pw as the immutable pre-round state, and
// appends the best move prefix (global vertex ids, in order) to out. The
// caller commits those moves serially; run itself never writes part.
func (ps *pairScratch) run(g *graph.Graph, part []int32, ks *kwayScratch, a, b int32, list []int32, caps []int64, bias moveBias, out []int32) []int32 {
	ncon := g.NCon
	ps.g, ps.part, ps.localID, ps.caps = g, part, ks.localID, caps
	ps.a, ps.b, ps.bias = a, b, bias
	ps.pwa = growI64(ps.pwa, ncon)
	copy(ps.pwa, ks.pw[int(a)*ncon:int(a)*ncon+ncon])
	ps.pwb = growI64(ps.pwb, ncon)
	copy(ps.pwb, ks.pw[int(b)*ncon:int(b)*ncon+ncon])
	ps.verts = ps.verts[:0]
	ps.gain = ps.gain[:0]
	ps.side = ps.side[:0]
	ps.locked = ps.locked[:0]
	ps.moves = ps.moves[:0]
	ps.maxDeg = 1

	// Register the initial working set. List vertices may have been moved to
	// a third part by an earlier round of this pass; skip those.
	for _, v := range list {
		if pv := part[v]; pv != a && pv != b {
			continue
		}
		if ps.localID[v] >= 0 {
			continue
		}
		ps.register(v)
	}
	nloc := len(ps.verts)
	if nloc == 0 {
		return out
	}
	// Bound the bucket key range by the working-set size so coarse levels
	// (few vertices, heavy accumulated weights) cannot blow up the bucket
	// array; extreme gains clamp to the boundary buckets.
	keyBound := int32(4*nloc + 64)
	maxKey := satKey(ps.maxDeg, keyBound)
	ps.bk[0].reset(nloc, maxKey)
	ps.bk[1].reset(nloc, maxKey)
	// Reverse insertion: LIFO buckets then pop equal-gain candidates in
	// ascending local (≈ global) id — spatially coherent, see fmPassBuckets.
	for l := nloc - 1; l >= 0; l-- {
		ps.bk[ps.side[l]].insert(int32(l), satKey(ps.gain[l], maxKey))
	}

	startOver := overage(ps.pwa, caps) + overage(ps.pwb, caps)
	curOver := startOver
	var curScore int64
	bestIdx := -1
	bestOver, bestScore := startOver, int64(0)
	maxStall := 64 + nloc/16
	stall := 0

	for ps.bk[0].len()+ps.bk[1].len() > 0 && stall < maxStall {
		l, newOver, ok := ps.pickMove(curOver, maxKey)
		if !ok {
			break
		}
		v := ps.verts[l]
		ps.locked[l] = true
		s := ps.side[l]
		wv := g.WeightVec(v)
		if s == 0 {
			for c := 0; c < ncon; c++ {
				ps.pwa[c] -= int64(wv[c])
				ps.pwb[c] += int64(wv[c])
			}
		} else {
			for c := 0; c < ncon; c++ {
				ps.pwb[c] -= int64(wv[c])
				ps.pwa[c] += int64(wv[c])
			}
		}
		ps.side[l] = 1 - s
		curOver = newOver
		curScore += ps.gain[l]
		ps.gain[l] = -ps.gain[l]
		ps.moves = append(ps.moves, l)

		// Neighbour gain updates; vertices of the pair that just became
		// boundary join the working set lazily. Membership is decided by
		// part[u] first: the shared localID array also carries entries of
		// other (part-disjoint) pairs running concurrently, and only
		// vertices whose part is a or b can be local to this pair.
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			u := g.Adjncy[i]
			if pu := part[u]; pu != a && pu != b {
				continue
			}
			lu := ps.localID[u]
			if lu < 0 {
				lu = ps.register(u) // gain computed against the post-move state
				ps.bk[0].grow(len(ps.verts))
				ps.bk[1].grow(len(ps.verts))
				ps.bk[ps.side[lu]].insert(lu, satKey(ps.gain[lu], maxKey))
				continue
			}
			w := int64(g.AdjWgt[i])
			if ps.side[lu] == s {
				ps.gain[lu] += 2 * w // the edge became external for u
			} else {
				ps.gain[lu] -= 2 * w // the edge became internal for u
			}
			if !ps.locked[lu] {
				ps.bk[ps.side[lu]].update(lu, satKey(ps.gain[lu], maxKey))
			}
		}

		if curOver < bestOver || (curOver == bestOver && curScore > bestScore) {
			bestOver, bestScore = curOver, curScore
			bestIdx = len(ps.moves) - 1
			stall = 0
		} else {
			stall++
		}
	}

	// Keep the best prefix only when it beats the starting state; emit it in
	// global ids for the commit phase.
	if bestOver < startOver || bestScore > 0 {
		for _, l := range ps.moves[:bestIdx+1] {
			out = append(out, ps.verts[l])
		}
	}
	for _, v := range ps.verts {
		ps.localID[v] = -1
	}
	return out
}

// register adds vertex v (in part a or b, not yet local) to the working set,
// computing its gain against the current effective state — locally moved
// vertices count on their moved side.
func (ps *pairScratch) register(v int32) int32 {
	g := ps.g
	var ca, cb int64
	for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
		u := g.Adjncy[i]
		pu := ps.part[u]
		if pu != ps.a && pu != ps.b {
			continue // includes other pairs' localID entries — not ours
		}
		su := int8(0)
		if pu == ps.b {
			su = 1
		}
		if lu := ps.localID[u]; lu >= 0 {
			su = ps.side[lu] // locally moved within this pair run
		}
		if su == 0 {
			ca += int64(g.AdjWgt[i])
		} else {
			cb += int64(g.AdjWgt[i])
		}
	}
	var s int8
	var gv int64
	from, to := ps.a, ps.b
	if ps.part[v] == ps.a {
		gv = cb - ca
	} else {
		s = 1
		gv = ca - cb
		from, to = ps.b, ps.a
	}
	if ps.bias.origin != nil {
		gv += ps.bias.delta(v, from, to)
	}
	l := int32(len(ps.verts))
	ps.localID[v] = l
	ps.verts = append(ps.verts, v)
	ps.gain = append(ps.gain, gv)
	ps.side = append(ps.side, s)
	ps.locked = append(ps.locked, false)
	if wd := ca + cb; wd > ps.maxDeg {
		ps.maxDeg = wd
	}
	return l
}

// pickMove selects the best admissible move from either direction's buckets:
// pop each side's top candidate, drop candidates that would worsen the pair
// overage (they re-enter when a neighbour move changes their gain), keep the
// (overage, gain)-best of the two and return the loser. A second probe round
// avoids stalling on a single inadmissible top entry.
func (ps *pairScratch) pickMove(curOver int64, maxKey int32) (int32, int64, bool) {
	for probe := 0; probe < 2; probe++ {
		best := int32(-1)
		var bestOver, bestGain int64
		for s := 0; s < 2; s++ {
			l, ok := ps.bk[s].popMax()
			if !ok {
				continue
			}
			no := ps.overAfter(l)
			if no > curOver {
				continue
			}
			if best < 0 || no < bestOver || (no == bestOver && ps.gain[l] > bestGain) {
				if best >= 0 {
					ps.bk[ps.side[best]].insert(best, satKey(ps.gain[best], maxKey))
				}
				best, bestOver, bestGain = l, no, ps.gain[l]
			} else {
				ps.bk[s].insert(l, satKey(ps.gain[l], maxKey))
			}
		}
		if best >= 0 {
			return best, bestOver, true
		}
		if ps.bk[0].len()+ps.bk[1].len() == 0 {
			break
		}
	}
	return -1, 0, false
}

// overAfter returns the pair overage if local vertex l moved to the other
// side.
func (ps *pairScratch) overAfter(l int32) int64 {
	wv := ps.g.WeightVec(ps.verts[l])
	var over int64
	sgnA := int64(1)
	if ps.side[l] == 0 {
		sgnA = -1
	}
	for c := range ps.caps {
		if d := ps.pwa[c] + sgnA*int64(wv[c]) - ps.caps[c]; d > 0 {
			over += d
		}
		if d := ps.pwb[c] - sgnA*int64(wv[c]) - ps.caps[c]; d > 0 {
			over += d
		}
	}
	return over
}

// overage sums the per-constraint cap overshoot of one part weight vector.
func overage(pw, caps []int64) int64 {
	var over int64
	for c := range caps {
		if d := pw[c] - caps[c]; d > 0 {
			over += d
		}
	}
	return over
}

// satKey saturates an int64 gain into the bucket key range. The buckets
// clamp keys to ±maxKey anyway; saturating first just avoids int32 overflow.
// Exact gains stay in the caller's arrays — clamping only coarsens the
// ordering of extreme (usually bias-dominated) gains.
func satKey(gv int64, maxKey int32) int32 {
	if gv > int64(maxKey) {
		return maxKey
	}
	if gv < -int64(maxKey) {
		return -maxKey
	}
	return int32(gv)
}
