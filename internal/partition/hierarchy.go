package partition

import (
	"fmt"

	"tempart/internal/graph"
)

// streamMinVertices is the default floor below which intermediate coarse
// graphs are simply retained: spilling a few-kilobyte rung buys nothing and
// costs a write+read. Tests shrink it (via Options.streamMinVerts) to force
// streaming on tiny meshes, and raise it to recover the fully retained
// baseline for byte-identity comparisons.
const streamMinVertices = 1 << 17

// hierConfig selects how the coarsening hierarchy manages intermediate
// levels' memory. It never changes WHAT the hierarchy contains — only where
// the bytes of inactive rungs live — so partitions are byte-identical across
// all configurations (pinned by TestStreamingDeterministicAcrossParallelism).
type hierConfig struct {
	arena    bool // mmap spilled rungs read-only instead of heap read-back
	minVerts int  // rungs smaller than this stay resident
}

func hierConfigFor(opt Options) hierConfig {
	mv := opt.streamMinVerts
	if mv == 0 {
		mv = streamMinVertices
	}
	return hierConfig{arena: opt.Arena, minVerts: mv}
}

// hier is the coarsening hierarchy with streaming residency. The finest graph
// (index 0), the coarsest rung and every cmap are always resident; once a new
// rung is pushed, the now-interior previous rung is offloaded byte-exactly to
// a SpillStore and its heap copy released. Uncoarsening walks coarse→fine and
// touches exactly one interior rung at a time, so graph(i)/release(i) reload
// each spilled rung into one reusable buffer (or mmap it under arena mode)
// for the duration of its refinement pass.
//
// Spilling is a verbatim byte round-trip of the CSR arrays — never a
// recomputation — because refinement outcomes depend on adjacency ORDER, not
// just the adjacency set: FM buckets are LIFO and gain updates walk rows in
// storage order, so a re-contracted row with the same neighbours in a
// different order would change tie-breaks and break the byte-identity
// contract.
type hier struct {
	cfg    hierConfig
	graphs []*graph.Graph // graphs[i] == nil when level i is spilled out
	cmaps  [][]int32      // cmaps[i] maps level-i vertices to level-i+1; cmaps[0] unused
	refs   []graph.SpillRef
	spill  []bool         // level i has a valid refs[i]
	unmap  []func() error // non-nil while level i is mmapped
	store  *graph.SpillStore

	cmapRefs  []graph.WordRef
	cmapSpill []bool // level i's cmap has a valid cmapRefs[i]

	loadBuf []int32 // reusable heap read-back buffer (non-arena loads)
	cmapBuf []int32 // reusable cmap read-back buffer

	resident    int64 // bytes of currently resident level graphs
	maxResident int64 // high-water mark, for the residency-bound test
}

func newHier(g *graph.Graph, cfg hierConfig) *hier {
	h := &hier{cfg: cfg}
	h.graphs = append(h.graphs, g)
	h.cmaps = append(h.cmaps, nil)
	h.refs = append(h.refs, graph.SpillRef{})
	h.spill = append(h.spill, false)
	h.unmap = append(h.unmap, nil)
	h.cmapRefs = append(h.cmapRefs, graph.WordRef{})
	h.cmapSpill = append(h.cmapSpill, false)
	h.addResident(g.Bytes())
	return h
}

func (h *hier) addResident(d int64) {
	h.resident += d
	if h.resident > h.maxResident {
		h.maxResident = h.resident
	}
}

func (h *hier) levels() int            { return len(h.graphs) }
func (h *hier) coarsest() *graph.Graph { return h.graphs[len(h.graphs)-1] }

// cmap returns level i's coarsening map, reloading it if spilled. A reloaded
// cmap aliases h.cmapBuf and is only valid until the next cmap call — the
// uncoarsening loops consume each cmap fully (one projection) before moving
// to the next level, so one buffer serves the whole walk.
func (h *hier) cmap(i int) []int32 {
	if h.cmaps[i] != nil || !h.cmapSpill[i] {
		return h.cmaps[i]
	}
	if h.cmapBuf == nil {
		h.cmapBuf = make([]int32, 0, h.maxSpilledCmapLen())
	}
	cm, err := h.store.LoadWords(h.cmapRefs[i], h.cmapBuf)
	if err != nil {
		panic(fmt.Sprintf("partition: reload of spilled cmap %d failed: %v", i, err))
	}
	h.cmapBuf = cm[:0]
	return cm
}

// maxSpilledCmapLen sizes the shared read-back buffer once, to the largest
// spilled cmap, so the coarse→fine walk does not realloc at every level.
func (h *hier) maxSpilledCmapLen() int {
	m := 0
	for i, sp := range h.cmapSpill {
		if sp && h.cmapRefs[i].Len() > m {
			m = h.cmapRefs[i].Len()
		}
	}
	return m
}

// push appends the next coarser rung and offloads the rung it just made
// interior. cmap maps the vertices of the previously coarsest level onto cg.
// The new level's cmap is spilled right away: nothing reads it again until
// uncoarsening, and at paper scale the finest cmaps are tens of megabytes
// sitting under the triple-resident contraction window otherwise.
func (h *hier) push(cg *graph.Graph, cmap []int32) {
	h.graphs = append(h.graphs, cg)
	h.cmaps = append(h.cmaps, cmap)
	h.refs = append(h.refs, graph.SpillRef{})
	h.spill = append(h.spill, false)
	h.unmap = append(h.unmap, nil)
	h.cmapRefs = append(h.cmapRefs, graph.WordRef{})
	h.cmapSpill = append(h.cmapSpill, false)
	h.addResident(cg.Bytes())
	h.spillCmap(len(h.cmaps) - 1)
	h.offload(len(h.graphs) - 2)
}

// spillCmap offloads level i's coarsening map, leaving it resident when it is
// below the streaming threshold or the store is unavailable (any error
// degrades to retention, like offload).
func (h *hier) spillCmap(i int) {
	cm := h.cmaps[i]
	if h.cmapSpill[i] || len(cm) < h.cfg.minVerts {
		return
	}
	if h.store == nil {
		st, err := graph.NewSpillStore()
		if err != nil {
			return
		}
		h.store = st
	}
	if cref, err := h.store.SpillWords(cm); err == nil {
		h.cmapRefs[i] = cref
		h.cmapSpill[i] = true
		h.cmaps[i] = nil
	}
}

// offload spills level i and drops its heap copy. The finest level and
// sub-threshold rungs stay put; any spill error degrades to retaining the
// level (correctness never depends on the store working).
func (h *hier) offload(i int) {
	if i < 1 || h.spill[i] || h.graphs[i] == nil {
		return
	}
	g := h.graphs[i]
	if g.NumVertices() < h.cfg.minVerts {
		return
	}
	if h.store == nil {
		st, err := graph.NewSpillStore()
		if err != nil {
			return
		}
		h.store = st
	}
	ref, err := h.store.Spill(g)
	if err != nil {
		return
	}
	h.refs[i] = ref
	h.spill[i] = true
	h.graphs[i] = nil
	h.addResident(-g.Bytes())
	h.spillCmap(i) // normally already spilled at push; cheap no-op then
}

// graph returns level i, reloading it if spilled. At most one reloaded
// interior rung may be live at a time: the returned graph aliases h.loadBuf
// (or an mmap), which release(i) reclaims.
func (h *hier) graph(i int) *graph.Graph {
	if h.graphs[i] != nil {
		return h.graphs[i]
	}
	if h.cfg.arena {
		if g, un, err := h.store.LoadMapped(h.refs[i]); err == nil {
			h.unmap[i] = un
			h.graphs[i] = g
			h.addResident(g.Bytes())
			return g
		}
		// Fall through to the heap path (e.g. platform without mmap).
	}
	if h.loadBuf == nil {
		// Size the shared buffer to the largest spilled rung up front: the
		// uncoarsening walk loads coarsest-first, so growing on demand would
		// realloc at nearly every level and leave a ladder of dead buffers
		// behind.
		m := 0
		for j, sp := range h.spill {
			if sp && h.refs[j].Words() > m {
				m = h.refs[j].Words()
			}
		}
		h.loadBuf = make([]int32, 0, m)
	}
	g, buf, err := h.store.Load(h.refs[i], h.loadBuf)
	if err != nil {
		// The store is an anonymous temp file we wrote moments ago; a read
		// failure means the environment is broken (disk yanked), not a
		// recoverable partitioning condition.
		panic(fmt.Sprintf("partition: reload of spilled level %d failed: %v", i, err))
	}
	h.loadBuf = buf
	h.graphs[i] = g
	h.addResident(g.Bytes())
	return g
}

// dropReloadBuffers frees the shared read-back buffers. Callers invoke it
// once the uncoarsening walk can no longer load anything — level 0 is always
// resident, so after level 1's cmap is projected the buffers (sized by the
// largest rung, the dominant one) are dead weight under the finest-level
// refinement.
func (h *hier) dropReloadBuffers() {
	h.loadBuf = nil
	h.cmapBuf = nil
}

// release drops the heap/mmap copy of a spilled interior level after its
// refinement pass. Levels that were never spilled are left resident.
func (h *hier) release(i int) {
	if i < 1 || !h.spill[i] || h.graphs[i] == nil {
		return
	}
	g := h.graphs[i]
	if h.unmap[i] != nil {
		_ = h.unmap[i]()
		h.unmap[i] = nil
	}
	h.graphs[i] = nil
	h.addResident(-g.Bytes())
}

func (h *hier) close() {
	for i := range h.unmap {
		if h.unmap[i] != nil {
			_ = h.unmap[i]()
			h.unmap[i] = nil
		}
	}
	if h.store != nil {
		_ = h.store.Close()
		h.store = nil
	}
}
