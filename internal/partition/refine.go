package partition

import (
	"context"
	"sort"

	"tempart/internal/graph"
	"tempart/internal/obs"
)

// refineBisection improves an existing bisection in place with multi-
// constraint Fiduccia–Mattheyses passes: boundary vertices are moved in
// best-gain order under the rule that a move may never increase the balance
// violation; each pass keeps the best (violation, cut) prefix. Refinement
// stops when a pass yields no improvement or after maxPasses.
//
// Each pass records a child span of parent with the post-pass violation.
// Pass the zero Span to refine silently; tracing stays cheap enough to leave
// on (no O(E) cut evaluation per pass).
func refineBisection(b *bisection, maxPasses int, sc *scratch, parent obs.Span) {
	for pass := 0; pass < maxPasses; pass++ {
		ps := parent.Start("partition/refine/fm_pass")
		improved := fmPass(b, sc)
		if ps.Active() {
			ps.SetInt("pass", int64(pass))
			ps.SetFloat("violation", b.violation())
			if improved {
				ps.SetInt("improved", 1)
			} else {
				ps.SetInt("improved", 0)
			}
		}
		ps.End()
		if !improved {
			return
		}
	}
}

// fmBucketMinVertices gates the bucket-based pass: below it the lazy-deletion
// heap's lower constant factors win and the heap stays (the small-n
// fallback); above it the O(1) bucket updates dominate.
const fmBucketMinVertices = 96

// fmPass runs one FM pass and reports whether it improved (violation, cut).
// All O(n) working state comes from the scratch arena, so repeated passes
// (and repeated levels within one bisection) allocate nothing. Large graphs
// take the bucket-list gain structure; small graphs (and graphs whose gain
// range dwarfs the vertex count, where a bucket array would be mostly empty)
// fall back to the original lazy-deletion heaps. Both gates are pure
// functions of the graph, so the choice never depends on scheduling.
func fmPass(b *bisection, sc *scratch) bool {
	g := b.g
	n := g.NumVertices()

	// Gains: ed - id per vertex; maxw tracks the maximum weighted degree,
	// which bounds every gain and sizes the bucket array.
	gain := growI32(sc.gain, n)
	sc.gain = gain
	boundary := growBool(sc.bound, n)
	sc.bound = boundary
	var maxw int32
	for v := 0; v < n; v++ {
		pv := b.where[v]
		var ed, id int32
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			if b.where[g.Adjncy[i]] != pv {
				ed += g.AdjWgt[i]
			} else {
				id += g.AdjWgt[i]
			}
		}
		gain[v] = ed - id
		boundary[v] = ed > 0
		if wd := ed + id; wd > maxw {
			maxw = wd
		}
	}
	if n >= fmBucketMinVertices && 2*int(maxw)+1 <= 8*n {
		return fmPassBuckets(b, sc, gain, boundary, maxw)
	}
	return fmPassHeap(b, sc, gain, boundary)
}

// fmPassBuckets is the bucket-list FM pass: O(1) candidate updates, no stale
// entries, no per-move closure allocations.
func fmPassBuckets(b *bisection, sc *scratch, gain []int32, boundary []bool, maxw int32) bool {
	g := b.g
	n := g.NumVertices()

	bk := [2]*gainBuckets{&sc.buckets[0], &sc.buckets[1]}
	bk[0].reset(n, maxw)
	bk[1].reset(n, maxw)
	locked := growBool(sc.locked, n)
	sc.locked = locked
	// Reverse insertion order: buckets are LIFO, so equal-gain candidates
	// pop in ascending vertex id — spatially coherent on banded meshes,
	// which measurably beats descending order on multi-constraint cuts.
	for v := n - 1; v >= 0; v-- {
		if boundary[v] {
			bk[b.where[v]].insert(int32(v), gain[v])
		}
	}

	startViol := b.violation()
	curViol := startViol
	var curCutDelta int64

	moves := sc.moves[:0]
	bestIdx := -1
	bestViol, bestCutDelta := startViol, int64(0)

	maxStall := 64 + n/16
	stall := 0

	for bk[0].len()+bk[1].len() > 0 && stall < maxStall {
		v, ok := pickMoveBuckets(b, bk, gain, curViol)
		if !ok {
			break
		}
		locked[v] = true
		newViol := b.violationAfterMove(v)
		curCutDelta -= int64(gain[v])
		s := b.where[v]
		b.move(v)
		curViol = newViol
		moves = append(moves, v)

		// Update neighbour gains: O(1) bucket moves instead of heap pushes.
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			u := g.Adjncy[i]
			w := g.AdjWgt[i]
			if b.where[u] == s {
				gain[u] += 2 * w // edge became external for u
			} else {
				gain[u] -= 2 * w // edge became internal for u
			}
			if !locked[u] {
				bk[b.where[u]].update(u, gain[u])
			}
		}

		if betterState(curViol, curCutDelta, bestViol, bestCutDelta) {
			bestViol, bestCutDelta = curViol, curCutDelta
			bestIdx = len(moves) - 1
			stall = 0
		} else {
			stall++
		}
	}

	for i := len(moves) - 1; i > bestIdx; i-- {
		b.move(moves[i])
	}
	sc.moves = moves
	return betterState(bestViol, bestCutDelta, startViol, 0)
}

// pickMoveBuckets selects the best admissible move from either direction's
// bucket structure: pop each side's top candidate, drop candidates whose move
// would increase the violation (they re-enter when a neighbour move changes
// their gain), and keep the (violation, gain)-best of the two, returning the
// loser to its bucket. A second probe round avoids stalling on a single
// inadmissible top entry, mirroring the heap path.
func pickMoveBuckets(b *bisection, bk [2]*gainBuckets, gain []int32, curViol float64) (int32, bool) {
	const eps = 1e-12
	for probe := 0; probe < 2; probe++ {
		var bestV int32 = -1
		var bestGain int32
		var bestViol float64
		for s := int32(0); s < 2; s++ {
			v, ok := bk[s].popMax()
			if !ok {
				continue
			}
			nv := b.violationAfterMove(v)
			if nv > curViol+eps {
				// Inadmissible now; leave it out. A neighbour move that
				// changes its gain re-inserts it via update.
				continue
			}
			if bestV < 0 || nv < bestViol-eps || (nv <= bestViol+eps && gain[v] > bestGain) {
				if bestV >= 0 {
					bk[b.where[bestV]].insert(bestV, gain[bestV])
				}
				bestV, bestGain, bestViol = v, gain[v], nv
			} else {
				bk[s].insert(v, gain[v])
			}
		}
		if bestV >= 0 {
			return bestV, true
		}
		if bk[0].len()+bk[1].len() == 0 {
			break
		}
	}
	return -1, false
}

// fmPassHeap is the original lazy-deletion-heap FM pass, retained as the
// small-n fallback (see fmPass).
func fmPassHeap(b *bisection, sc *scratch, gain []int32, boundary []bool) bool {
	g := b.g
	n := g.NumVertices()

	// One heap per move direction (from side s).
	sc.heaps[0].reset()
	sc.heaps[1].reset()
	heaps := [2]*vertexHeap{&sc.heaps[0], &sc.heaps[1]}
	heaps[0].bind(gain, heapCompactLimit(n))
	heaps[1].bind(gain, heapCompactLimit(n))
	locked := growBool(sc.locked, n)
	sc.locked = locked
	for v := 0; v < n; v++ {
		if boundary[v] {
			heaps[b.where[v]].push(gain[v], int32(v))
		}
	}

	startViol := b.violation()
	curViol := startViol
	var curCutDelta int64 // cut change relative to pass start (negative = better)

	moves := sc.moves[:0]
	bestIdx := -1 // moves[:bestIdx+1] is the best prefix
	bestViol, bestCutDelta := startViol, int64(0)

	// Bound non-improving streaks to keep passes near-linear.
	maxStall := 64 + n/16
	stall := 0

	validFrom := func(s int32) func(int32) bool {
		return func(v int32) bool { return !locked[v] && b.where[v] == s }
	}

	for heaps[0].len()+heaps[1].len() > 0 && stall < maxStall {
		// Choose the best admissible move from either direction.
		v, ok := pickMove(b, heaps, gain, curViol, validFrom)
		if !ok {
			break
		}
		locked[v] = true
		newViol := b.violationAfterMove(v)
		curCutDelta -= int64(gain[v])
		s := b.where[v]
		b.move(v)
		curViol = newViol
		moves = append(moves, v)

		// Update neighbour gains.
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			u := g.Adjncy[i]
			w := g.AdjWgt[i]
			if b.where[u] == s {
				gain[u] += 2 * w // edge became external for u
			} else {
				gain[u] -= 2 * w // edge became internal for u
			}
			if !locked[u] {
				heaps[b.where[u]].push(gain[u], u)
			}
		}

		if betterState(curViol, curCutDelta, bestViol, bestCutDelta) {
			bestViol, bestCutDelta = curViol, curCutDelta
			bestIdx = len(moves) - 1
			stall = 0
		} else {
			stall++
		}
	}

	// Roll back to the best prefix.
	for i := len(moves) - 1; i > bestIdx; i-- {
		b.move(moves[i])
	}
	sc.moves = moves
	return betterState(bestViol, bestCutDelta, startViol, 0)
}

// betterState orders (violation, cutDelta) lexicographically with a small
// violation epsilon.
func betterState(v1 float64, c1 int64, v2 float64, c2 int64) bool {
	const eps = 1e-12
	if v1 < v2-eps {
		return true
	}
	if v1 > v2+eps {
		return false
	}
	return c1 < c2
}

// pickMove selects the highest-gain unlocked boundary vertex whose move does
// not increase the violation. When the current state is balanced, moves must
// keep it balanced; when violated, only violation-reducing or -neutral moves
// are allowed, preferring reducers.
func pickMove(b *bisection, heaps [2]*vertexHeap, gain []int32, curViol float64, validFrom func(int32) func(int32) bool) (int32, bool) {
	const eps = 1e-12
	// Peek the best candidate of each direction (with lazy cleanup), then
	// evaluate admissibility; a small bounded probe avoids getting stuck on
	// one inadmissible top entry.
	for probe := 0; probe < 2; probe++ {
		var bestV int32 = -1
		var bestGain int32
		var bestViol float64
		for s := int32(0); s < 2; s++ {
			v, ok := heaps[s].popValid(validFrom(s), gain)
			if !ok {
				continue
			}
			nv := b.violationAfterMove(v)
			if nv > curViol+eps {
				// Inadmissible now; drop it. It will be re-pushed if a
				// neighbour move changes its gain.
				continue
			}
			if bestV < 0 || nv < bestViol-eps || (nv <= bestViol+eps && gain[v] > bestGain) {
				// Return the loser to its heap.
				if bestV >= 0 {
					heaps[b.where[bestV]].push(gain[bestV], bestV)
				}
				bestV, bestGain, bestViol = v, gain[v], nv
			} else {
				heaps[s].push(gain[v], v)
			}
		}
		if bestV >= 0 {
			return bestV, true
		}
		if heaps[0].len()+heaps[1].len() == 0 {
			break
		}
	}
	return -1, false
}

// forceBalance repairs residual violation after refinement: for every
// overweight (side, constraint) pair it collects the movable vertices sorted
// by cut gain and transfers the best ones across until the cap is met, as
// long as each transfer does not increase the overall violation. One sweep
// over the constraints; O(n·ncon + moved·log n).
func forceBalance(b *bisection) {
	const eps = 1e-12
	g := b.g
	n := g.NumVertices()
	for c := 0; c < g.NCon; c++ {
		for s := int32(0); s < 2; s++ {
			if b.side[s][c] <= b.caps[s][c] {
				continue
			}
			// Candidates: vertices on side s carrying constraint c.
			type cand struct {
				v    int32
				gain int32
			}
			var cands []cand
			for v := int32(0); v < int32(n); v++ {
				if b.where[v] != s || g.Weight(v, c) <= 0 {
					continue
				}
				var ed, id int32
				for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
					if b.where[g.Adjncy[i]] != s {
						ed += g.AdjWgt[i]
					} else {
						id += g.AdjWgt[i]
					}
				}
				cands = append(cands, cand{v, ed - id})
			}
			sort.Slice(cands, func(i, j int) bool { return cands[i].gain > cands[j].gain })
			cur := b.violation()
			for _, cd := range cands {
				if b.side[s][c] <= b.caps[s][c] {
					break
				}
				nv := b.violationAfterMove(cd.v)
				if nv < cur-eps {
					b.move(cd.v)
					cur = nv
				}
			}
		}
	}
}

// bisectGraph runs the full multilevel 2-way pipeline on g: coarsen, grow an
// initial bisection on the coarsest graph (several trials, best kept), then
// uncoarsen with FM refinement at every level. frac is the share of every
// constraint that side 0 should receive. Returns the side of each vertex.
// When ctx is cancelled, remaining trials and refinement passes are skipped
// (projection still runs so the assignment stays full length); the top-level
// construction reports the cancellation.
func bisectGraph(ctx context.Context, g *graph.Graph, frac float64, opt Options, rng randSource, pool *graph.Pool, sc *scratch) []int32 {
	caps0, caps1 := sideCaps(g, frac, opt.ImbalanceTol)
	h := coarsen(ctx, g, opt.CoarsenTo, rng, pool, sc, hierConfigFor(opt))
	defer h.close()
	coarsest := h.coarsest()

	// Initial bisection trials on the coarsest graph.
	ispan := obs.StartSpan(ctx, "partition/initial")
	var bestWhere []int32
	bestViol, bestCut := 0.0, int64(0)
	for trial := 0; trial < opt.InitTrials; trial++ {
		if ctx.Err() != nil {
			break
		}
		where := growBisection(coarsest, frac, caps0, caps1, rng, sc)
		b := newBisection(coarsest, where, caps0, caps1)
		refineBisection(b, opt.RefinePasses, sc, ispan)
		viol, cut := b.violation(), b.cut()
		if bestWhere == nil || betterState(viol, cut, bestViol, bestCut) {
			bestWhere, bestViol, bestCut = where, viol, cut
		}
	}
	if bestWhere == nil {
		bestWhere = make([]int32, coarsest.NumVertices())
	}
	if ispan.Active() {
		ispan.SetInt("vertices", int64(coarsest.NumVertices()))
		ispan.SetInt("trials", int64(opt.InitTrials))
		ispan.SetInt("cut", bestCut)
		ispan.SetFloat("violation", bestViol)
	}
	ispan.End()

	// Uncoarsen and refine. Spilled interior rungs are reloaded one at a
	// time (h.graph) and released once their refinement pass is done, so
	// the resident graph state stays O(finest + coarsest + one rung).
	where := bestWhere
	for li := h.levels() - 1; li >= 1; li-- {
		rspan := obs.StartSpan(ctx, "partition/refine")
		where = projectAssignment(h.cmap(li), where)
		if li == 1 {
			// Level 0 is always resident: nothing loads after this
			// projection, so the read-back buffers must not sit under the
			// finest level's refinement.
			h.dropReloadBuffers()
		}
		if ctx.Err() != nil {
			rspan.End()
			continue
		}
		fg := h.graph(li - 1)
		b := newBisection(fg, where, caps0, caps1)
		if rspan.Active() {
			rspan.SetInt("level", int64(li-1))
			rspan.SetInt("vertices", int64(fg.NumVertices()))
		}
		refineBisection(b, opt.RefinePasses, sc, rspan)
		rspan.End()
		where = b.where
		h.release(li - 1)
	}
	if ctx.Err() != nil {
		return where
	}
	// Final balance repair on the finest graph.
	fspan := obs.StartSpan(ctx, "partition/refine")
	if fspan.Active() {
		fspan.SetStr("stage", "balance")
		fspan.SetInt("vertices", int64(g.NumVertices()))
	}
	fb := newBisection(g, where, caps0, caps1)
	forceBalance(fb)
	refineBisection(fb, 2, sc, fspan)
	fspan.End()
	return fb.where
}

// sideCaps computes the per-constraint caps of both sides for a split with
// fraction frac on side 0.
func sideCaps(g *graph.Graph, frac, tol float64) (caps0, caps1 []int64) {
	tot := g.TotalWeights()
	maxV := maxVertexWeights(g)
	caps0 = balanceCaps(tot, frac, tol, maxV)
	caps1 = balanceCaps(tot, 1-frac, tol, maxV)
	return caps0, caps1
}

// randSource is the subset of *rand.Rand the partitioner uses; declared as an
// interface so tests can substitute deterministic sequences.
type randSource interface {
	Intn(n int) int
	Perm(n int) []int
}
