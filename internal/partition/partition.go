// Package partition implements the multilevel graph partitioner at the heart
// of the paper's contribution. It supports single-constraint and
// multi-constraint vertex weights, which is what distinguishes the baseline
// SC_OC strategy (balance one operating-cost weight) from the proposed MC_TL
// strategy (balance one binary constraint per temporal level).
//
// The partitioner follows the classical multilevel scheme used by METIS
// (Karypis & Kumar): heavy-edge-matching coarsening, a greedy-graph-growing
// initial bisection that is aware of all constraints, and multi-constraint
// Fiduccia–Mattheyses boundary refinement during uncoarsening. k-way
// partitions are produced by recursive bisection, which the paper reports
// gives higher quality than direct k-way on these meshes.
package partition

import (
	"context"
	"fmt"
	"math"

	"tempart/internal/graph"
	"tempart/internal/obs"
)

// Options controls the multilevel partitioner.
type Options struct {
	// Seed makes runs reproducible. The zero value is a valid seed.
	Seed int64
	// ImbalanceTol is the per-constraint balance tolerance: every part must
	// satisfy weight ≤ ImbalanceTol · ideal (plus one-vertex slack).
	// Defaults to 1.05.
	ImbalanceTol float64
	// CoarsenTo stops coarsening once the graph has at most this many
	// vertices. Defaults to 128 per constraint.
	CoarsenTo int
	// InitTrials is the number of greedy-graph-growing attempts for the
	// coarsest bisection; the best (balance, cut) result wins. Defaults 8.
	InitTrials int
	// RefinePasses bounds FM passes per uncoarsening level. Defaults 8.
	RefinePasses int
	// Method selects recursive bisection (default) or direct k-way.
	Method Method
	// Trials > 1 runs the whole construction that many times with derived
	// seeds and keeps the best result (smallest max imbalance, then edge
	// cut). Partitioning is cheap relative to a simulation campaign, so a
	// handful of trials is a robust quality lever.
	Trials int
	// Parallelism bounds the worker goroutines the construction may use
	// (recursive-bisection fan-out, sharded matching and contraction,
	// pairwise k-way refinement). Values <= 0 mean GOMAXPROCS; 1 forces
	// serial execution. For a given Seed the result is bit-identical at
	// every Parallelism setting: every subtree of the bisection tree draws
	// from an RNG seeded purely by its position in the tree, never by
	// scheduling order, and parallel refinement commits moves in a fixed
	// serial order.
	Parallelism int
	// Reorder relabels the graph with a cache-conscious BFS ordering
	// (graph.BFSOrder) before construction and maps the partition back to
	// the caller's vertex ids on output, cutting cache misses in the
	// gain-update inner loops of large meshes. The returned Result is
	// expressed entirely in original ids; only wall time (and, because the
	// construction sees a relabeled graph, the specific local optimum)
	// changes.
	Reorder bool
	// Arena maps spilled intermediate coarse graphs from the on-disk spill
	// store read-only (mmap) during uncoarsening instead of reading them
	// back onto the heap. Spilling itself is always on for rungs above an
	// internal size floor; Arena only selects the reload mechanism.
	// Partitions are byte-identical with Arena on or off: spilled bytes are
	// a verbatim round-trip of the coarse CSR, never a recomputation. On
	// platforms without mmap the setting silently degrades to the heap
	// read-back path.
	Arena bool

	// streamMinVerts overrides the streaming floor (streamMinVertices) so
	// tests can force spilling on tiny meshes or disable it entirely; zero
	// means the default.
	streamMinVerts int
}

func (o Options) withDefaults(ncon int) Options {
	if o.ImbalanceTol <= 1 {
		o.ImbalanceTol = 1.05
	}
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 128 * ncon
	}
	if o.InitTrials <= 0 {
		o.InitTrials = 8
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 8
	}
	return o
}

// Result describes a k-way partition of a graph. The JSON tags (and the
// binary Encode/Decode pair in io.go) exist so results can be persisted and
// shipped between processes — tempartd stores encoded results to warm-start
// incremental repartitions.
type Result struct {
	// Part maps each vertex to its part in [0, NumParts).
	Part []int32 `json:"part"`
	// NumParts is k.
	NumParts int `json:"num_parts"`
	// PartWeights[p][c] is the total weight of constraint c in part p.
	PartWeights [][]int64 `json:"part_weights"`
	// EdgeCut is the total weight of edges whose endpoints lie in
	// different parts.
	EdgeCut int64 `json:"edge_cut"`
}

// Imbalance returns, for each constraint, max_p PartWeights[p][c] / ideal,
// where ideal = total[c]/k. A perfectly balanced constraint scores 1.0.
// Constraints with zero total weight score 1.0.
func (r *Result) Imbalance() []float64 {
	if r.NumParts == 0 {
		return nil
	}
	ncon := len(r.PartWeights[0])
	out := make([]float64, ncon)
	for c := 0; c < ncon; c++ {
		var tot, max int64
		for p := 0; p < r.NumParts; p++ {
			w := r.PartWeights[p][c]
			tot += w
			if w > max {
				max = w
			}
		}
		if tot == 0 {
			out[c] = 1
			continue
		}
		ideal := float64(tot) / float64(r.NumParts)
		out[c] = float64(max) / ideal
	}
	return out
}

// MaxImbalance returns the worst per-constraint imbalance.
func (r *Result) MaxImbalance() float64 {
	worst := 1.0
	for _, v := range r.Imbalance() {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// NewResult computes part weights and edge cut for an existing assignment.
func NewResult(g *graph.Graph, part []int32, k int) *Result {
	r := &Result{Part: part, NumParts: k}
	r.PartWeights = make([][]int64, k)
	for p := range r.PartWeights {
		r.PartWeights[p] = make([]int64, g.NCon)
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		p := part[v]
		for c := 0; c < g.NCon; c++ {
			r.PartWeights[p][c] += int64(g.Weight(int32(v), c))
		}
	}
	r.EdgeCut = ComputeEdgeCut(g, part)
	return r
}

// ComputeEdgeCut returns the total weight of cut edges under the assignment.
func ComputeEdgeCut(g *graph.Graph, part []int32) int64 {
	var cut int64
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		pv := part[v]
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			if part[g.Adjncy[i]] != pv {
				cut += int64(g.AdjWgt[i])
			}
		}
	}
	return cut / 2
}

// Validate checks that the assignment is a complete partition into k parts.
func (r *Result) Validate(g *graph.Graph) error {
	if len(r.Part) != g.NumVertices() {
		return fmt.Errorf("partition: %d assignments for %d vertices", len(r.Part), g.NumVertices())
	}
	seen := make([]bool, r.NumParts)
	for v, p := range r.Part {
		if p < 0 || int(p) >= r.NumParts {
			return fmt.Errorf("partition: vertex %d in part %d, want [0,%d)", v, p, r.NumParts)
		}
		seen[p] = true
	}
	for p, ok := range seen {
		if !ok && g.NumVertices() >= r.NumParts {
			return fmt.Errorf("partition: part %d is empty", p)
		}
	}
	return nil
}

// Partition computes a k-way partition with the method selected in opt
// (multilevel recursive bisection by default). It is the main entry point of
// the package. Cancelling ctx stops the construction at the next trial,
// coarsening or refinement boundary and returns ctx's error.
//
// When ctx carries an obs recorder the construction emits hierarchical spans
// (root "partition", per-level "partition/coarsen" with match/contract
// children, "partition/initial", "partition/refine" with per-FM-pass cut and
// violation). Instrumentation never touches the RNG streams, so results stay
// bit-identical whether or not anyone is tracing.
func Partition(ctx context.Context, g *graph.Graph, k int, opt Options) (*Result, error) {
	span := obs.StartSpan(ctx, "partition")
	if span.Active() {
		span.SetInt("k", int64(k))
		span.SetInt("vertices", int64(g.NumVertices()))
		span.SetInt("constraints", int64(g.NCon))
		span.SetStr("method", opt.Method.String())
		span.SetInt("seed", opt.Seed)
		ctx = obs.ContextWithSpan(ctx, span)
	}
	var res *Result
	var err error
	if opt.Reorder {
		res, err = reorderedConstruct(ctx, g, k, opt, partitionTrials)
	} else {
		res, err = partitionTrials(ctx, g, k, opt)
	}
	if span.Active() && res != nil {
		span.SetInt("edge_cut", res.EdgeCut)
		span.SetFloat("imbalance", res.MaxImbalance())
	}
	span.End()
	return res, err
}

// reorderedConstruct runs construct on a BFS-relabeled copy of g and maps
// the resulting assignment back to the original vertex ids. Part weights and
// edge cut are invariant under relabeling, so the Result is reused with only
// its Part array rewritten.
func reorderedConstruct(ctx context.Context, g *graph.Graph, k int, opt Options,
	construct func(context.Context, *graph.Graph, int, Options) (*Result, error)) (*Result, error) {
	rspan := obs.StartSpan(ctx, "partition/reorder")
	order := graph.BFSOrder(g)
	pg := graph.Permute(g, order)
	if rspan.Active() {
		rspan.SetInt("vertices", int64(g.NumVertices()))
	}
	rspan.End()
	opt.Reorder = false
	res, err := construct(ctx, pg, k, opt)
	if err != nil || res == nil {
		return res, err
	}
	part := make([]int32, len(res.Part))
	for i, p := range res.Part {
		part[order[i]] = p
	}
	res.Part = part
	return res, nil
}

// partitionTrials runs the trials loop around the selected construction.
func partitionTrials(ctx context.Context, g *graph.Graph, k int, opt Options) (*Result, error) {
	construct := partitionRB
	if opt.Method == DirectKWay {
		construct = PartitionKWay
	}
	trials := opt.Trials
	if trials <= 1 {
		return construct(ctx, g, k, opt)
	}
	var best *Result
	for t := 0; t < trials; t++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("partition: %w", err)
		}
		o := opt
		o.Trials = 0
		o.Seed = opt.Seed + int64(t)*1_000_003
		r, err := construct(ctx, g, k, o)
		if err != nil {
			return nil, err
		}
		obs.FromContext(ctx).Count("partition.trials", 1)
		if best == nil || betterResult(r, best) {
			best = r
		}
	}
	return best, nil
}

// betterResult orders results by (max imbalance, edge cut).
func betterResult(a, b *Result) bool {
	ia, ib := a.MaxImbalance(), b.MaxImbalance()
	const eps = 1e-9
	if ia < ib-eps {
		return true
	}
	if ia > ib+eps {
		return false
	}
	return a.EdgeCut < b.EdgeCut
}

// partitionRB is the recursive-bisection construction.
func partitionRB(ctx context.Context, g *graph.Graph, k int, opt Options) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k = %d, want >= 1", k)
	}
	n := g.NumVertices()
	if k > 1 && n > k && ctx.Err() == nil {
		opt = opt.withDefaults(g.NCon)
		pool := graph.NewPool(opt.Parallelism)
		// The root bisection runs before part or the identity vertex list
		// exist: both arrays are dead weight during the root's coarsening,
		// which is the peak-memory moment of the whole partition (see
		// rootBisect). They are materialized right after, for the subtrees.
		left, right := rootBisect(ctx, g, k, opt, pool)
		part := make([]int32, n)
		pool.Fork(
			func() {
				recursiveBisect(ctx, g, left.Vertices, left.FirstPart, left.K, part, opt, left.Seed, pool)
			},
			func() {
				recursiveBisect(ctx, g, right.Vertices, right.FirstPart, right.K, part, opt, right.Seed, pool)
			},
		)
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("partition: %w", err)
		}
		PolishRB(ctx, g, part, k, opt)
		return NewResult(g, part, k), nil
	}
	// Base cases (k == 1, degenerate n <= k, pre-cancelled ctx): identical to
	// what recursiveBisect's commitBaseCase produces over identity vertices.
	part := make([]int32, n)
	if k > 1 && ctx.Err() == nil {
		for i := range part {
			part[i] = int32(i % k)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	r := NewResult(g, part, k)
	return r, nil
}

// rbPolishPasses bounds the cross-boundary passes concluding RB construction.
const rbPolishPasses = 2

// PolishRB runs the cross-boundary polish that concludes recursive-bisection
// construction: recursive bisection never reconsiders a cut once a subtree
// splits, so a few pairwise k-way FM passes over the finished assignment
// recover cut the recursion left between sibling subtrees. It is part of
// Partition's RB pipeline and exported for one reason: a coordinator that
// stitches SubtreeTask results (see SplitSubtrees) must apply the same
// polish to the assembled assignment to reproduce Partition byte-for-byte.
// Deterministic at every opt.Parallelism; returns the number of moves.
func PolishRB(ctx context.Context, g *graph.Graph, part []int32, k int, opt Options) int {
	if k < 2 {
		return 0
	}
	opt = opt.withDefaults(g.NCon)
	pool := graph.NewPool(opt.Parallelism)
	pspan := obs.StartSpan(ctx, "partition/refine")
	caps := kwayCaps(g, k, opt.ImbalanceTol)
	mv := kwayRefine(ctx, g, part, k, caps, rbPolishPasses, pool)
	if pspan.Active() {
		pspan.SetStr("stage", "rb_polish")
		pspan.SetInt("moves", int64(mv))
	}
	pspan.End()
	return mv
}

// balanceCaps returns, per constraint, the maximum side weight allowed for a
// side targeting the given fraction of the totals: floor(tol·frac·tot),
// raised to ceil(ideal) (pigeonhole feasibility) and to the heaviest single
// vertex (indivisibility feasibility).
func balanceCaps(tot []int64, frac float64, tol float64, maxVwgt []int64) []int64 {
	caps := make([]int64, len(tot))
	for c := range tot {
		ideal := float64(tot[c]) * frac
		cap := int64(ideal * tol)
		if feasible := int64(math.Ceil(ideal - 1e-9)); feasible > cap {
			cap = feasible
		}
		if maxVwgt[c] > cap {
			cap = maxVwgt[c]
		}
		caps[c] = cap
	}
	return caps
}

// maxVertexWeights returns the per-constraint maximum vertex weight.
func maxVertexWeights(g *graph.Graph) []int64 {
	out := make([]int64, g.NCon)
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		for c := 0; c < g.NCon; c++ {
			if w := int64(g.Weight(int32(v), c)); w > out[c] {
				out[c] = w
			}
		}
	}
	return out
}
