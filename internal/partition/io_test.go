package partition

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"tempart/internal/mesh"
)

func TestResultEncodeDecodeRoundTrip(t *testing.T) {
	m := mesh.Cylinder(0.002)
	res, err := PartitionMesh(context.Background(), m, 8, MCTL, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, got) {
		t.Errorf("round trip mismatch:\n in %+v\nout %+v", res, got)
	}

	// Re-encoding must be byte-identical (the daemon content-addresses
	// results by the hash of their encoding).
	var buf2 bytes.Buffer
	if err := got.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-encoding is not canonical")
	}
}

func TestResultJSONTags(t *testing.T) {
	r := &Result{Part: []int32{0, 1, 0}, NumParts: 2,
		PartWeights: [][]int64{{2}, {1}}, EdgeCut: 5}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"part"`, `"num_parts"`, `"part_weights"`, `"edge_cut"`} {
		if !bytes.Contains(b, []byte(field)) {
			t.Errorf("JSON %s missing field %s", b, field)
		}
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*r, back) {
		t.Errorf("JSON round trip mismatch: %+v vs %+v", *r, back)
	}
}

func TestDecodeResultRejectsCorruption(t *testing.T) {
	res := &Result{Part: []int32{0, 1, 1, 0}, NumParts: 2,
		PartWeights: [][]int64{{2}, {2}}, EdgeCut: 1}
	var buf bytes.Buffer
	if err := res.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"bad magic":    append([]byte("NOPE"), good[4:]...),
		"truncated":    good[:len(good)-9],
		"empty":        {},
		"bad version":  append(append([]byte{}, good[:4]...), append([]byte{9, 0, 0, 0}, good[8:]...)...),
		"out of range": func() []byte { b := append([]byte{}, good...); b[20] = 0x7f; return b }(),
	}
	for name, data := range cases {
		if _, err := DecodeResult(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

// FuzzDecodeResult hardens the TPRT decoder the same way FuzzDecode hardens
// the mesh decoder: arbitrary bytes must either fail cleanly or produce a
// result that re-encodes and re-decodes to the same value.
func FuzzDecodeResult(f *testing.F) {
	res := &Result{Part: []int32{0, 1, 2, 1}, NumParts: 3,
		PartWeights: [][]int64{{1, 0}, {2, 1}, {1, 1}}, EdgeCut: 3}
	var seed bytes.Buffer
	if err := res.Encode(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("TPRT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResult(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, p := range r.Part {
			if p < 0 || int(p) >= r.NumParts {
				t.Fatalf("decoded out-of-range assignment %d of %d", p, r.NumParts)
			}
		}
		var buf bytes.Buffer
		if err := r.Encode(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := DecodeResult(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(r, back) {
			t.Fatal("re-encode round trip mismatch")
		}
	})
}
