package partition

import (
	"context"
	"fmt"

	"tempart/internal/graph"
	"tempart/internal/mesh"
)

// Strategy selects the partitioning criterion applied to a mesh, mirroring
// the paper's nomenclature.
type Strategy int

const (
	// SCOC is the baseline Single-Constraint Operating-Cost strategy: one
	// weight per cell, 2^(τmax−τ), balancing the total per-iteration work.
	SCOC Strategy = iota
	// MCTL is the paper's Multi-Constraint Temporal-Level strategy: one
	// binary constraint per temporal level, balancing the cell census of
	// every level simultaneously.
	MCTL
	// UnitCells balances raw cell counts (temporal-level-blind); a naive
	// baseline useful in ablations.
	UnitCells
	// GeomRCB is coordinate recursive-coordinate-bisection on operating
	// costs: the Zoltan-style geometric baseline mentioned in related work.
	GeomRCB
	// SFC orders cells along a 3D Hilbert space-filling curve and cuts it
	// into equal-cost chunks — the SFC approach of the paper's reference
	// [1] (Aftosmis et al.).
	SFC
)

// String implements fmt.Stringer using the paper's labels.
func (s Strategy) String() string {
	switch s {
	case SCOC:
		return "SC_OC"
	case MCTL:
		return "MC_TL"
	case UnitCells:
		return "UNIT"
	case GeomRCB:
		return "GEOM_RCB"
	case SFC:
		return "SFC"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy converts a label (as printed by String) to a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "SC_OC", "sc_oc":
		return SCOC, nil
	case "MC_TL", "mc_tl":
		return MCTL, nil
	case "UNIT", "unit":
		return UnitCells, nil
	case "GEOM_RCB", "geom_rcb":
		return GeomRCB, nil
	case "SFC", "sfc":
		return SFC, nil
	}
	return 0, fmt.Errorf("partition: unknown strategy %q", s)
}

// StrategyGraph builds the weighted dual graph a graph-based strategy
// partitions (the exact graph PartitionMesh would construct). Geometric
// strategies (GEOM_RCB, SFC) have no dual graph and return an error — they
// partition coordinates, not adjacency. A cluster coordinator uses this to
// rebuild the same graph on every node from the mesh identity alone.
func StrategyGraph(m *mesh.Mesh, strat Strategy) (*graph.Graph, error) {
	switch strat {
	case SCOC:
		return m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.SingleCost}), nil
	case MCTL:
		return m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel}), nil
	case UnitCells:
		return m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.Unit}), nil
	}
	return nil, fmt.Errorf("partition: strategy %v has no dual graph (geometric)", strat)
}

// PartitionMesh partitions a mesh into k domains under the given strategy.
// The returned Result is expressed over cells (vertex v = cell v).
// Cancellation of ctx is honoured at trial, coarsening and refinement
// boundaries of the multilevel strategies; the geometric strategies check it
// once up front (they are orders of magnitude cheaper).
func PartitionMesh(ctx context.Context, m *mesh.Mesh, k int, strat Strategy, opt Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	switch strat {
	case SCOC, MCTL, UnitCells:
		g, err := StrategyGraph(m, strat)
		if err != nil {
			return nil, err
		}
		return Partition(ctx, g, k, opt)
	case GeomRCB:
		return GeometricRCB(m, k)
	case SFC:
		return SFCPartition(m, k)
	}
	return nil, fmt.Errorf("partition: unknown strategy %v", strat)
}
