package partition

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"tempart/internal/graph"
	"tempart/internal/mesh"
)

func TestPartitionKWayGrid(t *testing.T) {
	g := graph.Grid(24, 24)
	for _, k := range []int{4, 7, 16} {
		r, err := PartitionKWay(context.Background(), g, k, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Validate(g); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if imb := r.MaxImbalance(); imb > 1.25 {
			t.Errorf("k=%d: imbalance %.3f", k, imb)
		}
		if r.EdgeCut <= 0 {
			t.Errorf("k=%d: zero cut for nontrivial split", k)
		}
	}
}

func TestPartitionKWayDegenerate(t *testing.T) {
	g := graph.Grid(3, 3)
	r, err := PartitionKWay(context.Background(), g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.EdgeCut != 0 {
		t.Error("k=1 should have zero cut")
	}
	// More parts than vertices.
	r, err = PartitionKWay(context.Background(), g, 20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Part) != 9 {
		t.Error("degenerate spread failed")
	}
	if _, err := PartitionKWay(context.Background(), g, 0, Options{}); err == nil {
		t.Error("accepted k=0")
	}
}

func TestOptionsMethodDispatch(t *testing.T) {
	g := graph.Grid(16, 16)
	rb, err := Partition(context.Background(), g, 8, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	kw, err := Partition(context.Background(), g, 8, Options{Seed: 2, Method: DirectKWay})
	if err != nil {
		t.Fatal(err)
	}
	if err := kw.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Both valid; methods generally differ in assignment.
	if rb.NumParts != kw.NumParts {
		t.Error("part counts differ")
	}
}

func TestKWayMultiConstraintBalance(t *testing.T) {
	m := mesh.Cylinder(0.001)
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	r, err := PartitionKWay(context.Background(), g, 8, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	census := m.Census()
	for c, v := range r.Imbalance() {
		perPart := float64(census[c]) / 8
		if v > 1.5+4.0/perPart {
			t.Errorf("k-way level %d imbalance %.2f", c, v)
		}
	}
}

func TestKWayRefineImprovesCut(t *testing.T) {
	// Random assignment refined must not get worse, usually far better.
	g := graph.Grid(20, 20)
	part := make([]int32, g.NumVertices())
	for i := range part {
		part[i] = int32(i % 4)
	}
	before := ComputeEdgeCut(g, part)
	caps := kwayCaps(g, 4, 1.05)
	kwayRefine(context.Background(), g, part, 4, caps, 8, nil)
	after := ComputeEdgeCut(g, part)
	if after > before {
		t.Errorf("refinement worsened cut %d -> %d", before, after)
	}
	if after >= before {
		t.Logf("no improvement (%d); suspicious for striped input", after)
	}
	r := NewResult(g, part, 4)
	if imb := r.MaxImbalance(); imb > 1.3 {
		t.Errorf("refinement broke balance: %.2f", imb)
	}
}

func TestRefineKWayOriginWithoutPenalty(t *testing.T) {
	// A nil MovePenalty alongside Origin means zero bias, not an error:
	// repart relies on this when the migration penalty is disabled.
	g := graph.Grid(12, 12)
	part := make([]int32, g.NumVertices())
	for i := range part {
		part[i] = int32(i % 3)
	}
	origin := make([]int32, len(part))
	copy(origin, part)
	if err := RefineKWay(context.Background(), g, part, 3, RefineOptions{Origin: origin}); err != nil {
		t.Fatalf("RefineKWay with nil MovePenalty: %v", err)
	}
	if err := NewResult(g, part, 3).Validate(g); err != nil {
		t.Fatal(err)
	}
	// Length mismatches are still rejected.
	if err := RefineKWay(context.Background(), g, part, 3, RefineOptions{Origin: origin[:1]}); err == nil {
		t.Error("accepted short origin")
	}
	if err := RefineKWay(context.Background(), g, part, 3, RefineOptions{Origin: origin, MovePenalty: []int64{1}}); err == nil {
		t.Error("accepted short penalty")
	}
}

func TestMethodString(t *testing.T) {
	if RecursiveBisection.String() != "rb" || DirectKWay.String() != "kway" {
		t.Error("method labels wrong")
	}
}

func TestSFCPartitionBalanced(t *testing.T) {
	m := mesh.Cube(0.1)
	r, err := SFCPartition(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.SingleCost})
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
	if imb := r.MaxImbalance(); imb > 1.2 {
		t.Errorf("SFC cost imbalance %.3f, want near 1 (curve cuts are exact)", imb)
	}
	if _, err := SFCPartition(m, 0); err == nil {
		t.Error("accepted k=0")
	}
}

func TestSFCLocality(t *testing.T) {
	// SFC domains should have a far lower edge cut than a random assignment
	// of the same sizes (locality of the curve).
	m := mesh.Cube(0.1)
	r, err := SFCPartition(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.SingleCost})
	random := make([]int32, m.NumCells())
	for i := range random {
		random[i] = int32(i % 8)
	}
	if rc := ComputeEdgeCut(g, random); r.EdgeCut >= rc/2 {
		t.Errorf("SFC cut %d not clearly below random-ish cut %d", r.EdgeCut, rc)
	}
}

// TestHilbertCurveIsBijective: distinct coarse coordinates map to distinct
// indices, and the curve visits neighbours: consecutive indices decode to
// nearby points (we check injectivity only, which catches interleaving and
// transform bugs).
func TestHilbertCurveIsBijective(t *testing.T) {
	const order = 3 // 8^3 = 512 points
	seen := map[uint64][3]uint32{}
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			for z := uint32(0); z < 8; z++ {
				idx := hilbert3D(x, y, z, order)
				if idx >= 512 {
					t.Fatalf("index %d out of range for order 3", idx)
				}
				if prev, dup := seen[idx]; dup {
					t.Fatalf("collision: %v and %v both map to %d", prev, [3]uint32{x, y, z}, idx)
				}
				seen[idx] = [3]uint32{x, y, z}
			}
		}
	}
	// Continuity: consecutive indices are unit-distance apart on the grid.
	for i := uint64(0); i+1 < 512; i++ {
		a, b := seen[i], seen[i+1]
		d := absDiff(a[0], b[0]) + absDiff(a[1], b[1]) + absDiff(a[2], b[2])
		if d != 1 {
			t.Fatalf("curve jumps from %v to %v (L1 distance %d)", a, b, d)
		}
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

// Property: every k-way method yields a complete valid partition.
func TestKWayValidProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		g := graph.Grid(10+int(seed%7+7)%7, 12)
		k := 2 + int(kRaw%6)
		r, err := PartitionKWay(context.Background(), g, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		return r.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// newTestRand avoids importing math/rand at every call site in tests.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
