package partition

import (
	"context"
	"fmt"

	"tempart/internal/graph"
)

// RefineOptions controls RefineKWay.
type RefineOptions struct {
	// ImbalanceTol is the per-constraint balance tolerance (default 1.05).
	ImbalanceTol float64
	// Passes bounds the refinement sweeps (default 8).
	Passes int
	// Seed is retained for compatibility; the pairwise-FM engine is fully
	// deterministic and no longer consumes randomness.
	Seed int64
	// Parallelism bounds the worker goroutines of the refinement engine
	// (<= 0: one per core). The refined assignment is byte-identical at
	// every setting; see Options.Parallelism.
	Parallelism int
	// Origin and MovePenalty, when both set (length = vertices), bias
	// refinement against migration: moving vertex v off Origin[v] reduces
	// the move's gain by MovePenalty[v] edge-weight units, and moving it
	// back to Origin[v] adds the same. Balance-restoring moves remain
	// admissible regardless of penalty — the bias steers which vertices
	// migrate, it never blocks rebalancing. Origin with a nil MovePenalty
	// is a zero bias: refinement runs unbiased.
	Origin      []int32
	MovePenalty []int64
}

// RefineKWay improves an existing k-way assignment in place with the
// multi-constraint pairwise-FM boundary refinement used by the direct k-way
// construction, optionally biased against migration (see RefineOptions).
// Cancelling ctx stops at the next pass boundary; the assignment is always
// left in a consistent (if less refined) state. Steady-state calls allocate
// nothing: every working buffer comes from pooled scratch arenas.
func RefineKWay(ctx context.Context, g *graph.Graph, part []int32, k int, opt RefineOptions) error {
	n := g.NumVertices()
	if len(part) != n {
		return fmt.Errorf("partition: %d assignments for %d vertices", len(part), n)
	}
	if k < 1 {
		return errBadK(k)
	}
	if opt.ImbalanceTol <= 1 {
		opt.ImbalanceTol = 1.05
	}
	if opt.Passes <= 0 {
		opt.Passes = 8
	}
	var bias moveBias
	if opt.Origin != nil {
		if len(opt.Origin) != n {
			return fmt.Errorf("partition: origin length %d, want %d", len(opt.Origin), n)
		}
		if opt.MovePenalty != nil {
			if len(opt.MovePenalty) != n {
				return fmt.Errorf("partition: penalty length %d, want %d", len(opt.MovePenalty), n)
			}
			bias = moveBias{origin: opt.Origin, pen: opt.MovePenalty}
		}
	}
	pool := graph.NewPool(opt.Parallelism)
	ks := getKwayScratch(n)
	defer putKwayScratch(ks)
	ks.caps = kwayCapsInto(ks.caps, g, k, opt.ImbalanceTol)
	kwayRefineWith(ctx, g, part, k, ks.caps, opt.Passes, pool, bias, ks)
	return nil
}
