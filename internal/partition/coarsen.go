package partition

import (
	"context"

	"tempart/internal/graph"
	"tempart/internal/obs"
)

// coarsen builds the multilevel hierarchy by repeated heavy-edge matching
// until the graph has at most coarsenTo vertices or matching stalls (the
// coarse graph shrinks by less than 10%). It returns the hierarchy from
// finest (input, cmap nil) to coarsest; interior rungs above cfg.minVerts are
// spilled out of the heap as soon as they stop being the active coarsening
// frontier (see hier). Cancellation is honoured *inside* heavyEdgeMatching
// (every matchCancelStride vertices), not just between levels, so a cancelled
// request never pays for a full matching pass — let alone the contraction
// that would follow it — on a large graph.
func coarsen(ctx context.Context, g *graph.Graph, coarsenTo int, rng randSource, pool *graph.Pool, sc *scratch, cfg hierConfig) *hier {
	h := newHier(g, cfg)
	cur := g
	for cur.NumVertices() > coarsenTo && ctx.Err() == nil {
		shrinkMatchScratch(sc, cur.NumVertices())
		lspan := obs.StartSpan(ctx, "partition/coarsen")
		if lspan.Active() {
			lspan.SetInt("level", int64(h.levels()-1))
			lspan.SetInt("vertices", int64(cur.NumVertices()))
		}
		mspan := lspan.Start("partition/coarsen/match")
		cmap, ncoarse, ok := heavyEdgeMatching(ctx, cur, rng, pool, sc)
		mspan.End()
		if !ok {
			lspan.End()
			break // cancelled mid-match; do not contract
		}
		if float64(ncoarse) > 0.9*float64(cur.NumVertices()) {
			lspan.End()
			break // diminishing returns; stop here
		}
		// The matching buffers are dead until the next level's pass; drop
		// oversized ones before contraction so they don't sit under the
		// triple-resident window (finest + current + coarse being built).
		shrinkMatchScratch(sc, ncoarse)
		cspan := lspan.Start("partition/coarsen/contract")
		cg := cur.ContractP(cmap, ncoarse, pool)
		cspan.End()
		if lspan.Active() {
			lspan.SetInt("coarse_vertices", int64(ncoarse))
		}
		lspan.End()
		h.push(cg, cmap)
		cur = cg
	}
	return h
}

// matchCancelStride is how many vertices heavyEdgeMatching processes between
// context checks; it bounds cancellation latency within a matching pass.
const matchCancelStride = 1024

// shrinkMatchScratch drops the matching buffers when their capacity is at
// least twice the current level's need and the excess is real memory. The
// arena normally only grows — right for refinement, where every pass runs at
// the finest size — but during coarsening each level halves, so buffers grown
// for the finest matching would otherwise sit at full size through the
// triple-resident contraction window that is the partitioner's peak-RSS
// moment. The realloc this costs is one small allocation per deep level.
func shrinkMatchScratch(sc *scratch, n int) {
	const floorWords = 2 << 20 // don't bother below 8 MiB per buffer
	if c := cap(sc.match); c >= 2*n && c > floorWords {
		sc.match = nil
		sc.pref = nil
	}
}

// heavyEdgeMatching computes a matching that pairs each unmatched vertex with
// its unmatched neighbour of heaviest connecting edge, visiting vertices in
// random order. It returns the fine→coarse map and the coarse vertex count;
// ok is false when ctx was cancelled before the matching finished (cmap is
// nil in that case). Unmatched vertices become singleton coarse vertices.
//
// The candidate scoring is sharded across the pool: pref[v] precomputes v's
// first maximum-weight neighbour, which is exactly the vertex the serial scan
// would pick whenever that neighbour is still unmatched (any earlier
// neighbour has a strictly smaller weight). The sequential sweep then only
// falls back to a full scan when the preferred neighbour was already taken,
// so the matching is bit-identical to the serial algorithm while the bulk of
// the edge scanning runs in parallel.
func heavyEdgeMatching(ctx context.Context, g *graph.Graph, rng randSource, pool *graph.Pool, sc *scratch) (cmap []int32, ncoarse int, ok bool) {
	if ctx.Err() != nil {
		return nil, 0, false
	}
	n := g.NumVertices()

	pref := growI32(sc.pref, n)
	sc.pref = pref
	bounds := pool.Bounds(n, 4096)
	pool.RunN(len(bounds)-1, func(s int) {
		for v := bounds[s]; v < bounds[s+1]; v++ {
			adj := g.Neighbors(int32(v))
			wgt := g.EdgeWeights(int32(v))
			var best int32 = -1
			var bestW int32 = -1
			for i, u := range adj {
				if wgt[i] > bestW {
					best, bestW = u, wgt[i]
				}
			}
			pref[v] = best
		}
	})

	match := growI32(sc.match, n)
	sc.match = match
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	for oi, vi := range order {
		if oi%matchCancelStride == 0 && ctx.Err() != nil {
			return nil, 0, false
		}
		v := int32(vi)
		if match[v] >= 0 {
			continue
		}
		best := pref[v]
		if best >= 0 && match[best] >= 0 {
			// Preferred neighbour already matched; fall back to the scan.
			best = -1
			var bestW int32 = -1
			adj := g.Neighbors(v)
			wgt := g.EdgeWeights(v)
			for i, u := range adj {
				if match[u] < 0 && wgt[i] > bestW {
					best, bestW = u, wgt[i]
				}
			}
		}
		if best >= 0 {
			match[v], match[best] = best, v
		} else {
			match[v] = v // singleton
		}
	}

	// cmap outlives the call (it is retained by the level hierarchy), so it
	// is allocated fresh rather than drawn from the scratch arena.
	cmap = make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	next := int32(0)
	for v := 0; v < n; v++ {
		if cmap[v] >= 0 {
			continue
		}
		cmap[v] = next
		if m := match[v]; m != int32(v) {
			cmap[m] = next
		}
		next++
	}
	return cmap, int(next), true
}

// projectAssignment pushes a coarse 0/1 (or k-way) assignment down one level:
// each fine vertex inherits the part of its coarse vertex.
func projectAssignment(cmap []int32, coarsePart []int32) []int32 {
	fine := make([]int32, len(cmap))
	for v, cv := range cmap {
		fine[v] = coarsePart[cv]
	}
	return fine
}
