package partition

import (
	"context"

	"tempart/internal/graph"
)

// level is one rung of the multilevel hierarchy: the coarse graph plus the
// mapping from the finer graph's vertices to coarse vertices.
type level struct {
	g    *graph.Graph
	cmap []int32 // fine vertex -> coarse vertex (len = finer graph size)
}

// coarsen builds the multilevel hierarchy by repeated heavy-edge matching
// until the graph has at most coarsenTo vertices or matching stalls (the
// coarse graph shrinks by less than 10%). It returns the hierarchy from
// finest (input, cmap nil) to coarsest. Cancelling ctx stops after the
// current matching level.
func coarsen(ctx context.Context, g *graph.Graph, coarsenTo int, rng randSource) []level {
	levels := []level{{g: g}}
	cur := g
	for cur.NumVertices() > coarsenTo && ctx.Err() == nil {
		cmap, ncoarse := heavyEdgeMatching(cur, rng)
		if float64(ncoarse) > 0.9*float64(cur.NumVertices()) {
			break // diminishing returns; stop here
		}
		cg := cur.Contract(cmap, ncoarse)
		levels = append(levels, level{g: cg, cmap: cmap})
		cur = cg
	}
	return levels
}

// heavyEdgeMatching computes a matching that pairs each unmatched vertex with
// its unmatched neighbour of heaviest connecting edge, visiting vertices in
// random order. It returns the fine→coarse map and the coarse vertex count.
// Unmatched vertices become singleton coarse vertices.
func heavyEdgeMatching(g *graph.Graph, rng randSource) (cmap []int32, ncoarse int) {
	n := g.NumVertices()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	for _, vi := range order {
		v := int32(vi)
		if match[v] >= 0 {
			continue
		}
		var best int32 = -1
		var bestW int32 = -1
		adj := g.Neighbors(v)
		wgt := g.EdgeWeights(v)
		for i, u := range adj {
			if match[u] < 0 && wgt[i] > bestW {
				best, bestW = u, wgt[i]
			}
		}
		if best >= 0 {
			match[v], match[best] = best, v
		} else {
			match[v] = v // singleton
		}
	}
	cmap = make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	next := int32(0)
	for v := 0; v < n; v++ {
		if cmap[v] >= 0 {
			continue
		}
		cmap[v] = next
		if m := match[v]; m != int32(v) {
			cmap[m] = next
		}
		next++
	}
	return cmap, int(next)
}

// projectAssignment pushes a coarse 0/1 (or k-way) assignment down one level:
// each fine vertex inherits the part of its coarse vertex.
func projectAssignment(cmap []int32, coarsePart []int32) []int32 {
	fine := make([]int32, len(cmap))
	for v, cv := range cmap {
		fine[v] = coarsePart[cv]
	}
	return fine
}
