package partition

import "testing"

func TestGainBucketsOrdering(t *testing.T) {
	var b gainBuckets
	b.reset(8, 5)
	b.insert(0, 3)
	b.insert(1, -2)
	b.insert(2, 5)
	b.insert(3, 0)
	if b.len() != 4 {
		t.Fatalf("len = %d, want 4", b.len())
	}
	want := []int32{2, 0, 3, 1} // descending key order
	for _, w := range want {
		v, ok := b.popMax()
		if !ok || v != w {
			t.Fatalf("popMax = %d,%v, want %d", v, ok, w)
		}
	}
	if _, ok := b.popMax(); ok {
		t.Fatal("popMax on empty structure returned a vertex")
	}
}

func TestGainBucketsLIFOWithinBucket(t *testing.T) {
	var b gainBuckets
	b.reset(4, 3)
	b.insert(0, 2)
	b.insert(1, 2)
	b.insert(2, 2)
	// Most recently inserted first — the classical FM discipline.
	for _, w := range []int32{2, 1, 0} {
		if v, _ := b.popMax(); v != w {
			t.Fatalf("popMax = %d, want %d (LIFO violated)", v, w)
		}
	}
}

func TestGainBucketsUpdateAndRemove(t *testing.T) {
	var b gainBuckets
	b.reset(4, 10)
	b.insert(0, 1)
	b.insert(1, 2)
	b.update(0, 7) // move to a higher bucket
	if v, _ := b.popMax(); v != 0 {
		t.Fatal("update did not reprioritise")
	}
	// update on an absent vertex inserts it.
	b.update(2, 3)
	if !b.contains(2) {
		t.Fatal("update did not insert absent vertex")
	}
	b.remove(2)
	if b.contains(2) {
		t.Fatal("remove left vertex queued")
	}
	if v, _ := b.popMax(); v != 1 {
		t.Fatal("remaining vertex lost")
	}
	if b.len() != 0 {
		t.Fatalf("len = %d after draining", b.len())
	}
}

func TestGainBucketsClampsExtremeKeys(t *testing.T) {
	var b gainBuckets
	b.reset(4, 2)
	b.insert(0, 100)  // clamps to +2
	b.insert(1, -100) // clamps to -2
	b.insert(2, 1)
	order := []int32{0, 2, 1}
	for _, w := range order {
		if v, _ := b.popMax(); v != w {
			t.Fatalf("clamped ordering wrong: got %d, want %d", v, w)
		}
	}
}

func TestGainBucketsGrow(t *testing.T) {
	var b gainBuckets
	b.reset(2, 4)
	b.insert(0, 1)
	b.grow(5)
	b.insert(4, 3)
	if v, _ := b.popMax(); v != 4 {
		t.Fatal("vertex added after grow not found")
	}
	if v, _ := b.popMax(); v != 0 {
		t.Fatal("pre-grow vertex lost")
	}
}

func TestGainBucketsResetReuses(t *testing.T) {
	var b gainBuckets
	b.reset(4, 3)
	b.insert(0, 1)
	b.insert(1, 2)
	b.reset(3, 2)
	if b.len() != 0 {
		t.Fatal("reset kept entries")
	}
	b.insert(2, -1)
	if v, _ := b.popMax(); v != 2 {
		t.Fatal("structure unusable after reset")
	}
}

// TestVertexHeapCompaction is the regression test for the unbounded
// stale-entry growth of the lazy-deletion heap: with a bound attached, lazy
// re-pushes compact in place instead of accumulating, while popValid still
// returns the freshest keys.
func TestVertexHeapCompaction(t *testing.T) {
	const n = 32
	keys := make([]int32, n)
	h := newVertexHeap()
	limit := heapCompactLimit(n)
	h.bind(keys, limit)
	// Push far more stale updates than the bound allows: every round bumps
	// every vertex's key and lazily re-pushes it.
	for round := 0; round < 100; round++ {
		for v := int32(0); v < n; v++ {
			keys[v] = int32(round) + v
			h.push(keys[v], v)
		}
		if h.len() > limit {
			t.Fatalf("round %d: heap length %d exceeds bound %d", round, h.len(), limit)
		}
	}
	// The heap must still yield vertices in fresh-key order.
	prev := int32(1 << 30)
	seen := map[int32]bool{}
	for {
		v, ok := h.popValid(func(int32) bool { return true }, keys)
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("vertex %d popped twice", v)
		}
		seen[v] = true
		if keys[v] > prev {
			t.Fatalf("pop order violated: key %d after %d", keys[v], prev)
		}
		prev = keys[v]
	}
	if len(seen) != n {
		t.Fatalf("drained %d vertices, want %d", len(seen), n)
	}
}

// TestVertexHeapUnboundedWithoutBind documents the pre-compaction behaviour
// the small-n callers rely on: without bind, the heap never compacts (and
// popValid filters the stale entries).
func TestVertexHeapUnboundedWithoutBind(t *testing.T) {
	keys := []int32{0, 0}
	h := newVertexHeap()
	for i := 0; i < 100; i++ {
		keys[0] = int32(i)
		h.push(keys[0], 0)
	}
	if h.len() != 100 {
		t.Fatalf("unbound heap compacted: len %d", h.len())
	}
	v, ok := h.popValid(func(int32) bool { return true }, keys)
	if !ok || v != 0 || keys[0] != 99 {
		t.Fatal("fresh entry lost")
	}
}
