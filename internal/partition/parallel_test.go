package partition

import (
	"context"
	"math/rand"
	"testing"

	"tempart/internal/mesh"
)

// parallelismSettings are the worker counts every determinism test sweeps;
// they bracket "serial", "some contention" and "more workers than cores in
// CI" so scheduling differences would surface if results depended on them.
var parallelismSettings = []int{1, 2, 8}

// TestPartitionDeterministicAcrossParallelism is the tentpole's contract:
// for a fixed seed, the partition is byte-identical at every Parallelism
// setting, on every paper mesh, for both construction methods. The subtree
// RNG derivation makes the result a pure function of (graph, options), so the
// tempartd cache may ignore parallelism in its content address.
func TestPartitionDeterministicAcrossParallelism(t *testing.T) {
	meshes := []struct {
		name string
		m    *mesh.Mesh
	}{
		{"cylinder", mesh.Cylinder(0.002)},
		{"cube", mesh.Cube(0.05)},
		{"nozzle", mesh.Nozzle(0.001)},
	}
	methods := []struct {
		name string
		opt  Options
	}{
		{"rb", Options{Seed: 42}},
		{"kway", Options{Seed: 42, Method: DirectKWay}},
	}
	for _, mc := range meshes {
		for _, md := range methods {
			t.Run(mc.name+"/"+md.name, func(t *testing.T) {
				var ref *Result
				for _, par := range parallelismSettings {
					opt := md.opt
					opt.Parallelism = par
					res, err := PartitionMesh(context.Background(), mc.m, 12, MCTL, opt)
					if err != nil {
						t.Fatal(err)
					}
					if ref == nil {
						ref = res
						continue
					}
					if res.EdgeCut != ref.EdgeCut {
						t.Errorf("parallelism %d: edge cut %d, serial %d", par, res.EdgeCut, ref.EdgeCut)
					}
					for i := range res.Part {
						if res.Part[i] != ref.Part[i] {
							t.Fatalf("parallelism %d: cell %d in part %d, serial says %d — result depends on worker count",
								par, i, res.Part[i], ref.Part[i])
						}
					}
				}
			})
		}
	}
}

// TestDualPhaseDeterministicAcrossParallelism covers the per-process fan-out
// of phase 2: the fine-domain assignment must not depend on how the
// subproblems were scheduled.
func TestDualPhaseDeterministicAcrossParallelism(t *testing.T) {
	m := mesh.Cylinder(0.002)
	var ref *DualPhaseResult
	for _, par := range parallelismSettings {
		res, err := DualPhase(context.Background(), m, 4, 4, Options{Seed: 7, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for c := range res.Domain {
			if res.Domain[c] != ref.Domain[c] {
				t.Fatalf("parallelism %d: cell %d in domain %d, serial says %d",
					par, c, res.Domain[c], ref.Domain[c])
			}
		}
	}
}

// TestTrialsDeterministicAcrossParallelism: the Trials quality loop composes
// with the fan-out (each trial is internally parallel) without losing
// reproducibility.
func TestTrialsDeterministicAcrossParallelism(t *testing.T) {
	m := mesh.Cylinder(0.002)
	var ref *Result
	for _, par := range parallelismSettings {
		res, err := PartitionMesh(context.Background(), m, 8, MCTL,
			Options{Seed: 3, Trials: 3, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for i := range res.Part {
			if res.Part[i] != ref.Part[i] {
				t.Fatalf("parallelism %d: cell %d differs from serial", par, i)
			}
		}
	}
}

func TestDeriveSeedAddressesDistinct(t *testing.T) {
	// Sibling and cousin nodes must draw distinct seeds, and the derivation
	// must depend on the parent seed.
	seen := map[int64][2]int{}
	for first := 0; first < 32; first++ {
		for k := 1; k <= 32; k++ {
			s := deriveSeed(99, first, k)
			if prev, dup := seen[s]; dup {
				t.Fatalf("deriveSeed collision: (%d,%d) and %v", first, k, prev)
			}
			seen[s] = [2]int{first, k}
		}
	}
	if deriveSeed(1, 0, 4) == deriveSeed(2, 0, 4) {
		t.Error("deriveSeed ignores the parent seed")
	}
}

// cancelOnPerm is a randSource whose first Perm call cancels the context —
// simulating cancellation arriving exactly when a matching pass begins.
type cancelOnPerm struct {
	rng    *rand.Rand
	cancel context.CancelFunc
}

func (c *cancelOnPerm) Intn(n int) int { return c.rng.Intn(n) }
func (c *cancelOnPerm) Perm(n int) []int {
	c.cancel()
	return c.rng.Perm(n)
}

// TestCoarsenCancelLatency pins the satellite fix: when cancellation lands
// during a matching pass, coarsen must abandon that pass (within
// matchCancelStride vertices) instead of finishing the match and paying for
// a full contraction of a large graph.
func TestCoarsenCancelLatency(t *testing.T) {
	g := mesh.Cylinder(0.01).DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	ctx, cancel := context.WithCancel(context.Background())
	src := &cancelOnPerm{rng: rand.New(rand.NewSource(1)), cancel: cancel}
	h := coarsen(ctx, g, 128, src, nil, new(scratch), hierConfigFor(Options{}))
	defer h.close()
	if h.levels() != 1 {
		t.Fatalf("coarsen built %d levels after mid-match cancellation, want 1 (no contraction)", h.levels())
	}
	// And a cancelled match must report !ok rather than a partial matching.
	if _, _, ok := heavyEdgeMatching(ctx, g, src, nil, new(scratch)); ok {
		t.Fatal("heavyEdgeMatching reported ok on a cancelled context")
	}
}
