package partition

import (
	"sort"

	"tempart/internal/mesh"
)

// SFCPartition partitions a mesh by ordering cells along a 3D Hilbert
// space-filling curve and cutting the order into k consecutive chunks of
// equal operating cost. Space-filling curves are the classical geometric
// alternative the paper's perspectives cite (Aftosmis et al., reference
// [1]): they give compact, connected-ish domains and near-perfect
// single-constraint balance at very low cost, but — like SC_OC — they are
// blind to temporal levels.
func SFCPartition(m *mesh.Mesh, k int) (*Result, error) {
	if k < 1 {
		return nil, errBadK(k)
	}
	n := m.NumCells()
	scheme := m.Scheme()

	// Normalise coordinates into the [0, 2^order) cube.
	const order = 10 // 1024^3 resolution
	minX, maxX := m.CX[0], m.CX[0]
	minY, maxY := m.CY[0], m.CY[0]
	minZ, maxZ := m.CZ[0], m.CZ[0]
	for c := 1; c < n; c++ {
		minX, maxX = minMax(minX, maxX, m.CX[c])
		minY, maxY = minMax(minY, maxY, m.CY[c])
		minZ, maxZ = minMax(minZ, maxZ, m.CZ[c])
	}
	quant := func(v, lo, hi float32) uint32 {
		span := hi - lo
		if span <= 0 {
			return 0
		}
		q := uint32(float64(v-lo) / float64(span) * float64((1<<order)-1))
		if q >= 1<<order {
			q = 1<<order - 1
		}
		return q
	}

	type keyed struct {
		key  uint64
		cell int32
	}
	cells := make([]keyed, n)
	for c := 0; c < n; c++ {
		cells[c] = keyed{
			key:  hilbert3D(quant(m.CX[c], minX, maxX), quant(m.CY[c], minY, maxY), quant(m.CZ[c], minZ, maxZ), order),
			cell: int32(c),
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].key < cells[j].key })

	// Cut the curve by cumulative operating cost.
	var total int64
	for c := 0; c < n; c++ {
		total += int64(scheme.Cost(m.Level[c]))
	}
	part := make([]int32, n)
	var acc int64
	next := int32(0)
	for _, kc := range cells {
		// Advance to the chunk whose cost bracket contains acc.
		for next < int32(k-1) && acc >= total*int64(next+1)/int64(k) {
			next++
		}
		part[kc.cell] = next
		acc += int64(scheme.Cost(m.Level[kc.cell]))
	}

	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.SingleCost})
	return NewResult(g, part, k), nil
}

func minMax(lo, hi, v float32) (float32, float32) {
	if v < lo {
		lo = v
	}
	if v > hi {
		hi = v
	}
	return lo, hi
}

// hilbert3D maps quantised (x,y,z) coordinates to their index along a 3D
// Hilbert curve of the given order, using the iterative Gray-code /
// transposition algorithm (Skilling, 2004).
func hilbert3D(x, y, z uint32, order uint) uint64 {
	coords := [3]uint32{x, y, z}

	// Inverse undo excess work.
	m := uint32(1) << (order - 1)
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < 3; i++ {
			if coords[i]&q != 0 {
				coords[0] ^= p // invert
			} else {
				t := (coords[0] ^ coords[i]) & p
				coords[0] ^= t
				coords[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < 3; i++ {
		coords[i] ^= coords[i-1]
	}
	t := uint32(0)
	for q := m; q > 1; q >>= 1 {
		if coords[2]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < 3; i++ {
		coords[i] ^= t
	}

	// Interleave bits: result bit (3·b + i) from coords[i] bit b.
	var idx uint64
	for b := int(order) - 1; b >= 0; b-- {
		for i := 0; i < 3; i++ {
			idx = (idx << 1) | uint64((coords[i]>>uint(b))&1)
		}
	}
	return idx
}
