package partition

import (
	"testing"

	"tempart/internal/graph"
)

// TestScratchPoolNoPinning is the pool-pinning regression test for the
// partition arenas: a paper-scale arena returned to the pool must not be
// handed to a small request (it would pin hundreds of megabytes for the
// lifetime of a kilobyte-scale job), while an equally large request must
// still reuse it.
func TestScratchPoolNoPinning(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses reuse under the race detector")
	}
	const big = 1 << 22
	sc := getScratch(big)
	sc.match = make([]int32, big)
	putScratch(sc)

	small := getScratch(64)
	if cap(small.match) >= big {
		t.Fatalf("small request received a %d-element arena — pool pinning", cap(small.match))
	}
	putScratch(small)

	again := getScratch(big)
	if cap(again.match) < big {
		t.Fatalf("big request did not reuse the pooled big arena (cap %d)", cap(again.match))
	}
	putScratch(again)
}

func TestKwayScratchPoolNoPinning(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses reuse under the race detector")
	}
	const big = 1 << 22
	ks := getKwayScratch(big)
	if len(ks.localID) < big {
		t.Fatalf("localID only %d entries", len(ks.localID))
	}
	putKwayScratch(ks)

	small := getKwayScratch(128)
	if cap(small.localID) >= big {
		t.Fatalf("small request received the %d-entry localID — pool pinning", cap(small.localID))
	}
	putKwayScratch(small)

	again := getKwayScratch(big)
	if cap(again.localID) < big {
		t.Fatalf("big request did not reuse the pooled big arena (cap %d)", cap(again.localID))
	}
	// localID must still hold the -1-everywhere invariant after reuse.
	for i, v := range again.localID {
		if v != -1 {
			t.Fatalf("localID[%d] = %d after reuse, want -1", i, v)
		}
	}
	putKwayScratch(again)
}

func TestPairScratchPoolNoPinning(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses reuse under the race detector")
	}
	const big = 1 << 22
	ps := getPairScratch(big)
	ps.verts = make([]int32, big)
	putPairScratch(ps)

	small := getPairScratch(64)
	if cap(small.verts) >= big {
		t.Fatalf("small request received the %d-element pair arena — pool pinning", cap(small.verts))
	}
	putPairScratch(small)
}

func TestGraphScratchPoolNoPinning(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses reuse under the race detector")
	}
	// The local-id table only grows inside SubgraphWith, so grow it for real
	// against a grid graph, then check the pool's classing keeps it away from
	// small requests while an equally large request still reuses it.
	g := graph.Grid(256, 256) // 65536 vertices
	n := g.NumVertices()
	gs := getGraphScratch(n)
	sg, _ := g.SubgraphWith([]int32{0, 1, 2, 256, 257}, gs)
	if sg.NumVertices() != 5 {
		t.Fatalf("subgraph has %d vertices, want 5", sg.NumVertices())
	}
	if gs.Cap() < n {
		t.Fatalf("scratch table did not grow (cap %d, want >= %d)", gs.Cap(), n)
	}
	putGraphScratch(gs)

	small := getGraphScratch(64)
	if small.Cap() >= n {
		t.Fatalf("small request received the %d-entry table — pool pinning", small.Cap())
	}
	putGraphScratch(small)

	again := getGraphScratch(n)
	if again.Cap() < n {
		t.Fatalf("big request did not reuse the pooled table (cap %d)", again.Cap())
	}
	putGraphScratch(again)
}
