package partition

// gainBuckets is a METIS-style bucket-list priority structure for FM
// refinement: an array of doubly-linked lists indexed by gain, over vertices
// 0..n-1. Because FM gains are bounded by the maximum weighted degree of the
// graph, the bucket array has 2·maxKey+1 slots and every operation —
// insert, remove, and the gain updates that dominate the refinement inner
// loop — is O(1), where the lazy-deletion binary heap it replaces paid
// O(log n) per touch and accumulated stale duplicates. popMax walks down
// from a cached top bucket; the walk is amortised against the inserts that
// raised it.
//
// Within a bucket the discipline is LIFO (insert at head), the classical FM
// choice: recently-touched vertices are revisited first, which keeps the
// move frontier compact. The structure is fully deterministic — iteration
// order is a pure function of the operation sequence — which is what lets
// the parallel refinement keep partitions byte-identical at every
// Options.Parallelism.
//
// Keys outside [-maxKey, +maxKey] are clamped to the boundary buckets:
// callers keep the exact gain in their own arrays, the buckets only order
// candidates, so clamping merely coarsens the ordering of extreme gains.
// A zero gainBuckets is ready for reset.
type gainBuckets struct {
	offset int32   // bucket index = clamp(key) + offset
	heads  []int32 // bucket index -> first vertex, -1 when empty
	next   []int32 // vertex -> successor in its bucket, -1 at the tail
	prev   []int32 // vertex -> predecessor, -1 when the vertex is the head
	bucket []int32 // vertex -> its bucket index, -1 when absent
	top    int     // highest bucket index that may be non-empty
	count  int
}

// reset prepares the structure for n vertices with keys clamped to
// [-maxKey, +maxKey]. Backing arrays are reused across resets and only grow.
func (b *gainBuckets) reset(n int, maxKey int32) {
	if maxKey < 0 {
		maxKey = 0
	}
	nb := 2*int(maxKey) + 1
	if cap(b.heads) < nb {
		b.heads = make([]int32, nb)
	}
	b.heads = b.heads[:nb]
	for i := range b.heads {
		b.heads[i] = -1
	}
	if cap(b.bucket) < n {
		b.bucket = make([]int32, n)
		b.next = make([]int32, n)
		b.prev = make([]int32, n)
	}
	b.bucket = b.bucket[:n]
	b.next = b.next[:n]
	b.prev = b.prev[:n]
	for i := range b.bucket {
		b.bucket[i] = -1
	}
	b.offset = maxKey
	b.top = -1
	b.count = 0
}

// grow extends the per-vertex linkage to n vertices without disturbing the
// queued entries — used when a working set gains vertices lazily.
func (b *gainBuckets) grow(n int) {
	for len(b.bucket) < n {
		b.bucket = append(b.bucket, -1)
		b.next = append(b.next, -1)
		b.prev = append(b.prev, -1)
	}
}

func (b *gainBuckets) idxOf(key int32) int32 {
	if key > b.offset {
		key = b.offset
	} else if key < -b.offset {
		key = -b.offset
	}
	return key + b.offset
}

func (b *gainBuckets) len() int { return b.count }

// contains reports whether v is currently queued.
func (b *gainBuckets) contains(v int32) bool { return b.bucket[v] >= 0 }

// insert queues v under the given key. v must not already be queued.
func (b *gainBuckets) insert(v, key int32) {
	idx := b.idxOf(key)
	h := b.heads[idx]
	b.heads[idx] = v
	b.next[v] = h
	b.prev[v] = -1
	b.bucket[v] = idx
	if h >= 0 {
		b.prev[h] = v
	}
	if int(idx) > b.top {
		b.top = int(idx)
	}
	b.count++
}

// remove unlinks v. v must be queued.
func (b *gainBuckets) remove(v int32) {
	idx := b.bucket[v]
	if p := b.prev[v]; p >= 0 {
		b.next[p] = b.next[v]
	} else {
		b.heads[idx] = b.next[v]
	}
	if nx := b.next[v]; nx >= 0 {
		b.prev[nx] = b.prev[v]
	}
	b.bucket[v] = -1
	b.count--
}

// update moves v to the bucket of the new key (inserting it if absent).
func (b *gainBuckets) update(v, key int32) {
	idx := b.idxOf(key)
	if b.bucket[v] == idx {
		return
	}
	if b.bucket[v] >= 0 {
		b.remove(v)
	}
	b.insert(v, key)
}

// popMax removes and returns the head of the highest non-empty bucket.
func (b *gainBuckets) popMax() (int32, bool) {
	if b.count == 0 {
		return -1, false
	}
	for b.top >= 0 && b.heads[b.top] < 0 {
		b.top--
	}
	v := b.heads[b.top]
	b.remove(v)
	return v, true
}
