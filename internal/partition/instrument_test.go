package partition

import (
	"context"
	"testing"

	"tempart/internal/graph"
	"tempart/internal/obs"
)

// TestPartitionUnchangedByTracing pins the observability contract: attaching
// a recorder must not perturb the construction — the assignment stays
// byte-identical to an untraced run at every parallelism, because spans never
// touch the RNG streams.
func TestPartitionUnchangedByTracing(t *testing.T) {
	g := graph.Grid(24, 24)
	opt := Options{Seed: 7, Trials: 2}
	base, err := Partition(context.Background(), g, 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		o := opt
		o.Parallelism = par
		rec := obs.NewRecorder()
		ctx := obs.WithRecorder(context.Background(), rec)
		traced, err := Partition(ctx, g, 6, o)
		if err != nil {
			t.Fatal(err)
		}
		for v := range base.Part {
			if base.Part[v] != traced.Part[v] {
				t.Fatalf("parallelism %d: traced partition diverges at vertex %d", par, v)
			}
		}
		spans := rec.Snapshot()
		if len(spans) == 0 {
			t.Fatalf("parallelism %d: recorder captured no spans", par)
		}
		if spans[0].Name != "partition" {
			t.Errorf("first span = %q, want partition", spans[0].Name)
		}
		totals := rec.PhaseTotals()
		for _, phase := range []string{"partition/coarsen", "partition/initial", "partition/refine"} {
			if totals[phase].Count == 0 {
				t.Errorf("parallelism %d: no %s spans recorded", par, phase)
			}
		}
		if rec.Counters()["partition.trials"] != 2 {
			t.Errorf("trials counter = %d, want 2", rec.Counters()["partition.trials"])
		}
	}
}
