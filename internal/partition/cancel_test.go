package partition

import (
	"context"
	"errors"
	"testing"

	"tempart/internal/mesh"
)

func TestPartitionPreCancelled(t *testing.T) {
	m := mesh.Cylinder(0.01)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := PartitionMesh(ctx, m, 8, MCTL, Options{Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: err = %v, want context.Canceled", err)
	}
}

func TestPartitionCancelMidRun(t *testing.T) {
	m := mesh.Cylinder(0.05)
	ctx, cancel := context.WithCancel(context.Background())
	// Many trials make the per-trial cancellation checkpoint observable:
	// cancel after the first trial has started and the rest must be skipped.
	done := make(chan error, 1)
	go func() {
		_, err := PartitionMesh(ctx, m, 16, MCTL, Options{Seed: 1, Trials: 64})
		done <- err
	}()
	cancel()
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: err = %v, want nil or context.Canceled", err)
	}
}

func TestPartitionKWayCancelled(t *testing.T) {
	m := mesh.Cylinder(0.01)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := PartitionMesh(ctx, m, 8, MCTL, Options{Seed: 1, Method: DirectKWay})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("k-way pre-cancelled: err = %v, want context.Canceled", err)
	}
}

// TestPartitionDeterministic pins bit-reproducibility: the same seed must
// yield the identical assignment, because the tempartd result cache treats
// (mesh, options) as a content address for the answer.
func TestPartitionDeterministic(t *testing.T) {
	m := mesh.Cylinder(0.02)
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"rb", Options{Seed: 42}},
		{"rb-trials", Options{Seed: 42, Trials: 3}},
		{"kway", Options{Seed: 42, Method: DirectKWay}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, err := PartitionMesh(context.Background(), m, 12, MCTL, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			b, err := PartitionMesh(context.Background(), m, 12, MCTL, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a.Part {
				if a.Part[i] != b.Part[i] {
					t.Fatalf("cell %d: %d vs %d — same seed must reproduce bit-identically",
						i, a.Part[i], b.Part[i])
				}
			}
			// A different seed should normally explore differently; at minimum
			// it must not error. (Equality is possible but means the seed is
			// being ignored, so flag it on this size where it never happens.)
			other := tc.opt
			other.Seed = 43
			c, err := PartitionMesh(context.Background(), m, 12, MCTL, other)
			if err != nil {
				t.Fatal(err)
			}
			same := true
			for i := range a.Part {
				if a.Part[i] != c.Part[i] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("seeds 42 and 43 produced identical partitions — Seed appears unused")
			}
		})
	}
}
