package partition

import (
	"context"
	"testing"

	"tempart/internal/mesh"
)

// TestPartitionReorderValid: Options.Reorder is transparent to callers — the
// result is expressed in original vertex ids, validates, and its recorded
// edge cut matches a recomputation on the original graph.
func TestPartitionReorderValid(t *testing.T) {
	m := mesh.Cylinder(0.002)
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	for _, method := range []Method{RecursiveBisection, DirectKWay} {
		res, err := Partition(context.Background(), g, 12, Options{Seed: 5, Method: method, Reorder: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(g); err != nil {
			t.Fatalf("method %v: %v", method, err)
		}
		if got := ComputeEdgeCut(g, res.Part); got != res.EdgeCut {
			t.Fatalf("method %v: result cut %d, recomputed on original ids %d — back-mapping broken",
				method, res.EdgeCut, got)
		}
		if imb := res.MaxImbalance(); imb > 2.0 {
			t.Errorf("method %v: imbalance %.3f out of line", method, imb)
		}
	}
}

// TestPartitionReorderDeterministicAcrossParallelism: the reorder is a pure
// function of the graph, so the determinism contract survives it.
func TestPartitionReorderDeterministicAcrossParallelism(t *testing.T) {
	m := mesh.Cylinder(0.003)
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	var ref *Result
	for _, par := range parallelismSettings {
		res, err := Partition(context.Background(), g, 8, Options{Seed: 11, Reorder: true, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for i := range res.Part {
			if res.Part[i] != ref.Part[i] {
				t.Fatalf("parallelism %d: vertex %d differs", par, i)
			}
		}
	}
}
