package partition

import (
	"context"
	"fmt"

	"tempart/internal/graph"
)

// This file is the distribution seam of the recursive-bisection partitioner:
// a coordinator can run the top of the bisection tree locally with
// SplitSubtrees, ship the resulting frontier tasks to other processes (each
// task is self-describing: vertex set, part range, derived seed), have every
// peer solve its task with PartitionSubtree, and stitch the returned
// assignments into one array. Because each tree node's computation is a pure
// function of (graph, vertex set, seed) — never of scheduling — the stitched
// partition (after the coordinator applies PolishRB, the cross-boundary
// pass that concludes local construction too) is byte-identical to a fully
// local Partition call with the same Options, at every Parallelism, on every
// placement of tasks onto peers.

// SubtreeTask addresses one independent node of the recursive-bisection
// tree: partition Vertices of the full graph into parts
// [FirstPart, FirstPart+K) using the node's derived Seed.
type SubtreeTask struct {
	// Vertices are global vertex ids of the subtree, in the exact order the
	// parent bisection produced (the order seeds nothing, but keeping it
	// makes task identity content-addressable).
	Vertices []int32
	// FirstPart is the first part index owned by the subtree.
	FirstPart int
	// K is how many parts the subtree produces.
	K int
	// Seed is the node's derived RNG seed (a pure function of the root seed
	// and the node's (FirstPart, K) path, see deriveSeed).
	Seed int64
}

// SplitSubtrees runs the top levels of recursive bisection serially — each
// interior node bisected exactly as Partition would — until at least target
// independent subtrees exist (or every frontier node is a leaf). Leaves
// reached on the way are committed into the returned part array; the
// remaining interior nodes come back as tasks whose union covers every
// still-unassigned vertex.
//
// Completing every returned task with PartitionSubtree over the same part
// array and then applying PolishRB yields a partition byte-identical to
// Partition(ctx, g, k, opt) with Method RecursiveBisection and Trials <= 1 —
// regardless of where, in what order, or at what parallelism the tasks run.
func SplitSubtrees(ctx context.Context, g *graph.Graph, k int, opt Options, target int) ([]int32, []SubtreeTask, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("partition: k = %d, want >= 1", k)
	}
	n := g.NumVertices()
	part := make([]int32, n)
	if k == 1 {
		return part, nil, nil
	}
	opt = opt.withDefaults(g.NCon)
	pool := graph.NewPool(opt.Parallelism)
	vertices := make([]int32, n)
	for i := range vertices {
		vertices[i] = int32(i)
	}
	if target < 1 {
		target = 1
	}
	frontier := []SubtreeTask{{Vertices: vertices, FirstPart: 0, K: k, Seed: opt.Seed}}
	for len(frontier) < target {
		// Expand the widest interior node first: it owns the most parts, so
		// splitting it yields the most balanced division of remaining work.
		best := -1
		for i, t := range frontier {
			if t.K > 1 && len(t.Vertices) > t.K && (best < 0 || t.K > frontier[best].K) {
				best = i
			}
		}
		if best < 0 {
			break // every frontier node is a leaf
		}
		t := frontier[best]
		left, right := bisectNode(ctx, g, t, opt, pool)
		frontier[best] = left
		frontier = append(frontier, right)
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("partition: %w", err)
		}
	}
	// Commit leaves exactly as recursiveBisect's base cases would; only
	// interior nodes are worth shipping anywhere.
	tasks := frontier[:0]
	for _, t := range frontier {
		if !commitBaseCase(ctx, t.Vertices, t.FirstPart, t.K, part) {
			tasks = append(tasks, t)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("partition: %w", err)
	}
	return part, tasks, nil
}

// PartitionSubtree solves one subtree task, writing assignments for exactly
// task.Vertices into part (which must span the full graph). It runs the
// same recursion Partition uses from that tree node down, so the entries it
// writes are byte-identical to a local run — this is what a peer executes
// when a coordinator fans the bisection tree out across a fleet.
//
// The task's vertex slice is not mutated (the recursion consumes a private
// copy), so the caller can retry a task elsewhere after a peer failure.
func PartitionSubtree(ctx context.Context, g *graph.Graph, task SubtreeTask, opt Options, part []int32) error {
	if len(part) != g.NumVertices() {
		return fmt.Errorf("partition: part has %d entries for %d vertices", len(part), g.NumVertices())
	}
	if task.K < 1 {
		return fmt.Errorf("partition: subtree k = %d, want >= 1", task.K)
	}
	opt = opt.withDefaults(g.NCon)
	pool := graph.NewPool(opt.Parallelism)
	verts := append([]int32(nil), task.Vertices...)
	recursiveBisect(ctx, g, verts, task.FirstPart, task.K, part, opt, task.Seed, pool)
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("partition: %w", err)
	}
	return nil
}
