package partition

import (
	"sort"

	"tempart/internal/graph"
)

// RepairConnectivity reduces the disconnected-subdomain artifacts that
// heavily constrained partitionings produce (the paper's §IX perspective:
// multi-criteria partitioners "tend to create disconnected subdomains that
// increase the number of domain borders"). For every part, all but its
// heaviest connected fragment are candidates to be reassigned to the
// neighbouring part with the strongest boundary connection. A candidate
// moves only if it is small (below maxFragFraction of its part's weight)
// AND the move does not degrade any constraint's global imbalance beyond
// max(its current value, 1.10) — so the repair removes artifacts without
// silently undoing the multi-constraint balance it is meant to polish. It
// returns the number of vertices moved; part is updated in place.
func RepairConnectivity(g *graph.Graph, part []int32, k int, maxFragFraction float64) int {
	if maxFragFraction <= 0 {
		maxFragFraction = 0.25
	}
	n := g.NumVertices()

	// Label fragments: connected components within each part.
	frag := make([]int32, n)
	for i := range frag {
		frag[i] = -1
	}
	var stack []int32
	type fragInfo struct {
		id    int32
		part  int32
		wgt   []int64
		verts []int32
	}
	var frags []fragInfo
	for s := 0; s < n; s++ {
		if frag[s] >= 0 {
			continue
		}
		id := int32(len(frags))
		fi := fragInfo{id: id, part: part[s], wgt: make([]int64, g.NCon)}
		frag[s] = id
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			fi.verts = append(fi.verts, v)
			for c := 0; c < g.NCon; c++ {
				fi.wgt[c] += int64(g.Weight(v, c))
			}
			for _, u := range g.Neighbors(v) {
				if frag[u] < 0 && part[u] == part[s] {
					frag[u] = id
					stack = append(stack, u)
				}
			}
		}
		frags = append(frags, fi)
	}

	// Per part: keep the heaviest fragment (by first-constraint weight,
	// which is the cost for SC_OC and level-0 census for MC_TL; use the sum
	// across constraints to be weighting-agnostic).
	sumW := func(w []int64) int64 {
		var s int64
		for _, x := range w {
			s += x
		}
		return s
	}
	mainFrag := make([]int32, k)
	for i := range mainFrag {
		mainFrag[i] = -1
	}
	partW := make([]int64, k)
	for _, fi := range frags {
		partW[fi.part] += sumW(fi.wgt)
		if mainFrag[fi.part] < 0 || sumW(fi.wgt) > sumW(frags[mainFrag[fi.part]].wgt) {
			mainFrag[fi.part] = fi.id
		}
	}

	// Reassign small minority fragments, smallest first so large ones can
	// stay if the budget runs out.
	var minor []int32
	for _, fi := range frags {
		if fi.id != mainFrag[fi.part] {
			minor = append(minor, fi.id)
		}
	}
	sort.Slice(minor, func(i, j int) bool {
		return sumW(frags[minor[i]].wgt) < sumW(frags[minor[j]].wgt)
	})

	// Per-part per-constraint weights for the balance guard.
	ncon := g.NCon
	pw := make([][]int64, k)
	for p := range pw {
		pw[p] = make([]int64, ncon)
	}
	totals := make([]int64, ncon)
	for v := 0; v < n; v++ {
		for c := 0; c < ncon; c++ {
			w := int64(g.Weight(int32(v), c))
			pw[part[v]][c] += w
			totals[c] += w
		}
	}
	colMax := func(c int) int64 {
		var m int64
		for p := 0; p < k; p++ {
			if pw[p][c] > m {
				m = pw[p][c]
			}
		}
		return m
	}
	// Allowed per-constraint cap: don't exceed the current max (repair never
	// worsens the worst part) nor 1.10×ideal+1 (when currently balanced).
	caps := make([]int64, ncon)
	for c := 0; c < ncon; c++ {
		ideal := float64(totals[c]) / float64(k)
		cap := int64(1.10*ideal) + 1
		if m := colMax(c); m > cap {
			cap = m
		}
		caps[c] = cap
	}

	moved := 0
	for _, id := range minor {
		fi := &frags[id]
		if float64(sumW(fi.wgt)) > maxFragFraction*float64(partW[fi.part]) {
			continue // too big to displace safely
		}
		// Strongest neighbouring part by boundary edge weight.
		conn := map[int32]int64{}
		for _, v := range fi.verts {
			for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
				u := g.Adjncy[i]
				if part[u] != fi.part {
					conn[part[u]] += int64(g.AdjWgt[i])
				}
			}
		}
		// Try neighbours in decreasing connection order until one passes
		// the balance guard. Ties break toward the smaller part id so the
		// repair is deterministic regardless of map iteration order.
		for len(conn) > 0 {
			var best int32 = -1
			var bestW int64 = -1
			for p, w := range conn {
				if w > bestW || (w == bestW && p < best) {
					best, bestW = p, w
				}
			}
			delete(conn, best)
			ok := true
			for c := 0; c < ncon; c++ {
				if pw[best][c]+fi.wgt[c] > caps[c] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, v := range fi.verts {
				part[v] = best
			}
			for c := 0; c < ncon; c++ {
				pw[fi.part][c] -= fi.wgt[c]
				pw[best][c] += fi.wgt[c]
			}
			partW[fi.part] -= sumW(fi.wgt)
			partW[best] += sumW(fi.wgt)
			moved += len(fi.verts)
			break
		}
	}
	return moved
}

// CountFragments returns, for each part, its number of connected fragments;
// a fully connected partition scores 1 everywhere.
func CountFragments(g *graph.Graph, part []int32, k int) []int {
	n := g.NumVertices()
	seen := make([]bool, n)
	counts := make([]int, k)
	var stack []int32
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		counts[part[s]]++
		seen[s] = true
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.Neighbors(v) {
				if !seen[u] && part[u] == part[s] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
	}
	return counts
}
