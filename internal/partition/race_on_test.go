//go:build race

package partition

// raceEnabled reports whether the race detector instruments this build.
// sync.Pool intentionally randomises reuse under the detector, so
// allocation-count pins are meaningless there.
const raceEnabled = true
