package partition

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"tempart/internal/graph"
	"tempart/internal/mesh"
	"tempart/internal/temporal"
)

func TestPartitionRejectsBadK(t *testing.T) {
	g := graph.Grid(4, 4)
	if _, err := Partition(context.Background(), g, 0, Options{}); err == nil {
		t.Fatal("Partition accepted k=0")
	}
}

func TestPartitionK1IsTrivial(t *testing.T) {
	g := graph.Grid(4, 4)
	r, err := Partition(context.Background(), g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.EdgeCut != 0 {
		t.Errorf("EdgeCut = %d, want 0 for k=1", r.EdgeCut)
	}
	for v, p := range r.Part {
		if p != 0 {
			t.Fatalf("vertex %d in part %d, want 0", v, p)
		}
	}
}

func TestBisectGridBalanced(t *testing.T) {
	g := graph.Grid(16, 16)
	r, err := Partition(context.Background(), g, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
	if imb := r.MaxImbalance(); imb > 1.06 {
		t.Errorf("MaxImbalance = %.3f, want <= 1.06", imb)
	}
	// A 16x16 grid's optimal bisection cut is 16; the multilevel heuristic
	// should land well under 2x that.
	if r.EdgeCut > 32 {
		t.Errorf("EdgeCut = %d, want <= 32", r.EdgeCut)
	}
}

func TestKWayGridBalanced(t *testing.T) {
	g := graph.Grid(24, 24)
	for _, k := range []int{3, 4, 7, 8} {
		r, err := Partition(context.Background(), g, k, Options{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Validate(g); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// RB compounds tolerance across ~log2(k) levels.
		if imb := r.MaxImbalance(); imb > 1.20 {
			t.Errorf("k=%d: MaxImbalance = %.3f, want <= 1.20", k, imb)
		}
	}
}

func TestMultiConstraintBisectionBalancesEveryLevel(t *testing.T) {
	// Grid with two interleaved classes arranged adversarially: class 0 on
	// the left half, class 1 on the right half. Single-constraint balance
	// could just cut down the middle and give each side one class only;
	// multi-constraint must split both halves.
	nx, ny := 16, 16
	b := graph.NewBuilder(2)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			if i < nx/2 {
				b.AddVertex(1, 0)
			} else {
				b.AddVertex(0, 1)
			}
		}
	}
	id := func(i, j int) int32 { return int32(i*ny + j) }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			if i+1 < nx {
				b.AddEdge(id(i, j), id(i+1, j), 1)
			}
			if j+1 < ny {
				b.AddEdge(id(i, j), id(i, j+1), 1)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Partition(context.Background(), g, 2, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	imb := r.Imbalance()
	for c, v := range imb {
		if v > 1.10 {
			t.Errorf("constraint %d imbalance = %.3f, want <= 1.10 (weights %v)", c, v, r.PartWeights)
		}
	}
}

func TestPartitionMeshSCOCBalancesCost(t *testing.T) {
	m := mesh.Cylinder(0.001)
	r, err := PartitionMesh(context.Background(), m, 8, SCOC, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.SingleCost})
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
	if imb := r.MaxImbalance(); imb > 1.25 {
		t.Errorf("SC_OC cost imbalance = %.3f, want <= 1.25", imb)
	}
}

func TestPartitionMeshMCTLBalancesAllLevels(t *testing.T) {
	m := mesh.Cylinder(0.002)
	k := 8
	r, err := PartitionMesh(context.Background(), m, k, MCTL, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	imb := r.Imbalance()
	census := m.Census()
	for c, v := range imb {
		// Sparse levels (few cells spread over k parts) get proportionally
		// more slack: the ±1-cell granularity limit.
		perPart := float64(census[c]) / float64(k)
		allowed := 1.30 + 2.0/perPart
		if v > allowed {
			t.Errorf("level %d imbalance = %.3f, want <= %.3f (%.1f cells/part)", c, v, allowed, perPart)
		}
	}
}

// TestMCTLBeatsSCOCPerLevelBalance is the core phenomenon of the paper: on a
// hotspot mesh, SC_OC balances total cost but skews the per-level census,
// while MC_TL balances every level.
func TestMCTLBeatsSCOCPerLevelBalance(t *testing.T) {
	m := mesh.Cylinder(0.002)
	k := 8
	sc, err := PartitionMesh(context.Background(), m, k, SCOC, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := PartitionMesh(context.Background(), m, k, MCTL, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate both on the per-level census.
	gl := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	scLevels := NewResult(gl, sc.Part, k)
	mcLevels := NewResult(gl, mc.Part, k)
	worstSC := scLevels.MaxImbalance()
	worstMC := mcLevels.MaxImbalance()
	if worstMC >= worstSC {
		t.Errorf("MC_TL per-level imbalance %.2f not better than SC_OC %.2f", worstMC, worstSC)
	}
	t.Logf("per-level imbalance: SC_OC=%.2f MC_TL=%.2f", worstSC, worstMC)
}

func TestGeometricRCB(t *testing.T) {
	m := mesh.Cube(0.1)
	r, err := GeometricRCB(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.SingleCost})
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
	if imb := r.MaxImbalance(); imb > 1.40 {
		t.Errorf("RCB cost imbalance = %.3f, want <= 1.40", imb)
	}
}

func TestRepairConnectivity(t *testing.T) {
	// 8x8 grid split into 2 parts with a deliberately disconnected part 0:
	// main block on the left plus a stray corner on the right.
	g := graph.Grid(8, 8)
	part := make([]int32, 64)
	for v := range part {
		if v%8 < 4 {
			part[v] = 0
		} else {
			part[v] = 1
		}
	}
	part[63] = 0 // stray fragment of part 0 inside part 1 territory
	before := CountFragments(g, part, 2)
	if before[0] != 2 {
		t.Fatalf("setup: part 0 has %d fragments, want 2", before[0])
	}
	moved := RepairConnectivity(g, part, 2, 0.25)
	if moved != 1 {
		t.Errorf("moved = %d, want 1", moved)
	}
	after := CountFragments(g, part, 2)
	if after[0] != 1 || after[1] != 1 {
		t.Errorf("fragments after repair = %v, want [1 1]", after)
	}
}

func TestRepairConnectivityKeepsLargeFragments(t *testing.T) {
	// Two equal-size fragments of part 0: neither is "small", so the repair
	// must leave them alone.
	g := graph.Grid(4, 4)
	part := []int32{
		0, 0, 1, 1,
		0, 0, 1, 1,
		1, 1, 0, 0,
		1, 1, 0, 0,
	}
	moved := RepairConnectivity(g, part, 2, 0.25)
	if moved != 0 {
		t.Errorf("moved = %d, want 0 (fragments equal-sized)", moved)
	}
}

func TestDualPhase(t *testing.T) {
	m := mesh.Cylinder(0.001)
	res, err := DualPhase(context.Background(), m, 4, 4, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumDomains != 16 {
		t.Fatalf("NumDomains = %d, want 16", res.NumDomains)
	}
	// Every cell assigned to a valid domain; domains map to the right procs.
	for c, d := range res.Domain {
		if d < 0 || int(d) >= 16 {
			t.Fatalf("cell %d in domain %d", c, d)
		}
	}
	for d, p := range res.ProcOfDomain {
		if int(p) != d/4 {
			t.Errorf("domain %d on proc %d, want %d", d, p, d/4)
		}
	}
	// Phase 1 balance: per-level census balanced across processes.
	gl := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	procPart := make([]int32, m.NumCells())
	for c, d := range res.Domain {
		procPart[c] = res.ProcOfDomain[d]
	}
	r := NewResult(gl, procPart, 4)
	census := m.Census()
	for c, v := range r.Imbalance() {
		perPart := float64(census[c]) / 4
		if v > 1.4+4.0/perPart {
			t.Errorf("dual-phase proc-level imbalance at level %d = %.3f", c, v)
		}
	}
}

func TestHeavyEdgeMatchingValid(t *testing.T) {
	g := graph.Grid(10, 10)
	rng := rand.New(rand.NewSource(1))
	cmap, nc, ok := heavyEdgeMatching(context.Background(), g, rng, nil, new(scratch))
	if !ok {
		t.Fatal("heavyEdgeMatching reported cancellation with a live context")
	}
	if nc <= g.NumVertices()/3 || nc > g.NumVertices() {
		t.Errorf("ncoarse = %d out of expected range for %d vertices", nc, g.NumVertices())
	}
	// cmap dense in [0,nc), and each coarse vertex has 1 or 2 fine vertices.
	counts := make([]int, nc)
	for _, cv := range cmap {
		if cv < 0 || int(cv) >= nc {
			t.Fatalf("cmap value %d out of range", cv)
		}
		counts[cv]++
	}
	for cv, n := range counts {
		if n < 1 || n > 2 {
			t.Errorf("coarse vertex %d has %d fine vertices, want 1 or 2", cv, n)
		}
	}
	// Matched pairs must be adjacent.
	byCoarse := map[int32][]int32{}
	for v, cv := range cmap {
		byCoarse[cv] = append(byCoarse[cv], int32(v))
	}
	for _, vs := range byCoarse {
		if len(vs) == 2 && !g.HasEdge(vs[0], vs[1]) {
			t.Errorf("matched non-adjacent vertices %v", vs)
		}
	}
}

func TestCoarsenHierarchyConservesWeight(t *testing.T) {
	g := graph.Grid(20, 20)
	rng := rand.New(rand.NewSource(2))
	h := coarsen(context.Background(), g, 16, rng, nil, new(scratch), hierConfigFor(Options{}))
	defer h.close()
	if h.levels() < 2 {
		t.Fatal("coarsening produced no levels")
	}
	want := g.TotalWeights()
	for i := 0; i < h.levels(); i++ {
		got := h.graph(i).TotalWeights()
		for c := range want {
			if got[c] != want[c] {
				t.Errorf("level %d: total weight %v, want %v", i, got, want)
			}
		}
	}
	last := h.coarsest().NumVertices()
	if last > 40 { // 16 requested; matching can stall slightly above
		t.Errorf("coarsest graph has %d vertices, want near 16", last)
	}
}

func TestFMPassNeverWorsens(t *testing.T) {
	// Property: one fmPass never worsens (violation, cut) lexicographically.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.Grid(8+rng.Intn(8), 8+rng.Intn(8))
		n := g.NumVertices()
		where := make([]int32, n)
		for i := range where {
			where[i] = int32(rng.Intn(2))
		}
		caps0, caps1 := sideCaps(g, 0.5, 1.05)
		b := newBisection(g, append([]int32(nil), where...), caps0, caps1)
		v0, c0 := b.violation(), b.cut()
		fmPass(b, new(scratch))
		v1, c1 := b.violation(), b.cut()
		return betterState(v1, c1-c0, v0, 0) || (v1 == v0 && c1 == c0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionCoversAllVerticesProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.Grid(6+rng.Intn(10), 6+rng.Intn(10))
		k := 2 + int(kRaw%6)
		r, err := Partition(context.Background(), g, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		if err := r.Validate(g); err != nil {
			return false
		}
		// Edge cut computed two ways agrees.
		return r.EdgeCut == ComputeEdgeCut(g, r.Part)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionDeterministicForSeed(t *testing.T) {
	g := graph.Grid(12, 12)
	r1, _ := Partition(context.Background(), g, 4, Options{Seed: 42})
	r2, _ := Partition(context.Background(), g, 4, Options{Seed: 42})
	for v := range r1.Part {
		if r1.Part[v] != r2.Part[v] {
			t.Fatalf("non-deterministic at vertex %d", v)
		}
	}
}

func TestStrategyStrings(t *testing.T) {
	for _, s := range []Strategy{SCOC, MCTL, UnitCells, GeomRCB} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("round-trip of %v failed: %v %v", s, got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy accepted bogus label")
	}
}

func TestResultImbalanceZeroWeightConstraint(t *testing.T) {
	r := &Result{
		NumParts:    2,
		PartWeights: [][]int64{{0, 4}, {0, 4}},
	}
	imb := r.Imbalance()
	if imb[0] != 1.0 {
		t.Errorf("zero-weight constraint imbalance = %v, want 1.0", imb[0])
	}
}

func TestStrip2PartSanity(t *testing.T) {
	// A strip of 8 cells, levels [0 0 1 1 2 2 2 2]: MC_TL into 2 parts must
	// give each part one level-0 cell, one level-1, two level-2.
	m := mesh.Strip([]temporal.Level{0, 0, 1, 1, 2, 2, 2, 2})
	r, err := PartitionMesh(context.Background(), m, 2, MCTL, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		if r.PartWeights[0][c] != r.PartWeights[1][c] {
			t.Errorf("level %d split %d/%d, want equal", c, r.PartWeights[0][c], r.PartWeights[1][c])
		}
	}
}

func TestTrialsNeverWorse(t *testing.T) {
	m := mesh.Cylinder(0.001)
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	single, err := Partition(context.Background(), g, 16, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Partition(context.Background(), g, 16, Options{Seed: 9, Trials: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := multi.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Best-of-4 includes the seed-9 run (first trial), so it can only match
	// or improve on (imbalance, cut).
	if betterResult(single, multi) {
		t.Errorf("Trials=4 worse than single: imb %.3f/%.3f cut %d/%d",
			multi.MaxImbalance(), single.MaxImbalance(), multi.EdgeCut, single.EdgeCut)
	}
}

func TestPartitionZeroWeightConstraint(t *testing.T) {
	// A constraint column that no vertex carries (an empty temporal level)
	// must not break the partitioner or the balance accounting.
	b := graph.NewBuilder(3)
	for i := 0; i < 24; i++ {
		b.AddVertex(1, 0, int32(i%2)) // middle constraint all-zero
	}
	for i := 0; i+1 < 24; i++ {
		b.AddEdge(int32(i), int32(i+1), 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Partition(context.Background(), g, 4, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
	imb := r.Imbalance()
	if imb[1] != 1.0 {
		t.Errorf("empty constraint imbalance = %v, want 1.0", imb[1])
	}
	if imb[0] > 1.35 || imb[2] > 1.6 {
		t.Errorf("live constraints unbalanced: %v", imb)
	}
}

func TestPartitionDisconnectedGraph(t *testing.T) {
	// Two disconnected 4x4 grids; the partitioner must still produce a
	// complete, reasonably balanced 4-way partition.
	b := graph.NewBuilder(1)
	for i := 0; i < 32; i++ {
		b.AddVertex(1)
	}
	id := func(block, i, j int) int32 { return int32(block*16 + i*4 + j) }
	for block := 0; block < 2; block++ {
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if i+1 < 4 {
					b.AddEdge(id(block, i, j), id(block, i+1, j), 1)
				}
				if j+1 < 4 {
					b.AddEdge(id(block, i, j), id(block, i, j+1), 1)
				}
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Partition(context.Background(), g, 4, Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
	if imb := r.MaxImbalance(); imb > 1.30 {
		t.Errorf("disconnected-graph imbalance %.2f", imb)
	}
}

func TestSFCThroughPartitionMesh(t *testing.T) {
	m := mesh.Cube(0.05)
	r, err := PartitionMesh(context.Background(), m, 6, SFC, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.SingleCost})
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
}
