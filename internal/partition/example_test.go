package partition_test

import (
	"context"
	"fmt"

	"tempart/internal/mesh"
	"tempart/internal/partition"
	"tempart/internal/temporal"
)

// ExamplePartitionMesh contrasts the two strategies on a toy strip whose
// levels are spatially segregated: SC_OC balances total cost, MC_TL balances
// every level's census.
func ExamplePartitionMesh() {
	// 8 cells: one level-0 pair, one level-1 pair, four level-2 cells.
	m := mesh.Strip([]temporal.Level{0, 0, 1, 1, 2, 2, 2, 2})

	mc, _ := partition.PartitionMesh(context.Background(), m, 2, partition.MCTL, partition.Options{Seed: 8})
	fmt.Println("MC_TL per-level weights:")
	for p, w := range mc.PartWeights {
		fmt.Printf("  domain %d: %v\n", p, w)
	}
	// Output:
	// MC_TL per-level weights:
	//   domain 0: [1 1 2]
	//   domain 1: [1 1 2]
}
