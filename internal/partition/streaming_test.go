package partition

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"tempart/internal/mesh"
)

// streamingConfigs are the residency modes a partition must be byte-identical
// across: fully retained (the pre-streaming baseline), spill with heap
// read-back, and spill with mmap (Arena). minVerts 2 forces every interior
// rung through the spill store even on test-sized meshes.
var streamingConfigs = []struct {
	name     string
	arena    bool
	minVerts int
}{
	{"retain", false, 1 << 30},
	{"stream", false, 2},
	{"arena", true, 2},
}

// TestStreamingDeterministicAcrossParallelism pins the tentpole contract: the
// spill-always streaming hierarchy changes WHERE inactive rungs live, never
// their bytes, so every (method × parallelism × residency mode) combination
// must produce the byte-identical partition of the retained serial baseline.
// The name matches the CI race-parallel job's 'DeterministicAcrossParallelism'
// pin, so this also runs raced at GOMAXPROCS=4.
func TestStreamingDeterministicAcrossParallelism(t *testing.T) {
	m, err := mesh.ByName("CYLINDER", 0.002)
	if err != nil {
		t.Fatal(err)
	}
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	const k = 8
	for _, method := range []Method{RecursiveBisection, DirectKWay} {
		var want []byte
		for _, cfg := range streamingConfigs {
			for _, par := range []int{1, 2, 8} {
				opt := Options{
					Seed:           42,
					Parallelism:    par,
					Method:         method,
					Arena:          cfg.arena,
					streamMinVerts: cfg.minVerts,
					// Small CoarsenTo yields a deep hierarchy, so several
					// rungs actually round-trip through the spill store.
					CoarsenTo: 64,
				}
				res, err := Partition(context.Background(), g, k, opt)
				if err != nil {
					t.Fatalf("%v/%s/p%d: %v", method, cfg.name, par, err)
				}
				got := i32le(res.Part)
				if want == nil {
					want = got // retain/p1 is the baseline
					continue
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%v/%s/p%d: partition differs from retained serial baseline", method, cfg.name, par)
				}
			}
		}
	}
}

func i32le(xs []int32) []byte {
	out := make([]byte, 4*len(xs))
	for i, x := range xs {
		out[4*i] = byte(x)
		out[4*i+1] = byte(x >> 8)
		out[4*i+2] = byte(x >> 16)
		out[4*i+3] = byte(x >> 24)
	}
	return out
}

// TestStreamingResidentBound pins the memory property the streaming hierarchy
// exists for: live graph state during coarsening is bounded by the finest
// graph, its first contraction and the newest rung — NOT by the sum of all
// levels, which is what the retained baseline holds.
func TestStreamingResidentBound(t *testing.T) {
	m, err := mesh.ByName("CYLINDER", 0.004)
	if err != nil {
		t.Fatal(err)
	}
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	rng := rand.New(rand.NewSource(7))
	sc := getScratch(g.NumVertices())
	defer putScratch(sc)

	h := coarsen(context.Background(), g, 64, rng, nil, sc, hierConfig{minVerts: 2})
	defer h.close()
	if h.levels() < 4 {
		t.Fatalf("hierarchy only %d levels deep; fixture too small to exercise streaming", h.levels())
	}
	if h.store == nil {
		t.Fatal("no spill store created despite minVerts=2")
	}

	var retained int64
	spilled := 0
	for i := 0; i < h.levels(); i++ {
		if h.spill[i] {
			spilled++
			retained += int64(h.refs[i].Words()) * 4
		} else if h.graphs[i] != nil {
			retained += h.graphs[i].Bytes()
		}
	}
	if spilled < h.levels()-2 {
		t.Fatalf("only %d of %d interior levels spilled", spilled, h.levels()-2)
	}

	// The high-water mark may include levels 0 and 1 plus the rung being
	// contracted (offload of i runs after push of i+1), but never the whole
	// retained hierarchy and its geometric tail.
	bound := h.graphs[0].Bytes()
	for _, i := range []int{1, 2} {
		if i < h.levels() {
			bound += levelBytes(h, i)
		}
	}
	if h.maxResident > bound {
		t.Errorf("max resident %d bytes exceeds finest+two-rungs bound %d", h.maxResident, bound)
	}
	if h.maxResident >= retained {
		t.Errorf("max resident %d not below fully retained total %d — streaming freed nothing", h.maxResident, retained)
	}
}

func levelBytes(h *hier, i int) int64 {
	if h.graphs[i] != nil {
		return h.graphs[i].Bytes()
	}
	return int64(h.refs[i].Words()) * 4
}

// TestStreamingUncoarsenSingleReload: during uncoarsening at most one spilled
// interior rung is resident at a time (the loadBuf aliasing contract of
// hier.graph depends on it).
func TestStreamingUncoarsenSingleReload(t *testing.T) {
	m, err := mesh.ByName("CUBE", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	rng := rand.New(rand.NewSource(3))
	sc := getScratch(g.NumVertices())
	defer putScratch(sc)
	h := coarsen(context.Background(), g, 64, rng, nil, sc, hierConfig{minVerts: 2})
	defer h.close()
	for li := h.levels() - 1; li >= 1; li-- {
		_ = h.graph(li - 1)
		loaded := 0
		for i := 1; i < h.levels()-1; i++ {
			if h.spill[i] && h.graphs[i] != nil {
				loaded++
			}
		}
		if loaded > 1 {
			t.Fatalf("at level %d: %d spilled rungs resident simultaneously", li, loaded)
		}
		h.release(li - 1)
	}
}
