package partition

import (
	"fmt"
	"sort"

	"tempart/internal/mesh"
)

// GeometricRCB partitions a mesh by recursive coordinate bisection on cell
// centroids, weighting cells by operating cost. It ignores mesh connectivity
// entirely — the geometric-partitioner baseline (Zoltan/KaHIP style) that the
// paper's related-work section contrasts with graph-based approaches.
func GeometricRCB(m *mesh.Mesh, k int) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k = %d, want >= 1", k)
	}
	n := m.NumCells()
	scheme := m.Scheme()
	cost := make([]int64, n)
	for c := 0; c < n; c++ {
		cost[c] = int64(scheme.Cost(m.Level[c]))
	}
	part := make([]int32, n)
	cells := make([]int32, n)
	for i := range cells {
		cells[i] = int32(i)
	}
	rcbSplit(m, cost, cells, 0, k, part)

	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.SingleCost})
	return NewResult(g, part, k), nil
}

// rcbSplit recursively splits cells along their longest coordinate extent so
// the operating cost divides k1:k2.
func rcbSplit(m *mesh.Mesh, cost []int64, cells []int32, firstPart, k int, part []int32) {
	if k <= 1 || len(cells) == 0 {
		for _, c := range cells {
			part[c] = int32(firstPart)
		}
		return
	}
	k1 := k / 2

	// Pick the axis with the widest extent over these cells.
	axes := [3][]float32{m.CX, m.CY, m.CZ}
	bestAxis, bestSpan := 0, float32(-1)
	for a, coord := range axes {
		lo, hi := coord[cells[0]], coord[cells[0]]
		for _, c := range cells {
			if coord[c] < lo {
				lo = coord[c]
			}
			if coord[c] > hi {
				hi = coord[c]
			}
		}
		if span := hi - lo; span > bestSpan {
			bestAxis, bestSpan = a, span
		}
	}
	coord := axes[bestAxis]
	sort.Slice(cells, func(i, j int) bool { return coord[cells[i]] < coord[cells[j]] })

	var total int64
	for _, c := range cells {
		total += cost[c]
	}
	target := total * int64(k1) / int64(k)
	var acc int64
	split := 0
	for i, c := range cells {
		if acc >= target && i > 0 {
			split = i
			break
		}
		acc += cost[c]
		split = i + 1
	}
	if split == len(cells) && len(cells) > 1 {
		split = len(cells) - 1
	}
	rcbSplit(m, cost, cells[:split], firstPart, k1, part)
	rcbSplit(m, cost, cells[split:], firstPart+k1, k-k1, part)
}
