package partition

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"tempart/internal/graph"
	"tempart/internal/obs"
)

// Method selects the k-way construction algorithm.
type Method int

const (
	// RecursiveBisection builds the k-way partition by recursive 2-way
	// splits — the paper's choice ("it produces higher quality solutions on
	// our meshes").
	RecursiveBisection Method = iota
	// DirectKWay coarsens once, solves k-way on the coarsest graph by
	// recursive bisection, and uncoarsens with greedy k-way boundary
	// refinement — cheaper for large k, usually slightly worse cuts under
	// many constraints (the ablation BenchmarkAblationRBvsKWay quantifies
	// this trade-off).
	DirectKWay
)

// String implements fmt.Stringer.
func (m Method) String() string {
	if m == DirectKWay {
		return "kway"
	}
	return "rb"
}

// PartitionKWay computes a k-way partition with the direct k-way multilevel
// scheme. It honours the same Options as Partition. Cancelling ctx stops the
// construction at the next coarsening or refinement boundary.
func PartitionKWay(ctx context.Context, g *graph.Graph, k int, opt Options) (*Result, error) {
	if k < 1 {
		return nil, errBadK(k)
	}
	if opt.Reorder {
		return reorderedConstruct(ctx, g, k, opt, PartitionKWay)
	}
	n := g.NumVertices()
	if k == 1 || n <= k {
		// Degenerate cases match the recursive-bisection behaviour.
		return partitionRB(ctx, g, k, opt)
	}
	opt = opt.withDefaults(g.NCon)
	rng := rand.New(rand.NewSource(opt.Seed))
	pool := graph.NewPool(opt.Parallelism)

	// Coarsen once, keeping enough coarse vertices for k parts.
	coarseTo := opt.CoarsenTo
	if min := 16 * k; coarseTo < min {
		coarseTo = min
	}
	sc := getScratch(n)
	h := coarsen(ctx, g, coarseTo, rng, pool, sc, hierConfigFor(opt))
	putScratch(sc)
	defer h.close()
	coarsest := h.coarsest()

	// Initial k-way on the coarsest graph via recursive bisection.
	part := make([]int32, coarsest.NumVertices())
	vertices := make([]int32, coarsest.NumVertices())
	for i := range vertices {
		vertices[i] = int32(i)
	}
	recursiveBisect(ctx, coarsest, vertices, 0, k, part, opt, opt.Seed, pool)

	// Uncoarsen with k-way refinement at every level. Spilled interior
	// rungs are reloaded one at a time and released after their pass.
	caps := kwayCaps(g, k, opt.ImbalanceTol)
	for li := h.levels() - 1; li >= 1; li-- {
		if ctx.Err() == nil {
			cg := h.graph(li)
			rspan := obs.StartSpan(ctx, "partition/refine")
			if rspan.Active() {
				rspan.SetInt("level", int64(li))
				rspan.SetInt("vertices", int64(cg.NumVertices()))
			}
			mv := kwayRefine(ctx, cg, part, k, caps, opt.RefinePasses, pool)
			if rspan.Active() {
				rspan.SetInt("moves", int64(mv))
			}
			rspan.End()
		}
		part = projectAssignment(h.cmap(li), part)
		h.release(li)
	}
	// The walk is done loading; free the read-back buffers before the
	// finest level's refinement.
	h.dropReloadBuffers()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	rspan := obs.StartSpan(ctx, "partition/refine")
	if rspan.Active() {
		rspan.SetInt("level", 0)
		rspan.SetInt("vertices", int64(g.NumVertices()))
	}
	mv := kwayRefine(ctx, g, part, k, caps, opt.RefinePasses, pool)
	if rspan.Active() {
		rspan.SetInt("moves", int64(mv))
	}
	rspan.End()

	return NewResult(g, part, k), nil
}

func errBadK(k int) error {
	return fmt.Errorf("partition: k = %d, want >= 1", k)
}

// kwayCaps returns per-part per-constraint weight caps (shared by all parts
// since targets are uniform).
func kwayCaps(g *graph.Graph, k int, tol float64) []int64 {
	return kwayCapsInto(nil, g, k, tol)
}

// kwayCapsInto is kwayCaps writing into dst (grown as needed), so pooled
// callers avoid the allocation. Totals and per-vertex maxima are accumulated
// in stack buffers so the steady-state path stays allocation-free.
func kwayCapsInto(dst []int64, g *graph.Graph, k int, tol float64) []int64 {
	ncon := g.NCon
	var totArr, maxArr [8]int64
	var tot, maxV []int64
	if ncon <= len(totArr) {
		tot, maxV = totArr[:ncon], maxArr[:ncon]
	} else {
		tot, maxV = make([]int64, ncon), make([]int64, ncon)
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		row := g.VWgt[v*ncon : (v+1)*ncon]
		for c, w := range row {
			tot[c] += int64(w)
			if int64(w) > maxV[c] {
				maxV[c] = int64(w)
			}
		}
	}
	caps := growI64(dst, ncon)
	for c := range tot {
		ideal := float64(tot[c]) / float64(k)
		cap := int64(ideal * tol)
		if feasible := int64(math.Ceil(ideal - 1e-9)); feasible > cap {
			cap = feasible
		}
		if maxV[c] > cap {
			cap = maxV[c]
		}
		caps[c] = cap
	}
	return caps
}

// moveBias skews refinement gains against moving a vertex off its origin
// part: leaving origin subtracts pen[v] from the move's gain, returning to
// origin adds it back, lateral moves between two non-origin parts are
// neutral. It is how incremental repartitioning (internal/repart) expresses
// "restore balance, but migrate as little data as possible" through the
// existing refinement machinery. The zero moveBias is "unbiased".
type moveBias struct {
	origin []int32
	pen    []int64
}

// delta returns the gain adjustment for moving v from part `from` to `to`.
func (b moveBias) delta(v, from, to int32) int64 {
	switch b.origin[v] {
	case from:
		return -b.pen[v]
	case to:
		return b.pen[v]
	}
	return 0
}
