package partition

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"tempart/internal/graph"
	"tempart/internal/obs"
)

// Method selects the k-way construction algorithm.
type Method int

const (
	// RecursiveBisection builds the k-way partition by recursive 2-way
	// splits — the paper's choice ("it produces higher quality solutions on
	// our meshes").
	RecursiveBisection Method = iota
	// DirectKWay coarsens once, solves k-way on the coarsest graph by
	// recursive bisection, and uncoarsens with greedy k-way boundary
	// refinement — cheaper for large k, usually slightly worse cuts under
	// many constraints (the ablation BenchmarkAblationRBvsKWay quantifies
	// this trade-off).
	DirectKWay
)

// String implements fmt.Stringer.
func (m Method) String() string {
	if m == DirectKWay {
		return "kway"
	}
	return "rb"
}

// PartitionKWay computes a k-way partition with the direct k-way multilevel
// scheme. It honours the same Options as Partition. Cancelling ctx stops the
// construction at the next coarsening or refinement boundary.
func PartitionKWay(ctx context.Context, g *graph.Graph, k int, opt Options) (*Result, error) {
	if k < 1 {
		return nil, errBadK(k)
	}
	n := g.NumVertices()
	if k == 1 || n <= k {
		// Degenerate cases match the recursive-bisection behaviour.
		return partitionRB(ctx, g, k, opt)
	}
	opt = opt.withDefaults(g.NCon)
	rng := rand.New(rand.NewSource(opt.Seed))
	pool := graph.NewPool(opt.Parallelism)

	// Coarsen once, keeping enough coarse vertices for k parts.
	coarseTo := opt.CoarsenTo
	if min := 16 * k; coarseTo < min {
		coarseTo = min
	}
	sc := getScratch()
	levels := coarsen(ctx, g, coarseTo, rng, pool, sc)
	putScratch(sc)
	coarsest := levels[len(levels)-1].g

	// Initial k-way on the coarsest graph via recursive bisection.
	part := make([]int32, coarsest.NumVertices())
	vertices := make([]int32, coarsest.NumVertices())
	for i := range vertices {
		vertices[i] = int32(i)
	}
	recursiveBisect(ctx, coarsest, vertices, 0, k, part, opt, opt.Seed, pool)

	// Uncoarsen with k-way refinement at every level.
	caps := kwayCaps(g, k, opt.ImbalanceTol)
	for li := len(levels) - 1; li >= 1; li-- {
		if ctx.Err() == nil {
			rspan := obs.StartSpan(ctx, "partition/refine")
			if rspan.Active() {
				rspan.SetInt("level", int64(li))
				rspan.SetInt("vertices", int64(levels[li].g.NumVertices()))
			}
			kwayRefine(levels[li].g, part, k, caps, opt.RefinePasses, rng)
			rspan.End()
		}
		part = projectAssignment(levels[li].cmap, part)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	rspan := obs.StartSpan(ctx, "partition/refine")
	if rspan.Active() {
		rspan.SetInt("level", 0)
		rspan.SetInt("vertices", int64(g.NumVertices()))
	}
	kwayRefine(g, part, k, caps, opt.RefinePasses, rng)
	rspan.End()

	return NewResult(g, part, k), nil
}

func errBadK(k int) error {
	return fmt.Errorf("partition: k = %d, want >= 1", k)
}

// kwayCaps returns per-part per-constraint weight caps (shared by all parts
// since targets are uniform).
func kwayCaps(g *graph.Graph, k int, tol float64) []int64 {
	tot := g.TotalWeights()
	maxV := maxVertexWeights(g)
	caps := make([]int64, g.NCon)
	for c := range tot {
		ideal := float64(tot[c]) / float64(k)
		cap := int64(ideal * tol)
		if feasible := int64(math.Ceil(ideal - 1e-9)); feasible > cap {
			cap = feasible
		}
		if maxV[c] > cap {
			cap = maxV[c]
		}
		caps[c] = cap
	}
	return caps
}

// moveBias skews refinement gains against moving a vertex off its origin
// part: leaving origin subtracts pen[v] from the move's gain, returning to
// origin adds it back, lateral moves between two non-origin parts are
// neutral. It is how incremental repartitioning (internal/repart) expresses
// "restore balance, but migrate as little data as possible" through the
// existing refinement machinery.
type moveBias struct {
	origin []int32
	pen    []int64
}

// delta returns the gain adjustment for moving v from part `from` to `to`.
func (b *moveBias) delta(v, from, to int32) int64 {
	switch b.origin[v] {
	case from:
		return -b.pen[v]
	case to:
		return b.pen[v]
	}
	return 0
}

// kwayRefine runs greedy k-way boundary refinement passes in place: every
// boundary vertex may move to the neighbouring part that maximises edge-cut
// gain, provided the move does not push any constraint of the target part
// past its cap and does not worsen total violation. Passes stop early when a
// sweep makes no move.
func kwayRefine(g *graph.Graph, part []int32, k int, caps []int64, passes int, rng *rand.Rand) {
	kwayRefineBiased(context.Background(), g, part, k, caps, passes, rng, nil)
}

// kwayRefineBiased is kwayRefine with an optional migration bias applied to
// every move's gain. Cancelling ctx stops at the next pass boundary.
func kwayRefineBiased(ctx context.Context, g *graph.Graph, part []int32, k int, caps []int64, passes int, rng *rand.Rand, bias *moveBias) {
	n := g.NumVertices()
	ncon := g.NCon

	pw := make([][]int64, k)
	for p := range pw {
		pw[p] = make([]int64, ncon)
	}
	for v := 0; v < n; v++ {
		for c := 0; c < ncon; c++ {
			pw[part[v]][c] += int64(g.Weight(int32(v), c))
		}
	}
	overOf := func(p int32) int64 {
		var over int64
		for c := 0; c < ncon; c++ {
			if d := pw[p][c] - caps[c]; d > 0 {
				over += d
			}
		}
		return over
	}

	// Scratch: connection weight to each part for the vertex under review.
	conn := make([]int64, k)
	touchedParts := make([]int32, 0, 8)

	order := rng.Perm(n)
	for pass := 0; pass < passes; pass++ {
		if ctx.Err() != nil {
			return
		}
		moves := 0
		for _, vi := range order {
			v := int32(vi)
			from := part[v]

			// Collect connections to adjacent parts.
			touchedParts = touchedParts[:0]
			boundary := false
			for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
				p := part[g.Adjncy[i]]
				if conn[p] == 0 {
					touchedParts = append(touchedParts, p)
				}
				conn[p] += int64(g.AdjWgt[i])
				if p != from {
					boundary = true
				}
			}
			if !boundary {
				for _, p := range touchedParts {
					conn[p] = 0
				}
				continue
			}

			wv := g.WeightVec(v)
			overFrom := overOf(from)
			var best int32 = -1
			var bestGain int64 = 0
			var bestOverDelta int64 = 0
			for _, to := range touchedParts {
				if to == from {
					continue
				}
				gain := conn[to] - conn[from]
				if bias != nil {
					gain += bias.delta(v, from, to)
				}
				// Balance effect of moving v from → to.
				var overToNew, overFromNew int64
				for c := 0; c < ncon; c++ {
					if d := pw[to][c] + int64(wv[c]) - caps[c]; d > 0 {
						overToNew += d
					}
					if d := pw[from][c] - int64(wv[c]) - caps[c]; d > 0 {
						overFromNew += d
					}
				}
				overDelta := (overToNew + overFromNew) - (overOf(to) + overFrom)
				if overDelta > 0 {
					continue // would worsen balance
				}
				if overDelta < bestOverDelta ||
					(overDelta == bestOverDelta && gain > bestGain) {
					best, bestGain, bestOverDelta = to, gain, overDelta
				}
			}
			if best >= 0 && (bestGain > 0 || bestOverDelta < 0) {
				for c := 0; c < ncon; c++ {
					pw[from][c] -= int64(wv[c])
					pw[best][c] += int64(wv[c])
				}
				part[v] = best
				moves++
			}
			for _, p := range touchedParts {
				conn[p] = 0
			}
		}
		if moves == 0 {
			return
		}
	}
}
