package partition

import (
	"sync"

	"tempart/internal/graph"
)

// deriveSeed derives a subtree's RNG seed from its parent's seed and the
// subtree's (firstPart, k) coordinates via a splitmix64-style mix. Every node
// of the recursive-bisection tree is uniquely addressed by (firstPart, k), so
// the seed of any node is a pure function of the root seed and the node's
// path — never of scheduling — which is what keeps parallel fan-out
// bit-identical to serial execution for a given Options.Seed.
func deriveSeed(parent int64, firstPart, k int) int64 {
	z := uint64(parent) ^ (uint64(uint32(firstPart))*0x9E3779B97F4A7C15 ^
		uint64(uint32(k))*0xBF58476D1CE4E5B9)
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// scratch is the per-worker buffer arena of the multilevel pipeline. Every
// O(n) working array that used to be allocated per bisection node, per FM
// pass or per matching sweep lives here instead; workers take an arena from
// the pool at each recursion node and return it before fanning out, so the
// pool holds at most one arena per concurrently active node. Buffers only
// ever grow within an arena; the pools are size-classed (see sizeclass.go),
// so an arena grown by a paper-scale request is never handed to a small one.
type scratch struct {
	split []int32 // stable-partition spill buffer (recursiveBisect)
	match []int32 // heavy-edge matching state
	pref  []int32 // precomputed heaviest-neighbour candidates

	// FM refinement state (refineBisection / fmPass).
	gain    []int32
	bound   []bool
	locked  []bool
	moves   []int32
	heaps   [2]vertexHeap  // small-n fallback path
	buckets [2]gainBuckets // bucket-list gain structures (fmPassBuckets)

	// Greedy-graph-growing state (growBisection).
	growGain     []int32
	growFrontier []bool
	growHeap     vertexHeap
	growParked   []int32
}

// class files the arena by its largest node-sized buffer.
func (s *scratch) class() int {
	m := cap(s.match)
	for _, c := range [5]int{cap(s.pref), cap(s.gain), cap(s.split), cap(s.growGain), cap(s.moves)} {
		if c > m {
			m = c
		}
	}
	return capClass(m)
}

var scratchPools [sizeClasses]sync.Pool

// getScratch returns an arena sized for roughly n vertices: it probes the
// request's size class and the next two above it, allocating an empty arena
// (buffers grow on demand) when none is pooled.
func getScratch(n int) *scratch {
	for c, hi := reqClass(n), 0; hi < classProbes && c < sizeClasses; c, hi = c+1, hi+1 {
		if v := scratchPools[c].Get(); v != nil {
			return v.(*scratch)
		}
	}
	return new(scratch)
}

func putScratch(s *scratch) { scratchPools[s.class()].Put(s) }

// gscPools pools graph.Scratch tables separately from the node-sized scratch
// arenas: a Subgraph local-id table is sized by the GLOBAL vertex count, so
// folding it into scratch would drag every arena into the top class during a
// large run (and pay an O(global n) -1 refill per small node). Classed by
// the global count, every recursion node of one run shares the same class.
var gscPools [sizeClasses]sync.Pool

func getGraphScratch(n int) *graph.Scratch {
	for c, hi := reqClass(n), 0; hi < classProbes && c < sizeClasses; c, hi = c+1, hi+1 {
		if v := gscPools[c].Get(); v != nil {
			return v.(*graph.Scratch)
		}
	}
	return new(graph.Scratch)
}

func putGraphScratch(gs *graph.Scratch) { gscPools[capClass(gs.Cap())].Put(gs) }

// growI32 returns buf resized to n, reallocating only when capacity is short.
// Contents are unspecified — callers must fully initialise the slice.
func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// growI64 is growI32 for int64 buffers.
func growI64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	return buf[:n]
}

// growBool is growI32 for bool buffers, additionally clearing the slice.
func growBool(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

// forEach runs f(0) … f(n-1) on up to workers goroutines (including the
// caller). Results must not depend on execution order.
func forEach(workers, n int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 1; i < n; i++ {
		next <- i
	}
	close(next)
	f(0)
	wg.Wait()
}
