package partition

import "tempart/internal/graph"

// bisection is the working state of a 2-way split of a graph: the side of
// each vertex (0 or 1) plus per-side, per-constraint weights and caps.
type bisection struct {
	g     *graph.Graph
	where []int32
	side  [2][]int64 // [side][constraint]
	caps  [2][]int64 // balance caps per side
	tot   []int64    // per-constraint totals (for violation normalisation)
}

func newBisection(g *graph.Graph, where []int32, caps0, caps1 []int64) *bisection {
	b := &bisection{g: g, where: where, caps: [2][]int64{caps0, caps1}}
	b.side[0] = make([]int64, g.NCon)
	b.side[1] = make([]int64, g.NCon)
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		s := where[v]
		for c := 0; c < g.NCon; c++ {
			b.side[s][c] += int64(g.Weight(int32(v), c))
		}
	}
	b.tot = make([]int64, g.NCon)
	for c := 0; c < g.NCon; c++ {
		b.tot[c] = b.side[0][c] + b.side[1][c]
	}
	return b
}

// violation is the normalised total balance overshoot across both sides and
// all constraints; zero means the bisection satisfies every cap.
func (b *bisection) violation() float64 {
	var v float64
	for c := 0; c < b.g.NCon; c++ {
		v += b.violationOf(c, b.side[0][c], b.side[1][c])
	}
	return v
}

func (b *bisection) violationOf(c int, s0, s1 int64) float64 {
	var v float64
	if over := s0 - b.caps[0][c]; over > 0 {
		v += float64(over) / float64(b.tot[c]+1)
	}
	if over := s1 - b.caps[1][c]; over > 0 {
		v += float64(over) / float64(b.tot[c]+1)
	}
	return v
}

// violationAfterMove returns the violation if vertex v moved to the other
// side.
func (b *bisection) violationAfterMove(v int32) float64 {
	s := b.where[v]
	t := 1 - s
	var total float64
	w := b.g.WeightVec(v)
	for c := 0; c < b.g.NCon; c++ {
		s0, s1 := b.side[0][c], b.side[1][c]
		d := int64(w[c])
		if s == 0 {
			s0 -= d
			s1 += d
		} else {
			s1 -= d
			s0 += d
		}
		total += b.violationOf(c, s0, s1)
	}
	_ = t
	return total
}

// move flips vertex v to the other side, updating side weights.
func (b *bisection) move(v int32) {
	s := b.where[v]
	t := 1 - s
	w := b.g.WeightVec(v)
	for c := 0; c < b.g.NCon; c++ {
		b.side[s][c] -= int64(w[c])
		b.side[t][c] += int64(w[c])
	}
	b.where[v] = t
}

// cut returns the current edge cut of the bisection.
func (b *bisection) cut() int64 {
	return ComputeEdgeCut(b.g, b.where)
}

// growBisection produces an initial 0/1 assignment of g targeting fraction
// frac of every constraint on side 0, by greedy graph growing from a
// pseudo-peripheral seed. All vertices start on side 1 and side 0 is grown
// until every constraint reaches its target (or growth is exhausted). The
// returned assignment is freshly allocated (it outlives the call as a trial
// result); all other working state comes from the scratch arena, so the
// InitTrials loop allocates only its candidate assignments.
func growBisection(g *graph.Graph, frac float64, caps0, caps1 []int64, rng randSource, sc *scratch) []int32 {
	n := g.NumVertices()
	where := make([]int32, n)
	for i := range where {
		where[i] = 1
	}
	if n == 0 {
		return where
	}
	b := newBisection(g, where, caps0, caps1)

	target := make([]int64, g.NCon)
	for c := range target {
		target[c] = int64(float64(b.tot[c]) * frac)
	}

	deficit := func(c int) int64 { return target[c] - b.side[0][c] }
	anyDeficit := func() bool {
		for c := 0; c < g.NCon; c++ {
			if deficit(c) > 0 {
				return true
			}
		}
		return false
	}
	// usefulness: does taking v reduce some positive deficit?
	useful := func(v int32) bool {
		w := g.WeightVec(v)
		for c := 0; c < g.NCon; c++ {
			if w[c] > 0 && deficit(c) > 0 {
				return true
			}
		}
		return false
	}
	// overshoots: would taking v push a saturated constraint past its cap?
	overshoots := func(v int32) bool {
		w := g.WeightVec(v)
		for c := 0; c < g.NCon; c++ {
			if w[c] > 0 && b.side[0][c]+int64(w[c]) > b.caps[0][c] {
				return true
			}
		}
		return false
	}

	seed := pseudoPeripheral(g, int32(rng.Intn(n)))
	// gain[v]: edges into side 0 minus edges to side 1, so tightly-connected
	// vertices are preferred (keeps the region compact → low cut).
	gain := growI32(sc.growGain, n)
	sc.growGain = gain
	inFrontier := growBool(sc.growFrontier, n)
	sc.growFrontier = inFrontier
	h := &sc.growHeap
	h.reset()
	h.bind(gain, heapCompactLimit(n))
	add := func(v int32) {
		if !inFrontier[v] && b.where[v] == 1 {
			inFrontier[v] = true
			h.push(gain[v], v)
		}
	}
	take := func(v int32) {
		b.move(v)
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			u := g.Adjncy[i]
			if b.where[u] == 1 {
				gain[u] += 2 * g.AdjWgt[i]
				if inFrontier[u] {
					h.push(gain[u], u) // lazy update
				} else {
					add(u)
				}
			}
		}
	}
	// Initialise gains as -(degree weight): everything external at first.
	for v := 0; v < n; v++ {
		var d int32
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			d += g.AdjWgt[i]
		}
		gain[v] = -d
	}
	add(seed)

	parked := sc.growParked[:0] // frontier vertices that currently overshoot
	defer func() { sc.growParked = parked }()
	for anyDeficit() {
		v, ok := h.popValid(func(v int32) bool { return b.where[v] == 1 }, gain)
		if !ok {
			// Frontier exhausted: bridge through a parked vertex if any,
			// otherwise jump to a fresh seed in an unexplored component.
			if len(parked) > 0 {
				v = parked[len(parked)-1]
				parked = parked[:len(parked)-1]
				if b.where[v] == 1 {
					take(v)
				}
				continue
			}
			fresh := int32(-1)
			for u := 0; u < n; u++ {
				if b.where[u] == 1 && useful(int32(u)) {
					fresh = int32(u)
					break
				}
			}
			if fresh < 0 {
				break
			}
			add(fresh)
			continue
		}
		inFrontier[v] = false
		if !useful(v) && overshoots(v) {
			parked = append(parked, v)
			continue
		}
		take(v)
	}
	return b.where
}

// pseudoPeripheral returns a vertex roughly farthest from start via two BFS
// sweeps.
func pseudoPeripheral(g *graph.Graph, start int32) int32 {
	far := bfsFarthest(g, start)
	return bfsFarthest(g, far)
}

func bfsFarthest(g *graph.Graph, start int32) int32 {
	n := g.NumVertices()
	seen := make([]bool, n)
	queue := make([]int32, 0, 256)
	queue = append(queue, start)
	seen[start] = true
	last := start
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		last = v
		for _, u := range g.Neighbors(v) {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return last
}

// vertexHeap is a max-heap of (key, vertex) with lazy deletion: entries may
// be stale; popValid filters them against the caller's current keys. Lazy
// updates push a duplicate entry per key change, so an unbounded heap can
// grow far past the vertex count on long refinement passes; bind attaches
// the caller's live-key array and a size bound, and push compacts the heap
// back to at most one fresh entry per vertex whenever the bound is exceeded.
type vertexHeap struct {
	keys []int32
	vs   []int32

	fresh []int32 // current key per vertex; entries with other keys are stale
	limit int     // compact when len exceeds this (0 = never)
	seen  []bool  // compaction dedup scratch
}

// heapCompactLimit is the stale-entry bound used by the refinement callers:
// compaction keeps at most one entry per vertex, so a 4n bound amortises the
// O(len) compaction over at least 3n pushes.
func heapCompactLimit(n int) int { return 4*n + 64 }

func newVertexHeap() *vertexHeap { return &vertexHeap{} }

func (h *vertexHeap) len() int { return len(h.vs) }

// reset empties the heap while keeping its backing arrays for reuse. The
// bind filter is kept; rebind to change it.
func (h *vertexHeap) reset() { h.keys, h.vs = h.keys[:0], h.vs[:0] }

// bind attaches the live-key array consulted by compaction and the size
// bound that triggers it. fresh must outlive the heap's use and be indexed
// by vertex id.
func (h *vertexHeap) bind(fresh []int32, limit int) {
	h.fresh, h.limit = fresh, limit
}

func (h *vertexHeap) push(key, v int32) {
	h.keys = append(h.keys, key)
	h.vs = append(h.vs, v)
	i := len(h.vs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.keys[p] >= h.keys[i] {
			break
		}
		h.keys[p], h.keys[i] = h.keys[i], h.keys[p]
		h.vs[p], h.vs[i] = h.vs[i], h.vs[p]
		i = p
	}
	if h.limit > 0 && len(h.vs) > h.limit && h.fresh != nil {
		h.compact()
	}
}

// compact drops stale and duplicate entries — keeping, per vertex, only the
// first entry whose key matches the bound fresh array — and re-heapifies.
// The survivors number at most one per vertex, so a heap bounded at 4n
// shrinks to ≤ n entries.
func (h *vertexHeap) compact() {
	nv := len(h.fresh)
	if cap(h.seen) < nv {
		h.seen = make([]bool, nv)
	}
	seen := h.seen[:nv]
	out := 0
	for i := range h.vs {
		v := h.vs[i]
		if seen[v] || h.keys[i] != h.fresh[v] {
			continue
		}
		seen[v] = true
		h.keys[out], h.vs[out] = h.keys[i], h.vs[i]
		out++
	}
	h.keys, h.vs = h.keys[:out], h.vs[:out]
	for _, v := range h.vs {
		seen[v] = false
	}
	for i := out/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *vertexHeap) siftDown(i int) {
	n := len(h.vs)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && h.keys[l] > h.keys[big] {
			big = l
		}
		if r < n && h.keys[r] > h.keys[big] {
			big = r
		}
		if big == i {
			return
		}
		h.keys[i], h.keys[big] = h.keys[big], h.keys[i]
		h.vs[i], h.vs[big] = h.vs[big], h.vs[i]
		i = big
	}
}

func (h *vertexHeap) pop() (key, v int32, ok bool) {
	if len(h.vs) == 0 {
		return 0, 0, false
	}
	key, v = h.keys[0], h.vs[0]
	last := len(h.vs) - 1
	h.keys[0], h.vs[0] = h.keys[last], h.vs[last]
	h.keys, h.vs = h.keys[:last], h.vs[:last]
	h.siftDown(0)
	return key, v, true
}

// popValid pops entries until one passes the filter with a fresh key.
func (h *vertexHeap) popValid(valid func(int32) bool, fresh []int32) (int32, bool) {
	for {
		key, v, ok := h.pop()
		if !ok {
			return 0, false
		}
		if !valid(v) {
			continue
		}
		if fresh != nil && fresh[v] != key {
			continue // stale entry; the newer one is still queued
		}
		return v, true
	}
}
