package partition

import (
	"context"
	"testing"

	"tempart/internal/graph"
	"tempart/internal/mesh"
)

// stripedAssignment is a deliberately poor contiguous-block initial k-way
// assignment — lots of boundary for refinement to chew on.
func stripedAssignment(n, k int) []int32 {
	part := make([]int32, n)
	for i := range part {
		part[i] = int32(i * k / n)
	}
	return part
}

// TestRefineKWayDeterministicAcrossParallelism extends the PR 3 determinism
// contract to the pairwise-FM engine: the refined assignment is
// byte-identical at every Parallelism setting, biased and unbiased. Run
// under -race in CI, this also exercises the compute/commit protocol for
// data races.
func TestRefineKWayDeterministicAcrossParallelism(t *testing.T) {
	m := mesh.Cylinder(0.002)
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	n := g.NumVertices()
	const k = 12
	initial := stripedAssignment(n, k)
	origin := append([]int32(nil), initial...)
	pen := make([]int64, n)
	for i := range pen {
		pen[i] = int64(i%3) + 1
	}
	variants := []struct {
		name string
		opt  RefineOptions
	}{
		{"unbiased", RefineOptions{}},
		{"biased", RefineOptions{Origin: origin, MovePenalty: pen}},
	}
	for _, tc := range variants {
		t.Run(tc.name, func(t *testing.T) {
			caps := kwayCaps(g, k, 1.05)
			overage := func(part []int32) int64 {
				pw := make([]int64, k*g.NCon)
				for v := 0; v < n; v++ {
					dst := pw[int(part[v])*g.NCon:]
					for c, w := range g.WeightVec(int32(v)) {
						dst[c] += int64(w)
					}
				}
				var over int64
				for p := 0; p < k; p++ {
					for c := 0; c < g.NCon; c++ {
						if d := pw[p*g.NCon+c] - caps[c]; d > 0 {
							over += d
						}
					}
				}
				return over
			}
			var ref []int32
			var refCut int64
			for _, par := range parallelismSettings {
				part := append([]int32(nil), initial...)
				opt := tc.opt
				opt.Parallelism = par
				if err := RefineKWay(context.Background(), g, part, k, opt); err != nil {
					t.Fatal(err)
				}
				cut := ComputeEdgeCut(g, part)
				// The engine optimises (cap overage, cut) lexicographically:
				// it may trade a little cut for balance, never worsen both.
				if tc.name == "unbiased" {
					beforeCut, beforeOver := ComputeEdgeCut(g, initial), overage(initial)
					afterOver := overage(part)
					if afterOver > beforeOver || (afterOver == beforeOver && cut >= beforeCut) {
						t.Errorf("parallelism %d: no improvement (cut %d -> %d, overage %d -> %d)",
							par, beforeCut, cut, beforeOver, afterOver)
					}
				}
				if ref == nil {
					ref, refCut = part, cut
					continue
				}
				if cut != refCut {
					t.Errorf("parallelism %d: cut %d, serial %d", par, cut, refCut)
				}
				for i := range part {
					if part[i] != ref[i] {
						t.Fatalf("parallelism %d: vertex %d in part %d, serial says %d — refinement depends on worker count",
							par, i, part[i], ref[i])
					}
				}
			}
		})
	}
}

// TestRefineKWayRepairsImbalance: the pairwise engine must still perform the
// balance-restoring duty repart relies on — moves that reduce cap overage
// are admissible regardless of gain. The overload sits on a shared boundary
// (like repart's warm starts after drift): chain migration through saturated
// non-adjacent parts is diffusion's job, not boundary FM's.
func TestRefineKWayRepairsImbalance(t *testing.T) {
	g := graph.Grid(24, 24)
	n := g.NumVertices()
	const k = 4
	// Quadrant partition, then part 0 annexes a three-column band of its
	// neighbour part 1: 180 vs 144 ideal (imbalance 1.25).
	part := make([]int32, n)
	for r := 0; r < 24; r++ {
		for c := 0; c < 24; c++ {
			p := int32(0)
			if r >= 12 {
				p += 2
			}
			if c >= 12 {
				p++
			}
			if r < 12 && c >= 12 && c < 15 {
				p = 0
			}
			part[r*24+c] = p
		}
	}
	before := NewResult(g, append([]int32(nil), part...), k).MaxImbalance()
	if err := RefineKWay(context.Background(), g, part, k, RefineOptions{ImbalanceTol: 1.05, Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	after := NewResult(g, part, k).MaxImbalance()
	if after >= before {
		t.Errorf("imbalance not reduced: %.3f -> %.3f", before, after)
	}
	if after > 1.10 {
		t.Errorf("residual imbalance %.3f, want repair to near the 1.05 cap", after)
	}
}

// TestRefineKWayAllocs pins the scratch-arena contract: after warm-up,
// steady-state k-way refinement allocates nothing — every buffer (part
// weights, pair lists, coloring state, bucket structures) comes from pooled
// arenas.
func TestRefineKWayAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses reuse under the race detector")
	}
	m := mesh.Cylinder(0.004)
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	n := g.NumVertices()
	const k = 8
	part := stripedAssignment(n, k)
	opt := RefineOptions{Parallelism: 1, Passes: 2}
	// Warm the pools and converge the assignment.
	for i := 0; i < 3; i++ {
		if err := RefineKWay(context.Background(), g, part, k, opt); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := RefineKWay(context.Background(), g, part, k, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state RefineKWay allocates %.1f objects/op, want 0", allocs)
	}
}

// TestKWayPairColoringDisjoint verifies the scheduling invariant the
// determinism argument rests on: within a color class, no part appears in
// two pairs.
func TestKWayPairColoringDisjoint(t *testing.T) {
	m := mesh.Cylinder(0.003)
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	n := g.NumVertices()
	const k = 16
	part := stripedAssignment(n, k)
	ks := getKwayScratch(n)
	defer putKwayScratch(ks)
	ncon := g.NCon
	ks.pw = growI64(ks.pw, k*ncon)
	for i := range ks.pw {
		ks.pw[i] = 0
	}
	for v := 0; v < n; v++ {
		dst := ks.pw[int(part[v])*ncon:]
		for c, w := range g.WeightVec(int32(v)) {
			dst[c] += int64(w)
		}
	}
	caps := kwayCaps(g, k, 1.05)
	kwayPass(g, part, k, caps, ks, nil, moveBias{})
	if len(ks.pairs) == 0 {
		t.Fatal("no pairs discovered on a striped assignment")
	}
	ncolors := 0
	for i := range ks.pairs {
		if c := int(ks.pairs[i].color) + 1; c > ncolors {
			ncolors = c
		}
	}
	for c := 0; c < ncolors; c++ {
		seen := map[int32]bool{}
		for i := range ks.pairs {
			if int(ks.pairs[i].color) != c {
				continue
			}
			for _, p := range []int32{ks.pairs[i].a, ks.pairs[i].b} {
				if seen[p] {
					t.Fatalf("color %d: part %d in two pairs", c, p)
				}
				seen[p] = true
			}
		}
	}
}
