package partition

import (
	"context"
	"reflect"
	"testing"

	"tempart/internal/mesh"
)

// TestSubtreeSplitMatchesLocal is the distribution determinism lemma: running
// the top of the bisection tree with SplitSubtrees, completing every
// frontier task with PartitionSubtree — in any order, at any parallelism —
// and applying the coordinator's PolishRB must reproduce the local Partition
// assignment bit for bit. The cluster coordinator's byte-identical fan-out
// guarantee rests entirely on this.
func TestSubtreeSplitMatchesLocal(t *testing.T) {
	m, err := mesh.ByName("CYLINDER", 0.004)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{MCTL, SCOC} {
		g, err := StrategyGraph(m, strat)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{2, 7, 16} {
			opt := Options{Seed: 42}
			ref, err := Partition(context.Background(), g, k, opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, target := range []int{1, 2, 3, 5} {
				for _, par := range []int{1, 2, 8} {
					o := opt
					o.Parallelism = par
					part, tasks, err := SplitSubtrees(context.Background(), g, k, o, target)
					if err != nil {
						t.Fatal(err)
					}
					// Complete the frontier in reverse order to prove order
					// independence.
					for i := len(tasks) - 1; i >= 0; i-- {
						if err := PartitionSubtree(context.Background(), g, tasks[i], o, part); err != nil {
							t.Fatal(err)
						}
					}
					PolishRB(context.Background(), g, part, k, o)
					if !reflect.DeepEqual(part, ref.Part) {
						t.Fatalf("%v k=%d target=%d par=%d: stitched subtree partition differs from local run",
							strat, k, target, par)
					}
				}
			}
		}
	}
}

// TestSubtreeTaskVerticesNotConsumed pins the retry contract: a peer failure
// must leave the task replayable, so PartitionSubtree may not mutate the
// task's vertex slice.
func TestSubtreeTaskVerticesNotConsumed(t *testing.T) {
	m, err := mesh.ByName("CUBE", 0.004)
	if err != nil {
		t.Fatal(err)
	}
	g, err := StrategyGraph(m, MCTL)
	if err != nil {
		t.Fatal(err)
	}
	part, tasks, err := SplitSubtrees(context.Background(), g, 8, Options{Seed: 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) == 0 {
		t.Fatal("expected at least one interior frontier task")
	}
	task := tasks[0]
	before := append([]int32(nil), task.Vertices...)
	if err := PartitionSubtree(context.Background(), g, task, Options{Seed: 7}, part); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, task.Vertices) {
		t.Fatal("PartitionSubtree mutated the task's vertex slice; retries would diverge")
	}
	// A second run over a fresh part array must write the same entries.
	part2 := make([]int32, g.NumVertices())
	if err := PartitionSubtree(context.Background(), g, task, Options{Seed: 7}, part2); err != nil {
		t.Fatal(err)
	}
	for _, v := range task.Vertices {
		if part[v] != part2[v] {
			t.Fatalf("vertex %d: retry assigned %d, first run %d", v, part2[v], part[v])
		}
	}
}
