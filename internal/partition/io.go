package partition

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary partition-result format, mirroring the mesh's TMSH layout so the
// daemon can persist results and warm-start incremental repartitions from
// them:
//
//	magic  "TPRT"            4 bytes
//	version u32              currently 1
//	numParts u32, ncon u32, numVertices u64
//	part     numVertices × i32
//	weights  numParts × ncon × i64
//	edgeCut  i64
const (
	resultMagic   = "TPRT"
	resultVersion = 1

	// Decode hardening caps, aligned with the mesh decoder's limits: a
	// forged header may not force allocations beyond what a real workload
	// could produce.
	maxDecodeParts    = 1 << 24
	maxDecodeNCon     = 1 << 10
	maxDecodeVertices = 1 << 33
)

// Encode serialises the result in the TPRT binary layout.
func (r *Result) Encode(w io.Writer) error {
	ncon := 0
	if len(r.PartWeights) > 0 {
		ncon = len(r.PartWeights[0])
	}
	if len(r.PartWeights) != r.NumParts {
		return fmt.Errorf("partition: %d weight rows for %d parts", len(r.PartWeights), r.NumParts)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	write := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }
	if _, err := bw.WriteString(resultMagic); err != nil {
		return err
	}
	for _, v := range []any{uint32(resultVersion), uint32(r.NumParts), uint32(ncon), uint64(len(r.Part))} {
		if err := write(v); err != nil {
			return err
		}
	}
	if err := write(r.Part); err != nil {
		return err
	}
	for p, row := range r.PartWeights {
		if len(row) != ncon {
			return fmt.Errorf("partition: weight row %d has %d constraints, want %d", p, len(row), ncon)
		}
		if err := write(row); err != nil {
			return err
		}
	}
	if err := write(r.EdgeCut); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodeResult deserialises a result written by Encode and validates that
// every assignment lies in [0, NumParts). Like the mesh decoder, arrays are
// read in bounded chunks so a forged header cannot force a huge allocation
// before the (truncated) input runs out.
func DecodeResult(r io.Reader) (*Result, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("partition: reading magic: %w", err)
	}
	if string(magic) != resultMagic {
		return nil, fmt.Errorf("partition: bad magic %q", magic)
	}
	var version, numParts, ncon uint32
	var numVertices uint64
	if err := read(&version); err != nil {
		return nil, err
	}
	if version != resultVersion {
		return nil, fmt.Errorf("partition: unsupported result version %d", version)
	}
	if err := read(&numParts); err != nil {
		return nil, err
	}
	if err := read(&ncon); err != nil {
		return nil, err
	}
	if err := read(&numVertices); err != nil {
		return nil, err
	}
	if numParts == 0 || numParts > maxDecodeParts || ncon > maxDecodeNCon || numVertices > maxDecodeVertices {
		return nil, fmt.Errorf("partition: implausible header (%d parts, %d constraints, %d vertices)",
			numParts, ncon, numVertices)
	}

	out := &Result{NumParts: int(numParts)}
	const chunkElems = 1 << 20
	for n := numVertices; n > 0; {
		c := n
		if c > chunkElems {
			c = chunkElems
		}
		buf := make([]int32, c)
		if err := read(buf); err != nil {
			return nil, err
		}
		out.Part = append(out.Part, buf...)
		n -= c
	}
	for _, p := range out.Part {
		if p < 0 || p >= int32(numParts) {
			return nil, fmt.Errorf("partition: assignment %d out of range [0,%d)", p, numParts)
		}
	}
	out.PartWeights = make([][]int64, numParts)
	for p := range out.PartWeights {
		row := make([]int64, ncon)
		if err := read(row); err != nil {
			return nil, err
		}
		out.PartWeights[p] = row
	}
	if err := read(&out.EdgeCut); err != nil {
		return nil, err
	}
	return out, nil
}
