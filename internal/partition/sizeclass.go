package partition

import "math/bits"

// Power-of-two size classing for the package's pooled scratch arenas,
// mirroring internal/graph's discipline (see graph/sizeclass.go for the full
// rationale): both filing and probing use the ceil class, getters probe
// their own class plus the next classProbes-1, and every get site grows its
// buffers defensively. A paper-scale arena can never be handed to a
// kilobyte-scale request, while an arena grown for an n-sized node refiles
// exactly where the next n-sized node probes first — preserving the
// zero-alloc steady state pinned by TestRefineKWayAllocs.

const sizeClasses = 31

const classProbes = 3

// reqClass is the class a request of n elements starts probing at.
func reqClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// capClass is the class an arena of capacity c is filed under when returned:
// reqClass(c), clamped to the table.
func capClass(c int) int {
	k := reqClass(c)
	if k >= sizeClasses {
		k = sizeClasses - 1
	}
	return k
}
