package partition

import (
	"context"
	"fmt"
	"testing"

	"tempart/internal/mesh"
)

// BenchmarkPartitionCylinder is the perf contract of the parallel multilevel
// pipeline: the CI-scale cylinder at several Parallelism settings, with
// edge-cut and worst per-level imbalance reported alongside ns/op so a speed
// win that degrades quality is visible in the same output. Because the
// result is bit-identical across settings, the quality metrics must not move
// between sub-benchmarks — only ns/op may.
func BenchmarkPartitionCylinder(b *testing.B) {
	m := mesh.Cylinder(0.01)
	const k = 64
	for _, par := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("parallel=%d", par)
		if par == 0 {
			name = "parallel=max"
		}
		b.Run(name, func(b *testing.B) {
			var res *Result
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				res, err = PartitionMesh(context.Background(), m, k, MCTL,
					Options{Seed: 1, Parallelism: par})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.EdgeCut), "edge-cut")
			worst := 0.0
			for _, v := range res.Imbalance() {
				if v > worst {
					worst = v
				}
			}
			b.ReportMetric(worst, "max-level-imb")
		})
	}
}

// BenchmarkPartitionKWayCylinder covers the direct k-way construction, whose
// coarsening dominates (one deep hierarchy instead of a bisection tree).
func BenchmarkPartitionKWayCylinder(b *testing.B) {
	m := mesh.Cylinder(0.01)
	const k = 64
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			var res *Result
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				res, err = PartitionMesh(context.Background(), m, k, MCTL,
					Options{Seed: 1, Method: DirectKWay, Parallelism: par})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.EdgeCut), "edge-cut")
		})
	}
}
