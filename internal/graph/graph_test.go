package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustBuild(t *testing.T, b *Builder) *Graph {
	t.Helper()
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func TestBuilderTriangle(t *testing.T) {
	b := NewBuilder(2)
	a := b.AddVertex(1, 0)
	c := b.AddVertex(0, 1)
	d := b.AddVertex(1, 1)
	b.AddEdge(a, c, 1)
	b.AddEdge(c, d, 2)
	b.AddEdge(d, a, 3)
	g := mustBuild(t, b)

	if got := g.NumVertices(); got != 3 {
		t.Errorf("NumVertices = %d, want 3", got)
	}
	if got := g.NumEdges(); got != 3 {
		t.Errorf("NumEdges = %d, want 3", got)
	}
	if got := g.TotalEdgeWeight(); got != 6 {
		t.Errorf("TotalEdgeWeight = %d, want 6", got)
	}
	tot := g.TotalWeights()
	if tot[0] != 2 || tot[1] != 2 {
		t.Errorf("TotalWeights = %v, want [2 2]", tot)
	}
	if !g.HasEdge(a, c) || !g.HasEdge(c, a) {
		t.Error("missing edge a-c")
	}
	if g.HasEdge(a, a) {
		t.Error("unexpected self edge")
	}
}

func TestBuilderMergesDuplicateEdges(t *testing.T) {
	b := NewBuilder(1)
	u := b.AddVertex(1)
	v := b.AddVertex(1)
	b.AddEdge(u, v, 2)
	b.AddEdge(v, u, 3) // same undirected edge
	g := mustBuild(t, b)
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 after merge", g.NumEdges())
	}
	if w := g.EdgeWeights(u)[0]; w != 5 {
		t.Errorf("merged weight = %d, want 5", w)
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(1)
	b.AddVertex(1)
	b.AddEdge(0, 5, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted out-of-range edge")
	}
}

// TestBuilderReserveNoRegrowth: after Reserve with exact counts, ingest must
// not reallocate the vertex or edge backing arrays — that is the compact-CSR
// contract the mesh generators rely on at paper scale.
func TestBuilderReserveNoRegrowth(t *testing.T) {
	const nx, ny = 23, 17
	b := NewBuilder(2)
	b.Reserve(nx*ny, (nx-1)*ny+nx*(ny-1))
	vcap, ecap := cap(b.vwgt), cap(b.edges)
	for i := 0; i < nx*ny; i++ {
		b.AddVertex(1, int32(i%3))
	}
	id := func(i, j int) int32 { return int32(i*ny + j) }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			if i+1 < nx {
				b.AddEdge(id(i, j), id(i+1, j), 1)
			}
			if j+1 < ny {
				b.AddEdge(id(i, j), id(i, j+1), 1)
			}
		}
	}
	if cap(b.vwgt) != vcap {
		t.Errorf("vwgt regrew: cap %d -> %d", vcap, cap(b.vwgt))
	}
	if cap(b.edges) != ecap {
		t.Errorf("edges regrew: cap %d -> %d", ecap, cap(b.edges))
	}
	g := mustBuild(t, b)
	if g.NumVertices() != nx*ny {
		t.Fatalf("NumVertices = %d, want %d", g.NumVertices(), nx*ny)
	}
	if g.NumEdges() != (nx-1)*ny+nx*(ny-1) {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), (nx-1)*ny+nx*(ny-1))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Reserve on a partially filled builder keeps existing content intact.
	b2 := NewBuilder(1)
	b2.AddVertex(7)
	b2.AddVertex(9)
	b2.AddEdge(0, 1, 4)
	b2.Reserve(2, 1)
	b2.AddVertex(11)
	b2.AddEdge(1, 2, 5)
	g2 := mustBuild(t, b2)
	if got := g2.WeightVec(2)[0]; got != 11 {
		t.Errorf("vertex 2 weight = %d, want 11", got)
	}
	if got := g2.EdgeWeights(0)[0]; got != 4 {
		t.Errorf("edge {0,1} weight = %d, want 4", got)
	}
}

func TestBuilderPanicsOnSelfLoop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge(0,0) did not panic")
		}
	}()
	b := NewBuilder(1)
	b.AddVertex(1)
	b.AddEdge(0, 0, 1)
}

func TestGridStructure(t *testing.T) {
	g := Grid(3, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.NumVertices(); got != 12 {
		t.Errorf("NumVertices = %d, want 12", got)
	}
	// Edges of a 3x4 grid: 2*4 vertical + 3*3 horizontal = 17.
	if got := g.NumEdges(); got != 17 {
		t.Errorf("NumEdges = %d, want 17", got)
	}
	// Corner vertex has degree 2.
	if d := g.Degree(0); d != 2 {
		t.Errorf("Degree(corner) = %d, want 2", d)
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(1)
	for i := 0; i < 6; i++ {
		b.AddVertex(1)
	}
	// Two triangles.
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 0, 1)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	g := mustBuild(t, b)
	comp, n := g.Components()
	if n != 2 {
		t.Fatalf("Components count = %d, want 2", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("first triangle split across components")
	}
	if comp[3] != comp[4] || comp[4] != comp[5] {
		t.Error("second chain split across components")
	}
	if comp[0] == comp[3] {
		t.Error("disconnected pieces share a component")
	}
}

func TestComponentsSingletons(t *testing.T) {
	b := NewBuilder(1)
	for i := 0; i < 4; i++ {
		b.AddVertex(1)
	}
	g := mustBuild(t, b)
	_, n := g.Components()
	if n != 4 {
		t.Fatalf("Components = %d, want 4 singletons", n)
	}
}

func TestContractPairs(t *testing.T) {
	// 4-cycle with ncon=2; contract opposite... adjacent pairs {0,1} {2,3}.
	b := NewBuilder(2)
	for i := 0; i < 4; i++ {
		b.AddVertex(int32(i), 1)
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	b.AddEdge(2, 3, 3)
	b.AddEdge(3, 0, 4)
	g := mustBuild(t, b)

	cg := g.Contract([]int32{0, 0, 1, 1}, 2)
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cg.NumVertices() != 2 {
		t.Fatalf("coarse vertices = %d, want 2", cg.NumVertices())
	}
	// Coarse weights: {0,1} -> (0+1, 1+1) = (1,2); {2,3} -> (5,2).
	if w := cg.WeightVec(0); w[0] != 1 || w[1] != 2 {
		t.Errorf("coarse WeightVec(0) = %v, want [1 2]", w)
	}
	if w := cg.WeightVec(1); w[0] != 5 || w[1] != 2 {
		t.Errorf("coarse WeightVec(1) = %v, want [5 2]", w)
	}
	// Cross edges 1-2 (w2) and 3-0 (w4) merge into one coarse edge w6.
	if cg.NumEdges() != 1 {
		t.Fatalf("coarse edges = %d, want 1", cg.NumEdges())
	}
	if w := cg.EdgeWeights(0)[0]; w != 6 {
		t.Errorf("coarse edge weight = %d, want 6", w)
	}
}

func TestContractIdentityPreservesGraph(t *testing.T) {
	g := Grid(5, 5)
	id := make([]int32, g.NumVertices())
	for i := range id {
		id[i] = int32(i)
	}
	cg := g.Contract(id, g.NumVertices())
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cg.NumEdges() != g.NumEdges() {
		t.Errorf("edges %d != %d", cg.NumEdges(), g.NumEdges())
	}
	if cg.TotalEdgeWeight() != g.TotalEdgeWeight() {
		t.Errorf("edge weight %d != %d", cg.TotalEdgeWeight(), g.TotalEdgeWeight())
	}
}

func TestSubgraphInduced(t *testing.T) {
	g := Grid(4, 4)
	// Take the top-left 2x2 block: ids 0,1,4,5.
	sg, orig := g.Subgraph([]int32{0, 1, 4, 5})
	if err := sg.Validate(); err != nil {
		t.Fatal(err)
	}
	if sg.NumVertices() != 4 {
		t.Fatalf("sub vertices = %d, want 4", sg.NumVertices())
	}
	if sg.NumEdges() != 4 {
		t.Fatalf("sub edges = %d, want 4 (a 4-cycle)", sg.NumEdges())
	}
	if orig[2] != 4 {
		t.Errorf("orig[2] = %d, want 4", orig[2])
	}
}

// randomGraph builds a random connected-ish graph for property tests.
func randomGraph(rng *rand.Rand, n, ncon int) *Graph {
	b := NewBuilder(ncon)
	w := make([]int32, ncon)
	for i := 0; i < n; i++ {
		for c := range w {
			w[c] = int32(rng.Intn(5))
		}
		b.AddVertex(w...)
	}
	// Spanning chain plus random chords.
	for i := 1; i < n; i++ {
		b.AddEdge(int32(i-1), int32(i), int32(1+rng.Intn(4)))
	}
	for k := 0; k < n; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(int32(u), int32(v), int32(1+rng.Intn(4)))
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestContractConservesWeightsProperty(t *testing.T) {
	// Property: total vertex weight per constraint and total cross-edge
	// weight + internal weight are conserved by any contraction.
	f := func(seed int64, nSmall uint8, parts uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nSmall%40)
		g := randomGraph(rng, n, 1+int(nSmall%3))
		ncoarse := 1 + int(parts)%n
		cmap := make([]int32, n)
		// Ensure density: each coarse id used at least where possible.
		for i := range cmap {
			cmap[i] = int32(i % ncoarse)
		}
		cg := g.Contract(cmap, ncoarse)
		if err := cg.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		tf, tc := g.TotalWeights(), cg.TotalWeights()
		for c := range tf {
			if tf[c] != tc[c] {
				return false
			}
		}
		// Coarse edge weight == fine cross-coarse edge weight.
		var cross int64
		for v := 0; v < n; v++ {
			for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
				u := g.Adjncy[i]
				if cmap[v] != cmap[u] {
					cross += int64(g.AdjWgt[i])
				}
			}
		}
		return cg.TotalEdgeWeight() == cross/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSubgraphWeightsMatchProperty(t *testing.T) {
	f := func(seed int64, nSmall uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(nSmall%30)
		g := randomGraph(rng, n, 2)
		// Random subset of about half the vertices.
		var vs []int32
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				vs = append(vs, int32(i))
			}
		}
		if len(vs) == 0 {
			vs = []int32{0}
		}
		sg, orig := g.Subgraph(vs)
		if err := sg.Validate(); err != nil {
			return false
		}
		for i, v := range orig {
			a, b := sg.WeightVec(int32(i)), g.WeightVec(v)
			for c := range a {
				if a[c] != b[c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	g := &Graph{
		Xadj:   []int32{0, 1, 1},
		Adjncy: []int32{1},
		AdjWgt: []int32{1},
		NCon:   1,
		VWgt:   []int32{1, 1},
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted asymmetric graph")
	}
}
