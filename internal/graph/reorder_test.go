package graph

import "testing"

func TestBFSOrderIsPermutation(t *testing.T) {
	g := Grid(17, 13)
	order := BFSOrder(g)
	n := g.NumVertices()
	if len(order) != n {
		t.Fatalf("order length %d, want %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || int(v) >= n || seen[v] {
			t.Fatalf("order is not a permutation: vertex %d", v)
		}
		seen[v] = true
	}
}

func TestBFSOrderDeterministic(t *testing.T) {
	g := Grid(9, 21)
	a := BFSOrder(g)
	b := BFSOrder(g)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("BFSOrder is not deterministic")
		}
	}
}

// TestPermuteIsIsomorphic: the relabeled graph has the same edges, edge
// weights, and vertex weights under the permutation, with sorted adjacency
// rows.
func TestPermuteIsIsomorphic(t *testing.T) {
	b := NewBuilder(2)
	for i := 0; i < 10; i++ {
		b.AddVertex(int32(i+1), int32(2*i))
	}
	edges := [][3]int32{{0, 5, 2}, {5, 9, 1}, {9, 1, 7}, {1, 0, 3}, {3, 4, 4}, {2, 3, 5}, {6, 7, 1}, {7, 8, 1}}
	for _, e := range edges {
		b.AddEdge(e[0], e[1], e[2])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	order := BFSOrder(g)
	ng := Permute(g, order)
	inv := InversePerm(order)

	if ng.NumVertices() != g.NumVertices() || ng.NumEdges() != g.NumEdges() || ng.NCon != g.NCon {
		t.Fatal("shape changed under Permute")
	}
	for old := int32(0); int(old) < g.NumVertices(); old++ {
		nu := inv[old]
		for c := 0; c < g.NCon; c++ {
			if g.Weight(old, c) != ng.Weight(nu, c) {
				t.Fatalf("vertex %d constraint %d weight changed", old, c)
			}
		}
		// Edge multiset must match under relabeling.
		want := map[int32]int32{}
		for i, u := range g.Neighbors(old) {
			want[inv[u]] = g.EdgeWeights(old)[i]
		}
		row := ng.Neighbors(nu)
		wrow := ng.EdgeWeights(nu)
		if len(row) != len(want) {
			t.Fatalf("vertex %d degree changed", old)
		}
		for i, u := range row {
			if want[u] != wrow[i] {
				t.Fatalf("vertex %d: edge to %d weight %d, want %d", old, u, wrow[i], want[u])
			}
			if i > 0 && row[i-1] >= u {
				t.Fatalf("vertex %d: adjacency row not sorted", old)
			}
		}
	}
}

func TestInversePermRoundTrip(t *testing.T) {
	order := []int32{3, 1, 4, 0, 2}
	inv := InversePerm(order)
	for i, v := range order {
		if inv[v] != int32(i) {
			t.Fatal("InversePerm broken")
		}
	}
}

// TestBFSOrderLocality sanity-checks the point of the exercise: starting
// from a scrambled labeling (the realistic case — mesh generators do not
// emit banded CSR), the BFS order must sharply shrink the mean absolute id
// distance between neighbours. A grid's row-major labeling is already nearly
// banded, so the scramble is what makes the "before" representative.
func TestBFSOrderLocality(t *testing.T) {
	g := Grid(40, 25)
	n := g.NumVertices()
	// Deterministic Fisher–Yates with a fixed LCG.
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	state := uint64(12345)
	for i := n - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int(state % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	sg := Permute(g, perm)

	spread := func(g *Graph) float64 {
		var tot, cnt float64
		for v := int32(0); int(v) < g.NumVertices(); v++ {
			for _, u := range g.Neighbors(v) {
				d := float64(u - v)
				if d < 0 {
					d = -d
				}
				tot += d
				cnt++
			}
		}
		return tot / cnt
	}
	ng := Permute(sg, BFSOrder(sg))
	s, ns := spread(sg), spread(ng)
	if ns > s/4 {
		t.Errorf("BFS order did not restore locality: scrambled %.2f -> reordered %.2f", s, ns)
	}
}
