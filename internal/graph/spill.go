package graph

import (
	"fmt"
	"os"
	"unsafe"
)

// Bytes returns the heap footprint of the graph's CSR arrays in bytes. It is
// the unit of account of the partitioner's streaming hierarchy and of the
// partbench -mem report (bytes/cell at paper scale).
func (g *Graph) Bytes() int64 {
	return 4 * int64(len(g.Xadj)+len(g.Adjncy)+len(g.AdjWgt)+len(g.VWgt))
}

// spillAlign aligns every spilled level on a page boundary so the mmap load
// path can map levels independently (mmap offsets must be page-aligned).
const spillAlign = 4096

// SpillStore writes CSR graphs to an anonymous temporary file and reads them
// back byte-identically — either into a caller-reused heap buffer (Load) or
// as a read-only memory mapping (LoadMapped, unix only). The multilevel
// partitioner uses it to keep intermediate coarse graphs out of the heap
// between coarsening and uncoarsening: the spilled bytes ARE the original
// arrays, so a reloaded graph is indistinguishable from a retained one and
// partitions stay byte-identical whether or not a level was ever offloaded.
//
// The backing file is unlinked at creation; the data disappears with the
// last descriptor (or mapping) no matter how the process exits. A SpillStore
// must not be used concurrently.
type SpillStore struct {
	f   *os.File
	off int64
}

// SpillRef addresses one spilled graph inside its store.
type SpillRef struct {
	off  int64
	n    int // vertices
	nadj int // len(Adjncy) == len(AdjWgt)
	ncon int
}

// Words returns the total number of int32 words the reference occupies.
func (r SpillRef) Words() int { return (r.n + 1) + 2*r.nadj + r.n*r.ncon }

// NewSpillStore creates a store backed by an unlinked temp file.
func NewSpillStore() (*SpillStore, error) {
	f, err := os.CreateTemp("", "tempart-spill-*")
	if err != nil {
		return nil, fmt.Errorf("graph: spill store: %w", err)
	}
	// Unlink immediately: the kernel reclaims the blocks when the descriptor
	// (and any mapping) goes away, even on abnormal exit.
	_ = os.Remove(f.Name())
	return &SpillStore{f: f}, nil
}

// Spill appends the graph's arrays to the store and returns a reference. The
// graph itself is not modified; the caller decides when to drop it.
func (s *SpillStore) Spill(g *Graph) (SpillRef, error) {
	ref := SpillRef{off: s.off, n: g.NumVertices(), nadj: len(g.Adjncy), ncon: g.NCon}
	off := s.off
	for _, arr := range [4][]int32{g.Xadj, g.Adjncy, g.AdjWgt, g.VWgt} {
		if len(arr) == 0 {
			continue
		}
		if _, err := s.f.WriteAt(i32bytes(arr), off); err != nil {
			return SpillRef{}, fmt.Errorf("graph: spill write: %w", err)
		}
		off += 4 * int64(len(arr))
	}
	s.off = (off + spillAlign - 1) &^ (spillAlign - 1)
	return ref, nil
}

// Load reads the referenced graph back into buf (grown when too small) and
// returns the graph plus the buffer backing it. The graph's arrays alias buf,
// so the caller must not reuse buf while the graph is live; passing the same
// buffer across sequential loads amortises the allocation to the largest
// level ever loaded.
func (s *SpillStore) Load(r SpillRef, buf []int32) (*Graph, []int32, error) {
	w := r.Words()
	if cap(buf) < w {
		buf = make([]int32, w)
	}
	buf = buf[:w]
	if w > 0 {
		if _, err := s.f.ReadAt(i32bytes(buf), r.off); err != nil {
			return nil, buf, fmt.Errorf("graph: spill read: %w", err)
		}
	}
	return r.slice(buf), buf, nil
}

// LoadMapped maps the referenced graph read-only from the backing file and
// returns it with an unmap closure. On platforms without mmap support it
// returns an error; callers fall back to Load. Mapped graphs must be treated
// as immutable — writing through them faults.
func (s *SpillStore) LoadMapped(r SpillRef) (*Graph, func() error, error) {
	nbytes := 4 * r.Words()
	if nbytes == 0 {
		return r.slice(nil), func() error { return nil }, nil
	}
	b, err := mmapFile(s.f, r.off, nbytes)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: spill mmap: %w", err)
	}
	g := r.slice(unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), r.Words()))
	return g, func() error { return munmapBytes(b) }, nil
}

// WordRef addresses one spilled []int32 inside its store.
type WordRef struct {
	off int64
	n   int
}

// Len returns the number of int32 words the reference occupies.
func (r WordRef) Len() int { return r.n }

// SpillWords appends a raw int32 slice (e.g. a coarsening cmap) to the store.
func (s *SpillStore) SpillWords(ws []int32) (WordRef, error) {
	ref := WordRef{off: s.off, n: len(ws)}
	if len(ws) > 0 {
		if _, err := s.f.WriteAt(i32bytes(ws), s.off); err != nil {
			return WordRef{}, fmt.Errorf("graph: spill write: %w", err)
		}
	}
	s.off = (s.off + 4*int64(len(ws)) + spillAlign - 1) &^ (spillAlign - 1)
	return ref, nil
}

// LoadWords reads a spilled slice back into buf (grown when too small) and
// returns the slice aliasing buf. Like Load, the caller must not reuse buf
// while the returned slice is live.
func (s *SpillStore) LoadWords(r WordRef, buf []int32) ([]int32, error) {
	if cap(buf) < r.n {
		buf = make([]int32, r.n)
	}
	buf = buf[:r.n]
	if r.n > 0 {
		if _, err := s.f.ReadAt(i32bytes(buf), r.off); err != nil {
			return buf, fmt.Errorf("graph: spill read: %w", err)
		}
	}
	return buf, nil
}

// slice carves the four CSR arrays out of one backing slice.
func (r SpillRef) slice(buf []int32) *Graph {
	o := 0
	next := func(n int) []int32 {
		s := buf[o : o+n : o+n]
		o += n
		return s
	}
	return &Graph{
		Xadj:   next(r.n + 1),
		Adjncy: next(r.nadj),
		AdjWgt: next(r.nadj),
		NCon:   r.ncon,
		VWgt:   next(r.n * r.ncon),
	}
}

// Close releases the backing file. Outstanding mappings stay valid until
// their unmap closures run (the kernel holds the blocks for them).
func (s *SpillStore) Close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// i32bytes views an []int32 as its underlying bytes (native endianness; the
// data never leaves the machine).
func i32bytes(s []int32) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
}
