package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates an undirected graph edge by edge and produces a CSR
// Graph. Duplicate edges are merged by summing their weights. Self loops are
// rejected at build time.
type Builder struct {
	ncon  int
	nv    int
	vwgt  []int32 // flat n×ncon constraint matrix, row per vertex
	edges []builderEdge
}

type builderEdge struct {
	u, v int32
	w    int32
}

// NewBuilder returns a Builder for graphs with ncon balance constraints per
// vertex.
func NewBuilder(ncon int) *Builder {
	if ncon < 1 {
		ncon = 1
	}
	return &Builder{ncon: ncon}
}

// Reserve pre-sizes the builder for nv vertices and ne undirected edges, so
// ingest from a source with exact counts (a mesh knows its cell and interior
// face totals) runs without any append regrowth — at paper scale the
// geometric-doubling garbage of a cold builder is several times the final
// CSR footprint.
func (b *Builder) Reserve(nv, ne int) {
	if c := nv * b.ncon; cap(b.vwgt)-len(b.vwgt) < c {
		grown := make([]int32, len(b.vwgt), len(b.vwgt)+c)
		copy(grown, b.vwgt)
		b.vwgt = grown
	}
	if cap(b.edges)-len(b.edges) < ne {
		grown := make([]builderEdge, len(b.edges), len(b.edges)+ne)
		copy(grown, b.edges)
		b.edges = grown
	}
}

// AddVertex appends a vertex with the given constraint vector and returns its
// id. The vector length must equal the builder's ncon.
func (b *Builder) AddVertex(wgt ...int32) int32 {
	if len(wgt) != b.ncon {
		panic(fmt.Sprintf("graph: AddVertex got %d weights, want %d", len(wgt), b.ncon))
	}
	b.vwgt = append(b.vwgt, wgt...)
	b.nv++
	return int32(b.nv - 1)
}

// AddEdge records the undirected edge {u,v} with the given weight.
func (b *Builder) AddEdge(u, v int32, w int32) {
	if u == v {
		panic(fmt.Sprintf("graph: self loop at %d", u))
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, builderEdge{u, v, w})
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return b.nv }

// Build assembles the CSR graph. It may be called once; the builder should
// not be reused afterwards.
func (b *Builder) Build() (*Graph, error) {
	n := b.nv
	for _, e := range b.edges {
		if e.u < 0 || int(e.v) >= n {
			return nil, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", e.u, e.v, n)
		}
	}
	// Merge duplicates.
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].u != b.edges[j].u {
			return b.edges[i].u < b.edges[j].u
		}
		return b.edges[i].v < b.edges[j].v
	})
	merged := b.edges[:0]
	for _, e := range b.edges {
		if k := len(merged); k > 0 && merged[k-1].u == e.u && merged[k-1].v == e.v {
			merged[k-1].w += e.w
			continue
		}
		merged = append(merged, e)
	}

	g := &Graph{
		NCon: b.ncon,
		Xadj: make([]int32, n+1),
		VWgt: make([]int32, n*b.ncon),
	}
	copy(g.VWgt, b.vwgt)
	deg := make([]int32, n)
	for _, e := range merged {
		deg[e.u]++
		deg[e.v]++
	}
	for v := 0; v < n; v++ {
		g.Xadj[v+1] = g.Xadj[v] + deg[v]
	}
	g.Adjncy = make([]int32, g.Xadj[n])
	g.AdjWgt = make([]int32, g.Xadj[n])
	fill := make([]int32, n)
	copy(fill, g.Xadj[:n])
	for _, e := range merged {
		g.Adjncy[fill[e.u]], g.AdjWgt[fill[e.u]] = e.v, e.w
		fill[e.u]++
		g.Adjncy[fill[e.v]], g.AdjWgt[fill[e.v]] = e.u, e.w
		fill[e.v]++
	}
	return g, nil
}

// FromCSR wraps pre-built CSR arrays into a Graph without copying. The caller
// is responsible for the CSR invariants (see Validate).
func FromCSR(xadj, adjncy, adjwgt []int32, ncon int, vwgt []int32) *Graph {
	return &Graph{Xadj: xadj, Adjncy: adjncy, AdjWgt: adjwgt, NCon: ncon, VWgt: vwgt}
}

// Grid builds the ncon=1, unit-weight graph of an nx×ny 4-neighbour grid.
// Vertex (i,j) has id i*ny+j. It is a convenience for tests.
func Grid(nx, ny int) *Graph {
	b := NewBuilder(1)
	b.Reserve(nx*ny, (nx-1)*ny+nx*(ny-1))
	for i := 0; i < nx*ny; i++ {
		b.AddVertex(1)
	}
	id := func(i, j int) int32 { return int32(i*ny + j) }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			if i+1 < nx {
				b.AddEdge(id(i, j), id(i+1, j), 1)
			}
			if j+1 < ny {
				b.AddEdge(id(i, j), id(i, j+1), 1)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
