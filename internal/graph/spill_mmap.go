//go:build unix

package graph

import (
	"os"
	"syscall"
)

// mmapFile maps length bytes of f starting at the page-aligned offset off,
// read-only and shared (the pages stay file-backed and evictable, which is
// the point of the arena mode: reloaded coarse graphs cost page cache, not
// heap).
func mmapFile(f *os.File, off int64, length int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), off, length, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapBytes(b []byte) error { return syscall.Munmap(b) }
