package graph

import "sort"

// BFSOrder returns a cache-conscious relabeling of g: position i of the
// returned slice holds the old id of the vertex that becomes new vertex i.
// The order is Cuthill–McKee style — a breadth-first sweep per connected
// component, started at the component's minimum-degree vertex (ties to the
// lowest id) with neighbours enqueued in (degree, id) order — so vertices
// that are close in the graph end up close in memory. Partition refinement
// walks adjacency lists of boundary neighbourhoods; after relabeling those
// walks touch near-contiguous gain/weight entries instead of striding the
// whole array. The order is a pure function of the graph.
func BFSOrder(g *Graph) []int32 {
	n := g.NumVertices()
	order := make([]int32, 0, n)
	visited := make([]bool, n)
	// Component starts, cheapest first: vertices sorted by (degree, id).
	starts := make([]int32, n)
	for i := range starts {
		starts[i] = int32(i)
	}
	sort.Slice(starts, func(i, j int) bool {
		di, dj := g.Degree(starts[i]), g.Degree(starts[j])
		if di != dj {
			return di < dj
		}
		return starts[i] < starts[j]
	})

	queue := make([]int32, 0, 256)
	nbr := make([]int32, 0, 64)
	for _, s := range starts {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			nbr = nbr[:0]
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					nbr = append(nbr, u)
				}
			}
			sortByDegree(g, nbr)
			queue = append(queue, nbr...)
		}
	}
	return order
}

// sortByDegree sorts vertex ids by (degree, id) ascending — insertion sort,
// as the slices are adjacency-sized.
func sortByDegree(g *Graph, vs []int32) {
	for i := 1; i < len(vs); i++ {
		v := vs[i]
		dv := g.Degree(v)
		j := i - 1
		for j >= 0 {
			du := g.Degree(vs[j])
			if du < dv || (du == dv && vs[j] < v) {
				break
			}
			vs[j+1] = vs[j]
			j--
		}
		vs[j+1] = v
	}
}

// InversePerm inverts a permutation: out[order[i]] = i.
func InversePerm(order []int32) []int32 {
	inv := make([]int32, len(order))
	for i, v := range order {
		inv[v] = int32(i)
	}
	return inv
}

// Permute returns g relabeled under order (new vertex i is old vertex
// order[i]), with every adjacency row sorted by new neighbour id so sweeps
// run forward through memory. The input graph is unchanged.
func Permute(g *Graph, order []int32) *Graph {
	n := g.NumVertices()
	inv := InversePerm(order)
	ng := &Graph{
		NCon:   g.NCon,
		Xadj:   make([]int32, n+1),
		Adjncy: make([]int32, len(g.Adjncy)),
		AdjWgt: make([]int32, len(g.AdjWgt)),
		VWgt:   make([]int32, len(g.VWgt)),
	}
	for i, old := range order {
		ng.Xadj[i+1] = ng.Xadj[i] + int32(g.Degree(old))
		copy(ng.VWgt[i*g.NCon:(i+1)*g.NCon], g.WeightVec(old))
	}
	for i, old := range order {
		dst := ng.Xadj[i]
		row := ng.Adjncy[dst : dst+int32(g.Degree(old))]
		wrow := ng.AdjWgt[dst : dst+int32(g.Degree(old))]
		base := g.Xadj[old]
		for j := range row {
			row[j] = inv[g.Adjncy[base+int32(j)]]
			wrow[j] = g.AdjWgt[base+int32(j)]
		}
		// Insertion-sort the row (they are face-count sized) by neighbour id,
		// carrying the weights.
		for a := 1; a < len(row); a++ {
			u, w := row[a], wrow[a]
			b := a - 1
			for b >= 0 && row[b] > u {
				row[b+1], wrow[b+1] = row[b], wrow[b]
				b--
			}
			row[b+1], wrow[b+1] = u, w
		}
	}
	return ng
}
