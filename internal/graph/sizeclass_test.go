package graph

import "testing"

func TestSizeClassFunctions(t *testing.T) {
	cases := []struct{ n, req int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := reqClass(c.n); got != c.req {
			t.Errorf("reqClass(%d) = %d, want %d", c.n, got, c.req)
		}
	}
	// Filing is ceil-based: a buffer grown for an n-sized request refiles in
	// the class that an identical request probes first.
	for _, n := range []int{1, 2, 3, 100, 1024, 4095, 4096, 1 << 20} {
		if capClass(n) != reqClass(n) {
			t.Errorf("capClass(%d) = %d, want reqClass = %d", n, capClass(n), reqClass(n))
		}
	}
	if got := capClass(1 << 62); got != sizeClasses-1 {
		t.Errorf("capClass(1<<62) = %d, want clamp to %d", got, sizeClasses-1)
	}
}

// TestPosPoolNoPinning is the pool-pinning regression test: after a huge
// position table cycles through the pool, a small request must NOT receive
// it — classed pools keep paper-scale buffers away from kilobyte requests.
func TestPosPoolNoPinning(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses reuse under the race detector")
	}
	const big = 1 << 20
	p := getPosTable(big)
	if cap(*p) < big {
		t.Fatalf("getPosTable(%d) returned cap %d", big, cap(*p))
	}
	putPosTable(p)
	small := getPosTable(64)
	if cap(*small) >= big {
		t.Fatalf("small request received the %d-element buffer (cap %d) — pool pinning", big, cap(*small))
	}
	putPosTable(small)
	// The big buffer is still reusable by an equally big request.
	again := getPosTable(big)
	if cap(*again) < big {
		t.Fatalf("big request after small one got cap %d, want >= %d", cap(*again), big)
	}
	putPosTable(again)
}
