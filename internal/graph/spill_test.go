package graph

import (
	"testing"
)

func spillFixture(seed int32) *Graph {
	g := Grid(17, 13) // non-power-of-two sizes exercise alignment padding
	for i := range g.AdjWgt {
		g.AdjWgt[i] = 1 + (int32(i)+seed)%7
	}
	for i := range g.VWgt {
		g.VWgt[i] = 1 + (int32(i)*3+seed)%5
	}
	return g
}

// TestSpillRoundTrip pins the byte-exactness contract of the spill store:
// the reloaded graph must equal the original array for array — adjacency
// ORDER included, because FM refinement outcomes depend on it.
func TestSpillRoundTrip(t *testing.T) {
	s, err := NewSpillStore()
	if err != nil {
		t.Fatalf("NewSpillStore: %v", err)
	}
	defer s.Close()

	graphs := []*Graph{spillFixture(0), spillFixture(3), spillFixture(11)}
	refs := make([]SpillRef, len(graphs))
	for i, g := range graphs {
		r, err := s.Spill(g)
		if err != nil {
			t.Fatalf("Spill(%d): %v", i, err)
		}
		refs[i] = r
	}

	var buf []int32
	for i, g := range graphs {
		got, newBuf, err := s.Load(refs[i], buf)
		if err != nil {
			t.Fatalf("Load(%d): %v", i, err)
		}
		buf = newBuf
		if !graphsEqual(g, got) {
			t.Fatalf("level %d: reloaded graph differs from original", i)
		}
	}
}

// TestSpillLoadMapped checks the mmap path returns the same bytes as the heap
// path and that unmapping works. Skipped where the platform has no mmap.
func TestSpillLoadMapped(t *testing.T) {
	s, err := NewSpillStore()
	if err != nil {
		t.Fatalf("NewSpillStore: %v", err)
	}
	defer s.Close()

	g := spillFixture(5)
	ref, err := s.Spill(g)
	if err != nil {
		t.Fatalf("Spill: %v", err)
	}
	got, unmap, err := s.LoadMapped(ref)
	if err != nil {
		t.Skipf("LoadMapped unavailable: %v", err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("mapped graph differs from original")
	}
	if err := unmap(); err != nil {
		t.Fatalf("unmap: %v", err)
	}
}

// TestSpillOffsetsAligned: mmap requires page-aligned file offsets, so every
// ref must start on a spillAlign boundary regardless of the previous level's
// size.
func TestSpillOffsetsAligned(t *testing.T) {
	s, err := NewSpillStore()
	if err != nil {
		t.Fatalf("NewSpillStore: %v", err)
	}
	defer s.Close()
	for i := 0; i < 4; i++ {
		ref, err := s.Spill(spillFixture(int32(i)))
		if err != nil {
			t.Fatalf("Spill: %v", err)
		}
		if ref.off%spillAlign != 0 {
			t.Fatalf("spill %d at offset %d, want %d-aligned", i, ref.off, spillAlign)
		}
	}
}

func TestGraphBytes(t *testing.T) {
	g := Grid(4, 4)
	want := 4 * int64(len(g.Xadj)+len(g.Adjncy)+len(g.AdjWgt)+len(g.VWgt))
	if got := g.Bytes(); got != want {
		t.Fatalf("Bytes() = %d, want %d", got, want)
	}
}
