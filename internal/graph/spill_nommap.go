//go:build !unix

package graph

import (
	"errors"
	"os"
)

var errNoMmap = errors.New("mmap unsupported on this platform")

// mmapFile is unavailable here; SpillStore.LoadMapped returns an error and
// callers (the partition hierarchy) fall back to the heap read-back path,
// which is byte-identical.
func mmapFile(*os.File, int64, int) ([]byte, error) { return nil, errNoMmap }

func munmapBytes([]byte) error { return nil }
