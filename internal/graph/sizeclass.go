package graph

import "math/bits"

// Power-of-two size classing for sync.Pool'd buffers. A flat pool has a
// pinning failure mode: one paper-scale request grows a buffer to hundreds of
// megabytes, returns it, and every later kilobyte-scale request draws (and
// keeps alive) that giant buffer. Classed pools file each buffer by size and
// requests probe only their own class and the next classProbes-1 above it —
// so a request can receive a buffer at most ~2^classProbes× its size, and
// oversized buffers wait in their own class until a matching large request
// (or the GC) takes them.
//
// Both filing and probing use the CEIL class (smallest c with 2^c >= size).
// Buffers are allocated at exact sizes, not rounded up, so a buffer grown
// for an n-sized request refiles at reqClass(n) — precisely where the next
// n-sized request probes first, which is what keeps steady-state reuse at
// zero allocations. The price is that a class-c buffer may have capacity
// just under a class-c request's n; every get site grows defensively, so a
// rare undersized draw costs one reallocation, never correctness.

// sizeClasses covers capacities up to 2^30 elements — far beyond the 12.6M
// vertices of the largest paper mesh.
const sizeClasses = 31

// classProbes is how many classes (its own included) a request probes before
// allocating fresh; it bounds oversize handout at 4× while letting buffers
// that grew a little across reuses keep circulating.
const classProbes = 3

// reqClass returns the class a request of n elements starts probing at:
// the smallest c with 1<<c >= n.
func reqClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// capClass returns the class a buffer of capacity c is filed under when
// returned: reqClass(c), clamped to the table.
func capClass(c int) int {
	k := reqClass(c)
	if k >= sizeClasses {
		k = sizeClasses - 1
	}
	return k
}
