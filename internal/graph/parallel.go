package graph

import (
	goruntime "runtime"
	"sync"
)

// Parallelism resolves a requested worker count: values <= 0 mean "use every
// core" (GOMAXPROCS). It is the single interpretation point for the
// Parallelism knobs exposed by the partitioner and repartitioner.
func Parallelism(workers int) int {
	if workers <= 0 {
		return goruntime.GOMAXPROCS(0)
	}
	return workers
}

// Pool bounds the goroutines a graph or partitioning operation may spawn.
// A pool of width w holds w-1 tokens: the calling goroutine is always one of
// the workers, and helpers run only while a token is available. Acquisition
// never blocks — when the pool is saturated, work simply runs on the caller —
// so nested Fork/RunN calls cannot deadlock, and total concurrency stays
// bounded by the width no matter how deep the recursion fans out.
//
// A nil *Pool is valid and means strictly serial execution; every method
// degrades to calling the closures inline.
type Pool struct {
	sem chan struct{}
}

// NewPool builds a pool of the given width (see Parallelism for the meaning
// of non-positive values). Width 1 returns nil: the serial pool.
func NewPool(workers int) *Pool {
	workers = Parallelism(workers)
	if workers <= 1 {
		return nil
	}
	return &Pool{sem: make(chan struct{}, workers-1)}
}

// Width returns the pool's total worker bound (1 for the nil pool).
func (p *Pool) Width() int {
	if p == nil {
		return 1
	}
	return cap(p.sem) + 1
}

// Fork runs a and b, concurrently when a worker token is free, serially (a
// then b) otherwise. It returns when both have finished. Callers are
// responsible for a and b touching disjoint state.
func (p *Pool) Fork(a, b func()) {
	if p == nil {
		a()
		b()
		return
	}
	select {
	case p.sem <- struct{}{}:
		done := make(chan struct{})
		go func() {
			defer func() {
				<-p.sem
				close(done)
			}()
			a()
		}()
		b()
		<-done
	default:
		a()
		b()
	}
}

// RunN runs f(0) … f(n-1), each at most once, with concurrency bounded by
// the pool width. Tasks that cannot obtain a token run on the caller; the
// call returns when every task has finished. Results must not depend on
// which tasks ran concurrently.
func (p *Pool) RunN(n int, f func(i int)) {
	if p == nil {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	for i := n - 1; i >= 1; i-- {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer func() {
					<-p.sem
					wg.Done()
				}()
				f(i)
			}(i)
		default:
			f(i)
		}
	}
	if n > 0 {
		f(0)
	}
	wg.Wait()
}

// Bounds splits [0, n) into at most Width() contiguous chunks of at least
// minChunk items and returns the cut points (len = chunks+1, first 0, last
// n). The chunking is a pure function of (width, n, minChunk) — never of
// runtime load — so sharded computations stay reproducible.
func (p *Pool) Bounds(n, minChunk int) []int {
	if minChunk < 1 {
		minChunk = 1
	}
	chunks := p.Width()
	if max := n / minChunk; chunks > max {
		chunks = max
	}
	if chunks < 1 {
		chunks = 1
	}
	bounds := make([]int, chunks+1)
	for i := 1; i < chunks; i++ {
		bounds[i] = i * n / chunks
	}
	bounds[chunks] = n
	return bounds
}
