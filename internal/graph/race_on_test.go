//go:build race

package graph

// raceEnabled reports whether the race detector instruments this build.
// sync.Pool intentionally randomises reuse under the detector, so pool-reuse
// assertions are meaningless there.
const raceEnabled = true
