// Package graph provides compressed-sparse-row (CSR) graphs with
// multi-constraint vertex weights and weighted edges. It is the substrate on
// which the multilevel partitioner (internal/partition) operates: mesh cells
// become vertices, mesh faces become edges, and each vertex carries a vector
// of balance constraints (one component per temporal level in the MC_TL
// strategy, a single operating-cost component in SC_OC).
package graph

import (
	"errors"
	"fmt"
	"sync"
)

// Graph is an undirected graph in CSR form. Every undirected edge {u,v}
// is stored twice, once in each endpoint's adjacency list. Vertex weights
// are vectors of NCon components, flattened row-major into VWgt
// (vertex v, constraint c at VWgt[v*NCon+c]).
type Graph struct {
	// Xadj has length NumVertices()+1; the neighbours of vertex v are
	// Adjncy[Xadj[v]:Xadj[v+1]] and the corresponding edge weights are
	// AdjWgt[Xadj[v]:Xadj[v+1]].
	Xadj   []int32
	Adjncy []int32
	AdjWgt []int32

	// NCon is the number of balance constraints carried by each vertex.
	NCon int
	// VWgt holds NumVertices()*NCon weights, row-major.
	VWgt []int32
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.Xadj) - 1 }

// NumEdges returns the number of undirected edges (each stored twice
// internally).
func (g *Graph) NumEdges() int { return len(g.Adjncy) / 2 }

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int32) int { return int(g.Xadj[v+1] - g.Xadj[v]) }

// Neighbors returns the adjacency slice of v. The returned slice aliases the
// graph's storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 { return g.Adjncy[g.Xadj[v]:g.Xadj[v+1]] }

// EdgeWeights returns the edge-weight slice of v, parallel to Neighbors(v).
func (g *Graph) EdgeWeights(v int32) []int32 { return g.AdjWgt[g.Xadj[v]:g.Xadj[v+1]] }

// Weight returns constraint component c of vertex v.
func (g *Graph) Weight(v int32, c int) int32 { return g.VWgt[int(v)*g.NCon+c] }

// WeightVec returns the constraint vector of vertex v. The returned slice
// aliases the graph's storage.
func (g *Graph) WeightVec(v int32) []int32 {
	return g.VWgt[int(v)*g.NCon : int(v)*g.NCon+g.NCon]
}

// TotalWeights returns the per-constraint sums over all vertices.
func (g *Graph) TotalWeights() []int64 {
	tot := make([]int64, g.NCon)
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		row := g.VWgt[v*g.NCon : (v+1)*g.NCon]
		for c, w := range row {
			tot[c] += int64(w)
		}
	}
	return tot
}

// TotalEdgeWeight returns the sum of the weights of all undirected edges.
func (g *Graph) TotalEdgeWeight() int64 {
	var s int64
	for _, w := range g.AdjWgt {
		s += int64(w)
	}
	return s / 2
}

// Validate checks structural invariants: monotone Xadj, in-range adjacency,
// no self loops, symmetric adjacency with matching edge weights, and
// consistent weight-array lengths. It is intended for tests and for guarding
// external inputs; it is O(E log d).
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if n < 0 {
		return errors.New("graph: empty Xadj")
	}
	if g.NCon <= 0 {
		return fmt.Errorf("graph: NCon = %d, want >= 1", g.NCon)
	}
	if len(g.VWgt) != n*g.NCon {
		return fmt.Errorf("graph: len(VWgt) = %d, want %d", len(g.VWgt), n*g.NCon)
	}
	if len(g.AdjWgt) != len(g.Adjncy) {
		return fmt.Errorf("graph: len(AdjWgt) = %d, want %d", len(g.AdjWgt), len(g.Adjncy))
	}
	if g.Xadj[0] != 0 || int(g.Xadj[n]) != len(g.Adjncy) {
		return fmt.Errorf("graph: Xadj bounds [%d,%d], want [0,%d]", g.Xadj[0], g.Xadj[n], len(g.Adjncy))
	}
	for v := 0; v < n; v++ {
		if g.Xadj[v] > g.Xadj[v+1] {
			return fmt.Errorf("graph: Xadj not monotone at %d", v)
		}
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			u := g.Adjncy[i]
			if u < 0 || int(u) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbour %d", v, u)
			}
			if int32(v) == u {
				return fmt.Errorf("graph: self loop at %d", v)
			}
			if w := g.findEdgeWeight(u, int32(v)); w < 0 {
				return fmt.Errorf("graph: edge %d->%d not symmetric", v, u)
			} else if w != g.AdjWgt[i] {
				return fmt.Errorf("graph: edge {%d,%d} weight mismatch %d != %d", v, u, g.AdjWgt[i], w)
			}
		}
	}
	return nil
}

// findEdgeWeight returns the weight of edge u->v, or -1 if absent.
func (g *Graph) findEdgeWeight(u, v int32) int32 {
	for i := g.Xadj[u]; i < g.Xadj[u+1]; i++ {
		if g.Adjncy[i] == v {
			return g.AdjWgt[i]
		}
	}
	return -1
}

// HasEdge reports whether u and v are adjacent.
func (g *Graph) HasEdge(u, v int32) bool { return g.findEdgeWeight(u, v) >= 0 }

// Components labels each vertex with its connected-component index and
// returns (labels, count). Labels are dense in [0,count).
func (g *Graph) Components() ([]int32, int) {
	n := g.NumVertices()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var stack []int32
	count := 0
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := int32(count)
		count++
		comp[s] = id
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.Neighbors(v) {
				if comp[u] < 0 {
					comp[u] = id
					stack = append(stack, u)
				}
			}
		}
	}
	return comp, count
}

// Contract builds the coarse graph induced by a vertex mapping. cmap[v] gives
// the coarse vertex of fine vertex v and must be dense in [0, ncoarse).
// Coarse vertex weights are the per-constraint sums of their fine vertices;
// coarse edge weights are the sums of fine edge weights between the two
// coarse endpoints. Fine edges internal to a coarse vertex disappear.
func (g *Graph) Contract(cmap []int32, ncoarse int) *Graph {
	return g.ContractP(cmap, ncoarse, nil)
}

// posPools recycles the -1-filled position tables contractRange uses,
// bucketed by power-of-two size class so one paper-scale contraction cannot
// pin multi-megabyte tables into every later small request (see sizeclass.go
// for the class discipline). The algorithm restores every touched entry to -1
// before returning, so a pooled table is clean by construction and only first
// use (or growth) pays the fill.
var posPools [sizeClasses]sync.Pool

func getPosTable(n int) *[]int32 {
	var p *[]int32
	for c, hi := reqClass(n), 0; hi < classProbes && c < sizeClasses; c, hi = c+1, hi+1 {
		if v := posPools[c].Get(); v != nil {
			p = v.(*[]int32)
			break
		}
	}
	if p == nil {
		p = new([]int32)
	}
	if cap(*p) < n {
		*p = make([]int32, n)
		for i := range *p {
			(*p)[i] = -1
		}
	}
	*p = (*p)[:cap(*p)]
	return p
}

func putPosTable(p *[]int32) { posPools[capClass(cap(*p))].Put(p) }

// ContractP is Contract with the row assembly sharded over the pool's
// workers. Every coarse vertex's weight and adjacency row depend only on its
// own fine vertices, so shards write disjoint state and the merged result is
// bit-identical to the serial contraction for any pool width.
func (g *Graph) ContractP(cmap []int32, ncoarse int, pool *Pool) *Graph {
	cg := &Graph{
		NCon: g.NCon,
		VWgt: make([]int32, ncoarse*g.NCon),
		Xadj: make([]int32, ncoarse+1),
	}
	// Group fine vertices by coarse vertex for cache-friendly assembly.
	order, starts := groupByCoarse(cmap, ncoarse)

	bounds := pool.Bounds(ncoarse, 1024)
	nshards := len(bounds) - 1
	type rows struct{ adj, wgt []int32 }
	outs := make([]rows, nshards)
	pool.RunN(nshards, func(s int) {
		adj, wgt := g.contractRange(cg, cmap, order, starts, bounds[s], bounds[s+1])
		outs[s] = rows{adj, wgt}
	})

	// contractRange left per-row lengths in Xadj[cv+1]; prefix-sum them into
	// offsets, then splice the shard rows (contiguous per shard) into place.
	for cv := 0; cv < ncoarse; cv++ {
		cg.Xadj[cv+1] += cg.Xadj[cv]
	}
	if nshards == 1 {
		cg.Adjncy, cg.AdjWgt = outs[0].adj, outs[0].wgt
		return cg
	}
	total := int(cg.Xadj[ncoarse])
	cg.Adjncy = make([]int32, total)
	cg.AdjWgt = make([]int32, total)
	pool.RunN(nshards, func(s int) {
		off := cg.Xadj[bounds[s]]
		copy(cg.Adjncy[off:], outs[s].adj)
		copy(cg.AdjWgt[off:], outs[s].wgt)
	})
	return cg
}

// contractRange assembles coarse vertices [lo, hi): it accumulates their
// weights into cg.VWgt, records each row's length in cg.Xadj[cv+1], and
// returns the concatenated adjacency/weight rows for the range.
func (g *Graph) contractRange(cg *Graph, cmap, order, starts []int32, lo, hi int) (adj, wgt []int32) {
	posBuf := getPosTable(len(cg.Xadj) - 1)
	defer putPosTable(posBuf)
	pos := *posBuf

	// Pass 1: count each row's distinct coarse neighbours. Sizing the shard
	// rows by the fine edge count instead would over-allocate by the dedup
	// factor — and at one shard the returned slices BECOME the coarse graph,
	// so the slack would ride along for the level's whole lifetime, right
	// through the triple-resident contraction window that is the
	// partitioner's peak-memory moment.
	touched := make([]int32, 0, 64)
	total := 0
	for cv := lo; cv < hi; cv++ {
		rowLen := 0
		for _, v := range order[starts[cv]:starts[cv+1]] {
			for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
				cu := cmap[g.Adjncy[i]]
				if int(cu) == cv {
					continue
				}
				if pos[cu] < 0 {
					pos[cu] = 0
					rowLen++
					touched = append(touched, cu)
				}
			}
		}
		for _, cu := range touched {
			pos[cu] = -1
		}
		touched = touched[:0]
		cg.Xadj[cv+1] = int32(rowLen)
		total += rowLen
	}

	// Pass 2: fill, scanning in exactly the same order, so rows keep the
	// first-seen adjacency order and the bytes match a single-pass assembly.
	adj = make([]int32, 0, total)
	wgt = make([]int32, 0, total)
	for cv := lo; cv < hi; cv++ {
		for _, v := range order[starts[cv]:starts[cv+1]] {
			for c := 0; c < g.NCon; c++ {
				cg.VWgt[cv*g.NCon+c] += g.VWgt[int(v)*g.NCon+c]
			}
			for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
				cu := cmap[g.Adjncy[i]]
				if int(cu) == cv {
					continue
				}
				if p := pos[cu]; p < 0 {
					pos[cu] = int32(len(adj))
					adj = append(adj, cu)
					wgt = append(wgt, g.AdjWgt[i])
					touched = append(touched, cu)
				} else {
					wgt[p] += g.AdjWgt[i]
				}
			}
		}
		for _, cu := range touched {
			pos[cu] = -1
		}
		touched = touched[:0]
	}
	return adj, wgt
}

// groupByCoarse returns fine vertices ordered by their coarse vertex, plus
// the CSR-style starts array (len ncoarse+1).
func groupByCoarse(cmap []int32, ncoarse int) (order []int32, starts []int32) {
	counts := make([]int32, ncoarse+1)
	for _, cv := range cmap {
		counts[cv+1]++
	}
	for i := 1; i <= ncoarse; i++ {
		counts[i] += counts[i-1]
	}
	starts = counts
	order = make([]int32, len(cmap))
	fill := make([]int32, ncoarse)
	copy(fill, starts[:ncoarse])
	for v, cv := range cmap {
		order[fill[cv]] = int32(v)
		fill[cv]++
	}
	return order, starts
}

// Subgraph extracts the induced subgraph over the given vertices (which must
// be distinct). It returns the subgraph and the mapping from subgraph vertex
// index to original vertex id.
func (g *Graph) Subgraph(vertices []int32) (*Graph, []int32) {
	sg, _ := g.SubgraphWith(vertices, nil)
	orig := make([]int32, len(vertices))
	copy(orig, vertices)
	return sg, orig
}

// Scratch holds reusable buffers for repeated graph extractions. A zero
// Scratch is ready to use; buffers grow on demand and are restored to their
// clean state before each call returns, so one Scratch can serve any number
// of sequential SubgraphWith calls on graphs up to its high-water size. A
// Scratch must not be shared between concurrent callers.
type Scratch struct {
	local []int32 // global vertex id -> local index, -1 when unset
}

// Cap returns the number of global vertex ids the scratch currently covers.
// Pooled callers use it to file the scratch under its size class.
func (s *Scratch) Cap() int { return len(s.local) }

// SubgraphWith is Subgraph backed by caller-provided scratch (nil allocates
// fresh buffers). Unlike Subgraph it returns the input slice itself as the
// index→id mapping instead of a copy; the caller owns both and may reuse the
// slice once the mapping is no longer needed.
func (g *Graph) SubgraphWith(vertices []int32, sc *Scratch) (*Graph, []int32) {
	n := len(vertices)
	if sc == nil {
		sc = &Scratch{}
	}
	if len(sc.local) < g.NumVertices() {
		sc.local = make([]int32, g.NumVertices())
		for i := range sc.local {
			sc.local[i] = -1
		}
	}
	local := sc.local
	for i, v := range vertices {
		local[v] = int32(i)
	}
	sg := &Graph{
		NCon: g.NCon,
		Xadj: make([]int32, n+1),
		VWgt: make([]int32, n*g.NCon),
	}
	edgeCap := 0
	for _, v := range vertices {
		edgeCap += int(g.Xadj[v+1] - g.Xadj[v])
	}
	adj := make([]int32, 0, edgeCap)
	wgt := make([]int32, 0, edgeCap)
	for i, v := range vertices {
		copy(sg.VWgt[i*g.NCon:(i+1)*g.NCon], g.WeightVec(v))
		for j := g.Xadj[v]; j < g.Xadj[v+1]; j++ {
			if lu := local[g.Adjncy[j]]; lu >= 0 {
				adj = append(adj, lu)
				wgt = append(wgt, g.AdjWgt[j])
			}
		}
		sg.Xadj[i+1] = int32(len(adj))
	}
	sg.Adjncy = adj
	sg.AdjWgt = wgt
	for _, v := range vertices {
		local[v] = -1
	}
	return sg, vertices
}
