package graph

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestParallelismResolution(t *testing.T) {
	if got := Parallelism(4); got != 4 {
		t.Errorf("Parallelism(4) = %d", got)
	}
	if got := Parallelism(0); got < 1 {
		t.Errorf("Parallelism(0) = %d, want >= 1", got)
	}
	if got := Parallelism(-3); got != Parallelism(0) {
		t.Errorf("Parallelism(-3) = %d, want the GOMAXPROCS default", got)
	}
}

func TestPoolWidthAndNil(t *testing.T) {
	if p := NewPool(1); p != nil {
		t.Error("NewPool(1) should be the nil (serial) pool")
	}
	var p *Pool
	if p.Width() != 1 {
		t.Errorf("nil pool width = %d, want 1", p.Width())
	}
	ran := 0
	p.Fork(func() { ran++ }, func() { ran++ })
	p.RunN(3, func(int) { ran++ })
	if ran != 5 {
		t.Errorf("nil pool ran %d closures, want 5", ran)
	}
	if w := NewPool(4).Width(); w != 4 {
		t.Errorf("NewPool(4).Width() = %d", w)
	}
}

func TestPoolRunNRunsEachTaskOnce(t *testing.T) {
	p := NewPool(4)
	const n = 200
	var hits [n]atomic.Int32
	p.RunN(n, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times", i, got)
		}
	}
}

func TestPoolForkNested(t *testing.T) {
	// Deep nested forks must neither deadlock nor exceed the bound; the count
	// of leaves is the correctness check.
	p := NewPool(3)
	var leaves atomic.Int32
	var rec func(depth int)
	rec = func(depth int) {
		if depth == 0 {
			leaves.Add(1)
			return
		}
		p.Fork(func() { rec(depth - 1) }, func() { rec(depth - 1) })
	}
	rec(10)
	if got := leaves.Load(); got != 1024 {
		t.Fatalf("leaves = %d, want 1024", got)
	}
}

func TestPoolBoundsCoverAndChunk(t *testing.T) {
	f := func(width uint8, nRaw uint16, minRaw uint8) bool {
		p := NewPool(1 + int(width%8))
		n := int(nRaw % 5000)
		minChunk := int(minRaw)
		bounds := p.Bounds(n, minChunk)
		if minChunk < 1 {
			minChunk = 1
		}
		if bounds[0] != 0 || bounds[len(bounds)-1] != n {
			return false
		}
		chunks := len(bounds) - 1
		if chunks > p.Width() {
			return false
		}
		for i := 0; i < chunks; i++ {
			if bounds[i+1] < bounds[i] {
				return false
			}
			if n >= minChunk && bounds[i+1]-bounds[i] < minChunk {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// And the chunking is a pure function of its inputs, never of load.
	a := NewPool(4).Bounds(1000, 64)
	b := NewPool(4).Bounds(1000, 64)
	if len(a) != len(b) {
		t.Fatal("Bounds not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Bounds not deterministic")
		}
	}
}

func graphsEqual(a, b *Graph) bool {
	if a.NCon != b.NCon || len(a.Xadj) != len(b.Xadj) ||
		len(a.Adjncy) != len(b.Adjncy) || len(a.VWgt) != len(b.VWgt) {
		return false
	}
	for i := range a.Xadj {
		if a.Xadj[i] != b.Xadj[i] {
			return false
		}
	}
	for i := range a.Adjncy {
		if a.Adjncy[i] != b.Adjncy[i] || a.AdjWgt[i] != b.AdjWgt[i] {
			return false
		}
	}
	for i := range a.VWgt {
		if a.VWgt[i] != b.VWgt[i] {
			return false
		}
	}
	return true
}

// TestContractPMatchesSerial: the sharded contraction must produce the exact
// serial graph — same vertex order, same adjacency order, same weights — at
// any pool width.
func TestContractPMatchesSerial(t *testing.T) {
	f := func(seed int64, nSmall uint8, parts uint8, width uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nSmall%60)
		g := randomGraph(rng, n, 1+int(nSmall%3))
		ncoarse := 1 + int(parts)%n
		cmap := make([]int32, n)
		for i := range cmap {
			cmap[i] = int32(i % ncoarse)
		}
		serial := g.ContractP(cmap, ncoarse, nil)
		parallel := g.ContractP(cmap, ncoarse, NewPool(2+int(width%7)))
		return graphsEqual(serial, parallel)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestContractPLargeSharded exercises the multi-shard merge path (the quick
// graphs above are smaller than one shard's minimum chunk).
func TestContractPLargeSharded(t *testing.T) {
	g := Grid(128, 128)
	n := g.NumVertices()
	cmap := make([]int32, n)
	ncoarse := n / 2
	for i := range cmap {
		cmap[i] = int32(i % ncoarse)
	}
	serial := g.ContractP(cmap, ncoarse, nil)
	parallel := g.ContractP(cmap, ncoarse, NewPool(8))
	if !graphsEqual(serial, parallel) {
		t.Fatal("sharded contraction differs from serial")
	}
	if err := parallel.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSubgraphWithReusesScratch: repeated extractions through one Scratch
// must agree with the allocating path, and orig must alias the input slice
// (that aliasing is what recursive bisection's in-place split relies on).
func TestSubgraphWithReusesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 50, 2)
	var sc Scratch
	for trial := 0; trial < 20; trial++ {
		var vs []int32
		for i := 0; i < 50; i++ {
			if rng.Intn(2) == 0 {
				vs = append(vs, int32(i))
			}
		}
		if len(vs) == 0 {
			vs = []int32{int32(rng.Intn(50))}
		}
		want, _ := g.Subgraph(vs)
		got, orig := g.SubgraphWith(vs, &sc)
		if !graphsEqual(want, got) {
			t.Fatalf("trial %d: SubgraphWith differs from Subgraph", trial)
		}
		if &orig[0] != &vs[0] {
			t.Fatalf("trial %d: orig does not alias the input slice", trial)
		}
	}
}
