package metrics

import "testing"

func TestComputeMigrationStats(t *testing.T) {
	oldPart := []int32{0, 0, 1, 1}
	newPart := []int32{0, 1, 1, 0}
	bytes := []int64{10, 20, 30, 40}
	s := ComputeMigrationStats(oldPart, newPart, 2, bytes)
	if s.TotalCells != 4 || s.MovedCells != 2 {
		t.Errorf("cells %d/%d, want 4/2", s.TotalCells, s.MovedCells)
	}
	if s.TotalBytes != 100 || s.MovedBytes != 60 {
		t.Errorf("bytes %d/%d, want 100/60", s.TotalBytes, s.MovedBytes)
	}
	var send, recv int64
	for p := 0; p < 2; p++ {
		send += s.SendBytes[p]
		recv += s.RecvBytes[p]
	}
	if send != s.MovedBytes || recv != s.MovedBytes {
		t.Errorf("send/recv totals %d/%d != moved %d", send, recv, s.MovedBytes)
	}
	if s.MaxFlowBytes != 60 {
		t.Errorf("max flow %d, want 60 (part 0 sends 20 and receives 40)", s.MaxFlowBytes)
	}
}

// TestComputeMigrationStatsOutOfRangeLabels: labels outside [0, k) — negative
// included — must not panic; the cells count toward MovedCells/MovedBytes but
// are excluded from the per-domain volumes, as documented.
func TestComputeMigrationStatsOutOfRangeLabels(t *testing.T) {
	oldPart := []int32{-1, 0, 5}
	newPart := []int32{0, -2, 9}
	s := ComputeMigrationStats(oldPart, newPart, 2, nil)
	if s.MovedCells != 3 || s.MovedBytes != 3 {
		t.Errorf("moved %d cells / %d bytes, want 3/3", s.MovedCells, s.MovedBytes)
	}
	if s.SendBytes[0] != 1 || s.SendBytes[1] != 0 {
		t.Errorf("send = %v, want [1 0]", s.SendBytes)
	}
	if s.RecvBytes[0] != 1 || s.RecvBytes[1] != 0 {
		t.Errorf("recv = %v, want [1 0]", s.RecvBytes)
	}
}
