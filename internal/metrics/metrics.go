// Package metrics computes the evaluation quantities reported in the paper:
// per-process operating-cost distributions by temporal level (Figures 7a,
// 10a), estimated inter-process communication volume (Figure 11b), partition
// quality summaries, and task-granularity statistics.
package metrics

import (
	"fmt"

	"tempart/internal/graph"
	"tempart/internal/mesh"
	"tempart/internal/partition"
	"tempart/internal/taskgraph"
)

// CostByLevelPerProc returns cost[proc][level]: the total operating cost
// (2^(τmax−τ) per cell) that each process holds at each temporal level —
// the data behind the paper's Figures 7a and 10a. procOfDomain maps domains
// to processes; part maps cells to domains.
func CostByLevelPerProc(m *mesh.Mesh, part, procOfDomain []int32, numProcs int) [][]int64 {
	scheme := m.Scheme()
	out := make([][]int64, numProcs)
	for p := range out {
		out[p] = make([]int64, scheme.NumLevels())
	}
	for c := 0; c < m.NumCells(); c++ {
		p := procOfDomain[part[c]]
		out[p][m.Level[c]] += int64(scheme.Cost(m.Level[c]))
	}
	return out
}

// CellsByLevelPerProc returns counts[proc][level]: the per-level cell census
// each process holds.
func CellsByLevelPerProc(m *mesh.Mesh, part, procOfDomain []int32, numProcs int) [][]int64 {
	out := make([][]int64, numProcs)
	for p := range out {
		out[p] = make([]int64, m.Scheme().NumLevels())
	}
	for c := 0; c < m.NumCells(); c++ {
		out[procOfDomain[part[c]]][m.Level[c]]++
	}
	return out
}

// CommVolume counts the task-graph dependency edges that connect tasks whose
// domains live on different processes — the paper's estimate of inter-process
// communication (§VI, Figure 11b): "a communication is considered to be an
// edge of the task graph connecting two nodes whose domains are distributed
// across two different processes."
func CommVolume(tg *taskgraph.TaskGraph, procOfDomain []int32) int64 {
	var vol int64
	for t := 0; t < tg.NumTasks(); t++ {
		pt := procOfDomain[tg.Tasks[t].Domain]
		for _, pr := range tg.PredsOf(int32(t)) {
			if procOfDomain[tg.Tasks[pr].Domain] != pt {
				vol++
			}
		}
	}
	return vol
}

// MeshCutVolume counts mesh faces whose two cells live on different
// processes — the mesh-level halo size, a partition-only communication proxy
// that needs no task graph.
func MeshCutVolume(m *mesh.Mesh, part, procOfDomain []int32) int64 {
	var cut int64
	for _, f := range m.Faces[:m.NumInteriorFaces] {
		if procOfDomain[part[f.C0]] != procOfDomain[part[f.C1]] {
			cut++
		}
	}
	return cut
}

// TaskStats summarises a task graph's granularity.
type TaskStats struct {
	NumTasks     int
	NumDeps      int
	TotalWork    int64
	CriticalPath int64
	// MeanCost and MaxCost describe task granularity.
	MeanCost float64
	MaxCost  int64
	// ExternalShare is the fraction of tasks marked external.
	ExternalShare float64
	// FirstPhaseDomains counts distinct domains contributing tasks to the
	// first (coarsest) phase of subiteration 0 — the paper's Figure 8
	// phenomenon in one number.
	FirstPhaseDomains int
}

// ComputeTaskStats builds a TaskStats for the graph.
func ComputeTaskStats(tg *taskgraph.TaskGraph) TaskStats {
	st := TaskStats{
		NumTasks:     tg.NumTasks(),
		NumDeps:      tg.NumDeps(),
		TotalWork:    tg.TotalWork(),
		CriticalPath: tg.CriticalPath(),
	}
	if st.NumTasks == 0 {
		return st
	}
	ext := 0
	first := map[int32]bool{}
	maxLvl := tg.Scheme.MaxLevel
	for i := range tg.Tasks {
		t := &tg.Tasks[i]
		if t.Cost > st.MaxCost {
			st.MaxCost = t.Cost
		}
		if t.External {
			ext++
		}
		if t.Sub == 0 && t.Tau == maxLvl {
			first[t.Domain] = true
		}
	}
	st.MeanCost = float64(st.TotalWork) / float64(st.NumTasks)
	st.ExternalShare = float64(ext) / float64(st.NumTasks)
	st.FirstPhaseDomains = len(first)
	return st
}

// PartitionQuality aggregates the quality axes the paper discusses for one
// decomposition.
type PartitionQuality struct {
	Strategy     string  `json:"strategy"`
	NumDomains   int     `json:"num_domains"`
	EdgeCut      int64   `json:"edge_cut"`
	MaxImbalance float64 `json:"max_imbalance"`
	// LevelImbalance is the per-temporal-level census imbalance — the
	// quantity SC_OC leaves unbounded and MC_TL pins near 1.
	LevelImbalance []float64 `json:"level_imbalance"`
	// Fragments[d] is the number of connected components of domain d; the
	// disconnection artifact discussed in the paper's conclusion.
	Fragments []int `json:"fragments"`
}

// EvaluatePartition computes a PartitionQuality for a mesh decomposition.
func EvaluatePartition(m *mesh.Mesh, res *partition.Result, strategyLabel string) PartitionQuality {
	gl := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	levelRes := partition.NewResult(gl, res.Part, res.NumParts)
	return PartitionQuality{
		Strategy:       strategyLabel,
		NumDomains:     res.NumParts,
		EdgeCut:        res.EdgeCut,
		MaxImbalance:   res.MaxImbalance(),
		LevelImbalance: levelRes.Imbalance(),
		Fragments:      partition.CountFragments(gl, res.Part, res.NumParts),
	}
}

// MaxFragments returns the largest per-domain fragment count.
func (q PartitionQuality) MaxFragments() int {
	max := 0
	for _, f := range q.Fragments {
		if f > max {
			max = f
		}
	}
	return max
}

// FormatCostTable renders cost[proc][level] as an aligned text table, one
// row per process — the textual form of Figures 7a/10a.
func FormatCostTable(cost [][]int64) string {
	out := "proc"
	if len(cost) == 0 {
		return out + "\n"
	}
	for l := range cost[0] {
		out += fmt.Sprintf("\tτ=%d", l)
	}
	out += "\ttotal\n"
	for p, row := range cost {
		var tot int64
		out += fmt.Sprintf("%4d", p)
		for _, v := range row {
			out += fmt.Sprintf("\t%d", v)
			tot += v
		}
		out += fmt.Sprintf("\t%d\n", tot)
	}
	return out
}

// LevelSpread returns, for a per-proc-per-level matrix, the ratio
// max/mean per level — 1.0 everywhere means perfectly even distribution.
func LevelSpread(costs [][]int64) []float64 {
	if len(costs) == 0 {
		return nil
	}
	nl := len(costs[0])
	out := make([]float64, nl)
	for l := 0; l < nl; l++ {
		var tot, max int64
		for p := range costs {
			v := costs[p][l]
			tot += v
			if v > max {
				max = v
			}
		}
		if tot == 0 {
			out[l] = 1
			continue
		}
		mean := float64(tot) / float64(len(costs))
		out[l] = float64(max) / mean
	}
	return out
}

// CutEdgesBetweenProcs returns the graph edge cut measured at process
// granularity rather than domain granularity.
func CutEdgesBetweenProcs(g *graph.Graph, part, procOfDomain []int32) int64 {
	n := g.NumVertices()
	var cut int64
	for v := 0; v < n; v++ {
		pv := procOfDomain[part[v]]
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			if procOfDomain[part[g.Adjncy[i]]] != pv {
				cut += int64(g.AdjWgt[i])
			}
		}
	}
	return cut / 2
}
