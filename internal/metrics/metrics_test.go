package metrics

import (
	"context"
	"strings"
	"testing"

	"tempart/internal/flusim"
	"tempart/internal/mesh"
	"tempart/internal/partition"
	"tempart/internal/taskgraph"
	"tempart/internal/temporal"
)

func TestCostByLevelPerProc(t *testing.T) {
	m := mesh.Strip([]temporal.Level{0, 1, 2, 2})
	part := []int32{0, 0, 1, 1}
	proc := []int32{0, 1}
	cost := CostByLevelPerProc(m, part, proc, 2)
	// MaxLevel 2: costs 4,2,1. Proc 0: cell τ0 (4) + τ1 (2); proc 1: 2×τ2.
	if cost[0][0] != 4 || cost[0][1] != 2 || cost[0][2] != 0 {
		t.Errorf("proc 0 = %v, want [4 2 0]", cost[0])
	}
	if cost[1][0] != 0 || cost[1][1] != 0 || cost[1][2] != 2 {
		t.Errorf("proc 1 = %v, want [0 0 2]", cost[1])
	}
}

func TestCellsByLevelPerProc(t *testing.T) {
	m := mesh.Strip([]temporal.Level{0, 1, 2, 2})
	cells := CellsByLevelPerProc(m, []int32{0, 0, 1, 1}, []int32{0, 1}, 2)
	if cells[0][0] != 1 || cells[0][1] != 1 || cells[1][2] != 2 {
		t.Errorf("cells = %v", cells)
	}
}

func TestCommVolumeZeroWithinOneProc(t *testing.T) {
	m := mesh.Strip([]temporal.Level{0, 0, 0, 0})
	part := []int32{0, 0, 1, 1}
	tg, err := taskgraph.Build(m, part, 2, taskgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Both domains on one process: no communication.
	if v := CommVolume(tg, []int32{0, 0}); v != 0 {
		t.Errorf("CommVolume same-proc = %d, want 0", v)
	}
	// Separate processes: cross edges appear.
	if v := CommVolume(tg, []int32{0, 1}); v <= 0 {
		t.Errorf("CommVolume cross-proc = %d, want > 0", v)
	}
}

func TestMeshCutVolume(t *testing.T) {
	m := mesh.Strip([]temporal.Level{0, 0, 0, 0})
	part := []int32{0, 0, 1, 1}
	if v := MeshCutVolume(m, part, []int32{0, 1}); v != 1 {
		t.Errorf("MeshCutVolume = %d, want 1 (single cut face)", v)
	}
	if v := MeshCutVolume(m, part, []int32{0, 0}); v != 0 {
		t.Errorf("MeshCutVolume same proc = %d, want 0", v)
	}
}

func TestComputeTaskStats(t *testing.T) {
	m := mesh.Strip([]temporal.Level{0, 0, 1, 1})
	part := []int32{0, 0, 1, 1}
	tg, err := taskgraph.Build(m, part, 2, taskgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeTaskStats(tg)
	if st.NumTasks != tg.NumTasks() || st.TotalWork != tg.TotalWork() {
		t.Error("stats disagree with graph")
	}
	if st.MeanCost <= 0 || st.MaxCost <= 0 {
		t.Error("degenerate cost stats")
	}
	// τ=1 cells all in domain 1 → first phase touches 1 domain.
	if st.FirstPhaseDomains != 1 {
		t.Errorf("FirstPhaseDomains = %d, want 1", st.FirstPhaseDomains)
	}
}

func TestEvaluatePartitionShape(t *testing.T) {
	m := mesh.Cube(0.05)
	r, err := partition.PartitionMesh(context.Background(), m, 4, partition.MCTL, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := EvaluatePartition(m, r, "MC_TL")
	if q.NumDomains != 4 || q.Strategy != "MC_TL" {
		t.Error("metadata wrong")
	}
	if len(q.LevelImbalance) != m.Scheme().NumLevels() {
		t.Errorf("LevelImbalance has %d entries", len(q.LevelImbalance))
	}
	if len(q.Fragments) != 4 || q.MaxFragments() < 1 {
		t.Errorf("Fragments = %v", q.Fragments)
	}
}

func TestLevelSpread(t *testing.T) {
	costs := [][]int64{{4, 0}, {0, 4}}
	s := LevelSpread(costs)
	// Each level fully concentrated on one of two procs → spread 2.
	if s[0] != 2 || s[1] != 2 {
		t.Errorf("LevelSpread = %v, want [2 2]", s)
	}
	even := [][]int64{{2, 2}, {2, 2}}
	s = LevelSpread(even)
	if s[0] != 1 || s[1] != 1 {
		t.Errorf("LevelSpread even = %v, want [1 1]", s)
	}
}

func TestFormatCostTable(t *testing.T) {
	out := FormatCostTable([][]int64{{1, 2}, {3, 4}})
	if !strings.Contains(out, "τ=0") || !strings.Contains(out, "τ=1") {
		t.Errorf("missing headers: %q", out)
	}
	if !strings.Contains(out, "3") || !strings.Contains(out, "7") {
		t.Errorf("missing row data/totals: %q", out)
	}
}

// TestFig11bShape: MC_TL's communication volume exceeds SC_OC's and grows
// with domain count.
func TestFig11bShape(t *testing.T) {
	m := mesh.Cylinder(0.001)
	numProcs := 4
	vol := func(strat partition.Strategy, k int) int64 {
		r, err := partition.PartitionMesh(context.Background(), m, k, strat, partition.Options{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		tg, err := taskgraph.Build(m, r.Part, k, taskgraph.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return CommVolume(tg, flusim.BlockMap(k, numProcs))
	}
	scoc8, mctl8 := vol(partition.SCOC, 8), vol(partition.MCTL, 8)
	if mctl8 <= scoc8 {
		t.Errorf("MC_TL comm volume %d not above SC_OC %d at k=8", mctl8, scoc8)
	}
	mctl16 := vol(partition.MCTL, 16)
	if mctl16 <= mctl8 {
		t.Errorf("MC_TL comm volume did not grow with domains: %d (k=16) vs %d (k=8)", mctl16, mctl8)
	}
}

func TestCutEdgesBetweenProcs(t *testing.T) {
	m := mesh.Strip([]temporal.Level{0, 0, 0, 0})
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.Unit})
	part := []int32{0, 1, 2, 3}
	// 4 domains on 2 procs: cut between procs is only the middle edge.
	if v := CutEdgesBetweenProcs(g, part, []int32{0, 0, 1, 1}); v != 1 {
		t.Errorf("CutEdgesBetweenProcs = %d, want 1", v)
	}
}

func TestHaloStatsStrip(t *testing.T) {
	// 4-cell strip, 2 procs split in the middle: each proc needs exactly one
	// ghost (the neighbour across the cut) and exposes one border cell.
	m := mesh.Strip([]temporal.Level{0, 0, 0, 0})
	part := []int32{0, 0, 1, 1}
	h := ComputeHaloStats(m, part, []int32{0, 1}, 2)
	if h.Ghosts[0] != 1 || h.Ghosts[1] != 1 {
		t.Errorf("Ghosts = %v, want [1 1]", h.Ghosts)
	}
	if h.Border[0] != 1 || h.Border[1] != 1 {
		t.Errorf("Border = %v, want [1 1]", h.Border)
	}
	if h.Neighbors[0] != 1 || h.Neighbors[1] != 1 {
		t.Errorf("Neighbors = %v, want [1 1]", h.Neighbors)
	}
	if h.TotalGhosts() != 2 || h.MaxNeighbors() != 1 {
		t.Errorf("aggregates wrong: %v", h)
	}
}

func TestHaloStatsSameProcNoGhosts(t *testing.T) {
	m := mesh.Strip([]temporal.Level{0, 0, 0, 0})
	part := []int32{0, 1, 2, 3}
	h := ComputeHaloStats(m, part, []int32{0, 0, 0, 0}, 1)
	if h.TotalGhosts() != 0 {
		t.Errorf("same-proc decomposition has ghosts: %v", h.Ghosts)
	}
}

// TestHaloMCTLCostsMore: the memory-side counterpart of Fig 11b — MC_TL's
// fragmented domains need larger halos than SC_OC's compact ones. The gap
// widens with k (more parts, more fragmentation pressure from the per-level
// constraints); at small k improved refinement can close it to noise, so the
// test pins the regime where the effect is robust across seeds.
func TestHaloMCTLCostsMore(t *testing.T) {
	m := mesh.Cylinder(0.001)
	const k, procs = 64, 8
	pm := flusim.BlockMap(k, procs)
	halo := func(strat partition.Strategy) int64 {
		r, err := partition.PartitionMesh(context.Background(), m, k, strat, partition.Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return ComputeHaloStats(m, r.Part, pm, procs).TotalGhosts()
	}
	sc, mc := halo(partition.SCOC), halo(partition.MCTL)
	if mc <= sc {
		t.Errorf("MC_TL halo %d not above SC_OC %d", mc, sc)
	}
	t.Logf("total ghosts: SC_OC=%d MC_TL=%d (%.1fx)", sc, mc, float64(mc)/float64(sc))
}
