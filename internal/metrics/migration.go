package metrics

// MigrationStats quantifies the data movement a repartition implies: every
// cell whose domain changes must ship its serialized state (cell payload plus
// incident face data) from the old owner to the new one. Minimising this
// volume — not just the edge cut of the new partition — is the objective of
// incremental repartitioning (internal/repart).
type MigrationStats struct {
	// TotalCells is the number of cells in the mesh.
	TotalCells int `json:"total_cells"`
	// MovedCells is the number of cells whose domain changed.
	MovedCells int `json:"moved_cells"`
	// TotalBytes is the serialized size of all cells.
	TotalBytes int64 `json:"total_bytes"`
	// MovedBytes is the serialized size of the cells that move.
	MovedBytes int64 `json:"moved_bytes"`
	// SendBytes[p] is the volume domain p ships out; RecvBytes[p] the volume
	// it takes in. Their totals both equal MovedBytes when every part label
	// lies in [0, k); cells with out-of-range labels still count toward
	// MovedCells/MovedBytes but are excluded from the per-domain volumes.
	SendBytes []int64 `json:"send_bytes,omitempty"`
	RecvBytes []int64 `json:"recv_bytes,omitempty"`
	// MaxFlowBytes is max_p(SendBytes[p] + RecvBytes[p]) — the migration
	// bottleneck, since domains exchange state concurrently.
	MaxFlowBytes int64 `json:"max_flow_bytes"`
}

// MovedFraction is MovedCells / TotalCells.
func (s *MigrationStats) MovedFraction() float64 {
	if s.TotalCells == 0 {
		return 0
	}
	return float64(s.MovedCells) / float64(s.TotalCells)
}

// ComputeMigrationStats compares two assignments over the same cells.
// bytes[v] is the serialized size of cell v; a nil bytes counts every cell as
// one byte, making the byte totals equal the cell counts.
func ComputeMigrationStats(oldPart, newPart []int32, k int, bytes []int64) MigrationStats {
	s := MigrationStats{
		TotalCells: len(oldPart),
		SendBytes:  make([]int64, k),
		RecvBytes:  make([]int64, k),
	}
	for v := range oldPart {
		var b int64 = 1
		if bytes != nil {
			b = bytes[v]
		}
		s.TotalBytes += b
		if oldPart[v] == newPart[v] {
			continue
		}
		s.MovedCells++
		s.MovedBytes += b
		if from := oldPart[v]; from >= 0 && int(from) < k {
			s.SendBytes[from] += b
		}
		if to := newPart[v]; to >= 0 && int(to) < k {
			s.RecvBytes[to] += b
		}
	}
	for p := 0; p < k; p++ {
		if flow := s.SendBytes[p] + s.RecvBytes[p]; flow > s.MaxFlowBytes {
			s.MaxFlowBytes = flow
		}
	}
	return s
}
