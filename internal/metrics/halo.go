package metrics

import (
	"fmt"

	"tempart/internal/mesh"
)

// HaloStats describes the ghost-cell layers a distributed execution needs:
// for every process, the cells it must receive copies of (cells owned by
// other processes but adjacent to its own). The paper's Figure 11b counts
// cut task-graph edges; halo size is the complementary *memory and message
// size* view of the same communication, and the axis along which MC_TL's
// fragmented domains cost the most.
type HaloStats struct {
	// Ghosts[p] is the number of remote cells process p needs copies of.
	Ghosts []int64
	// Border[p] is the number of p's own cells that other processes need.
	Border []int64
	// Neighbors[p] is how many distinct processes p exchanges halos with.
	Neighbors []int
}

// TotalGhosts returns the fleet-wide ghost-cell count (Σ Ghosts).
func (h HaloStats) TotalGhosts() int64 {
	var t int64
	for _, g := range h.Ghosts {
		t += g
	}
	return t
}

// MaxNeighbors returns the largest per-process neighbour count.
func (h HaloStats) MaxNeighbors() int {
	m := 0
	for _, n := range h.Neighbors {
		if n > m {
			m = n
		}
	}
	return m
}

// String renders a short summary.
func (h HaloStats) String() string {
	return fmt.Sprintf("halo: %d total ghosts, max %d neighbours/process",
		h.TotalGhosts(), h.MaxNeighbors())
}

// ComputeHaloStats derives the halo layers of a decomposition: a cell is a
// ghost of process p if it is owned by q≠p and shares a face with a cell of
// p. Each (cell, receiving process) pair counts once even when several faces
// connect them.
func ComputeHaloStats(m *mesh.Mesh, part, procOfDomain []int32, numProcs int) HaloStats {
	h := HaloStats{
		Ghosts:    make([]int64, numProcs),
		Border:    make([]int64, numProcs),
		Neighbors: make([]int, numProcs),
	}
	// ghostSeen dedupes (cell, proc); borderSeen dedupes border cells.
	type cp struct {
		cell int32
		proc int32
	}
	ghostSeen := make(map[cp]bool)
	borderSeen := make(map[cp]bool)
	nbr := make(map[[2]int32]bool)

	record := func(owner, ghost int32) {
		po, pg := procOfDomain[part[owner]], procOfDomain[part[ghost]]
		if po == pg {
			return
		}
		if !ghostSeen[cp{ghost, po}] {
			ghostSeen[cp{ghost, po}] = true
			h.Ghosts[po]++
		}
		if !borderSeen[cp{ghost, po}] {
			borderSeen[cp{ghost, po}] = true
			h.Border[pg]++
		}
		key := [2]int32{po, pg}
		if !nbr[key] {
			nbr[key] = true
			h.Neighbors[po]++
		}
	}
	for _, f := range m.Faces[:m.NumInteriorFaces] {
		record(f.C0, f.C1)
		record(f.C1, f.C0)
	}
	return h
}
