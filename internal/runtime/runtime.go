// Package runtime is the task-based execution engine that plays StarPU's
// role in this reproduction: it runs a task graph with real computational
// kernels on a pool of worker goroutines, honouring all dependencies, under
// pluggable scheduling policies (central queue, per-worker deques with work
// stealing, domain-locality-aware queues).
//
// Each task's wall-clock duration is measured. Besides the real shared-
// memory execution, the package offers a virtual-time replay: the measured
// durations are scheduled onto an arbitrary simulated cluster (processes ×
// workers) with the discrete-event engine of internal/flusim. This is how a
// single-machine reproduction evaluates the paper's 6-process × 4-core and
// 16-process × 32-core configurations faithfully (see DESIGN.md §2).
package runtime

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"tempart/internal/flusim"
	"tempart/internal/taskgraph"
	"tempart/internal/trace"
)

// Policy selects how ready tasks are queued and claimed.
type Policy int

const (
	// Central uses one FIFO queue shared by all workers.
	Central Policy = iota
	// WorkStealing gives each worker a LIFO deque; idle workers steal the
	// oldest task from a random victim.
	WorkStealing
	// DomainLocal routes each task to a home worker (domain mod workers)
	// for cache locality; idle workers steal as in WorkStealing.
	DomainLocal
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Central:
		return "central"
	case WorkStealing:
		return "worksteal"
	case DomainLocal:
		return "domainlocal"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config parameterises Execute.
type Config struct {
	// Workers is the number of worker goroutines; 0 defaults to 1.
	Workers int
	// Policy is the queueing discipline.
	Policy Policy
	// Seed drives steal-victim selection.
	Seed int64
	// RecordTrace captures per-task spans (wall-clock, nanoseconds).
	RecordTrace bool
}

// Report is the outcome of a real execution.
type Report struct {
	// Wall is the end-to-end execution time.
	Wall time.Duration
	// Durations[t] is task t's measured kernel time.
	Durations []time.Duration
	// Trace holds wall-clock spans when requested (Proc is always 0: the
	// real execution is one shared-memory process).
	Trace *trace.Trace
}

// Execute runs every task of tg exactly once, calling kernel(task) with all
// dependencies satisfied, on cfg.Workers goroutines.
func Execute(tg *taskgraph.TaskGraph, kernel func(*taskgraph.Task), cfg Config) (*Report, error) {
	if kernel == nil {
		return nil, fmt.Errorf("runtime: nil kernel")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	n := tg.NumTasks()
	rep := &Report{Durations: make([]time.Duration, n)}
	if n == 0 {
		return rep, nil
	}

	s := &scheduler{
		tg:      tg,
		indeg:   make([]int32, n),
		queues:  make([][]int32, workers),
		policy:  cfg.Policy,
		workers: workers,
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < n; i++ {
		s.indeg[i] = int32(len(tg.PredsOf(int32(i))))
	}
	for i := 0; i < n; i++ {
		if s.indeg[i] == 0 {
			s.enqueueLocked(int32(i))
		}
	}

	var spans []trace.Span
	var spansMu sync.Mutex
	start := time.Now()

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			for {
				t, ok := s.next(w, rng)
				if !ok {
					return
				}
				task := &tg.Tasks[t]
				t0 := time.Now()
				kernel(task)
				d := time.Since(t0)
				if d <= 0 {
					d = 1
				}
				rep.Durations[t] = d
				if cfg.RecordTrace {
					spansMu.Lock()
					spans = append(spans, trace.Span{
						Proc: 0, Worker: int32(w), Task: t, Sub: task.Sub,
						Start: t0.Sub(start).Nanoseconds(),
						End:   t0.Sub(start).Nanoseconds() + d.Nanoseconds(),
					})
					spansMu.Unlock()
				}
				s.complete(t)
			}
		}(w)
	}
	wg.Wait()
	rep.Wall = time.Since(start)

	if s.done != int32(n) {
		return nil, fmt.Errorf("runtime: %d of %d tasks completed (dependency deadlock?)", s.done, n)
	}
	if cfg.RecordTrace {
		rep.Trace = &trace.Trace{
			Spans:          spans,
			NumProcs:       1,
			WorkersPerProc: workers,
			Makespan:       rep.Wall.Nanoseconds(),
		}
	}
	return rep, nil
}

// scheduler guards the ready queues and dependency counters with one mutex —
// simple and fair; kernels run outside the lock so contention is bounded by
// queue operations only.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	tg      *taskgraph.TaskGraph
	indeg   []int32
	queues  [][]int32 // per worker; Central uses queues[0]
	policy  Policy
	workers int
	done    int32
	inFly   int32
}

// homeQueue returns the queue index a newly ready task should join.
func (s *scheduler) homeQueue(t int32) int {
	switch s.policy {
	case Central:
		return 0
	case WorkStealing:
		// Spread initial/released tasks round-robin by task id.
		return int(t) % s.workers
	case DomainLocal:
		return int(s.tg.Tasks[t].Domain) % s.workers
	}
	return 0
}

func (s *scheduler) enqueueLocked(t int32) {
	q := s.homeQueue(t)
	s.queues[q] = append(s.queues[q], t)
}

// next blocks until a task is available for worker w or all work is done.
func (s *scheduler) next(w int, rng *rand.Rand) (int32, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if t, ok := s.tryTakeLocked(w, rng); ok {
			s.inFly++
			return t, true
		}
		if s.done == int32(s.tg.NumTasks()) {
			return 0, false
		}
		if s.inFly == 0 && s.totalQueuedLocked() == 0 {
			// No running task can release more work: graph exhausted or
			// deadlocked; either way, stop.
			return 0, false
		}
		s.cond.Wait()
	}
}

func (s *scheduler) totalQueuedLocked() int {
	n := 0
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}

func (s *scheduler) tryTakeLocked(w int, rng *rand.Rand) (int32, bool) {
	switch s.policy {
	case Central:
		if q := s.queues[0]; len(q) > 0 {
			t := q[0]
			s.queues[0] = q[1:]
			return t, true
		}
		return 0, false
	default:
		// Own queue first (LIFO for locality).
		if q := s.queues[w]; len(q) > 0 {
			t := q[len(q)-1]
			s.queues[w] = q[:len(q)-1]
			return t, true
		}
		// Steal FIFO from a random victim, scanning all once.
		off := rng.Intn(s.workers)
		for i := 0; i < s.workers; i++ {
			v := (off + i) % s.workers
			if q := s.queues[v]; len(q) > 0 {
				t := q[0]
				s.queues[v] = q[1:]
				return t, true
			}
		}
		return 0, false
	}
}

// complete marks t finished and releases its successors.
func (s *scheduler) complete(t int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done++
	s.inFly--
	released := 0
	for _, succ := range s.tg.SuccsOf(t) {
		s.indeg[succ]--
		if s.indeg[succ] == 0 {
			s.enqueueLocked(succ)
			released++
		}
	}
	if released > 0 || s.done == int32(s.tg.NumTasks()) || s.inFly == 0 {
		s.cond.Broadcast()
	}
}

// VirtualSchedule replays measured task durations on a simulated cluster:
// a copy of tg with Cost[t] = durations[t] (in nanoseconds, minimum 1) is
// scheduled by the discrete-event engine. procOfDomain pins each domain's
// tasks to a process, exactly as in FLUSEPA.
func VirtualSchedule(tg *taskgraph.TaskGraph, durations []time.Duration, procOfDomain []int32, cluster flusim.Cluster, strategy flusim.Strategy, recordTrace bool) (*flusim.Result, error) {
	if len(durations) != tg.NumTasks() {
		return nil, fmt.Errorf("runtime: %d durations for %d tasks", len(durations), tg.NumTasks())
	}
	cp := &taskgraph.TaskGraph{
		Tasks:      append([]taskgraph.Task(nil), tg.Tasks...),
		PredStart:  tg.PredStart,
		Preds:      tg.Preds,
		NumDomains: tg.NumDomains,
		Scheme:     tg.Scheme,
	}
	for i := range cp.Tasks {
		c := durations[i].Nanoseconds()
		if c <= 0 {
			c = 1
		}
		cp.Tasks[i].Cost = c
	}
	return flusim.Simulate(cp, procOfDomain, flusim.Config{
		Cluster: cluster, Strategy: strategy, RecordTrace: recordTrace,
	})
}
