package runtime

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"tempart/internal/flusim"
	"tempart/internal/fv"
	"tempart/internal/mesh"
	"tempart/internal/partition"
	"tempart/internal/taskgraph"
	"tempart/internal/temporal"
)

func buildCase(t testing.TB, scale float64, k int, strat partition.Strategy) (*mesh.Mesh, *taskgraph.TaskGraph) {
	t.Helper()
	m := mesh.Cylinder(scale)
	r, err := partition.PartitionMesh(context.Background(), m, k, strat, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tg, err := taskgraph.Build(m, r.Part, k, taskgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m, tg
}

func TestExecuteRunsEveryTaskOnce(t *testing.T) {
	_, tg := buildCase(t, 0.0005, 4, partition.MCTL)
	for _, policy := range []Policy{Central, WorkStealing, DomainLocal} {
		counts := make([]int32, tg.NumTasks())
		rep, err := Execute(tg, func(task *taskgraph.Task) {
			atomic.AddInt32(&counts[task.ID], 1)
		}, Config{Workers: 4, Policy: policy})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("%v: task %d ran %d times", policy, i, c)
			}
		}
		if len(rep.Durations) != tg.NumTasks() {
			t.Fatalf("%v: durations length %d", policy, len(rep.Durations))
		}
	}
}

func TestExecuteHonorsDependencies(t *testing.T) {
	_, tg := buildCase(t, 0.0005, 4, partition.SCOC)
	var order int64
	finished := make([]int64, tg.NumTasks())
	_, err := Execute(tg, func(task *taskgraph.Task) {
		finished[task.ID] = atomic.AddInt64(&order, 1)
	}, Config{Workers: 4, Policy: WorkStealing})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tg.NumTasks(); i++ {
		for _, p := range tg.PredsOf(int32(i)) {
			if finished[p] >= finished[i] {
				t.Fatalf("task %d finished at %d before its dependency %d at %d",
					i, finished[i], p, finished[p])
			}
		}
	}
}

func TestExecuteNilKernel(t *testing.T) {
	_, tg := buildCase(t, 0.0005, 2, partition.SCOC)
	if _, err := Execute(tg, nil, Config{}); err == nil {
		t.Fatal("Execute accepted nil kernel")
	}
}

func TestExecuteEmptyGraph(t *testing.T) {
	tg := &taskgraph.TaskGraph{PredStart: []int32{0}}
	rep, err := Execute(tg, func(*taskgraph.Task) {}, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Wall < 0 || len(rep.Durations) != 0 {
		t.Error("empty graph produced odd report")
	}
}

func TestExecuteTraceConsistent(t *testing.T) {
	_, tg := buildCase(t, 0.0005, 4, partition.MCTL)
	rep, err := Execute(tg, func(task *taskgraph.Task) {
		// Tiny spin so spans are non-degenerate.
		s := 0.0
		for i := 0; i < int(task.Cost); i++ {
			s += float64(i)
		}
		_ = s
	}, Config{Workers: 3, RecordTrace: true, Policy: Central})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil || len(rep.Trace.Spans) != tg.NumTasks() {
		t.Fatalf("trace missing or incomplete")
	}
	if err := rep.Trace.CheckNoWorkerOverlap(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelFVMatchesSerial is the golden-reference test: executing the FV
// kernels through the task runtime must reproduce the serial solver's field
// up to floating-point reassociation.
func TestParallelFVMatchesSerial(t *testing.T) {
	m := mesh.Cylinder(0.0005)
	r, err := partition.PartitionMesh(context.Background(), m, 4, partition.MCTL, partition.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tg, err := taskgraph.Build(m, r.Part, 4, taskgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	objects := taskObjects(m, r.Part, 4)

	serial := fv.NewState(m, fv.DefaultParams())
	serial.InitGaussian(1, 0.5, 0.5, 0.3, 1)
	parallel := fv.NewState(m, fv.DefaultParams())
	parallel.InitGaussian(1, 0.5, 0.5, 0.3, 1)

	serial.RunIteration()
	mass0 := parallel.Mass()
	_, err = Execute(tg, func(task *taskgraph.Task) {
		objs := objects[task.ID]
		if task.Kind == taskgraph.FaceKind {
			parallel.ComputeFaces(objs)
		} else {
			parallel.UpdateCells(objs)
		}
	}, Config{Workers: 4, Policy: WorkStealing})
	if err != nil {
		t.Fatal(err)
	}
	// Single-writer accumulators make task-parallel execution bit-exact.
	for c := range serial.U {
		if serial.U[c] != parallel.U[c] {
			t.Fatalf("cell %d: parallel %v != serial %v (determinism broken)", c, parallel.U[c], serial.U[c])
		}
	}
	if rel := math.Abs(parallel.Mass()-mass0) / math.Abs(mass0); rel > 1e-10 {
		t.Errorf("parallel mass drift %.3e", rel)
	}
}

func TestVirtualScheduleUsesMeasuredDurations(t *testing.T) {
	_, tg := buildCase(t, 0.0005, 8, partition.SCOC)
	// Uniform 1000ns per task.
	durations := make([]time.Duration, tg.NumTasks())
	for i := range durations {
		durations[i] = 1000
	}
	res, err := VirtualSchedule(tg, durations, flusim.BlockMap(8, 2),
		flusim.Cluster{NumProcs: 2, WorkersPerProc: 2}, flusim.Eager, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWork != int64(tg.NumTasks())*1000 {
		t.Errorf("virtual total work %d, want %d", res.TotalWork, tg.NumTasks()*1000)
	}
	if res.Makespan < res.CriticalPath {
		t.Error("virtual makespan below critical path")
	}
}

func TestVirtualScheduleLengthMismatch(t *testing.T) {
	_, tg := buildCase(t, 0.0005, 2, partition.SCOC)
	_, err := VirtualSchedule(tg, nil, flusim.BlockMap(2, 1), flusim.Cluster{NumProcs: 1}, flusim.Eager, false)
	if err == nil {
		t.Fatal("accepted mismatched durations")
	}
}

// taskObjects recomputes the object lists per task, mirroring the grouping
// done inside taskgraph.Build. Solver code keeps its own copy of this logic
// (internal/solver); the duplication here keeps the test independent.
func taskObjects(m *mesh.Mesh, part []int32, k int) map[int32][]int32 {
	tg, err := taskgraph.Build(m, part, k, taskgraph.Options{})
	if err != nil {
		panic(err)
	}
	// Rebuild classification.
	cellExternal := make([]bool, m.NumCells())
	for _, f := range m.Faces[:m.NumInteriorFaces] {
		if part[f.C0] != part[f.C1] {
			cellExternal[f.C0] = true
			cellExternal[f.C1] = true
		}
	}
	faceLevelOf := func(f mesh.Face) temporal.Level {
		l := m.Level[f.C0]
		if !f.IsBoundary() && m.Level[f.C1] < l {
			l = m.Level[f.C1]
		}
		return l
	}
	out := make(map[int32][]int32, tg.NumTasks())
	type key struct {
		tau  temporal.Level
		kind taskgraph.Kind
		d    int32
		ext  bool
	}
	index := map[key]int32{}
	for i := range tg.Tasks {
		tk := &tg.Tasks[i]
		if tk.Sub != 0 {
			continue // same object sets for every activation
		}
		index[key{tk.Tau, tk.Kind, tk.Domain, tk.External}] = tk.ID
	}
	for fi, f := range m.Faces {
		ext := !f.IsBoundary() && part[f.C0] != part[f.C1]
		id, ok := index[key{faceLevelOf(f), taskgraph.FaceKind, part[f.C0], ext}]
		if ok {
			out[id] = append(out[id], int32(fi))
		}
	}
	for c := 0; c < m.NumCells(); c++ {
		id, ok := index[key{m.Level[c], taskgraph.CellKind, part[c], cellExternal[c]}]
		if ok {
			out[id] = append(out[id], int32(c))
		}
	}
	// Propagate to later subiterations (same tuple → same objects).
	for i := range tg.Tasks {
		tk := &tg.Tasks[i]
		if tk.Sub == 0 {
			continue
		}
		ref := index[key{tk.Tau, tk.Kind, tk.Domain, tk.External}]
		out[tk.ID] = out[ref]
	}
	return out
}
