package mesh

import (
	"bytes"
	"path/filepath"
	"testing"

	"tempart/internal/temporal"
)

func TestWriteReadRoundTrip(t *testing.T) {
	m := Cube(0.05)
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || got.NumCells() != m.NumCells() || got.MaxLevel != m.MaxLevel {
		t.Fatal("header mismatch")
	}
	if got.NumFaces() != m.NumFaces() || got.NumInteriorFaces != m.NumInteriorFaces {
		t.Fatal("face counts mismatch")
	}
	for c := 0; c < m.NumCells(); c++ {
		if got.Level[c] != m.Level[c] || got.Volume[c] != m.Volume[c] ||
			got.CX[c] != m.CX[c] || got.CY[c] != m.CY[c] || got.CZ[c] != m.CZ[c] {
			t.Fatalf("cell %d mismatch", c)
		}
	}
	for i := range m.Faces {
		if got.Faces[i] != m.Faces[i] {
			t.Fatalf("face %d mismatch", i)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	m := Strip([]temporal.Level{0, 1, 2})
	path := filepath.Join(t.TempDir(), "m.tmsh")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCells() != 3 || got.Name != "STRIP" {
		t.Fatal("loaded mesh wrong")
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("JUNKJUNKJUNK"))); err == nil {
		t.Fatal("accepted bad magic")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	m := Strip([]temporal.Level{0, 0})
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Decode(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("accepted truncated stream")
	}
}

func TestReadRejectsCorruptFaces(t *testing.T) {
	m := Strip([]temporal.Level{0, 0, 0})
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the final face record's C0 to an out-of-range value. The file
	// tail holds the normals block (1 has-byte + 3·nb float32s); the last
	// face record sits just before it.
	nb := m.NumFaces() - m.NumInteriorFaces
	tail := 1 + 3*nb*4
	off := len(raw) - tail - 8 // final face = (C0 i32, C1 i32)
	raw[off] = 0xFF
	raw[off+1] = 0xFF
	raw[off+2] = 0xFF
	raw[off+3] = 0x7F
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Fatal("accepted corrupt face data")
	}
}
