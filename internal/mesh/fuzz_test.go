package mesh

import (
	"bytes"
	"testing"

	"tempart/internal/temporal"
)

// FuzzDecode feeds arbitrary bytes to the mesh decoder: it must never panic,
// and whenever it succeeds the mesh must validate.
func FuzzDecode(f *testing.F) {
	// Seed with a valid encoding and a few mutations.
	m := Strip([]temporal.Level{0, 1, 2})
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("TMSH junk"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("Decode returned invalid mesh: %v", err)
		}
	})
}
