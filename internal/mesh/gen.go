package mesh

import (
	"fmt"
	"math"

	"tempart/internal/temporal"
)

// Table I of the paper: full-scale per-temporal-level cell counts of the
// three Airbus meshes. The synthetic generators reproduce these fractions at
// any scale.
var (
	// CylinderCounts is the CYLINDER census (6,400,505 cells, 4 levels).
	CylinderCounts = []int64{52697, 273525, 2088538, 3985745}
	// CubeCounts is the CUBE census (151,817 cells, 4 levels). Note the
	// non-monotone census: level 2 holds only 514 cells.
	CubeCounts = []int64{2953, 23489, 514, 124861}
	// NozzleCounts is the PPRIME_NOZZLE census (12,594,374 cells, 3 levels).
	NozzleCounts = []int64{1500741, 4052551, 7041082}
)

// Spec describes a synthetic graded mesh: a 3D hexahedral grid whose cells
// are assigned temporal levels by ranking them on a geometric refinement
// score (distance to the hot regions), with per-level quotas matching the
// requested census.
type Spec struct {
	Name string
	// Counts are the desired per-level cell counts; the realised mesh has
	// exactly round-proportional quotas over the actual grid size.
	Counts []int64
	// Aspect gives the x:y:z extent ratio of the grid.
	Aspect [3]float64
	// Score returns the refinement score of a point in the unit box scaled
	// by Aspect; lower scores get lower (finer) temporal levels.
	Score func(x, y, z float64) float64
}

// Cylinder generates the CYLINDER-like mesh at the given scale (1.0 = the
// paper's 6.4M cells; 0.01 = 64k cells). The hot core is a compact central
// region surrounded by concentric shells of increasing temporal level.
func Cylinder(scale float64) *Mesh {
	return BySpec(Spec{
		Name:   "CYLINDER",
		Counts: scaleCounts(CylinderCounts, scale),
		Aspect: [3]float64{2, 1, 1},
		Score: func(x, y, z float64) float64 {
			// Distance to the central machinery piece: a short axial
			// segment in the middle of the domain.
			return distToSegment(x, y, z, 0.9, 0.5, 0.5, 1.1, 0.5, 0.5)
		},
	})
}

// Cube generates the CUBE-like mesh: three non-contiguous hot spots inside a
// cube, the paper's worst-case geometry.
func Cube(scale float64) *Mesh {
	h := [][3]float64{{0.22, 0.25, 0.25}, {0.75, 0.55, 0.5}, {0.35, 0.8, 0.72}}
	return BySpec(Spec{
		Name:   "CUBE",
		Counts: scaleCounts(CubeCounts, scale),
		Aspect: [3]float64{1, 1, 1},
		Score: func(x, y, z float64) float64 {
			best := math.Inf(1)
			for _, p := range h {
				d := dist3(x, y, z, p[0], p[1], p[2])
				if d < best {
					best = d
				}
			}
			return best
		},
	})
}

// Nozzle generates the PPRIME_NOZZLE-like mesh: a jet plume downstream of a
// nozzle exit, refined along the jet axis (3 temporal levels).
func Nozzle(scale float64) *Mesh {
	return BySpec(Spec{
		Name:   "PPRIME_NOZZLE",
		Counts: scaleCounts(NozzleCounts, scale),
		Aspect: [3]float64{3, 1, 1},
		Score: func(x, y, z float64) float64 {
			// Jet: a conical region widening downstream of the exit at
			// x=0.9 (domain x ∈ [0,3]).
			d := distToSegment(x, y, z, 0.9, 0.5, 0.5, 2.2, 0.5, 0.5)
			// Widen tolerance downstream so the plume is a cone.
			cone := 0.08 * math.Max(0, x-0.9)
			return math.Max(0, d-cone)
		},
	})
}

// ByName returns the generator output for one of the three paper meshes
// ("CYLINDER", "CUBE", "PPRIME_NOZZLE"), case-sensitive. The scale must be
// positive and large enough that the generated grid has at least two cells:
// scaleCounts clamps every level to one cell, so an extreme down-scale would
// otherwise silently collapse to a degenerate 0- or 1-cell grid that no
// partitioner input should be built from.
func ByName(name string, scale float64) (*Mesh, error) {
	if !(scale > 0) || math.IsInf(scale, 0) { // !(x>0) also rejects NaN
		return nil, fmt.Errorf("mesh: scale %v for mesh %q, want a positive finite value", scale, name)
	}
	var m *Mesh
	switch name {
	case "CYLINDER":
		m = Cylinder(scale)
	case "CUBE":
		m = Cube(scale)
	case "PPRIME_NOZZLE":
		m = Nozzle(scale)
	default:
		return nil, fmt.Errorf("mesh: unknown mesh %q", name)
	}
	if n := m.NumCells(); n < 2 {
		return nil, fmt.Errorf("mesh: scale %v yields a degenerate %d-cell %s grid; increase the scale", scale, n, name)
	}
	return m, nil
}

// scaleCounts multiplies every count by scale, keeping a minimum of 1 cell
// per level so the level structure survives extreme down-scaling.
func scaleCounts(counts []int64, scale float64) []int64 {
	out := make([]int64, len(counts))
	for i, c := range counts {
		v := int64(math.Round(float64(c) * scale))
		if v < 1 {
			v = 1
		}
		out[i] = v
	}
	return out
}

// BySpec generates the mesh described by spec. The grid dimensions are chosen
// so the cell total approximates the census total while honouring the aspect
// ratio; per-level quotas are then redistributed over the actual total with
// the largest-remainder method, preserving the census fractions.
func BySpec(spec Spec) *Mesh {
	if len(spec.Counts) == 0 {
		panic("mesh: spec has no level counts")
	}
	if len(spec.Counts) > int(temporal.MaxSupportedLevel)+1 {
		panic("mesh: too many levels")
	}
	var total int64
	for _, c := range spec.Counts {
		if c < 0 {
			panic("mesh: negative level count")
		}
		total += c
	}
	nx, ny, nz := gridDims(total, spec.Aspect)
	n := nx * ny * nz
	quotas := apportion(spec.Counts, int64(n))

	m := &Mesh{
		Name:     spec.Name,
		Level:    make([]temporal.Level, n),
		Volume:   make([]float32, n),
		CX:       make([]float32, n),
		CY:       make([]float32, n),
		CZ:       make([]float32, n),
		MaxLevel: temporal.Level(len(spec.Counts) - 1),
	}

	// Pass 1: centroids and scores.
	score := make([]float32, n)
	sx, sy, sz := spec.Aspect[0]/float64(nx), spec.Aspect[1]/float64(ny), spec.Aspect[2]/float64(nz)
	id := 0
	minS, maxS := float32(math.Inf(1)), float32(math.Inf(-1))
	for i := 0; i < nx; i++ {
		x := (float64(i) + 0.5) * sx
		for j := 0; j < ny; j++ {
			y := (float64(j) + 0.5) * sy
			for k := 0; k < nz; k++ {
				z := (float64(k) + 0.5) * sz
				s := float32(spec.Score(x, y, z))
				score[id] = s
				m.CX[id], m.CY[id], m.CZ[id] = float32(x), float32(y), float32(z)
				if s < minS {
					minS = s
				}
				if s > maxS {
					maxS = s
				}
				id++
			}
		}
	}

	assignLevelsByRank(m.Level, score, minS, maxS, quotas)

	// Volumes consistent with the levels: coarser level ⇒ larger cell, with
	// a deterministic ±25% jitter for realism.
	for c := 0; c < n; c++ {
		j := 0.75 + 0.5*hash01(uint64(c))
		m.Volume[c] = float32(j * math.Pow(8, float64(m.Level[c])))
	}

	buildGridFaces(m, nx, ny, nz)
	return m
}

// gridDims picks grid dimensions whose product approximates total under the
// given aspect ratio, each at least 1.
func gridDims(total int64, aspect [3]float64) (nx, ny, nz int) {
	if total < 1 {
		total = 1
	}
	for i, a := range aspect {
		if a <= 0 {
			aspect[i] = 1
		}
	}
	base := math.Cbrt(float64(total) / (aspect[0] * aspect[1] * aspect[2]))
	nx = maxInt(1, int(math.Round(aspect[0]*base)))
	ny = maxInt(1, int(math.Round(aspect[1]*base)))
	nz = maxInt(1, int(math.Round(float64(total)/float64(nx*ny))))
	return nx, ny, nz
}

// apportion rescales quotas to sum exactly to total using the largest-
// remainder method, with every level keeping at least one cell when total
// allows.
func apportion(counts []int64, total int64) []int64 {
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum == 0 {
		sum = 1
	}
	out := make([]int64, len(counts))
	rem := make([]float64, len(counts))
	var used int64
	for i, c := range counts {
		exact := float64(c) * float64(total) / float64(sum)
		out[i] = int64(exact)
		rem[i] = exact - float64(out[i])
		used += out[i]
	}
	for used < total {
		best := 0
		for i := range rem {
			if rem[i] > rem[best] {
				best = i
			}
		}
		out[best]++
		rem[best] = -1
		used++
	}
	// Guarantee non-empty levels if we have enough cells.
	if total >= int64(len(counts)) {
		for i := range out {
			for out[i] == 0 {
				// Steal from the largest level.
				big := 0
				for j := range out {
					if out[j] > out[big] {
						big = j
					}
				}
				out[big]--
				out[i]++
			}
		}
	}
	return out
}

// assignLevelsByRank assigns levels so that the quotas[τ] cells with the
// lowest scores get level 0, the next quota level 1, and so on — producing
// spatially nested level regions with exact per-level counts. It runs in
// O(n) using a histogram of scores plus per-boundary-bucket counters.
func assignLevelsByRank(level []temporal.Level, score []float32, minS, maxS float32, quotas []int64) {
	n := len(score)
	if n == 0 {
		return
	}
	const nbuck = 1 << 14
	span := float64(maxS - minS)
	if span <= 0 {
		span = 1
	}
	bucketOf := func(s float32) int {
		b := int(float64(s-minS) / span * nbuck)
		if b >= nbuck {
			b = nbuck - 1
		}
		if b < 0 {
			b = 0
		}
		return b
	}
	hist := make([]int64, nbuck)
	for _, s := range score {
		hist[bucketOf(s)]++
	}
	// For each bucket, determine the level of its cells. A bucket may
	// straddle a quota boundary; straddling buckets get a countdown of how
	// many of their cells (in id order) still belong to the lower level.
	bucketLevel := make([]temporal.Level, nbuck)
	straddle := make([]int64, nbuck) // cells of this bucket in level bucketLevel[b]; rest overflow to +1 chain
	cum := int64(0)
	lvl := 0
	boundary := quotas[0]
	for b := 0; b < nbuck; b++ {
		for lvl < len(quotas)-1 && cum >= boundary {
			lvl++
			boundary += quotas[lvl]
		}
		bucketLevel[b] = temporal.Level(lvl)
		if cum+hist[b] > boundary && lvl < len(quotas)-1 {
			straddle[b] = boundary - cum
		} else {
			straddle[b] = hist[b]
		}
		cum += hist[b]
	}
	// Remaining quota countdowns for straddling buckets while scanning.
	remain := make([]int64, nbuck)
	copy(remain, straddle)
	// quotaLeft tracks remaining per-level quotas for overflow chaining.
	quotaLeft := make([]int64, len(quotas))
	copy(quotaLeft, quotas)
	// Pre-consume the non-overflow parts.
	for b := 0; b < nbuck; b++ {
		quotaLeft[bucketLevel[b]] -= straddle[b]
	}
	for c := 0; c < n; c++ {
		b := bucketOf(score[c])
		l := bucketLevel[b]
		if remain[b] > 0 {
			remain[b]--
		} else {
			// Overflow: push to the next level that still has quota.
			l++
			for int(l) < len(quotas)-1 && quotaLeft[l] <= 0 {
				l++
			}
			if int(l) >= len(quotas) {
				l = temporal.Level(len(quotas) - 1)
			}
			quotaLeft[l]--
		}
		level[c] = l
	}
}

// buildGridFaces creates the 6-neighbour faces of an nx×ny×nz grid: interior
// faces first, then one boundary face per exposed cell side.
func buildGridFaces(m *Mesh, nx, ny, nz int) {
	id := func(i, j, k int) int32 { return int32((i*ny+j)*nz + k) }
	nInterior := (nx-1)*ny*nz + nx*(ny-1)*nz + nx*ny*(nz-1)
	nBoundary := 2 * (ny*nz + nx*nz + nx*ny)
	faces := make([]Face, 0, nInterior+nBoundary)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				c := id(i, j, k)
				if i+1 < nx {
					faces = append(faces, Face{c, id(i+1, j, k)})
				}
				if j+1 < ny {
					faces = append(faces, Face{c, id(i, j+1, k)})
				}
				if k+1 < nz {
					faces = append(faces, Face{c, id(i, j, k+1)})
				}
			}
		}
	}
	m.NumInteriorFaces = len(faces)
	m.BNx = make([]float32, 0, nBoundary)
	m.BNy = make([]float32, 0, nBoundary)
	m.BNz = make([]float32, 0, nBoundary)
	addB := func(c int32, nx, ny, nz float32) {
		faces = append(faces, Face{c, Boundary})
		m.BNx = append(m.BNx, nx)
		m.BNy = append(m.BNy, ny)
		m.BNz = append(m.BNz, nz)
	}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			addB(id(i, j, 0), 0, 0, -1)
			addB(id(i, j, nz-1), 0, 0, 1)
		}
	}
	for i := 0; i < nx; i++ {
		for k := 0; k < nz; k++ {
			addB(id(i, 0, k), 0, -1, 0)
			addB(id(i, ny-1, k), 0, 1, 0)
		}
	}
	for j := 0; j < ny; j++ {
		for k := 0; k < nz; k++ {
			addB(id(0, j, k), -1, 0, 0)
			addB(id(nx-1, j, k), 1, 0, 0)
		}
	}
	m.Faces = faces
}

// ReassignLevels recomputes the temporal level of every cell from a new
// refinement score, keeping the geometry (cells, faces, volumes) unchanged.
// The quotas are re-apportioned from counts over the existing cell total, so
// the census fractions match counts. This models the slow evolution of
// temporal levels across iterations (a moving wake or jet): the paper's
// motivating scenario for *when* a decomposition must be recomputed.
func (m *Mesh) ReassignLevels(score func(x, y, z float64) float64, counts []int64) {
	n := m.NumCells()
	if n == 0 {
		return
	}
	quotas := apportion(counts, int64(n))
	sc := make([]float32, n)
	minS, maxS := float32(math.Inf(1)), float32(math.Inf(-1))
	for c := 0; c < n; c++ {
		s := float32(score(float64(m.CX[c]), float64(m.CY[c]), float64(m.CZ[c])))
		sc[c] = s
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	assignLevelsByRank(m.Level, sc, minS, maxS, quotas)
	m.MaxLevel = temporal.Level(len(counts) - 1)
	m.cfXadj, m.cfAdj = nil, nil // level-independent, but keep semantics clear
}

// Strip builds a 1D chain mesh with the given per-cell levels; a minimal
// fixture for task-graph and solver tests.
func Strip(levels []temporal.Level) *Mesh {
	n := len(levels)
	var max temporal.Level
	for _, l := range levels {
		if l > max {
			max = l
		}
	}
	m := &Mesh{
		Name:     "STRIP",
		Level:    append([]temporal.Level(nil), levels...),
		Volume:   make([]float32, n),
		CX:       make([]float32, n),
		CY:       make([]float32, n),
		CZ:       make([]float32, n),
		MaxLevel: max,
	}
	for c := 0; c < n; c++ {
		m.Volume[c] = float32(math.Pow(8, float64(levels[c])))
		m.CX[c] = float32(c) + 0.5
		m.CY[c], m.CZ[c] = 0.5, 0.5
	}
	for c := 0; c+1 < n; c++ {
		m.Faces = append(m.Faces, Face{int32(c), int32(c + 1)})
	}
	m.NumInteriorFaces = len(m.Faces)
	if n > 0 {
		m.Faces = append(m.Faces, Face{0, Boundary}, Face{int32(n - 1), Boundary})
		m.BNx = append(m.BNx, -1, 1)
		m.BNy = append(m.BNy, 0, 0)
		m.BNz = append(m.BNz, 0, 0)
	}
	return m
}

func dist3(x, y, z, px, py, pz float64) float64 {
	dx, dy, dz := x-px, y-py, z-pz
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// distToSegment returns the distance from (x,y,z) to segment (a)-(b).
func distToSegment(x, y, z, ax, ay, az, bx, by, bz float64) float64 {
	vx, vy, vz := bx-ax, by-ay, bz-az
	wx, wy, wz := x-ax, y-ay, z-az
	vv := vx*vx + vy*vy + vz*vz
	t := 0.0
	if vv > 0 {
		t = (wx*vx + wy*vy + wz*vz) / vv
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	return dist3(x, y, z, ax+t*vx, ay+t*vy, az+t*vz)
}

// hash01 maps an id to a deterministic pseudo-random value in [0,1).
func hash01(x uint64) float64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11) / float64(1<<53)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
