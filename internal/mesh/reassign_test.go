package mesh

import (
	"testing"

	"tempart/internal/temporal"
)

// reassignScore is a fixed hotspot: distance from a point near the cylinder
// core, so low scores (fine levels) cluster spatially.
func reassignScore(x, y, z float64) float64 {
	dx, dy, dz := x-1.0, y-0.5, z-0.5
	return dx*dx + dy*dy + dz*dz
}

func TestReassignLevelsCensusConservation(t *testing.T) {
	m := Cylinder(0.002)
	n := int64(m.NumCells())
	counts := []int64{40, 30, 20, 10} // fractions, deliberately not summing to n
	m.ReassignLevels(reassignScore, counts)

	census := m.Census()
	if len(census) != len(counts) {
		t.Fatalf("census has %d levels, want %d", len(census), len(counts))
	}
	var sum int64
	for _, c := range census {
		sum += c
	}
	if sum != n {
		t.Fatalf("census sums to %d, mesh has %d cells", sum, n)
	}
	if m.MaxLevel != temporal.Level(len(counts)-1) {
		t.Fatalf("MaxLevel = %d, want %d", m.MaxLevel, len(counts)-1)
	}
	// Quotas are re-apportioned over the cell total, so each level's share
	// tracks counts' fractions (±len(counts) absorbs rounding and the
	// non-empty-level guarantee).
	var totalCounts int64
	for _, c := range counts {
		totalCounts += c
	}
	for i, c := range census {
		want := float64(counts[i]) / float64(totalCounts) * float64(n)
		if d := float64(c) - want; d > float64(len(counts)) || d < -float64(len(counts)) {
			t.Errorf("level %d census %d, want ≈ %.0f", i, c, want)
		}
	}
}

func TestReassignLevelsDeterministic(t *testing.T) {
	counts := []int64{3, 2, 1}
	m1 := Cylinder(0.002)
	m2 := Cylinder(0.002)
	m1.ReassignLevels(reassignScore, counts)
	m2.ReassignLevels(reassignScore, counts)
	for c := range m1.Level {
		if m1.Level[c] != m2.Level[c] {
			t.Fatalf("cell %d: %d vs %d — reassignment not deterministic", c, m1.Level[c], m2.Level[c])
		}
	}
	// Idempotent: reassigning with the same score and counts changes nothing.
	before := append([]temporal.Level(nil), m1.Level...)
	m1.ReassignLevels(reassignScore, counts)
	for c := range before {
		if m1.Level[c] != before[c] {
			t.Fatalf("cell %d changed level on identical reassignment", c)
		}
	}
}

func TestReassignLevelsKeepsGeometry(t *testing.T) {
	m := Cylinder(0.002)
	faces := len(m.Faces)
	interior := m.NumInteriorFaces
	vol0 := m.Volume[0]
	m.ReassignLevels(reassignScore, []int64{1, 1})
	if len(m.Faces) != faces || m.NumInteriorFaces != interior || m.Volume[0] != vol0 {
		t.Fatal("ReassignLevels must not touch geometry")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("mesh invalid after reassignment: %v", err)
	}
}

func TestReassignLevelsZeroQuotaStillPopulated(t *testing.T) {
	// A zero count still yields a non-empty level when cells suffice: the
	// apportioner steals from the largest level so every τ exists.
	m := Cylinder(0.002)
	m.ReassignLevels(reassignScore, []int64{1000, 0, 1})
	census := m.Census()
	if len(census) != 3 {
		t.Fatalf("census = %v, want 3 levels", census)
	}
	for i, c := range census {
		if c == 0 {
			t.Errorf("level %d empty despite %d cells available", i, m.NumCells())
		}
	}
}
