package mesh

import (
	"testing"

	"tempart/internal/temporal"
)

func TestExtractDomainStrip(t *testing.T) {
	// 4-cell strip split 2|2: each domain owns 2 cells and ghosts 1.
	m := Strip([]temporal.Level{0, 1, 2, 2})
	part := []int32{0, 0, 1, 1}
	d0, err := ExtractDomain(m, part, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d0.NumOwned != 2 || d0.NumGhosts() != 1 {
		t.Fatalf("owned/ghosts = %d/%d, want 2/1", d0.NumOwned, d0.NumGhosts())
	}
	// Ghost is global cell 2, owned by domain 1.
	if d0.GlobalCell[2] != 2 || d0.GhostOwner[0] != 1 {
		t.Errorf("ghost mapping wrong: %v %v", d0.GlobalCell, d0.GhostOwner)
	}
	// Local faces: {0-1} owned-owned, {1-2} owned-ghost → 2 interior; one
	// boundary face (left wall of cell 0).
	if d0.Local.NumInteriorFaces != 2 {
		t.Errorf("interior faces = %d, want 2", d0.Local.NumInteriorFaces)
	}
	if nb := d0.Local.NumFaces() - d0.Local.NumInteriorFaces; nb != 1 {
		t.Errorf("boundary faces = %d, want 1", nb)
	}
	// Levels carried over.
	if d0.Local.Level[0] != 0 || d0.Local.Level[1] != 1 || d0.Local.Level[2] != 2 {
		t.Errorf("levels = %v", d0.Local.Level[:3])
	}
}

func TestExtractAllCoversMesh(t *testing.T) {
	m := Cube(0.05)
	const k = 6
	part := make([]int32, m.NumCells())
	for c := range part {
		part[c] = int32(c % k)
	}
	doms, err := ExtractAll(m, part, k)
	if err != nil {
		t.Fatal(err)
	}
	// Owned cells partition the global mesh exactly.
	seen := make([]bool, m.NumCells())
	total := 0
	for d, dm := range doms {
		for l := 0; l < dm.NumOwned; l++ {
			g := dm.GlobalCell[l]
			if seen[g] {
				t.Fatalf("cell %d owned twice", g)
			}
			if part[g] != int32(d) {
				t.Fatalf("cell %d extracted into wrong domain", g)
			}
			seen[g] = true
			total++
		}
		// Ghost owners are never the domain itself.
		for i, o := range dm.GhostOwner {
			if o == int32(d) {
				t.Fatalf("domain %d ghost %d owned by itself", d, i)
			}
		}
	}
	if total != m.NumCells() {
		t.Fatalf("owned total %d != %d cells", total, m.NumCells())
	}
	// Interior faces with one owned side appear in exactly the owning
	// domain(s): an owned-owned face once, a cut face once per side.
	wantFaces := 0
	for _, f := range m.Faces[:m.NumInteriorFaces] {
		if part[f.C0] == part[f.C1] {
			wantFaces++
		} else {
			wantFaces += 2
		}
	}
	gotFaces := 0
	for _, dm := range doms {
		gotFaces += dm.Local.NumInteriorFaces
	}
	if gotFaces != wantFaces {
		t.Errorf("local interior faces total %d, want %d", gotFaces, wantFaces)
	}
}

func TestExtractDomainGhostMatchesHalo(t *testing.T) {
	// The extraction ghost layer equals the metrics halo definition when
	// every domain is its own process: check totals on a random-ish split.
	m := Cylinder(0.0005)
	const k = 5
	part := make([]int32, m.NumCells())
	for c := range part {
		part[c] = int32((c * 7) % k)
	}
	doms, err := ExtractAll(m, part, k)
	if err != nil {
		t.Fatal(err)
	}
	// Count distinct (ghost cell, domain) pairs directly.
	type cp struct{ c, d int32 }
	want := map[cp]bool{}
	for _, f := range m.Faces[:m.NumInteriorFaces] {
		if part[f.C0] != part[f.C1] {
			want[cp{f.C1, part[f.C0]}] = true
			want[cp{f.C0, part[f.C1]}] = true
		}
	}
	got := 0
	for _, dm := range doms {
		got += dm.NumGhosts()
	}
	if got != len(want) {
		t.Errorf("total ghosts %d, want %d", got, len(want))
	}
}

func TestExtractDomainErrors(t *testing.T) {
	m := Strip([]temporal.Level{0, 0})
	if _, err := ExtractDomain(m, []int32{0}, 0); err == nil {
		t.Error("accepted wrong-length part")
	}
	if _, err := ExtractDomain(m, []int32{0, 0}, 3); err == nil {
		t.Error("accepted empty domain")
	}
}
