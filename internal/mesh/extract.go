package mesh

import (
	"fmt"

	"tempart/internal/temporal"
)

// DomainMesh is the local view a process owns after domain extraction
// (paper Fig. 2): the domain's own cells, plus one layer of ghost cells
// copied from neighbouring domains, plus every face adjacent to an owned
// cell. This is the unit of data distribution in the MPI production code —
// each process works on a compact local mesh and refreshes its ghosts by
// halo exchange.
type DomainMesh struct {
	// Local is the extracted mesh. Cells [0, NumOwned) are owned; cells
	// [NumOwned, NumCells) are ghosts. Faces between two ghosts are not
	// included (their fluxes belong to other domains).
	Local *Mesh
	// NumOwned is the count of owned cells at the front of the local mesh.
	NumOwned int
	// GlobalCell maps local cell ids to global ids (owned first, ghosts
	// after).
	GlobalCell []int32
	// GhostOwner[i] is the domain owning ghost cell NumOwned+i.
	GhostOwner []int32
}

// NumGhosts returns the ghost-layer size.
func (d *DomainMesh) NumGhosts() int { return d.Local.NumCells() - d.NumOwned }

// ExtractDomain builds domain d's local mesh from a decomposition. Faces of
// the global mesh are included iff at least one side is owned; global
// boundary faces of owned cells stay boundary faces; faces whose far side is
// a ghost keep both cells (the ghost supplies the neighbour state exactly as
// a halo copy would).
func ExtractDomain(m *Mesh, part []int32, d int32) (*DomainMesh, error) {
	if len(part) != m.NumCells() {
		return nil, fmt.Errorf("mesh: %d assignments for %d cells", len(part), m.NumCells())
	}
	local := make(map[int32]int32) // global -> local
	var globalCell []int32
	add := func(g int32) int32 {
		if l, ok := local[g]; ok {
			return l
		}
		l := int32(len(globalCell))
		local[g] = l
		globalCell = append(globalCell, g)
		return l
	}
	// Owned cells first, in global order.
	for c := int32(0); c < int32(m.NumCells()); c++ {
		if part[c] == d {
			add(c)
		}
	}
	numOwned := len(globalCell)
	if numOwned == 0 {
		return nil, fmt.Errorf("mesh: domain %d owns no cells", d)
	}
	// Ghost layer: remote cells across owned faces.
	var ghostOwner []int32
	for _, f := range m.Faces[:m.NumInteriorFaces] {
		a, b := part[f.C0] == d, part[f.C1] == d
		if a == b {
			continue
		}
		var ghost int32
		if a {
			ghost = f.C1
		} else {
			ghost = f.C0
		}
		before := len(globalCell)
		add(ghost)
		if len(globalCell) > before {
			ghostOwner = append(ghostOwner, part[ghost])
		}
	}

	out := &Mesh{
		Name:     fmt.Sprintf("%s/domain%d", m.Name, d),
		MaxLevel: m.MaxLevel,
		Level:    make([]temporal.Level, len(globalCell)),
		Volume:   make([]float32, len(globalCell)),
		CX:       make([]float32, len(globalCell)),
		CY:       make([]float32, len(globalCell)),
		CZ:       make([]float32, len(globalCell)),
	}
	for l, g := range globalCell {
		out.Level[l] = m.Level[g]
		out.Volume[l] = m.Volume[g]
		out.CX[l], out.CY[l], out.CZ[l] = m.CX[g], m.CY[g], m.CZ[g]
	}

	// Faces: interior faces with at least one owned side.
	for _, f := range m.Faces[:m.NumInteriorFaces] {
		if part[f.C0] != d && part[f.C1] != d {
			continue
		}
		out.Faces = append(out.Faces, Face{local[f.C0], local[f.C1]})
	}
	out.NumInteriorFaces = len(out.Faces)
	// Boundary faces of owned cells, normals carried over.
	for i := m.NumInteriorFaces; i < len(m.Faces); i++ {
		f := m.Faces[i]
		if part[f.C0] != d {
			continue
		}
		out.Faces = append(out.Faces, Face{local[f.C0], Boundary})
		bx, by, bz := m.BoundaryNormal(int32(i))
		out.BNx = append(out.BNx, bx)
		out.BNy = append(out.BNy, by)
		out.BNz = append(out.BNz, bz)
	}

	dm := &DomainMesh{
		Local:      out,
		NumOwned:   numOwned,
		GlobalCell: globalCell,
		GhostOwner: ghostOwner,
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("mesh: extracted domain invalid: %w", err)
	}
	return dm, nil
}

// ExtractAll extracts every domain of a k-way decomposition.
func ExtractAll(m *Mesh, part []int32, k int) ([]*DomainMesh, error) {
	out := make([]*DomainMesh, k)
	for d := 0; d < k; d++ {
		dm, err := ExtractDomain(m, part, int32(d))
		if err != nil {
			return nil, err
		}
		out[d] = dm
	}
	return out, nil
}
