// Package mesh models the unstructured finite-volume meshes that FLUSEPA
// operates on and provides synthetic generators reproducing the paper's three
// Airbus test meshes (Table I): CYLINDER, CUBE and PPRIME_NOZZLE.
//
// A mesh is a set of cells carrying a volume, a centroid and a temporal level
// (see internal/temporal), connected by faces. Interior faces join two cells;
// boundary faces belong to a single cell. The partitioner consumes the dual
// graph (cells as vertices, interior faces as edges); the solver additionally
// uses face areas and boundary faces.
//
// The production meshes are proprietary, so the generators here build graded
// 3D hexahedral meshes whose temporal-level census matches Table I's per-
// level fractions and whose hot regions mimic each case's geometry (a single
// central core, three disjoint hotspots, a jet cone). See DESIGN.md §2 for
// the substitution argument.
package mesh

import (
	"fmt"

	"tempart/internal/graph"
	"tempart/internal/temporal"
)

// Face joins cells C0 and C1. For boundary faces C1 == Boundary.
type Face struct {
	C0, C1 int32
}

// Boundary marks the missing side of a boundary face.
const Boundary int32 = -1

// IsBoundary reports whether the face lies on the mesh boundary.
func (f Face) IsBoundary() bool { return f.C1 == Boundary }

// Mesh is a finite-volume mesh. All per-cell slices have length NumCells().
type Mesh struct {
	Name string

	// Level is each cell's temporal level.
	Level []temporal.Level
	// Volume is each cell's volume (arbitrary units; levels derive from it).
	Volume []float32
	// CX, CY, CZ are cell centroids.
	CX, CY, CZ []float32

	// Faces lists every face once. Interior faces precede boundary faces.
	Faces []Face
	// NumInteriorFaces is the count of interior faces at the front of Faces.
	NumInteriorFaces int

	// BNx, BNy, BNz hold the outward unit normal of each boundary face,
	// indexed by faceID − NumInteriorFaces. Solvers need them for wall
	// pressure fluxes. Generators always fill them; externally built meshes
	// may leave them nil (BoundaryNormal then falls back to zero vectors).
	BNx, BNy, BNz []float32

	// MaxLevel is the highest temporal level present.
	MaxLevel temporal.Level

	// cellFaces is a CSR index from cell to the ids of its faces, built
	// lazily by CellFaces.
	cfXadj []int32
	cfAdj  []int32
}

// NumCells returns the number of cells.
func (m *Mesh) NumCells() int { return len(m.Level) }

// NumFaces returns the total number of faces (interior + boundary).
func (m *Mesh) NumFaces() int { return len(m.Faces) }

// BoundaryNormal returns the outward unit normal of boundary face f (a face
// id ≥ NumInteriorFaces). Meshes without normal data return zeros.
func (m *Mesh) BoundaryNormal(f int32) (x, y, z float32) {
	i := int(f) - m.NumInteriorFaces
	if m.BNx == nil || i < 0 || i >= len(m.BNx) {
		return 0, 0, 0
	}
	return m.BNx[i], m.BNy[i], m.BNz[i]
}

// Scheme returns the temporal scheme induced by the mesh's maximum level.
func (m *Mesh) Scheme() temporal.Scheme {
	s, err := temporal.NewScheme(m.MaxLevel)
	if err != nil {
		panic(err) // MaxLevel is validated at construction
	}
	return s
}

// Census returns the number of cells at each temporal level, indexed by
// level, with length MaxLevel+1.
func (m *Mesh) Census() []int64 {
	counts := make([]int64, int(m.MaxLevel)+1)
	for _, l := range m.Level {
		counts[l]++
	}
	return counts
}

// CellFaces returns the ids of the faces of cell c. The first call builds the
// index in O(cells+faces).
func (m *Mesh) CellFaces(c int32) []int32 {
	if m.cfXadj == nil {
		m.buildCellFaces()
	}
	return m.cfAdj[m.cfXadj[c]:m.cfXadj[c+1]]
}

func (m *Mesh) buildCellFaces() {
	n := m.NumCells()
	deg := make([]int32, n+1)
	for _, f := range m.Faces {
		deg[f.C0+1]++
		if !f.IsBoundary() {
			deg[f.C1+1]++
		}
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	adj := make([]int32, deg[n])
	fill := make([]int32, n)
	copy(fill, deg[:n])
	for i, f := range m.Faces {
		adj[fill[f.C0]] = int32(i)
		fill[f.C0]++
		if !f.IsBoundary() {
			adj[fill[f.C1]] = int32(i)
			fill[f.C1]++
		}
	}
	m.cfXadj, m.cfAdj = deg, adj
}

// Validate checks mesh invariants: face endpoints in range, interior faces
// really interior and ordered before boundary faces, levels within MaxLevel,
// and positive volumes.
func (m *Mesh) Validate() error {
	n := int32(m.NumCells())
	if len(m.Volume) != int(n) || len(m.CX) != int(n) || len(m.CY) != int(n) || len(m.CZ) != int(n) {
		return fmt.Errorf("mesh: inconsistent per-cell slice lengths")
	}
	if m.NumInteriorFaces > len(m.Faces) {
		return fmt.Errorf("mesh: NumInteriorFaces %d > faces %d", m.NumInteriorFaces, len(m.Faces))
	}
	for i, f := range m.Faces {
		if f.C0 < 0 || f.C0 >= n {
			return fmt.Errorf("mesh: face %d has bad C0 %d", i, f.C0)
		}
		interior := i < m.NumInteriorFaces
		if interior {
			if f.C1 < 0 || f.C1 >= n {
				return fmt.Errorf("mesh: interior face %d has bad C1 %d", i, f.C1)
			}
			if f.C0 == f.C1 {
				return fmt.Errorf("mesh: face %d joins cell %d to itself", i, f.C0)
			}
		} else if !f.IsBoundary() {
			return fmt.Errorf("mesh: face %d in boundary region has C1 %d", i, f.C1)
		}
	}
	for c, l := range m.Level {
		if l > m.MaxLevel {
			return fmt.Errorf("mesh: cell %d level %d exceeds MaxLevel %d", c, l, m.MaxLevel)
		}
		if m.Volume[c] <= 0 {
			return fmt.Errorf("mesh: cell %d has non-positive volume", c)
		}
	}
	return nil
}

// DualGraphOptions selects the vertex weighting of the exported dual graph.
type DualGraphOptions struct {
	// Constraints chooses the weight vectors:
	//   SingleCost  — ncon=1, weight 2^(MaxLevel−τ)  (SC_OC)
	//   PerLevel    — ncon=NumLevels, binary indicator of the cell's level (MC_TL)
	//   Unit        — ncon=1, weight 1
	Constraints ConstraintKind
}

// ConstraintKind enumerates dual-graph vertex weightings.
type ConstraintKind int

const (
	// SingleCost weights each vertex by its operating cost (SC_OC).
	SingleCost ConstraintKind = iota
	// PerLevel gives each vertex the binary indicator vector of its
	// temporal level (MC_TL).
	PerLevel
	// Unit weights every vertex 1.
	Unit
)

// DualGraph exports the cell-adjacency graph: one vertex per cell, one
// unit-weight edge per interior face, vertex weights per opts.
func (m *Mesh) DualGraph(opts DualGraphOptions) *graph.Graph {
	n := m.NumCells()
	scheme := m.Scheme()

	var ncon int
	switch opts.Constraints {
	case SingleCost, Unit:
		ncon = 1
	case PerLevel:
		ncon = scheme.NumLevels()
	default:
		panic(fmt.Sprintf("mesh: unknown constraint kind %d", opts.Constraints))
	}

	g := &graph.Graph{NCon: ncon, VWgt: make([]int32, n*ncon)}
	for c := 0; c < n; c++ {
		switch opts.Constraints {
		case SingleCost:
			g.VWgt[c] = scheme.Cost(m.Level[c])
		case Unit:
			g.VWgt[c] = 1
		case PerLevel:
			g.VWgt[c*ncon+int(m.Level[c])] = 1
		}
	}

	// CSR assembly from interior faces.
	deg := make([]int32, n+1)
	for _, f := range m.Faces[:m.NumInteriorFaces] {
		deg[f.C0+1]++
		deg[f.C1+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	g.Xadj = deg
	g.Adjncy = make([]int32, deg[n])
	g.AdjWgt = make([]int32, deg[n])
	fill := make([]int32, n)
	copy(fill, deg[:n])
	for _, f := range m.Faces[:m.NumInteriorFaces] {
		g.Adjncy[fill[f.C0]], g.AdjWgt[fill[f.C0]] = f.C1, 1
		fill[f.C0]++
		g.Adjncy[fill[f.C1]], g.AdjWgt[fill[f.C1]] = f.C0, 1
		fill[f.C1]++
	}
	return g
}
