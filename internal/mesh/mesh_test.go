package mesh

import (
	"math"
	"testing"
	"testing/quick"

	"tempart/internal/temporal"
)

func TestStripBasics(t *testing.T) {
	m := Strip([]temporal.Level{0, 1, 2, 1})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumCells() != 4 {
		t.Errorf("NumCells = %d, want 4", m.NumCells())
	}
	if m.NumInteriorFaces != 3 {
		t.Errorf("NumInteriorFaces = %d, want 3", m.NumInteriorFaces)
	}
	if m.NumFaces() != 5 {
		t.Errorf("NumFaces = %d, want 5 (3 interior + 2 boundary)", m.NumFaces())
	}
	if m.MaxLevel != 2 {
		t.Errorf("MaxLevel = %d, want 2", m.MaxLevel)
	}
	c := m.Census()
	if c[0] != 1 || c[1] != 2 || c[2] != 1 {
		t.Errorf("Census = %v, want [1 2 1]", c)
	}
}

func TestCellFaces(t *testing.T) {
	m := Strip([]temporal.Level{0, 0, 0})
	// Cell 1 is interior: touches faces {0-1} and {1-2}.
	fs := m.CellFaces(1)
	if len(fs) != 2 {
		t.Fatalf("CellFaces(1) = %v, want 2 faces", fs)
	}
	// Cell 0 touches interior face 0 and one boundary face.
	fs0 := m.CellFaces(0)
	if len(fs0) != 2 {
		t.Fatalf("CellFaces(0) = %v, want 2 faces", fs0)
	}
	foundBoundary := false
	for _, f := range fs0 {
		if m.Faces[f].IsBoundary() {
			foundBoundary = true
		}
	}
	if !foundBoundary {
		t.Error("CellFaces(0) missing boundary face")
	}
}

func TestValidateCatchesBadFace(t *testing.T) {
	m := Strip([]temporal.Level{0, 0})
	m.Faces[0].C1 = 99
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range face endpoint")
	}
}

func TestValidateCatchesInteriorBoundaryMix(t *testing.T) {
	m := Strip([]temporal.Level{0, 0})
	m.Faces[0].C1 = Boundary // boundary face in the interior region
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted boundary face in interior region")
	}
}

// checkMesh validates structure and census for a generated mesh.
func checkMesh(t *testing.T, m *Mesh, wantFracs []int64) {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatalf("%s: %v", m.Name, err)
	}
	census := m.Census()
	if len(census) != len(wantFracs) {
		t.Fatalf("%s: census has %d levels, want %d", m.Name, len(census), len(wantFracs))
	}
	var totWant, totGot int64
	for i := range wantFracs {
		totWant += wantFracs[i]
		totGot += census[i]
	}
	for i := range wantFracs {
		want := float64(wantFracs[i]) / float64(totWant)
		got := float64(census[i]) / float64(totGot)
		if math.Abs(want-got) > 0.01 {
			t.Errorf("%s: level %d fraction = %.4f, want %.4f (census %v)", m.Name, i, got, want, census)
		}
	}
	// Every level populated.
	for i, c := range census {
		if c == 0 {
			t.Errorf("%s: level %d empty", m.Name, i)
		}
	}
}

func TestCylinderCensus(t *testing.T) {
	m := Cylinder(0.005) // ~32k cells
	checkMesh(t, m, CylinderCounts)
	if m.MaxLevel != 3 {
		t.Errorf("MaxLevel = %d, want 3", m.MaxLevel)
	}
}

func TestCubeCensus(t *testing.T) {
	m := Cube(0.2) // ~30k cells; CUBE is small at full scale
	checkMesh(t, m, CubeCounts)
	if m.MaxLevel != 3 {
		t.Errorf("MaxLevel = %d, want 3", m.MaxLevel)
	}
}

func TestNozzleCensus(t *testing.T) {
	m := Nozzle(0.002) // ~25k cells
	checkMesh(t, m, NozzleCounts)
	if m.MaxLevel != 2 {
		t.Errorf("MaxLevel = %d, want 2", m.MaxLevel)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"CYLINDER", "CUBE", "PPRIME_NOZZLE"} {
		m, err := ByName(name, 0.001)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if m.Name != name {
			t.Errorf("Name = %q, want %q", m.Name, name)
		}
	}
	if _, err := ByName("SPHERE", 1); err == nil {
		t.Error("ByName accepted unknown mesh")
	}
}

// TestByNameScaleValidation: ByName must reject scales that cannot yield a
// usable partitioner input — zero, negative, NaN and infinite — with a
// descriptive error, while extreme-but-positive down-scales still produce a
// valid multi-cell mesh (the per-level clamp in scaleCounts guarantees it).
func TestByNameScaleValidation(t *testing.T) {
	for _, s := range []float64{0, -1, -0.001, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := ByName("CYLINDER", s); err == nil {
			t.Errorf("ByName accepted scale %v", s)
		}
	}
	for _, s := range []float64{1e-12, 1e-6, 0.001} {
		m, err := ByName("CYLINDER", s)
		if err != nil {
			t.Fatalf("ByName(CYLINDER, %v): %v", s, err)
		}
		if m.NumCells() < 2 {
			t.Errorf("scale %v yielded a degenerate %d-cell mesh", s, m.NumCells())
		}
	}
}

// TestHotRegionsAreSpatiallyCoherent checks that the level-0 cells cluster
// near the hot regions: their mean score must be far below the global mean.
func TestHotRegionsAreSpatiallyCoherent(t *testing.T) {
	m := Cube(0.1)
	// Recover the geometric structure through volumes: level-0 cells should
	// be concentrated, i.e. the bounding box of each hotspot cluster should
	// be much smaller than the domain. We check a weaker, robust property:
	// the mean pairwise distance of level-0 cells is below the mesh-wide
	// mean pairwise distance (clustered vs uniform).
	var hot [][3]float64
	for c := 0; c < m.NumCells(); c++ {
		if m.Level[c] == 0 {
			hot = append(hot, [3]float64{float64(m.CX[c]), float64(m.CY[c]), float64(m.CZ[c])})
		}
	}
	if len(hot) < 10 {
		t.Fatalf("too few level-0 cells: %d", len(hot))
	}
	meanHot := meanPairwise(hot, 500)
	var all [][3]float64
	for c := 0; c < m.NumCells(); c += 7 {
		all = append(all, [3]float64{float64(m.CX[c]), float64(m.CY[c]), float64(m.CZ[c])})
	}
	meanAll := meanPairwise(all, 500)
	if meanHot >= meanAll {
		t.Errorf("level-0 cells not clustered: mean pairwise %.3f vs global %.3f", meanHot, meanAll)
	}
}

func meanPairwise(pts [][3]float64, samples int) float64 {
	if len(pts) < 2 {
		return 0
	}
	var sum float64
	cnt := 0
	step := len(pts)/samples + 1
	for i := 0; i < len(pts); i += step {
		for j := i + step; j < len(pts); j += step {
			sum += dist3(pts[i][0], pts[i][1], pts[i][2], pts[j][0], pts[j][1], pts[j][2])
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

func TestVolumesGrowWithLevel(t *testing.T) {
	m := Cylinder(0.002)
	sums := make([]float64, int(m.MaxLevel)+1)
	counts := make([]int64, int(m.MaxLevel)+1)
	for c := 0; c < m.NumCells(); c++ {
		sums[m.Level[c]] += float64(m.Volume[c])
		counts[m.Level[c]]++
	}
	for l := 1; l <= int(m.MaxLevel); l++ {
		if counts[l] == 0 || counts[l-1] == 0 {
			continue
		}
		if sums[l]/float64(counts[l]) <= sums[l-1]/float64(counts[l-1]) {
			t.Errorf("mean volume at level %d not larger than level %d", l, l-1)
		}
	}
}

func TestDualGraphSingleCost(t *testing.T) {
	m := Strip([]temporal.Level{0, 1, 2})
	g := m.DualGraph(DualGraphOptions{Constraints: SingleCost})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NCon != 1 {
		t.Fatalf("NCon = %d, want 1", g.NCon)
	}
	// Costs with MaxLevel=2: level 0 → 4, 1 → 2, 2 → 1.
	want := []int32{4, 2, 1}
	for v, w := range want {
		if got := g.Weight(int32(v), 0); got != w {
			t.Errorf("Weight(%d) = %d, want %d", v, got, w)
		}
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestDualGraphPerLevel(t *testing.T) {
	m := Strip([]temporal.Level{0, 1, 2, 1})
	g := m.DualGraph(DualGraphOptions{Constraints: PerLevel})
	if g.NCon != 3 {
		t.Fatalf("NCon = %d, want 3", g.NCon)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Vertex 1 has level 1 → vector [0 1 0].
	w := g.WeightVec(1)
	if w[0] != 0 || w[1] != 1 || w[2] != 0 {
		t.Errorf("WeightVec(1) = %v, want [0 1 0]", w)
	}
	tot := g.TotalWeights()
	if tot[0] != 1 || tot[1] != 2 || tot[2] != 1 {
		t.Errorf("TotalWeights = %v, want census [1 2 1]", tot)
	}
}

func TestDualGraphUnit(t *testing.T) {
	m := Strip([]temporal.Level{0, 0, 1})
	g := m.DualGraph(DualGraphOptions{Constraints: Unit})
	for v := int32(0); v < 3; v++ {
		if g.Weight(v, 0) != 1 {
			t.Errorf("Weight(%d) = %d, want 1", v, g.Weight(v, 0))
		}
	}
}

// Property: the dual graph of any generated mesh is connected (grid meshes
// are connected by construction) and its per-level total weights equal the
// census.
func TestDualGraphMatchesCensusProperty(t *testing.T) {
	f := func(seed uint8) bool {
		scale := 0.0002 + float64(seed%5)*0.0002
		m := Cylinder(scale)
		g := m.DualGraph(DualGraphOptions{Constraints: PerLevel})
		if err := g.Validate(); err != nil {
			return false
		}
		census := m.Census()
		tot := g.TotalWeights()
		for i := range census {
			if census[i] != tot[i] {
				return false
			}
		}
		_, ncomp := g.Components()
		return ncomp == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestApportionExact(t *testing.T) {
	got := apportion([]int64{1, 1, 1}, 10)
	var sum int64
	for _, v := range got {
		sum += v
	}
	if sum != 10 {
		t.Fatalf("apportion sums to %d, want 10", sum)
	}
	// Preserves at least 1 per level.
	got = apportion([]int64{1, 1000000}, 5)
	if got[0] < 1 {
		t.Errorf("apportion starved level 0: %v", got)
	}
}

func TestApportionSumsProperty(t *testing.T) {
	f := func(a, b, c uint16, totRaw uint16) bool {
		counts := []int64{int64(a) + 1, int64(b) + 1, int64(c) + 1}
		total := int64(totRaw)%10000 + 3
		out := apportion(counts, total)
		var sum int64
		for _, v := range out {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGridDims(t *testing.T) {
	nx, ny, nz := gridDims(1000, [3]float64{1, 1, 1})
	if nx < 1 || ny < 1 || nz < 1 {
		t.Fatal("gridDims produced empty dimension")
	}
	got := nx * ny * nz
	if got < 700 || got > 1300 {
		t.Errorf("gridDims(1000) product = %d, want within 30%%", got)
	}
	// Aspect respected roughly.
	nx2, ny2, _ := gridDims(8000, [3]float64{2, 1, 1})
	if nx2 <= ny2 {
		t.Errorf("aspect 2:1 not respected: nx=%d ny=%d", nx2, ny2)
	}
}

func TestGridFacesCount(t *testing.T) {
	m := BySpec(Spec{
		Name:   "T",
		Counts: []int64{8, 19}, // 27 cells → 3x3x3
		Aspect: [3]float64{1, 1, 1},
		Score:  func(x, y, z float64) float64 { return dist3(x, y, z, 0.5, 0.5, 0.5) },
	})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumCells() != 27 {
		t.Fatalf("NumCells = %d, want 27", m.NumCells())
	}
	// 3x3x3 grid: interior faces = 3 * (2*3*3) = 54; boundary = 6*9 = 54.
	if m.NumInteriorFaces != 54 {
		t.Errorf("interior faces = %d, want 54", m.NumInteriorFaces)
	}
	if m.NumFaces()-m.NumInteriorFaces != 54 {
		t.Errorf("boundary faces = %d, want 54", m.NumFaces()-m.NumInteriorFaces)
	}
}

func TestReorderByDomain(t *testing.T) {
	m := Cube(0.02)
	// Synthetic partition: stripes by cell id.
	const k = 4
	part := make([]int32, m.NumCells())
	for c := range part {
		part[c] = int32(c % k)
	}
	ord, newPart, perm := m.ReorderByDomain(part, k)
	if err := ord.Validate(); err != nil {
		t.Fatal(err)
	}
	// Same census, same face counts.
	a, b := m.Census(), ord.Census()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("census changed: %v vs %v", a, b)
		}
	}
	if ord.NumFaces() != m.NumFaces() || ord.NumInteriorFaces != m.NumInteriorFaces {
		t.Fatal("face counts changed")
	}
	// Domains contiguous in the new ordering.
	for c := 1; c < ord.NumCells(); c++ {
		if newPart[c] < newPart[c-1] {
			t.Fatalf("domains not contiguous at cell %d", c)
		}
	}
	// Permutation is a bijection carrying per-cell data.
	seen := make([]bool, m.NumCells())
	for old, nw := range perm {
		if seen[nw] {
			t.Fatalf("perm not injective at %d", nw)
		}
		seen[nw] = true
		if m.Level[old] != ord.Level[nw] || m.Volume[old] != ord.Volume[nw] {
			t.Fatalf("cell data lost for old cell %d", old)
		}
		if newPart[nw] != part[old] {
			t.Fatalf("domain lost for old cell %d", old)
		}
	}
	// Adjacency preserved: each original interior face exists in the new
	// mesh between the permuted endpoints.
	want := map[[2]int32]int{}
	for _, f := range m.Faces[:m.NumInteriorFaces] {
		a, b := perm[f.C0], perm[f.C1]
		if a > b {
			a, b = b, a
		}
		want[[2]int32{a, b}]++
	}
	for _, f := range ord.Faces[:ord.NumInteriorFaces] {
		a, b := f.C0, f.C1
		if a > b {
			a, b = b, a
		}
		want[[2]int32{a, b}]--
	}
	for k2, v := range want {
		if v != 0 {
			t.Fatalf("face multiset mismatch at %v: %d", k2, v)
		}
	}
	// Faces grouped by owner domain within the interior region.
	for i := 1; i < ord.NumInteriorFaces; i++ {
		if newPart[ord.Faces[i].C0] < newPart[ord.Faces[i-1].C0] {
			t.Fatalf("interior faces not grouped by domain at %d", i)
		}
	}
}
