package mesh

import "tempart/internal/temporal"

// ReorderByDomain returns a copy of the mesh whose cells are renumbered so
// that each domain's cells are contiguous (stable within a domain), along
// with the domain of each new cell and the permutation used
// (cellPerm[old] = new).
//
// This is the data-redistribution step of the production pipeline (paper
// Fig. 2: domains are *extracted* and handed to processes, so every process
// works on compact arrays). Without it, a shared-memory emulation would
// penalise fragmented decompositions like MC_TL's with cache effects that a
// real distributed run does not have.
//
// Faces are likewise regrouped by owning domain (the domain of their C0
// cell), preserving the interior-before-boundary layout.
func (m *Mesh) ReorderByDomain(part []int32, numDomains int) (*Mesh, []int32, []int32) {
	n := m.NumCells()

	// Counting sort of cells by domain.
	counts := make([]int32, numDomains+1)
	for _, d := range part {
		counts[d+1]++
	}
	for i := 0; i < numDomains; i++ {
		counts[i+1] += counts[i]
	}
	cellPerm := make([]int32, n) // old -> new
	fill := make([]int32, numDomains)
	copy(fill, counts[:numDomains])
	for c := 0; c < n; c++ {
		d := part[c]
		cellPerm[c] = fill[d]
		fill[d]++
	}

	out := &Mesh{
		Name:     m.Name,
		Level:    make([]temporal.Level, n),
		Volume:   make([]float32, n),
		CX:       make([]float32, n),
		CY:       make([]float32, n),
		CZ:       make([]float32, n),
		MaxLevel: m.MaxLevel,
	}
	newPart := make([]int32, n)
	for old := 0; old < n; old++ {
		nw := cellPerm[old]
		out.Level[nw] = m.Level[old]
		out.Volume[nw] = m.Volume[old]
		out.CX[nw] = m.CX[old]
		out.CY[nw] = m.CY[old]
		out.CZ[nw] = m.CZ[old]
		newPart[nw] = part[old]
	}

	// Remap faces, then group them by owner domain within each region.
	remap := func(f Face) Face {
		f.C0 = cellPerm[f.C0]
		if !f.IsBoundary() {
			f.C1 = cellPerm[f.C1]
		}
		return f
	}
	groupFaces := func(faces []Face) ([]Face, []int32) {
		cnt := make([]int32, numDomains+1)
		for _, f := range faces {
			cnt[newPart[f.C0]+1]++
		}
		for i := 0; i < numDomains; i++ {
			cnt[i+1] += cnt[i]
		}
		outF := make([]Face, len(faces))
		order := make([]int32, len(faces)) // new index -> old index
		pos := make([]int32, numDomains)
		copy(pos, cnt[:numDomains])
		for old, f := range faces {
			d := newPart[f.C0]
			outF[pos[d]] = f
			order[pos[d]] = int32(old)
			pos[d]++
		}
		return outF, order
	}
	interior := make([]Face, m.NumInteriorFaces)
	for i, f := range m.Faces[:m.NumInteriorFaces] {
		interior[i] = remap(f)
	}
	boundary := make([]Face, len(m.Faces)-m.NumInteriorFaces)
	for i, f := range m.Faces[m.NumInteriorFaces:] {
		boundary[i] = remap(f)
	}
	gi, _ := groupFaces(interior)
	gb, border := groupFaces(boundary)
	out.Faces = append(gi, gb...)
	out.NumInteriorFaces = len(gi)
	if m.BNx != nil {
		out.BNx = make([]float32, len(gb))
		out.BNy = make([]float32, len(gb))
		out.BNz = make([]float32, len(gb))
		for nw, old := range border {
			out.BNx[nw] = m.BNx[old]
			out.BNy[nw] = m.BNy[old]
			out.BNz[nw] = m.BNz[old]
		}
	}
	return out, newPart, cellPerm
}
