package mesh

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"tempart/internal/temporal"
)

// Binary mesh format: a compact little-endian layout so generated meshes can
// be saved once and reloaded by solvers and tools.
//
//	magic  "TMSH"            4 bytes
//	version u32              currently 2
//	nameLen u32 + name       UTF-8
//	numCells u64, maxLevel u8
//	levels   numCells × u8
//	volumes  numCells × f32
//	cx,cy,cz numCells × f32 each
//	numFaces u64, numInterior u64
//	faces    numFaces × (i32, i32)
//	hasNormals u8; if 1: bnx,bny,bnz (numFaces−numInterior) × f32 each
const (
	meshMagic   = "TMSH"
	meshVersion = 2
)

// Encode serialises the mesh.
func (m *Mesh) Encode(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	write := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }

	if _, err := bw.WriteString(meshMagic); err != nil {
		return err
	}
	if err := write(uint32(meshVersion)); err != nil {
		return err
	}
	name := []byte(m.Name)
	if err := write(uint32(len(name))); err != nil {
		return err
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	if err := write(uint64(m.NumCells())); err != nil {
		return err
	}
	if err := write(uint8(m.MaxLevel)); err != nil {
		return err
	}
	levels := make([]uint8, m.NumCells())
	for i, l := range m.Level {
		levels[i] = uint8(l)
	}
	for _, chunk := range []any{levels, m.Volume, m.CX, m.CY, m.CZ} {
		if err := write(chunk); err != nil {
			return err
		}
	}
	if err := write(uint64(len(m.Faces))); err != nil {
		return err
	}
	if err := write(uint64(m.NumInteriorFaces)); err != nil {
		return err
	}
	if err := write(m.Faces); err != nil {
		return err
	}
	has := uint8(0)
	if m.BNx != nil {
		has = 1
	}
	if err := write(has); err != nil {
		return err
	}
	if has == 1 {
		for _, chunk := range []any{m.BNx, m.BNy, m.BNz} {
			if err := write(chunk); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Decode deserialises a mesh written by Encode and validates it.
func Decode(r io.Reader) (*Mesh, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("mesh: reading magic: %w", err)
	}
	if string(magic) != meshMagic {
		return nil, fmt.Errorf("mesh: bad magic %q", magic)
	}
	var version uint32
	if err := read(&version); err != nil {
		return nil, err
	}
	if version != meshVersion {
		return nil, fmt.Errorf("mesh: unsupported version %d", version)
	}
	var nameLen uint32
	if err := read(&nameLen); err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("mesh: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var numCells uint64
	var maxLevel uint8
	if err := read(&numCells); err != nil {
		return nil, err
	}
	if err := read(&maxLevel); err != nil {
		return nil, err
	}
	if numCells > 1<<33 || maxLevel > temporal.MaxSupportedLevel {
		return nil, fmt.Errorf("mesh: implausible header (%d cells, max level %d)", numCells, maxLevel)
	}
	// Arrays are read in bounded chunks so a forged header cannot force a
	// huge allocation before the (truncated) input runs out.
	const chunkElems = 1 << 20
	readU8s := func(n uint64) ([]uint8, error) {
		var out []uint8
		for n > 0 {
			c := n
			if c > chunkElems {
				c = chunkElems
			}
			buf := make([]uint8, c)
			if err := read(buf); err != nil {
				return nil, err
			}
			out = append(out, buf...)
			n -= c
		}
		return out, nil
	}
	readF32s := func(n uint64) ([]float32, error) {
		var out []float32
		for n > 0 {
			c := n
			if c > chunkElems {
				c = chunkElems
			}
			buf := make([]float32, c)
			if err := read(buf); err != nil {
				return nil, err
			}
			out = append(out, buf...)
			n -= c
		}
		return out, nil
	}

	m := &Mesh{Name: string(name), MaxLevel: temporal.Level(maxLevel)}
	levels, err := readU8s(numCells)
	if err != nil {
		return nil, err
	}
	m.Level = make([]temporal.Level, numCells)
	for i, l := range levels {
		m.Level[i] = temporal.Level(l)
	}
	for _, dst := range []*[]float32{&m.Volume, &m.CX, &m.CY, &m.CZ} {
		arr, err := readF32s(numCells)
		if err != nil {
			return nil, err
		}
		*dst = arr
	}
	var numFaces, numInterior uint64
	if err := read(&numFaces); err != nil {
		return nil, err
	}
	if err := read(&numInterior); err != nil {
		return nil, err
	}
	if numFaces > 1<<34 || numInterior > numFaces {
		return nil, fmt.Errorf("mesh: implausible face counts (%d, %d interior)", numFaces, numInterior)
	}
	m.NumInteriorFaces = int(numInterior)
	for n := numFaces; n > 0; {
		c := n
		if c > chunkElems {
			c = chunkElems
		}
		buf := make([]Face, c)
		if err := read(buf); err != nil {
			return nil, err
		}
		m.Faces = append(m.Faces, buf...)
		n -= c
	}
	var has uint8
	if err := read(&has); err != nil {
		return nil, err
	}
	if has == 1 {
		nb := numFaces - numInterior
		for _, dst := range []*[]float32{&m.BNx, &m.BNy, &m.BNz} {
			arr, err := readF32s(nb)
			if err != nil {
				return nil, err
			}
			*dst = arr
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("mesh: loaded mesh invalid: %w", err)
	}
	return m, nil
}

// Save writes the mesh to a file.
func (m *Mesh) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a mesh from a file.
func Load(path string) (*Mesh, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
