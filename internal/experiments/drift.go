package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"tempart/internal/core"
	"tempart/internal/flusim"
	"tempart/internal/mesh"
	"tempart/internal/partition"
	"tempart/internal/taskgraph"
)

// DriftResult studies what the paper's §III-A assumption ("temporal levels
// experience minimal evolution across iterations") buys: a hot region that
// migrates through the mesh slowly degrades a stale MC_TL decomposition. For
// each drift epoch the experiment compares the makespan under the epoch-0
// partition against a freshly recomputed one, quantifying when
// repartitioning becomes worthwhile.
type DriftResult struct {
	Cluster core.Cluster
	Rows    []DriftRow
}

// DriftRow is one drift epoch.
type DriftRow struct {
	Epoch int
	// Shift is the hotspot displacement in domain-length units.
	Shift float64
	// StaleMakespan uses the epoch-0 partition; FreshMakespan repartitions.
	StaleMakespan, FreshMakespan int64
	// DegradationPct = 100·(stale/fresh − 1).
	DegradationPct float64
	// StaleLevelImbalance is the worst per-level imbalance of the stale
	// decomposition at this epoch.
	StaleLevelImbalance float64
}

// Drift runs the study on a CYLINDER-like mesh whose hot core migrates along
// the x axis.
func Drift(p Params) (*DriftResult, error) {
	p = p.withDefaults()
	const (
		domains = 64
		epochs  = 5
	)
	cluster := core.Cluster{NumProcs: 16, WorkersPerProc: 8}
	m := mesh.Cylinder(p.Scale)

	// Epoch-0 partition.
	stale, err := partition.PartitionMesh(context.Background(), m, domains, partition.MCTL, partition.Options{Seed: p.Seed})
	if err != nil {
		return nil, err
	}
	procOf := flusim.BlockMap(domains, cluster.NumProcs)

	res := &DriftResult{Cluster: cluster}
	for e := 0; e < epochs; e++ {
		shift := 0.1 * float64(e) // hotspot centre moves along x
		score := func(x, y, z float64) float64 {
			return distToSegmentXYZ(x, y, z, 0.9+shift, 0.5, 0.5, 1.1+shift, 0.5, 0.5)
		}
		m.ReassignLevels(score, mesh.CylinderCounts)

		staleTG, err := taskgraph.Build(m, stale.Part, domains, taskgraph.Options{})
		if err != nil {
			return nil, err
		}
		staleSim, err := flusim.Simulate(staleTG, procOf, flusim.Config{Cluster: cluster})
		if err != nil {
			return nil, err
		}

		fresh, err := partition.PartitionMesh(context.Background(), m, domains, partition.MCTL, partition.Options{Seed: p.Seed + int64(e)})
		if err != nil {
			return nil, err
		}
		freshTG, err := taskgraph.Build(m, fresh.Part, domains, taskgraph.Options{})
		if err != nil {
			return nil, err
		}
		freshSim, err := flusim.Simulate(freshTG, procOf, flusim.Config{Cluster: cluster})
		if err != nil {
			return nil, err
		}

		gl := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
		staleLvl := partition.NewResult(gl, stale.Part, domains)
		worst := 0.0
		for _, v := range staleLvl.Imbalance() {
			if v > worst {
				worst = v
			}
		}
		res.Rows = append(res.Rows, DriftRow{
			Epoch:               e,
			Shift:               shift,
			StaleMakespan:       staleSim.Makespan,
			FreshMakespan:       freshSim.Makespan,
			DegradationPct:      100 * (float64(staleSim.Makespan)/float64(freshSim.Makespan) - 1),
			StaleLevelImbalance: worst,
		})
	}
	return res, nil
}

// distToSegmentXYZ mirrors the generator geometry helper for drift scoring.
func distToSegmentXYZ(x, y, z, ax, ay, az, bx, by, bz float64) float64 {
	vx, vy, vz := bx-ax, by-ay, bz-az
	wx, wy, wz := x-ax, y-ay, z-az
	vv := vx*vx + vy*vy + vz*vz
	t := 0.0
	if vv > 0 {
		t = (wx*vx + wy*vy + wz*vz) / vv
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	dx, dy, dz := x-(ax+t*vx), y-(ay+t*vy), z-(az+t*vz)
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// String renders the drift table.
func (r *DriftResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Drift study — stale vs fresh MC_TL partition as the hot core migrates (%d procs × %d cores)\n",
		r.Cluster.NumProcs, r.Cluster.WorkersPerProc)
	fmt.Fprintf(&b, "%6s %7s %12s %12s %12s %10s\n", "epoch", "shift", "stale span", "fresh span", "degradation", "stale imb")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %7.2f %12d %12d %11.1f%% %10.2f\n",
			row.Epoch, row.Shift, row.StaleMakespan, row.FreshMakespan, row.DegradationPct, row.StaleLevelImbalance)
	}
	b.WriteString("(epoch 0 ≈ 0%: partition matches; degradation grows with drift ⇒ repartition when it exceeds the partitioning cost)\n")
	return b.String()
}
