package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"tempart/internal/core"
	"tempart/internal/eval"
	"tempart/internal/flusim"
	"tempart/internal/mesh"
	"tempart/internal/partition"
	"tempart/internal/repart"
)

// DriftResult studies what the paper's §III-A assumption ("temporal levels
// experience minimal evolution across iterations") buys: a hot region that
// migrates through the mesh slowly degrades a stale MC_TL decomposition. For
// each drift epoch the experiment compares three policies — keep the stale
// epoch-0 partition, repartition from scratch, and repartition incrementally
// (repart.Auto, warm-started from the previous epoch) — on makespan, edge cut
// and migration volume. Scratch restores quality but redistributes most of
// the mesh; incremental should land near scratch's makespan while moving a
// fraction of the bytes.
type DriftResult struct {
	Cluster core.Cluster `json:"cluster"`
	Rows    []DriftRow   `json:"rows"`
}

// DriftRow is one drift epoch.
type DriftRow struct {
	Epoch int `json:"epoch"`
	// Shift is the hotspot displacement in domain-length units.
	Shift float64 `json:"shift"`
	// StaleMakespan uses the epoch-0 partition; FreshMakespan repartitions
	// from scratch; IncMakespan repartitions incrementally.
	StaleMakespan int64 `json:"stale_makespan"`
	FreshMakespan int64 `json:"fresh_makespan"`
	IncMakespan   int64 `json:"inc_makespan"`
	// DegradationPct = 100·(stale/fresh − 1).
	DegradationPct float64 `json:"degradation_pct"`
	// IncGapPct = 100·(inc/fresh − 1): how far incremental trails scratch.
	IncGapPct float64 `json:"inc_gap_pct"`
	// StaleLevelImbalance is the worst per-level imbalance of the stale
	// decomposition at this epoch.
	StaleLevelImbalance float64 `json:"stale_level_imbalance"`
	// Edge cut of each policy's partition at this epoch.
	StaleEdgeCut int64 `json:"stale_edge_cut"`
	FreshEdgeCut int64 `json:"fresh_edge_cut"`
	IncEdgeCut   int64 `json:"inc_edge_cut"`
	// IncMode is the strategy repart.Auto resolved to.
	IncMode string `json:"inc_mode"`
	// Migration volume of each repartitioning policy, relative to its own
	// previous epoch's assignment.
	ScratchMovedCells int   `json:"scratch_moved_cells"`
	IncMovedCells     int   `json:"inc_moved_cells"`
	ScratchMovedBytes int64 `json:"scratch_moved_bytes"`
	IncMovedBytes     int64 `json:"inc_moved_bytes"`
}

// Drift runs the study on a CYLINDER-like mesh whose hot core migrates along
// the x axis. The context cancels the partitioners mid-run.
func Drift(ctx context.Context, p Params) (*DriftResult, error) {
	p = p.withDefaults()
	const (
		domains = 64
		epochs  = 5
	)
	cluster := core.Cluster{NumProcs: 16, WorkersPerProc: 8}
	m := mesh.Cylinder(p.Scale)

	// Epoch-0 partition: the "stale" assignment every epoch is judged by,
	// and the starting point of both repartitioning chains.
	stale, err := partition.PartitionMesh(ctx, m, domains, partition.MCTL, partition.Options{Seed: p.Seed})
	if err != nil {
		return nil, err
	}
	procOf := flusim.BlockMap(domains, cluster.NumProcs)
	scrPart := append([]int32(nil), stale.Part...)
	incPart := append([]int32(nil), stale.Part...)

	ev := eval.New(eval.Options{})
	simulate := func(part []int32) (*eval.Outcome, error) {
		return ev.Evaluate(eval.Spec{
			Mesh: m, Part: part, NumDomains: domains,
			ProcOf: procOf,
			Sim:    flusim.Config{Cluster: cluster},
		})
	}

	res := &DriftResult{Cluster: cluster}
	for e := 0; e < epochs; e++ {
		shift := 0.1 * float64(e) // hotspot centre moves along x
		score := func(x, y, z float64) float64 {
			return distToSegmentXYZ(x, y, z, 0.9+shift, 0.5, 0.5, 1.1+shift, 0.5, 0.5)
		}
		m.ReassignLevels(score, mesh.CylinderCounts)
		g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
		migBytes := repart.MeshMigrationBytes(m)

		staleSim, err := simulate(stale.Part)
		if err != nil {
			return nil, err
		}

		scr, err := repart.Repartition(ctx, g, partition.NewResult(g, scrPart, domains),
			repart.Options{Mode: repart.Scratch, Part: partition.Options{Seed: p.Seed + int64(e)}, MigBytes: migBytes})
		if err != nil {
			return nil, err
		}
		scrPart = scr.Part
		freshSim, err := simulate(scrPart)
		if err != nil {
			return nil, err
		}

		inc, err := repart.Repartition(ctx, g, partition.NewResult(g, incPart, domains),
			repart.Options{Mode: repart.Auto, Part: partition.Options{Seed: p.Seed + int64(e)}, MigBytes: migBytes})
		if err != nil {
			return nil, err
		}
		incPart = inc.Part
		incSim, err := simulate(incPart)
		if err != nil {
			return nil, err
		}

		staleLvl := partition.NewResult(g, stale.Part, domains)
		worst := 0.0
		for _, v := range staleLvl.Imbalance() {
			if v > worst {
				worst = v
			}
		}
		res.Rows = append(res.Rows, DriftRow{
			Epoch:               e,
			Shift:               shift,
			StaleMakespan:       staleSim.Makespan,
			FreshMakespan:       freshSim.Makespan,
			IncMakespan:         incSim.Makespan,
			DegradationPct:      100 * (float64(staleSim.Makespan)/float64(freshSim.Makespan) - 1),
			IncGapPct:           100 * (float64(incSim.Makespan)/float64(freshSim.Makespan) - 1),
			StaleLevelImbalance: worst,
			StaleEdgeCut:        staleLvl.EdgeCut,
			FreshEdgeCut:        scr.EdgeCut,
			IncEdgeCut:          inc.EdgeCut,
			IncMode:             inc.Mode.String(),
			ScratchMovedCells:   scr.Stats.MovedCells,
			IncMovedCells:       inc.Stats.MovedCells,
			ScratchMovedBytes:   scr.Stats.MovedBytes,
			IncMovedBytes:       inc.Stats.MovedBytes,
		})
	}
	return res, nil
}

// distToSegmentXYZ mirrors the generator geometry helper for drift scoring.
func distToSegmentXYZ(x, y, z, ax, ay, az, bx, by, bz float64) float64 {
	vx, vy, vz := bx-ax, by-ay, bz-az
	wx, wy, wz := x-ax, y-ay, z-az
	vv := vx*vx + vy*vy + vz*vz
	t := 0.0
	if vv > 0 {
		t = (wx*vx + wy*vy + wz*vz) / vv
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	dx, dy, dz := x-(ax+t*vx), y-(ay+t*vy), z-(az+t*vz)
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// String renders the drift table.
func (r *DriftResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Drift study — stale vs scratch vs incremental MC_TL partition as the hot core migrates (%d procs × %d cores)\n",
		r.Cluster.NumProcs, r.Cluster.WorkersPerProc)
	fmt.Fprintf(&b, "%6s %6s %11s %11s %11s %9s %8s %8s %10s %10s %10s\n",
		"epoch", "shift", "stale span", "fresh span", "inc span", "degrad", "inc gap", "mode", "scr moved", "inc moved", "stale imb")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %6.2f %11d %11d %11d %8.1f%% %7.1f%% %8s %10d %10d %10.2f\n",
			row.Epoch, row.Shift, row.StaleMakespan, row.FreshMakespan, row.IncMakespan,
			row.DegradationPct, row.IncGapPct, row.IncMode,
			row.ScratchMovedCells, row.IncMovedCells, row.StaleLevelImbalance)
	}
	b.WriteString("(stale degrades with drift; incremental tracks the fresh makespan while moving far fewer cells than scratch)\n")
	return b.String()
}
