package experiments

import (
	"context"
	"fmt"
	"strings"

	"tempart/internal/core"
	"tempart/internal/flusim"
	"tempart/internal/fv"
	"tempart/internal/partition"
	"tempart/internal/runtime"
	"tempart/internal/trace"
)

// fig5Cluster is the configuration shared by Figures 5, 12 and 13: 6 MPI
// processes of 4 cores each, PPRIME_NOZZLE partitioned into 12 domains.
var fig5Cluster = core.Cluster{NumProcs: 6, WorkersPerProc: 4}

const fig5Domains = 12

// Fig5Result compares the production-style execution (real kernels, measured
// durations replayed on the virtual cluster — the FLUSEPA analogue) against
// the pure FLUSIM simulation (unit costs) on identical parameters. The paper
// reports a ~20% makespan variance with identical scheduling patterns.
type Fig5Result struct {
	SolverMakespanNs int64 // measured-duration replay ("FLUSEPA")
	FlusimMakespan   int64 // unit-cost simulation ("FLUSIM"), in work units
	// VariancePct is |1 − flusim/solver| after normalising both to their
	// total work (the paper's ~20%).
	VariancePct  float64
	SolverGantt  string
	FlusimGantt  string
	MassDriftRel float64
	NumTasks     int
}

// Fig5 runs the comparison.
func Fig5(p Params) (*Fig5Result, error) {
	p = p.withDefaults()
	m, err := core.LoadMesh("PPRIME_NOZZLE", p.Scale)
	if err != nil {
		return nil, err
	}
	d, err := core.Decompose(context.Background(), m, fig5Domains, partition.SCOC, partition.Options{Seed: p.Seed})
	if err != nil {
		return nil, err
	}

	// FLUSEPA analogue: real kernels, measured durations, virtual cluster.
	// Three iterations: per-task minima filter out one-off timer noise.
	sv, err := d.NewSolver(1, runtime.Central, fv.DefaultParams())
	if err != nil {
		return nil, err
	}
	rep, err := sv.Run(3)
	if err != nil {
		return nil, err
	}
	real, err := sv.VirtualMakespan(rep, fig5Cluster, flusim.Eager, true)
	if err != nil {
		return nil, err
	}

	// FLUSIM: unit costs.
	sim, err := d.SimulateWith(fig5Cluster, flusim.Eager, true)
	if err != nil {
		return nil, err
	}

	// Normalise: both makespans divided by their own total work give a
	// dimensionless "schedule stretch"; the variance between the two is the
	// model error FLUSIM makes against measured task durations.
	stretchReal := float64(real.Makespan) / float64(real.TotalWork)
	stretchSim := float64(sim.Makespan) / float64(sim.TotalWork)
	variance := 100 * abs(1-stretchSim/stretchReal)

	return &Fig5Result{
		SolverMakespanNs: real.Makespan,
		FlusimMakespan:   sim.Makespan,
		VariancePct:      variance,
		SolverGantt:      real.Trace.Gantt(p.GanttWidth),
		FlusimGantt:      sim.Trace.Gantt(p.GanttWidth),
		MassDriftRel:     rep.MassDriftRel,
		NumTasks:         sv.TG.NumTasks(),
	}, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// String renders both traces side by side.
func (r *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 5 — FLUSEPA-analogue vs FLUSIM, PPRIME_NOZZLE, %d domains, %d procs × %d cores, SC_OC\n",
		fig5Domains, fig5Cluster.NumProcs, fig5Cluster.WorkersPerProc)
	fmt.Fprintf(&b, "tasks: %d   mass drift: %.2e\n", r.NumTasks, r.MassDriftRel)
	fmt.Fprintf(&b, "solver (measured durations) makespan: %d ns\n", r.SolverMakespanNs)
	fmt.Fprintf(&b, "flusim (unit costs) makespan:          %d units\n", r.FlusimMakespan)
	fmt.Fprintf(&b, "schedule-stretch variance: %.1f%% (paper: ~20%%)\n", r.VariancePct)
	fmt.Fprintf(&b, "\n-- solver trace (digits = subiteration) --\n%s", r.SolverGantt)
	fmt.Fprintf(&b, "\n-- flusim trace --\n%s", r.FlusimGantt)
	return b.String()
}

// Fig6Result demonstrates that idleness persists even with unbounded cores:
// the task graph's shape, not the scheduler, is the bottleneck.
type Fig6Result struct {
	NumProcs int
	Makespan int64
	// MeanActiveShare is the average over processes of (time with ≥1 busy
	// worker)/makespan; < 1 means structural idleness.
	MeanActiveShare float64
	// MinActiveShare is the worst process's share.
	MinActiveShare float64
	Gantt          string
}

// Fig6 simulates 64 processes (1 domain each) with unlimited cores per
// process on the CYLINDER mesh under SC_OC.
func Fig6(p Params) (*Fig6Result, error) {
	p = p.withDefaults()
	m, err := core.LoadMesh("CYLINDER", p.Scale)
	if err != nil {
		return nil, err
	}
	const procs = 64
	d, err := core.Decompose(context.Background(), m, procs, partition.SCOC, partition.Options{Seed: p.Seed})
	if err != nil {
		return nil, err
	}
	sim, err := d.SimulateWith(core.Cluster{NumProcs: procs, WorkersPerProc: 0}, flusim.Eager, true)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{NumProcs: procs, Makespan: sim.Makespan, Gantt: sim.Trace.Gantt(p.GanttWidth)}
	iv := sim.Trace.ProcActiveIntervals()
	min := 1.0
	var sum float64
	for _, spans := range iv {
		var active int64
		for _, s := range spans {
			active += s[1] - s[0]
		}
		share := float64(active) / float64(sim.Makespan)
		sum += share
		if share < min {
			min = share
		}
	}
	res.MeanActiveShare = sum / float64(procs)
	res.MinActiveShare = min
	return res, nil
}

// String renders the unbounded-cores trace.
func (r *Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6 — FLUSIM, %d procs × unbounded cores, CYLINDER, SC_OC, 1 domain/proc\n", r.NumProcs)
	fmt.Fprintf(&b, "makespan: %d units\n", r.Makespan)
	fmt.Fprintf(&b, "mean active share: %.2f   min: %.2f  (idleness persists ⇒ not a scheduling problem)\n",
		r.MeanActiveShare, r.MinActiveShare)
	fmt.Fprintf(&b, "%s", r.Gantt)
	return b.String()
}

// Fig12Result is the FLUSIM SC_OC vs MC_TL comparison on PPRIME_NOZZLE.
type Fig12Result struct {
	SCOCMakespan int64
	MCTLMakespan int64
	GainPct      float64
	SCOCGantt    string
	MCTLGantt    string
}

// Fig12 runs FLUSIM with both strategies on the nozzle configuration.
func Fig12(p Params) (*Fig12Result, error) {
	p = p.withDefaults()
	m, err := core.LoadMesh("PPRIME_NOZZLE", p.Scale)
	if err != nil {
		return nil, err
	}
	r := &Fig12Result{}
	for _, strat := range []partition.Strategy{partition.SCOC, partition.MCTL} {
		d, err := core.Decompose(context.Background(), m, fig5Domains, strat, partition.Options{Seed: p.Seed})
		if err != nil {
			return nil, err
		}
		sim, err := d.SimulateWith(fig5Cluster, flusim.Eager, true)
		if err != nil {
			return nil, err
		}
		if strat == partition.SCOC {
			r.SCOCMakespan, r.SCOCGantt = sim.Makespan, sim.Trace.Gantt(p.GanttWidth)
		} else {
			r.MCTLMakespan, r.MCTLGantt = sim.Makespan, sim.Trace.Gantt(p.GanttWidth)
		}
	}
	r.GainPct = 100 * (1 - float64(r.MCTLMakespan)/float64(r.SCOCMakespan))
	return r, nil
}

// String renders the two traces.
func (r *Fig12Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 12 — FLUSIM, PPRIME_NOZZLE, %d domains, %d procs × %d cores\n",
		fig5Domains, fig5Cluster.NumProcs, fig5Cluster.WorkersPerProc)
	fmt.Fprintf(&b, "SC_OC makespan: %d   MC_TL makespan: %d   gain: %.1f%% (paper: ~20%%)\n",
		r.SCOCMakespan, r.MCTLMakespan, r.GainPct)
	fmt.Fprintf(&b, "\n-- SC_OC --\n%s\n-- MC_TL --\n%s", r.SCOCGantt, r.MCTLGantt)
	return b.String()
}

// Fig13Result is the production validation: the full solver with real
// kernels, measured durations replayed on the virtual cluster, SC_OC vs
// MC_TL.
type Fig13Result struct {
	SCOCMakespanNs int64
	MCTLMakespanNs int64
	GainPct        float64
	SCOCGantt      string
	MCTLGantt      string
	MassDriftSCOC  float64
	MassDriftMCTL  float64
}

// Fig13 runs the production-style comparison.
func Fig13(p Params) (*Fig13Result, error) {
	p = p.withDefaults()
	m, err := core.LoadMesh("PPRIME_NOZZLE", p.Scale)
	if err != nil {
		return nil, err
	}
	r := &Fig13Result{}
	for _, strat := range []partition.Strategy{partition.SCOC, partition.MCTL} {
		d, err := core.Decompose(context.Background(), m, fig5Domains, strat, partition.Options{Seed: p.Seed})
		if err != nil {
			return nil, err
		}
		sv, err := d.NewSolver(1, runtime.Central, fv.DefaultParams())
		if err != nil {
			return nil, err
		}
		rep, err := sv.Run(3)
		if err != nil {
			return nil, err
		}
		virt, err := sv.VirtualMakespan(rep, fig5Cluster, flusim.Eager, true)
		if err != nil {
			return nil, err
		}
		if strat == partition.SCOC {
			r.SCOCMakespanNs, r.SCOCGantt, r.MassDriftSCOC = virt.Makespan, virt.Trace.Gantt(p.GanttWidth), rep.MassDriftRel
		} else {
			r.MCTLMakespanNs, r.MCTLGantt, r.MassDriftMCTL = virt.Makespan, virt.Trace.Gantt(p.GanttWidth), rep.MassDriftRel
		}
	}
	r.GainPct = 100 * (1 - float64(r.MCTLMakespanNs)/float64(r.SCOCMakespanNs))
	return r, nil
}

// String renders the production comparison.
func (r *Fig13Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 13 — production-style solver (real kernels, measured durations), PPRIME_NOZZLE, %d domains, %d procs × %d cores\n",
		fig5Domains, fig5Cluster.NumProcs, fig5Cluster.WorkersPerProc)
	fmt.Fprintf(&b, "SC_OC makespan: %d ns   MC_TL makespan: %d ns   gain: %.1f%% (paper: ~20%%)\n",
		r.SCOCMakespanNs, r.MCTLMakespanNs, r.GainPct)
	fmt.Fprintf(&b, "mass drift: SC_OC %.2e, MC_TL %.2e\n", r.MassDriftSCOC, r.MassDriftMCTL)
	fmt.Fprintf(&b, "\n-- SC_OC --\n%s\n-- MC_TL --\n%s", r.SCOCGantt, r.MCTLGantt)
	return b.String()
}

// renderTraceOrEmpty is a nil-safe Gantt helper used by callers that may
// disable trace recording.
func renderTraceOrEmpty(tr *trace.Trace, width int) string {
	if tr == nil {
		return "(trace not recorded)\n"
	}
	return tr.Gantt(width)
}
