package experiments

import (
	"context"
	"fmt"
	"strings"

	"tempart/internal/core"
	"tempart/internal/flusim"
	"tempart/internal/partition"
)

// fig9Cluster is the Figures 9/11 configuration: 16 processes of 32 cores.
var fig9Cluster = core.Cluster{NumProcs: 16, WorkersPerProc: 32}

// Fig9Result compares SC_OC and MC_TL at 128 domains on CYLINDER and CUBE,
// where the paper reports a ~2× acceleration.
type Fig9Result struct {
	Rows []Fig9Row
}

// Fig9Row is one mesh's comparison.
type Fig9Row struct {
	Mesh         string
	SCOCMakespan int64
	MCTLMakespan int64
	Ratio        float64
	SCOCGantt    string
	MCTLGantt    string
}

// Fig9 runs the 128-domain comparison.
func Fig9(p Params) (*Fig9Result, error) {
	p = p.withDefaults()
	const domains = 128
	res := &Fig9Result{}
	for _, spec := range []struct {
		name  string
		scale float64
	}{{"CYLINDER", p.Scale}, {"CUBE", p.CubeScale}} {
		m, err := core.LoadMesh(spec.name, spec.scale)
		if err != nil {
			return nil, err
		}
		row := Fig9Row{Mesh: spec.name}
		for _, strat := range []partition.Strategy{partition.SCOC, partition.MCTL} {
			d, err := core.Decompose(context.Background(), m, domains, strat, partition.Options{Seed: p.Seed})
			if err != nil {
				return nil, err
			}
			sim, err := d.SimulateWith(fig9Cluster, flusim.Eager, true)
			if err != nil {
				return nil, err
			}
			if strat == partition.SCOC {
				row.SCOCMakespan, row.SCOCGantt = sim.Makespan, sim.Trace.Gantt(p.GanttWidth)
			} else {
				row.MCTLMakespan, row.MCTLGantt = sim.Makespan, sim.Trace.Gantt(p.GanttWidth)
			}
		}
		row.Ratio = float64(row.SCOCMakespan) / float64(row.MCTLMakespan)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders makespans and traces.
func (r *Fig9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 9 — FLUSIM, 128 domains, %d procs × %d cores (paper: ~2× acceleration)\n",
		fig9Cluster.NumProcs, fig9Cluster.WorkersPerProc)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "\n%s: SC_OC=%d  MC_TL=%d  speedup=%.2f×\n", row.Mesh, row.SCOCMakespan, row.MCTLMakespan, row.Ratio)
		fmt.Fprintf(&b, "-- SC_OC --\n%s-- MC_TL --\n%s", row.SCOCGantt, row.MCTLGantt)
	}
	return b.String()
}

// Fig11Result sweeps the domain count: performance ratio MC_TL/SC_OC (a) and
// communication volumes (b).
type Fig11Result struct {
	Cluster core.Cluster
	Rows    []Fig11Row
}

// Fig11Row is one (mesh, domain count) sample.
type Fig11Row struct {
	Mesh         string
	Domains      int
	SCOCMakespan int64
	MCTLMakespan int64
	// SpeedupRatio is SC_OC/MC_TL makespan (>1 means MC_TL wins).
	SpeedupRatio float64
	SCOCCommVol  int64
	MCTLCommVol  int64
}

// Fig11DomainCounts is the sweep grid. The head (few domains) shows MC_TL's
// ratio building up as granularity allows it to exploit its balance; the
// tail shows the paper's observation that finer granularity lets SC_OC
// pipeline around its imbalance, shrinking the ratio again.
var Fig11DomainCounts = []int{16, 32, 64, 128, 256, 512}

// Fig11 runs the sweep on CYLINDER and CUBE.
func Fig11(p Params) (*Fig11Result, error) {
	p = p.withDefaults()
	res := &Fig11Result{Cluster: fig9Cluster}
	for _, spec := range []struct {
		name  string
		scale float64
	}{{"CYLINDER", p.Scale}, {"CUBE", p.CubeScale}} {
		m, err := core.LoadMesh(spec.name, spec.scale)
		if err != nil {
			return nil, err
		}
		for _, domains := range Fig11DomainCounts {
			row := Fig11Row{Mesh: spec.name, Domains: domains}
			for _, strat := range []partition.Strategy{partition.SCOC, partition.MCTL} {
				d, err := core.Decompose(context.Background(), m, domains, strat, partition.Options{Seed: p.Seed})
				if err != nil {
					return nil, err
				}
				sim, err := d.SimulateWith(fig9Cluster, flusim.Eager, false)
				if err != nil {
					return nil, err
				}
				if strat == partition.SCOC {
					row.SCOCMakespan, row.SCOCCommVol = sim.Makespan, sim.CommVolume
				} else {
					row.MCTLMakespan, row.MCTLCommVol = sim.Makespan, sim.CommVolume
				}
			}
			row.SpeedupRatio = float64(row.SCOCMakespan) / float64(row.MCTLMakespan)
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// String renders the sweep table.
func (r *Fig11Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 11 — domain-count sweep, %d procs × %d cores\n", r.Cluster.NumProcs, r.Cluster.WorkersPerProc)
	fmt.Fprintf(&b, "%-10s %8s %12s %12s %9s %12s %12s\n",
		"mesh", "domains", "SC_OC span", "MC_TL span", "ratio", "SC_OC comm", "MC_TL comm")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %8d %12d %12d %8.2fx %12d %12d\n",
			row.Mesh, row.Domains, row.SCOCMakespan, row.MCTLMakespan, row.SpeedupRatio,
			row.SCOCCommVol, row.MCTLCommVol)
	}
	b.WriteString("(paper: ratio > 1 everywhere, decreasing with domain count; MC_TL comm volume above SC_OC)\n")
	return b.String()
}
