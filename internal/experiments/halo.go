package experiments

import (
	"context"
	"fmt"
	"strings"

	"tempart/internal/core"
	"tempart/internal/flusim"
	"tempart/internal/metrics"
	"tempart/internal/partition"
)

// HaloResult is the memory-side complement of Figure 11b: ghost-layer sizes
// per strategy across the domain sweep. Communication *volume* (cut task
// edges) tells how often processes talk; halo size tells how much data each
// exchange carries and how much extra memory every process must hold.
type HaloResult struct {
	NumProcs int
	Rows     []HaloRow
}

// HaloRow is one (strategy, domains) sample.
type HaloRow struct {
	Strategy     string
	Domains      int
	TotalGhosts  int64
	MaxNeighbors int
	// GhostShare is TotalGhosts / cells: the fleet-wide memory overhead.
	GhostShare float64
}

// Halo sweeps ghost-layer statistics on the CYLINDER mesh.
func Halo(p Params) (*HaloResult, error) {
	p = p.withDefaults()
	m, err := core.LoadMesh("CYLINDER", p.Scale)
	if err != nil {
		return nil, err
	}
	const procs = 16
	res := &HaloResult{NumProcs: procs}
	for _, domains := range []int{16, 64, 256} {
		pm := flusim.BlockMap(domains, procs)
		for _, strat := range []partition.Strategy{partition.SCOC, partition.MCTL} {
			r, err := partition.PartitionMesh(context.Background(), m, domains, strat, partition.Options{Seed: p.Seed})
			if err != nil {
				return nil, err
			}
			h := metrics.ComputeHaloStats(m, r.Part, pm, procs)
			res.Rows = append(res.Rows, HaloRow{
				Strategy:     strat.String(),
				Domains:      domains,
				TotalGhosts:  h.TotalGhosts(),
				MaxNeighbors: h.MaxNeighbors(),
				GhostShare:   float64(h.TotalGhosts()) / float64(m.NumCells()),
			})
		}
	}
	return res, nil
}

// String renders the halo table.
func (r *HaloResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Halo study — ghost-layer cost per strategy, CYLINDER, %d procs\n", r.NumProcs)
	fmt.Fprintf(&b, "%-8s %8s %12s %10s %12s\n", "strategy", "domains", "ghosts", "max nbrs", "ghost share")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %8d %12d %10d %11.1f%%\n",
			row.Strategy, row.Domains, row.TotalGhosts, row.MaxNeighbors, 100*row.GhostShare)
	}
	b.WriteString("(ghost share = replicated cells / owned cells, fleet-wide)\n")
	return b.String()
}
