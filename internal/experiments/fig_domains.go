package experiments

import (
	"context"
	"fmt"
	"strings"

	"tempart/internal/core"
	"tempart/internal/flusim"
	"tempart/internal/mesh"
	"tempart/internal/metrics"
	"tempart/internal/partition"
	"tempart/internal/taskgraph"
	"tempart/internal/temporal"
)

// fig7Cluster is the Figures 7/10 configuration: CYLINDER, 16 processes of
// 32 cores, 16 domains (1 per process).
var fig7Cluster = core.Cluster{NumProcs: 16, WorkersPerProc: 32}

const fig7Domains = 16

// DomainCharacteristics carries the two panels of Figures 7 and 10: the
// per-process operating-cost split by temporal level (a) and the per-process
// busy time by subiteration (b).
type DomainCharacteristics struct {
	Strategy string
	// CostByLevel[proc][τ].
	CostByLevel [][]int64
	// BusyBySub[proc][sub].
	BusyBySub [][]int64
	// LevelSpread[τ] = max-over-procs / mean of CostByLevel column τ.
	LevelSpread []float64
	Makespan    int64
}

func domainCharacteristics(p Params, strat partition.Strategy) (*DomainCharacteristics, error) {
	m, err := core.LoadMesh("CYLINDER", p.Scale)
	if err != nil {
		return nil, err
	}
	d, err := core.Decompose(context.Background(), m, fig7Domains, strat, partition.Options{Seed: p.Seed})
	if err != nil {
		return nil, err
	}
	procOf := flusim.BlockMap(fig7Domains, fig7Cluster.NumProcs)
	sim, err := d.SimulateWith(fig7Cluster, flusim.Eager, true)
	if err != nil {
		return nil, err
	}
	cost := metrics.CostByLevelPerProc(m, d.Result.Part, procOf, fig7Cluster.NumProcs)
	return &DomainCharacteristics{
		Strategy:    strat.String(),
		CostByLevel: cost,
		BusyBySub:   sim.Trace.BusyBySubiteration(m.Scheme().NumSubiterations()),
		LevelSpread: metrics.LevelSpread(cost),
		Makespan:    sim.Makespan,
	}, nil
}

func (r *DomainCharacteristics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CYLINDER, %d procs × %d cores, %d domains, %s\n",
		fig7Cluster.NumProcs, fig7Cluster.WorkersPerProc, fig7Domains, r.Strategy)
	fmt.Fprintf(&b, "makespan: %d units\n", r.Makespan)
	fmt.Fprintf(&b, "\n(a) operating cost by temporal level per process\n%s", metrics.FormatCostTable(r.CostByLevel))
	fmt.Fprintf(&b, "level spread (max/mean per τ, 1.0 = even): ")
	for τ, s := range r.LevelSpread {
		fmt.Fprintf(&b, "τ%d=%.2f ", τ, s)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "\n(b) busy time by subiteration per process\n")
	fmt.Fprintf(&b, "proc")
	if len(r.BusyBySub) > 0 {
		for s := range r.BusyBySub[0] {
			fmt.Fprintf(&b, "\tsub%d", s)
		}
	}
	b.WriteByte('\n')
	for p, row := range r.BusyBySub {
		fmt.Fprintf(&b, "%4d", p)
		for _, v := range row {
			fmt.Fprintf(&b, "\t%d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig7 shows SC_OC's skew: balanced totals, segregated levels, subiteration
// starvation.
func Fig7(p Params) (*DomainCharacteristics, error) {
	p = p.withDefaults()
	r, err := domainCharacteristics(p, partition.SCOC)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Fig10 is Fig7's counterpart under MC_TL: every level spread near 1.
func Fig10(p Params) (*DomainCharacteristics, error) {
	p = p.withDefaults()
	return domainCharacteristics(p, partition.MCTL)
}

// Fig8Result contrasts task-graph generation for the first subiteration on a
// two-domain toy mesh partitioned level-segregating vs level-balancing.
type Fig8Result struct {
	// SegTasks / BalTasks count first-subiteration tasks per phase level.
	SegTasksByPhase map[temporal.Level]int
	BalTasksByPhase map[temporal.Level]int
	SegFirstPhase   int
	BalFirstPhase   int
}

// Fig8 reproduces the illustration with a 3-level strip mesh.
func Fig8(Params) (*Fig8Result, error) {
	levels := []temporal.Level{0, 0, 1, 1, 2, 2, 2, 2, 1, 1, 0, 0}
	m := mesh.Strip(levels)
	segPart := []int32{0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0} // domain 1 = all τ2
	balPart := []int32{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1} // mirror halves

	count := func(part []int32) (map[temporal.Level]int, int, error) {
		tg, err := taskgraph.Build(m, part, 2, taskgraph.Options{})
		if err != nil {
			return nil, 0, err
		}
		by := map[temporal.Level]int{}
		for i := range tg.Tasks {
			if tg.Tasks[i].Sub == 0 {
				by[tg.Tasks[i].Tau]++
			}
		}
		return by, by[m.MaxLevel], nil
	}
	r := &Fig8Result{}
	var err error
	if r.SegTasksByPhase, r.SegFirstPhase, err = count(segPart); err != nil {
		return nil, err
	}
	if r.BalTasksByPhase, r.BalFirstPhase, err = count(balPart); err != nil {
		return nil, err
	}
	return r, nil
}

// String renders the per-phase task counts.
func (r *Fig8Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 8 — first-subiteration task generation, 2 domains, 3-level toy mesh\n")
	write := func(label string, by map[temporal.Level]int) {
		fmt.Fprintf(&b, "%-22s", label)
		for τ := temporal.Level(2); ; τ-- {
			fmt.Fprintf(&b, "  phase τ%d: %d tasks", τ, by[τ])
			if τ == 0 {
				break
			}
		}
		b.WriteByte('\n')
	}
	write("SC_OC-like (segregated)", r.SegTasksByPhase)
	write("MC_TL-like (balanced)", r.BalTasksByPhase)
	fmt.Fprintf(&b, "first phase (τ=2) tasks: %d vs %d — balancing multiplies first-phase parallelism\n",
		r.SegFirstPhase, r.BalFirstPhase)
	return b.String()
}
