package experiments

import (
	"fmt"
	"strings"

	"tempart/internal/mesh"
	"tempart/internal/temporal"
)

// Table1Result reproduces the paper's Table I: per-temporal-level cell
// counts, cell fractions and computation fractions for the three meshes.
type Table1Result struct {
	Meshes []MeshStats
}

// MeshStats is one column block of Table I.
type MeshStats struct {
	Name       string
	TotalCells int
	// Cells[τ], CellPct[τ], ComputePct[τ] index by temporal level.
	Cells      []int64
	CellPct    []float64
	ComputePct []float64
	// PaperCellPct / PaperComputePct are the published full-scale values
	// for side-by-side comparison.
	PaperCellPct    []float64
	PaperComputePct []float64
}

// paperPct precomputes the published fractions from the published censuses.
func paperPct(counts []int64) (cellPct, compPct []float64) {
	var tot, work int64
	max := len(counts) - 1
	for τ, c := range counts {
		tot += c
		work += c << (max - τ)
	}
	cellPct = make([]float64, len(counts))
	compPct = make([]float64, len(counts))
	for τ, c := range counts {
		cellPct[τ] = 100 * float64(c) / float64(tot)
		compPct[τ] = 100 * float64(c<<(max-τ)) / float64(work)
	}
	return cellPct, compPct
}

// Table1 generates the three meshes and tabulates their level statistics.
func Table1(p Params) (*Table1Result, error) {
	p = p.withDefaults()
	specs := []struct {
		name   string
		scale  float64
		counts []int64
	}{
		{"CYLINDER", p.Scale, mesh.CylinderCounts},
		{"CUBE", p.CubeScale, mesh.CubeCounts},
		{"PPRIME_NOZZLE", p.Scale, mesh.NozzleCounts},
	}
	res := &Table1Result{}
	for _, s := range specs {
		m, err := mesh.ByName(s.name, s.scale)
		if err != nil {
			return nil, err
		}
		census := m.Census()
		scheme := m.Scheme()
		var tot, work int64
		for τ, c := range census {
			tot += c
			work += c * int64(scheme.Cost(temporal.Level(τ)))
		}
		st := MeshStats{
			Name:       s.name,
			TotalCells: m.NumCells(),
			Cells:      census,
			CellPct:    make([]float64, len(census)),
			ComputePct: make([]float64, len(census)),
		}
		st.PaperCellPct, st.PaperComputePct = paperPct(s.counts)
		for τ, c := range census {
			st.CellPct[τ] = 100 * float64(c) / float64(tot)
			st.ComputePct[τ] = 100 * float64(c*int64(scheme.Cost(temporal.Level(τ)))) / float64(work)
		}
		res.Meshes = append(res.Meshes, st)
	}
	return res, nil
}

// String renders the table.
func (r *Table1Result) String() string {
	var b strings.Builder
	for _, m := range r.Meshes {
		fmt.Fprintf(&b, "%s — %d cells\n", m.Name, m.TotalCells)
		fmt.Fprintf(&b, "  %-14s", "level")
		for τ := range m.Cells {
			fmt.Fprintf(&b, "\tτ=%d", τ)
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "  %-14s", "#cells")
		for _, c := range m.Cells {
			fmt.Fprintf(&b, "\t%d", c)
		}
		b.WriteByte('\n')
		row := func(label string, got, paper []float64) {
			fmt.Fprintf(&b, "  %-14s", label)
			for τ := range got {
				fmt.Fprintf(&b, "\t%.1f%%", got[τ])
			}
			fmt.Fprintf(&b, "\n  %-14s", "  (paper)")
			for τ := range paper {
				fmt.Fprintf(&b, "\t%.1f%%", paper[τ])
			}
			b.WriteByte('\n')
		}
		row("%cells", m.CellPct, m.PaperCellPct)
		row("%computation", m.ComputePct, m.PaperComputePct)
		b.WriteByte('\n')
	}
	return b.String()
}
