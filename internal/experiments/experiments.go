// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment has a dedicated function returning a printable
// result whose fields are also consumed programmatically by the benchmark
// harness and by cmd/experiments.
//
// Experiments run at a configurable mesh scale (Params.Scale; 1.0 = the
// paper's full cell counts, default 0.01) because the shapes under study —
// who wins, by what factor, how ratios move with domain count — are scale-
// stable, while full-size runs take minutes on one core. EXPERIMENTS.md
// records measured-vs-paper values.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Params control the whole suite.
type Params struct {
	// Scale multiplies the paper's mesh cell counts; default 0.01.
	Scale float64
	// CubeScale overrides Scale for the (already small) CUBE mesh;
	// default 20·Scale capped at 1.
	CubeScale float64
	// Seed drives all randomised components.
	Seed int64
	// GanttWidth is the rendered trace width in characters; default 96.
	GanttWidth int
}

func (p Params) withDefaults() Params {
	if p.Scale <= 0 {
		p.Scale = 0.01
	}
	if p.CubeScale <= 0 {
		p.CubeScale = p.Scale * 20
		if p.CubeScale > 1 {
			p.CubeScale = 1
		}
	}
	if p.GanttWidth <= 0 {
		p.GanttWidth = 96
	}
	return p
}

// Runner is the signature every experiment implements. The context cancels
// long partitioning or simulation phases mid-run.
type Runner func(context.Context, Params) (fmt.Stringer, error)

// registry maps experiment ids to runners.
var registry = map[string]Runner{
	"table1": func(_ context.Context, p Params) (fmt.Stringer, error) { return Table1(p) },
	"fig5":   func(_ context.Context, p Params) (fmt.Stringer, error) { return Fig5(p) },
	"fig6":   func(_ context.Context, p Params) (fmt.Stringer, error) { return Fig6(p) },
	"fig7":   func(_ context.Context, p Params) (fmt.Stringer, error) { return Fig7(p) },
	"fig8":   func(_ context.Context, p Params) (fmt.Stringer, error) { return Fig8(p) },
	"fig9":   func(_ context.Context, p Params) (fmt.Stringer, error) { return Fig9(p) },
	"fig10":  func(_ context.Context, p Params) (fmt.Stringer, error) { return Fig10(p) },
	"fig11":  func(_ context.Context, p Params) (fmt.Stringer, error) { return Fig11(p) },
	"fig12":  func(_ context.Context, p Params) (fmt.Stringer, error) { return Fig12(p) },
	"fig13":  func(_ context.Context, p Params) (fmt.Stringer, error) { return Fig13(p) },
	// Extensions beyond the paper's figures:
	"drift": func(ctx context.Context, p Params) (fmt.Stringer, error) { return Drift(ctx, p) },
	"halo":  func(_ context.Context, p Params) (fmt.Stringer, error) { return Halo(p) },
}

// IDs returns the known experiment identifiers, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run dispatches an experiment by id ("table1", "fig5", ... or "all").
func Run(ctx context.Context, id string, p Params) (string, error) {
	if id == "all" {
		var b strings.Builder
		for _, each := range IDs() {
			out, err := Run(ctx, each, p)
			if err != nil {
				return "", fmt.Errorf("%s: %w", each, err)
			}
			fmt.Fprintf(&b, "========== %s ==========\n%s\n", each, out)
		}
		return b.String(), nil
	}
	r, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	res, err := r(ctx, p)
	if err != nil {
		return "", err
	}
	return res.String(), nil
}
