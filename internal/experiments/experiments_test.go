package experiments

import (
	"context"
	"strings"
	"testing"
)

// tiny returns fast parameters for CI-speed experiment tests.
func tiny() Params { return Params{Scale: 0.001, CubeScale: 0.05, Seed: 1, GanttWidth: 40} }

func TestIDsComplete(t *testing.T) {
	want := []string{"drift", "fig10", "fig11", "fig12", "fig13", "fig5", "fig6", "fig7", "fig8", "fig9", "halo", "table1"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run(context.Background(), "fig99", tiny()); err == nil {
		t.Fatal("accepted unknown experiment")
	}
}

func TestTable1FractionsMatchPaper(t *testing.T) {
	r, err := Table1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Meshes) != 3 {
		t.Fatalf("meshes = %d", len(r.Meshes))
	}
	for _, m := range r.Meshes {
		for τ := range m.CellPct {
			if d := m.CellPct[τ] - m.PaperCellPct[τ]; d > 1.5 || d < -1.5 {
				t.Errorf("%s τ%d cell%% %.1f vs paper %.1f", m.Name, τ, m.CellPct[τ], m.PaperCellPct[τ])
			}
			if d := m.ComputePct[τ] - m.PaperComputePct[τ]; d > 2.5 || d < -2.5 {
				t.Errorf("%s τ%d compute%% %.1f vs paper %.1f", m.Name, τ, m.ComputePct[τ], m.PaperComputePct[τ])
			}
		}
	}
	if !strings.Contains(r.String(), "CYLINDER") {
		t.Error("render missing mesh name")
	}
}

func TestFig5VarianceBounded(t *testing.T) {
	r, err := Fig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// The unit-cost model should track measured durations within a loose
	// bound (the paper saw 20%; tiny meshes and Go timers are noisier).
	if r.VariancePct > 60 {
		t.Errorf("schedule-stretch variance %.1f%% implausibly high", r.VariancePct)
	}
	if r.MassDriftRel > 1e-9 {
		t.Errorf("mass drift %.2e", r.MassDriftRel)
	}
	if !strings.Contains(r.String(), "FLUSIM") {
		t.Error("render missing content")
	}
}

func TestFig6IdlenessPersists(t *testing.T) {
	r, err := Fig6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// The whole point: even unbounded cores leave structural idle periods.
	if r.MeanActiveShare >= 0.95 {
		t.Errorf("mean active share %.2f — no structural idleness visible", r.MeanActiveShare)
	}
	if r.MinActiveShare >= r.MeanActiveShare {
		t.Errorf("min %.2f >= mean %.2f", r.MinActiveShare, r.MeanActiveShare)
	}
}

func TestFig7SkewVsFig10Balance(t *testing.T) {
	f7, err := Fig7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	f10, err := Fig10(tiny())
	if err != nil {
		t.Fatal(err)
	}
	worst := func(spread []float64) float64 {
		w := 0.0
		for _, s := range spread {
			if s > w {
				w = s
			}
		}
		return w
	}
	w7, w10 := worst(f7.LevelSpread), worst(f10.LevelSpread)
	if w10 >= w7 {
		t.Errorf("MC_TL level spread %.2f not better than SC_OC %.2f", w10, w7)
	}
	// MC_TL should be close to even; SC_OC strongly skewed.
	if w10 > 2.0 {
		t.Errorf("MC_TL worst spread %.2f, want <= 2", w10)
	}
	if w7 < 2.0 {
		t.Errorf("SC_OC worst spread %.2f, want >= 2 (skew expected)", w7)
	}
	// Makespan improves.
	if f10.Makespan >= f7.Makespan {
		t.Errorf("MC_TL makespan %d not better than SC_OC %d", f10.Makespan, f7.Makespan)
	}
}

func TestFig8Counts(t *testing.T) {
	r, err := Fig8(Params{})
	if err != nil {
		t.Fatal(err)
	}
	if r.BalFirstPhase <= r.SegFirstPhase {
		t.Errorf("balanced first phase %d not above segregated %d", r.BalFirstPhase, r.SegFirstPhase)
	}
	// The paper's illustration shows 2 segregated tasks (faces+cells of the
	// single active domain); here the τ2 domain borders the other domain,
	// so its border cells split off an external cell task → 3.
	if r.SegFirstPhase != 3 {
		t.Errorf("segregated τ2 tasks = %d, want 3", r.SegFirstPhase)
	}
	if r.BalFirstPhase < 4 {
		t.Errorf("balanced τ2 tasks = %d, want >= 4", r.BalFirstPhase)
	}
}

func TestFig9MCTLWins(t *testing.T) {
	r, err := Fig9(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Ratio <= 1.0 {
			t.Errorf("%s: MC_TL did not win (ratio %.2f)", row.Mesh, row.Ratio)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	r, err := Fig11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2*len(Fig11DomainCounts) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.SpeedupRatio <= 0.9 {
			t.Errorf("%s k=%d: ratio %.2f — MC_TL should not lose badly", row.Mesh, row.Domains, row.SpeedupRatio)
		}
		if row.MCTLCommVol <= row.SCOCCommVol {
			t.Errorf("%s k=%d: MC_TL comm %d not above SC_OC %d", row.Mesh, row.Domains, row.MCTLCommVol, row.SCOCCommVol)
		}
	}
}

func TestFig12Gain(t *testing.T) {
	r, err := Fig12(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if r.GainPct <= 0 {
		t.Errorf("MC_TL gain %.1f%%, want positive", r.GainPct)
	}
}

func TestFig13ProductionGain(t *testing.T) {
	// Fig13 replays *measured* durations, so it is sensitive to machine
	// load (a background process inflates one strategy's timings); tasks
	// must also be large enough for Go timers (see EXPERIMENTS.md). One
	// retry absorbs transient interference without hiding real regressions.
	var r *Fig13Result
	var err error
	for attempt := 0; attempt < 2; attempt++ {
		r, err = Fig13(Params{Scale: 0.01, CubeScale: 0.05, Seed: 1, GanttWidth: 40})
		if err != nil {
			t.Fatal(err)
		}
		if r.GainPct > 0 {
			break
		}
		t.Logf("attempt %d: gain %.1f%% — retrying (load interference?)", attempt, r.GainPct)
	}
	if r.GainPct <= 0 {
		t.Errorf("production MC_TL gain %.1f%%, want positive", r.GainPct)
	}
	if r.MassDriftSCOC > 1e-9 || r.MassDriftMCTL > 1e-9 {
		t.Error("mass drift in production run")
	}
}

func TestRunAllRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("slow aggregate")
	}
	out, err := Run(context.Background(), "all", tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range IDs() {
		if !strings.Contains(out, "========== "+id+" ==========") {
			t.Errorf("aggregate output missing %s", id)
		}
	}
}

func TestDriftDegradesMonotonically(t *testing.T) {
	r, err := Drift(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Epoch 0: stale == fresh partition quality territory (same partition
	// problem); degradation should be small.
	if d := r.Rows[0].DegradationPct; d > 20 {
		t.Errorf("epoch-0 degradation %.1f%%, want small", d)
	}
	// By the last epoch the stale partition must be clearly worse than
	// fresh, and its level imbalance visibly degraded vs epoch 0.
	last := r.Rows[len(r.Rows)-1]
	if last.DegradationPct < 10 {
		t.Errorf("final degradation %.1f%%, want >= 10%% (drift should hurt)", last.DegradationPct)
	}
	if last.StaleLevelImbalance <= r.Rows[0].StaleLevelImbalance {
		t.Errorf("stale imbalance did not grow: %.2f -> %.2f",
			r.Rows[0].StaleLevelImbalance, last.StaleLevelImbalance)
	}
	// Incremental chain: every epoch resolves a mode and produces a
	// schedule; across the drifting epochs it migrates fewer cells in total
	// than the scratch chain.
	var incMoved, scrMoved int
	for _, row := range r.Rows {
		if row.IncMode == "" || row.IncMakespan <= 0 {
			t.Errorf("epoch %d: incomplete incremental row %+v", row.Epoch, row)
		}
		if row.Epoch >= 1 {
			incMoved += row.IncMovedCells
			scrMoved += row.ScratchMovedCells
		}
	}
	if incMoved >= scrMoved {
		t.Errorf("incremental moved %d cells in total, scratch %d — expected fewer", incMoved, scrMoved)
	}
}

func TestHaloExperiment(t *testing.T) {
	r, err := Halo(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// At equal domain count, MC_TL's halo is at least SC_OC's; and halos
	// grow with domain count for both.
	byKey := map[string]int64{}
	for _, row := range r.Rows {
		byKey[row.Strategy+string(rune('0'+row.Domains/16))] = row.TotalGhosts
	}
	for _, row := range r.Rows {
		if row.GhostShare <= 0 || row.GhostShare > 1.5 {
			t.Errorf("implausible ghost share %v", row.GhostShare)
		}
	}
	if !strings.Contains(r.String(), "ghost share") {
		t.Error("render incomplete")
	}
}
