package core_test

import (
	"context"
	"fmt"

	"tempart/internal/core"
	"tempart/internal/partition"
)

// Example walks the paper's pipeline end to end: load a mesh with temporal
// levels, partition it with the multi-constraint temporal-level strategy,
// and simulate the resulting task graph on a virtual cluster.
func Example() {
	m, err := core.LoadMesh("CUBE", 0.02)
	if err != nil {
		fmt.Println(err)
		return
	}
	d, err := core.Decompose(context.Background(), m, 4, partition.MCTL, partition.Options{Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	sim, err := d.Simulate(core.Cluster{NumProcs: 2, WorkersPerProc: 4})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("domains:", d.Result.NumParts)
	fmt.Println("levels balanced:", d.Quality.LevelImbalance[0] < 2.0)
	fmt.Println("schedule respects bounds:", sim.Makespan >= sim.CriticalPath)
	// Output:
	// domains: 4
	// levels balanced: true
	// schedule respects bounds: true
}
