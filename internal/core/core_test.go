package core

import (
	"context"
	"testing"

	"tempart/internal/flusim"
	"tempart/internal/fv"
	"tempart/internal/partition"
	"tempart/internal/runtime"
)

func TestLoadMesh(t *testing.T) {
	m, err := LoadMesh("CUBE", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCells() == 0 {
		t.Fatal("empty mesh")
	}
	if _, err := LoadMesh("nope", 1); err == nil {
		t.Fatal("accepted unknown mesh")
	}
}

func TestDecomposeAndSimulate(t *testing.T) {
	m, _ := LoadMesh("CUBE", 0.05)
	d, err := Decompose(context.Background(), m, 8, partition.MCTL, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Quality.NumDomains != 8 {
		t.Errorf("quality domains = %d", d.Quality.NumDomains)
	}
	sim, err := d.Simulate(Cluster{NumProcs: 4, WorkersPerProc: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Makespan <= 0 || sim.Trace == nil {
		t.Error("degenerate simulation")
	}
	if sim.Efficiency <= 0 || sim.Efficiency > 1 {
		t.Errorf("efficiency = %v, want (0,1]", sim.Efficiency)
	}
	if sim.CommVolume < 0 {
		t.Error("negative comm volume")
	}
}

func TestTaskGraphCached(t *testing.T) {
	m, _ := LoadMesh("CUBE", 0.02)
	d, err := Decompose(context.Background(), m, 2, partition.SCOC, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.TaskGraph()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := d.TaskGraph()
	if a != b {
		t.Error("TaskGraph not cached")
	}
}

func TestCompareDefaults(t *testing.T) {
	m, _ := LoadMesh("CYLINDER", 0.001)
	rows, err := Compare(context.Background(), m, CompareConfig{
		NumDomains: 8,
		Cluster:    Cluster{NumProcs: 4, WorkersPerProc: 4},
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want default [SC_OC MC_TL]", len(rows))
	}
	if rows[0].Strategy != partition.SCOC || rows[1].Strategy != partition.MCTL {
		t.Error("default strategy order wrong")
	}
	if rows[0].Speedup != 1.0 {
		t.Errorf("baseline speedup = %v, want 1", rows[0].Speedup)
	}
	if rows[1].Speedup <= 1.0 {
		t.Errorf("MC_TL speedup = %.2f, want > 1", rows[1].Speedup)
	}
	if rows[1].CommVolume <= rows[0].CommVolume {
		t.Errorf("MC_TL comm volume %d not above SC_OC %d", rows[1].CommVolume, rows[0].CommVolume)
	}
}

func TestNewSolverThroughDecomposition(t *testing.T) {
	m, _ := LoadMesh("CUBE", 0.02)
	d, err := Decompose(context.Background(), m, 4, partition.MCTL, partition.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.NewSolver(2, runtime.WorkStealing, fv.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MassDriftRel > 1e-10 {
		t.Errorf("mass drift %.3e", rep.MassDriftRel)
	}
}

func TestSimulateWithUnbounded(t *testing.T) {
	m, _ := LoadMesh("CUBE", 0.02)
	d, _ := Decompose(context.Background(), m, 4, partition.SCOC, partition.Options{})
	sim, err := d.SimulateWith(Cluster{NumProcs: 4}, flusim.Eager, false)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Efficiency != 0 {
		t.Errorf("unbounded efficiency = %v, want 0", sim.Efficiency)
	}
}

func TestCompareAllStrategies(t *testing.T) {
	m, _ := LoadMesh("CUBE", 0.1)
	rows, err := Compare(context.Background(), m, CompareConfig{
		NumDomains: 16,
		Cluster:    Cluster{NumProcs: 4, WorkersPerProc: 8},
		Strategies: []partition.Strategy{
			partition.SCOC, partition.MCTL, partition.UnitCells,
			partition.GeomRCB, partition.SFC,
		},
		Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// MC_TL must have the best makespan of the five.
	best := rows[0].Makespan
	for _, r := range rows {
		if r.Makespan < best {
			best = r.Makespan
		}
	}
	if rows[1].Strategy != partition.MCTL || rows[1].Makespan != best {
		t.Errorf("MC_TL not the best strategy: %+v", rows)
	}
}
