// Package core is the public face of the library: a high-level API that
// wires meshes, partitioning strategies, task-graph generation, simulation
// and the task-distributed solver into a few calls. Examples and command-
// line tools consume this package; the specialised packages underneath
// remain usable directly for fine-grained control.
//
// The typical flow mirrors the paper's Figure 2:
//
//	m := core.LoadMesh("CYLINDER", 0.01)          // mesh + temporal levels
//	d, _ := core.Decompose(ctx, m, 128, partition.MCTL, partition.Options{})
//	sim, _ := d.Simulate(core.Cluster{NumProcs: 16, WorkersPerProc: 32})
//	fmt.Println(sim.Makespan, d.Quality.LevelImbalance)
package core

import (
	"context"
	"fmt"

	"tempart/internal/flusim"
	"tempart/internal/fv"
	"tempart/internal/mesh"
	"tempart/internal/metrics"
	"tempart/internal/partition"
	"tempart/internal/runtime"
	"tempart/internal/solver"
	"tempart/internal/taskgraph"
)

// Cluster re-exports the simulator's cluster shape.
type Cluster = flusim.Cluster

// LoadMesh generates one of the paper's synthetic meshes ("CYLINDER",
// "CUBE", "PPRIME_NOZZLE") at the given scale (1.0 = the paper's full cell
// counts).
func LoadMesh(name string, scale float64) (*mesh.Mesh, error) {
	return mesh.ByName(name, scale)
}

// Decomposition bundles a partitioned mesh with its quality metrics and a
// lazily built task graph.
type Decomposition struct {
	Mesh     *mesh.Mesh
	Strategy partition.Strategy
	Result   *partition.Result
	Quality  metrics.PartitionQuality

	parallelism int
	tg          *taskgraph.TaskGraph
}

// Decompose partitions the mesh into k domains under the given strategy and
// evaluates partition quality. Cancelling ctx aborts the partitioning at the
// next trial/coarsening/refinement boundary and returns the context error —
// this is what lets tempartd stop runaway jobs when a client disconnects.
func Decompose(ctx context.Context, m *mesh.Mesh, k int, strat partition.Strategy, opt partition.Options) (*Decomposition, error) {
	res, err := partition.PartitionMesh(ctx, m, k, strat, opt)
	if err != nil {
		return nil, err
	}
	return &Decomposition{
		Mesh:        m,
		Strategy:    strat,
		Result:      res,
		Quality:     metrics.EvaluatePartition(m, res, strat.String()),
		parallelism: opt.Parallelism,
	}, nil
}

// TaskGraph returns the decomposition's one-iteration task DAG (built on
// first use, cached).
func (d *Decomposition) TaskGraph() (*taskgraph.TaskGraph, error) {
	if d.tg == nil {
		tg, err := taskgraph.Build(d.Mesh, d.Result.Part, d.Result.NumParts,
			taskgraph.Options{Parallelism: d.parallelism})
		if err != nil {
			return nil, err
		}
		d.tg = tg
	}
	return d.tg, nil
}

// SimulationReport is the outcome of a FLUSIM run over a decomposition.
type SimulationReport struct {
	*flusim.Result
	// CommVolume is the estimated inter-process communication (cut
	// task-graph edges).
	CommVolume int64
	// Efficiency is TotalWork / (Makespan · cores); 1.0 is a perfectly
	// packed schedule. Zero when the cluster is unbounded.
	Efficiency float64
}

// Simulate schedules the decomposition's task graph on a cluster with the
// eager strategy and a block domain→process map, recording the trace.
func (d *Decomposition) Simulate(cluster Cluster) (*SimulationReport, error) {
	return d.SimulateWith(cluster, flusim.Eager, true)
}

// SimulateWith exposes the scheduling strategy and trace switch.
func (d *Decomposition) SimulateWith(cluster Cluster, strat flusim.Strategy, recordTrace bool) (*SimulationReport, error) {
	tg, err := d.TaskGraph()
	if err != nil {
		return nil, err
	}
	procOf := flusim.BlockMap(d.Result.NumParts, cluster.NumProcs)
	res, err := flusim.Simulate(tg, procOf, flusim.Config{
		Cluster: cluster, Strategy: strat, RecordTrace: recordTrace,
	})
	if err != nil {
		return nil, err
	}
	rep := &SimulationReport{
		Result:     res,
		CommVolume: metrics.CommVolume(tg, procOf),
	}
	if !cluster.Unbounded() && res.Makespan > 0 {
		cores := int64(cluster.NumProcs) * int64(cluster.WorkersPerProc)
		rep.Efficiency = float64(res.TotalWork) / (float64(res.Makespan) * float64(cores))
	}
	return rep, nil
}

// NewSolver builds the task-distributed FV solver over this exact
// decomposition (the partition is reused, not recomputed).
func (d *Decomposition) NewSolver(workers int, policy runtime.Policy, params fv.Params) (*solver.Solver, error) {
	return solver.NewFromPartition(d.Mesh, d.Result, solver.Config{
		Strategy: d.Strategy,
		Workers:  workers,
		Policy:   policy,
		FV:       params,
	})
}

// StrategyOutcome is one row of a strategy comparison.
type StrategyOutcome struct {
	Strategy       partition.Strategy
	Makespan       int64
	Speedup        float64 // vs the first strategy in the comparison
	EdgeCut        int64
	CommVolume     int64
	Efficiency     float64
	LevelImbalance []float64
	MaxFragments   int
	NumTasks       int
}

// CompareConfig parameterises Compare.
type CompareConfig struct {
	NumDomains int
	Cluster    Cluster
	Strategies []partition.Strategy
	Seed       int64
	Scheduler  flusim.Strategy
}

// Compare runs the same mesh through several partitioning strategies and
// simulates each on the same cluster — the experiment pattern behind the
// paper's Figures 9, 11 and 12.
func Compare(ctx context.Context, m *mesh.Mesh, cfg CompareConfig) ([]StrategyOutcome, error) {
	if len(cfg.Strategies) == 0 {
		cfg.Strategies = []partition.Strategy{partition.SCOC, partition.MCTL}
	}
	var out []StrategyOutcome
	var base int64
	for i, strat := range cfg.Strategies {
		d, err := Decompose(ctx, m, cfg.NumDomains, strat, partition.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("core: %v: %w", strat, err)
		}
		sim, err := d.SimulateWith(cfg.Cluster, cfg.Scheduler, false)
		if err != nil {
			return nil, fmt.Errorf("core: %v: %w", strat, err)
		}
		tg, err := d.TaskGraph()
		if err != nil {
			return nil, err
		}
		if i == 0 {
			base = sim.Makespan
		}
		out = append(out, StrategyOutcome{
			Strategy:       strat,
			Makespan:       sim.Makespan,
			Speedup:        float64(base) / float64(sim.Makespan),
			EdgeCut:        d.Result.EdgeCut,
			CommVolume:     sim.CommVolume,
			Efficiency:     sim.Efficiency,
			LevelImbalance: d.Quality.LevelImbalance,
			MaxFragments:   d.Quality.MaxFragments(),
			NumTasks:       tg.NumTasks(),
		})
	}
	return out, nil
}
