// Package server implements tempartd, the partition-as-a-service daemon:
// an HTTP front-end over internal/core.Decompose with a bounded worker
// pool, FIFO admission queue (429 + Retry-After on overflow), singleflight
// deduplication of identical in-flight requests, a content-addressed LRU
// result cache (SHA-256 of mesh bytes + canonicalized options), request
// cancellation threaded down into the multilevel partitioner, and a
// Prometheus-format observability surface.
//
// Endpoints:
//
//	POST   /v1/partition        run a partition job (sync; ?async=1 for a job id)
//	POST   /v1/repartition      warm-started incremental repartition
//	GET    /v1/jobs/{id}        job status; embeds the result when done
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/meshes           the named generators the daemon can serve
//	GET    /buildinfo           module version, VCS revision, Go version
//	GET    /healthz             liveness (503 while draining)
//	GET    /metrics             Prometheus text format
//
// Every instrumented response carries an X-Request-Id header (echoing the
// client's, or generated); Config.AccessLog receives one structured line per
// exchange. Partition and repartition requests accept ?debug=trace: the job
// then runs with a private span recorder, bypasses the result cache, and the
// response gains a "debug" block with per-phase timings and counters. The
// per-phase totals of traced requests also feed the tempartd_pipeline_*
// series on /metrics.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	goruntime "runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tempart/internal/cluster"
	"tempart/internal/eval"
	"tempart/internal/mesh"
	"tempart/internal/obs"
	"tempart/internal/store"
)

// Config sizes the daemon. Zero values take the documented defaults.
type Config struct {
	// Workers is the partition worker-pool size. Default: GOMAXPROCS.
	Workers int
	// QueueDepth bounds the FIFO admission queue; a full queue answers 429
	// with Retry-After. Default 64.
	QueueDepth int
	// CacheBytes budgets the content-addressed result cache. Default 256 MiB.
	CacheBytes int64
	// PartStoreBytes budgets the partition store (encoded results kept for
	// repartition warm starts, addressed by part_hash). Default 128 MiB.
	PartStoreBytes int64
	// MaxBodyBytes caps request bodies (mesh uploads). Default 64 MiB.
	MaxBodyBytes int64
	// DefaultTimeout caps per-job execution; requests may only shorten it.
	// Default 5 minutes.
	DefaultTimeout time.Duration
	// JobRetention is how many finished jobs stay queryable. Default 1024.
	JobRetention int
	// MaxParallelism caps the intra-request worker goroutines of the
	// partitioner (partition.Options.Parallelism); requests may only lower
	// it. The default, max(1, GOMAXPROCS/Workers), composes with the
	// admission queue's worker pool: Workers concurrent jobs × the
	// per-request cap stays near the core count instead of oversubscribing.
	MaxParallelism int
	// AccessLog, when non-nil, receives one structured line per instrumented
	// HTTP exchange (method, path, endpoint label, status, duration,
	// request id). Nil disables access logging entirely.
	AccessLog *slog.Logger

	// TraceSampleRate is the flight recorder's head-sampling rate in [0, 1]:
	// the fraction of fresh (non-debug, non-peer-hop) jobs that run with a
	// span recorder and land in the /v1/traces ring. 0 (the default) keeps
	// only explicit ?debug=trace requests; sampling never changes response
	// bytes.
	TraceSampleRate float64
	// TraceRingSize is how many completed request traces the flight recorder
	// retains (plus the slowest seen, pinned). Default 64.
	TraceRingSize int

	// NodeID names this daemon in a fleet: it stamps run manifests, subtree
	// replies and (via store.Options.NodeID) provenance entries. Empty for a
	// single-node daemon.
	NodeID string
	// Cluster, when non-nil, makes the daemon one shard of a static-
	// membership fleet: content-addressed requests route to owner shards,
	// eligible large requests fan their bisection subtrees across peers, and
	// the /v1/internal/* and /v1/cluster/status endpoints come alive. Nil
	// keeps the daemon fully single-node.
	Cluster *cluster.Cluster

	// Store, when non-nil, is the daemon's durability tier: uploaded meshes,
	// partition results and response payloads persist to it on write (batched
	// commits, hash-chained provenance), the in-memory LRUs become
	// read-through caches over it, and async jobs journal their lifecycle so
	// a restart over the same store resumes interrupted work. The server uses
	// the store but does not own it: callers Close it after Shutdown.
	Store *store.Store

	// execGate, when set, runs inside the worker before partitioning; tests
	// use it to hold jobs at a deterministic point.
	execGate func(context.Context, *PartitionRequest) error
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = goruntime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.PartStoreBytes <= 0 {
		c.PartStoreBytes = 128 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 1024
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = goruntime.GOMAXPROCS(0) / c.Workers
		if c.MaxParallelism < 1 {
			c.MaxParallelism = 1
		}
	}
	return c
}

// clampParallelism resolves a request's parallelism against the server cap:
// 0 (the default) takes the cap itself, anything else may only lower it.
func (c Config) clampParallelism(requested int) int {
	if requested <= 0 || requested > c.MaxParallelism {
		return c.MaxParallelism
	}
	return requested
}

// Server is the daemon state. Create with New, serve with Handler, stop
// with Shutdown.
type Server struct {
	cfg     Config
	cache   *resultCache
	parts   *resultCache // encoded partition results by content hash
	metrics *serverMetrics
	// eval scores assignments for requests carrying an "evaluate" spec. It
	// is shared across jobs so its task-graph cache survives between
	// requests: meshes are keyed by stable content ids (generator name+scale
	// or upload digest), so re-scoring the same decomposition — notably a
	// repartition in "keep" mode — skips graph construction entirely.
	eval *eval.Evaluator
	// obsAgg accumulates per-phase seconds and pipeline counters drained from
	// the recorders of ?debug=trace jobs; rendered on /metrics.
	obsAgg *obs.Agg
	// flight is the always-on ring of recently completed request span trees
	// (?debug=trace jobs, head-sampled jobs, sampled subtree RPCs), served at
	// /v1/traces/*.
	flight *obs.FlightRecorder
	// store is the optional durability tier (Config.Store); nil means the
	// daemon is purely in-memory, exactly as before.
	store *store.Store
	// cluster is the optional fleet view (Config.Cluster); nil means every
	// cluster hook is a no-op.
	cluster *cluster.Cluster
	// ready flips true once the store's journal replay has re-queued
	// interrupted jobs; /readyz gates on it.
	ready atomic.Bool

	queue    chan *job
	wg       sync.WaitGroup
	inflight atomic.Int64
	seq      atomic.Int64
	reqSeq   atomic.Int64

	mu       sync.Mutex
	flights  map[cacheKey]*job
	jobs     map[string]*job
	jobOrder []string
	draining bool
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   newResultCache(cfg.CacheBytes),
		parts:   newResultCache(cfg.PartStoreBytes),
		metrics: newServerMetrics(),
		eval:    eval.New(eval.Options{Parallelism: cfg.MaxParallelism}),
		obsAgg:  obs.NewAgg("tempartd_pipeline"),
		flight:  obs.NewFlightRecorder(cfg.TraceRingSize, cfg.TraceSampleRate),
		store:   cfg.Store,
		cluster: cfg.Cluster,
		queue:   make(chan *job, cfg.QueueDepth),
		flights: map[cacheKey]*job{},
		jobs:    map[string]*job{},
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	// Replay the job journal before declaring readiness: interrupted jobs are
	// back in the queue (or re-registered terminal) before /readyz says yes.
	s.recoverJobs()
	s.ready.Store(true)
	return s
}

// Handler returns the daemon's route table. Method mismatches yield 405
// via the Go 1.22 pattern router.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/partition", s.instrument("/v1/partition", s.handlePartition))
	mux.HandleFunc("POST /v1/repartition", s.instrument("/v1/repartition", s.handleRepartition))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("/v1/jobs", s.handleJobGet))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("/v1/jobs", s.handleJobCancel))
	mux.HandleFunc("GET /v1/meshes", s.instrument("/v1/meshes", s.handleMeshes))
	mux.HandleFunc("GET /v1/traces/recent", s.instrument("/v1/traces", s.handleTracesRecent))
	mux.HandleFunc("GET /v1/traces/{request_id}", s.instrument("/v1/traces", s.handleTraceGet))
	mux.HandleFunc("GET /buildinfo", s.instrument("/buildinfo", s.handleBuildinfo))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cluster != nil {
		mux.HandleFunc("POST /v1/internal/subtree", s.instrument("/v1/internal/subtree", s.handleSubtree))
		mux.HandleFunc("GET /v1/internal/cache/{key}", s.instrument("/v1/internal/cache", s.handleCacheProbe))
		mux.HandleFunc("GET /v1/cluster/status", s.instrument("/v1/cluster/status", s.handleClusterStatus))
	}
	return mux
}

// Shutdown drains the daemon: new work is refused (503), queued and running
// jobs finish, workers exit. It returns nil once everything drained, or
// ctx's error if the deadline passes first (remaining jobs are then
// cancelled so the process can exit promptly).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		close(s.queue)
	}

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return s.flushStore()
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.flights {
			j.cancel()
		}
		s.mu.Unlock()
		<-done
		_ = s.flushStore()
		return ctx.Err()
	}
}

// flushStore forces the store's batcher to commit everything the drained
// workers wrote, so a SIGTERM never loses acknowledged state. It runs after
// wg.Wait — no worker can add commits behind the flush barrier.
func (s *Server) flushStore() error {
	if s.store == nil {
		return nil
	}
	return s.store.Flush(context.Background())
}

// instrument wraps a handler with request counting by endpoint, method and
// code, assigns each exchange a request id echoed as X-Request-Id (the
// client's own id is honoured when present), and emits one access-log line
// when the server has a logger.
func (s *Server) instrument(endpoint string, h func(http.ResponseWriter, *http.Request) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			// A node-id prefix keeps server-generated ids unique across a
			// fleet, so stitched traces and cross-node provenance never
			// collide on "req-00000001" from two members.
			if s.cfg.NodeID != "" {
				id = fmt.Sprintf("%s-req-%08x", s.cfg.NodeID, s.reqSeq.Add(1))
			} else {
				id = fmt.Sprintf("req-%08x", s.reqSeq.Add(1))
			}
		}
		w.Header().Set("X-Request-Id", id)
		start := time.Now()
		code := h(w, r)
		elapsed := time.Since(start)
		s.metrics.countRequest(endpoint, r.Method, code)
		s.metrics.observeHTTP(endpoint, elapsed.Seconds())
		if s.cfg.AccessLog != nil {
			s.cfg.AccessLog.Info("request",
				"id", id,
				"node", s.cfg.NodeID,
				"method", r.Method,
				"path", r.URL.Path,
				"endpoint", endpoint,
				"status", code,
				"duration_ms", elapsed.Milliseconds(),
				"remote", r.RemoteAddr,
			)
		}
	}
}

// writeJSON emits a JSON response with the given status and returns the
// status for instrumentation.
func writeJSON(w http.ResponseWriter, code int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
	return code
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) int {
	return writeJSON(w, code, errorBody{Error: msg})
}

// retryAfterSeconds estimates how long until queue space frees up: one
// average job per worker, floored at 1s. Kept deliberately simple — the
// point is to give load balancers a backoff signal, not a promise.
func (s *Server) retryAfterSeconds() int {
	return 1 + s.cfg.QueueDepth/(2*s.cfg.Workers)
}

// readRequestBody buffers a request body (up to one byte over the cap, so
// the decoders' own limit checks still fire with their usual messages). The
// raw bytes are what a cluster member replays verbatim when it forwards the
// request to its owner shard.
func readRequestBody(body io.Reader, maxBody int64) ([]byte, error) {
	raw, err := io.ReadAll(&io.LimitedReader{R: body, N: maxBody + 1})
	if err != nil {
		return nil, badRequest("reading request body: %v", err)
	}
	return raw, nil
}

func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) int {
	raw, err := readRequestBody(r.Body, s.cfg.MaxBodyBytes)
	if err != nil {
		return writeDecodeError(w, err)
	}
	req, err := decodePartitionRequest(r.Header.Get("Content-Type"), r.URL.Query(), bytes.NewReader(raw), s.cfg.MaxBodyBytes)
	if err != nil {
		return writeDecodeError(w, err)
	}
	return s.serveJob(w, r, req, raw)
}

// handleRepartition shares the partition endpoint's whole flow — caching,
// admission, singleflight, backpressure, cancellation — over a warm-started
// incremental repartition job.
func (s *Server) handleRepartition(w http.ResponseWriter, r *http.Request) int {
	raw, err := readRequestBody(r.Body, s.cfg.MaxBodyBytes)
	if err != nil {
		return writeDecodeError(w, err)
	}
	req, err := decodeRepartitionRequest(r.Header.Get("Content-Type"), r.URL.Query(), bytes.NewReader(raw), s.cfg.MaxBodyBytes)
	if err != nil {
		return writeDecodeError(w, err)
	}
	return s.serveJob(w, r, req, raw)
}

func writeDecodeError(w http.ResponseWriter, err error) int {
	var rerr *requestError
	if errors.As(err, &rerr) {
		return writeError(w, rerr.code, rerr.msg)
	}
	return writeError(w, http.StatusBadRequest, err.Error())
}

// serveJob runs a decoded request through cache, admission and (a)sync wait.
// ?debug=trace bypasses the cache and singleflight on both ends: the traced
// job is private (its payload carries a per-request debug block that would be
// wrong to share or cache) and runs with its own span recorder.
func (s *Server) serveJob(w http.ResponseWriter, r *http.Request, req jobRequest, rawBody []byte) int {
	// The request id rides into the job (and from there across every peer
	// hop a cluster member makes on the job's behalf).
	base := req.base()
	base.requestID = w.Header().Get("X-Request-Id")
	// Adopt the incoming trace context, if any: a peer hop (forward, subtree
	// fan-out, cache probe) carries the head node's sampling decision, and
	// this node obeys it rather than re-rolling its own.
	if tc, ok := obs.ParseTraceContext(r.Header.Get(cluster.HeaderTrace)); ok {
		base.trace = tc
	}
	_, isSubtree := req.(*subtreeRequest)
	if isSubtree && base.trace.Sampled {
		// A sampled subtree RPC runs privately with a recorder so its reply
		// can ship the span snapshot back to the coordinator. The reply then
		// embeds per-run spans, so — exactly like ?debug=trace — it must
		// never enter the shared cache or the durable store.
		base.debugTrace = true
	}
	if r.URL.Query().Get("debug") == "trace" {
		base.debugTrace = true
	}
	if !base.debugTrace {
		// Content-addressed cache first: a hit costs one map lookup.
		key := req.key()
		if payload, ok := s.cache.get(key); ok {
			s.metrics.countCache(true)
			w.Header().Set("X-Tempartd-Cache", "hit")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(payload)
			return http.StatusOK
		}
		s.metrics.countCache(false)
		// Read through to the durable store: a result computed before an LRU
		// eviction — or before a restart — is served without recomputation and
		// re-warms the cache.
		if s.store != nil {
			if payload, ok := s.store.Get(store.NSResult, resultStoreKey(key)); ok {
				s.cache.put(key, payload)
				w.Header().Set("X-Tempartd-Cache", "store")
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusOK)
				_, _ = w.Write(payload)
				return http.StatusOK
			}
		}
	}

	// Cluster routing after the local caches miss: forward to the owner
	// shard (or probe its cache when this request already made its one hop).
	if code, handled := s.clusterRoute(w, r, req, rawBody); handled {
		return code
	}

	// Trace-context head: a job about to run locally with no inherited
	// context either starts a sampled trace (flight-recorder head sampling —
	// deterministic stride, no RNG, so response bytes never depend on it) or,
	// for ?debug=trace, always gets one so a fan-out stitches spans back.
	// Subtree RPCs never self-sample: they obey their coordinator's bit.
	if !base.trace.Valid() && !isSubtree && (base.debugTrace || s.flight.SampleHead()) {
		base.trace = obs.TraceContext{ID: base.requestID, Sampled: true}
	}
	base.sampled = base.trace.Sampled

	j, err := s.acquireJob(req)
	switch {
	case errors.Is(err, errQueueFull):
		s.metrics.countRejected()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		return writeError(w, http.StatusTooManyRequests, "admission queue full; retry later")
	case errors.Is(err, errDraining):
		return writeError(w, http.StatusServiceUnavailable, "server is draining")
	case err != nil:
		return writeError(w, http.StatusInternalServerError, err.Error())
	}

	if r.URL.Query().Get("async") == "1" {
		// Durable-before-202: the submitted record (and the mesh blob for
		// uploads) must be on stable storage before the daemon acknowledges
		// the job — an acknowledged async job is never lost to a crash.
		if err := s.journalSubmit(r.Context(), j); err != nil {
			s.releaseJob(j)
			return writeError(w, http.StatusInternalServerError,
				"journaling submission: "+err.Error())
		}
		// The async submitter's reference is held until completion or an
		// explicit DELETE; the job outlives this HTTP exchange.
		return writeJSON(w, http.StatusAccepted, map[string]string{
			"job_id": j.id,
			"status": j.getState().String(),
			"url":    "/v1/jobs/" + j.id,
		})
	}

	select {
	case <-j.done:
		s.releaseJob(j)
		return s.writeJobOutcome(w, j)
	case <-r.Context().Done():
		// Client went away: drop our reference. If we were the last party,
		// the job's context is cancelled and the partitioner unwinds at its
		// next boundary. Nothing useful can be written to a dead client.
		s.releaseJob(j)
		return statusClientClosedRequest
	}
}

// writeJobOutcome renders a completed job.
func (s *Server) writeJobOutcome(w http.ResponseWriter, j *job) int {
	if j.getState() == jobDone {
		w.Header().Set("X-Tempartd-Cache", "miss")
		w.Header().Set("X-Tempartd-Elapsed-Ms", strconv.FormatInt(j.elapsed.Milliseconds(), 10))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(j.payload)
		return http.StatusOK
	}
	code := j.status
	if code == 0 {
		code = http.StatusInternalServerError
	}
	return writeError(w, code, j.errMsg)
}

// jobView is the /v1/jobs/{id} representation.
type jobView struct {
	ID        string          `json:"id"`
	State     string          `json:"state"`
	Mesh      string          `json:"mesh,omitempty"`
	K         int             `json:"k"`
	Strategy  string          `json:"strategy"`
	CreatedMS int64           `json:"created_unix_ms"`
	ElapsedMS int64           `json:"elapsed_ms,omitempty"`
	Error     string          `json:"error,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

func (s *Server) lookupJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) int {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		return writeError(w, http.StatusNotFound, "unknown job id")
	}
	base := j.req.base()
	v := jobView{
		ID:        j.id,
		State:     j.getState().String(),
		Mesh:      base.MeshName,
		K:         base.K,
		Strategy:  base.Strategy,
		CreatedMS: j.created.UnixMilli(),
	}
	select {
	case <-j.done:
		v.ElapsedMS = j.elapsed.Milliseconds()
		v.Error = j.errMsg
		if j.getState() == jobDone {
			v.Result = json.RawMessage(j.payload)
		}
	default:
	}
	return writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) int {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		return writeError(w, http.StatusNotFound, "unknown job id")
	}
	select {
	case <-j.done:
		return writeJSON(w, http.StatusConflict, map[string]string{
			"state": j.getState().String(), "error": "job already finished",
		})
	default:
	}
	// Cancel unconditionally: an explicit DELETE overrides other waiters.
	j.cancel()
	return writeJSON(w, http.StatusAccepted, map[string]string{"state": "cancelling"})
}

// meshView describes one named generator for /v1/meshes.
type meshView struct {
	Name           string `json:"name"`
	Description    string `json:"description"`
	CellsFullScale int    `json:"cells_full_scale"`
	TemporalLevels int    `json:"temporal_levels"`
}

func (s *Server) handleMeshes(w http.ResponseWriter, r *http.Request) int {
	sum := func(counts []int64) int {
		var t int64
		for _, c := range counts {
			t += c
		}
		return int(t)
	}
	return writeJSON(w, http.StatusOK, map[string]any{"meshes": []meshView{
		{Name: "CYLINDER", Description: "graded cylinder with a single hot core (paper Table I)",
			CellsFullScale: sum(mesh.CylinderCounts), TemporalLevels: len(mesh.CylinderCounts)},
		{Name: "CUBE", Description: "cube with three disjoint hotspots (paper Table I)",
			CellsFullScale: sum(mesh.CubeCounts), TemporalLevels: len(mesh.CubeCounts)},
		{Name: "PPRIME_NOZZLE", Description: "nozzle/jet plume cone (paper Table I)",
			CellsFullScale: sum(mesh.NozzleCounts), TemporalLevels: len(mesh.NozzleCounts)},
	}})
}

// handleBuildinfo reports what binary is answering: module version, VCS
// revision and time, Go version, platform. Operators correlate this with
// deploys before reading any other metric.
func (s *Server) handleBuildinfo(w http.ResponseWriter, r *http.Request) int {
	return writeJSON(w, http.StatusOK, obs.ReadBuildInfo())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 only once the store (when
// configured) has opened and its journal replay re-queued interrupted jobs,
// and 503 again while draining. Load balancers use it to gate traffic;
// /healthz stays the liveness signal.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	switch {
	case draining:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case !s.ready.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "starting", "reason": "journal replay in progress"})
	default:
		durable := "none"
		if s.store != nil {
			durable = "open"
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready", "store": durable})
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	bytes, entries := s.cache.stats()
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.render(w, gauges{
		queueDepth:   len(s.queue),
		inflight:     s.inflight.Load(),
		cacheBytes:   bytes,
		cacheEntries: entries,
		draining:     draining,
	})
	if s.store != nil {
		renderStoreMetrics(w, s.store.Stats())
	}
	if s.cluster != nil {
		s.cluster.RenderMetrics(w)
	}
	s.obsAgg.RenderProm(w)
	obs.RenderRuntimeMetrics(w)
}

// String identifies the server in logs.
func (s *Server) String() string {
	return fmt.Sprintf("tempartd(workers=%d queue=%d cache=%dMiB)",
		s.cfg.Workers, s.cfg.QueueDepth, s.cfg.CacheBytes>>20)
}
