package server

import (
	"context"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"tempart/internal/eval"
	"tempart/internal/flusim"
	"tempart/internal/mesh"
	"tempart/internal/obs"
)

// Evaluation limits. The simulated cluster and the DAG depth bound how much
// a single request can make the evaluation pipeline allocate.
const (
	maxEvalProcs      = 1 << 12
	maxEvalWorkers    = 1 << 10
	maxEvalIterations = 8
	maxEvalLatency    = 1 << 30
)

// EvalSpec asks the daemon to score the computed assignment through the
// evaluation pipeline (task graph + FLUSIM) in the same response: the
// partition's task DAG is built (or fetched from the server's graph cache)
// and scheduled on the simulated cluster. On JSON requests it arrives as the
// "evaluate" object; on octet-stream uploads as eval_* query parameters.
type EvalSpec struct {
	// Procs is the number of simulated processes. Required (≥ 1).
	Procs int `json:"procs"`
	// Workers is cores per process; 0 simulates unbounded cores (the
	// paper's idealised FLUSIM configuration).
	Workers int `json:"workers,omitempty"`
	// Scheduler picks the ready-queue policy ("eager", "lifo", "cpf",
	// "random"); empty means eager.
	Scheduler string `json:"scheduler,omitempty"`
	// CommLatency charges every cross-process dependency edge this many
	// time units; 0 reproduces the paper's communication-free FLUSIM.
	CommLatency int64 `json:"comm_latency,omitempty"`
	// Seed drives the "random" scheduler.
	Seed int64 `json:"seed,omitempty"`
	// Iterations chains several solver iterations into the DAG (0 → 1).
	Iterations int `json:"iterations,omitempty"`

	sched flusim.Strategy
}

// EvalResult is the evaluation block of partition and repartition responses.
type EvalResult struct {
	Scheduler    string `json:"scheduler"`
	Procs        int    `json:"procs"`
	Workers      int    `json:"workers"`
	Iterations   int    `json:"iterations"`
	Makespan     int64  `json:"makespan"`
	CriticalPath int64  `json:"critical_path"`
	TotalWork    int64  `json:"total_work"`
	CommVolume   int64  `json:"comm_volume"`
	// Efficiency is work / (makespan · cores); omitted when unbounded.
	Efficiency float64 `json:"efficiency,omitempty"`
	NumTasks   int     `json:"num_tasks"`
	NumDeps    int     `json:"num_deps"`
	BuildMS    float64 `json:"build_ms"`
	SimulateMS float64 `json:"simulate_ms"`
	// GraphCached reports whether the task graph came from the daemon's
	// graph cache instead of being rebuilt (e.g. a repartition in "keep"
	// mode re-scoring its parent's assignment).
	GraphCached bool `json:"graph_cached"`
}

// validate applies limits and resolves the scheduler enum, canonicalizing
// the label so equivalent spellings share a cache key.
func (e *EvalSpec) validate() error {
	if e.Procs < 1 || e.Procs > maxEvalProcs {
		return badRequest("evaluate.procs = %d out of range [1, %d]", e.Procs, maxEvalProcs)
	}
	if e.Workers < 0 || e.Workers > maxEvalWorkers {
		return badRequest("evaluate.workers = %d out of range [0, %d]", e.Workers, maxEvalWorkers)
	}
	sched, err := flusim.ParseStrategy(orDefault(e.Scheduler, "eager"))
	if err != nil {
		return badRequest("evaluate.scheduler: %v", err)
	}
	e.sched = sched
	e.Scheduler = sched.String()
	if e.CommLatency < 0 || e.CommLatency > maxEvalLatency {
		return badRequest("evaluate.comm_latency = %d out of range [0, %d]", e.CommLatency, maxEvalLatency)
	}
	if e.Iterations < 0 || e.Iterations > maxEvalIterations {
		return badRequest("evaluate.iterations = %d out of range [0, %d]", e.Iterations, maxEvalIterations)
	}
	if e.Iterations == 0 {
		e.Iterations = 1
	}
	return nil
}

// hashInto folds the canonical spec into a request content address. Only
// called on validated (canonical) specs.
func (e *EvalSpec) hashInto(h io.Writer) {
	fmt.Fprintf(h, "eval\x00procs=%d workers=%d sched=%s lat=%d seed=%d iters=%d\x00",
		e.Procs, e.Workers, e.Scheduler, e.CommLatency, e.Seed, e.Iterations)
}

// evalFromQuery builds an EvalSpec from eval_* query parameters, or nil when
// none are present (evaluation is opt-in).
func evalFromQuery(q url.Values) (*EvalSpec, error) {
	present := false
	for _, name := range []string{"eval_procs", "eval_workers", "eval_scheduler",
		"eval_comm_latency", "eval_seed", "eval_iterations"} {
		if q.Get(name) != "" {
			present = true
			break
		}
	}
	if !present {
		return nil, nil
	}
	e := &EvalSpec{Scheduler: q.Get("eval_scheduler")}
	geti := func(name string, dst *int) error {
		if s := q.Get(name); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				return badRequest("query %s: %v", name, err)
			}
			*dst = v
		}
		return nil
	}
	get64 := func(name string, dst *int64) error {
		if s := q.Get(name); s != "" {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return badRequest("query %s: %v", name, err)
			}
			*dst = v
		}
		return nil
	}
	if err := geti("eval_procs", &e.Procs); err != nil {
		return nil, err
	}
	if err := geti("eval_workers", &e.Workers); err != nil {
		return nil, err
	}
	if err := geti("eval_iterations", &e.Iterations); err != nil {
		return nil, err
	}
	if err := get64("eval_comm_latency", &e.CommLatency); err != nil {
		return nil, err
	}
	if err := get64("eval_seed", &e.Seed); err != nil {
		return nil, err
	}
	return e, nil
}

// evalMeshID is the stable mesh identity used to key the daemon's graph
// cache: uploads are addressed by their content digest, generators by
// name+scale. Stable IDs are what let a repartition request reuse the graph
// its parent's partition built, even though the mesh is re-materialised into
// a fresh allocation per job.
func (r *PartitionRequest) evalMeshID() string {
	if r.Uploaded != nil {
		return "tmsh:" + hex.EncodeToString(r.meshDigest[:])
	}
	return fmt.Sprintf("gen:%s:%g", r.MeshName, r.Scale)
}

// runEval scores an assignment on the simulated cluster through the server's
// shared evaluator. Domains map to processes in contiguous blocks, the
// mapping FLUSEPA uses after partitioning.
func (s *Server) runEval(ctx context.Context, spec *EvalSpec, m *mesh.Mesh, meshID string, part []int32, k int) (*EvalResult, *requestError) {
	out, err := s.eval.Evaluate(eval.Spec{
		Mesh:       m,
		MeshID:     meshID,
		Part:       part,
		NumDomains: k,
		Iterations: spec.Iterations,
		ProcOf:     flusim.BlockMap(k, spec.Procs),
		Obs:        obs.FromContext(ctx),
		Sim: flusim.Config{
			Cluster:     flusim.Cluster{NumProcs: spec.Procs, WorkersPerProc: spec.Workers},
			Strategy:    spec.sched,
			Seed:        spec.Seed,
			CommLatency: spec.CommLatency,
		},
	})
	if err != nil {
		return nil, &requestError{code: http.StatusInternalServerError,
			msg: fmt.Sprintf("evaluating partition: %v", err)}
	}
	s.metrics.countEval(out.GraphCached)
	return &EvalResult{
		Scheduler:    spec.Scheduler,
		Procs:        spec.Procs,
		Workers:      spec.Workers,
		Iterations:   spec.Iterations,
		Makespan:     out.Makespan,
		CriticalPath: out.CriticalPath,
		TotalWork:    out.TotalWork,
		CommVolume:   out.CommVolume,
		Efficiency:   out.Efficiency,
		NumTasks:     out.NumTasks,
		NumDeps:      out.NumDeps,
		BuildMS:      out.BuildSeconds * 1000,
		SimulateMS:   out.SimulateSeconds * 1000,
		GraphCached:  out.GraphCached,
	}, nil
}
