package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"tempart/internal/mesh"
	"tempart/internal/temporal"
)

func postRepart(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/repartition", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/repartition: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, b
}

// TestRepartitionWarmStartChain drives the intended workflow: partition once,
// quote the returned part_hash back to /v1/repartition, and get an
// incremental result plus migration stats.
func TestRepartitionWarmStartChain(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp, body := postJSON(t, ts.URL, smallReq(7))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partition: status %d body %s", resp.StatusCode, body)
	}
	var pr PartitionResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.PartHash) != 64 {
		t.Fatalf("partition response part_hash = %q, want 64 hex chars", pr.PartHash)
	}

	req := fmt.Sprintf(`{"mesh":"CYLINDER","scale":0.002,"k":4,"strategy":"MC_TL","options":{"seed":8},"parent_hash":%q}`, pr.PartHash)
	resp2, body2 := postRepart(t, ts.URL, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repartition: status %d body %s", resp2.StatusCode, body2)
	}
	var rr RepartitionResponse
	if err := json.Unmarshal(body2, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.ParentHash != pr.PartHash {
		t.Fatalf("response parent_hash = %q, want %q", rr.ParentHash, pr.PartHash)
	}
	if len(rr.PartHash) != 64 {
		t.Fatalf("repartition part_hash = %q, want 64 hex chars", rr.PartHash)
	}
	if len(rr.Part) != rr.Mesh.Cells || rr.Mesh.Cells == 0 {
		t.Fatalf("len(part) = %d, cells = %d", len(rr.Part), rr.Mesh.Cells)
	}
	switch rr.Mode {
	case "keep", "diffuse", "refine", "scratch":
	default:
		t.Fatalf("unresolved mode %q", rr.Mode)
	}
	if rr.Migration.TotalCells != rr.Mesh.Cells {
		t.Fatalf("migration stats cover %d cells, mesh has %d", rr.Migration.TotalCells, rr.Mesh.Cells)
	}
	if rr.MaxImbalance < 1 {
		t.Fatalf("max_imbalance = %v, want >= 1", rr.MaxImbalance)
	}

	// The new result is itself stored: chain a second repartition off it.
	req3 := fmt.Sprintf(`{"mesh":"CYLINDER","scale":0.002,"k":4,"strategy":"MC_TL","options":{"seed":9},"parent_hash":%q,"mode":"refine"}`, rr.PartHash)
	resp3, body3 := postRepart(t, ts.URL, req3)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("chained repartition: status %d body %s", resp3.StatusCode, body3)
	}

	m := fetchMetrics(t, ts.URL)
	for _, want := range []string{
		"tempartd_repart_runs_total{mode=",
		"tempartd_repart_latency_seconds_bucket{mode=",
		"tempartd_repart_migration_bytes_count 2",
		"tempartd_repart_parent_hits_total 2",
		"tempartd_repart_parent_misses_total 0",
		"tempartd_repart_warm_start_hit_ratio 1",
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("metrics missing %q:\n%s", want, m)
		}
	}
}

func TestRepartitionInlineParent(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	m := mesh.Cylinder(0.002)
	n := m.NumCells()
	// A deliberately lopsided parent: first half part 0, second half part 1.
	parent := make([]string, n)
	for i := range parent {
		parent[i] = "0"
		if i >= n/2 {
			parent[i] = "1"
		}
	}
	req := fmt.Sprintf(`{"mesh":"CYLINDER","scale":0.002,"k":2,"strategy":"SC_OC","options":{"seed":3},"parent":[%s],"mode":"auto"}`,
		strings.Join(parent, ","))
	resp, body := postRepart(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	var rr RepartitionResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Mode == "scratch" {
		t.Fatalf("auto resolved to scratch for a mild imbalance")
	}

	// Inline parents never touch the store, so no warm-start lookups counted.
	mtx := fetchMetrics(t, ts.URL)
	if strings.Contains(mtx, "tempartd_repart_warm_start_hit_ratio") {
		t.Fatalf("inline parent must not contribute to warm-start ratio:\n%s", mtx)
	}
}

// TestRepartitionNegativePenalty: migration_penalty = -1 is in the accepted
// range and documented to disable the bias; the job must complete instead of
// panicking on the worker goroutine (which took the whole daemon down).
func TestRepartitionNegativePenalty(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	m := mesh.Cylinder(0.002)
	n := m.NumCells()
	parent := make([]string, n)
	for i := range parent {
		parent[i] = "0"
		if i >= n/2 {
			parent[i] = "1"
		}
	}
	for _, mode := range []string{"diffuse", "refine", "auto"} {
		req := fmt.Sprintf(`{"mesh":"CYLINDER","scale":0.002,"k":2,"strategy":"MC_TL","options":{"seed":5},"parent":[%s],"mode":%q,"migration_penalty":-1}`,
			strings.Join(parent, ","), mode)
		resp, body := postRepart(t, ts.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mode %s: status %d body %s", mode, resp.StatusCode, body)
		}
		var rr RepartitionResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		if len(rr.Part) != n {
			t.Fatalf("mode %s: len(part) = %d, want %d", mode, len(rr.Part), n)
		}
	}
}

func TestRepartitionUnknownParentHash(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	req := `{"mesh":"CYLINDER","scale":0.002,"k":4,"strategy":"MC_TL","parent_hash":"` + strings.Repeat("ab", 32) + `"}`
	resp, body := postRepart(t, ts.URL, req)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404; body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "parent") {
		t.Fatalf("error body should mention the parent: %s", body)
	}
	m := fetchMetrics(t, ts.URL)
	if !strings.Contains(m, "tempartd_repart_parent_misses_total 1") {
		t.Fatalf("expected one parent miss:\n%s", m)
	}
}

func TestRepartitionCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, body := postJSON(t, ts.URL, smallReq(11))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partition: status %d", resp.StatusCode)
	}
	var pr PartitionResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	req := fmt.Sprintf(`{"mesh":"CYLINDER","scale":0.002,"k":4,"strategy":"MC_TL","options":{"seed":12},"parent_hash":%q}`, pr.PartHash)

	r1, b1 := postRepart(t, ts.URL, req)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first repartition: status %d body %s", r1.StatusCode, b1)
	}
	if got := r1.Header.Get("X-Tempartd-Cache"); got != "miss" {
		t.Fatalf("first repartition cache header = %q, want miss", got)
	}
	r2, b2 := postRepart(t, ts.URL, req)
	if got := r2.Header.Get("X-Tempartd-Cache"); got != "hit" {
		t.Fatalf("second repartition cache header = %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cached repartition returned different bytes")
	}

	// Changing only the mode is a different content address: miss again.
	r3, _ := postRepart(t, ts.URL, strings.Replace(req, `"parent_hash"`, `"mode":"scratch","parent_hash"`, 1))
	if got := r3.Header.Get("X-Tempartd-Cache"); r3.StatusCode == http.StatusOK && got == "hit" {
		t.Fatalf("distinct mode must not hit the cache")
	}
}

func TestRepartitionValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	hash := strings.Repeat("cd", 32)
	base := `"mesh":"CYLINDER","scale":0.002,"k":4,"strategy":"MC_TL"`
	cases := []struct {
		name, body string
		wantSubstr string
	}{
		{"neither parent", `{` + base + `}`, "exactly one of"},
		{"both parents", `{` + base + `,"parent_hash":"` + hash + `","parent":[0,1,2,3]}`, "exactly one of"},
		{"bad mode", `{` + base + `,"parent_hash":"` + hash + `","mode":"sideways"}`, "mode"},
		{"penalty out of range", `{` + base + `,"parent_hash":"` + hash + `","migration_penalty":1e6}`, "migration_penalty"},
		{"parent value out of range", `{` + base + `,"parent":[0,1,2,99]}`, "parent[3]"},
		{"geometric strategy", `{"mesh":"CYLINDER","scale":0.002,"k":4,"strategy":"GEOM_RCB","parent_hash":"` + hash + `"}`, "no graph constraints"},
		{"short hash", `{` + base + `,"parent_hash":"abc123"}`, "hex"},
		{"unknown field", `{` + base + `,"parent_hash":"` + hash + `","grandparent":"x"}`, "unknown"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postRepart(t, ts.URL, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
			}
			if !strings.Contains(string(body), tc.wantSubstr) {
				t.Fatalf("error %s does not mention %q", body, tc.wantSubstr)
			}
		})
	}
}

// TestRepartitionOctetStream uploads a mesh, partitions it, then repartitions
// the same upload warm-started via query parameters.
func TestRepartitionOctetStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	m := mesh.Strip([]temporal.Level{0, 0, 1, 1, 2, 2, 0, 1})
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/partition?k=2&strategy=SC_OC&seed=4",
		"application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload partition: status %d body %s", resp.StatusCode, body)
	}
	var pr PartitionResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}

	resp2, err := http.Post(ts.URL+"/v1/repartition?k=2&strategy=SC_OC&seed=5&mode=refine&parent_hash="+pr.PartHash,
		"application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("upload repartition: status %d body %s", resp2.StatusCode, body2)
	}
	var rr RepartitionResponse
	if err := json.Unmarshal(body2, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Part) != m.NumCells() {
		t.Fatalf("len(part) = %d, want %d", len(rr.Part), m.NumCells())
	}
}

func TestRepartitionAsync(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, body := postJSON(t, ts.URL, smallReq(21))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partition: status %d", resp.StatusCode)
	}
	var pr PartitionResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}

	req := fmt.Sprintf(`{"mesh":"CYLINDER","scale":0.002,"k":4,"strategy":"MC_TL","options":{"seed":22},"parent_hash":%q}`, pr.PartHash)
	r, err := http.Post(ts.URL+"/v1/repartition?async=1", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d body %s", r.StatusCode, b)
	}
	var acc struct {
		URL string `json:"url"`
	}
	if err := json.Unmarshal(b, &acc); err != nil || acc.URL == "" {
		t.Fatalf("bad accept body %s: %v", b, err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		jr, err := http.Get(ts.URL + acc.URL)
		if err != nil {
			t.Fatal(err)
		}
		var v jobView
		if err := json.NewDecoder(jr.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		jr.Body.Close()
		if v.State == "done" {
			var rr RepartitionResponse
			if err := json.Unmarshal(v.Result, &rr); err != nil {
				t.Fatalf("job result: %v", err)
			}
			if rr.ParentHash != pr.PartHash {
				t.Fatalf("job result parent_hash = %q, want %q", rr.ParentHash, pr.PartHash)
			}
			return
		}
		if v.State == "failed" || v.State == "cancelled" {
			t.Fatalf("job ended %q: %s", v.State, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never completed, still %q", v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
