package server

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"mime"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"tempart/internal/mesh"
	pmetrics "tempart/internal/metrics"
	"tempart/internal/obs"
	"tempart/internal/partition"
	"tempart/internal/repart"
)

// maxMigrationPenalty bounds the refinement bias a request may ask for.
const maxMigrationPenalty = 100.0

// RepartitionRequest describes a warm-started incremental repartition: the
// usual mesh/k/strategy/options fields plus the parent assignment to start
// from — either by part_hash (content address of a result this daemon
// computed earlier) or inline.
type RepartitionRequest struct {
	PartitionRequest
	// ParentHash is the part_hash of a prior response; mutually exclusive
	// with Parent.
	ParentHash string `json:"parent_hash,omitempty"`
	// Parent is the explicit old assignment (one entry per cell).
	Parent []int32 `json:"parent,omitempty"`
	// Mode selects the repart strategy ("auto", "keep", "diffuse",
	// "refine", "scratch"). Empty means auto.
	Mode string `json:"mode,omitempty"`
	// MigrationPenalty tunes migration aversion (see repart.Options).
	MigrationPenalty float64 `json:"migration_penalty,omitempty"`

	mode repart.Mode
}

// RepartitionResponse is the cacheable body of a successful repartition.
type RepartitionResponse struct {
	Mesh         MeshInfo                  `json:"mesh"`
	K            int                       `json:"k"`
	Strategy     string                    `json:"strategy"`
	Mode         string                    `json:"mode"` // strategy actually used
	Seed         int64                     `json:"seed"`
	EdgeCut      int64                     `json:"edge_cut"`
	MaxImbalance float64                   `json:"max_imbalance"`
	Quality      pmetrics.PartitionQuality `json:"quality"`
	Migration    pmetrics.MigrationStats   `json:"migration"`
	ParentHash   string                    `json:"parent_hash,omitempty"`
	PartHash     string                    `json:"part_hash"`
	Part         []int32                   `json:"part"`
	// Eval scores the repartitioned assignment on a simulated cluster when
	// the request carried an "evaluate" spec. A "keep"-mode repartition
	// re-scoring its parent's assignment hits the daemon's graph cache
	// instead of rebuilding the parent's task graph.
	Eval *EvalResult `json:"eval,omitempty"`
	// Debug summarizes the recorded pipeline spans of a ?debug=trace request.
	Debug *DebugInfo `json:"debug,omitempty"`
}

// decodeRepartitionRequest parses a POST /v1/repartition body. The same two
// content types as /v1/partition are accepted; octet-stream uploads take the
// repartition fields as query parameters (parent_hash, mode,
// migration_penalty) alongside the partition ones.
func decodeRepartitionRequest(contentType string, query url.Values, body io.Reader, maxBody int64) (*RepartitionRequest, error) {
	mt := contentType
	if parsed, _, err := mime.ParseMediaType(contentType); err == nil {
		mt = parsed
	}
	var req RepartitionRequest
	switch {
	case mt == "application/octet-stream" || mt == "application/x-tmsh":
		base, err := decodePartitionRequest(contentType, query, body, maxBody)
		if err != nil {
			return nil, err
		}
		req.PartitionRequest = *base
		req.ParentHash = query.Get("parent_hash")
		req.Mode = query.Get("mode")
		if s := query.Get("migration_penalty"); s != "" {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, badRequest("query migration_penalty: %v", err)
			}
			req.MigrationPenalty = v
		}
	case mt == "application/json" || mt == "application/x-www-form-urlencoded" || mt == "":
		limited := &io.LimitedReader{R: body, N: maxBody + 1}
		dec := json.NewDecoder(limited)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, badRequest("invalid request JSON: %v", err)
		}
		if dec.More() {
			return nil, badRequest("trailing data after request JSON")
		}
		if err := req.PartitionRequest.validate(); err != nil {
			return nil, err
		}
	default:
		return nil, &requestError{code: http.StatusUnsupportedMediaType,
			msg: fmt.Sprintf("unsupported content type %q (want application/json or application/octet-stream)", contentType)}
	}
	if err := req.validateRepart(); err != nil {
		return nil, err
	}
	return &req, nil
}

// validateRepart checks the repartition-specific fields (the embedded
// partition fields are validated by PartitionRequest.validate).
func (r *RepartitionRequest) validateRepart() error {
	switch r.strat {
	case partition.SCOC, partition.MCTL, partition.UnitCells:
	default:
		return badRequest("strategy %s has no graph constraints to repartition under (want SC_OC, MC_TL or UNIT)", r.Strategy)
	}
	if (r.ParentHash == "") == (len(r.Parent) == 0) {
		return badRequest("exactly one of parent_hash and parent must be set")
	}
	for i, p := range r.Parent {
		if p < 0 || int(p) >= r.K {
			return badRequest("parent[%d] = %d outside [0, %d)", i, p, r.K)
		}
	}
	mode, err := repart.ParseMode(orDefault(r.Mode, "auto"))
	if err != nil {
		return badRequest("%v", err)
	}
	r.mode = mode
	r.Mode = mode.String()
	if math.IsNaN(r.MigrationPenalty) || r.MigrationPenalty < -1 || r.MigrationPenalty > maxMigrationPenalty {
		return badRequest("migration_penalty = %v out of range [-1, %g]", r.MigrationPenalty, maxMigrationPenalty)
	}
	return nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// key extends the partition content address with the repartition inputs; the
// parent identity (hash or inline assignment) is part of the address, so two
// warm starts from different parents never collide.
func (r *RepartitionRequest) key() cacheKey {
	base := r.PartitionRequest.key()
	h := sha256.New()
	h.Write([]byte("tempartd/repart/v1\x00"))
	h.Write(base[:])
	fmt.Fprintf(h, "mode=%s pen=%x\x00", r.Mode, math.Float64bits(r.MigrationPenalty))
	if r.ParentHash != "" {
		fmt.Fprintf(h, "hash\x00%s", r.ParentHash)
	} else {
		h.Write([]byte("inline\x00"))
		var b [4]byte
		for _, p := range r.Parent {
			binary.LittleEndian.PutUint32(b[:], uint32(p))
			h.Write(b[:])
		}
	}
	var key cacheKey
	h.Sum(key[:0])
	return key
}

// repartConstraints maps the validated strategy to the dual-graph constraint
// kind (graph-based strategies only — enforced by validateRepart).
func (r *RepartitionRequest) repartConstraints() mesh.ConstraintKind {
	switch r.strat {
	case partition.MCTL:
		return mesh.PerLevel
	case partition.UnitCells:
		return mesh.Unit
	default:
		return mesh.SingleCost
	}
}

// execute implements jobRequest: resolve the mesh and parent assignment,
// repartition incrementally, store the new result under its content hash,
// and report the migration alongside the usual quality axes.
func (r *RepartitionRequest) execute(ctx context.Context, s *Server) ([]byte, time.Duration, *requestError) {
	m, rerr := r.resolveMesh()
	if rerr != nil {
		return nil, 0, rerr
	}

	var parentPart []int32
	if r.ParentHash != "" {
		parent, rerr := s.loadPartition(r.ParentHash)
		if rerr != nil {
			return nil, 0, rerr
		}
		if parent.NumParts != r.K {
			return nil, 0, &requestError{code: http.StatusBadRequest,
				msg: fmt.Sprintf("parent partition has k = %d, request wants %d", parent.NumParts, r.K)}
		}
		parentPart = parent.Part
	} else {
		parentPart = r.Parent
	}
	if len(parentPart) != m.NumCells() {
		return nil, 0, &requestError{code: http.StatusBadRequest,
			msg: fmt.Sprintf("parent assignment covers %d cells, mesh has %d", len(parentPart), m.NumCells())}
	}

	g := m.DualGraph(mesh.DualGraphOptions{Constraints: r.repartConstraints()})
	old := partition.NewResult(g, parentPart, r.K)
	popt := r.partitionOptions()
	popt.Parallelism = s.cfg.clampParallelism(popt.Parallelism)
	start := time.Now()
	res, err := repart.Repartition(ctx, g, old, repart.Options{
		Mode:             r.mode,
		Part:             popt,
		MigrationPenalty: r.MigrationPenalty,
		MigBytes:         repart.MeshMigrationBytes(m),
	})
	elapsed := time.Since(start)
	if err != nil {
		return nil, 0, &requestError{code: http.StatusInternalServerError, msg: err.Error()}
	}
	s.metrics.countRepart(res.Mode.String(), elapsed.Seconds(), res.Stats.MovedBytes)

	partHash, rerr := s.storePartition(ctx, res.Result)
	if rerr != nil {
		return nil, 0, rerr
	}
	var evalRes *EvalResult
	if r.Evaluate != nil {
		evalRes, rerr = s.runEval(ctx, r.Evaluate, m, r.evalMeshID(), res.Part, r.K)
		if rerr != nil {
			return nil, 0, rerr
		}
	}
	// Gated on the explicit flag, not the recorder: sampled repartitions keep
	// the canonical cacheable payload (see PartitionRequest.execute).
	var dbg *DebugInfo
	if r.debugTrace {
		dbg = debugInfo(obs.FromContext(ctx))
	}
	payload, err := json.Marshal(&RepartitionResponse{
		Mesh: MeshInfo{
			Name:     m.Name,
			Cells:    m.NumCells(),
			MaxLevel: int(m.MaxLevel),
		},
		K:            r.K,
		Strategy:     r.Strategy,
		Mode:         res.Mode.String(),
		Seed:         r.Options.Seed,
		EdgeCut:      res.EdgeCut,
		MaxImbalance: res.MaxImbalance(),
		Quality:      pmetrics.EvaluatePartition(m, res.Result, r.Strategy),
		Migration:    res.Stats,
		ParentHash:   r.ParentHash,
		PartHash:     partHash,
		Part:         res.Part,
		Eval:         evalRes,
		Debug:        dbg,
	})
	if err != nil {
		return nil, 0, &requestError{code: http.StatusInternalServerError, msg: err.Error()}
	}
	return payload, elapsed, nil
}
