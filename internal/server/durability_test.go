package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tempart/internal/mesh"
	"tempart/internal/store"
	"tempart/internal/temporal"
)

// openDiskStore opens (or reopens) a disk-backed store with a short batch
// window so durable commits don't dominate test wall-clock.
func openDiskStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, MaxWait: 2 * time.Millisecond})
	if err != nil {
		t.Fatalf("opening store at %s: %v", dir, err)
	}
	return st
}

func encodeStripMesh(t *testing.T) []byte {
	t.Helper()
	m := mesh.Strip([]temporal.Level{0, 0, 1, 1, 2, 2, 0, 1})
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRestartResumeAsyncJob is the end-to-end durability acceptance test: an
// uploaded mesh is submitted async, the daemon "crashes" mid-run (store
// handles cut without sync, batcher pending discarded), and a new server over
// the same directory must requeue the job under its original id, complete it,
// and serve both the mesh and the result byte-identically from the store.
// Finally the provenance chain verifies clean — and detects a flipped byte.
func TestRestartResumeAsyncJob(t *testing.T) {
	dir := t.TempDir()
	meshRaw := encodeStripMesh(t)
	meshDigest := sha256.Sum256(meshRaw)

	st1 := openDiskStore(t, dir)
	gateReached := make(chan struct{})
	block := make(chan struct{})
	s1 := New(Config{Workers: 1, Store: st1,
		execGate: func(ctx context.Context, r *PartitionRequest) error {
			close(gateReached)
			<-block
			return nil
		}})
	ts1 := httptest.NewServer(s1.Handler())

	resp, err := http.Post(ts1.URL+"/v1/partition?k=2&strategy=SC_OC&seed=9&async=1",
		"application/octet-stream", bytes.NewReader(meshRaw))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d body %s", resp.StatusCode, b)
	}
	var acc struct {
		JobID string `json:"job_id"`
		URL   string `json:"url"`
	}
	if err := json.Unmarshal(b, &acc); err != nil || acc.JobID == "" {
		t.Fatalf("bad accept body %s: %v", b, err)
	}
	<-gateReached

	// The 202 is out, so the submitted record and mesh blob are durable. Kill
	// the store as a crash would: pending batch discarded, files not synced.
	st1.Crash()
	close(block) // the old worker unwinds; its persist fails on the dead store
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = s1.Shutdown(ctx) // flush on a crashed store errors; that's the point

	// Restart over the same directory. CacheBytes: 1 rejects every payload so
	// the later sync GET must come from the store, not the LRU.
	st2 := openDiskStore(t, dir)
	defer st2.Close()
	if stats := st2.Stats(); stats.JobsPending != 1 {
		t.Fatalf("JobsPending = %d after crash, want 1 (stats %+v)", stats.JobsPending, stats)
	}
	s2 := New(Config{Workers: 1, Store: st2, CacheBytes: 1})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	// The interrupted job must resume under its ORIGINAL id and complete
	// without any client re-submission.
	var v jobView
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(ts2.URL + acc.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("job %s unknown after restart: status %d body %s", acc.JobID, r.StatusCode, body)
		}
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.State == "done" {
			break
		}
		if v.State == "failed" || v.State == "cancelled" {
			t.Fatalf("replayed job reached %q: %s", v.State, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed job never completed, still %q", v.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if len(v.Result) == 0 {
		t.Fatalf("done job view has no result")
	}

	// A fresh synchronous request for the same content address must be served
	// byte-identically out of the store (the 1-byte LRU can't hold it).
	resp2, err := http.Post(ts2.URL+"/v1/partition?k=2&strategy=SC_OC&seed=9",
		"application/octet-stream", bytes.NewReader(meshRaw))
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-restart request: status %d body %s", resp2.StatusCode, payload)
	}
	if got := resp2.Header.Get("X-Tempartd-Cache"); got != "store" {
		t.Fatalf("post-restart cache header = %q, want store", got)
	}
	if !bytes.Equal(payload, []byte(v.Result)) {
		t.Fatalf("store-served payload differs from the replayed job's result")
	}

	// The uploaded mesh survived the crash byte-for-byte.
	gotMesh, ok := st2.Get(store.NSMesh, hex.EncodeToString(meshDigest[:]))
	if !ok {
		t.Fatalf("mesh blob missing from store after restart")
	}
	if !bytes.Equal(gotMesh, meshRaw) {
		t.Fatalf("persisted mesh differs from upload")
	}

	if err := s2.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatalf("closing store: %v", err)
	}

	// Offline verification walks the chain clean...
	rep, err := store.VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("verify after clean shutdown failed: %v", rep.Problems)
	}
	// ...and catches a single flipped byte in the log.
	logPath := filepath.Join(dir, "prov.log")
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(logPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rep2, err := store.VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.OK() {
		t.Fatalf("verify did not detect a flipped byte in %s", logPath)
	}
}

// TestShutdownFlushesPendingStoreCommits pins the drain ordering: Shutdown
// must force the batcher flush, so commits still pending at SIGTERM survive
// even if the process dies (Crash) immediately after the drain returns.
func TestShutdownFlushesPendingStoreCommits(t *testing.T) {
	dir := t.TempDir()
	// A one-minute window guarantees nothing flushes on its own: only the
	// Shutdown barrier can make the marker durable.
	st, err := store.Open(store.Options{Dir: dir, MaxWait: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, Store: st})

	data := []byte("pending-at-sigterm")
	sum := sha256.Sum256(data)
	key := hex.EncodeToString(sum[:])
	st.CommitAsync(store.Commit{Puts: []store.Put{{NS: store.NSPart, Key: key, Data: data}}})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	st.Crash() // process dies right after the drain; no Close, no extra sync

	st2 := openDiskStore(t, dir)
	defer st2.Close()
	got, ok := st2.Get(store.NSPart, key)
	if !ok {
		t.Fatalf("commit pending at shutdown was lost; drain did not flush the batcher")
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("flushed blob corrupt after reopen")
	}
	if stats := st2.Stats(); stats.ProvEntries != 1 {
		t.Fatalf("ProvEntries = %d, want 1", stats.ProvEntries)
	}
}

// TestReadyzEndpoint covers the three readiness states: ready (with and
// without a store), starting (journal replay not finished), and draining.
func TestReadyzEndpoint(t *testing.T) {
	getReadyz := func(t *testing.T, url string) (int, string) {
		t.Helper()
		resp, err := http.Get(url + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	t.Run("no store", func(t *testing.T) {
		s, ts := newTestServer(t, Config{Workers: 1})
		code, body := getReadyz(t, ts.URL)
		if code != http.StatusOK || !strings.Contains(body, `"store":"none"`) {
			t.Fatalf("readyz = %d %s, want 200 with store none", code, body)
		}
		// Replay still in progress: not ready yet.
		s.ready.Store(false)
		code, body = getReadyz(t, ts.URL)
		if code != http.StatusServiceUnavailable || !strings.Contains(body, "starting") {
			t.Fatalf("readyz while starting = %d %s, want 503 starting", code, body)
		}
		s.ready.Store(true)
	})

	t.Run("with store and draining", func(t *testing.T) {
		st, err := store.Open(store.Options{}) // in-memory backend
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		s, ts := newTestServer(t, Config{Workers: 1, Store: st})
		code, body := getReadyz(t, ts.URL)
		if code != http.StatusOK || !strings.Contains(body, `"store":"open"`) {
			t.Fatalf("readyz = %d %s, want 200 with store open", code, body)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
		code, body = getReadyz(t, ts.URL)
		if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
			t.Fatalf("readyz while draining = %d %s, want 503 draining", code, body)
		}
	})
}

// TestRepartWarmStartFromStoreAfterRestart proves the parts LRU is a true
// read-through cache: a part_hash computed before a restart warm-starts a
// repartition on the new process, whose in-memory tier starts empty.
func TestRepartWarmStartFromStoreAfterRestart(t *testing.T) {
	dir := t.TempDir()
	st1 := openDiskStore(t, dir)
	s1 := New(Config{Workers: 1, Store: st1})
	ts1 := httptest.NewServer(s1.Handler())

	resp, body := postJSON(t, ts1.URL, smallReq(31))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partition: status %d body %s", resp.StatusCode, body)
	}
	var pr PartitionResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.PartHash == "" {
		t.Fatalf("partition response has no part_hash")
	}
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openDiskStore(t, dir)
	defer st2.Close()
	s2 := New(Config{Workers: 1, Store: st2})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Shutdown(context.Background())

	req := fmt.Sprintf(`{"mesh":"CYLINDER","scale":0.002,"k":4,"strategy":"MC_TL","options":{"seed":32},"parent_hash":%q}`, pr.PartHash)
	r2, err := http.Post(ts2.URL+"/v1/repartition", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("repartition after restart: status %d body %s", r2.StatusCode, body2)
	}
	var rr RepartitionResponse
	if err := json.Unmarshal(body2, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Part) == 0 {
		t.Fatalf("repartition response has no assignment")
	}

	// The warm start was a store read, and the store metrics are exposed.
	m := fetchMetrics(t, ts2.URL)
	if got := metricValue(t, m, "tempartd_store_read_hits_total"); got == "" || got == "0" {
		t.Fatalf("tempartd_store_read_hits_total = %q, want >= 1\nmetrics:\n%s", got, m)
	}
	if !strings.Contains(m, "tempartd_store_puts_total") {
		t.Fatalf("store metrics missing from /metrics:\n%s", m)
	}
}
