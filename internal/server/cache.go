package server

import (
	"container/list"
	"sync"
)

// cacheKey is the content address of a partition request: SHA-256 over the
// mesh bytes (or generator identity) plus the canonicalized options. Two
// requests with the same key are guaranteed byte-identical results because
// the partitioner is deterministic per seed.
type cacheKey [32]byte

// resultCache is a byte-budgeted LRU over encoded partition responses.
// Payloads are immutable once inserted (callers must not mutate them), so a
// hit can be served with zero copies.
type resultCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	order  *list.List // front = most recently used; values are *cacheEntry
	items  map[cacheKey]*list.Element
}

type cacheEntry struct {
	key     cacheKey
	payload []byte
}

func newResultCache(budgetBytes int64) *resultCache {
	return &resultCache{
		budget: budgetBytes,
		order:  list.New(),
		items:  map[cacheKey]*list.Element{},
	}
}

// get returns the cached payload and marks the entry most-recently used.
func (c *resultCache) get(key cacheKey) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).payload, true
}

// put inserts (or refreshes) an entry, then evicts least-recently-used
// entries until the byte budget holds. A payload larger than the whole
// budget is not cached at all.
func (c *resultCache) put(key cacheKey, payload []byte) {
	n := int64(len(payload))
	if n > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.used += n - int64(len(el.Value.(*cacheEntry).payload))
		el.Value.(*cacheEntry).payload = payload
		c.order.MoveToFront(el)
	} else {
		c.items[key] = c.order.PushFront(&cacheEntry{key: key, payload: payload})
		c.used += n
	}
	for c.used > c.budget {
		back := c.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.items, ent.key)
		c.used -= int64(len(ent.payload))
	}
}

// stats reports current occupancy.
func (c *resultCache) stats() (bytes int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used, len(c.items)
}
