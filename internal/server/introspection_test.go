package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"tempart/internal/obs"
)

func TestBuildinfoEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/buildinfo")
	if err != nil {
		t.Fatalf("GET /buildinfo: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var bi obs.BuildInfo
	if err := json.NewDecoder(resp.Body).Decode(&bi); err != nil {
		t.Fatalf("decoding buildinfo: %v", err)
	}
	if bi.GoVersion == "" || bi.OS == "" || bi.Arch == "" {
		t.Errorf("buildinfo incomplete: %+v", bi)
	}
}

func TestRequestIDEchoedAndGenerated(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, err := http.Get(ts.URL + "/v1/meshes")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); id == "" {
		t.Error("no X-Request-Id generated")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/v1/meshes", nil)
	req.Header.Set("X-Request-Id", "client-chose-this")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); id != "client-chose-this" {
		t.Errorf("X-Request-Id = %q, want the client's id echoed", id)
	}
}

// TestDebugTracePartition checks the ?debug=trace contract: the response
// gains a debug block with partition phases, the traced payload is never
// cached (a repeat plain request misses), and the traced run's phase totals
// surface on /metrics under the tempartd_pipeline_* prefix.
func TestDebugTracePartition(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, err := http.Post(ts.URL+"/v1/partition?debug=trace", "application/json",
		strings.NewReader(smallReq(42)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var pr PartitionResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if pr.Debug == nil {
		t.Fatal("traced response has no debug block")
	}
	if pr.Debug.Spans == 0 {
		t.Error("debug block reports zero spans")
	}
	phases := map[string]bool{}
	for _, p := range pr.Debug.Phases {
		phases[p.Name] = true
	}
	for _, want := range []string{"partition", "partition/coarsen", "partition/refine"} {
		if !phases[want] {
			t.Errorf("debug block missing phase %q (have %v)", want, pr.Debug.Phases)
		}
	}

	// The traced payload must not have seeded the cache: the same request
	// without the flag is a miss (and its cached result carries no debug).
	resp2, body2 := postJSON(t, ts.URL, smallReq(42))
	if got := resp2.Header.Get("X-Tempartd-Cache"); got != "miss" {
		t.Errorf("plain request after traced one: cache %q, want miss", got)
	}
	var pr2 PartitionResponse
	if err := json.Unmarshal(body2, &pr2); err != nil {
		t.Fatal(err)
	}
	if pr2.Debug != nil {
		t.Error("untraced response unexpectedly carries a debug block")
	}

	metrics := fetchMetrics(t, ts.URL)
	if !strings.Contains(metrics, `tempartd_pipeline_phase_seconds_total{phase="partition"}`) {
		t.Errorf("traced run did not feed tempartd_pipeline_* metrics:\n%s", metrics)
	}
}
