package server

import (
	"net/http"
	"time"

	"tempart/internal/obs"
)

// This file serves the flight recorder: the always-on ring of recently
// completed request span trees (?debug=trace jobs, head-sampled jobs,
// sampled subtree RPCs, plus the slowest request seen, pinned).
//
//	GET /v1/traces/recent         newest-first summaries of retained traces
//	GET /v1/traces/{request_id}   one trace; ?format=chrome (default) emits
//	                              Chrome trace-event JSON for Perfetto,
//	                              ?format=spans the raw span records
//
// A stitched fan-out trace (coordinator spans + grafted peer snapshots)
// renders in Perfetto with one process lane per fleet member.

// traceSummary is one /v1/traces/recent row.
type traceSummary struct {
	RequestID  string `json:"request_id"`
	TraceID    string `json:"trace_id,omitempty"`
	Kind       string `json:"kind"`
	Start      string `json:"start"`
	DurationMS int64  `json:"duration_ms"`
	Spans      int    `json:"spans"`
	// Nodes lists every fleet member that contributed spans: this node first,
	// then the distinct node stamps of grafted peer snapshots.
	Nodes []string `json:"nodes"`
}

// nodeSet collects the distinct node ids appearing in a span tree; self names
// the recording node (locally recorded spans carry an empty Node stamp).
func nodeSet(spans []obs.SpanRecord, self string) []string {
	if self == "" {
		self = "local"
	}
	nodes := []string{self}
	seen := map[string]bool{self: true}
	for i := range spans {
		if n := spans[i].Node; n != "" && !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	return nodes
}

func (s *Server) handleTracesRecent(w http.ResponseWriter, r *http.Request) int {
	entries := s.flight.Recent()
	out := make([]traceSummary, 0, len(entries))
	for _, e := range entries {
		out = append(out, traceSummary{
			RequestID:  e.RequestID,
			TraceID:    e.TraceID,
			Kind:       e.Kind,
			Start:      e.Start.UTC().Format(time.RFC3339Nano),
			DurationMS: e.Duration.Milliseconds(),
			Spans:      len(e.Spans),
			Nodes:      nodeSet(e.Spans, s.cfg.NodeID),
		})
	}
	return writeJSON(w, http.StatusOK, map[string]any{
		"node_id":     s.cfg.NodeID,
		"retained":    s.flight.Len(),
		"sample_rate": s.cfg.TraceSampleRate,
		"traces":      out,
	})
}

// traceDetail is the ?format=spans representation of one retained trace.
type traceDetail struct {
	RequestID  string           `json:"request_id"`
	TraceID    string           `json:"trace_id,omitempty"`
	Kind       string           `json:"kind"`
	NodeID     string           `json:"node_id"`
	Start      string           `json:"start"`
	DurationMS int64            `json:"duration_ms"`
	Nodes      []string         `json:"nodes"`
	Spans      []obs.SpanRecord `json:"spans"`
	Counters   map[string]int64 `json:"counters,omitempty"`
}

func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) int {
	id := r.PathValue("request_id")
	e, ok := s.flight.Get(id)
	if !ok {
		return writeError(w, http.StatusNotFound, "no retained trace for that request id (evicted, unsampled, or unknown)")
	}
	if r.URL.Query().Get("format") == "spans" {
		return writeJSON(w, http.StatusOK, traceDetail{
			RequestID:  e.RequestID,
			TraceID:    e.TraceID,
			Kind:       e.Kind,
			NodeID:     s.cfg.NodeID,
			Start:      e.Start.UTC().Format(time.RFC3339Nano),
			DurationMS: e.Duration.Milliseconds(),
			Nodes:      nodeSet(e.Spans, s.cfg.NodeID),
			Spans:      e.Spans,
			Counters:   e.Counters,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	local := s.cfg.NodeID
	if local == "" {
		local = "local"
	}
	_ = obs.WriteSpansChrome(w, e.Spans, local)
	return http.StatusOK
}
