package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"mime"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"tempart/internal/mesh"
	"tempart/internal/obs"
	"tempart/internal/partition"
)

// Request limits. They bound what a single request can make the daemon
// allocate or compute, mirroring the hardened mesh.Decode limits.
const (
	maxK           = 1 << 14
	maxTrials      = 64
	maxInitTrials  = 256
	maxPasses      = 256
	maxScale       = 2.0
	maxParallelism = 256
)

// OptionsSpec is the wire form of partition.Options. Zero values mean
// "server default", exactly as in the library.
type OptionsSpec struct {
	Seed         int64   `json:"seed,omitempty"`
	ImbalanceTol float64 `json:"imbalance_tol,omitempty"`
	CoarsenTo    int     `json:"coarsen_to,omitempty"`
	InitTrials   int     `json:"init_trials,omitempty"`
	RefinePasses int     `json:"refine_passes,omitempty"`
	Method       string  `json:"method,omitempty"` // "rb" (default) or "kway"
	Trials       int     `json:"trials,omitempty"`
	// Parallelism asks for intra-request worker goroutines; the server
	// clamps it to its -parallel cap. 0 means "use the server cap". It never
	// changes the computed partition, only how fast it arrives.
	Parallelism int `json:"parallelism,omitempty"`
}

// PartitionRequest is a fully decoded, validated partition job description.
type PartitionRequest struct {
	// MeshName names a generator ("CYLINDER", "CUBE", "PPRIME_NOZZLE");
	// empty when the mesh was uploaded.
	MeshName string      `json:"mesh,omitempty"`
	Scale    float64     `json:"scale,omitempty"`
	K        int         `json:"k"`
	Strategy string      `json:"strategy"`
	Options  OptionsSpec `json:"options"`
	// TimeoutMS caps the job's execution time; 0 uses the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Evaluate, when present, additionally scores the computed assignment
	// through the evaluation pipeline (task graph + FLUSIM) and attaches an
	// EvalResult block to the response. On octet-stream uploads it arrives
	// as eval_* query parameters.
	Evaluate *EvalSpec `json:"evaluate,omitempty"`

	// Uploaded holds the decoded TMSH mesh for octet-stream requests (nil
	// for generator requests). meshDigest is the SHA-256 of the raw upload;
	// meshRaw retains the upload bytes so a durable daemon can persist the
	// mesh content-addressed (and re-serve/replay it after a restart).
	Uploaded   *mesh.Mesh `json:"-"`
	meshDigest [32]byte
	meshRaw    []byte

	strat partition.Strategy
	// debugTrace marks a ?debug=trace request: the job runs privately with a
	// span recorder and its response (which embeds a debug block) is neither
	// cached nor shared via singleflight.
	debugTrace bool
	// requestID is the X-Request-Id of the exchange that created the job; a
	// cluster member propagates it on every peer hop made on the job's
	// behalf (forward, subtree fan-out, cache probe). For singleflighted
	// jobs it is the creating exchange's id.
	requestID string
	// trace is the request's distributed-trace context: inherited from an
	// incoming X-Tempartd-Trace header (peer hops), synthesized for
	// ?debug=trace requests, or head-sampled by the flight recorder. It rides
	// every peer hop next to requestID.
	trace obs.TraceContext
	// sampled marks a job that runs with a span recorder but keeps its
	// canonical cacheable payload (no debug block): the recorded tree feeds
	// the flight recorder, never the response bytes.
	sampled bool
}

// requestError carries the HTTP status a decode/validation failure maps to.
type requestError struct {
	code int
	msg  string
}

func (e *requestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &requestError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// generatorNames lists the meshes servable by name, in /v1/meshes order.
var generatorNames = []string{"CYLINDER", "CUBE", "PPRIME_NOZZLE"}

func knownGenerator(name string) bool {
	for _, n := range generatorNames {
		if n == name {
			return true
		}
	}
	return false
}

// decodePartitionRequest parses a POST /v1/partition body. Two content types
// are accepted:
//
//   - application/json: the full PartitionRequest object naming a generator.
//   - application/octet-stream: a raw binary TMSH mesh; k, strategy and
//     options arrive as query parameters (k, strategy, seed, tol,
//     coarsen_to, init_trials, refine_passes, method, trials, timeout_ms).
//
// The body is capped at maxBody bytes; anything larger fails with 400
// before significant allocation (the TMSH decoder reads in bounded chunks).
func decodePartitionRequest(contentType string, query url.Values, body io.Reader, maxBody int64) (*PartitionRequest, error) {
	mt := contentType
	if parsed, _, err := mime.ParseMediaType(contentType); err == nil {
		mt = parsed
	}
	limited := &io.LimitedReader{R: body, N: maxBody + 1}

	var req PartitionRequest
	switch {
	case mt == "application/octet-stream" || mt == "application/x-tmsh":
		raw, err := io.ReadAll(limited)
		if err != nil {
			return nil, badRequest("reading mesh upload: %v", err)
		}
		if int64(len(raw)) > maxBody {
			return nil, badRequest("mesh upload exceeds %d bytes", maxBody)
		}
		m, err := mesh.Decode(bytes.NewReader(raw))
		if err != nil {
			return nil, badRequest("invalid TMSH mesh: %v", err)
		}
		req.Uploaded = m
		req.meshDigest = sha256.Sum256(raw)
		req.meshRaw = raw
		if err := queryInto(&req, query); err != nil {
			return nil, err
		}
	// x-www-form-urlencoded is what bare `curl -d` sends; the body is still
	// expected to be the JSON request object.
	case mt == "application/json" || mt == "application/x-www-form-urlencoded" || mt == "":
		dec := json.NewDecoder(limited)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, badRequest("invalid request JSON: %v", err)
		}
		if dec.More() {
			return nil, badRequest("trailing data after request JSON")
		}
	default:
		return nil, &requestError{code: http.StatusUnsupportedMediaType,
			msg: fmt.Sprintf("unsupported content type %q (want application/json or application/octet-stream)", contentType)}
	}

	if err := req.validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// queryInto fills the scalar fields of an upload request from the URL query.
func queryInto(req *PartitionRequest, q url.Values) error {
	geti := func(name string, dst *int) error {
		if s := q.Get(name); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				return badRequest("query %s: %v", name, err)
			}
			*dst = v
		}
		return nil
	}
	for name, dst := range map[string]*int{
		"k": &req.K, "coarsen_to": &req.Options.CoarsenTo,
		"init_trials": &req.Options.InitTrials, "refine_passes": &req.Options.RefinePasses,
		"trials": &req.Options.Trials, "parallel": &req.Options.Parallelism,
	} {
		if err := geti(name, dst); err != nil {
			return err
		}
	}
	if s := q.Get("seed"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return badRequest("query seed: %v", err)
		}
		req.Options.Seed = v
	}
	if s := q.Get("timeout_ms"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return badRequest("query timeout_ms: %v", err)
		}
		req.TimeoutMS = v
	}
	if s := q.Get("tol"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return badRequest("query tol: %v", err)
		}
		req.Options.ImbalanceTol = v
	}
	req.Strategy = q.Get("strategy")
	req.Options.Method = q.Get("method")
	ev, err := evalFromQuery(q)
	if err != nil {
		return err
	}
	req.Evaluate = ev
	return nil
}

// validate applies limits and resolves enums. It mutates the request into
// canonical form (strategy label upper-cased, method normalized) so the
// cache key is insensitive to equivalent spellings.
func (r *PartitionRequest) validate() error {
	if r.Uploaded == nil {
		if !knownGenerator(r.MeshName) {
			return badRequest("unknown mesh %q (want one of %s, or an octet-stream TMSH upload)",
				r.MeshName, strings.Join(generatorNames, ", "))
		}
		if !(r.Scale > 0) || r.Scale > maxScale || math.IsNaN(r.Scale) {
			return badRequest("scale %v out of range (0, %g]", r.Scale, maxScale)
		}
	}
	if r.K < 1 || r.K > maxK {
		return badRequest("k = %d out of range [1, %d]", r.K, maxK)
	}
	strat, err := partition.ParseStrategy(r.Strategy)
	if err != nil {
		return badRequest("%v", err)
	}
	r.strat = strat
	r.Strategy = strat.String()
	switch r.Options.Method {
	case "", "rb":
		r.Options.Method = "rb"
	case "kway":
	default:
		return badRequest("unknown method %q (want rb or kway)", r.Options.Method)
	}
	o := &r.Options
	if o.Trials < 0 || o.Trials > maxTrials {
		return badRequest("trials = %d out of range [0, %d]", o.Trials, maxTrials)
	}
	if o.InitTrials < 0 || o.InitTrials > maxInitTrials {
		return badRequest("init_trials = %d out of range [0, %d]", o.InitTrials, maxInitTrials)
	}
	if o.RefinePasses < 0 || o.RefinePasses > maxPasses {
		return badRequest("refine_passes = %d out of range [0, %d]", o.RefinePasses, maxPasses)
	}
	if o.CoarsenTo < 0 || o.CoarsenTo > 1<<30 {
		return badRequest("coarsen_to = %d out of range", o.CoarsenTo)
	}
	if o.Parallelism < 0 || o.Parallelism > maxParallelism {
		return badRequest("parallelism = %d out of range [0, %d]", o.Parallelism, maxParallelism)
	}
	if o.ImbalanceTol != 0 && (o.ImbalanceTol < 1 || o.ImbalanceTol > 4 || math.IsNaN(o.ImbalanceTol)) {
		return badRequest("imbalance_tol = %v out of range [1, 4]", o.ImbalanceTol)
	}
	if r.TimeoutMS < 0 {
		return badRequest("timeout_ms = %d is negative", r.TimeoutMS)
	}
	if r.Evaluate != nil {
		if err := r.Evaluate.validate(); err != nil {
			return err
		}
	}
	return nil
}

// partitionOptions converts the wire options to library options.
func (r *PartitionRequest) partitionOptions() partition.Options {
	o := partition.Options{
		Seed:         r.Options.Seed,
		ImbalanceTol: r.Options.ImbalanceTol,
		CoarsenTo:    r.Options.CoarsenTo,
		InitTrials:   r.Options.InitTrials,
		RefinePasses: r.Options.RefinePasses,
		Trials:       r.Options.Trials,
		Parallelism:  r.Options.Parallelism,
	}
	if r.Options.Method == "kway" {
		o.Method = partition.DirectKWay
	}
	return o
}

// key computes the request's content address: SHA-256 over the mesh identity
// (generator name+scale, or the digest of the uploaded bytes) and every
// option that influences the result. The timeout is deliberately excluded —
// it changes whether a result arrives, never what it is. Parallelism is
// excluded for the same reason: the fan-out seeding scheme makes the
// partition bit-identical at every worker count, so requests differing only
// in parallelism share one cache entry and one in-flight job.
func (r *PartitionRequest) key() cacheKey {
	h := sha256.New()
	h.Write([]byte("tempartd/v1\x00"))
	if r.Uploaded != nil {
		h.Write([]byte("tmsh\x00"))
		h.Write(r.meshDigest[:])
	} else {
		fmt.Fprintf(h, "gen\x00%s\x00", r.MeshName)
		var sb [8]byte
		binary.LittleEndian.PutUint64(sb[:], math.Float64bits(r.Scale))
		h.Write(sb[:])
	}
	// Canonicalize defaults so an explicit default hashes like an omitted
	// field. CoarsenTo's default depends on the constraint count, so only
	// its zero marker is canonical.
	o := r.Options
	if o.ImbalanceTol <= 1 {
		o.ImbalanceTol = 1.05
	}
	if o.InitTrials <= 0 {
		o.InitTrials = 8
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 8
	}
	if o.Trials <= 1 {
		o.Trials = 1
	}
	fmt.Fprintf(h, "k=%d strat=%s seed=%d tol=%x coarsen=%d init=%d passes=%d method=%s trials=%d",
		r.K, r.Strategy, o.Seed, math.Float64bits(o.ImbalanceTol), o.CoarsenTo,
		o.InitTrials, o.RefinePasses, o.Method, o.Trials)
	// The evaluation spec changes the response body (an extra result block),
	// so it is part of the address — but only when present, keeping the keys
	// of plain partition requests stable across daemon versions.
	if r.Evaluate != nil {
		r.Evaluate.hashInto(h)
	}
	var key cacheKey
	h.Sum(key[:0])
	return key
}
