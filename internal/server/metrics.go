package server

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"tempart/internal/store"
)

// latencyBuckets are the upper bounds (seconds) of the partition latency
// histogram. Partitions range from sub-millisecond (cache-sized toy meshes)
// to minutes (full-scale PPRIME_NOZZLE), so the buckets span five decades.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120}

// migrationBuckets are the upper bounds (bytes) of the repartition migration
// histogram: from a few cells (1 KiB) to a full-scale mesh (1 GiB).
var migrationBuckets = []float64{1 << 10, 1 << 14, 1 << 17, 1 << 20, 1 << 23, 1 << 26, 1 << 30}

// histogram is a fixed-bucket cumulative histogram (Prometheus semantics).
type histogram struct {
	bounds []float64 // upper bounds, ascending
	counts []int64   // per bucket, non-cumulative; rendered cumulatively
	inf    int64
	sum    float64
	total  int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]int64, len(bounds))}
}

func (h *histogram) observe(v float64) {
	h.sum += v
	h.total++
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i]++
			return
		}
	}
	h.inf++
}

// serverMetrics collects the daemon's counters and histograms. Gauges
// (queue depth, in-flight jobs, cache occupancy) are sampled from the server
// at render time rather than stored. All methods are safe for concurrent
// use.
type serverMetrics struct {
	mu sync.Mutex

	requests  map[string]int64 // "endpoint|method|code" -> count
	partRuns  map[string]int64 // strategy -> actual partitioner executions
	latencies map[string]*histogram

	// Repartition observability: executions and latency by resolved mode
	// (so incremental modes can be compared against scratch directly), the
	// migration volume distribution, and the warm-start (parent part_hash
	// lookup) hit ratio.
	repartRuns      map[string]int64 // mode -> executions
	repartLatencies map[string]*histogram
	migrationBytes  *histogram
	parentHits      int64
	parentMisses    int64

	// HTTP-surface observability: wall-clock latency per endpoint label
	// (whole exchange, handler + serialization) and how long admitted jobs
	// waited in the queue before a worker picked them up.
	httpLatencies map[string]*histogram
	admissionWait *histogram

	cacheHits     int64
	cacheMisses   int64
	queueRejected int64
	jobsCancelled int64

	// Evaluation-pipeline observability: how many requests asked for an
	// evaluate block, and how often the task graph came from the cache.
	evalRuns      int64
	evalGraphHits int64
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{
		requests:        map[string]int64{},
		partRuns:        map[string]int64{},
		latencies:       map[string]*histogram{},
		repartRuns:      map[string]int64{},
		repartLatencies: map[string]*histogram{},
		migrationBytes:  newHistogram(migrationBuckets),
		httpLatencies:   map[string]*histogram{},
		admissionWait:   newHistogram(latencyBuckets),
	}
}

// countRequest records one HTTP exchange. The method is part of the key so
// verbs sharing a path label stay distinguishable (GET vs DELETE on
// /v1/jobs/{id} used to collapse into one series).
func (m *serverMetrics) countRequest(endpoint, method string, code int) {
	m.mu.Lock()
	m.requests[fmt.Sprintf("%s|%s|%d", endpoint, method, code)]++
	m.mu.Unlock()
}

func (m *serverMetrics) countRun(strategy string, seconds float64) {
	m.mu.Lock()
	m.partRuns[strategy]++
	h := m.latencies[strategy]
	if h == nil {
		h = newHistogram(latencyBuckets)
		m.latencies[strategy] = h
	}
	h.observe(seconds)
	m.mu.Unlock()
}

// countRepart records one repartition execution under its resolved mode.
func (m *serverMetrics) countRepart(mode string, seconds float64, migBytes int64) {
	m.mu.Lock()
	m.repartRuns[mode]++
	h := m.repartLatencies[mode]
	if h == nil {
		h = newHistogram(latencyBuckets)
		m.repartLatencies[mode] = h
	}
	h.observe(seconds)
	m.migrationBytes.observe(float64(migBytes))
	m.mu.Unlock()
}

// countParentLookup tracks warm-start resolution: whether a repartition's
// parent part_hash was still in the partition store.
func (m *serverMetrics) countParentLookup(hit bool) {
	m.mu.Lock()
	if hit {
		m.parentHits++
	} else {
		m.parentMisses++
	}
	m.mu.Unlock()
}

// observeHTTP records one instrumented exchange's wall-clock latency under
// its endpoint label.
func (m *serverMetrics) observeHTTP(endpoint string, seconds float64) {
	m.mu.Lock()
	h := m.httpLatencies[endpoint]
	if h == nil {
		h = newHistogram(latencyBuckets)
		m.httpLatencies[endpoint] = h
	}
	h.observe(seconds)
	m.mu.Unlock()
}

// observeAdmissionWait records how long a job sat queued before running.
func (m *serverMetrics) observeAdmissionWait(seconds float64) {
	m.mu.Lock()
	m.admissionWait.observe(seconds)
	m.mu.Unlock()
}

func (m *serverMetrics) countCache(hit bool) {
	m.mu.Lock()
	if hit {
		m.cacheHits++
	} else {
		m.cacheMisses++
	}
	m.mu.Unlock()
}

// countEval records one evaluation-pipeline run and whether its task graph
// was served from the evaluator's cache.
func (m *serverMetrics) countEval(graphCached bool) {
	m.mu.Lock()
	m.evalRuns++
	if graphCached {
		m.evalGraphHits++
	}
	m.mu.Unlock()
}

func (m *serverMetrics) countRejected()  { m.mu.Lock(); m.queueRejected++; m.mu.Unlock() }
func (m *serverMetrics) countCancelled() { m.mu.Lock(); m.jobsCancelled++; m.mu.Unlock() }

func (m *serverMetrics) snapshotCache() (hits, misses int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cacheHits, m.cacheMisses
}

func (m *serverMetrics) snapshotRuns() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.partRuns))
	for k, v := range m.partRuns {
		out[k] = v
	}
	return out
}

// gauges are the instantaneous values the server contributes at render time.
type gauges struct {
	queueDepth   int
	inflight     int64
	cacheBytes   int64
	cacheEntries int
	draining     bool
}

// render writes the whole metric set in Prometheus text exposition format.
// Label sets are emitted in sorted order so the output is deterministic.
func (m *serverMetrics) render(w io.Writer, g gauges) {
	m.mu.Lock()
	defer m.mu.Unlock()

	writeSorted := func(name, help string, vals map[string]int64, label string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{%s} %d\n", name, fmt.Sprintf(label, splitKey(k)...), vals[k])
		}
	}

	writeSorted("tempartd_requests_total", "HTTP requests by endpoint, method and status code.",
		m.requests, `endpoint=%q,method=%q,code=%q`)
	writeSorted("tempartd_partition_runs_total", "Partitioner executions by strategy (cache hits and dedup joins excluded).",
		m.partRuns, `strategy=%q`)

	fmt.Fprintf(w, "# HELP tempartd_partition_latency_seconds Partition execution latency by strategy.\n")
	fmt.Fprintf(w, "# TYPE tempartd_partition_latency_seconds histogram\n")
	strategies := make([]string, 0, len(m.latencies))
	for s := range m.latencies {
		strategies = append(strategies, s)
	}
	sort.Strings(strategies)
	for _, s := range strategies {
		h := m.latencies[s]
		var cum int64
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "tempartd_partition_latency_seconds_bucket{strategy=%q,le=%q} %d\n", s, trimFloat(ub), cum)
		}
		fmt.Fprintf(w, "tempartd_partition_latency_seconds_bucket{strategy=%q,le=\"+Inf\"} %d\n", s, cum+h.inf)
		fmt.Fprintf(w, "tempartd_partition_latency_seconds_sum{strategy=%q} %g\n", s, h.sum)
		fmt.Fprintf(w, "tempartd_partition_latency_seconds_count{strategy=%q} %d\n", s, h.total)
	}

	writeSorted("tempartd_repart_runs_total", "Repartitioner executions by resolved mode.",
		m.repartRuns, `mode=%q`)

	writeHist := func(name, help, label string, hists map[string]*histogram) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		keys := make([]string, 0, len(hists))
		for k := range hists {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h := hists[k]
			var cum int64
			for i, ub := range h.bounds {
				cum += h.counts[i]
				fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, label, k, trimFloat(ub), cum)
			}
			fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, k, cum+h.inf)
			fmt.Fprintf(w, "%s_sum{%s=%q} %g\n", name, label, k, h.sum)
			fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, label, k, h.total)
		}
	}
	writeHist("tempartd_repart_latency_seconds",
		"Repartition execution latency by resolved mode (compare incremental modes against scratch).",
		"mode", m.repartLatencies)

	writeHist("tempartd_http_request_duration_seconds",
		"Wall-clock latency of instrumented HTTP exchanges by endpoint.",
		"endpoint", m.httpLatencies)

	fmt.Fprintf(w, "# HELP tempartd_admission_wait_seconds Time admitted jobs spent queued before a worker picked them up.\n")
	fmt.Fprintf(w, "# TYPE tempartd_admission_wait_seconds histogram\n")
	{
		h := m.admissionWait
		var cum int64
		for i, ub := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "tempartd_admission_wait_seconds_bucket{le=%q} %d\n", trimFloat(ub), cum)
		}
		fmt.Fprintf(w, "tempartd_admission_wait_seconds_bucket{le=\"+Inf\"} %d\n", cum+h.inf)
		fmt.Fprintf(w, "tempartd_admission_wait_seconds_sum %g\n", h.sum)
		fmt.Fprintf(w, "tempartd_admission_wait_seconds_count %d\n", h.total)
	}

	fmt.Fprintf(w, "# HELP tempartd_repart_migration_bytes Serialized bytes moved between domains per repartition.\n")
	fmt.Fprintf(w, "# TYPE tempartd_repart_migration_bytes histogram\n")
	{
		h := m.migrationBytes
		var cum int64
		for i, ub := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "tempartd_repart_migration_bytes_bucket{le=%q} %d\n", trimFloat(ub), cum)
		}
		fmt.Fprintf(w, "tempartd_repart_migration_bytes_bucket{le=\"+Inf\"} %d\n", cum+h.inf)
		fmt.Fprintf(w, "tempartd_repart_migration_bytes_sum %g\n", h.sum)
		fmt.Fprintf(w, "tempartd_repart_migration_bytes_count %d\n", h.total)
	}

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("tempartd_cache_hits_total", "Partition requests served from the content-addressed cache.", m.cacheHits)
	counter("tempartd_cache_misses_total", "Partition requests that missed the cache.", m.cacheMisses)
	if tot := m.cacheHits + m.cacheMisses; tot > 0 {
		fmt.Fprintf(w, "# HELP tempartd_cache_hit_ratio Fraction of lookups served from cache.\n# TYPE tempartd_cache_hit_ratio gauge\ntempartd_cache_hit_ratio %g\n",
			float64(m.cacheHits)/float64(tot))
	}
	counter("tempartd_repart_parent_hits_total", "Repartition warm starts whose parent part_hash was found in the partition store.", m.parentHits)
	counter("tempartd_repart_parent_misses_total", "Repartition warm starts whose parent part_hash was missing (evicted or unknown).", m.parentMisses)
	if tot := m.parentHits + m.parentMisses; tot > 0 {
		fmt.Fprintf(w, "# HELP tempartd_repart_warm_start_hit_ratio Fraction of parent part_hash lookups that hit the partition store.\n# TYPE tempartd_repart_warm_start_hit_ratio gauge\ntempartd_repart_warm_start_hit_ratio %g\n",
			float64(m.parentHits)/float64(tot))
	}
	counter("tempartd_eval_runs_total", "Evaluation-pipeline runs (requests carrying an evaluate spec).", m.evalRuns)
	counter("tempartd_eval_graph_cache_hits_total", "Evaluation runs whose task graph came from the graph cache.", m.evalGraphHits)
	counter("tempartd_queue_rejected_total", "Requests rejected with 429 because the admission queue was full.", m.queueRejected)
	counter("tempartd_jobs_cancelled_total", "Jobs stopped before completion by disconnect, deadline or explicit cancel.", m.jobsCancelled)
	gauge("tempartd_queue_depth", "Jobs waiting in the admission queue.", int64(g.queueDepth))
	gauge("tempartd_inflight_jobs", "Jobs currently executing on the worker pool.", g.inflight)
	gauge("tempartd_cache_bytes", "Bytes held by the result cache.", g.cacheBytes)
	gauge("tempartd_cache_entries", "Entries held by the result cache.", int64(g.cacheEntries))
	draining := int64(0)
	if g.draining {
		draining = 1
	}
	gauge("tempartd_draining", "1 while the server is draining for shutdown.", draining)
}

// renderStoreMetrics writes the durability tier's tempartd_store_* series.
// It takes a stats snapshot rather than the store itself so rendering never
// contends with the batcher.
func renderStoreMetrics(w io.Writer, st store.Stats) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("tempartd_store_puts_total", "Artifacts committed to the durable store.", st.Puts)
	counter("tempartd_store_put_bytes_total", "Artifact bytes committed to the durable store.", st.PutBytes)
	counter("tempartd_store_dedup_skips_total", "Artifact writes elided because the content address was already committed.", st.DedupSkips)
	counter("tempartd_store_reads_total", "Store read-through lookups.", st.Reads)
	counter("tempartd_store_read_hits_total", "Store read-through lookups that found a committed artifact.", st.ReadHits)
	counter("tempartd_store_read_corrupt_total", "Store reads whose blob bytes no longer matched the recorded digest.", st.ReadCorrupt)
	counter("tempartd_store_batch_flushes_total", "Batched commit flushes (each pays one fsync set).", st.BatchFlushes)
	counter("tempartd_store_batched_commits_total", "Commits covered by batched flushes (ratio to flushes = amortization factor).", st.BatchedCommits)
	counter("tempartd_store_flush_errors_total", "Batch flushes that failed.", st.FlushErrors)
	counter("tempartd_store_journal_records_total", "Job-journal records appended since open.", st.JournalRecords)
	gauge("tempartd_store_prov_entries", "Length of the hash-chained provenance log.", st.ProvEntries)
	gauge("tempartd_store_jobs_recovered", "Jobs folded from the journal at the last open.", st.JobsRecovered)
	gauge("tempartd_store_jobs_requeued", "Non-terminal jobs re-queued by the journal replay at the last open.", st.JobsPending)
}

// splitKey turns a '|'-joined key into label values for the format string.
func splitKey(k string) []any {
	out := []any{}
	start := 0
	for i := 0; i < len(k); i++ {
		if k[i] == '|' {
			out = append(out, k[start:i])
			start = i + 1
		}
	}
	return append(out, k[start:])
}

// trimFloat formats a bucket bound the way Prometheus clients expect
// (no trailing zeros, no scientific notation for these magnitudes).
func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
