package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// latencyBuckets are the upper bounds (seconds) of the partition latency
// histogram. Partitions range from sub-millisecond (cache-sized toy meshes)
// to minutes (full-scale PPRIME_NOZZLE), so the buckets span five decades.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120}

// histogram is a fixed-bucket cumulative histogram (Prometheus semantics).
type histogram struct {
	counts []int64 // per bucket, non-cumulative; rendered cumulatively
	inf    int64
	sum    float64
	total  int64
}

func (h *histogram) observe(v float64) {
	h.sum += v
	h.total++
	for i, ub := range latencyBuckets {
		if v <= ub {
			h.counts[i]++
			return
		}
	}
	h.inf++
}

// serverMetrics collects the daemon's counters and histograms. Gauges
// (queue depth, in-flight jobs, cache occupancy) are sampled from the server
// at render time rather than stored. All methods are safe for concurrent
// use.
type serverMetrics struct {
	mu sync.Mutex

	requests  map[string]int64 // "endpoint|code" -> count
	partRuns  map[string]int64 // strategy -> actual partitioner executions
	latencies map[string]*histogram

	cacheHits     int64
	cacheMisses   int64
	queueRejected int64
	jobsCancelled int64
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{
		requests:  map[string]int64{},
		partRuns:  map[string]int64{},
		latencies: map[string]*histogram{},
	}
}

func (m *serverMetrics) countRequest(endpoint string, code int) {
	m.mu.Lock()
	m.requests[fmt.Sprintf("%s|%d", endpoint, code)]++
	m.mu.Unlock()
}

func (m *serverMetrics) countRun(strategy string, seconds float64) {
	m.mu.Lock()
	m.partRuns[strategy]++
	h := m.latencies[strategy]
	if h == nil {
		h = &histogram{counts: make([]int64, len(latencyBuckets))}
		m.latencies[strategy] = h
	}
	h.observe(seconds)
	m.mu.Unlock()
}

func (m *serverMetrics) countCache(hit bool) {
	m.mu.Lock()
	if hit {
		m.cacheHits++
	} else {
		m.cacheMisses++
	}
	m.mu.Unlock()
}

func (m *serverMetrics) countRejected()  { m.mu.Lock(); m.queueRejected++; m.mu.Unlock() }
func (m *serverMetrics) countCancelled() { m.mu.Lock(); m.jobsCancelled++; m.mu.Unlock() }

func (m *serverMetrics) snapshotCache() (hits, misses int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cacheHits, m.cacheMisses
}

func (m *serverMetrics) snapshotRuns() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.partRuns))
	for k, v := range m.partRuns {
		out[k] = v
	}
	return out
}

// gauges are the instantaneous values the server contributes at render time.
type gauges struct {
	queueDepth   int
	inflight     int64
	cacheBytes   int64
	cacheEntries int
	draining     bool
}

// render writes the whole metric set in Prometheus text exposition format.
// Label sets are emitted in sorted order so the output is deterministic.
func (m *serverMetrics) render(w io.Writer, g gauges) {
	m.mu.Lock()
	defer m.mu.Unlock()

	writeSorted := func(name, help string, vals map[string]int64, label string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{%s} %d\n", name, fmt.Sprintf(label, splitKey(k)...), vals[k])
		}
	}

	writeSorted("tempartd_requests_total", "HTTP requests by endpoint and status code.",
		m.requests, `endpoint=%q,code=%q`)
	writeSorted("tempartd_partition_runs_total", "Partitioner executions by strategy (cache hits and dedup joins excluded).",
		m.partRuns, `strategy=%q`)

	fmt.Fprintf(w, "# HELP tempartd_partition_latency_seconds Partition execution latency by strategy.\n")
	fmt.Fprintf(w, "# TYPE tempartd_partition_latency_seconds histogram\n")
	strategies := make([]string, 0, len(m.latencies))
	for s := range m.latencies {
		strategies = append(strategies, s)
	}
	sort.Strings(strategies)
	for _, s := range strategies {
		h := m.latencies[s]
		var cum int64
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "tempartd_partition_latency_seconds_bucket{strategy=%q,le=%q} %d\n", s, trimFloat(ub), cum)
		}
		fmt.Fprintf(w, "tempartd_partition_latency_seconds_bucket{strategy=%q,le=\"+Inf\"} %d\n", s, cum+h.inf)
		fmt.Fprintf(w, "tempartd_partition_latency_seconds_sum{strategy=%q} %g\n", s, h.sum)
		fmt.Fprintf(w, "tempartd_partition_latency_seconds_count{strategy=%q} %d\n", s, h.total)
	}

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("tempartd_cache_hits_total", "Partition requests served from the content-addressed cache.", m.cacheHits)
	counter("tempartd_cache_misses_total", "Partition requests that missed the cache.", m.cacheMisses)
	if tot := m.cacheHits + m.cacheMisses; tot > 0 {
		fmt.Fprintf(w, "# HELP tempartd_cache_hit_ratio Fraction of lookups served from cache.\n# TYPE tempartd_cache_hit_ratio gauge\ntempartd_cache_hit_ratio %g\n",
			float64(m.cacheHits)/float64(tot))
	}
	counter("tempartd_queue_rejected_total", "Requests rejected with 429 because the admission queue was full.", m.queueRejected)
	counter("tempartd_jobs_cancelled_total", "Jobs stopped before completion by disconnect, deadline or explicit cancel.", m.jobsCancelled)
	gauge("tempartd_queue_depth", "Jobs waiting in the admission queue.", int64(g.queueDepth))
	gauge("tempartd_inflight_jobs", "Jobs currently executing on the worker pool.", g.inflight)
	gauge("tempartd_cache_bytes", "Bytes held by the result cache.", g.cacheBytes)
	gauge("tempartd_cache_entries", "Entries held by the result cache.", int64(g.cacheEntries))
	draining := int64(0)
	if g.draining {
		draining = 1
	}
	gauge("tempartd_draining", "1 while the server is draining for shutdown.", draining)
}

// splitKey turns "endpoint|code" into label values for the format string.
func splitKey(k string) []any {
	out := []any{}
	start := 0
	for i := 0; i < len(k); i++ {
		if k[i] == '|' {
			out = append(out, k[start:i])
			start = i + 1
		}
	}
	return append(out, k[start:])
}

// trimFloat formats a bucket bound the way Prometheus clients expect
// (no trailing zeros, no scientific notation for these magnitudes).
func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
