package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tempart/internal/mesh"
	"tempart/internal/temporal"
)

// smallReq is a fast request (sub-second on any machine) used throughout.
func smallReq(seed int64) string {
	return fmt.Sprintf(`{"mesh":"CYLINDER","scale":0.002,"k":4,"strategy":"MC_TL","options":{"seed":%d}}`, seed)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/partition", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, b
}

func fetchMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

func metricValue(t *testing.T, metrics, line string) string {
	t.Helper()
	for _, l := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(l, line+" ") {
			return strings.TrimPrefix(l, line+" ")
		}
	}
	return ""
}

func TestPartitionSyncCacheHitAndQuality(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp, body := postJSON(t, ts.URL, smallReq(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Tempartd-Cache"); got != "miss" {
		t.Fatalf("first request cache header = %q, want miss", got)
	}
	var pr PartitionResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if pr.K != 4 || pr.Strategy != "MC_TL" || len(pr.Part) != pr.Mesh.Cells {
		t.Fatalf("malformed response: k=%d strat=%q len(part)=%d cells=%d",
			pr.K, pr.Strategy, len(pr.Part), pr.Mesh.Cells)
	}
	if len(pr.Quality.LevelImbalance) == 0 || pr.Quality.NumDomains != 4 {
		t.Fatalf("quality block missing: %+v", pr.Quality)
	}

	resp2, body2 := postJSON(t, ts.URL, smallReq(1))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Tempartd-Cache"); got != "hit" {
		t.Fatalf("second request cache header = %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Fatalf("cache returned different bytes than the original run")
	}

	m := fetchMetrics(t, ts.URL)
	if got := metricValue(t, m, "tempartd_cache_hits_total"); got != "1" {
		t.Fatalf("cache_hits_total = %q, want 1\nmetrics:\n%s", got, m)
	}
	if got := metricValue(t, m, "tempartd_cache_misses_total"); got != "1" {
		t.Fatalf("cache_misses_total = %q, want 1", got)
	}
	if !strings.Contains(m, `tempartd_partition_runs_total{strategy="MC_TL"} 1`) {
		t.Fatalf("expected exactly one partition run in metrics:\n%s", m)
	}
	// A different seed is a different content address: miss again.
	resp3, _ := postJSON(t, ts.URL, smallReq(2))
	if got := resp3.Header.Get("X-Tempartd-Cache"); got != "hit" && resp3.StatusCode == http.StatusOK {
		// expected: miss
		if got == "hit" {
			t.Fatalf("distinct request must not hit the cache")
		}
	}
}

func TestSingleflightDedup(t *testing.T) {
	// Gate execution so both requests are provably in flight together.
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	s, ts := newTestServer(t, Config{Workers: 2, execGate: func(ctx context.Context, r *PartitionRequest) error {
		started <- struct{}{}
		<-release
		return nil
	}})

	const n = 4
	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL, smallReq(7))
			codes[i] = resp.StatusCode
			bodies[i] = body
		}(i)
	}
	// Exactly one execution must start even with 2 idle workers.
	<-started
	select {
	case <-started:
		t.Fatalf("two executions started for identical concurrent requests")
	case <-time.After(200 * time.Millisecond):
	}
	close(release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d returned different bytes", i)
		}
	}
	if runs := s.metrics.snapshotRuns()["MC_TL"]; runs != 1 {
		t.Fatalf("partition ran %d times, want 1 (singleflight)", runs)
	}
}

func TestQueueFull429(t *testing.T) {
	block := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1,
		execGate: func(ctx context.Context, r *PartitionRequest) error {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil
		}})
	defer close(block)

	// Occupy the single worker, then fill the single queue slot. Async
	// submissions return immediately, so admission order is deterministic
	// once the first job reports running.
	submit := func(seed int64) (*http.Response, []byte) {
		resp, err := http.Post(ts.URL+"/v1/partition?async=1", "application/json",
			strings.NewReader(smallReq(seed)))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}
	r1, _ := submit(100)
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: status %d", r1.StatusCode)
	}
	waitInflight(t, s, 1)
	r2, _ := submit(101)
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: status %d", r2.StatusCode)
	}

	r3, body := postJSON(t, ts.URL, smallReq(102))
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d, body %s, want 429", r3.StatusCode, body)
	}
	if r3.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After header")
	}
	m := fetchMetrics(t, ts.URL)
	if got := metricValue(t, m, "tempartd_queue_rejected_total"); got != "1" {
		t.Fatalf("queue_rejected_total = %q, want 1", got)
	}
	if got := metricValue(t, m, "tempartd_queue_depth"); got != "1" {
		t.Fatalf("queue_depth = %q, want 1", got)
	}
}

func waitInflight(t *testing.T, s *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.inflight.Load() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("inflight never reached %d", want)
}

func TestAsyncJobLifecycleAndCancel(t *testing.T) {
	gateReached := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1,
		execGate: func(ctx context.Context, r *PartitionRequest) error {
			close(gateReached)
			<-ctx.Done() // hold until cancelled: simulates a runaway job
			return nil
		}})

	resp, err := http.Post(ts.URL+"/v1/partition?async=1", "application/json",
		strings.NewReader(smallReq(55)))
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		JobID string `json:"job_id"`
		URL   string `json:"url"`
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d body %s", resp.StatusCode, b)
	}
	if err := json.Unmarshal(b, &acc); err != nil || acc.JobID == "" {
		t.Fatalf("bad accept body %s: %v", b, err)
	}
	<-gateReached

	get := func() jobView {
		r, err := http.Get(ts.URL + acc.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var v jobView
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v
	}
	if v := get(); v.State != "running" {
		t.Fatalf("job state = %q, want running", v.State)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+acc.URL, nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if dr.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d", dr.StatusCode)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		v := get()
		if v.State == "cancelled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached cancelled state, still %q", v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if hits, _ := s.metrics.snapshotCache(); hits != 0 {
		t.Fatalf("cancelled job must not populate the cache")
	}
	m := fetchMetrics(t, ts.URL)
	if got := metricValue(t, m, "tempartd_jobs_cancelled_total"); got != "1" {
		t.Fatalf("jobs_cancelled_total = %q, want 1", got)
	}
}

func TestClientDisconnectCancelsJob(t *testing.T) {
	gateReached := make(chan struct{})
	cancelled := make(chan struct{})
	_, ts := newTestServer(t, Config{Workers: 1,
		execGate: func(ctx context.Context, r *PartitionRequest) error {
			close(gateReached)
			<-ctx.Done()
			close(cancelled)
			return nil
		}})

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/partition",
		strings.NewReader(smallReq(77)))
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	<-gateReached
	cancel() // client walks away mid-job

	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatalf("job context never cancelled after client disconnect")
	}
	if err := <-errc; err == nil {
		t.Fatalf("client request should have failed after cancel")
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	slow := make(chan struct{})
	s := New(Config{Workers: 1, execGate: func(ctx context.Context, r *PartitionRequest) error {
		<-slow
		return nil
	}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/partition?async=1", "application/json",
		strings.NewReader(smallReq(200)))
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		JobID string `json:"job_id"`
		URL   string `json:"url"`
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(b, &acc); err != nil {
		t.Fatalf("accept body %s: %v", b, err)
	}
	waitInflight(t, s, 1)

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()

	// While draining: health says 503 and new work is refused.
	waitDraining(t, ts.URL)
	r2, _ := postJSON(t, ts.URL, smallReq(201))
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status %d, want 503", r2.StatusCode)
	}

	close(slow) // let the in-flight job finish
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The drained job completed with a result.
	r3, err := http.Get(ts.URL + acc.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	var v jobView
	if err := json.NewDecoder(r3.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.State != "done" || len(v.Result) == 0 {
		t.Fatalf("drained job state = %q (result %d bytes), want done with result", v.State, len(v.Result))
	}
}

func waitDraining(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusServiceUnavailable {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("healthz never reported draining")
}

func TestMeshUploadOctetStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	m := mesh.Strip([]temporal.Level{0, 0, 1, 1, 2, 2, 0, 1})
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/partition?k=2&strategy=SC_OC&seed=3",
		"application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: status %d body %s", resp.StatusCode, body)
	}
	var pr PartitionResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Part) != m.NumCells() {
		t.Fatalf("len(part) = %d, want %d", len(pr.Part), m.NumCells())
	}

	// Identical upload: content-addressed hit.
	resp2, err := http.Post(ts.URL+"/v1/partition?k=2&strategy=SC_OC&seed=3",
		"application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Tempartd-Cache"); got != "hit" {
		t.Fatalf("identical upload cache header = %q, want hit", got)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	cases := []struct {
		name, ctype, body string
		want              int
	}{
		{"malformed json", "application/json", `{"mesh":`, http.StatusBadRequest},
		{"unknown mesh", "application/json", `{"mesh":"TORUS","scale":0.01,"k":4,"strategy":"MC_TL"}`, http.StatusBadRequest},
		{"bad strategy", "application/json", `{"mesh":"CUBE","scale":0.01,"k":4,"strategy":"METIS"}`, http.StatusBadRequest},
		{"k zero", "application/json", `{"mesh":"CUBE","scale":0.01,"k":0,"strategy":"MC_TL"}`, http.StatusBadRequest},
		{"k huge", "application/json", `{"mesh":"CUBE","scale":0.01,"k":99999999,"strategy":"MC_TL"}`, http.StatusBadRequest},
		{"scale zero", "application/json", `{"mesh":"CUBE","scale":0,"k":4,"strategy":"MC_TL"}`, http.StatusBadRequest},
		{"corrupt tmsh", "application/octet-stream", "XXXXnot-a-mesh", http.StatusBadRequest},
		{"unknown field", "application/json", `{"mesh":"CUBE","scale":0.01,"k":4,"strategy":"MC_TL","bogus":1}`, http.StatusBadRequest},
		{"bad content type", "text/csv", "a,b", http.StatusUnsupportedMediaType},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/partition?k=2&strategy=SC_OC", tc.ctype, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}

	// Wrong method → 405 from the pattern router.
	resp, err := http.Get(ts.URL + "/v1/partition")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/partition: status %d, want 405", resp.StatusCode)
	}

	// Unknown job id → 404.
	resp, err = http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

func TestMeshesAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, err := http.Get(ts.URL + "/v1/meshes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v struct {
		Meshes []meshView `json:"meshes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if len(v.Meshes) != 3 || v.Meshes[0].Name != "CYLINDER" {
		t.Fatalf("unexpected mesh list: %+v", v.Meshes)
	}

	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", h.StatusCode)
	}
}
