package server

import (
	"errors"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"tempart/internal/mesh"
	"tempart/internal/temporal"
)

// FuzzPartitionRequest hammers the request decoder with arbitrary bytes under
// both content types. The decoder must never panic; every rejection must be a
// requestError carrying a 4xx status, so a malformed body can never surface
// as a 5xx or reach the worker pool.
func FuzzPartitionRequest(f *testing.F) {
	f.Add(`{"mesh":"CYLINDER","scale":0.01,"k":16,"strategy":"MC_TL"}`, "", true)
	f.Add(`{"mesh":"CUBE","scale":0.05,"k":4,"strategy":"SC_OC","options":{"seed":7,"trials":2}}`, "", true)
	f.Add(`{"mesh":`, "", true)
	f.Add(`null`, "", true)
	f.Add(`{}`, "", true)
	f.Add(`{"mesh":"CUBE","scale":1e308,"k":-1,"strategy":""}`, "", true)
	f.Add("TMSH garbage", "k=4&strategy=MC_TL", false)
	f.Add("", "k=0&strategy=nope&seed=x&tol=NaN", false)
	var buf strings.Builder
	m := mesh.Strip([]temporal.Level{0, 1, 2, 1, 0})
	_ = m.Encode(&buf)
	f.Add(buf.String(), "k=2&strategy=SC_OC&seed=1", false)

	f.Fuzz(func(t *testing.T, body, rawQuery string, isJSON bool) {
		ctype := "application/octet-stream"
		if isJSON {
			ctype = "application/json"
		}
		q, err := url.ParseQuery(rawQuery)
		if err != nil {
			q = url.Values{}
		}
		req, err := decodePartitionRequest(ctype, q, strings.NewReader(body), 1<<20)
		if err != nil {
			var rerr *requestError
			if !errors.As(err, &rerr) {
				t.Fatalf("decode error is not a requestError: %T %v", err, err)
			}
			if rerr.code < 400 || rerr.code > 499 {
				t.Fatalf("decode failure mapped to %d, want 4xx: %v", rerr.code, rerr.msg)
			}
			return
		}
		// Accepted requests must be fully canonical and in bounds: the worker
		// and cache key trust these invariants.
		if req.Uploaded == nil && !knownGenerator(req.MeshName) {
			t.Fatalf("accepted unknown generator %q", req.MeshName)
		}
		if req.K < 1 || req.K > maxK {
			t.Fatalf("accepted k = %d", req.K)
		}
		if req.Strategy != req.strat.String() {
			t.Fatalf("strategy not canonicalized: %q vs %q", req.Strategy, req.strat.String())
		}
		if req.Options.Method != "rb" && req.Options.Method != "kway" {
			t.Fatalf("accepted method %q", req.Options.Method)
		}
		_ = req.key() // must not panic
	})
}

// TestDecodeRejects415 pins the only non-4xx-on-body path: an unsupported
// content type, which maps to 415 rather than 400.
func TestDecodeRejects415(t *testing.T) {
	_, err := decodePartitionRequest("text/html", url.Values{}, strings.NewReader("<p>"), 1<<10)
	var rerr *requestError
	if !errors.As(err, &rerr) || rerr.code != http.StatusUnsupportedMediaType {
		t.Fatalf("got %v, want 415 requestError", err)
	}
}
