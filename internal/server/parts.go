package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"

	"tempart/internal/partition"
)

// The partition store content-addresses encoded partition results (TPRT
// bytes keyed by their SHA-256) so repartition requests can warm-start from
// a prior result by hash alone, without re-uploading the assignment. It
// reuses the byte-budgeted LRU of the response cache; entries are immutable.

// storePartition encodes res, inserts it under its content hash and returns
// the hash in hex — the part_hash clients quote back to /v1/repartition.
func (s *Server) storePartition(res *partition.Result) (string, *requestError) {
	var buf bytes.Buffer
	if err := res.Encode(&buf); err != nil {
		return "", &requestError{code: http.StatusInternalServerError,
			msg: fmt.Sprintf("encoding partition result: %v", err)}
	}
	sum := sha256.Sum256(buf.Bytes())
	s.parts.put(cacheKey(sum), buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// loadPartition resolves a part_hash back to a decoded result. A miss is the
// caller's problem to surface (the hash may simply have been evicted); it is
// also counted toward the warm-start hit ratio.
func (s *Server) loadPartition(hash string) (*partition.Result, *requestError) {
	raw, err := hex.DecodeString(hash)
	if err != nil || len(raw) != 32 {
		return nil, &requestError{code: http.StatusBadRequest,
			msg: fmt.Sprintf("parent_hash %q is not a 64-character hex SHA-256", hash)}
	}
	var key cacheKey
	copy(key[:], raw)
	payload, ok := s.parts.get(key)
	s.metrics.countParentLookup(ok)
	if !ok {
		return nil, &requestError{code: http.StatusNotFound,
			msg: fmt.Sprintf("no stored partition with hash %s (expired or never computed here); re-partition or supply the assignment inline via \"parent\"", hash)}
	}
	res, derr := partition.DecodeResult(bytes.NewReader(payload))
	if derr != nil {
		return nil, &requestError{code: http.StatusInternalServerError,
			msg: fmt.Sprintf("stored partition %s is corrupt: %v", hash, derr)}
	}
	return res, nil
}
