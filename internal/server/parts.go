package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"

	"tempart/internal/obs"
	"tempart/internal/partition"
	"tempart/internal/store"
)

// The partition store content-addresses encoded partition results (TPRT
// bytes keyed by their SHA-256) so repartition requests can warm-start from
// a prior result by hash alone, without re-uploading the assignment. The
// byte-budgeted LRU is the hot tier; with a durable store configured it
// becomes a read-through cache — an evicted (or restart-lost) part_hash is
// reloaded from the store's NSPart namespace, so warm starts survive both
// memory pressure and daemon restarts.

// storePartition encodes res, inserts it under its content hash and returns
// the hash in hex — the part_hash clients quote back to /v1/repartition. On a
// durable daemon the encoded bytes are also committed to the store (batched;
// a crash before the flush only costs a recomputable warm-start).
func (s *Server) storePartition(ctx context.Context, res *partition.Result) (string, *requestError) {
	var buf bytes.Buffer
	if err := res.Encode(&buf); err != nil {
		return "", &requestError{code: http.StatusInternalServerError,
			msg: fmt.Sprintf("encoding partition result: %v", err)}
	}
	sum := sha256.Sum256(buf.Bytes())
	s.parts.put(cacheKey(sum), buf.Bytes())
	hash := hex.EncodeToString(sum[:])
	if s.store != nil {
		span := obs.FromContext(ctx).Start("store/persist")
		span.SetStr("ns", store.NSPart)
		s.store.CommitAsync(store.Commit{Puts: []store.Put{{
			NS: store.NSPart, Key: hash, Data: buf.Bytes(),
		}}})
		span.End()
	}
	return hash, nil
}

// loadPartition resolves a part_hash back to a decoded result, reading
// through to the durable store on an LRU miss. A miss in both tiers is the
// caller's problem to surface (the hash may simply have been evicted); it is
// also counted toward the warm-start hit ratio.
func (s *Server) loadPartition(hash string) (*partition.Result, *requestError) {
	raw, err := hex.DecodeString(hash)
	if err != nil || len(raw) != 32 {
		return nil, &requestError{code: http.StatusBadRequest,
			msg: fmt.Sprintf("parent_hash %q is not a 64-character hex SHA-256", hash)}
	}
	var key cacheKey
	copy(key[:], raw)
	payload, ok := s.parts.get(key)
	if !ok && s.store != nil {
		// hex.EncodeToString canonicalizes to lowercase, matching store keys.
		if data, sok := s.store.Get(store.NSPart, hex.EncodeToString(raw)); sok {
			payload, ok = data, true
			s.parts.put(key, data)
		}
	}
	s.metrics.countParentLookup(ok)
	if !ok {
		return nil, &requestError{code: http.StatusNotFound,
			msg: fmt.Sprintf("no stored partition with hash %s (expired or never computed here); re-partition or supply the assignment inline via \"parent\"", hash)}
	}
	res, derr := partition.DecodeResult(bytes.NewReader(payload))
	if derr != nil {
		return nil, &requestError{code: http.StatusInternalServerError,
			msg: fmt.Sprintf("stored partition %s is corrupt: %v", hash, derr)}
	}
	return res, nil
}
