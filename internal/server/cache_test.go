package server

import (
	"bytes"
	"fmt"
	"testing"
)

func ck(b byte) cacheKey {
	var k cacheKey
	k[0] = b
	return k
}

func TestCacheHitMiss(t *testing.T) {
	c := newResultCache(1 << 20)
	if _, ok := c.get(ck(1)); ok {
		t.Fatalf("empty cache must miss")
	}
	c.put(ck(1), []byte("alpha"))
	got, ok := c.get(ck(1))
	if !ok || !bytes.Equal(got, []byte("alpha")) {
		t.Fatalf("get after put: %q, %v", got, ok)
	}
	if _, ok := c.get(ck(2)); ok {
		t.Fatalf("unrelated key must miss")
	}
	// Same key, new payload: replaced, accounting stays consistent.
	c.put(ck(1), []byte("beta-longer"))
	got, _ = c.get(ck(1))
	if !bytes.Equal(got, []byte("beta-longer")) {
		t.Fatalf("update-in-place: %q", got)
	}
	b, n := c.stats()
	if n != 1 || b != int64(len("beta-longer")) {
		t.Fatalf("stats after update = (%d bytes, %d entries)", b, n)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := newResultCache(100)
	pay := bytes.Repeat([]byte("x"), 40)
	c.put(ck(1), pay)
	c.put(ck(2), pay)
	// Touch 1 so 2 becomes the least recently used.
	if _, ok := c.get(ck(1)); !ok {
		t.Fatal("key 1 vanished")
	}
	c.put(ck(3), pay) // 120 bytes > 100: evict key 2
	if _, ok := c.get(ck(2)); ok {
		t.Fatalf("LRU entry survived eviction")
	}
	for _, k := range []byte{1, 3} {
		if _, ok := c.get(ck(k)); !ok {
			t.Fatalf("key %d wrongly evicted", k)
		}
	}
	b, n := c.stats()
	if n != 2 || b != 80 {
		t.Fatalf("stats = (%d bytes, %d entries), want (80, 2)", b, n)
	}
}

func TestCacheRejectsOversizedPayload(t *testing.T) {
	c := newResultCache(10)
	c.put(ck(1), bytes.Repeat([]byte("x"), 11))
	if _, ok := c.get(ck(1)); ok {
		t.Fatalf("payload larger than the whole budget must not be cached")
	}
	b, n := c.stats()
	if b != 0 || n != 0 {
		t.Fatalf("stats = (%d, %d), want (0, 0)", b, n)
	}
}

func TestCacheKeyCanonicalization(t *testing.T) {
	// Omitted options and their explicit defaults address the same entry.
	base := &PartitionRequest{MeshName: "CUBE", Scale: 0.01, K: 8, Strategy: "MC_TL"}
	if err := base.validate(); err != nil {
		t.Fatal(err)
	}
	expl := &PartitionRequest{MeshName: "CUBE", Scale: 0.01, K: 8, Strategy: "mc_tl",
		Options: OptionsSpec{ImbalanceTol: 1.05, InitTrials: 8, RefinePasses: 8, Trials: 1, Method: "rb"}}
	if err := expl.validate(); err != nil {
		t.Fatal(err)
	}
	if base.key() != expl.key() {
		t.Fatalf("explicit defaults must hash identically to omitted options")
	}
	// Timeout never changes the result, so it never changes the key.
	to := *base
	to.TimeoutMS = 1234
	if base.key() != to.key() {
		t.Fatalf("timeout_ms must not affect the cache key")
	}
	// Every result-affecting field must change the key.
	variants := []*PartitionRequest{
		{MeshName: "CYLINDER", Scale: 0.01, K: 8, Strategy: "MC_TL"},
		{MeshName: "CUBE", Scale: 0.02, K: 8, Strategy: "MC_TL"},
		{MeshName: "CUBE", Scale: 0.01, K: 16, Strategy: "MC_TL"},
		{MeshName: "CUBE", Scale: 0.01, K: 8, Strategy: "SC_OC"},
		{MeshName: "CUBE", Scale: 0.01, K: 8, Strategy: "MC_TL", Options: OptionsSpec{Seed: 9}},
		{MeshName: "CUBE", Scale: 0.01, K: 8, Strategy: "MC_TL", Options: OptionsSpec{Method: "kway"}},
		{MeshName: "CUBE", Scale: 0.01, K: 8, Strategy: "MC_TL", Options: OptionsSpec{Trials: 4}},
	}
	seen := map[cacheKey]int{base.key(): -1}
	for i, v := range variants {
		if err := v.validate(); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		k := v.key()
		if prev, dup := seen[k]; dup {
			t.Fatalf("variant %d collides with %d: %s", i, prev,
				fmt.Sprintf("%+v vs %+v", v, variants[prev]))
		}
		seen[k] = i
	}
}
