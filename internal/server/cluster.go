package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"time"

	"tempart/internal/cluster"
	"tempart/internal/mesh"
	"tempart/internal/obs"
	"tempart/internal/partition"
	"tempart/internal/store"
)

// This file wires internal/cluster through the daemon. With Config.Cluster
// set the daemon becomes one shard of a fleet:
//
//   - requests whose content address hashes to another member are forwarded
//     there (one hop, guarded by X-Tempartd-Forwarded), so identical
//     concurrent requests anywhere in the fleet land in one singleflight on
//     the owner, and the fleet's caches shard instead of duplicating;
//   - forwarded 200 payloads are cached locally too (peer-replicated
//     caching): the next identical request on this node is a local hit;
//   - a node computing a key it does not own (hop-guarded arrivals) probes
//     the owner's cache first — the owner may have computed it already;
//   - large eligible requests run in coordinator mode: the top of the
//     bisection tree locally, subtrees fanned to peers over POST
//     /v1/internal/subtree, results stitched byte-identically;
//   - subtree RPCs run through the same job machinery as client requests
//     (admission, singleflight, result cache, durable store), so remotely
//     computed subtrees land in the peer's provenance chain under the peer's
//     node id — cross-node provenance.
//
// Without a cluster every hook here is a nil check and the daemon behaves
// exactly as a single node.

// clusterRoute consults the ring before a request is admitted locally. It
// reports (status, true) when it fully answered the exchange (forwarded to
// the owner, or served from the owner's cache); (0, false) means "compute
// locally". Peer trouble never surfaces to the client: the fallback is
// always local computation.
func (s *Server) clusterRoute(w http.ResponseWriter, r *http.Request, req jobRequest, rawBody []byte) (int, bool) {
	cl := s.cluster
	if cl == nil || req.base().debugTrace {
		return 0, false
	}
	if _, ok := req.(*subtreeRequest); ok {
		return 0, false // subtree RPCs are already routed by their coordinator
	}
	if r.URL.Query().Get("async") == "1" {
		return 0, false // job ids are node-local; async jobs run where submitted
	}
	key := req.key()
	if cl.OwnsSelf([32]byte(key)) {
		return 0, false
	}
	owner := cl.Owner([32]byte(key))
	requestID := w.Header().Get("X-Request-Id")
	traceHeader := ""
	if tc := req.base().trace; tc.Valid() {
		traceHeader = tc.Header()
	}

	if r.Header.Get(cluster.HeaderForwarded) != "" {
		// Hop guard: this request was already forwarded once, so it is never
		// forwarded again — but the sender disagreed with us about ownership
		// (membership skew), so before computing a key we don't own, probe
		// the member we think owns it.
		if payload, ok, err := cl.ProbeCache(r.Context(), owner, resultStoreKey(key), requestID, traceHeader); err == nil && ok {
			s.cache.put(key, payload)
			w.Header().Set("X-Tempartd-Cache", "peer")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(payload)
			return http.StatusOK, true
		}
		return 0, false
	}

	res, err := cl.Forward(r.Context(), owner, r.URL.Path, r.URL.RawQuery, r.Header.Get("Content-Type"), requestID, traceHeader, rawBody)
	if err != nil {
		// Owner unreachable: degraded but correct — compute locally.
		return 0, false
	}
	if res.Status == http.StatusOK {
		// Peer-replicated caching: the owner's answer is this node's answer
		// for every future identical request.
		s.cache.put(key, res.Body)
	}
	w.Header().Set("X-Tempartd-Cluster", "forwarded;peer="+owner.ID)
	if res.CacheHeader != "" {
		w.Header().Set("X-Tempartd-Cache", res.CacheHeader)
	}
	ct := res.ContentType
	if ct == "" {
		ct = "application/json"
	}
	w.Header().Set("Content-Type", ct)
	w.WriteHeader(res.Status)
	_, _ = w.Write(res.Body)
	return res.Status, true
}

// fanoutDecompose attempts coordinator mode for a partition request: split
// the bisection tree, fan subtrees across the fleet, stitch. It returns nil
// whenever the request is ineligible or the fan-out could not start — the
// caller then computes locally, so this is a pure fast-path.
func (s *Server) fanoutDecompose(ctx context.Context, r *PartitionRequest, m *mesh.Mesh, opt partition.Options) *partition.Result {
	cl := s.cluster
	if cl == nil || r.K < 2 {
		return nil
	}
	// Only the deterministic single-trial recursive-bisection path splits
	// into independent subtrees; trials and direct k-way stay local.
	if r.Options.Method != "rb" || r.Options.Trials > 1 {
		return nil
	}
	if m.NumCells() < cl.FanoutMinCells() || cl.HealthyPeerCount() == 0 {
		return nil
	}
	g, err := partition.StrategyGraph(m, r.strat)
	if err != nil {
		return nil // geometric strategy: no dual graph, no subtrees
	}
	fr := cluster.FanoutRequest{
		Strategy: r.Strategy,
		Wire: cluster.WireOptions{
			Seed:         r.Options.Seed,
			ImbalanceTol: r.Options.ImbalanceTol,
			CoarsenTo:    r.Options.CoarsenTo,
			InitTrials:   r.Options.InitTrials,
			RefinePasses: r.Options.RefinePasses,
		},
		Options:   opt,
		K:         r.K,
		RequestID: r.requestID,
		// Traced fan-outs (debug or sampled) ship the trace context on every
		// subtree RPC; peers run sampled subtrees with a recorder and the
		// coordinator grafts their span snapshots under its fan-out span.
		Trace: r.trace,
	}
	if r.Uploaded != nil {
		fr.Mesh = cluster.MeshRef{TMSH: r.meshRaw}
	} else {
		fr.Mesh = cluster.MeshRef{Gen: r.MeshName, Scale: r.Scale}
	}
	res, err := cl.FanoutPartition(ctx, g, fr)
	if err != nil {
		return nil
	}
	return res
}

// subtreeRequest is the job form of POST /v1/internal/subtree: one node of a
// remote coordinator's bisection tree. Running it through the standard job
// machinery buys admission control, singleflight (two coordinators fanning
// the same request dedup here), the result cache, and durable persistence —
// the subtree lands in this node's provenance chain under this node's id.
type subtreeRequest struct {
	wire  cluster.SubtreeWire
	strat partition.Strategy
	// synth backs base(): job views and timeouts see the subtree as a small
	// partition job.
	synth PartitionRequest
}

func (r *subtreeRequest) base() *PartitionRequest { return &r.synth }

// key content-addresses the subtree task: mesh identity, strategy, options,
// tree position (first part, k, seed) and the exact vertex set.
func (r *subtreeRequest) key() cacheKey {
	h := sha256.New()
	h.Write([]byte("tempartd/subtree/v1\x00"))
	if len(r.wire.Mesh.TMSH) > 0 {
		digest := sha256.Sum256(r.wire.Mesh.TMSH)
		h.Write([]byte("tmsh\x00"))
		h.Write(digest[:])
	} else {
		fmt.Fprintf(h, "gen\x00%s\x00%x", r.wire.Mesh.Gen, math.Float64bits(r.wire.Mesh.Scale))
	}
	o := r.wire.Options
	fmt.Fprintf(h, "\x00strat=%s seed=%d tol=%x coarsen=%d init=%d passes=%d first=%d k=%d tseed=%d\x00",
		r.wire.Strategy, o.Seed, math.Float64bits(o.ImbalanceTol), o.CoarsenTo,
		o.InitTrials, o.RefinePasses, r.wire.FirstPart, r.wire.K, r.wire.Seed)
	h.Write(r.wire.Vertices)
	var key cacheKey
	h.Sum(key[:0])
	return key
}

// decodeSubtreeRequest parses and bounds-checks a subtree RPC body.
func decodeSubtreeRequest(raw []byte) (*subtreeRequest, error) {
	var wire cluster.SubtreeWire
	if err := json.Unmarshal(raw, &wire); err != nil {
		return nil, badRequest("invalid subtree JSON: %v", err)
	}
	strat, err := partition.ParseStrategy(wire.Strategy)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	if len(wire.Mesh.TMSH) == 0 {
		if !knownGenerator(wire.Mesh.Gen) {
			return nil, badRequest("unknown mesh %q in subtree task", wire.Mesh.Gen)
		}
		if !(wire.Mesh.Scale > 0) || wire.Mesh.Scale > maxScale || math.IsNaN(wire.Mesh.Scale) {
			return nil, badRequest("subtree mesh scale %v out of range (0, %g]", wire.Mesh.Scale, maxScale)
		}
	}
	if wire.K < 1 || wire.FirstPart < 0 || wire.FirstPart+wire.K > maxK {
		return nil, badRequest("subtree part range [%d, %d+%d) out of bounds", wire.FirstPart, wire.FirstPart, wire.K)
	}
	if len(wire.Vertices) == 0 || len(wire.Vertices)%4 != 0 {
		return nil, badRequest("subtree vertex payload is %d bytes (empty or not a multiple of 4)", len(wire.Vertices))
	}
	o := wire.Options
	if o.InitTrials < 0 || o.InitTrials > maxInitTrials ||
		o.RefinePasses < 0 || o.RefinePasses > maxPasses ||
		o.CoarsenTo < 0 || o.CoarsenTo > 1<<30 {
		return nil, badRequest("subtree options out of range")
	}
	if o.ImbalanceTol != 0 && (o.ImbalanceTol < 1 || o.ImbalanceTol > 4 || math.IsNaN(o.ImbalanceTol)) {
		return nil, badRequest("subtree imbalance_tol = %v out of range [1, 4]", o.ImbalanceTol)
	}
	return &subtreeRequest{
		wire:  wire,
		strat: strat,
		synth: PartitionRequest{
			MeshName: wire.Mesh.Gen,
			Scale:    wire.Mesh.Scale,
			K:        wire.K,
			Strategy: strat.String(),
		},
	}, nil
}

// execute implements jobRequest: rebuild the dual graph from the mesh
// identity, run the subtree with the task's derived seed, and return the
// per-vertex assignments. The options arrive without parallelism on purpose
// — this node runs the subtree at its own width, and the bytes cannot tell.
func (r *subtreeRequest) execute(ctx context.Context, s *Server) ([]byte, time.Duration, *requestError) {
	var m *mesh.Mesh
	if len(r.wire.Mesh.TMSH) > 0 {
		var err error
		m, err = mesh.Decode(bytes.NewReader(r.wire.Mesh.TMSH))
		if err != nil {
			return nil, 0, &requestError{code: http.StatusBadRequest, msg: fmt.Sprintf("subtree mesh: %v", err)}
		}
	} else {
		var err error
		m, err = mesh.ByName(r.wire.Mesh.Gen, r.wire.Mesh.Scale)
		if err != nil {
			return nil, 0, &requestError{code: http.StatusBadRequest, msg: err.Error()}
		}
	}
	g, err := partition.StrategyGraph(m, r.strat)
	if err != nil {
		return nil, 0, &requestError{code: http.StatusBadRequest, msg: err.Error()}
	}
	verts, err := cluster.UnpackInt32s(r.wire.Vertices)
	if err != nil {
		return nil, 0, &requestError{code: http.StatusBadRequest, msg: err.Error()}
	}
	n := g.NumVertices()
	for _, v := range verts {
		if v < 0 || int(v) >= n {
			return nil, 0, &requestError{code: http.StatusBadRequest,
				msg: fmt.Sprintf("subtree vertex %d out of range [0, %d)", v, n)}
		}
	}
	opt := partition.Options{
		Seed:         r.wire.Options.Seed,
		ImbalanceTol: r.wire.Options.ImbalanceTol,
		CoarsenTo:    r.wire.Options.CoarsenTo,
		InitTrials:   r.wire.Options.InitTrials,
		RefinePasses: r.wire.Options.RefinePasses,
		Parallelism:  s.cfg.clampParallelism(0),
	}
	part := make([]int32, n)
	task := partition.SubtreeTask{Vertices: verts, FirstPart: r.wire.FirstPart, K: r.wire.K, Seed: r.wire.Seed}
	// On a sampled trace the job carries a recorder; a root span brackets the
	// subtree work so the coordinator's stitched trace shows this node's
	// contribution even if the pipeline below records nothing.
	span := obs.StartSpan(ctx, "server/subtree")
	if span.Active() {
		span.SetInt("first_part", int64(r.wire.FirstPart))
		span.SetInt("k", int64(r.wire.K))
		span.SetInt("vertices", int64(len(verts)))
		ctx = obs.ContextWithSpan(ctx, span)
	}
	start := time.Now()
	err = partition.PartitionSubtree(ctx, g, task, opt, part)
	span.End()
	if err != nil {
		return nil, 0, &requestError{code: http.StatusInternalServerError, msg: err.Error()}
	}
	elapsed := time.Since(start)
	vals := make([]int32, len(verts))
	for i, v := range verts {
		vals[i] = part[v]
	}
	reply := &cluster.SubtreeReply{
		NodeID: s.cfg.NodeID,
		Parts:  cluster.PackInt32s(vals),
	}
	if rec := obs.FromContext(ctx); rec.Enabled() {
		// Ship the span snapshot home for stitching. This payload is private
		// (never cached or persisted — see serveJob's sampled-subtree path),
		// so the spans poison nothing.
		reply.Spans = rec.Snapshot()
	}
	payload, err := json.Marshal(reply)
	if err != nil {
		return nil, 0, &requestError{code: http.StatusInternalServerError, msg: err.Error()}
	}
	return payload, elapsed, nil
}

// handleSubtree serves POST /v1/internal/subtree (registered only on
// cluster members).
func (s *Server) handleSubtree(w http.ResponseWriter, r *http.Request) int {
	raw, err := readRequestBody(r.Body, s.cfg.MaxBodyBytes)
	if err != nil {
		return writeDecodeError(w, err)
	}
	req, err := decodeSubtreeRequest(raw)
	if err != nil {
		return writeDecodeError(w, err)
	}
	s.cluster.CountSubtreeServed()
	return s.serveJob(w, r, req, nil)
}

// handleCacheProbe serves GET /v1/internal/cache/{key}: the peer-read path.
// A hit answers with the cached (or durably stored) payload; a miss is 404.
// It never computes anything.
func (s *Server) handleCacheProbe(w http.ResponseWriter, r *http.Request) int {
	keyHex := r.PathValue("key")
	key, ok := parseCacheKey(keyHex)
	if !ok {
		return writeError(w, http.StatusBadRequest, "malformed cache key")
	}
	payload, ok := s.cache.get(key)
	if !ok && s.store != nil {
		payload, ok = s.store.Get(store.NSResult, resultStoreKey(key))
		if ok {
			s.cache.put(key, payload)
		}
	}
	if !ok {
		return writeError(w, http.StatusNotFound, "not cached")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(payload)
	return http.StatusOK
}

// handleClusterStatus serves GET /v1/cluster/status: this member's view of
// the fleet (membership, per-peer breaker states, fan-out gate).
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) int {
	return writeJSON(w, http.StatusOK, s.cluster.Status())
}

// parseCacheKey decodes the 64-hex-digit content address of a cache probe.
func parseCacheKey(hexKey string) (cacheKey, bool) {
	var key cacheKey
	if len(hexKey) != 2*len(key) {
		return key, false
	}
	for i := 0; i < len(key); i++ {
		hi, ok1 := hexNibble(hexKey[2*i])
		lo, ok2 := hexNibble(hexKey[2*i+1])
		if !ok1 || !ok2 {
			return key, false
		}
		key[i] = hi<<4 | lo
	}
	return key, true
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}
