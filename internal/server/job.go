package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"tempart/internal/core"
	"tempart/internal/mesh"
	pmetrics "tempart/internal/metrics"
	"tempart/internal/obs"
	"tempart/internal/partition"
	"tempart/internal/store"
)

// jobState is the lifecycle of a partition job.
type jobState int32

const (
	jobQueued jobState = iota
	jobRunning
	jobDone
	jobFailed
	jobCancelled
)

func (s jobState) String() string {
	switch s {
	case jobQueued:
		return "queued"
	case jobRunning:
		return "running"
	case jobDone:
		return "done"
	case jobFailed:
		return "failed"
	case jobCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("jobState(%d)", int32(s))
}

// jobRequest is the unit of work the worker pool executes. Both plain
// partitions and warm-started repartitions implement it; the job machinery
// (admission, singleflight, cancellation, caching) is shared.
type jobRequest interface {
	// key is the content address for the result cache and singleflight map.
	key() cacheKey
	// base exposes the common request fields (mesh identity, k, strategy,
	// options, timeout) for job views and the exec gate.
	base() *PartitionRequest
	// execute runs the work under ctx and returns the cacheable response
	// payload and how long the computational core took.
	execute(ctx context.Context, s *Server) (payload []byte, elapsed time.Duration, err *requestError)
}

// job is one partition execution. Identical concurrent requests share a
// single job (singleflight on the content-address key): each interested
// party holds one reference; when the count drops to zero the job's context
// is cancelled, so work stops as soon as nobody is listening.
type job struct {
	id  string
	key cacheKey
	req jobRequest

	ctx    context.Context
	cancel context.CancelFunc

	state atomic.Int32

	// done is closed by the worker after payload/status/errMsg are final.
	done chan struct{}

	// Guarded by Server.mu.
	refs    int
	created time.Time

	// Written by the worker before close(done); read only after <-done.
	payload   []byte
	status    int
	errMsg    string
	elapsed   time.Duration
	fromCache bool

	// rec is the per-request span recorder of a ?debug=trace job; nil
	// otherwise (the pipeline's instrumentation then costs nothing). Traced
	// jobs are private — never singleflighted — and noCache keeps their
	// payload (which embeds the debug block) out of the shared result cache.
	rec     *obs.Recorder
	noCache bool

	// journaled marks a job whose lifecycle is recorded in the store's job
	// journal (async submissions on a durable daemon, and every job replayed
	// from the journal after a restart).
	journaled atomic.Bool
}

func (j *job) setState(s jobState) { j.state.Store(int32(s)) }
func (j *job) getState() jobState  { return jobState(j.state.Load()) }

// acquireJob returns the in-flight job for the request's key, creating and
// enqueueing one if needed, and takes one reference on it. It returns
// errQueueFull when a new job cannot be admitted.
var errQueueFull = errors.New("admission queue full")
var errDraining = errors.New("server is draining")

func (s *Server) acquireJob(req jobRequest) (*job, error) {
	key := req.key()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errDraining
	}
	private := req.base().debugTrace
	if !private {
		if j, ok := s.flights[key]; ok {
			j.refs++
			return j, nil
		}
	}
	timeout := s.cfg.DefaultTimeout
	if req.base().TimeoutMS > 0 {
		if d := time.Duration(req.base().TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	j := &job{
		id:      fmt.Sprintf("%x-%d", key[:6], s.seq.Add(1)),
		key:     key,
		req:     req,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		refs:    1,
		created: time.Now(),
	}
	if private {
		j.rec = obs.NewRecorder()
		j.noCache = true
	} else if req.base().sampled {
		// Head-sampled job: record spans for the flight recorder, but keep
		// the payload canonical and cacheable — the debug block is gated on
		// debugTrace, not on the recorder, so sampled bytes match unsampled.
		j.rec = obs.NewRecorder()
	}
	select {
	case s.queue <- j:
	default:
		cancel()
		return nil, errQueueFull
	}
	if !private {
		s.flights[key] = j
	}
	s.rememberJob(j)
	return j, nil
}

// releaseJob drops one reference. When the last reference goes away before
// completion, the job's context is cancelled — a queued job will be skipped
// by the worker, a running one stops at the partitioner's next boundary.
func (s *Server) releaseJob(j *job) {
	s.mu.Lock()
	j.refs--
	last := j.refs <= 0
	s.mu.Unlock()
	if last {
		j.cancel()
	}
}

// rememberJob registers the job for /v1/jobs lookups, evicting the oldest
// completed entries beyond the retention cap. Callers hold s.mu.
func (s *Server) rememberJob(j *job) {
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	for len(s.jobOrder) > s.cfg.JobRetention {
		victim := s.jobs[s.jobOrder[0]]
		if victim != nil {
			switch victim.getState() {
			case jobQueued, jobRunning:
				return // oldest is still live; retention grows temporarily
			}
			delete(s.jobs, victim.id)
		}
		s.jobOrder = s.jobOrder[1:]
	}
}

// worker drains the admission queue until it closes (shutdown).
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job and publishes its outcome. All error paths funnel
// through fail() so waiters always observe a terminal state.
func (s *Server) runJob(j *job) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	defer j.cancel() // release the deadline timer

	finish := func() {
		s.mu.Lock()
		// A private (debug-trace) job never registered in flights; deleting
		// unconditionally could evict a concurrent public job with the same
		// content address.
		if s.flights[j.key] == j {
			delete(s.flights, j.key)
		}
		s.mu.Unlock()
		close(j.done)
	}

	fail := func(code int, msg string) {
		if errors.Is(j.ctx.Err(), context.Canceled) {
			j.setState(jobCancelled)
			j.status = statusClientClosedRequest
			j.errMsg = "cancelled"
			s.metrics.countCancelled()
			s.journalState(j, store.JobCancelled, j.errMsg)
		} else if errors.Is(j.ctx.Err(), context.DeadlineExceeded) {
			j.setState(jobCancelled)
			j.status = http.StatusGatewayTimeout
			j.errMsg = "deadline exceeded"
			s.metrics.countCancelled()
			s.journalState(j, store.JobCancelled, j.errMsg)
		} else {
			j.setState(jobFailed)
			j.status = code
			j.errMsg = msg
			s.journalState(j, store.JobFailed, msg)
		}
		finish()
	}

	if j.ctx.Err() != nil {
		fail(0, "")
		return
	}
	j.setState(jobRunning)
	s.metrics.observeAdmissionWait(time.Since(j.created).Seconds())
	s.journalState(j, store.JobRunning, "")

	if s.cfg.execGate != nil {
		if err := s.cfg.execGate(j.ctx, j.req.base()); err != nil {
			fail(http.StatusInternalServerError, err.Error())
			return
		}
	}

	ctx := j.ctx
	if j.rec != nil {
		ctx = obs.WithRecorder(ctx, j.rec)
	}
	payload, elapsed, rerr := j.req.execute(ctx, s)
	// Whatever the traced pipeline recorded feeds the aggregate series on
	// /metrics and the flight-recorder ring, success or not.
	s.obsAgg.Drain(j.rec)
	s.recordFlight(j)
	if rerr != nil {
		fail(rerr.code, rerr.msg)
		return
	}
	j.payload = payload
	j.elapsed = elapsed
	// Durability before acknowledgement: the payload (and its provenance
	// entry) must be committed before any waiter — or the shared cache — can
	// observe the job as done.
	if rerr := s.persistOutcome(j, payload); rerr != nil {
		fail(rerr.code, rerr.msg)
		return
	}
	if !j.noCache {
		s.cache.put(j.key, payload)
	}
	j.status = http.StatusOK
	j.setState(jobDone)
	finish()
}

// recordFlight files a completed traced job's span tree into the flight
// recorder ring, where /v1/traces/* serves it. Untraced jobs (no recorder)
// cost one nil check.
func (s *Server) recordFlight(j *job) {
	if j.rec == nil || s.flight == nil {
		return
	}
	base := j.req.base()
	kind := kindPartition
	switch j.req.(type) {
	case *subtreeRequest:
		kind = kindSubtree
	case *RepartitionRequest:
		kind = kindRepartition
	}
	s.flight.Record(obs.FlightEntry{
		RequestID: base.requestID,
		TraceID:   base.trace.ID,
		Kind:      kind,
		Start:     j.created,
		Duration:  time.Since(j.created),
		Spans:     j.rec.Snapshot(),
		Counters:  j.rec.Counters(),
	})
}

// base implements jobRequest.
func (r *PartitionRequest) base() *PartitionRequest { return r }

// resolveMesh materialises the request's mesh (upload or generator) and
// checks k against the cell count.
func (r *PartitionRequest) resolveMesh() (*mesh.Mesh, *requestError) {
	m := r.Uploaded
	if m == nil {
		var err error
		m, err = mesh.ByName(r.MeshName, r.Scale)
		if err != nil {
			return nil, &requestError{code: http.StatusBadRequest, msg: err.Error()}
		}
	}
	if r.K > m.NumCells() {
		return nil, &requestError{code: http.StatusBadRequest,
			msg: fmt.Sprintf("k = %d exceeds the mesh's %d cells", r.K, m.NumCells())}
	}
	return m, nil
}

// execute implements jobRequest: the full partition pipeline. The encoded
// result is also stored in the server's partition store under its content
// hash so later repartition requests can warm-start from it by hash alone.
func (r *PartitionRequest) execute(ctx context.Context, s *Server) ([]byte, time.Duration, *requestError) {
	m, rerr := r.resolveMesh()
	if rerr != nil {
		return nil, 0, rerr
	}
	opt := r.partitionOptions()
	opt.Parallelism = s.cfg.clampParallelism(opt.Parallelism)
	start := time.Now()
	var result *partition.Result
	var quality pmetrics.PartitionQuality
	// Coordinator mode first: on a cluster member, a large eligible request
	// is split across the fleet. The stitched result is byte-identical to
	// the local computation, so a nil return (ineligible, no healthy peers,
	// fan-out failed) simply falls through to the ordinary path.
	if res := s.fanoutDecompose(ctx, r, m, opt); res != nil {
		result = res
		quality = pmetrics.EvaluatePartition(m, res, r.Strategy)
	} else {
		d, err := core.Decompose(ctx, m, r.K, r.strat, opt)
		if err != nil {
			return nil, 0, &requestError{code: http.StatusInternalServerError, msg: err.Error()}
		}
		result = d.Result
		quality = d.Quality
	}
	elapsed := time.Since(start)
	s.metrics.countRun(r.Strategy, elapsed.Seconds())

	partHash, rerr := s.storePartition(ctx, result)
	if rerr != nil {
		return nil, 0, rerr
	}
	var evalRes *EvalResult
	if r.Evaluate != nil {
		evalRes, rerr = s.runEval(ctx, r.Evaluate, m, r.evalMeshID(), result.Part, r.K)
		if rerr != nil {
			return nil, 0, rerr
		}
	}
	// The debug block is gated on the explicit ?debug=trace flag, NOT on the
	// recorder: head-sampled jobs run with a recorder too, and their payload
	// must stay byte-identical to (and cacheable as) the untraced result.
	var dbg *DebugInfo
	if r.debugTrace {
		dbg = debugInfo(obs.FromContext(ctx))
	}
	payload, err := json.Marshal(&PartitionResponse{
		Mesh: MeshInfo{
			Name:     m.Name,
			Cells:    m.NumCells(),
			MaxLevel: int(m.MaxLevel),
		},
		K:            r.K,
		Strategy:     r.Strategy,
		Method:       r.Options.Method,
		Seed:         r.Options.Seed,
		EdgeCut:      result.EdgeCut,
		MaxImbalance: result.MaxImbalance(),
		Quality:      quality,
		PartHash:     partHash,
		Part:         result.Part,
		Eval:         evalRes,
		Debug:        dbg,
	})
	if err != nil {
		return nil, 0, &requestError{code: http.StatusInternalServerError, msg: err.Error()}
	}
	return payload, elapsed, nil
}

// statusClientClosedRequest is nginx's non-standard 499 "client closed
// request"; we reuse it for jobs abandoned by every requester.
const statusClientClosedRequest = 499

// MeshInfo describes the partitioned mesh in responses.
type MeshInfo struct {
	Name     string `json:"name"`
	Cells    int    `json:"cells"`
	MaxLevel int    `json:"max_level"`
}

// PartitionResponse is the cacheable body of a successful partition request.
// Quality carries the paper's cut/imbalance/fragments axes so clients need
// no second call.
type PartitionResponse struct {
	Mesh         MeshInfo                  `json:"mesh"`
	K            int                       `json:"k"`
	Strategy     string                    `json:"strategy"`
	Method       string                    `json:"method"`
	Seed         int64                     `json:"seed"`
	EdgeCut      int64                     `json:"edge_cut"`
	MaxImbalance float64                   `json:"max_imbalance"`
	Quality      pmetrics.PartitionQuality `json:"quality"`
	// PartHash content-addresses the encoded partition in the daemon's
	// partition store; POST /v1/repartition can warm-start from it.
	PartHash string  `json:"part_hash,omitempty"`
	Part     []int32 `json:"part"`
	// Eval scores the assignment on a simulated cluster when the request
	// carried an "evaluate" spec.
	Eval *EvalResult `json:"eval,omitempty"`
	// Debug summarizes the recorded pipeline spans of a ?debug=trace request.
	Debug *DebugInfo `json:"debug,omitempty"`
}

// DebugInfo is the ?debug=trace response block: the per-phase time rollup,
// pipeline counters, and how many spans the recorder captured.
type DebugInfo struct {
	Phases   []obs.PhaseSummary `json:"phases"`
	Counters map[string]int64   `json:"counters,omitempty"`
	Spans    int                `json:"spans"`
}

// debugInfo rolls a job recorder up into the response block; nil in, nil out
// (untraced requests get no debug field at all).
func debugInfo(rec *obs.Recorder) *DebugInfo {
	if rec == nil {
		return nil
	}
	return &DebugInfo{
		Phases:   rec.PhaseSummaries(),
		Counters: rec.Counters(),
		Spans:    len(rec.Snapshot()),
	}
}
