package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"tempart/internal/core"
	"tempart/internal/mesh"
	pmetrics "tempart/internal/metrics"
)

// jobState is the lifecycle of a partition job.
type jobState int32

const (
	jobQueued jobState = iota
	jobRunning
	jobDone
	jobFailed
	jobCancelled
)

func (s jobState) String() string {
	switch s {
	case jobQueued:
		return "queued"
	case jobRunning:
		return "running"
	case jobDone:
		return "done"
	case jobFailed:
		return "failed"
	case jobCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("jobState(%d)", int32(s))
}

// job is one partition execution. Identical concurrent requests share a
// single job (singleflight on the content-address key): each interested
// party holds one reference; when the count drops to zero the job's context
// is cancelled, so work stops as soon as nobody is listening.
type job struct {
	id  string
	key cacheKey
	req *PartitionRequest

	ctx    context.Context
	cancel context.CancelFunc

	state atomic.Int32

	// done is closed by the worker after payload/status/errMsg are final.
	done chan struct{}

	// Guarded by Server.mu.
	refs    int
	created time.Time

	// Written by the worker before close(done); read only after <-done.
	payload   []byte
	status    int
	errMsg    string
	elapsed   time.Duration
	fromCache bool
}

func (j *job) setState(s jobState) { j.state.Store(int32(s)) }
func (j *job) getState() jobState  { return jobState(j.state.Load()) }

// acquireJob returns the in-flight job for the request's key, creating and
// enqueueing one if needed, and takes one reference on it. It returns
// errQueueFull when a new job cannot be admitted.
var errQueueFull = errors.New("admission queue full")
var errDraining = errors.New("server is draining")

func (s *Server) acquireJob(req *PartitionRequest) (*job, error) {
	key := req.key()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errDraining
	}
	if j, ok := s.flights[key]; ok {
		j.refs++
		return j, nil
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	j := &job{
		id:      fmt.Sprintf("%x-%d", key[:6], s.seq.Add(1)),
		key:     key,
		req:     req,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		refs:    1,
		created: time.Now(),
	}
	select {
	case s.queue <- j:
	default:
		cancel()
		return nil, errQueueFull
	}
	s.flights[key] = j
	s.rememberJob(j)
	return j, nil
}

// releaseJob drops one reference. When the last reference goes away before
// completion, the job's context is cancelled — a queued job will be skipped
// by the worker, a running one stops at the partitioner's next boundary.
func (s *Server) releaseJob(j *job) {
	s.mu.Lock()
	j.refs--
	last := j.refs <= 0
	s.mu.Unlock()
	if last {
		j.cancel()
	}
}

// rememberJob registers the job for /v1/jobs lookups, evicting the oldest
// completed entries beyond the retention cap. Callers hold s.mu.
func (s *Server) rememberJob(j *job) {
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	for len(s.jobOrder) > s.cfg.JobRetention {
		victim := s.jobs[s.jobOrder[0]]
		if victim != nil {
			switch victim.getState() {
			case jobQueued, jobRunning:
				return // oldest is still live; retention grows temporarily
			}
			delete(s.jobs, victim.id)
		}
		s.jobOrder = s.jobOrder[1:]
	}
}

// worker drains the admission queue until it closes (shutdown).
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job and publishes its outcome. All error paths funnel
// through fail() so waiters always observe a terminal state.
func (s *Server) runJob(j *job) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	defer j.cancel() // release the deadline timer

	finish := func() {
		s.mu.Lock()
		delete(s.flights, j.key)
		s.mu.Unlock()
		close(j.done)
	}

	fail := func(code int, msg string) {
		if errors.Is(j.ctx.Err(), context.Canceled) {
			j.setState(jobCancelled)
			j.status = statusClientClosedRequest
			j.errMsg = "cancelled"
			s.metrics.countCancelled()
		} else if errors.Is(j.ctx.Err(), context.DeadlineExceeded) {
			j.setState(jobCancelled)
			j.status = http.StatusGatewayTimeout
			j.errMsg = "deadline exceeded"
			s.metrics.countCancelled()
		} else {
			j.setState(jobFailed)
			j.status = code
			j.errMsg = msg
		}
		finish()
	}

	if j.ctx.Err() != nil {
		fail(0, "")
		return
	}
	j.setState(jobRunning)

	if s.cfg.execGate != nil {
		if err := s.cfg.execGate(j.ctx, j.req); err != nil {
			fail(http.StatusInternalServerError, err.Error())
			return
		}
	}

	m := j.req.Uploaded
	if m == nil {
		var err error
		m, err = mesh.ByName(j.req.MeshName, j.req.Scale)
		if err != nil {
			fail(http.StatusBadRequest, err.Error())
			return
		}
	}
	if j.req.K > m.NumCells() {
		fail(http.StatusBadRequest,
			fmt.Sprintf("k = %d exceeds the mesh's %d cells", j.req.K, m.NumCells()))
		return
	}

	start := time.Now()
	d, err := core.Decompose(j.ctx, m, j.req.K, j.req.strat, j.req.partitionOptions())
	elapsed := time.Since(start)
	if err != nil {
		fail(http.StatusInternalServerError, err.Error())
		return
	}
	s.metrics.countRun(j.req.Strategy, elapsed.Seconds())

	payload, err := json.Marshal(&PartitionResponse{
		Mesh: MeshInfo{
			Name:     m.Name,
			Cells:    m.NumCells(),
			MaxLevel: int(m.MaxLevel),
		},
		K:            j.req.K,
		Strategy:     j.req.Strategy,
		Method:       j.req.Options.Method,
		Seed:         j.req.Options.Seed,
		EdgeCut:      d.Result.EdgeCut,
		MaxImbalance: d.Result.MaxImbalance(),
		Quality:      d.Quality,
		Part:         d.Result.Part,
	})
	if err != nil {
		fail(http.StatusInternalServerError, err.Error())
		return
	}
	s.cache.put(j.key, payload)
	j.payload = payload
	j.elapsed = elapsed
	j.status = http.StatusOK
	j.setState(jobDone)
	finish()
}

// statusClientClosedRequest is nginx's non-standard 499 "client closed
// request"; we reuse it for jobs abandoned by every requester.
const statusClientClosedRequest = 499

// MeshInfo describes the partitioned mesh in responses.
type MeshInfo struct {
	Name     string `json:"name"`
	Cells    int    `json:"cells"`
	MaxLevel int    `json:"max_level"`
}

// PartitionResponse is the cacheable body of a successful partition request.
// Quality carries the paper's cut/imbalance/fragments axes so clients need
// no second call.
type PartitionResponse struct {
	Mesh         MeshInfo                  `json:"mesh"`
	K            int                       `json:"k"`
	Strategy     string                    `json:"strategy"`
	Method       string                    `json:"method"`
	Seed         int64                     `json:"seed"`
	EdgeCut      int64                     `json:"edge_cut"`
	MaxImbalance float64                   `json:"max_imbalance"`
	Quality      pmetrics.PartitionQuality `json:"quality"`
	Part         []int32                   `json:"part"`
}
