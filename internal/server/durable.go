package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tempart/internal/mesh"
	"tempart/internal/obs"
	"tempart/internal/store"
)

// This file wires the durability tier (internal/store) through the job
// machinery. With Config.Store set the daemon becomes restart-safe:
//
//   - uploaded meshes and successful partition/repartition payloads are
//     persisted content-addressed, with a provenance entry embedding the run
//     manifest, BEFORE the response is acknowledged;
//   - async jobs journal their lifecycle (submitted durable-before-202,
//     running/terminal batched), so a daemon restarted over the same
//     directory re-queues whatever never reached a terminal state and
//     remembers what did;
//   - the in-memory LRUs become read-through caches over the store: a result
//     or parent partition evicted from RAM (or lost to a restart) is served
//     from disk and re-warmed.
//
// Without a store every function here is a cheap nil check — the daemon
// behaves exactly as before.

// Journaled job kinds, discriminating the request type on replay.
const (
	kindPartition   = "partition"
	kindRepartition = "repartition"
	// kindSubtree marks cluster subtree RPCs in provenance manifests; such
	// jobs are never journaled (a coordinator retries them, the journal
	// doesn't).
	kindSubtree = "subtree"
)

// marshalJobRequest renders a request as its replayable journal form. The
// order of the type switch matters: *RepartitionRequest embeds
// PartitionRequest.
func marshalJobRequest(req jobRequest) (kind string, raw json.RawMessage, err error) {
	switch v := req.(type) {
	case *RepartitionRequest:
		raw, err = json.Marshal(v)
		return kindRepartition, raw, err
	case *PartitionRequest:
		raw, err = json.Marshal(v)
		return kindPartition, raw, err
	default:
		return "", nil, fmt.Errorf("unjournalable request type %T", req)
	}
}

// resultStoreKey is the NSResult address of a job's payload: the hex form of
// its content-addressed cache key.
func resultStoreKey(key cacheKey) string { return hex.EncodeToString(key[:]) }

// journalSubmit makes an async submission durable before the 202 goes out:
// the submitted record (with the full request JSON) and, for uploads, the
// mesh blob, in one durable commit. An error means the caller must NOT
// acknowledge the job.
func (s *Server) journalSubmit(ctx context.Context, j *job) error {
	if s.store == nil {
		return nil
	}
	if !j.journaled.CompareAndSwap(false, true) {
		return nil // already journaled (duplicate async submit joining a flight)
	}
	kind, raw, err := marshalJobRequest(j.req)
	if err != nil {
		j.journaled.Store(false)
		return err
	}
	rec := store.JobRecord{Job: j.id, State: store.JobSubmitted, Kind: kind, Req: raw}
	c := store.Commit{}
	base := j.req.base()
	if base.Uploaded != nil && len(base.meshRaw) > 0 {
		digest := hex.EncodeToString(base.meshDigest[:])
		rec.MeshDigest = digest
		c.Puts = append(c.Puts, store.Put{NS: store.NSMesh, Key: digest, Data: base.meshRaw,
			Manifest: s.meshManifest(base)})
	}
	c.Jobs = []store.JobRecord{rec}
	if err := s.store.Commit(ctx, c); err != nil {
		j.journaled.Store(false)
		return err
	}
	return nil
}

// journalState appends one lifecycle transition for a journaled job. These
// records are batched without waiting: losing one in a crash only means the
// job replays from an earlier state and re-runs idempotently (results are
// content-addressed, so a re-run dedups).
func (s *Server) journalState(j *job, state, errMsg string) {
	if s.store == nil || !j.journaled.Load() {
		return
	}
	s.store.CommitAsync(store.Commit{Jobs: []store.JobRecord{{
		Job: j.id, State: state, Error: errMsg,
	}}})
}

// persistOutcome makes a successful job durable before its waiters see it:
// the response payload (and, for uploads, the mesh blob) plus — for
// journaled async jobs — the done record naming the result, all in one
// durable commit. A persist failure fails the job: the daemon never
// acknowledges a result it could lose.
//
// Traced (?debug=trace) jobs are skipped: their payload embeds a per-request
// debug block under the same content address as the canonical result, and
// persisting it would poison the read-through path for everyone else.
func (s *Server) persistOutcome(j *job, payload []byte) *requestError {
	if s.store == nil || j.noCache {
		return nil
	}
	span := obs.FromContext(j.ctx).Start("store/persist")
	defer span.End()
	key := resultStoreKey(j.key)
	c := store.Commit{Puts: []store.Put{{
		NS: store.NSResult, Key: key, Data: payload, Manifest: s.resultManifest(j),
	}}}
	base := j.req.base()
	if base.Uploaded != nil && len(base.meshRaw) > 0 {
		c.Puts = append(c.Puts, store.Put{NS: store.NSMesh,
			Key: hex.EncodeToString(base.meshDigest[:]), Data: base.meshRaw,
			Manifest: s.meshManifest(base)})
	}
	if j.journaled.Load() {
		c.Jobs = []store.JobRecord{{Job: j.id, State: store.JobDone, ResultKey: key}}
	}
	if err := s.store.Commit(j.ctx, c); err != nil {
		return &requestError{code: http.StatusInternalServerError,
			msg: fmt.Sprintf("persisting result: %v", err)}
	}
	return nil
}

// resultManifest is the provenance context of a persisted payload: enough to
// reproduce the run (mesh identity, k, strategy, seed, method) plus the
// phase/counter rollup when the job was traced. On a fleet member it also
// names the executing node, which is what lets a coordinator's result and
// the subtree entries scattered across peers be correlated into one
// cross-node provenance trail.
func (s *Server) resultManifest(j *job) *obs.Manifest {
	base := j.req.base()
	m := obs.NewManifest("tempartd")
	m.Node = s.cfg.NodeID
	m.Inputs["job"] = j.id
	if base.requestID != "" {
		// The request id that created the job, so one client exchange can be
		// chased through access logs, traces and provenance on every node it
		// touched.
		m.Inputs["request_id"] = base.requestID
	}
	switch v := j.req.(type) {
	case *subtreeRequest:
		m.Inputs["kind"] = kindSubtree
		m.Inputs["first_part"] = v.wire.FirstPart
		m.Inputs["subtree_seed"] = v.wire.Seed
	case *RepartitionRequest:
		m.Inputs["kind"] = kindRepartition
	default:
		m.Inputs["kind"] = kindPartition
	}
	if base.Uploaded != nil {
		m.Inputs["mesh_digest"] = hex.EncodeToString(base.meshDigest[:])
	} else {
		m.Inputs["mesh"] = base.MeshName
		m.Inputs["scale"] = base.Scale
	}
	m.Inputs["k"] = base.K
	m.Inputs["strategy"] = base.Strategy
	m.Inputs["method"] = base.Options.Method
	m.Inputs["seed"] = base.Options.Seed
	m.Metrics["elapsed_seconds"] = j.elapsed.Seconds()
	m.Finish(j.rec)
	return m
}

// meshManifest is the provenance context of a persisted mesh upload.
func (s *Server) meshManifest(base *PartitionRequest) *obs.Manifest {
	m := obs.NewManifest("tempartd")
	m.Node = s.cfg.NodeID
	m.Inputs["kind"] = "mesh-upload"
	m.Inputs["cells"] = base.Uploaded.NumCells()
	m.Finish(nil)
	return m
}

// decodeReplayRequest rebuilds a journaled request: unmarshal by kind,
// re-attach the uploaded mesh from the store, and re-validate so the
// unexported canonical fields (strategy, mode) are recomputed.
func decodeReplayRequest(r store.JobReplay, st *store.Store) (jobRequest, error) {
	switch r.Kind {
	case kindRepartition:
		var req RepartitionRequest
		if err := json.Unmarshal(r.Req, &req); err != nil {
			return nil, fmt.Errorf("replaying %s request: %w", r.ID, err)
		}
		if err := attachReplayMesh(&req.PartitionRequest, r.MeshDigest, st); err != nil {
			return nil, err
		}
		if err := req.PartitionRequest.validate(); err != nil {
			return nil, err
		}
		if err := req.validateRepart(); err != nil {
			return nil, err
		}
		return &req, nil
	case kindPartition:
		var req PartitionRequest
		if err := json.Unmarshal(r.Req, &req); err != nil {
			return nil, fmt.Errorf("replaying %s request: %w", r.ID, err)
		}
		if err := attachReplayMesh(&req, r.MeshDigest, st); err != nil {
			return nil, err
		}
		if err := req.validate(); err != nil {
			return nil, err
		}
		return &req, nil
	}
	return nil, fmt.Errorf("job %s has unknown kind %q", r.ID, r.Kind)
}

// attachReplayMesh re-materialises an uploaded mesh from its NSMesh blob.
func attachReplayMesh(base *PartitionRequest, digest string, st *store.Store) error {
	if digest == "" {
		return nil
	}
	raw, ok := st.Get(store.NSMesh, digest)
	if !ok {
		return fmt.Errorf("mesh blob %s missing from store", digest)
	}
	m, err := mesh.Decode(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("stored mesh %s: %w", digest, err)
	}
	base.Uploaded = m
	base.meshRaw = raw
	base.meshDigest = sha256.Sum256(raw)
	return nil
}

// recoverJobs folds the store's job journal at startup: terminal jobs are
// re-registered so /v1/jobs keeps answering for them across the restart
// (done jobs serve their payload straight from the store), and non-terminal
// jobs — interrupted by whatever killed the previous process — are re-queued
// under their original ids. Runs before the server is marked ready.
func (s *Server) recoverJobs() {
	if s.store == nil {
		return
	}
	var maxSeq int64
	for _, r := range s.store.JobReplays() {
		if n := trailingSeq(r.ID); n > maxSeq {
			maxSeq = n
		}
		req, err := decodeReplayRequest(r, s.store)
		if err != nil {
			// The journal outlived whatever it referenced (evicted blob,
			// incompatible request schema). Surface the job as failed rather
			// than dropping it silently.
			s.registerReplayed(r, nil, jobFailed, nil, fmt.Sprintf("replay failed: %v", err))
			continue
		}
		switch r.State {
		case store.JobDone:
			payload, ok := s.store.Get(store.NSResult, r.ResultKey)
			if !ok {
				s.registerReplayed(r, req, jobFailed, nil, "replayed result blob missing")
				continue
			}
			s.registerReplayed(r, req, jobDone, payload, "")
			s.cache.put(req.key(), payload)
		case store.JobFailed:
			s.registerReplayed(r, req, jobFailed, nil, r.Error)
		case store.JobCancelled:
			s.registerReplayed(r, req, jobCancelled, nil, r.Error)
		default: // submitted or running: the restart interrupted it
			s.requeueJob(r, req)
		}
	}
	// New job ids must not collide with replayed ones.
	for {
		cur := s.seq.Load()
		if cur >= maxSeq || s.seq.CompareAndSwap(cur, maxSeq) {
			break
		}
	}
}

// registerReplayed installs a terminal job from the journal so job views
// survive the restart. req may be nil when the request itself could not be
// rebuilt (the view then loses its mesh/k/strategy fields but keeps the
// outcome).
func (s *Server) registerReplayed(r store.JobReplay, req jobRequest, st jobState, payload []byte, errMsg string) {
	if req == nil {
		req = &PartitionRequest{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j := &job{
		id:      r.ID,
		key:     req.key(),
		req:     req,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		created: replayCreated(r),
		payload: payload,
		errMsg:  errMsg,
	}
	switch st {
	case jobDone:
		j.status = http.StatusOK
	case jobCancelled:
		j.status = statusClientClosedRequest
	default:
		j.status = http.StatusInternalServerError
	}
	j.setState(st)
	j.journaled.Store(true)
	close(j.done)
	s.mu.Lock()
	s.rememberJob(j)
	s.mu.Unlock()
}

// requeueJob re-admits an interrupted job under its original id. The journal
// itself holds the job's reference: nobody releases it, so the job runs to a
// terminal state (and journals it) even with no client polling.
func (s *Server) requeueJob(r store.JobReplay, req jobRequest) {
	timeout := s.cfg.DefaultTimeout
	if req.base().TimeoutMS > 0 {
		if d := time.Duration(req.base().TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	j := &job{
		id:      r.ID,
		key:     req.key(),
		req:     req,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		refs:    1,
		created: replayCreated(r),
	}
	j.journaled.Store(true)
	s.mu.Lock()
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		cancel()
		s.registerReplayed(r, req, jobFailed, nil, "re-queue after restart: admission queue full")
		s.journalState(j, store.JobFailed, "re-queue after restart: admission queue full")
		return
	}
	if _, exists := s.flights[j.key]; !exists {
		s.flights[j.key] = j
	}
	s.rememberJob(j)
	s.mu.Unlock()
}

func replayCreated(r store.JobReplay) time.Time {
	if r.SubmittedMS > 0 {
		return time.UnixMilli(r.SubmittedMS)
	}
	return time.Now()
}

// trailingSeq parses the "-N" suffix of a job id ("<hex>-N").
func trailingSeq(id string) int64 {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.ParseInt(id[i+1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}
