package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
)

func TestClampParallelism(t *testing.T) {
	cfg := Config{MaxParallelism: 4}.withDefaults()
	cases := []struct{ req, want int }{
		{0, 4},  // unset → the cap
		{2, 2},  // below the cap → honoured
		{4, 4},  // at the cap
		{9, 4},  // above the cap → clamped
		{-1, 4}, // negative is treated as unset
	}
	for _, c := range cases {
		if got := cfg.clampParallelism(c.req); got != c.want {
			t.Errorf("clampParallelism(%d) = %d, want %d", c.req, got, c.want)
		}
	}
	if d := (Config{}).withDefaults(); d.MaxParallelism < 1 {
		t.Errorf("default MaxParallelism = %d, want >= 1", d.MaxParallelism)
	}
}

// TestParallelismInvisibleToCacheAndResult: requests differing only in
// parallelism must hash to one cache entry, and the partitions they return
// must be identical — the determinism contract surfaced at the HTTP layer.
func TestParallelismInvisibleToCacheAndResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8, MaxParallelism: 8})

	body := func(par int) string {
		return fmt.Sprintf(`{"mesh":"CYLINDER","scale":0.002,"k":4,"strategy":"MC_TL","options":{"seed":5,"parallelism":%d}}`, par)
	}
	var ref string
	for i, par := range []int{1, 4, 64} { // 64 exceeds the cap: clamped, not rejected
		resp, b := postJSON(t, ts.URL, body(par))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("parallelism %d: status %d: %s", par, resp.StatusCode, b)
		}
		cache := resp.Header.Get("X-Tempartd-Cache")
		if i == 0 {
			if cache != "miss" {
				t.Errorf("first request: cache %q, want miss", cache)
			}
			ref = string(b)
			continue
		}
		if cache != "hit" {
			t.Errorf("parallelism %d: cache %q, want hit (parallelism must not enter the key)", par, cache)
		}
		if string(b) != ref {
			t.Errorf("parallelism %d: response differs from the parallelism=1 partition", par)
		}
	}

	// Out-of-range parallelism is a client error, not a silent clamp.
	resp, b := postJSON(t, ts.URL, body(100000))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parallelism 100000: status %d, want 400: %s", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), "parallelism") {
		t.Errorf("error body does not name the field: %s", b)
	}
}
