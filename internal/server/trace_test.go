package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"tempart/internal/cluster"
	"tempart/internal/obs"
)

// getJSON fetches a URL and decodes the JSON body into out.
func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.Unmarshal(b, out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, b)
		}
	}
	return resp
}

// TestClusterStitchedTrace is the tentpole acceptance pin: a traced fan-out
// on a 3-node fleet produces ONE trace — coordinator spans plus grafted,
// node-stamped subtree spans from at least two distinct peers — retrievable
// from the coordinator's flight recorder, while the partition bytes stay
// identical to an untraced single-node run.
func TestClusterStitchedTrace(t *testing.T) {
	f := newFleet(t, 3, nil, nil)
	solo := soloServer(t)
	body := fleetReq(f.seedsOwnedBy(0, 1)[0], 0)

	_, wantBody := postJSON(t, solo.URL, body)
	var want PartitionResponse
	if err := json.Unmarshal(wantBody, &want); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(f.tss[0].URL+"/v1/partition?debug=trace", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced fan-out: status %d, body %s", resp.StatusCode, got)
	}
	reqID := resp.Header.Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("no X-Request-Id on traced response")
	}
	if !strings.HasPrefix(reqID, "n1-") {
		t.Errorf("request id %q not stamped with coordinator node id", reqID)
	}

	// Partition bytes are identical to the untraced single-node run (the
	// traced response additionally carries a debug block, so compare the
	// partition vector, not the whole body).
	var pr PartitionResponse
	if err := json.Unmarshal(got, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Part) != len(want.Part) {
		t.Fatalf("traced part length %d != untraced %d", len(pr.Part), len(want.Part))
	}
	for i := range pr.Part {
		if pr.Part[i] != want.Part[i] {
			t.Fatalf("traced partition diverges from untraced at cell %d", i)
		}
	}
	if pr.Debug == nil {
		t.Fatal("?debug=trace response missing debug block")
	}

	// The coordinator's flight recorder retains the stitched trace.
	var detail struct {
		RequestID string           `json:"request_id"`
		Kind      string           `json:"kind"`
		Nodes     []string         `json:"nodes"`
		Spans     []obs.SpanRecord `json:"spans"`
	}
	getJSON(t, f.tss[0].URL+"/v1/traces/"+reqID+"?format=spans", &detail)
	if detail.RequestID != reqID || detail.Kind != "partition" {
		t.Fatalf("trace detail = %+v", detail)
	}
	remote := map[string]bool{}
	for i, sp := range detail.Spans {
		if sp.Parent >= int32(i) {
			t.Errorf("span %d %q Parent=%d not earlier than itself", i, sp.Name, sp.Parent)
		}
		if sp.Node != "" {
			remote[sp.Node] = true
		}
	}
	if len(remote) < 2 {
		t.Fatalf("stitched trace has subtree spans from %d peers (%v), want >= 2 distinct node ids", len(remote), remote)
	}
	if len(detail.Nodes) < 3 {
		t.Errorf("nodes = %v, want coordinator + 2 peers", detail.Nodes)
	}
	hasSubtree := false
	for _, sp := range detail.Spans {
		if sp.Name == "server/subtree" && sp.Node != "" {
			hasSubtree = true
			break
		}
	}
	if !hasSubtree {
		t.Error("no grafted server/subtree span in stitched trace")
	}

	// Default format is Chrome trace-event JSON with one process lane per
	// contributing node.
	resp2, err := http.Get(f.tss[0].URL + "/v1/traces/" + reqID)
	if err != nil {
		t.Fatal(err)
	}
	chrome, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	var events []map[string]any
	if err := json.Unmarshal(chrome, &events); err != nil {
		t.Fatalf("chrome export invalid JSON: %v", err)
	}
	procs := map[string]bool{}
	for _, e := range events {
		if e["name"] == "process_name" {
			if args, ok := e["args"].(map[string]any); ok {
				procs[fmt.Sprint(args["name"])] = true
			}
		}
	}
	if !procs["n1"] || len(procs) < 3 {
		t.Errorf("chrome trace process lanes = %v, want n1 + 2 peers", procs)
	}
}

// TestSampledFanoutByteIdentical pins the no-observer-effect contract for
// head sampling: with -trace-sample 1 every fleet request runs traced (and
// its subtree RPCs go private on the peers), yet the response bytes are
// exactly what an unsampled single-node daemon returns.
func TestSampledFanoutByteIdentical(t *testing.T) {
	f := newFleet(t, 3, nil, func(i int, c *Config) {
		c.TraceSampleRate = 1
		c.TraceRingSize = 8
	})
	solo := soloServer(t)
	body := fleetReq(f.seedsOwnedBy(0, 1)[0], 0)

	_, want := postJSON(t, solo.URL, body)
	resp, got := postJSON(t, f.tss[0].URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sampled fan-out: status %d, body %s", resp.StatusCode, got)
	}
	if string(got) != string(want) {
		t.Fatal("sampled response bytes differ from unsampled single-node response")
	}

	// The sampled job landed in the coordinator's flight ring, stitched.
	reqID := resp.Header.Get("X-Request-Id")
	var detail struct {
		Nodes []string         `json:"nodes"`
		Spans []obs.SpanRecord `json:"spans"`
	}
	getJSON(t, f.tss[0].URL+"/v1/traces/"+reqID+"?format=spans", &detail)
	if len(detail.Spans) == 0 || len(detail.Nodes) < 2 {
		t.Fatalf("sampled trace not retained/stitched: %d spans, nodes %v", len(detail.Spans), detail.Nodes)
	}
}

// TestTraceHopGuardNoDoubleGraft: a request re-entering a member with the
// hop-guard header AND a sampled trace context (as after a forward) executes
// locally with tracing, and the retained span tree is well-formed — no
// duplicated grafts, every parent earlier than its span.
func TestTraceHopGuardNoDoubleGraft(t *testing.T) {
	f := newFleet(t, 3, nil, nil)
	body := fleetReq(f.seedsOwnedBy(0, 1)[0], 0)

	req, err := http.NewRequest(http.MethodPost, f.tss[0].URL+"/v1/partition", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.HeaderForwarded, "test")
	tc := obs.TraceContext{ID: "upstream-trace-01", Span: -1, Sampled: true}
	req.Header.Set(cluster.HeaderTrace, tc.Header())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hop-guarded traced request: status %d", resp.StatusCode)
	}
	reqID := resp.Header.Get("X-Request-Id")

	var detail struct {
		TraceID string           `json:"trace_id"`
		Spans   []obs.SpanRecord `json:"spans"`
	}
	getJSON(t, f.tss[0].URL+"/v1/traces/"+reqID+"?format=spans", &detail)
	if detail.TraceID != "upstream-trace-01" {
		t.Fatalf("trace id = %q, want inherited upstream-trace-01", detail.TraceID)
	}
	type key struct {
		name  string
		start int64
		node  string
	}
	seen := map[key]int{}
	for i, sp := range detail.Spans {
		if sp.Parent >= int32(i) {
			t.Errorf("span %d %q Parent=%d not earlier than itself", i, sp.Name, sp.Parent)
		}
		if sp.Node != "" {
			seen[key{sp.Name, sp.Start, sp.Node}]++
		}
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("remote span grafted %d times: %+v", n, k)
		}
	}
}

// TestTracesEndpoints exercises the flight-recorder HTTP surface on a solo
// daemon: recent listing, per-request fetch in both formats, and the 404.
func TestTracesEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, NodeID: "solo1", TraceRingSize: 4})

	// Untraced request: not retained.
	resp, _ := postJSON(t, ts.URL, smallReq(1))
	plainID := resp.Header.Get("X-Request-Id")
	if !strings.HasPrefix(plainID, "solo1-req-") {
		t.Errorf("request id %q not node-stamped", plainID)
	}

	// Traced request: retained.
	tr, err := http.Post(ts.URL+"/v1/partition?debug=trace", "application/json", strings.NewReader(smallReq(2)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, tr.Body)
	tr.Body.Close()
	tracedID := tr.Header.Get("X-Request-Id")

	var recent struct {
		NodeID   string `json:"node_id"`
		Retained int    `json:"retained"`
		Traces   []struct {
			RequestID string   `json:"request_id"`
			Kind      string   `json:"kind"`
			Spans     int      `json:"spans"`
			Nodes     []string `json:"nodes"`
		} `json:"traces"`
	}
	getJSON(t, ts.URL+"/v1/traces/recent", &recent)
	if recent.NodeID != "solo1" || recent.Retained != 1 || len(recent.Traces) != 1 {
		t.Fatalf("recent = %+v, want exactly the traced request", recent)
	}
	tr0 := recent.Traces[0]
	if tr0.RequestID != tracedID || tr0.Kind != "partition" || tr0.Spans == 0 {
		t.Fatalf("recent[0] = %+v", tr0)
	}
	if len(tr0.Nodes) != 1 || tr0.Nodes[0] != "solo1" {
		t.Fatalf("recent[0].Nodes = %v, want [solo1]", tr0.Nodes)
	}

	var detail struct {
		RequestID string           `json:"request_id"`
		NodeID    string           `json:"node_id"`
		Spans     []obs.SpanRecord `json:"spans"`
	}
	getJSON(t, ts.URL+"/v1/traces/"+tracedID+"?format=spans", &detail)
	if detail.RequestID != tracedID || detail.NodeID != "solo1" || len(detail.Spans) == 0 {
		t.Fatalf("detail = %+v", detail)
	}

	var events []map[string]any
	getJSON(t, ts.URL+"/v1/traces/"+tracedID, &events)
	if len(events) == 0 {
		t.Fatal("default chrome format returned no events")
	}

	if resp := getJSON(t, ts.URL+"/v1/traces/"+plainID, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("untraced request id: status %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/traces/no-such-id", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", resp.StatusCode)
	}
}

// TestRuntimeAndLatencyMetricsExposition is the golden exposition check for
// the new telemetry families: runtime/metrics-backed gauges and histograms
// plus the per-endpoint HTTP latency and admission-wait series.
func TestRuntimeAndLatencyMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	postJSON(t, ts.URL, smallReq(1))

	m := fetchMetrics(t, ts.URL)
	for _, family := range []string{
		"tempartd_runtime_heap_bytes ",
		"tempartd_runtime_goroutines ",
		"tempartd_runtime_gc_cycles_total ",
		"tempartd_runtime_gc_pause_seconds_bucket{",
		"tempartd_runtime_sched_latency_seconds_bucket{",
		"tempartd_http_request_duration_seconds_bucket{endpoint=\"/v1/partition\"",
		"tempartd_http_request_duration_seconds_count{endpoint=\"/v1/partition\"}",
		"tempartd_admission_wait_seconds_bucket{",
		"tempartd_admission_wait_seconds_count ",
	} {
		if !strings.Contains(m, family) {
			t.Errorf("metrics missing family %q", family)
		}
	}
	if v := metricValue(t, m, `tempartd_http_request_duration_seconds_count{endpoint="/v1/partition"}`); v != "1" {
		t.Errorf("http duration count = %q, want 1", v)
	}
	if v := metricValue(t, m, "tempartd_admission_wait_seconds_count"); v == "" || v == "0" {
		t.Errorf("admission wait count = %q, want >= 1", v)
	}
}
