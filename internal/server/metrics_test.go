package server

import (
	"strings"
	"testing"
)

// TestMetricsExpositionGolden pins the Prometheus text format the daemon
// emits: method-split request labels, %q label escaping, deterministic
// (sorted) series ordering, and cumulative histogram buckets ending in a
// le="+Inf" line that equals the _count.
func TestMetricsExpositionGolden(t *testing.T) {
	m := newServerMetrics()

	// Out-of-order recording; the rendering must sort.
	m.countRequest("/v1/partition", "POST", 200)
	m.countRequest("/v1/jobs", "GET", 200)
	m.countRequest("/v1/jobs", "DELETE", 202)
	m.countRequest("/v1/jobs", "GET", 200)
	m.countRequest("/v1/jobs", "GET", 404)

	// A strategy label with a quote and a backslash exercises the escaping.
	m.countRun(`SC"O\C`, 0.003)
	m.countRun(`SC"O\C`, 0.5)
	m.countRun(`SC"O\C`, 999) // beyond the last bound -> +Inf bucket only

	var sb strings.Builder
	m.render(&sb, gauges{})
	got := sb.String()

	// GET and DELETE on the jobs endpoint are distinct series, in sorted
	// order, and appear as one contiguous block.
	wantBlock := strings.Join([]string{
		`tempartd_requests_total{endpoint="/v1/jobs",method="DELETE",code="202"} 1`,
		`tempartd_requests_total{endpoint="/v1/jobs",method="GET",code="200"} 2`,
		`tempartd_requests_total{endpoint="/v1/jobs",method="GET",code="404"} 1`,
		`tempartd_requests_total{endpoint="/v1/partition",method="POST",code="200"} 1`,
	}, "\n")
	if !strings.Contains(got, wantBlock) {
		t.Errorf("request series missing or misordered; want block:\n%s\ngot:\n%s", wantBlock, got)
	}

	// Label escaping: Go %q renders the quote and backslash escaped.
	if want := `tempartd_partition_runs_total{strategy="SC\"O\\C"} 3`; !strings.Contains(got, want) {
		t.Errorf("escaped strategy label missing; want %q in:\n%s", want, got)
	}

	// Histogram: buckets are cumulative, +Inf closes the series at _count.
	for _, want := range []string{
		`tempartd_partition_latency_seconds_bucket{strategy="SC\"O\\C",le="0.005"} 1`,
		`tempartd_partition_latency_seconds_bucket{strategy="SC\"O\\C",le="0.5"} 2`,
		`tempartd_partition_latency_seconds_bucket{strategy="SC\"O\\C",le="120"} 2`,
		`tempartd_partition_latency_seconds_bucket{strategy="SC\"O\\C",le="+Inf"} 3`,
		`tempartd_partition_latency_seconds_count{strategy="SC\"O\\C"} 3`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("histogram line missing: %q\nin:\n%s", want, got)
		}
	}

	// Every HELP line is immediately followed by its TYPE line.
	lines := strings.Split(got, "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, "# HELP ") {
			name := strings.Fields(l)[2]
			if i+1 >= len(lines) || !strings.HasPrefix(lines[i+1], "# TYPE "+name+" ") {
				t.Errorf("HELP for %s not followed by its TYPE line", name)
			}
		}
	}
}

// TestMetricsMethodSplit is the regression test for the bug where GET and
// DELETE on /v1/jobs/{id} collapsed into one series.
func TestMetricsMethodSplit(t *testing.T) {
	m := newServerMetrics()
	m.countRequest("/v1/jobs", "GET", 404)
	m.countRequest("/v1/jobs", "DELETE", 404)
	m.mu.Lock()
	n := len(m.requests)
	m.mu.Unlock()
	if n != 2 {
		t.Fatalf("GET and DELETE with equal endpoint+code produced %d series, want 2", n)
	}
}
