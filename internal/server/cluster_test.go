package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tempart/internal/cluster"
	"tempart/internal/store"
)

// fleetReq is the standard fleet workload: big enough (12k+ cells at scale
// 0.002) that coordinator fan-out has real subtrees, small enough to stay
// sub-second per compute.
func fleetReq(seed int64, parallelism int) string {
	if parallelism > 0 {
		return fmt.Sprintf(`{"mesh":"CYLINDER","scale":0.002,"k":8,"strategy":"MC_TL","options":{"seed":%d,"parallelism":%d}}`,
			seed, parallelism)
	}
	return fmt.Sprintf(`{"mesh":"CYLINDER","scale":0.002,"k":8,"strategy":"MC_TL","options":{"seed":%d}}`, seed)
}

type fleet struct {
	t    *testing.T
	srvs []*Server
	tss  []*httptest.Server
	ids  []string
}

// newFleet boots n in-process daemons wired into one static-membership
// cluster. httptest must allocate the URLs before the servers exist (the
// membership list needs them), so each listener serves through an
// atomic.Value that is populated once its Server is constructed.
func newFleet(t *testing.T, n int, copt func(o *cluster.Options), scfg func(i int, c *Config)) *fleet {
	t.Helper()
	handlers := make([]atomic.Value, n)
	f := &fleet{t: t}
	peers := make([]cluster.Node, n)
	for i := 0; i < n; i++ {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if h, ok := handlers[i].Load().(http.Handler); ok {
				h.ServeHTTP(w, r)
				return
			}
			http.Error(w, "fleet member starting", http.StatusServiceUnavailable)
		}))
		f.tss = append(f.tss, ts)
		peers[i] = cluster.Node{ID: fmt.Sprintf("n%d", i+1), URL: ts.URL}
		f.ids = append(f.ids, peers[i].ID)
	}
	for i := 0; i < n; i++ {
		opts := cluster.Options{
			NodeID:           peers[i].ID,
			Peers:            peers,
			FanoutMinCells:   1, // every fleetReq is fan-out eligible
			BreakerThreshold: 3,
			BreakerCooldown:  200 * time.Millisecond,
			RetryAttempts:    1, // deterministic failure counting in tests
			RetryBackoff:     5 * time.Millisecond,
		}
		if copt != nil {
			copt(&opts)
		}
		cl, err := cluster.New(opts)
		if err != nil {
			t.Fatalf("cluster.New(%s): %v", peers[i].ID, err)
		}
		cfg := Config{Workers: 4, MaxParallelism: 8, NodeID: peers[i].ID, Cluster: cl}
		if scfg != nil {
			scfg(i, &cfg)
		}
		s := New(cfg)
		f.srvs = append(f.srvs, s)
		handlers[i].Store(s.Handler())
	}
	t.Cleanup(func() {
		for _, ts := range f.tss {
			ts.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, s := range f.srvs {
			_ = s.Shutdown(ctx)
		}
	})
	return f
}

// ownerIndex computes which member owns a request body, exactly as the
// daemons will: decode, content-address, consult the ring.
func (f *fleet) ownerIndex(body string) int {
	f.t.Helper()
	req, err := decodePartitionRequest("application/json", nil, strings.NewReader(body), 1<<24)
	if err != nil {
		f.t.Fatalf("decoding request: %v", err)
	}
	owner := f.srvs[0].cluster.Owner([32]byte(req.key()))
	for i, id := range f.ids {
		if id == owner.ID {
			return i
		}
	}
	f.t.Fatalf("owner %q not in fleet %v", owner.ID, f.ids)
	return -1
}

// seedsOwnedBy scans seeds until it finds count requests owned by member idx.
func (f *fleet) seedsOwnedBy(idx, count int) []int64 {
	f.t.Helper()
	var seeds []int64
	for seed := int64(1); seed < 4000 && len(seeds) < count; seed++ {
		if f.ownerIndex(fleetReq(seed, 0)) == idx {
			seeds = append(seeds, seed)
		}
	}
	if len(seeds) < count {
		f.t.Fatalf("found only %d/%d seeds owned by %s", len(seeds), count, f.ids[idx])
	}
	return seeds
}

func soloServer(t *testing.T) *httptest.Server {
	t.Helper()
	_, ts := newTestServer(t, Config{Workers: 2, MaxParallelism: 8})
	return ts
}

// postForwarded sends a partition request carrying the hop-guard header, as
// if another member had already forwarded it here.
func postForwarded(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/partition", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.HeaderForwarded, "test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, b
}

// TestClusterForwardByteIdenticalAndReplicatedCache: a request sent to a
// non-owner is forwarded to the owner shard, the relayed payload is
// byte-identical to a single-node daemon's, and the non-owner keeps a local
// replica so the next identical request never leaves the node.
func TestClusterForwardByteIdenticalAndReplicatedCache(t *testing.T) {
	f := newFleet(t, 2, nil, nil)
	solo := soloServer(t)
	const owner, other = 0, 1
	body := fleetReq(f.seedsOwnedBy(owner, 1)[0], 0)

	_, want := postJSON(t, solo.URL, body)
	resp, got := postJSON(t, f.tss[other].URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded request: status %d, body %s", resp.StatusCode, got)
	}
	if h := resp.Header.Get("X-Tempartd-Cluster"); h != "forwarded;peer="+f.ids[owner] {
		t.Fatalf("X-Tempartd-Cluster = %q, want forwarded;peer=%s", h, f.ids[owner])
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("forwarded response differs from single-node response")
	}

	// The owner computed; the non-owner never ran a partition job.
	if m := fetchMetrics(t, f.tss[owner].URL); !strings.Contains(m, `tempartd_partition_runs_total{strategy="MC_TL"} 1`) {
		t.Fatalf("owner should have exactly one run:\n%s", m)
	}
	otherM := fetchMetrics(t, f.tss[other].URL)
	if strings.Contains(otherM, `tempartd_partition_runs_total{strategy="MC_TL"}`) {
		t.Fatalf("non-owner computed a forwarded request:\n%s", otherM)
	}
	if !strings.Contains(otherM, fmt.Sprintf(`tempartd_cluster_forwards_total{peer=%q,outcome="relayed"} 1`, f.ids[owner])) {
		t.Fatalf("forward not counted:\n%s", otherM)
	}

	// Peer-replicated caching: the same request on the non-owner is now a
	// local hit — no second hop.
	resp2, got2 := postJSON(t, f.tss[other].URL, body)
	if h := resp2.Header.Get("X-Tempartd-Cache"); h != "hit" {
		t.Fatalf("replicated request cache header = %q, want hit", h)
	}
	if resp2.Header.Get("X-Tempartd-Cluster") != "" {
		t.Fatalf("replicated hit should not be forwarded again")
	}
	if !bytes.Equal(got2, want) {
		t.Fatalf("replicated cache returned different bytes")
	}
}

// TestClusterFanoutByteIdenticalAcrossParallelism is the core determinism
// pin: an owner in coordinator mode (subtrees fanned across a 3-node fleet)
// returns exactly the bytes a single-node daemon computes, at every client
// parallelism.
func TestClusterFanoutByteIdenticalAcrossParallelism(t *testing.T) {
	f := newFleet(t, 3, nil, nil)
	solo := soloServer(t)
	used := map[int64]bool{}
	fanouts := 0
	for _, par := range []int{1, 2, 8} {
		var body string
		for seed := int64(100); ; seed++ {
			if used[seed] {
				continue
			}
			body = fleetReq(seed, par)
			if f.ownerIndex(body) == 0 {
				used[seed] = true
				break
			}
		}
		_, want := postJSON(t, solo.URL, body)
		resp, got := postJSON(t, f.tss[0].URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("parallelism %d: status %d, body %s", par, resp.StatusCode, got)
		}
		if resp.Header.Get("X-Tempartd-Cluster") != "" {
			t.Fatalf("parallelism %d: owner-side request should not be forwarded", par)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("parallelism %d: fan-out response differs from single-node response", par)
		}
		fanouts++
	}

	m0 := fetchMetrics(t, f.tss[0].URL)
	if got := metricValue(t, m0, "tempartd_cluster_fanouts_total"); got != fmt.Sprint(fanouts) {
		t.Fatalf("fanouts_total = %q, want %d\n%s", got, fanouts, m0)
	}
	served := 0
	for i := 1; i < 3; i++ {
		if v := metricValue(t, fetchMetrics(t, f.tss[i].URL), "tempartd_cluster_subtrees_served_total"); v != "" && v != "0" {
			served++
		}
	}
	if served == 0 {
		t.Fatalf("no peer served a subtree — fan-out never left the coordinator")
	}
}

// TestClusterPeerDownAtDialFallsBack: with a member dead before any
// connection exists, requests it owns are computed locally (degraded but
// correct, still byte-identical), the client never sees an error, and the
// survivor's breaker for the dead peer opens.
func TestClusterPeerDownAtDialFallsBack(t *testing.T) {
	// A long cooldown keeps the breaker firmly open (not probe-ready) while
	// the test inspects it.
	f := newFleet(t, 2, func(o *cluster.Options) { o.BreakerCooldown = time.Hour }, nil)
	solo := soloServer(t)
	const live, dead = 0, 1
	seeds := f.seedsOwnedBy(dead, 3)
	f.tss[dead].Close()

	for _, seed := range seeds {
		body := fleetReq(seed, 0)
		_, want := postJSON(t, solo.URL, body)
		resp, got := postJSON(t, f.tss[live].URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d with peer down, body %s", seed, resp.StatusCode, got)
		}
		if resp.Header.Get("X-Tempartd-Cluster") != "" {
			t.Fatalf("seed %d: dead owner cannot have answered", seed)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("seed %d: local fallback differs from single-node response", seed)
		}
	}

	resp, err := http.Get(f.tss[live].URL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st cluster.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	if st.Self != f.ids[live] || len(st.Peers) != 1 || st.Peers[0].ID != f.ids[dead] {
		t.Fatalf("unexpected status shape: %+v", st)
	}
	if st.Peers[0].Breaker != "open" || st.Peers[0].Available || st.HealthyPeers != 0 {
		t.Fatalf("breaker for dead peer should be open: %+v", st.Peers[0])
	}
	m := fetchMetrics(t, f.tss[live].URL)
	if !strings.Contains(m, fmt.Sprintf("tempartd_cluster_breaker_state{peer=%q} 1", f.ids[dead])) {
		t.Fatalf("breaker_state gauge should read open (1):\n%s", m)
	}
	if !strings.Contains(m, fmt.Sprintf(`tempartd_cluster_peer_errors_total{peer=%q`, f.ids[dead])) {
		t.Fatalf("peer errors should be counted:\n%s", m)
	}
}

// TestClusterPeerDiesMidSubtree: the peer accepts a fanned-out subtree and
// then its connections are killed while the work is in flight. The
// coordinator recomputes the subtree locally and the client still gets the
// byte-identical answer.
func TestClusterPeerDiesMidSubtree(t *testing.T) {
	entered := make(chan struct{})
	var once sync.Once
	f := newFleet(t, 2, nil, func(i int, c *Config) {
		if i != 1 {
			return
		}
		c.execGate = func(ctx context.Context, r *PartitionRequest) error {
			once.Do(func() { close(entered) })
			<-ctx.Done()
			return ctx.Err()
		}
	})
	solo := soloServer(t)
	body := fleetReq(f.seedsOwnedBy(0, 1)[0], 0)
	go func() {
		<-entered
		f.tss[1].CloseClientConnections()
	}()

	_, want := postJSON(t, solo.URL, body)
	resp, got := postJSON(t, f.tss[0].URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after peer died mid-subtree, body %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recomputed response differs from single-node response")
	}
	m := fetchMetrics(t, f.tss[0].URL)
	if got := metricValue(t, m, "tempartd_cluster_local_fallbacks_total"); got != "1" {
		t.Fatalf("local_fallbacks_total = %q, want 1\n%s", got, m)
	}
}

// TestClusterHopGuard: a request that already carries the forwarded header
// is never forwarded again, even when this node does not own it — it probes
// the owner's cache (miss) and computes locally.
func TestClusterHopGuard(t *testing.T) {
	f := newFleet(t, 2, nil, nil)
	solo := soloServer(t)
	const owner, other = 0, 1
	body := fleetReq(f.seedsOwnedBy(owner, 1)[0], 0)

	_, want := postJSON(t, solo.URL, body)
	resp, got := postForwarded(t, f.tss[other].URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, got)
	}
	if resp.Header.Get("X-Tempartd-Cluster") != "" {
		t.Fatalf("hop guard violated: request forwarded twice")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("hop-guarded local compute differs from single-node response")
	}
	m := fetchMetrics(t, f.tss[other].URL)
	if !strings.Contains(m, `tempartd_partition_runs_total{strategy="MC_TL"} 1`) {
		t.Fatalf("non-owner should have computed locally:\n%s", m)
	}
	if !strings.Contains(m, fmt.Sprintf(`tempartd_cluster_probes_total{peer=%q,outcome="miss"} 1`, f.ids[owner])) {
		t.Fatalf("owner cache probe not counted:\n%s", m)
	}
}

// TestClusterOwnerCacheProbeHit: when the owner already holds the result, a
// hop-guarded arrival on a non-owner is served straight from the owner's
// cache without computing anything.
func TestClusterOwnerCacheProbeHit(t *testing.T) {
	f := newFleet(t, 2, nil, nil)
	const owner, other = 0, 1
	body := fleetReq(f.seedsOwnedBy(owner, 1)[0], 0)

	_, want := postJSON(t, f.tss[owner].URL, body) // warm the owner
	resp, got := postForwarded(t, f.tss[other].URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, got)
	}
	if h := resp.Header.Get("X-Tempartd-Cache"); h != "peer" {
		t.Fatalf("X-Tempartd-Cache = %q, want peer", h)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("peer cache probe returned different bytes")
	}
	if m := fetchMetrics(t, f.tss[other].URL); strings.Contains(m, `tempartd_partition_runs_total{strategy="MC_TL"}`) {
		t.Fatalf("non-owner computed despite owner cache hit:\n%s", m)
	}
}

// TestClusterCrossNodeSingleflight: identical concurrent requests hitting
// different members dedup to ONE compute fleet-wide — non-owners forward to
// the owner, where all of them join the same singleflight.
func TestClusterCrossNodeSingleflight(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	f := newFleet(t, 2, nil, func(i int, c *Config) {
		if i != 0 {
			return
		}
		c.execGate = func(ctx context.Context, r *PartitionRequest) error {
			entered <- struct{}{}
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	})
	body := fleetReq(f.seedsOwnedBy(0, 1)[0], 0)

	const clients = 6
	var wg sync.WaitGroup
	bodies := make([][]byte, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(f.tss[i%2].URL+"/v1/partition", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, b)
				return
			}
			bodies[i] = b
		}(i)
	}
	<-entered                          // one job reached the worker
	time.Sleep(100 * time.Millisecond) // let the rest join its flight
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d got different bytes than client 0", i)
		}
	}
	if m := fetchMetrics(t, f.tss[0].URL); !strings.Contains(m, `tempartd_partition_runs_total{strategy="MC_TL"} 1`) {
		t.Fatalf("fleet should have computed exactly once:\n%s", m)
	}
	if m := fetchMetrics(t, f.tss[1].URL); strings.Contains(m, `tempartd_partition_runs_total{strategy="MC_TL"}`) {
		t.Fatalf("non-owner computed a deduped request:\n%s", m)
	}
}

// TestClusterHedgedLocalWin: with hedging on and a pathologically slow peer,
// the coordinator's local recompute wins the race and the hedged win is
// counted; the bytes are identical either way, so the client cannot tell.
func TestClusterHedgedLocalWin(t *testing.T) {
	f := newFleet(t, 2,
		func(o *cluster.Options) { o.HedgeDelay = time.Millisecond },
		func(i int, c *Config) {
			if i != 1 {
				return
			}
			c.execGate = func(ctx context.Context, r *PartitionRequest) error {
				select {
				case <-time.After(2 * time.Second):
					return nil
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		})
	solo := soloServer(t)
	body := fleetReq(f.seedsOwnedBy(0, 1)[0], 0)

	_, want := postJSON(t, solo.URL, body)
	resp, got := postJSON(t, f.tss[0].URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("hedged response differs from single-node response")
	}
	m := fetchMetrics(t, f.tss[0].URL)
	if !strings.Contains(m, `tempartd_cluster_hedged_wins_total{winner="local"} 1`) {
		t.Fatalf("local hedge win not counted:\n%s", m)
	}
}

// TestClusterProvenanceNodeIDs: a fanned-out request leaves a provenance
// trail on every node that touched it — the coordinator's result under its
// own id, each remote subtree in the executing peer's chain under the peer's
// id and marked as a subtree.
func TestClusterProvenanceNodeIDs(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir()}
	stores := make([]*store.Store, 2)
	for i := range stores {
		st, err := store.Open(store.Options{Dir: dirs[i], NodeID: fmt.Sprintf("n%d", i+1)})
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
	}
	t.Cleanup(func() { // registered before newFleet: runs after server shutdown
		for _, st := range stores {
			_ = st.Close()
		}
	})
	f := newFleet(t, 2, nil, func(i int, c *Config) { c.Store = stores[i] })
	body := fleetReq(f.seedsOwnedBy(0, 1)[0], 0)

	resp, got := postJSON(t, f.tss[0].URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, got)
	}
	ctx := context.Background()
	for _, st := range stores {
		if err := st.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}

	coordLog, err := os.ReadFile(filepath.Join(dirs[0], "prov.log"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(coordLog), `"node":"n1"`) {
		t.Fatalf("coordinator provenance not stamped with its node id:\n%s", coordLog)
	}
	peerLog, err := os.ReadFile(filepath.Join(dirs[1], "prov.log"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(peerLog), `"node":"n2"`) {
		t.Fatalf("peer provenance not stamped with its node id:\n%s", peerLog)
	}
	if !strings.Contains(string(peerLog), `"kind":"subtree"`) {
		t.Fatalf("peer provenance should record the subtree RPC:\n%s", peerLog)
	}
}

// TestClusterEndpointsGating: cluster endpoints exist on fleet members with
// sane payloads, and do not exist at all on a single-node daemon.
func TestClusterEndpointsGating(t *testing.T) {
	f := newFleet(t, 2, nil, nil)
	resp, err := http.Get(f.tss[0].URL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st cluster.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Self != "n1" || len(st.Nodes) != 2 || st.HealthyPeers != 1 || st.Peers[0].Breaker != "closed" {
		t.Fatalf("unexpected fleet status: %+v", st)
	}
	if m := fetchMetrics(t, f.tss[0].URL); !strings.Contains(m, "tempartd_cluster_peers 2") {
		t.Fatalf("cluster series missing from /metrics:\n%s", m)
	}

	_, solo := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/v1/cluster/status", "/v1/internal/cache/" + strings.Repeat("0", 64)} {
		resp, err := http.Get(solo.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s on single-node daemon: status %d, want 404", path, resp.StatusCode)
		}
	}
}
